//! Regional fine-tuning (the paper's Sec. V-E first task): train on the
//! synthetic US 4x task — the analog of [ERA5, DAYMET] 28 km -> DAYMET 7 km
//! — with TILES tiling and BF16 mixed precision, then checkpoint the model
//! and report Table-IV-style metrics.
//!
//! ```sh
//! cargo run --release --example regional_finetune
//! ```

use orbit2::checkpoint::{load_model, save_model};
use orbit2::trainer::{Trainer, TrainerConfig};
use orbit2_climate::{DownscalingDataset, LatLonGrid, Split, VariableSet};
use orbit2_imaging::tiles::TileSpec;
use orbit2_model::{ModelConfig, ReslimModel};

fn main() {
    let dataset = DownscalingDataset::new(
        LatLonGrid::conus(32, 64),
        VariableSet::daymet_like(),
        4,
        48,
        2024,
    );

    // Fine-tuning setup: 2x2 TILES with a 1-pixel halo, emulated BF16 with
    // dynamic gradient scaling — the paper's training configuration shrunk
    // to CPU scale.
    let cfg = TrainerConfig {
        steps: 80,
        lr: 2e-3,
        warmup: 8,
        tile_spec: Some(TileSpec { tiles_y: 2, tiles_x: 2, halo: 1 }),
        bf16: true,
        log_every: 20,
        ..Default::default()
    };
    let model = ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 3);
    println!("fine-tuning {} parameters with 2x2 TILES + BF16...", model.num_params());
    let mut trainer = Trainer::new(model, &dataset, cfg);
    let report = trainer.train(&dataset);
    println!(
        "final loss {:.4} ({} scaler-skipped steps)",
        report.final_loss.expect("no steps completed"),
        report.skipped_steps
    );

    // Checkpoint round-trip.
    let dir = std::env::temp_dir().join("orbit2_regional_ckpt");
    save_model(&trainer.model, &dir).expect("save checkpoint");
    let restored = load_model(&dir).expect("load checkpoint");
    println!("checkpoint saved to {} and restored ({} params)", dir.display(), restored.num_params());

    // Evaluate on the held-out period.
    let test_idx = dataset.indices(Split::Test);
    let reports = orbit2::eval::evaluate_model(
        &restored,
        &trainer.normalizer,
        &dataset,
        &test_idx,
        Some(TileSpec { tiles_y: 2, tiles_x: 2, halo: 2 }),
        1.0,
    )
    .expect("valid test split");
    println!("\nTable IV-style metrics (tiled inference):");
    for r in &reports {
        println!(
            "  {:<6} R2 {:>6.3}  RMSE {:>7.3}  RMSE@99.7% {:>7.3}  SSIM {:>5.3}  PSNR {:>5.1}",
            r.name, r.report.r2, r.report.rmse, r.report.rmse_sigma3, r.report.ssim, r.report.psnr
        );
    }
}
