//! Adaptive spatial compression demo (the paper's Fig. 3): build the
//! quad-tree over a synthetic field's Canny edge density and show how
//! feature-rich regions get fine patches while smooth regions collapse.
//!
//! ```sh
//! cargo run --release --example adaptive_compression_demo
//! ```

use orbit2_climate::synth::{gaussian_random_field, GrfSpec};
use orbit2_imaging::pgm::ascii_art;
use orbit2_imaging::quadtree::{QuadTree, QuadTreeParams};
use orbit2_parallel::ReslimCostModel;

fn main() {
    let (h, w) = (64usize, 64usize);
    // A field with a sharp front: smooth background + a step edge.
    let smooth = gaussian_random_field(h, w, GrfSpec { slope: 3.5 }, 42);
    let field: Vec<f32> = smooth
        .iter()
        .enumerate()
        .map(|(i, &v)| v + if (i % w) > w / 2 && (i / w) > h / 3 { 3.0 } else { 0.0 })
        .collect();

    println!("input field ({}x{}):", h, w);
    println!("{}", ascii_art(&field, h, w, 64));

    let uniform = QuadTree::uniform(h, w, 2);
    println!("uniform 2x2 patching: {} tokens", uniform.token_count());

    for threshold in [0.01f32, 0.05, 0.15] {
        let qt = QuadTree::build(
            &field,
            h,
            w,
            QuadTreeParams { density_threshold: threshold, ..Default::default() },
        );
        assert!(qt.is_exact_partition());
        let areas: Vec<usize> = qt.patches.iter().map(|p| p.area()).collect();
        println!(
            "threshold {:>5.2}: {:>4} patches (compression {:>5.1}x vs uniform), patch sizes {}..{} px",
            threshold,
            qt.token_count(),
            qt.compression_vs_uniform(2),
            areas.iter().min().unwrap(),
            areas.iter().max().unwrap(),
        );
    }

    // What the compression buys at training time (Table II(b) model).
    let cost = ReslimCostModel::new();
    println!("\npredicted training speedups (calibrated cost model):");
    for c in [4usize, 8, 16, 32] {
        println!("  {c:>2}x compression -> {:.1}x speedup", cost.compression_speedup(c));
    }
    for t in [4usize, 16, 36] {
        println!("  {t:>2} tiles        -> {:.1}x speedup", cost.tiling_speedup(t));
    }
}
