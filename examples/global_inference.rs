//! Global inference against shifted observations (the paper's Fig. 8):
//! train on the ERA5-like reanalysis generator, then evaluate precipitation
//! against the IMERG-like satellite observation — a product with different
//! statistics (multiplicative retrieval noise, recalibration, drizzle
//! censoring). "Perfect alignment is not expected."
//!
//! ```sh
//! cargo run --release --example global_inference
//! ```

use orbit2::inference::downscale_with;
use orbit2::trainer::{Trainer, TrainerConfig};
use orbit2_climate::imerg::{observe_precipitation, ImergLikeParams};
use orbit2_climate::{DownscalingDataset, LatLonGrid, Split, VariableSet};
use orbit2_metrics::precip::log_precip_slice;
use orbit2_metrics::regression::{r2_score, rmse};
use orbit2_metrics::ssim::{psnr, ssim};
use orbit2_model::{ModelConfig, ReslimModel};

fn main() {
    let dataset = DownscalingDataset::new(
        LatLonGrid::global(32, 64),
        VariableSet::era5_like(),
        4,
        40,
        31,
    );
    let model = ReslimModel::new(ModelConfig::tiny().with_channels(23, 3), 5);
    println!("training on the global ERA5-like task ({} params)...", model.num_params());
    let cfg = TrainerConfig { steps: 60, lr: 2e-3, warmup: 6, log_every: 20, ..Default::default() };
    let mut trainer = Trainer::new(model, &dataset, cfg);
    let report = trainer.train(&dataset);
    println!("final loss {:.4}", report.final_loss.expect("no steps completed"));

    let (h, w) = (dataset.fine_grid().h, dataset.fine_grid().w);
    let plane = h * w;
    let chan = dataset.variables().output_index("prcp").unwrap();
    let mut preds = Vec::new();
    let mut obs = Vec::new();
    let test_idx = dataset.indices(Split::Test);
    // One tape-free session for the whole evaluation loop.
    let session = trainer.model.session();
    for &i in &test_idx {
        let s = dataset.sample(i);
        let pred =
            downscale_with(&trainer.model, &session, &trainer.normalizer, &s.input, None, 1.0)
                .expect("valid sample");
        preds.extend_from_slice(&pred.data()[chan * plane..(chan + 1) * plane]);
        // The satellite sees the same weather through a distorted sensor.
        obs.extend(observe_precipitation(dataset.world(), s.t, ImergLikeParams::default()));
    }
    let lp = log_precip_slice(&preds);
    let lo = log_precip_slice(&obs);
    let frames = test_idx.len();
    let mut ssim_acc = 0.0;
    let mut psnr_acc = 0.0;
    for f in 0..frames {
        ssim_acc += ssim(&lp[f * plane..(f + 1) * plane], &lo[f * plane..(f + 1) * plane], h, w);
        psnr_acc += psnr(&lp[f * plane..(f + 1) * plane], &lo[f * plane..(f + 1) * plane]);
    }
    println!("\nglobal precipitation vs IMERG-like observations (paper: R2 0.90, SSIM 0.96, PSNR 41.8, RMSE 0.34):");
    println!("  R2   (log space) {:>6.3}", r2_score(&lp, &lo));
    println!("  SSIM             {:>6.3}", ssim_acc / frames as f64);
    println!("  PSNR             {:>6.1} dB", psnr_acc / frames as f64);
    println!("  RMSE (log mm/d)  {:>6.3}", rmse(&lp, &lo));
}
