//! Quickstart: build a synthetic downscaling dataset, train a small Reslim
//! model for a few steps, and downscale one sample.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use orbit2::trainer::{Trainer, TrainerConfig};
use orbit2_climate::{DownscalingDataset, LatLonGrid, Split, VariableSet};
use orbit2_model::{ModelConfig, ReslimModel};

fn main() {
    // A continental-US-like 4x downscaling task: 7 input variables at
    // coarse resolution, 3 targets (tmin / tmax / prcp) at 4x finer grid.
    let dataset = DownscalingDataset::new(
        LatLonGrid::conus(32, 64),
        VariableSet::daymet_like(),
        4,
        /* samples */ 40,
        /* seed */ 7,
    );
    println!(
        "dataset: {} samples, input [{}x{}x{}] -> target [{}x{}x{}]",
        dataset.num_samples,
        dataset.variables().num_inputs(),
        dataset.coarse_grid().h,
        dataset.coarse_grid().w,
        dataset.variables().num_outputs(),
        dataset.fine_grid().h,
        dataset.fine_grid().w,
    );

    // A small Reslim model (the paper's architecture at laptop scale).
    let model = ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 1);
    println!("model: {} parameters", model.num_params());

    // Train with the Bayesian loss (latitude-weighted MSE + MRF-TV prior).
    let cfg = TrainerConfig { steps: 60, lr: 2e-3, warmup: 6, log_every: 10, ..Default::default() };
    let mut trainer = Trainer::new(model, &dataset, cfg);
    let report = trainer.train(&dataset);
    for (step, loss) in &report.losses {
        println!("step {step:>4}  loss {loss:.4}");
    }

    // Downscale the held-out samples and score them.
    let test_idx = dataset.indices(Split::Test);
    let reports = orbit2::eval::evaluate_model(
        &trainer.model,
        &trainer.normalizer,
        &dataset,
        &test_idx,
        None,
        1.0,
    )
    .expect("valid test split");
    println!("\nheld-out metrics:");
    for r in &reports {
        println!(
            "  {:<6} R2 {:>6.3}  RMSE {:>7.3}  SSIM {:>5.3}  PSNR {:>5.1}{}",
            r.name,
            r.report.r2,
            r.report.rmse,
            r.report.ssim,
            r.report.psnr,
            if r.log_space { "  (log space)" } else { "" }
        );
    }
}
