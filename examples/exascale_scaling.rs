//! Exascale planning on the simulated Frontier: regenerate the paper's
//! Table III (maximum sequence lengths) and Fig. 6(b) (strong scaling to
//! 32,768 GPUs) without owning a supercomputer.
//!
//! ```sh
//! cargo run --release --example exascale_scaling
//! ```

use orbit2::planner::{max_sequence_row, strong_scaling_series, Arch};
use orbit2_cluster::topology::ClusterSpec;
use orbit2_model::ModelConfig;

fn main() {
    let cluster = ClusterSpec::frontier();
    println!(
        "simulated cluster: {} nodes x {} GPUs, {} GB HBM each, {:.0} TF BF16 peak per GPU\n",
        cluster.num_nodes,
        cluster.gpus_per_node,
        cluster.gpu.mem_bytes >> 30,
        cluster.gpu.peak_bf16_flops / 1e12
    );

    println!("--- Table III: maximum sequence length ---");
    let rows = [
        ("ViT    9.5M", Arch::BaselineVit, ModelConfig::paper_9_5m(), 1, 1, 8),
        ("ViT    10B ", Arch::BaselineVit, ModelConfig::paper_10b(), 1, 1, 8),
        ("Reslim 9.5M", Arch::Reslim, ModelConfig::paper_9_5m(), 1, 1, 8),
        ("Reslim 9.5M", Arch::Reslim, ModelConfig::paper_9_5m(), 4, 16, 128),
        ("Reslim 10B ", Arch::Reslim, ModelConfig::paper_10b(), 4, 16, 512),
    ];
    for (name, arch, cfg, compression, tiles, gpus) in rows {
        let row = max_sequence_row(&cfg, arch, compression, tiles, gpus, &cluster);
        if row.oom {
            println!("{name}  c={compression}x tiles={tiles} gpus={gpus:>4}: OOM");
        } else {
            println!(
                "{name}  c={compression}x tiles={tiles:>2} gpus={gpus:>4}: {:>12} tokens, output [{}, {}, {}], {:.1} km",
                row.max_seq, row.out_shape[0], row.out_shape[1], row.out_shape[2], row.resolution_km
            );
        }
    }

    println!("\n--- Fig 6(b): strong scaling, 64 -> 4096 nodes ---");
    for (name, cfg) in [
        ("9.5M", ModelConfig::paper_9_5m()),
        ("126M", ModelConfig::paper_126m()),
        ("1B  ", ModelConfig::paper_1b()),
        ("10B ", ModelConfig::paper_10b()),
    ] {
        let series = strong_scaling_series(&cfg, &[512, 2048, 8192, 32_768], &cluster);
        print!("{name}: ");
        for p in &series {
            print!(
                "{} nodes {:.1e}s/sample ({:.0}%)  ",
                p.nodes,
                p.per_sample_s,
                p.efficiency * 100.0
            );
        }
        println!();
    }
}
