//! The foundation-model property: ONE Reslim model trains and predicts
//! across datasets with different grid sizes (paper Table I pretrains a
//! single model on 32x64-grid and 180x360-grid ERA5 pairs; Sec. II argues
//! Swin-style hierarchies cannot do this because their architecture is tied
//! to the resolution).

use orbit2::trainer::{Trainer, TrainerConfig};
use orbit2_climate::{DownscalingDataset, LatLonGrid, MixedDataset, VariableSet};
use orbit2_model::{ModelConfig, ReslimModel};
use orbit2_tensor::Tensor;

fn mixed() -> MixedDataset {
    MixedDataset::new(vec![
        DownscalingDataset::new(LatLonGrid::global(16, 32), VariableSet::era5_like(), 4, 16, 5),
        DownscalingDataset::new(LatLonGrid::global(32, 64), VariableSet::era5_like(), 4, 16, 6),
    ])
}

#[test]
fn one_model_trains_across_two_resolutions() {
    let corpus = mixed();
    let model = ReslimModel::new(ModelConfig::tiny().with_channels(23, 3), 9);
    // Normalizer fitted on one member applies to both (same variables).
    let cfg = TrainerConfig { steps: 0, lr: 1.5e-3, warmup: 2, log_every: 1, ..Default::default() };
    let mut trainer = Trainer::new(model, &corpus.members()[0], cfg);

    let lat_fields: Vec<Tensor> = corpus
        .members()
        .iter()
        .map(|m| {
            Tensor::from_vec(
                vec![m.fine_grid().h, m.fine_grid().w],
                m.fine_grid().latitude_weight_field(),
            )
        })
        .collect();

    // Interleaved steps across the two resolutions with the SAME model.
    let mut first_losses = [f32::NAN; 2];
    let mut last_losses = [f32::NAN; 2];
    for step in 0..24 {
        let (member, sample) = corpus.sample(step);
        let loss = trainer
            .step(&sample.input, &sample.target, &lat_fields[member], 4)
            .expect("finite step");
        if first_losses[member].is_nan() {
            first_losses[member] = loss;
        }
        last_losses[member] = loss;
    }
    // Learning happened on BOTH resolutions with one parameter set.
    for m in 0..2 {
        assert!(
            last_losses[m] < first_losses[m],
            "member {m} did not learn: {} -> {}",
            first_losses[m],
            last_losses[m]
        );
    }
}

#[test]
fn one_model_predicts_both_grid_sizes() {
    let corpus = mixed();
    let model = ReslimModel::new(ModelConfig::tiny().with_channels(23, 3), 10);
    let norm = orbit2_climate::Normalizer::fit(&corpus.members()[0], 4);
    for member in corpus.members() {
        let s = member.sample(0);
        let pred = orbit2::inference::downscale(&model, &norm, &s.input, None, 1.0).unwrap();
        assert_eq!(pred.shape(), s.target.shape(), "grid {}x{}", member.fine_grid().h, member.fine_grid().w);
        assert!(pred.all_finite());
    }
}
