//! End-to-end integration: synthetic data → Reslim training → tiled
//! inference → metrics → checkpoint, across every crate in the workspace.

use orbit2::checkpoint::{load_model, save_model};
use orbit2::eval::evaluate_model;
use orbit2::trainer::{Trainer, TrainerConfig};
use orbit2_climate::{DownscalingDataset, LatLonGrid, Split, VariableSet};
use orbit2_imaging::tiles::TileSpec;
use orbit2_model::{ModelConfig, ReslimModel};

fn dataset(seed: u64) -> DownscalingDataset {
    DownscalingDataset::new(LatLonGrid::conus(32, 64), VariableSet::daymet_like(), 4, 30, seed)
}

#[test]
fn training_improves_heldout_metrics() {
    let ds = dataset(11);
    let test_idx = ds.indices(Split::Test);

    // Untrained baseline scores.
    let untrained = ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 5);
    let norm = orbit2_climate::Normalizer::fit(&ds, 4);
    let before = evaluate_model(&untrained, &norm, &ds, &test_idx, None, 1.0).unwrap();

    // Train the same architecture.
    let cfg = TrainerConfig { steps: 50, lr: 2e-3, warmup: 5, log_every: 10, ..Default::default() };
    let mut trainer = Trainer::new(ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 5), &ds, cfg);
    let report = trainer.train(&ds);
    assert!(report.final_loss.unwrap().is_finite());
    assert_eq!(report.completed_steps, 50);
    let after = evaluate_model(&trainer.model, &trainer.normalizer, &ds, &test_idx, None, 1.0).unwrap();

    // Training must improve R2 for the temperature channels.
    for (b, a) in before.iter().zip(&after) {
        if b.name.starts_with('t') {
            assert!(
                a.report.r2 > b.report.r2,
                "{}: R2 {} -> {} did not improve",
                b.name,
                b.report.r2,
                a.report.r2
            );
        }
    }
    // A trained tiny model on this easy synthetic task should reach a
    // decent temperature R2 (the paper reaches 0.99 on real data at scale).
    assert!(after[0].report.r2 > 0.5, "tmin R2 {} too low after training", after[0].report.r2);
}

#[test]
fn checkpoint_preserves_trained_behaviour() {
    let ds = dataset(13);
    let cfg = TrainerConfig { steps: 15, lr: 2e-3, warmup: 2, log_every: 5, ..Default::default() };
    let mut trainer = Trainer::new(ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 6), &ds, cfg);
    trainer.train(&ds);

    let dir = std::env::temp_dir().join("orbit2_e2e_ckpt");
    save_model(&trainer.model, &dir).unwrap();
    let restored = load_model(&dir).unwrap();

    let s = ds.sample(0);
    let a = orbit2::inference::downscale(&trainer.model, &trainer.normalizer, &s.input, None, 1.0)
        .unwrap();
    let b =
        orbit2::inference::downscale(&restored, &trainer.normalizer, &s.input, None, 1.0).unwrap();
    a.assert_close(&b, 0.0);
}

#[test]
fn tiles_bf16_training_pipeline_learns() {
    // The full paper training configuration: TILES + halo + emulated BF16
    // with dynamic gradient scaling, all at once.
    let ds = dataset(17);
    let cfg = TrainerConfig {
        steps: 25,
        lr: 2e-3,
        warmup: 3,
        tile_spec: Some(TileSpec { tiles_y: 2, tiles_x: 2, halo: 1 }),
        bf16: true,
        log_every: 5,
        ..Default::default()
    };
    let mut trainer = Trainer::new(ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 8), &ds, cfg);
    let report = trainer.train(&ds);
    let first = report.losses.first().unwrap().1;
    let last = report.final_loss.unwrap();
    assert!(last < first, "combined TILES+BF16 pipeline must learn: {first} -> {last}");
}

#[test]
fn capacity_ordering_on_equal_budget() {
    // The larger twin should fit the training data at least as well as the
    // tiny twin on the same budget (Table IV's capacity argument).
    let ds = dataset(19);
    let steps = 40;
    let run = |model: ReslimModel| {
        let cfg = TrainerConfig { steps, lr: 2e-3, warmup: 4, log_every: 10, ..Default::default() };
        let mut t = Trainer::new(model, &ds, cfg);
        t.train(&ds).final_loss.unwrap()
    };
    let tiny_loss = run(ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 9));
    let small_loss = run(ReslimModel::new(ModelConfig::small().with_channels(7, 3), 9));
    assert!(
        small_loss < tiny_loss * 1.5,
        "bigger model should not be much worse: tiny {tiny_loss}, small {small_loss}"
    );
}
