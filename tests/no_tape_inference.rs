//! CI guard: the inference path must never construct an autograd tape.
//!
//! Every `Tape` creation (including on rayon worker threads) bumps a
//! process-wide counter; this file contains exactly one test so no other
//! test's training work can pollute the count.

use orbit2_autograd::tape_constructions;
use orbit2_climate::{DownscalingDataset, LatLonGrid, Normalizer, Split, VariableSet};
use orbit2_imaging::tiles::TileSpec;
use orbit2_model::{ModelConfig, ReslimModel};

#[test]
fn downscale_and_evaluate_build_zero_tapes() {
    let ds = DownscalingDataset::new(LatLonGrid::conus(16, 32), VariableSet::daymet_like(), 4, 8, 3);
    let model = ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 2);
    let norm = Normalizer::fit(&ds, 4);
    let session = model.session();

    let before = tape_constructions();

    // Whole-sample, tiled, compressed, session-reuse and full-split
    // evaluation: the complete inference surface.
    let s = ds.sample(0);
    let _ = orbit2::inference::downscale(&model, &norm, &s.input, None, 1.0).unwrap();
    let spec = TileSpec { tiles_y: 2, tiles_x: 2, halo: 2 };
    let _ = orbit2::inference::downscale(&model, &norm, &s.input, Some(spec), 1.0).unwrap();
    let _ = orbit2::inference::downscale(&model, &norm, &s.input, None, 2.0).unwrap();
    let _ = orbit2::inference::downscale_with(&model, &session, &norm, &s.input, None, 1.0)
        .unwrap();
    let test_idx = ds.indices(Split::Test);
    let _ = orbit2::eval::evaluate_model(&model, &norm, &ds, &test_idx, Some(spec), 1.0).unwrap();

    let built = tape_constructions() - before;
    assert_eq!(built, 0, "inference constructed {built} tape(s); it must be tape-free");
}
