//! Bias correction (quantile mapping) as the paper's pipeline uses it:
//! inputs are "normalized and bias corrected" (Sec. II), and the Fig. 8
//! evaluation explicitly notes that inference *without* bias correction
//! cannot perfectly align with a differently-calibrated observation
//! product. These tests exercise that mechanism end to end.

use orbit2_climate::imerg::{observe_precipitation, ImergLikeParams};
use orbit2_climate::normalize::quantile_map;
use orbit2_climate::synth::WorldGenerator;
use orbit2_climate::{LatLonGrid, VariableSet};
use orbit2_metrics::precip::log_precip_slice;
use orbit2_metrics::regression::{r2_score, rmse};

fn world() -> WorldGenerator {
    WorldGenerator::new(LatLonGrid::global(32, 64), VariableSet::era5_like(), 77)
}

/// A sensor with a strong *systematic* calibration error (the case bias
/// correction exists for): 60% over-reading with a compressive power law,
/// and little random noise.
fn biased_sensor() -> ImergLikeParams {
    ImergLikeParams {
        gain: 1.6,
        gamma: 0.8,
        noise_sigma: 0.05,
        ..Default::default()
    }
}

/// Quantile-mapping the model product onto the observation climatology must
/// reduce the distribution mismatch — the whole point of statistical bias
/// correction.
#[test]
fn quantile_mapping_reduces_observation_mismatch() {
    let w = world();
    // "Model" product: the truth; "observation": the distorted satellite.
    // Calibration period: timesteps 0..8; evaluation period: 10..14.
    let mut cal_model = Vec::new();
    let mut cal_obs = Vec::new();
    for t in 0..8 {
        cal_model.extend(w.field("prcp", t));
        cal_obs.extend(observe_precipitation(&w, t, biased_sensor()));
    }
    let mut raw_err = 0.0;
    let mut corrected_err = 0.0;
    for t in 10..14 {
        let model = w.field("prcp", t);
        let obs = observe_precipitation(&w, t, biased_sensor());
        let corrected = quantile_map(&cal_model, &cal_obs, &model, 101);
        raw_err += rmse(&log_precip_slice(&model), &log_precip_slice(&obs));
        corrected_err += rmse(&log_precip_slice(&corrected), &log_precip_slice(&obs));
    }
    assert!(
        corrected_err < raw_err,
        "bias correction must reduce log-RMSE: raw {raw_err:.4} vs corrected {corrected_err:.4}"
    );
}

/// Bias correction fixes the *distribution*, not the spatial pattern: R²
/// (pattern agreement) should stay in the same regime while the marginal
/// statistics move toward the observations.
#[test]
fn correction_preserves_spatial_correlation() {
    let w = world();
    let mut cal_model = Vec::new();
    let mut cal_obs = Vec::new();
    for t in 0..8 {
        cal_model.extend(w.field("prcp", t));
        cal_obs.extend(observe_precipitation(&w, t, biased_sensor()));
    }
    let model = w.field("prcp", 12);
    let obs = observe_precipitation(&w, 12, biased_sensor());
    let corrected = quantile_map(&cal_model, &cal_obs, &model, 101);
    let r2_raw = r2_score(&log_precip_slice(&model), &log_precip_slice(&obs));
    let r2_cor = r2_score(&log_precip_slice(&corrected), &log_precip_slice(&obs));
    assert!(r2_cor >= r2_raw - 0.05, "correction must not destroy the pattern: {r2_raw} -> {r2_cor}");
    // Mean bias shrinks.
    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
    let bias_raw = (mean(&model) - mean(&obs)).abs();
    let bias_cor = (mean(&corrected) - mean(&obs)).abs();
    assert!(bias_cor <= bias_raw + 1e-3, "mean bias must not grow: {bias_raw} -> {bias_cor}");
}

/// The calibration is stable: mapping the calibration sample onto itself is
/// the identity (up to interpolation error).
#[test]
fn self_mapping_is_identity() {
    let w = world();
    let sample = w.field("prcp", 3);
    let mapped = quantile_map(&sample, &sample, &sample, 201);
    for (a, b) in mapped.iter().zip(&sample) {
        assert!((a - b).abs() < 0.05 * (1.0 + b.abs()), "{a} vs {b}");
    }
}
