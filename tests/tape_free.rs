//! The tape-free inference engine must be *bit-identical* to the training
//! tape's forward pass: both execution contexts drive the same tensor
//! kernels in the same order, so there is no tolerance here — `data()`
//! equality, exactly. Run under `ORBIT2_DISABLE_SIMD=1` as well; the
//! contexts must agree in both kernel modes.

use orbit2::tiling::{split_stack, stitch_predictions};
use orbit2_autograd::Tape;
use orbit2_imaging::tiles::{TileGeometry, TileSpec};
use orbit2_model::binder::Binder;
use orbit2_model::{BaselineVit, ModelConfig, ReslimModel};
use orbit2_tensor::random::randn;
use orbit2_tensor::Tensor;
use proptest::prelude::*;
use rayon::prelude::*;

/// The configuration grid the property tests sample from: both CPU twins
/// at a couple of channel layouts.
fn config(idx: usize) -> ModelConfig {
    match idx {
        0 => ModelConfig::tiny().with_channels(3, 2),
        1 => ModelConfig::tiny().with_channels(7, 3),
        _ => ModelConfig::small().with_channels(4, 3),
    }
}

fn tile_spec(idx: usize) -> TileSpec {
    match idx {
        0 => TileSpec { tiles_y: 1, tiles_x: 1, halo: 0 },
        1 => TileSpec { tiles_y: 2, tiles_x: 2, halo: 2 },
        _ => TileSpec { tiles_y: 2, tiles_x: 1, halo: 1 },
    }
}

/// Reference: the pre-refactor tape-recording forward.
fn taped_forward(model: &ReslimModel, input: &Tensor, compression: f32) -> Tensor {
    let tape = Tape::new();
    let binder = Binder::new(&tape, &model.params);
    model.forward(&binder, input, compression).0.value()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn reslim_session_forward_bit_identical_to_tape(
        cfg_idx in 0usize..3,
        comp_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let cfg = config(cfg_idx);
        let compression = [1.0f32, 2.0, 4.0][comp_idx];
        let model = ReslimModel::new(cfg, seed);
        let session = model.session();
        let input = randn(&[cfg.in_channels, 8, 16], seed + 1);
        let taped = taped_forward(&model, &input, compression);
        let free = model.forward(&session, &input, compression).0.into_tensor();
        prop_assert_eq!(taped.data(), free.data());
    }

    #[test]
    fn baseline_session_forward_bit_identical_to_tape(
        cfg_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let cfg = config(cfg_idx);
        let model = BaselineVit::new(cfg, seed);
        let session = model.session();
        let input = randn(&[cfg.in_channels, 4, 8], seed + 1);
        let taped = {
            let tape = Tape::new();
            let binder = Binder::new(&tape, &model.params);
            model.forward(&binder, &input).value()
        };
        let free = model.forward(&session, &input).into_tensor();
        prop_assert_eq!(taped.data(), free.data());
    }

    #[test]
    fn tiled_session_inference_bit_identical_to_tape(
        cfg_idx in 0usize..3,
        spec_idx in 0usize..3,
        comp_idx in 0usize..2,
        seed in 0u64..1000,
    ) {
        let cfg = config(cfg_idx);
        let spec = tile_spec(spec_idx);
        let compression = [1.0f32, 2.0][comp_idx];
        let model = ReslimModel::new(cfg, seed);
        let session = model.session();
        let input = randn(&[cfg.in_channels, 8, 16], seed + 2);
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let tiles = split_stack(&input, spec);
        // The session is one shared object across the parallel tile workers.
        let run = |use_tape: bool| -> Tensor {
            let preds: Vec<(TileGeometry, Tensor)> = tiles
                .par_iter()
                .map(|(geom, tile_input)| {
                    let pred = if use_tape {
                        taped_forward(&model, tile_input, compression)
                    } else {
                        model.forward(&session, tile_input, compression).0.into_tensor()
                    };
                    (*geom, pred)
                })
                .collect();
            stitch_predictions(&preds, h, w, model.cfg.scale_factor)
        };
        let taped = run(true);
        let free = run(false);
        prop_assert_eq!(taped.data(), free.data());
    }
}
