//! Failure-injection tests: the training stack must degrade gracefully
//! under numerical blow-ups, corrupt checkpoints and pathological inputs.

use orbit2::checkpoint::{load_trainer_state, CHECKPOINT_MAGIC, CHECKPOINT_VERSION};
use orbit2::fault::{FaultAction, FaultKind, FaultPlan};
use orbit2::trainer::{Trainer, TrainerConfig};
use orbit2_climate::{DownscalingDataset, LatLonGrid, VariableSet};
use orbit2_imaging::tiles::TileSpec;
use orbit2_model::{ModelConfig, ReslimModel};
use orbit2_tensor::Tensor;
use std::io::ErrorKind;
use std::path::PathBuf;

fn dataset() -> DownscalingDataset {
    DownscalingDataset::new(LatLonGrid::conus(16, 32), VariableSet::daymet_like(), 4, 20, 3)
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("orbit2_fi_{name}"))
}

#[test]
fn absurd_learning_rate_never_poisons_parameters() {
    // An exploding configuration: gigantic LR. Steps that produce
    // non-finite gradients must be skipped, leaving parameters finite.
    let ds = dataset();
    let cfg = TrainerConfig { steps: 10, lr: 1e12, warmup: 0, log_every: 1, ..Default::default() };
    let mut trainer = Trainer::new(ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 1), &ds, cfg);
    let report = trainer.train(&ds);
    for (name, t) in trainer.model.params.iter() {
        assert!(t.all_finite(), "parameter {name} went non-finite");
    }
    // Every step the blow-up suppressed must be on the record, not lost.
    assert!(
        !report.skipped.is_empty(),
        "a 1e12 learning rate must produce recorded skips"
    );
    assert_eq!(report.completed_steps + report.skipped.len(), 10);
}

#[test]
fn bf16_scaler_recovers_from_overflow() {
    // BF16 + huge initial loss scale: overflow steps are skipped, the scale
    // backs off, and training proceeds with finite parameters.
    let ds = dataset();
    let cfg = TrainerConfig { steps: 15, lr: 5e-3, warmup: 2, bf16: true, log_every: 5, ..Default::default() };
    let mut trainer = Trainer::new(ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 2), &ds, cfg);
    let report = trainer.train(&ds);
    assert!(report.final_loss.unwrap().is_finite());
    for (name, t) in trainer.model.params.iter() {
        assert!(t.all_finite(), "parameter {name} went non-finite under bf16");
    }
}

#[test]
fn corrupt_checkpoint_is_rejected_not_loaded() {
    let dir = std::env::temp_dir().join("orbit2_corrupt_ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("config.json"), "{not valid json").unwrap();
    std::fs::write(dir.join("params.json"), "{}").unwrap();
    assert!(orbit2::checkpoint::load_model(&dir).is_err());
}

#[test]
fn missing_checkpoint_directory_errors_cleanly() {
    let dir = std::env::temp_dir().join("orbit2_no_such_ckpt_dir_xyz");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(orbit2::checkpoint::load_model(&dir).is_err());
}

#[test]
fn inference_with_nan_input_does_not_panic() {
    // Garbage in the input field must not crash the tiled pipeline; the
    // output may be NaN but the code path survives.
    let ds = dataset();
    let model = ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 4);
    let norm = orbit2_climate::Normalizer::fit(&ds, 2);
    let mut input = ds.sample(0).input;
    input.data_mut()[0] = f32::NAN;
    let pred = orbit2::inference::downscale(&model, &norm, &input, None, 1.0).unwrap();
    assert_eq!(pred.shape(), ds.sample(0).target.shape());
}

#[test]
fn extreme_compression_target_still_partitions() {
    // A compression target far beyond what the field supports must clamp
    // gracefully, not panic or drop tokens.
    let ds = dataset();
    let model = ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 5);
    let norm = orbit2_climate::Normalizer::fit(&ds, 2);
    let s = ds.sample(1);
    let pred = orbit2::inference::downscale(&model, &norm, &s.input, None, 1000.0).unwrap();
    assert_eq!(pred.shape(), s.target.shape());
    assert!(pred.all_finite());
}

#[test]
fn constant_input_channel_survives_normalization() {
    // Static channels (e.g. a land mask that is all-land in a small region)
    // have ~zero variance; the normalizer's std floor must keep everything
    // finite end to end.
    let ds = dataset();
    let norm = orbit2_climate::Normalizer::fit(&ds, 2);
    let mut input = ds.sample(0).input;
    // Force one channel constant.
    let plane = input.shape()[1] * input.shape()[2];
    for v in &mut input.data_mut()[..plane] {
        *v = 0.5;
    }
    let n = norm.normalize_input(&input);
    assert!(n.all_finite());
}

#[test]
fn zero_tv_weight_and_huge_tv_weight_both_train() {
    let ds = dataset();
    for tv in [0.0f32, 10.0] {
        let cfg = TrainerConfig {
            steps: 6,
            lr: 1e-3,
            warmup: 1,
            log_every: 2,
            loss: orbit2_model::BayesianLossCfg { tv_weight: tv, ..Default::default() },
            ..Default::default()
        };
        let mut trainer =
            Trainer::new(ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 6), &ds, cfg);
        let report = trainer.train(&ds);
        assert!(report.final_loss.unwrap().is_finite(), "tv_weight {tv} broke training");
    }
}

#[test]
fn evaluate_on_single_sample_works() {
    // Smallest possible evaluation set.
    let ds = dataset();
    let model = ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 7);
    let norm = orbit2_climate::Normalizer::fit(&ds, 2);
    let reports = orbit2::eval::evaluate_model(&model, &norm, &ds, &[19], None, 1.0).unwrap();
    assert_eq!(reports.len(), 3);
    for r in reports {
        assert!(r.report.rmse.is_finite());
    }
}

#[test]
fn chaos_run_with_panic_nan_and_straggler_still_converges() {
    // The acceptance scenario: a 20-step tiled + DDP run with one injected
    // rank panic, one NaN gradient and one straggler must converge anyway,
    // and all three events must appear in the fault log.
    let ds = dataset();
    let cfg = TrainerConfig {
        steps: 20,
        lr: 2e-3,
        warmup: 2,
        tile_spec: Some(TileSpec { tiles_y: 2, tiles_x: 2, halo: 1 }),
        ddp_replicas: 2,
        log_every: 5,
        ..Default::default()
    };
    let mut trainer =
        Trainer::new(ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 21), &ds, cfg);
    // 2 replicas x 4 tiles = 8 jobs per step.
    trainer.set_fault_plan(
        FaultPlan::none()
            .with_event(3, 2, FaultKind::Panic)
            .with_event(7, 5, FaultKind::NaNGradient)
            .with_event(12, 0, FaultKind::Straggler(5)),
    );
    let report = trainer.train(&ds);
    assert_eq!(report.completed_steps, 20, "no step may be lost to transient faults");
    let first = report.losses.first().unwrap().1;
    let last = report.final_loss.unwrap();
    assert!(last < first, "chaos run must still learn: {first} -> {last}");
    let kinds: Vec<FaultKind> = report.faults.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&FaultKind::Panic), "panic not logged: {:?}", report.faults);
    assert!(kinds.contains(&FaultKind::NaNGradient), "NaN not logged: {:?}", report.faults);
    assert!(
        kinds.contains(&FaultKind::Straggler(5)),
        "straggler not logged: {:?}",
        report.faults
    );
    // Transient faults retry clean; the straggler merely finishes late.
    for e in &report.faults {
        assert!(e.injected);
        let want = if matches!(e.kind, FaultKind::Straggler(_)) {
            FaultAction::Completed
        } else {
            FaultAction::Retried
        };
        assert_eq!(e.action, want, "unexpected recovery for {e:?}");
    }
    for (name, t) in trainer.model.params.iter() {
        assert!(t.all_finite(), "parameter {name} went non-finite under chaos");
    }
}

#[test]
fn seeded_random_fault_plan_is_deterministic_and_survivable() {
    let ds = dataset();
    let cfg = TrainerConfig {
        steps: 15,
        lr: 1e-3,
        warmup: 2,
        ddp_replicas: 2,
        log_every: 5,
        ..Default::default()
    };
    let run = |seed: u64| {
        let mut t =
            Trainer::new(ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 22), &ds, cfg);
        t.set_fault_plan(FaultPlan::seeded(seed, 0.08, 0.08, 0.08).with_straggle_ms(3));
        t.train(&ds)
    };
    let a = run(42);
    let b = run(42);
    assert!(!a.faults.is_empty(), "p=0.24 over 30 jobs should fire at least once");
    assert_eq!(a.faults, b.faults, "same seed must inject the same faults");
    assert_eq!(a.final_loss, b.final_loss, "fault-injected runs must stay deterministic");
}

#[test]
fn nan_injected_step_is_logged_not_lost() {
    // A NaN gradient on the only job of step 2: the retry recovers it, the
    // step completes, and the event is recorded — nothing silently vanishes.
    let ds = dataset();
    let cfg = TrainerConfig { steps: 5, lr: 1e-3, warmup: 1, log_every: 1, ..Default::default() };
    let mut trainer =
        Trainer::new(ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 23), &ds, cfg);
    trainer.set_fault_plan(FaultPlan::none().with_event(2, 0, FaultKind::NaNGradient));
    let report = trainer.train(&ds);
    assert_eq!(report.completed_steps, 5);
    assert_eq!(report.skipped, vec![]);
    assert_eq!(report.faults.len(), 1);
    let e = report.faults[0];
    assert_eq!((e.step, e.job, e.kind, e.action), (2, 0, FaultKind::NaNGradient, FaultAction::Retried));
    assert!(e.injected);
    assert!(report.losses.iter().any(|(s, l)| *s == 2 && l.is_finite()));
}

#[test]
fn persistent_failure_of_every_job_skips_the_step_with_reason() {
    use orbit2::fault::SkipReason;
    // A persistent panic on the single job of step 1 kills both the attempt
    // and the retry: the step must be skipped and say why.
    let ds = dataset();
    let cfg = TrainerConfig { steps: 3, lr: 1e-3, warmup: 0, log_every: 1, ..Default::default() };
    let mut trainer =
        Trainer::new(ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 24), &ds, cfg);
    trainer
        .set_fault_plan(FaultPlan::none().with_event(1, 0, FaultKind::Panic).with_persistent());
    let report = trainer.train(&ds);
    assert_eq!(report.completed_steps, 2);
    assert_eq!(report.skipped, vec![(1, SkipReason::AllJobsFailed)]);
    assert_eq!(report.faults.len(), 1);
    assert_eq!(report.faults[0].action, FaultAction::Dropped);
}

#[test]
fn crash_restart_resumes_bit_identically() {
    // 20 straight steps vs 10 steps + full-state checkpoint + resume + 10
    // steps: the parameters must match bit for bit.
    let ds = dataset();
    let cfg = TrainerConfig { steps: 20, lr: 2e-3, warmup: 3, log_every: 5, ..Default::default() };
    let model = || ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 25);

    let mut straight = Trainer::new(model(), &ds, cfg);
    let full = straight.train(&ds);

    let path = tmp_path("resume.ckpt");
    let _ = std::fs::remove_file(&path);
    let mut cfg_auto = cfg;
    cfg_auto.checkpoint_every = 10;
    let mut crashed = Trainer::new(model(), &ds, cfg_auto);
    crashed.set_checkpoint_path(&path);
    crashed.train_for(&ds, 10);
    assert_eq!(crashed.global_step(), 10);
    assert!(path.exists(), "auto-checkpoint at step 10 must exist");
    drop(crashed); // the crash

    let mut resumed = Trainer::resume(&ds, cfg, &path).expect("resume from checkpoint");
    assert_eq!(resumed.global_step(), 10);
    let tail = resumed.train(&ds);
    assert_eq!(resumed.global_step(), 20);

    for (name, t) in straight.model.params.iter() {
        let r = resumed.model.params.get(name);
        assert_eq!(t.data(), r.data(), "parameter {name} diverged after resume");
    }
    assert_eq!(full.final_loss, tail.final_loss, "final loss must match bit for bit");
}

#[test]
fn truncated_trainer_checkpoint_is_rejected() {
    let ds = dataset();
    let cfg = TrainerConfig { steps: 2, lr: 1e-3, warmup: 0, log_every: 1, ..Default::default() };
    let mut t = Trainer::new(ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 26), &ds, cfg);
    t.train(&ds);
    let path = tmp_path("truncated.ckpt");
    t.save_checkpoint(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    let err = load_trainer_state(&path).expect_err("truncated checkpoint must fail");
    assert_eq!(err.kind(), ErrorKind::InvalidData);
}

#[test]
fn flipped_byte_in_trainer_checkpoint_fails_crc() {
    let ds = dataset();
    let cfg = TrainerConfig { steps: 2, lr: 1e-3, warmup: 0, log_every: 1, ..Default::default() };
    let mut t = Trainer::new(ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 27), &ds, cfg);
    t.train(&ds);
    let path = tmp_path("bitflip.ckpt");
    t.save_checkpoint(&path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip one bit deep inside the params payload.
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    let err = load_trainer_state(&path).expect_err("corrupt checkpoint must fail");
    assert_eq!(err.kind(), ErrorKind::InvalidData);
    assert!(err.to_string().contains("CRC"), "should blame the checksum: {err}");
}

#[test]
fn missing_section_and_wrong_version_are_rejected() {
    let path = tmp_path("empty.ckpt");
    std::fs::write(&path, format!("{CHECKPOINT_MAGIC} v{CHECKPOINT_VERSION}\n")).unwrap();
    let err = load_trainer_state(&path).expect_err("headerless checkpoint must fail");
    assert!(err.to_string().contains("missing section"), "unhelpful error: {err}");

    let path = tmp_path("future.ckpt");
    std::fs::write(&path, format!("{CHECKPOINT_MAGIC} v9\n")).unwrap();
    let err = load_trainer_state(&path).expect_err("future version must fail");
    assert!(err.to_string().contains("version"), "unhelpful error: {err}");

    let path = tmp_path("not_a.ckpt");
    std::fs::write(&path, "GARBAGE\n").unwrap();
    assert!(load_trainer_state(&path).is_err());
}

#[test]
fn tensor_ops_reject_shape_abuse() {
    use std::panic::catch_unwind;
    assert!(catch_unwind(|| Tensor::zeros(vec![2, 2]).matmul(&Tensor::zeros(vec![3, 2]))).is_err());
    assert!(catch_unwind(|| Tensor::zeros(vec![2]).add(&Tensor::zeros(vec![3]))).is_err());
    assert!(catch_unwind(|| Tensor::zeros(vec![4]).reshape(vec![3])).is_err());
    assert!(catch_unwind(|| Tensor::zeros(vec![2, 2]).slice_axis(0, 1, 5)).is_err());
}
