//! Failure-injection tests: the training stack must degrade gracefully
//! under numerical blow-ups, corrupt checkpoints and pathological inputs.

use orbit2::trainer::{Trainer, TrainerConfig};
use orbit2_climate::{DownscalingDataset, LatLonGrid, VariableSet};
use orbit2_model::{ModelConfig, ReslimModel};
use orbit2_tensor::Tensor;

fn dataset() -> DownscalingDataset {
    DownscalingDataset::new(LatLonGrid::conus(16, 32), VariableSet::daymet_like(), 4, 20, 3)
}

#[test]
fn absurd_learning_rate_never_poisons_parameters() {
    // An exploding configuration: gigantic LR. Steps that produce
    // non-finite gradients must be skipped, leaving parameters finite.
    let ds = dataset();
    let cfg = TrainerConfig { steps: 10, lr: 1e12, warmup: 0, log_every: 1, ..Default::default() };
    let mut trainer = Trainer::new(ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 1), &ds, cfg);
    trainer.train(&ds);
    for (name, t) in trainer.model.params.iter() {
        assert!(t.all_finite(), "parameter {name} went non-finite");
    }
}

#[test]
fn bf16_scaler_recovers_from_overflow() {
    // BF16 + huge initial loss scale: overflow steps are skipped, the scale
    // backs off, and training proceeds with finite parameters.
    let ds = dataset();
    let cfg = TrainerConfig { steps: 15, lr: 5e-3, warmup: 2, bf16: true, log_every: 5, ..Default::default() };
    let mut trainer = Trainer::new(ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 2), &ds, cfg);
    let report = trainer.train(&ds);
    assert!(report.final_loss.is_finite());
    for (name, t) in trainer.model.params.iter() {
        assert!(t.all_finite(), "parameter {name} went non-finite under bf16");
    }
}

#[test]
fn corrupt_checkpoint_is_rejected_not_loaded() {
    let dir = std::env::temp_dir().join("orbit2_corrupt_ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("config.json"), "{not valid json").unwrap();
    std::fs::write(dir.join("params.json"), "{}").unwrap();
    assert!(orbit2::checkpoint::load_model(&dir).is_err());
}

#[test]
fn missing_checkpoint_directory_errors_cleanly() {
    let dir = std::env::temp_dir().join("orbit2_no_such_ckpt_dir_xyz");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(orbit2::checkpoint::load_model(&dir).is_err());
}

#[test]
fn inference_with_nan_input_does_not_panic() {
    // Garbage in the input field must not crash the tiled pipeline; the
    // output may be NaN but the code path survives.
    let ds = dataset();
    let model = ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 4);
    let norm = orbit2_climate::Normalizer::fit(&ds, 2);
    let mut input = ds.sample(0).input;
    input.data_mut()[0] = f32::NAN;
    let pred = orbit2::inference::downscale(&model, &norm, &input, None, 1.0);
    assert_eq!(pred.shape(), ds.sample(0).target.shape());
}

#[test]
fn extreme_compression_target_still_partitions() {
    // A compression target far beyond what the field supports must clamp
    // gracefully, not panic or drop tokens.
    let ds = dataset();
    let model = ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 5);
    let norm = orbit2_climate::Normalizer::fit(&ds, 2);
    let s = ds.sample(1);
    let pred = orbit2::inference::downscale(&model, &norm, &s.input, None, 1000.0);
    assert_eq!(pred.shape(), s.target.shape());
    assert!(pred.all_finite());
}

#[test]
fn constant_input_channel_survives_normalization() {
    // Static channels (e.g. a land mask that is all-land in a small region)
    // have ~zero variance; the normalizer's std floor must keep everything
    // finite end to end.
    let ds = dataset();
    let norm = orbit2_climate::Normalizer::fit(&ds, 2);
    let mut input = ds.sample(0).input;
    // Force one channel constant.
    let plane = input.shape()[1] * input.shape()[2];
    for v in &mut input.data_mut()[..plane] {
        *v = 0.5;
    }
    let n = norm.normalize_input(&input);
    assert!(n.all_finite());
}

#[test]
fn zero_tv_weight_and_huge_tv_weight_both_train() {
    let ds = dataset();
    for tv in [0.0f32, 10.0] {
        let cfg = TrainerConfig {
            steps: 6,
            lr: 1e-3,
            warmup: 1,
            log_every: 2,
            loss: orbit2_model::BayesianLossCfg { tv_weight: tv, ..Default::default() },
            ..Default::default()
        };
        let mut trainer =
            Trainer::new(ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 6), &ds, cfg);
        let report = trainer.train(&ds);
        assert!(report.final_loss.is_finite(), "tv_weight {tv} broke training");
    }
}

#[test]
fn evaluate_on_single_sample_works() {
    // Smallest possible evaluation set.
    let ds = dataset();
    let model = ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 7);
    let norm = orbit2_climate::Normalizer::fit(&ds, 2);
    let reports = orbit2::eval::evaluate_model(&model, &norm, &ds, &[19], None, 1.0);
    assert_eq!(reports.len(), 3);
    for r in reports {
        assert!(r.report.rmse.is_finite());
    }
}

#[test]
fn tensor_ops_reject_shape_abuse() {
    use std::panic::catch_unwind;
    assert!(catch_unwind(|| Tensor::zeros(vec![2, 2]).matmul(&Tensor::zeros(vec![3, 2]))).is_err());
    assert!(catch_unwind(|| Tensor::zeros(vec![2]).add(&Tensor::zeros(vec![3]))).is_err());
    assert!(catch_unwind(|| Tensor::zeros(vec![4]).reshape(vec![3])).is_err());
    assert!(catch_unwind(|| Tensor::zeros(vec![2, 2]).slice_axis(0, 1, 5)).is_err());
}
