//! Property-based tests on cross-crate invariants (proptest).

use orbit2_fft::complex::Complex;
use orbit2_fft::{fft, ifft};
use orbit2_imaging::quadtree::{QuadTree, QuadTreeParams};
use orbit2_imaging::tiles::{split_into_tiles, stitch_tiles, TileSpec};
use orbit2_metrics::regression::{r2_score, rmse};
use orbit2_metrics::ssim::ssim;
use orbit2_tensor::attention::{flash_attention, naive_attention, AttentionConfig};
use orbit2_tensor::Tensor;
use proptest::prelude::*;

fn small_field(max_hw: usize) -> impl Strategy<Value = (Vec<f32>, usize, usize)> {
    (2usize..max_hw, 2usize..max_hw).prop_flat_map(|(h, w)| {
        (
            proptest::collection::vec(-10.0f32..10.0, h * w),
            Just(h),
            Just(w),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fft_roundtrip_recovers_signal(values in proptest::collection::vec(-100.0f64..100.0, 1..64)) {
        let mut x: Vec<Complex> = values.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let orig = x.clone();
        fft(&mut x);
        ifft(&mut x);
        for (a, b) in x.iter().zip(&orig) {
            prop_assert!((*a - *b).abs() < 1e-6);
        }
    }

    #[test]
    fn tile_split_stitch_is_identity((field, h, w) in small_field(24), ty in 1usize..4, tx in 1usize..4, halo in 0usize..3) {
        prop_assume!(ty <= h && tx <= w);
        let spec = TileSpec { tiles_y: ty, tiles_x: tx, halo };
        let tiles = split_into_tiles(&field, h, w, spec);
        let back = stitch_tiles(&tiles, h, w);
        prop_assert_eq!(back, field);
    }

    #[test]
    fn quadtree_always_partitions_exactly((field, h, w) in small_field(32), thresh in 0.0f32..0.5) {
        let params = QuadTreeParams { density_threshold: thresh, ..Default::default() };
        let qt = QuadTree::build(&field, h, w, params);
        prop_assert!(qt.is_exact_partition());
        prop_assert!(qt.token_count() >= 1);
        prop_assert!(qt.token_count() <= h * w);
    }

    #[test]
    fn flash_equals_naive_attention(s in 2usize..40, d in 1usize..16, bq in 1usize..16, bk in 1usize..16, seed in 0u64..1000) {
        let q = orbit2_tensor::random::randn(&[s, d], seed);
        let k = orbit2_tensor::random::randn(&[s, d], seed + 1);
        let v = orbit2_tensor::random::randn(&[s, d], seed + 2);
        let a = naive_attention(&q, &k, &v);
        let b = flash_attention(&q, &k, &v, AttentionConfig { block_q: bq, block_kv: bk });
        prop_assert!(a.max_abs_diff(&b) < 1e-3);
    }

    #[test]
    fn ssim_bounded_and_identity((field, h, w) in small_field(20)) {
        let s_self = ssim(&field, &field, h, w);
        prop_assert!((s_self - 1.0).abs() < 1e-6);
        let other: Vec<f32> = field.iter().map(|&x| -x + 1.0).collect();
        let s = ssim(&other, &field, h, w);
        prop_assert!((-1.0001..=1.0001).contains(&s));
    }

    #[test]
    fn r2_identity_and_rmse_nonnegative(values in proptest::collection::vec(-50.0f32..50.0, 2..128), noise in 0.0f32..5.0) {
        prop_assume!(values.iter().any(|&v| (v - values[0]).abs() > 1e-3));
        prop_assert!((r2_score(&values, &values) - 1.0).abs() < 1e-9);
        let pred: Vec<f32> = values.iter().enumerate().map(|(i, &v)| v + noise * ((i % 3) as f32 - 1.0)).collect();
        prop_assert!(rmse(&pred, &values) >= 0.0);
        prop_assert!(r2_score(&pred, &values) <= 1.0 + 1e-9);
    }

    #[test]
    fn broadcasting_add_commutes(a_rows in 1usize..6, cols in 1usize..6, seed in 0u64..100) {
        let a = orbit2_tensor::random::randn(&[a_rows, cols], seed);
        let b = orbit2_tensor::random::randn(&[cols], seed + 1);
        let ab = a.add(&b);
        let ba = b.add(&a);
        prop_assert_eq!(ab.data(), ba.data());
    }

    #[test]
    fn area_downsample_conserves_mean((field, _h, _w) in small_field(16)) {
        // Use an even-sized field derived from the generated one.
        let h2 = 8usize;
        let w2 = 8usize;
        let mut data = vec![0.0f32; h2 * w2];
        for (i, v) in data.iter_mut().enumerate() {
            *v = field[i % field.len()];
        }
        let t = Tensor::from_vec(vec![1, h2, w2], data);
        let d = orbit2_tensor::resize::downsample_area(&t, 2);
        prop_assert!((t.mean() - d.mean()).abs() < 1e-4);
    }

    #[test]
    fn latitude_weights_mean_one(h in 2usize..64, w in 1usize..8) {
        let g = orbit2_climate::LatLonGrid::global(h, w);
        let weights = g.latitude_weights();
        let mean: f32 = weights.iter().sum::<f32>() / weights.len() as f32;
        prop_assert!((mean - 1.0).abs() < 1e-4);
        prop_assert!(weights.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn matmul_distributes_over_addition(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..100) {
        let a = orbit2_tensor::random::randn(&[m, k], seed);
        let b = orbit2_tensor::random::randn(&[k, n], seed + 1);
        let c = orbit2_tensor::random::randn(&[k, n], seed + 2);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    #[test]
    fn conv2d_is_linear_in_input(hw in 4usize..10, seed in 0u64..100, alpha in -3.0f32..3.0) {
        use orbit2_tensor::conv::{conv2d, ConvGeom};
        let x = orbit2_tensor::random::randn(&[1, 2, hw, hw], seed);
        let w = orbit2_tensor::random::randn(&[3, 2, 3, 3], seed + 1);
        let g = ConvGeom::same(3);
        let scaled_out = conv2d(&x.mul_scalar(alpha), &w, None, g);
        let out_scaled = conv2d(&x, &w, None, g).mul_scalar(alpha);
        prop_assert!(scaled_out.max_abs_diff(&out_scaled) < 1e-3);
    }

    #[test]
    fn autograd_gradients_are_linear_in_loss_scale(seed in 0u64..200, scale in 0.1f32..8.0) {
        use orbit2_autograd::Tape;
        let x0 = orbit2_tensor::random::randn(&[5], seed);
        let grad_at = |s: f32| {
            let tape = Tape::new();
            let x = tape.leaf(x0.clone());
            let loss = x.gelu().square().sum().scale(s);
            tape.backward(loss).get(x).unwrap().clone()
        };
        let g1 = grad_at(1.0);
        let gs = grad_at(scale);
        prop_assert!(gs.max_abs_diff(&g1.mul_scalar(scale)) < 1e-3 * (1.0 + scale));
    }

    #[test]
    fn transpose_is_involution(r in 1usize..8, c in 1usize..8, seed in 0u64..100) {
        let a = orbit2_tensor::random::randn(&[r, c], seed);
        let roundtrip = a.transpose2().transpose2();
        prop_assert_eq!(roundtrip.data(), a.data());
    }

    #[test]
    fn bf16_round_is_idempotent_and_bounded(values in proptest::collection::vec(-1e6f32..1e6, 1..64)) {
        use orbit2_tensor::bf16::bf16_round;
        for &v in &values {
            let q = bf16_round(v);
            prop_assert_eq!(bf16_round(q), q);
            if v != 0.0 {
                prop_assert!(((q - v) / v).abs() <= 1.0 / 256.0);
            }
        }
    }

    #[test]
    fn packed_matmul_matches_reference_oracle(m in 1usize..80, k in 1usize..96, n in 1usize..80, seed in 0u64..1000) {
        // Ragged shapes deliberately straddle the MR/NR/KC panel boundaries
        // of the packed kernel; matmul_slices is the scalar blocked oracle.
        use orbit2_tensor::matmul::matmul_slices;
        let a = orbit2_tensor::random::randn(&[m, k], seed);
        let b = orbit2_tensor::random::randn(&[k, n], seed + 1);
        let fast = a.matmul(&b);
        let mut reference = vec![0.0f32; m * n];
        matmul_slices(a.data(), b.data(), &mut reference, m, k, n);
        let r = Tensor::from_vec(vec![m, n], reference);
        prop_assert!(fast.max_abs_diff(&r) < 1e-3 * (k as f32).sqrt());
    }

    #[test]
    fn nt_tn_kernels_match_materialized_transposes(m in 1usize..40, k in 1usize..48, n in 1usize..40, seed in 0u64..1000) {
        let a = orbit2_tensor::random::randn(&[m, k], seed);
        let bt = orbit2_tensor::random::randn(&[n, k], seed + 1);
        let nt = a.matmul_nt(&bt);
        prop_assert!(nt.max_abs_diff(&a.matmul(&bt.transpose2())) < 1e-3 * (k as f32).sqrt());
        let at = orbit2_tensor::random::randn(&[k, m], seed + 2);
        let b = orbit2_tensor::random::randn(&[k, n], seed + 3);
        let tn = at.matmul_tn(&b);
        prop_assert!(tn.max_abs_diff(&at.transpose2().matmul(&b)) < 1e-3 * (k as f32).sqrt());
    }

    #[test]
    fn fused_linear_gelu_matches_unfused(m in 1usize..32, k in 1usize..24, n in 1usize..32, seed in 0u64..1000) {
        use orbit2_tensor::fused::{matmul_bias_act, Activation};
        let x = orbit2_tensor::random::randn(&[m, k], seed);
        let w = orbit2_tensor::random::randn(&[n, k], seed + 1);
        let b = orbit2_tensor::random::randn(&[n], seed + 2);
        let (y, pre) = matmul_bias_act(&x, &w, Some(&b), Activation::Gelu);
        let pre_ref = x.matmul(&w.transpose2()).add(&b.into_reshape(vec![1, n]));
        let y_ref = pre_ref.gelu();
        prop_assert!(y.max_abs_diff(&y_ref) < 1e-3 * (k as f32).sqrt());
        prop_assert!(pre.unwrap().max_abs_diff(&pre_ref) < 1e-3 * (k as f32).sqrt());
    }

    #[test]
    fn fused_layer_norm_matches_two_pass(rows in 1usize..12, d in 2usize..48, seed in 0u64..1000) {
        use orbit2_tensor::fused::layer_norm_rows;
        let x = orbit2_tensor::random::randn(&[rows, d], seed).mul_scalar(3.0).add_scalar(5.0);
        let (norm, inv_std) = layer_norm_rows(x.data(), rows, d, 1e-5);
        for r in 0..rows {
            let row = &x.data()[r * d..(r + 1) * d];
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let is = 1.0 / (var + 1e-5).sqrt();
            prop_assert!((inv_std[r] - is).abs() < 1e-2 * is, "row {} inv_std", r);
            for (j, &nv) in norm[r * d..(r + 1) * d].iter().enumerate() {
                prop_assert!((nv - (row[j] - mean) * is).abs() < 1e-2, "row {} col {}", r, j);
            }
        }
    }

    #[test]
    fn fused_softmax_matches_unfused(rows in 1usize..10, d in 1usize..40, seed in 0u64..1000) {
        use orbit2_tensor::fused::softmax_rows;
        let x = orbit2_tensor::random::randn(&[rows, d], seed).mul_scalar(4.0);
        let mut buf = x.data().to_vec();
        softmax_rows(&mut buf, d);
        let reference = x.softmax_last();
        for (a, b) in buf.iter().zip(reference.data()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn bf16_slice_matches_scalar_map(values in proptest::collection::vec(-1e6f32..1e6, 1..96)) {
        use orbit2_tensor::bf16::{bf16_round, bf16_round_slice};
        let mut rounded = values.clone();
        bf16_round_slice(&mut rounded);
        for (&orig, &got) in values.iter().zip(&rounded) {
            prop_assert_eq!(got.to_bits(), bf16_round(orig).to_bits());
        }
    }

    #[test]
    fn cow_clone_mutation_never_changes_original((field, h, w) in small_field(16), s in -2.0f32..2.0) {
        // Tensors share storage on clone; any mutation path (in-place ops or
        // raw data_mut) must fault the clone into private storage first.
        let original = Tensor::from_vec(vec![h, w], field.clone());
        let mut cloned = original.clone();
        cloned.scale_(s);
        cloned.add_(&original);
        for v in cloned.data_mut() {
            *v += 1.0;
        }
        prop_assert_eq!(original.data(), &field[..]);
        // And the reverse direction: mutating the original leaves the clone alone.
        let snapshot = cloned.clone();
        let mut orig2 = original;
        orig2.scale_(0.0);
        prop_assert_eq!(cloned.data(), snapshot.data());
    }

    #[test]
    fn grad_scaler_unscale_is_inverse(scale_pow in 1u32..16, values in proptest::collection::vec(-100.0f32..100.0, 1..32)) {
        use orbit2_autograd::GradScaler;
        let scale = (1u32 << scale_pow) as f32;
        let mut scaler = GradScaler::new(scale);
        let mut grads = orbit2_autograd::params::GradMap::new();
        let n = values.len();
        let scaled: Vec<f32> = values.iter().map(|&v| v * scale).collect();
        grads.insert("w".into(), Tensor::from_vec(vec![n], scaled));
        prop_assert!(scaler.unscale_and_check(&mut grads));
        for (a, b) in grads["w"].data().iter().zip(&values) {
            prop_assert!((a - b).abs() <= 1e-2 * (1.0 + b.abs()));
        }
    }
}

/// The thread-local buffer pool must hand back previously freed storage
/// instead of allocating fresh buffers once the workload becomes steady-state
/// (satellite acceptance test: allocation counter observes reuse).
#[test]
fn buffer_pool_recycles_freed_buffers() {
    use orbit2_tensor::pool;
    if std::env::var_os("ORBIT2_DISABLE_POOL").is_some() {
        return; // Pool explicitly disabled; nothing to assert.
    }
    pool::clear();
    pool::reset_stats();
    for step in 0..8u64 {
        let t = orbit2_tensor::random::randn(&[32, 32], step);
        let u = t.add(&t).mul(&t);
        assert_eq!(u.len(), 32 * 32);
        // `t` and `u` drop here; their buffers recycle into the pool and the
        // next iteration's allocations of the same capacity must reuse them.
    }
    let stats = pool::stats();
    assert!(
        stats.reuses > 0,
        "expected pooled buffer reuse after repeated same-shape allocations, got {stats:?}"
    );
    assert!(stats.fresh_allocs < 8 * 3, "fresh allocations not amortized: {stats:?}");
}
