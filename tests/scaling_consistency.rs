//! Integration tests on the simulated scaling stack: the planner, the
//! parallelism cost models and the cluster simulator must tell a mutually
//! consistent story that matches the paper's qualitative claims.

use orbit2::planner::{arch_comparison, max_sequence_row, strong_scaling_series, Arch};
use orbit2_cluster::topology::ClusterSpec;
use orbit2_model::profiler::SequenceAccounting;
use orbit2_model::ModelConfig;
use orbit2_parallel::{estimate_step, ParallelismPlan, ReslimCostModel, WorkloadProfile};

fn cluster() -> ClusterSpec {
    ClusterSpec::frontier()
}

#[test]
fn headline_claims_hold_in_simulation() {
    let c = cluster();
    // Claim 1: Reslim unlocks billion-token sequences for the 9.5M model.
    let flagship = max_sequence_row(&ModelConfig::paper_9_5m(), Arch::Reslim, 4, 16, 128, &c);
    assert!(flagship.max_seq > 1_000_000_000);
    assert!(flagship.resolution_km < 2.0);
    // Claim 2: 10B model reaches hundreds of millions of tokens at 512 GPUs.
    let big = max_sequence_row(&ModelConfig::paper_10b(), Arch::Reslim, 4, 16, 512, &c);
    assert!(big.max_seq > 100_000_000);
    // Claim 3: both crush the prior 188K-token state of the art.
    assert!(flagship.max_seq > 188_000 * 1000);
    assert!(big.max_seq > 188_000 * 100);
}

#[test]
fn table2a_and_table3_are_consistent_on_oom() {
    // The same memory model drives both tables: the 777K-token ViT OOM in
    // Table II(a) must be implied by a Table III ViT cap below 777K.
    let c = cluster();
    let cap = max_sequence_row(&ModelConfig::paper_9_5m(), Arch::BaselineVit, 1, 1, 8, &c);
    assert!(cap.max_seq < 777_600, "ViT cap {} must sit below the OOM case", cap.max_seq);
    let acc = SequenceAccounting { out_h: 720, out_w: 1440, out_c: 3, patch: 2, factor: 4 };
    let (_, oom, _, _) = arch_comparison(&ModelConfig::paper_9_5m(), &acc, 128, &c);
    assert!(oom);
}

#[test]
fn strong_scaling_monotone_and_band() {
    let c = cluster();
    for cfg in [ModelConfig::paper_126m(), ModelConfig::paper_10b()] {
        let series = strong_scaling_series(&cfg, &[512, 2048, 8192, 32_768], &c);
        for pair in series.windows(2) {
            assert!(pair[1].per_sample_s < pair[0].per_sample_s, "time/sample must fall with GPUs");
            assert!(pair[1].sustained_flops > pair[0].sustained_flops);
        }
        let last = series.last().unwrap();
        assert!(last.efficiency > 0.80, "efficiency {} at 32K GPUs", last.efficiency);
    }
}

#[test]
fn throughput_hierarchy_matches_fig6b() {
    // Paper: at 4096 nodes the sustained throughput ranks
    // 9.5M (363 PF) < 126M (1.3 EF) < 1B (1.5 EF) < 10B (1.8 EF).
    let c = cluster();
    let sustained = |cfg: ModelConfig| {
        strong_scaling_series(&cfg, &[512, 32_768], &c)
            .last()
            .unwrap()
            .sustained_flops
    };
    let s95 = sustained(ModelConfig::paper_9_5m());
    let s126 = sustained(ModelConfig::paper_126m());
    let s1b = sustained(ModelConfig::paper_1b());
    let s10b = sustained(ModelConfig::paper_10b());
    assert!(s95 < s126 && s126 < s1b && s1b < s10b, "{s95:.2e} {s126:.2e} {s1b:.2e} {s10b:.2e}");
}

#[test]
fn tiles_cost_model_agrees_with_step_estimator() {
    // Two independent models of tiling: the calibrated analytic cost model
    // and the estimate_step simulator must agree that 16 tiles on 16 GPUs
    // beats 1 tile on 1 GPU by more than 10x per sample.
    let c = cluster();
    let cost = ReslimCostModel::new();
    let analytic = cost.speedup(16, 1, 16, 1);
    assert!(analytic > 10.0);

    let workload = WorkloadProfile {
        params: 9_500_000,
        layers: 6,
        embed_dim: 256,
        heads: 4,
        eff_seq: 16_200,
        flops_per_sample: 2e14,
        out_elems: 720 * 1440 * 3,
        in_elems: 180 * 360 * 23,
        flash_attention: true,
    };
    let single = estimate_step(&ParallelismPlan { ddp: 1, tiles: 1, fsdp: 1, tensor_parallel: 1 }, &workload, &c, 1.0);
    let tiled = estimate_step(
        &ParallelismPlan { ddp: 1, tiles: 16, fsdp: 1, tensor_parallel: 1 },
        &workload,
        &c,
        cost.halo_overhead(16),
    );
    assert!(
        single.per_sample_s / tiled.per_sample_s > 5.0,
        "simulator tiling speedup too small: {} / {}",
        single.per_sample_s,
        tiled.per_sample_s
    );
}

#[test]
fn compression_capacity_and_speed_tradeoff() {
    // More compression -> longer max sequences (Table III) AND faster
    // samples (Table II(b)); both must hold simultaneously.
    let c = cluster();
    let cost = ReslimCostModel::new();
    let mut prev_seq = 0u64;
    let mut prev_speed = 0.0f64;
    for compression in [1usize, 4, 8] {
        let row = max_sequence_row(&ModelConfig::paper_9_5m(), Arch::Reslim, compression, 1, 8, &c);
        assert!(row.max_seq > prev_seq, "compression {compression}x must extend capacity");
        prev_seq = row.max_seq;
        let speed = if compression == 1 { 1.0 } else { cost.compression_speedup(compression) };
        assert!(speed >= prev_speed, "compression {compression}x must not slow down");
        prev_speed = speed;
    }
}

#[test]
fn fig5_placement_is_respected_at_scale() {
    // The full 4096-node configuration keeps TP inside nodes and maps the
    // gradient all-reduce across nodes (Fig. 5's hierarchy).
    let c = cluster();
    let plan = ParallelismPlan { ddp: 256, tiles: 2, fsdp: 8, tensor_parallel: 8 };
    assert_eq!(plan.world_size(), 32_768);
    plan.validate(&c).unwrap();
    let placement = plan.groups().placement(&c);
    assert!(placement.tp_level <= orbit2_cluster::topology::CommLevel::InterCard);
    assert_eq!(placement.grad_level, orbit2_cluster::topology::CommLevel::InterNode);
}
