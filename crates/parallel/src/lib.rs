//! # orbit2-parallel
//!
//! The orthogonal-parallelism layer of the reproduction (paper Sec. III-C):
//!
//! * [`plan`] — the four-way decomposition `world = DDP × TILES × FSDP ×
//!   TP` with the rank→hardware mapping of Fig. 5 (tensor parallelism inside
//!   a node, FSDP across the neighbouring nodes of a TILES group, TILES
//!   groups on adjacent node pairs, DDP across groups);
//! * [`estimate`] — per-step time and memory estimation for a training
//!   configuration on the simulated cluster: roofline compute, Megatron-style
//!   tensor-parallel syncs (with the Hybrid-OP reduction), layer-wise FSDP
//!   gather/reduce-scatter overlapped with compute, the once-per-batch
//!   TILES/DDP gradient all-reduce, and halo exchanges;
//! * [`cost`] — the calibrated analytic sample-time model behind the
//!   compression/tiling speedup tables (Table II(b)) and the TILES
//!   scaling curve (Fig. 6(a)).

pub mod cost;
pub mod estimate;
pub mod plan;
pub mod seq_parallel;
pub mod swin;

pub use cost::{CostParams, ReslimCostModel};
pub use estimate::{estimate_step, StepEstimate, WorkloadProfile};
pub use plan::{ParallelismPlan, RankGroups};
pub use seq_parallel::{SeqParallelConfig, SeqParallelEstimate};
pub use swin::{swin_max_tokens, SwinHierarchy};
