//! The orthogonal parallelism plan and its mapping onto the cluster.
//!
//! Rank layout (Fig. 5): global rank `r` decomposes as
//! `r = ((d·T + t)·F + f)·P + p` with `p` the tensor-parallel coordinate
//! (innermost, so TP groups are contiguous ranks inside a node), `f` the
//! FSDP coordinate (spanning the neighbouring nodes of a TILES group), `t`
//! the TILES tile index, and `d` the DDP replica (outermost, across the
//! cluster).

use orbit2_cluster::topology::{ClusterSpec, CommLevel};
use serde::{Deserialize, Serialize};

/// Degrees of each orthogonal parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelismPlan {
    /// Data-parallel replicas (outermost).
    pub ddp: usize,
    /// TILES sequence-parallel degree (tiles per sample).
    pub tiles: usize,
    /// FSDP sharding degree.
    pub fsdp: usize,
    /// Tensor-parallel degree (innermost).
    pub tensor_parallel: usize,
}

impl ParallelismPlan {
    /// A pure-DDP plan.
    pub fn ddp_only(ddp: usize) -> Self {
        Self { ddp, tiles: 1, fsdp: 1, tensor_parallel: 1 }
    }

    /// Total GPU count the plan occupies.
    pub fn world_size(&self) -> usize {
        self.ddp * self.tiles * self.fsdp * self.tensor_parallel
    }

    /// Number of samples processed concurrently per step (one per DDP
    /// replica; tiles/FSDP/TP all cooperate on the same sample).
    pub fn samples_per_step(&self) -> usize {
        self.ddp
    }

    /// Validate against the cluster: world must fit, and TP should not span
    /// nodes (the paper maps tensor parallelism to the in-node fabric).
    pub fn validate(&self, cluster: &ClusterSpec) -> Result<(), String> {
        if self.ddp == 0 || self.tiles == 0 || self.fsdp == 0 || self.tensor_parallel == 0 {
            return Err("all parallelism degrees must be >= 1".into());
        }
        if self.world_size() > cluster.total_gpus() {
            return Err(format!(
                "plan needs {} GPUs, cluster has {}",
                self.world_size(),
                cluster.total_gpus()
            ));
        }
        if self.tensor_parallel > cluster.gpus_per_node {
            return Err(format!(
                "tensor parallel degree {} exceeds node size {}",
                self.tensor_parallel, cluster.gpus_per_node
            ));
        }
        Ok(())
    }

    /// Decompose a global rank into `(ddp, tile, fsdp, tp)` coordinates.
    pub fn coords(&self, rank: usize) -> (usize, usize, usize, usize) {
        assert!(rank < self.world_size());
        let p = rank % self.tensor_parallel;
        let rest = rank / self.tensor_parallel;
        let f = rest % self.fsdp;
        let rest = rest / self.fsdp;
        let t = rest % self.tiles;
        let d = rest / self.tiles;
        (d, t, f, p)
    }

    /// Inverse of [`ParallelismPlan::coords`].
    pub fn rank_of(&self, d: usize, t: usize, f: usize, p: usize) -> usize {
        ((d * self.tiles + t) * self.fsdp + f) * self.tensor_parallel + p
    }

    /// Build the communication groups of every kind.
    pub fn groups(&self) -> RankGroups {
        let mut tp = Vec::new();
        let mut fsdp = Vec::new();
        let mut tiles = Vec::new();
        let mut grad = Vec::new();
        for d in 0..self.ddp {
            for t in 0..self.tiles {
                for f in 0..self.fsdp {
                    tp.push((0..self.tensor_parallel).map(|p| self.rank_of(d, t, f, p)).collect());
                }
                for p in 0..self.tensor_parallel {
                    fsdp.push((0..self.fsdp).map(|f| self.rank_of(d, t, f, p)).collect());
                }
            }
            for f in 0..self.fsdp {
                for p in 0..self.tensor_parallel {
                    tiles.push((0..self.tiles).map(|t| self.rank_of(d, t, f, p)).collect());
                }
            }
        }
        // Gradient averaging: corresponding shards across DDP x TILES.
        for f in 0..self.fsdp {
            for p in 0..self.tensor_parallel {
                let mut g = Vec::with_capacity(self.ddp * self.tiles);
                for d in 0..self.ddp {
                    for t in 0..self.tiles {
                        g.push(self.rank_of(d, t, f, p));
                    }
                }
                grad.push(g);
            }
        }
        RankGroups { tp_groups: tp, fsdp_groups: fsdp, tile_groups: tiles, grad_groups: grad }
    }
}

/// All communication groups induced by a plan.
#[derive(Debug, Clone)]
pub struct RankGroups {
    /// Tensor-parallel groups (frequent activation all-reduces).
    pub tp_groups: Vec<Vec<usize>>,
    /// FSDP groups (per-layer parameter gather / gradient reduce-scatter).
    pub fsdp_groups: Vec<Vec<usize>>,
    /// TILES sequence-parallel groups (halo exchange, output stitching).
    pub tile_groups: Vec<Vec<usize>>,
    /// Gradient-averaging groups across DDP x TILES replicas.
    pub grad_groups: Vec<Vec<usize>>,
}

impl RankGroups {
    /// The hierarchy level each group kind lands on — the Fig. 5 check.
    pub fn placement(&self, cluster: &ClusterSpec) -> PlacementReport {
        let worst = |gs: &[Vec<usize>]| {
            gs.iter()
                .map(|g| cluster.group_level(g))
                .max()
                .unwrap_or(CommLevel::IntraCard)
        };
        PlacementReport {
            tp_level: worst(&self.tp_groups),
            fsdp_level: worst(&self.fsdp_groups),
            tiles_level: worst(&self.tile_groups),
            grad_level: worst(&self.grad_groups),
        }
    }
}

/// Worst-case communication level per group kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementReport {
    /// Level of tensor-parallel traffic.
    pub tp_level: CommLevel,
    /// Level of FSDP traffic.
    pub fsdp_level: CommLevel,
    /// Level of TILES traffic.
    pub tiles_level: CommLevel,
    /// Level of the gradient all-reduce.
    pub grad_level: CommLevel,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> ParallelismPlan {
        ParallelismPlan { ddp: 2, tiles: 2, fsdp: 2, tensor_parallel: 4 }
    }

    #[test]
    fn world_size_product() {
        assert_eq!(plan().world_size(), 32);
        assert_eq!(ParallelismPlan::ddp_only(8).world_size(), 8);
    }

    #[test]
    fn coords_roundtrip() {
        let p = plan();
        for r in 0..p.world_size() {
            let (d, t, f, q) = p.coords(r);
            assert_eq!(p.rank_of(d, t, f, q), r);
        }
    }

    #[test]
    fn tp_groups_are_contiguous_ranks() {
        let p = plan();
        let g = p.groups();
        assert_eq!(g.tp_groups.len(), 2 * 2 * 2);
        for group in &g.tp_groups {
            assert_eq!(group.len(), 4);
            for w in group.windows(2) {
                assert_eq!(w[1], w[0] + 1, "TP ranks must be adjacent");
            }
        }
    }

    #[test]
    fn groups_partition_world() {
        let p = plan();
        let g = p.groups();
        // Every rank appears in exactly one group of each kind.
        for groups in [&g.tp_groups, &g.fsdp_groups, &g.tile_groups, &g.grad_groups] {
            let mut seen = vec![0usize; p.world_size()];
            for group in groups.iter() {
                for &r in group {
                    seen[r] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "group kind must partition ranks: {seen:?}");
        }
    }

    #[test]
    fn fig5_placement_hierarchy() {
        // TP=8 fills a node; FSDP=2 spans the adjacent node of the TILES
        // group; grad all-reduce spans the cluster.
        let cluster = ClusterSpec::frontier();
        let p = ParallelismPlan { ddp: 4, tiles: 2, fsdp: 2, tensor_parallel: 8 };
        p.validate(&cluster).unwrap();
        let report = p.groups().placement(&cluster);
        assert_eq!(report.tp_level, CommLevel::InterCard, "TP stays inside a node");
        assert_eq!(report.fsdp_level, CommLevel::InterNode, "FSDP spans neighbouring nodes");
        assert_eq!(report.grad_level, CommLevel::InterNode);
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let cluster = ClusterSpec::frontier();
        assert!(ParallelismPlan { ddp: 0, tiles: 1, fsdp: 1, tensor_parallel: 1 }
            .validate(&cluster)
            .is_err());
        assert!(ParallelismPlan { ddp: 1, tiles: 1, fsdp: 1, tensor_parallel: 16 }
            .validate(&cluster)
            .is_err());
        assert!(ParallelismPlan { ddp: 1_000_000, tiles: 1, fsdp: 1, tensor_parallel: 1 }
            .validate(&cluster)
            .is_err());
        assert!(ParallelismPlan { ddp: 512, tiles: 16, fsdp: 4, tensor_parallel: 1 }
            .validate(&cluster)
            .is_ok());
    }

    #[test]
    fn samples_per_step_is_ddp() {
        assert_eq!(plan().samples_per_step(), 2);
    }

    #[test]
    fn grad_groups_span_ddp_and_tiles() {
        let p = plan();
        let g = p.groups();
        assert_eq!(g.grad_groups.len(), p.fsdp * p.tensor_parallel);
        for group in &g.grad_groups {
            assert_eq!(group.len(), p.ddp * p.tiles);
        }
    }
}
