//! Ring/Ulysses-style sequence parallelism — the prior state of the art
//! TILES is compared against (paper Sec. II, "Scaling algorithm solutions";
//! limited to 188K tokens in the paper's reference 22).
//!
//! Sequence parallelism shards the token axis across GPUs but keeps
//! *global* attention: every token still attends to every other token, so
//! each of the `P` ranks must exchange its K/V shards with all other ranks
//! every layer (ring pass), and the attention FLOPs stay quadratic in the
//! full sequence. This module models that cost and memory so the paper's
//! claim — sequence parallelism neither removes the quadratic compute nor
//! scales past ~10^5 tokens — can be checked against TILES quantitatively.

use orbit2_cluster::collective::{collective_time, Collective};
use orbit2_cluster::roofline::{compute_time, GpuEfficiency};
use orbit2_cluster::topology::ClusterSpec;
use serde::{Deserialize, Serialize};

/// A sequence-parallel training configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SeqParallelConfig {
    /// Number of ranks the sequence is sharded over.
    pub ranks: usize,
    /// Transformer depth.
    pub layers: usize,
    /// Embedding dimension.
    pub embed_dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Total model parameters (replicated on every rank — sequence
    /// parallelism does not shard the model).
    pub params: u64,
}

/// Cost estimate of one training step under ring sequence parallelism.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SeqParallelEstimate {
    /// Per-rank attention + MLP compute time (s).
    pub compute_s: f64,
    /// Per-layer ring K/V exchange time, summed over layers, fwd+bwd (s).
    pub ring_comm_s: f64,
    /// Total step time (s).
    pub step_s: f64,
    /// Per-rank memory (bytes).
    pub memory_bytes: u64,
    /// Whether the step fits in GPU memory.
    pub fits: bool,
}

impl SeqParallelConfig {
    /// Estimate one step at global sequence length `seq` on `cluster`.
    pub fn estimate(&self, seq: u64, cluster: &ClusterSpec) -> SeqParallelEstimate {
        assert!(self.ranks >= 1);
        let p = self.ranks as f64;
        let s = seq as f64;
        let d = self.embed_dim as f64;
        let l = self.layers as f64;
        // Compute: attention is quadratic in the *global* sequence; each
        // rank owns s/P query rows attending to all s keys, plus its MLP
        // share. Training = 3x forward.
        let attn = 4.0 * (s / p) * s * d;
        let mlp = 24.0 * (s / p) * d * d;
        let flops = 3.0 * l * (attn + mlp);
        let eff = GpuEfficiency::for_model_size(self.params);
        let compute_s = compute_time(flops, &cluster.gpu, eff);

        // Ring exchange: every layer, every rank sends/receives the full
        // K/V set in P-1 ring steps => ~2 * s * d * 2 bytes crossing each
        // rank per layer, forward and backward.
        let group: Vec<usize> = (0..self.ranks).collect();
        let kv_bytes = (2.0 * s * d * 2.0) as u64;
        let per_layer = collective_time(Collective::AllGather, kv_bytes, &group, cluster);
        let ring_comm_s = 2.0 * l * per_layer;

        // Memory: replicated model (weights+grads+Adam = 16 B/param), the
        // rank's activation shard, and the *gathered K/V* of the full
        // sequence (the structural difference from TILES: global attention
        // needs global keys), plus flash-style working set.
        let model_bytes = self.params as f64 * 16.0;
        let act_bytes = l * (s / p) * d * 14.0 * 2.0;
        let gathered_kv = 2.0 * s * d * 2.0;
        let memory_bytes = (model_bytes + act_bytes + gathered_kv) as u64 + (2u64 << 30);
        let fits = memory_bytes <= cluster.gpu.mem_bytes;

        SeqParallelEstimate {
            compute_s,
            ring_comm_s,
            step_s: compute_s + ring_comm_s,
            memory_bytes,
            fits,
        }
    }

    /// Largest global sequence that fits per the memory model.
    pub fn max_sequence(&self, cluster: &ClusterSpec) -> u64 {
        let fits = |s: u64| self.estimate(s, cluster).fits;
        if !fits(1) {
            return 0;
        }
        let mut lo = 1u64;
        let mut hi = 1u64 << 40;
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if fits(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(ranks: usize) -> SeqParallelConfig {
        // The 9.5M paper configuration.
        SeqParallelConfig { ranks, layers: 6, embed_dim: 256, heads: 4, params: 9_500_000 }
    }

    fn cluster() -> ClusterSpec {
        ClusterSpec::frontier()
    }

    #[test]
    fn max_sequence_sits_in_the_188k_regime() {
        // The paper cites 188K tokens as the sequence-parallel state of the
        // art on Frontier; our model should cap in the same order of
        // magnitude (10^5 - low 10^6), far below TILES' billions.
        let c = cluster();
        let cap = cfg(16).max_sequence(&c);
        assert!(cap > 20_000, "cap {cap} too small");
        assert!(cap < 20_000_000, "cap {cap} should stay far below TILES' billions");
    }

    #[test]
    fn compute_stays_quadratic_despite_more_ranks() {
        // Doubling ranks halves per-rank compute, but doubling the sequence
        // still quadruples attention work: the fundamental non-fix.
        let c = cluster();
        let e1 = cfg(16).estimate(100_000, &c);
        let e2 = cfg(16).estimate(200_000, &c);
        assert!(
            e2.compute_s / e1.compute_s > 3.0,
            "attention must stay quadratic: {} -> {}",
            e1.compute_s,
            e2.compute_s
        );
    }

    #[test]
    fn ring_comm_grows_with_sequence_and_ranks() {
        let c = cluster();
        let small = cfg(8).estimate(50_000, &c).ring_comm_s;
        let longer = cfg(8).estimate(200_000, &c).ring_comm_s;
        assert!(longer > 3.0 * small);
        // Communication overhead fraction grows with rank count at fixed
        // sequence (the paper: "substantial inter-GPU communication
        // overhead ... limits its scalability").
        let few = cfg(4).estimate(100_000, &c);
        let many = cfg(64).estimate(100_000, &c);
        let frac_few = few.ring_comm_s / few.step_s;
        let frac_many = many.ring_comm_s / many.step_s;
        assert!(frac_many > frac_few, "comm fraction must grow: {frac_few} -> {frac_many}");
    }

    #[test]
    fn more_ranks_extend_capacity_sublinearly() {
        // The gathered-KV term is not sharded, so capacity saturates.
        let c = cluster();
        let cap8 = cfg(8).max_sequence(&c);
        let cap128 = cfg(128).max_sequence(&c);
        assert!(cap128 > cap8);
        assert!(
            (cap128 as f64) < cap8 as f64 * 16.0,
            "capacity must be sublinear in ranks: {cap8} -> {cap128}"
        );
    }

    #[test]
    fn model_replication_ooms_large_models() {
        // 10B params replicated = 160 GB > 64 GB HBM: sequence parallelism
        // cannot even host the large model (needs the orthogonal model
        // parallelisms TILES composes with).
        let c = cluster();
        let big = SeqParallelConfig { ranks: 64, layers: 11, embed_dim: 8192, heads: 32, params: 10_000_000_000 };
        assert_eq!(big.max_sequence(&c), 0);
    }
}
