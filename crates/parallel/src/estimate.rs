//! Full step-time and memory estimation for a (plan, workload, cluster)
//! triple — the engine behind the strong-scaling figure (Fig. 6(b)) and the
//! maximum-sequence-length table (Table III).

use crate::plan::ParallelismPlan;
use orbit2_cluster::collective::{collective_time, hierarchical_allreduce_time, Collective};
use orbit2_cluster::des::overlapped_time;
use orbit2_cluster::memory::{MemoryBreakdown, TrainingMemoryModel};
use orbit2_cluster::roofline::{compute_time, GpuEfficiency};
use orbit2_cluster::topology::ClusterSpec;
use serde::{Deserialize, Serialize};

/// Static description of one training workload (model + sample geometry).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Total model parameters.
    pub params: u64,
    /// Transformer depth.
    pub layers: usize,
    /// Embedding dimension.
    pub embed_dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Effective ViT sequence length per *sample* (after channel
    /// aggregation, low-res operation and adaptive compression; before
    /// tiling).
    pub eff_seq: u64,
    /// Forward+backward FLOPs per sample at that effective sequence.
    pub flops_per_sample: f64,
    /// Output pixels x channels per sample (decode staging).
    pub out_elems: u64,
    /// Input pixels x channels per sample (tokenize staging).
    pub in_elems: u64,
    /// Whether attention uses the flash kernel.
    pub flash_attention: bool,
}

/// Itemized per-step estimate.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StepEstimate {
    /// Roofline compute time per GPU.
    pub compute_s: f64,
    /// Tensor-parallel activation all-reduces (exposed).
    pub tp_comm_s: f64,
    /// Layer-wise FSDP gather/reduce-scatter (exposed after overlap).
    pub fsdp_comm_s: f64,
    /// Once-per-batch gradient all-reduce across DDP x TILES.
    pub grad_allreduce_s: f64,
    /// Halo exchange for TILES.
    pub halo_s: f64,
    /// Total step wall-clock.
    pub step_s: f64,
    /// Wall-clock per sample (step time / samples per step).
    pub per_sample_s: f64,
    /// FLOPs actually executed per sample (after the tiling reduction of
    /// the quadratic attention term, before halo overhead).
    pub executed_flops_per_sample: f64,
    /// Per-GPU memory of the dominant rank.
    pub memory: MemoryBreakdown,
    /// Whether the step fits in GPU memory.
    pub fits: bool,
}

/// Estimate one training step of `workload` under `plan` on `cluster`.
///
/// `halo_overhead` multiplies per-tile compute (≥ 1; from
/// [`crate::cost::ReslimCostModel::halo_overhead`]).
pub fn estimate_step(
    plan: &ParallelismPlan,
    workload: &WorkloadProfile,
    cluster: &ClusterSpec,
    halo_overhead: f64,
) -> StepEstimate {
    plan.validate(cluster).expect("invalid plan");
    assert!(halo_overhead >= 1.0);
    let eff = GpuEfficiency::for_model_size(workload.params);
    let groups = plan.groups();

    // --- Compute: tiling divides the linear work by T but the quadratic
    // attention work by T^2 per tile (T tiles total => attention FLOPs drop
    // by T overall) — the core TILES complexity argument (Sec. III-B).
    let seq_per_tile = (workload.eff_seq as f64 / plan.tiles as f64 * halo_overhead).ceil();
    let attn_untiled =
        3.0 * 4.0 * workload.layers as f64 * (workload.eff_seq as f64).powi(2) * workload.embed_dim as f64;
    let attn_untiled = attn_untiled.min(workload.flops_per_sample);
    let linear_flops = workload.flops_per_sample - attn_untiled;
    let sample_flops = linear_flops + attn_untiled / plan.tiles as f64;
    let flops_per_gpu =
        sample_flops * halo_overhead / (plan.tiles as f64 * plan.tensor_parallel as f64);
    let compute_s = compute_time(flops_per_gpu, &cluster.gpu, eff);

    // --- Tensor parallel: Megatron issues 4 activation all-reduces per
    // layer (2 forward, 2 backward); Hybrid-OP's alternating row/column
    // sharding (paper Sec. III-D) merges consecutive shards and halves the
    // frequency. We always model Hybrid-OP on, matching the paper.
    let tp_comm_s = if plan.tensor_parallel > 1 {
        let act_bytes = (seq_per_tile * workload.embed_dim as f64 * 2.0) as u64;
        let per_layer = collective_time(Collective::AllReduce, act_bytes, &groups.tp_groups[0], cluster);
        let hybrid_op_factor = 0.5;
        4.0 * workload.layers as f64 * per_layer * hybrid_op_factor
    } else {
        0.0
    };

    // --- FSDP: per layer, all-gather params (fwd + bwd) and reduce-scatter
    // grads (bwd). Layer-wise wrapping overlaps most of it with compute.
    let fsdp_comm_s = if plan.fsdp > 1 {
        let layer_param_bytes =
            (workload.params as f64 / workload.layers as f64 / plan.tensor_parallel as f64 * 2.0) as u64;
        let g = &groups.fsdp_groups[0];
        let per_layer = 2.0 * collective_time(Collective::AllGather, layer_param_bytes, g, cluster)
            + collective_time(Collective::ReduceScatter, layer_param_bytes, g, cluster);
        let total = per_layer * workload.layers as f64;
        // Overlap with compute: only the non-hidden fraction is exposed.
        overlapped_time(compute_s, total, 0.25) - compute_s.max(total * 0.75).min(compute_s)
    } else {
        0.0
    };
    let fsdp_comm_s = fsdp_comm_s.max(0.0);

    // --- Gradient all-reduce: once per batch over DDP x TILES replicas of
    // each shard (paper: "minimal communication frequency ... once per data
    // batch").
    let grad_bytes =
        (workload.params as f64 / (plan.tensor_parallel * plan.fsdp) as f64 * 2.0) as u64;
    let grad_allreduce_s = hierarchical_allreduce_time(grad_bytes, &groups.grad_groups[0], cluster);

    // --- Halo exchange between neighbouring tiles (input scatter).
    let halo_s = if plan.tiles > 1 {
        let halo_elems = (workload.in_elems as f64 * (halo_overhead - 1.0) / plan.tiles as f64) as u64;
        collective_time(Collective::HaloExchange, halo_elems * 2, &groups.tile_groups[0], cluster)
    } else {
        0.0
    };

    // Synchronization jitter: every step ends in a world-wide barrier (the
    // gradient all-reduce), so the step runs at the pace of the slowest
    // rank. OS noise, network contention and data-loading stragglers make
    // that tail grow with world size; 1.2% per doubling beyond 512 GPUs is
    // calibrated to the paper's 92-98% efficiency band at 32,768 GPUs.
    let world = plan.world_size() as f64;
    let jitter = 1.0 + 0.012 * (world / 512.0).log2().max(0.0);
    let step_s = (compute_s + tp_comm_s + fsdp_comm_s + grad_allreduce_s + halo_s) * jitter;
    let per_sample_s = step_s / plan.samples_per_step() as f64;

    // --- Memory on one GPU.
    let mem_model = TrainingMemoryModel {
        params_total: workload.params,
        layers: workload.layers,
        embed_dim: workload.embed_dim,
        heads: workload.heads,
        tp_shard: plan.tensor_parallel,
        fsdp_shard: plan.fsdp,
        flash_attention: workload.flash_attention,
        act_factor: 14.0,
    };
    let memory = mem_model.step_memory(
        seq_per_tile as u64,
        workload.out_elems / plan.tiles as u64 / plan.tensor_parallel as u64,
        workload.in_elems / plan.tiles as u64,
    );
    let fits = memory.fits(&cluster.gpu);

    StepEstimate {
        compute_s,
        tp_comm_s,
        fsdp_comm_s,
        grad_allreduce_s,
        halo_s,
        step_s,
        per_sample_s,
        executed_flops_per_sample: sample_flops,
        memory,
        fits,
    }
}

/// Strong-scaling series: per-sample time and efficiency at several GPU
/// counts, holding everything but the DDP degree fixed. Efficiency is
/// relative to the first entry (the paper uses 512 GPUs as 100%).
pub fn strong_scaling(
    base_plan: &ParallelismPlan,
    workload: &WorkloadProfile,
    cluster: &ClusterSpec,
    halo_overhead: f64,
    gpu_counts: &[usize],
) -> Vec<(usize, f64, f64)> {
    let group = base_plan.tiles * base_plan.fsdp * base_plan.tensor_parallel;
    let mut series = Vec::with_capacity(gpu_counts.len());
    let mut baseline: Option<f64> = None;
    for &gpus in gpu_counts {
        assert!(gpus % group == 0, "GPU count {gpus} not divisible by group size {group}");
        let plan = ParallelismPlan { ddp: gpus / group, ..*base_plan };
        let est = estimate_step(&plan, workload, cluster, halo_overhead);
        let work = est.per_sample_s * gpus as f64; // GPU-seconds per sample
        let eff = match baseline {
            None => {
                baseline = Some(work);
                1.0
            }
            Some(b) => b / work,
        };
        series.push((gpus, est.per_sample_s, eff));
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload_9_5m() -> WorkloadProfile {
        // 112 -> 28 km task: eff seq after channel-aggregation/low-res.
        WorkloadProfile {
            params: 9_500_000,
            layers: 6,
            embed_dim: 256,
            heads: 4,
            eff_seq: 16_200,
            flops_per_sample: 6.0 * 9.5e6 * 16_200.0, // ~6PF fwd+bwd heuristic
            out_elems: 720 * 1440 * 3,
            in_elems: 180 * 360 * 23,
            flash_attention: true,
        }
    }

    fn workload_10b() -> WorkloadProfile {
        WorkloadProfile {
            params: 10_000_000_000,
            layers: 11,
            embed_dim: 8192,
            heads: 32,
            eff_seq: 16_200,
            flops_per_sample: 6.0 * 10.0e9 * 16_200.0,
            out_elems: 720 * 1440 * 3,
            in_elems: 180 * 360 * 23,
            flash_attention: true,
        }
    }

    fn cluster() -> ClusterSpec {
        ClusterSpec::frontier()
    }

    #[test]
    fn ddp_scales_per_sample_time_down() {
        let w = workload_9_5m();
        let c = cluster();
        let t8 = estimate_step(&ParallelismPlan::ddp_only(8), &w, &c, 1.0).per_sample_s;
        let t64 = estimate_step(&ParallelismPlan::ddp_only(64), &w, &c, 1.0).per_sample_s;
        assert!(t64 < t8 / 6.0, "near-linear DDP scaling: {t8} -> {t64}");
    }

    #[test]
    fn tensor_parallel_cuts_compute_adds_comm() {
        let w = workload_10b();
        let c = cluster();
        let solo = estimate_step(
            &ParallelismPlan { ddp: 1, tiles: 1, fsdp: 8, tensor_parallel: 1 },
            &w,
            &c,
            1.0,
        );
        let tp8 = estimate_step(
            &ParallelismPlan { ddp: 1, tiles: 1, fsdp: 8, tensor_parallel: 8 },
            &w,
            &c,
            1.0,
        );
        assert!(tp8.compute_s < solo.compute_s / 7.0);
        assert!(tp8.tp_comm_s > 0.0);
        assert_eq!(solo.tp_comm_s, 0.0);
    }

    #[test]
    fn sharding_enables_10b_memory_fit() {
        let w = workload_10b();
        let c = cluster();
        let unsharded = estimate_step(&ParallelismPlan::ddp_only(8), &w, &c, 1.0);
        assert!(!unsharded.fits, "10B unsharded must OOM");
        let sharded = estimate_step(
            &ParallelismPlan { ddp: 1, tiles: 1, fsdp: 64, tensor_parallel: 8 },
            &w,
            &c,
            1.0,
        );
        assert!(sharded.fits, "10B with TP8 x FSDP64 must fit");
    }

    #[test]
    fn strong_scaling_efficiency_in_paper_band() {
        // Paper Fig. 6(b): 92-98% efficiency from 512 to 32,768 GPUs.
        let w = workload_10b();
        let c = cluster();
        let base = ParallelismPlan { ddp: 1, tiles: 2, fsdp: 32, tensor_parallel: 8 };
        let series = strong_scaling(&base, &w, &c, 1.1, &[512, 2048, 8192, 32768]);
        assert_eq!(series[0].2, 1.0);
        for &(gpus, t, eff) in &series[1..] {
            assert!(eff > 0.85 && eff <= 1.001, "{gpus} GPUs: efficiency {eff}");
            assert!(t > 0.0);
        }
        // Per-sample time strictly decreases.
        for pair in series.windows(2) {
            assert!(pair[1].1 < pair[0].1);
        }
    }

    #[test]
    fn halo_overhead_increases_compute() {
        // Use a compute-heavy workload so the fixed step overhead does not
        // mask the halo multiplier.
        let w = WorkloadProfile { flops_per_sample: 5e14, ..workload_9_5m() };
        let c = cluster();
        let plan = ParallelismPlan { ddp: 1, tiles: 16, fsdp: 1, tensor_parallel: 1 };
        let lean = estimate_step(&plan, &w, &c, 1.0);
        let padded = estimate_step(&plan, &w, &c, 1.3);
        assert!(padded.compute_s > lean.compute_s * 1.25);
        assert!(padded.halo_s > 0.0);
    }

    #[test]
    fn tiling_cuts_quadratic_work() {
        // A workload dominated by attention: 16 tiles must reduce the
        // per-sample compute by nearly 16x even on the same GPU count.
        let mut w = workload_9_5m();
        w.eff_seq = 300_000;
        w.flops_per_sample = 3.0 * 4.0 * 6.0 * (w.eff_seq as f64).powi(2) * 256.0;
        let c = cluster();
        let untiled = estimate_step(&ParallelismPlan { ddp: 16, tiles: 1, fsdp: 1, tensor_parallel: 1 }, &w, &c, 1.0);
        let tiled = estimate_step(&ParallelismPlan { ddp: 1, tiles: 16, fsdp: 1, tensor_parallel: 1 }, &w, &c, 1.0);
        assert!(
            tiled.per_sample_s < untiled.per_sample_s / 8.0,
            "tiling must beat DDP on quadratic work: {} vs {}",
            tiled.per_sample_s,
            untiled.per_sample_s
        );
    }

    #[test]
    fn grad_allreduce_grows_slowly_with_ddp() {
        let w = workload_9_5m();
        let c = cluster();
        let small = estimate_step(&ParallelismPlan::ddp_only(16), &w, &c, 1.0);
        let big = estimate_step(&ParallelismPlan::ddp_only(4096), &w, &c, 1.0);
        assert!(big.grad_allreduce_s < small.grad_allreduce_s * 20.0,
            "hierarchical all-reduce must not explode: {} -> {}",
            small.grad_allreduce_s, big.grad_allreduce_s);
    }

    #[test]
    #[should_panic(expected = "invalid plan")]
    fn invalid_plan_panics() {
        let w = workload_9_5m();
        estimate_step(
            &ParallelismPlan { ddp: 1, tiles: 1, fsdp: 1, tensor_parallel: 64 },
            &w,
            &cluster(),
            1.0,
        );
    }
}
