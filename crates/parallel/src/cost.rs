//! Calibrated analytic sample-time model for Reslim under adaptive
//! compression and TILES tiling.
//!
//! A Reslim training step splits into a part that is *linear* in the token
//! count (MLPs, projections, decoder) and a part that is *quadratic*
//! (self-attention). Tiling with `T` tiles divides the linear part by `T`
//! per tile and the quadratic part by `T^2`, at the price of halo overhead
//! (padded area ratio) and per-tile launch cost; compression by `c` divides
//! tokens by `c` at the price of quad-tree bookkeeping. The constants below
//! are calibrated once against the paper's Table II(b) anchors and then used
//! for *every* prediction (Fig. 6(a), Table II(b), the ablation benches).

use serde::{Deserialize, Serialize};

/// Calibrated constants of the cost model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostParams {
    /// Fraction of baseline sample time spent in self-attention.
    pub attention_fraction: f64,
    /// Halo width as a fraction of the (untiled) image edge.
    pub halo_edge_ratio: f64,
    /// Relative slowdown of the linear (per-token) work when tokens come
    /// from irregular variable-size quad-tree patches instead of a uniform
    /// grid (gather/scatter instead of coalesced access).
    pub pooling_penalty: f64,
    /// Exposed (non-overlapped) quad-tree build cost per sample, as a
    /// fraction of baseline sample time. CPUs build the trees
    /// asynchronously (Sec. III-C) but the final sync is exposed; this
    /// floor is what makes compression returns diminish (Sec. V-A).
    pub tree_build_cost: f64,
    /// Per-tile fixed launch/stitch cost as a fraction of baseline time.
    pub tile_launch_cost: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        Self {
            attention_fraction: 0.60,
            halo_edge_ratio: 0.016,
            pooling_penalty: 2.2,
            tree_build_cost: 0.115,
            tile_launch_cost: 0.002,
        }
    }
}

/// The analytic cost model, in units of "fraction of the untiled,
/// uncompressed baseline sample time".
#[derive(Debug, Clone, Copy)]
pub struct ReslimCostModel {
    /// Calibrated constants.
    pub params: CostParams,
}

impl ReslimCostModel {
    /// Model with default (paper-calibrated) constants.
    pub fn new() -> Self {
        Self { params: CostParams::default() }
    }

    /// Halo overhead multiplier for `tiles` tiles on a square-ish image:
    /// `(1 + 2·r·sqrt(T))^2` — tile edge shrinks as `1/sqrt(T)` while the
    /// halo width stays fixed.
    pub fn halo_overhead(&self, tiles: usize) -> f64 {
        if tiles <= 1 {
            return 1.0;
        }
        let r = self.params.halo_edge_ratio;
        let t = tiles as f64;
        (1.0 + 2.0 * r * t.sqrt()).powi(2)
    }

    /// Time for one *tile* of a sample split into `tiles` tiles with
    /// compression `c`, as a fraction of baseline sample time.
    pub fn per_tile_time(&self, tiles: usize, compression: usize) -> f64 {
        assert!(tiles >= 1 && compression >= 1);
        let x = self.params.attention_fraction;
        let t = tiles as f64;
        let c = compression as f64;
        let irregular = if compression > 1 { 1.0 + self.params.pooling_penalty } else { 1.0 };
        let linear = (1.0 - x) * irregular / (t * c);
        let quadratic = x / (t * c).powi(2);
        let halo = self.halo_overhead(tiles);
        let qt = if compression > 1 { self.params.tree_build_cost / t } else { 0.0 };
        (linear + quadratic) * halo + qt + self.params.tile_launch_cost
    }

    /// Wall-clock time per sample on `gpus` GPUs (fraction of baseline):
    /// tiles execute concurrently across GPUs; with more GPUs than tiles the
    /// surplus processes other samples (DDP), so throughput keeps scaling.
    pub fn sample_time(&self, tiles: usize, compression: usize, gpus: usize) -> f64 {
        assert!(gpus >= 1);
        self.per_tile_time(tiles, compression) * tiles as f64 / gpus as f64
    }

    /// Speedup relative to the paper's reference: the untiled, uncompressed
    /// baseline running DDP on `baseline_gpus` GPUs.
    pub fn speedup(&self, tiles: usize, compression: usize, gpus: usize, baseline_gpus: usize) -> f64 {
        let baseline = 1.0 / baseline_gpus as f64;
        baseline / self.sample_time(tiles, compression, gpus)
    }

    /// Compression-only speedup at equal GPU count (Table II(b) top half).
    pub fn compression_speedup(&self, compression: usize) -> f64 {
        self.speedup(1, compression, 1, 1)
    }

    /// Tiling-only speedup at equal GPU count (Table II(b) bottom half).
    pub fn tiling_speedup(&self, tiles: usize) -> f64 {
        self.speedup(tiles, 1, 1, 1)
    }
}

impl Default for ReslimCostModel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> ReslimCostModel {
        ReslimCostModel::new()
    }

    #[test]
    fn baseline_is_unity() {
        assert!((m().sample_time(1, 1, 1) - (1.0 + m().params.tile_launch_cost)).abs() < 1e-12);
        let s = m().speedup(1, 1, 1, 1);
        assert!((s - 1.0).abs() < 0.01);
    }

    #[test]
    fn compression_speedups_match_table2b_shape() {
        // Paper Table II(b): 8x -> 3.3, 16x -> 6.6, 32x -> 7.1.
        let s8 = m().compression_speedup(8);
        let s16 = m().compression_speedup(16);
        let s32 = m().compression_speedup(32);
        assert!(s8 > 2.5 && s8 < 4.5, "8x speedup {s8}");
        assert!(s16 > s8, "16x must beat 8x");
        assert!(s32 > s16, "32x must beat 16x");
        // Diminishing returns: the 16->32 gain is smaller than 8->16.
        assert!((s32 - s16) < (s16 - s8), "quad-tree overhead must flatten the curve");
        assert!(s32 > 5.0 && s32 < 9.0, "32x speedup saturates near 7x, got {s32}");
    }

    #[test]
    fn tiling_speedups_match_table2b_shape() {
        // Paper: 4 -> 1.5, 16 -> 1.9, 36 -> 1.6 (non-monotone: halo wins).
        let s4 = m().tiling_speedup(4);
        let s16 = m().tiling_speedup(16);
        let s36 = m().tiling_speedup(36);
        assert!(s4 > 1.2 && s4 < 2.2, "4-tile speedup {s4}");
        assert!(s16 > s4, "16 tiles must beat 4");
        assert!(s36 < s16, "excessive halo padding must degrade 36 tiles");
        assert!(s36 > 1.0);
    }

    #[test]
    fn fig6a_scaling_is_near_linear_in_gpus() {
        // Speedup vs the 8-GPU untiled baseline with 16 tiles per sample.
        let model = m();
        let s8 = model.speedup(16, 1, 8, 8);
        assert!(s8 > 1.5 && s8 < 2.3, "8-GPU tiled speedup {s8} (paper: 1.9)");
        let s2048 = model.speedup(16, 1, 2048, 8);
        assert!(s2048 > 350.0 && s2048 < 700.0, "2048-GPU speedup {s2048} (paper: 515)");
        // Linearity: doubling GPUs doubles speedup.
        let s1024 = model.speedup(16, 1, 1024, 8);
        assert!((s2048 / s1024 - 2.0).abs() < 0.01);
    }

    #[test]
    fn halo_overhead_monotone_in_tiles() {
        let model = m();
        assert_eq!(model.halo_overhead(1), 1.0);
        assert!(model.halo_overhead(4) < model.halo_overhead(16));
        assert!(model.halo_overhead(16) < model.halo_overhead(64));
    }

    #[test]
    fn combined_compression_and_tiling_compound() {
        // Per-tile work shrinks when both techniques stack (Table III uses
        // 4x compression + 16 tiles for the capacity records).
        let model = m();
        let both = model.per_tile_time(16, 4);
        assert!(both < model.per_tile_time(16, 1));
        assert!(both < model.per_tile_time(1, 4));
        assert!(model.speedup(16, 4, 8, 8) > 1.0, "combined must still beat the baseline");
    }
}
