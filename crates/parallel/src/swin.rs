//! Swin-Transformer-style hierarchical window attention — the architectural
//! alternative the paper rules out (Sec. II, "Architecture solutions";
//! capped at 147K tokens in SwinV2).
//!
//! Swin computes attention in fixed windows and recovers global context by
//! *merging* patches between stages, which (a) ties the number of hierarchy
//! stages to the input resolution — a different architecture per
//! resolution, unusable for a single foundation model — and (b) grows the
//! channel width (and thus parameters) geometrically with depth, shifting
//! the bottleneck from sequence length to model size. This module models
//! both effects.

use serde::{Deserialize, Serialize};

/// A Swin-style hierarchy derived from an input token grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwinHierarchy {
    /// Window edge in tokens (e.g. 8 => 64-token windows).
    pub window: usize,
    /// Base channel width at the finest stage.
    pub base_channels: usize,
    /// Stage descriptions, finest first: `(tokens_per_side, channels)`.
    pub stages: Vec<(usize, usize)>,
}

impl SwinHierarchy {
    /// Build the hierarchy needed to reduce a `side x side` token grid to a
    /// single window (full receptive field): each stage halves the side and
    /// doubles the channels, the Swin scaling rule.
    pub fn for_resolution(side: usize, window: usize, base_channels: usize) -> Self {
        assert!(side >= window, "input smaller than one window");
        let mut stages = Vec::new();
        let mut s = side;
        let mut c = base_channels;
        loop {
            stages.push((s, c));
            if s <= window {
                break;
            }
            s = s.div_ceil(2);
            c *= 2;
        }
        Self { window, base_channels, stages }
    }

    /// Number of hierarchy stages (grows with resolution — the paper's
    /// objection: "layers of architecture hierarchy must scale
    /// proportionally with higher resolution").
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Parameter count: each stage contributes transformer blocks at its
    /// channel width; channels double per stage, so parameters grow ~4x per
    /// stage — the size blow-up that "shifts the computational bottleneck
    /// from long-sequence processing to large-model scaling".
    pub fn param_count(&self, blocks_per_stage: usize) -> u64 {
        self.stages
            .iter()
            .map(|&(_, c)| blocks_per_stage as u64 * 12 * (c as u64) * (c as u64))
            .sum()
    }

    /// Peak activation memory in bytes (batch 1, BF16): the finest stage
    /// dominates with `side^2` tokens at `base_channels`.
    pub fn activation_bytes(&self) -> u64 {
        self.stages
            .iter()
            .map(|&(s, c)| (s as u64) * (s as u64) * (c as u64) * 14 * 2)
            .sum()
    }

    /// Max token count on a 64 GB GPU given the parameter and activation
    /// growth (Adam state 16 B/param like everywhere else).
    pub fn fits_on(&self, mem_bytes: u64, blocks_per_stage: usize) -> bool {
        let params = self.param_count(blocks_per_stage) * 16;
        let acts = self.activation_bytes();
        params + acts + (2 << 30) <= mem_bytes
    }
}

/// The largest square token grid a Swin hierarchy fits on one 64 GB GPU —
/// the analog of the paper's 147K-token SwinV2 ceiling.
pub fn swin_max_tokens(window: usize, base_channels: usize, blocks_per_stage: usize, mem_bytes: u64) -> u64 {
    let mut best = 0u64;
    let mut side = window;
    loop {
        let h = SwinHierarchy::for_resolution(side, window, base_channels);
        if !h.fits_on(mem_bytes, blocks_per_stage) {
            break;
        }
        best = (side * side) as u64;
        side *= 2;
        if side > 1 << 20 {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_grows_with_resolution() {
        let small = SwinHierarchy::for_resolution(64, 8, 96);
        let big = SwinHierarchy::for_resolution(1024, 8, 96);
        assert!(big.depth() > small.depth());
        // Exactly log2(side/window) + 1 stages.
        assert_eq!(small.depth(), 4);
        assert_eq!(big.depth(), 8);
    }

    #[test]
    fn params_blow_up_with_depth() {
        // Each extra stage doubles channels => ~4x the stage parameters;
        // scaling resolution 16x should grow parameters by >100x.
        let small = SwinHierarchy::for_resolution(64, 8, 96).param_count(2);
        let big = SwinHierarchy::for_resolution(1024, 8, 96).param_count(2);
        assert!(big > small * 100, "{small} -> {big}");
    }

    #[test]
    fn ceiling_in_the_147k_regime() {
        // SwinV2's reported ceiling is 147K tokens (1536^2 image, 4x4
        // patches => 147,456 tokens). Our memory model should cap a
        // Swin-style hierarchy in the same order of magnitude on 64 GB.
        let cap = swin_max_tokens(8, 96, 2, 64 * (1 << 30));
        assert!(cap >= 16_384, "cap {cap} too small");
        assert!(cap <= 4_194_304, "cap {cap} should stay in the 10^5-10^6 regime");
    }

    #[test]
    fn single_model_cannot_serve_two_resolutions() {
        // The foundation-model objection: hierarchies for different input
        // resolutions have different depths and parameter counts — they are
        // different models.
        let a = SwinHierarchy::for_resolution(128, 8, 96);
        let b = SwinHierarchy::for_resolution(512, 8, 96);
        assert_ne!(a.depth(), b.depth());
        assert_ne!(a.param_count(2), b.param_count(2));
    }

    #[test]
    #[should_panic(expected = "smaller than one window")]
    fn rejects_sub_window_input() {
        SwinHierarchy::for_resolution(4, 8, 96);
    }
}
