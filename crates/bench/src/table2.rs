//! Table II: (a) ViT vs Reslim architecture comparison; (b) adaptive
//! compression and tiling speedups.
//!
//! Two complementary sources feed these rows:
//! * the *simulator* predicts the paper-scale numbers (128 Frontier GPUs,
//!   777K-token sequences) via the calibrated cost models;
//! * the *real kernels* measure the same ratios at CPU scale — a tiny
//!   Reslim vs a tiny upsample-first ViT on identical inputs — proving the
//!   shape is real, not an artifact of the calibration.

use crate::fmt::{sci, Table};
use orbit2::planner::arch_comparison;
use orbit2_cluster::topology::ClusterSpec;
use orbit2_model::profiler::SequenceAccounting;
use orbit2_model::{BaselineVit, ModelConfig, ReslimModel};
use orbit2_parallel::ReslimCostModel;
use orbit2_tensor::random::randn;
use std::time::Instant;

/// Simulated Table II(a): paper-scale architecture comparison at 128 GPUs.
pub fn render_2a_simulated() -> String {
    let cluster = ClusterSpec::frontier();
    let cfg = ModelConfig::paper_9_5m();
    let mut t = Table::new(&[
        "Arch", "Model", "Resolution", "Seq len", "Time/sample (s)", "Speedup", "Paper time", "Paper speedup",
    ]);
    let tasks = [
        ("622->156 km", SequenceAccounting { out_h: 128, out_w: 256, out_c: 3, patch: 2, factor: 4 }, "7.3e-4", "1", "1.1e-6", "660"),
        ("112->28 km", SequenceAccounting { out_h: 720, out_w: 1440, out_c: 3, patch: 2, factor: 4 }, "OOM", "NA", "1.2e-3", "NA"),
    ];
    for (res, acc, paper_vit_t, _paper_vit_s, paper_reslim_t, paper_speedup) in tasks {
        let (vit_t, vit_oom, reslim_t, speedup) = arch_comparison(&cfg, &acc, 128, &cluster);
        t.row(vec![
            "ViT".into(),
            "9.5M".into(),
            res.into(),
            crate::fmt::count(acc.nominal_seq_len()),
            if vit_oom { "OOM".into() } else { sci(vit_t) },
            "1".into(),
            paper_vit_t.into(),
            "1".into(),
        ]);
        t.row(vec![
            "Reslim".into(),
            "9.5M".into(),
            res.into(),
            crate::fmt::count(acc.nominal_seq_len()),
            sci(reslim_t),
            if vit_oom { "NA".into() } else { format!("{speedup:.0}") },
            paper_reslim_t.into(),
            paper_speedup.into(),
        ]);
    }
    format!("Table II(a) [simulated, Frontier @128 GPUs]:\n{}", t.render())
}

/// Measured Table II(a): real forward-pass wall-clock of the tiny twins on
/// this CPU, tape-free. Returns `(vit_time_s, reslim_time_s, speedup)`.
pub fn measure_2a_kernels(h: usize, w: usize, reps: usize) -> (f64, f64, f64) {
    let cfg = ModelConfig::tiny().with_channels(7, 3);
    let reslim = ReslimModel::new(cfg, 1);
    let vit = BaselineVit::new(cfg, 1);
    // Sessions are prepared outside the timed region: pure forward cost.
    let reslim_sess = reslim.session();
    let vit_sess = vit.session();
    let input = randn(&[7, h, w], 42);
    let time = |f: &dyn Fn()| {
        // One warmup, then the mean of `reps`.
        f();
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        start.elapsed().as_secs_f64() / reps as f64
    };
    let t_vit = time(&|| {
        let _ = vit.forward(&vit_sess, &input).into_tensor();
    });
    let t_reslim = time(&|| {
        let _ = reslim.forward(&reslim_sess, &input, 1.0).0.into_tensor();
    });
    (t_vit, t_reslim, t_vit / t_reslim)
}

/// Render the measured kernel comparison.
pub fn render_2a_measured() -> String {
    let (t_vit, t_reslim, speedup) = measure_2a_kernels(16, 32, 3);
    let mut t = Table::new(&["Arch", "Input", "Forward time (s)", "Speedup"]);
    t.row(vec!["upsample-first ViT".into(), "[7,16,32] -> [3,64,128]".into(), sci(t_vit), "1".into()]);
    t.row(vec!["Reslim".into(), "[7,16,32] -> [3,64,128]".into(), sci(t_reslim), format!("{speedup:.1}")]);
    format!(
        "Table II(a) [measured on this CPU, tiny twins — same inputs, same output]:\n{}\
         (The paper's 660x arises at seq 24,576 where attention dominates; at this tiny scale the\n\
          quadratic term is smaller, so the measured ratio is a lower bound of the mechanism.)\n",
        t.render()
    )
}

/// Table II(b): compression / tiling speedups from the calibrated cost
/// model, next to the paper's values.
pub fn render_2b() -> String {
    let model = ReslimCostModel::new();
    let mut t = Table::new(&["Config", "Compression", "Tiles", "Speedup (model)", "Speedup (paper)"]);
    for (c, paper) in [(8usize, "3.3"), (16, "6.6"), (32, "7.1")] {
        t.row(vec![
            "Reslim 112->28".into(),
            format!("{c}x"),
            "1".into(),
            format!("{:.1}", model.compression_speedup(c)),
            paper.into(),
        ]);
    }
    for (tiles, paper) in [(4usize, "1.5"), (16, "1.9"), (36, "1.6")] {
        t.row(vec![
            "Reslim 112->28".into(),
            "1x".into(),
            format!("{tiles}"),
            format!("{:.1}", model.tiling_speedup(tiles)),
            paper.into(),
        ]);
    }
    format!("Table II(b) [calibrated cost model vs paper]:\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_2a_has_oom_and_speedup() {
        let s = render_2a_simulated();
        assert!(s.contains("OOM"));
        assert!(s.contains("Reslim"));
    }

    #[test]
    fn measured_kernels_show_reslim_wins() {
        let (_tv, _tr, speedup) = measure_2a_kernels(8, 16, 1);
        assert!(speedup > 1.0, "Reslim must beat the upsample-first ViT, got {speedup}");
    }

    #[test]
    fn table_2b_shape() {
        let s = render_2b();
        assert!(s.contains("32x"));
        assert!(s.contains("36"));
    }
}
