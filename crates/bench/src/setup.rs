//! Shared experiment setup: datasets, models and trained-model caching so
//! several tables/figures can reuse one training run.

use orbit2::trainer::{Trainer, TrainerConfig};
use orbit2_climate::{DownscalingDataset, LatLonGrid, VariableSet};
use orbit2_model::{ModelConfig, ReslimModel};

/// The scaled-down US fine-tuning analog: CONUS grid, DAYMET-like 7-channel
/// inputs, 4x refinement — the stand-in for the paper's 28 -> 7 km task.
pub fn us_dataset(samples: usize, seed: u64) -> DownscalingDataset {
    DownscalingDataset::new(LatLonGrid::conus(64, 128), VariableSet::daymet_like(), 4, samples, seed)
}

/// A smaller dataset for quick smoke experiments.
pub fn small_dataset(samples: usize, seed: u64) -> DownscalingDataset {
    DownscalingDataset::new(LatLonGrid::conus(32, 64), VariableSet::daymet_like(), 4, samples, seed)
}

/// Global ERA5-like dataset (23 channels) at reduced scale.
pub fn global_dataset(samples: usize, seed: u64) -> DownscalingDataset {
    DownscalingDataset::new(LatLonGrid::global(32, 64), VariableSet::era5_like(), 4, samples, seed)
}

/// The scaled-down twin of the paper's 9.5M model on the US task.
pub fn tiny_model(seed: u64) -> ReslimModel {
    ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), seed)
}

/// The scaled-down twin of the paper's 126M model on the US task.
pub fn small_model(seed: u64) -> ReslimModel {
    ReslimModel::new(ModelConfig::small().with_channels(7, 3), seed)
}

/// Train a model on a dataset with a step budget; returns the trainer
/// (model + normalizer) and the report.
pub fn train_model(
    model: ReslimModel,
    dataset: &DownscalingDataset,
    steps: usize,
    lr: f32,
) -> (Trainer, orbit2::trainer::TrainReport) {
    let cfg = TrainerConfig {
        steps,
        lr,
        warmup: (steps / 10).max(1) as u64,
        log_every: (steps / 10).max(1),
        ..Default::default()
    };
    let mut trainer = Trainer::new(model, dataset, cfg);
    let report = trainer.train(dataset);
    (trainer, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_have_expected_channels() {
        let us = small_dataset(5, 1);
        assert_eq!(us.variables().num_inputs(), 7);
        let g = global_dataset(5, 1);
        assert_eq!(g.variables().num_inputs(), 23);
    }

    #[test]
    fn model_twins_ordered_by_size() {
        assert!(tiny_model(1).num_params() < small_model(1).num_params());
    }

    #[test]
    fn quick_training_runs() {
        let ds = small_dataset(10, 2);
        let (_t, report) = train_model(tiny_model(2), &ds, 5, 1e-3);
        assert!(report.final_loss.expect("no steps completed").is_finite());
        assert_eq!(report.completed_steps, 5);
    }
}
