//! Table I: the dataset inventory.

use crate::fmt::Table;
use orbit2_climate::catalog::{paper_catalog, DatasetRole};

/// Render Table I from the catalog, with computed storage sizes.
pub fn render() -> String {
    let mut out = String::from("Table I: datasets for pretraining, fine-tuning and inference\n");
    let mut t = Table::new(&[
        "Dataset", "Region", "Res (km)", "In Vars", "Out Vars", "Sample (in -> out)", "Pairs", "Size (GB)", "Role",
    ]);
    for e in paper_catalog() {
        let role = match e.role {
            DatasetRole::Pretraining => "pretrain",
            DatasetRole::FineTuning => "fine-tune",
            DatasetRole::InferenceEvaluation => "inference",
        };
        t.row(vec![
            e.name.to_string(),
            e.region.to_string(),
            format!("{:.0} -> {:.0}", e.res_in_km, e.res_out_km),
            e.input_vars.to_string(),
            e.output_vars.to_string(),
            format!("{:?} -> {:?}", e.in_dims, e.out_dims),
            e.sample_pairs.to_string(),
            format!("{:.0}", e.size_gb()),
            role.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\n(Sizes are f32 estimates; the paper stores mixed products, e.g. 6,328 GB for the large ERA5 set.)\n");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_all_rows() {
        let s = super::render();
        assert!(s.contains("ERA5 -> IMERG"));
        assert!(s.contains("PRISM"));
        // 4 role cells; the title also mentions "pretraining".
        assert_eq!(s.matches("pretrain ").count(), 4);
    }
}
