//! `repro` — regenerate every table and figure of the ORBIT-2 paper.
//!
//! ```text
//! repro table1 | table2a | table2b | table3 | table4 | fig6a | fig6b |
//!       fig7 | fig8 | all [--quick]
//! ```
//!
//! Training-based experiments (table4, fig7, fig8) honour `ORBIT2_STEPS`
//! for their optimizer budget; `--quick` caps everything for smoke runs.

use orbit2_bench::{fig6, fig7, fig8, halo, setup, step_budget, table1, table2, table3, table4};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which = args.first().map(String::as_str).unwrap_or("all");
    let steps = if quick { 10 } else { step_budget(120) };
    let samples = if quick { 16 } else { 60 };

    match which {
        "table1" => print!("{}", table1::render()),
        "table2a" => {
            print!("{}", table2::render_2a_simulated());
            println!();
            print!("{}", table2::render_2a_measured());
        }
        "table2b" => print!("{}", table2::render_2b()),
        "table3" => {
            print!("{}", table3::render());
            println!();
            print!("{}", table3::render_landscape());
        }
        "table4" => run_table4(steps, samples),
        "fig6a" => {
            print!("{}", fig6::render_6a_simulated());
            println!();
            print!("{}", fig6::render_6a_measured());
        }
        "fig6b" => print!("{}", fig6::render_6b()),
        "fig7" => run_fig7(steps, samples),
        "fig8" => print!("{}", fig8::render(&fig8::run(steps, samples))),
        "halo" => print!("{}", halo::render(&halo::run(steps))),
        "all" => {
            print!("{}", table1::render());
            banner("Table II(a)");
            print!("{}", table2::render_2a_simulated());
            print!("{}", table2::render_2a_measured());
            banner("Table II(b)");
            print!("{}", table2::render_2b());
            banner("Table III");
            print!("{}", table3::render());
            print!("{}", table3::render_landscape());
            banner("Table IV");
            run_table4(steps, samples);
            banner("Fig 6(a)");
            print!("{}", fig6::render_6a_simulated());
            print!("{}", fig6::render_6a_measured());
            banner("Fig 6(b)");
            print!("{}", fig6::render_6b());
            banner("Fig 7");
            run_fig7(steps, samples);
            banner("Fig 8");
            print!("{}", fig8::render(&fig8::run(steps, samples)));
            banner("Halo ablation");
            print!("{}", halo::render(&halo::run(steps)));
        }
        other => {
            eprintln!(
                "unknown experiment `{other}`\nusage: repro [table1|table2a|table2b|table3|table4|fig6a|fig6b|fig7|fig8|halo|all] [--quick]"
            );
            std::process::exit(2);
        }
    }
}

fn banner(title: &str) {
    println!("\n==================== {title} ====================\n");
}

fn run_table4(steps: usize, samples: usize) {
    let result = table4::run(steps, samples);
    print!("{}", table4::render(&result));
}

fn run_fig7(steps: usize, samples: usize) {
    // Train both capacities once and reuse for 7(a) and 7(b).
    let ds = setup::us_dataset(samples, 77);
    let (tiny, _) = setup::train_model(setup::tiny_model(7), &ds, steps, 2e-3);
    let (small, _) = setup::train_model(setup::small_model(7), &ds, steps, 2e-3);
    let cmp = fig7::spectra((&tiny.model, &tiny.normalizer), (&small.model, &small.normalizer), &ds);
    print!("{}", fig7::render_7a(&cmp));
    let dir = PathBuf::from("target/repro");
    match fig7::render_7b((&small.model, &small.normalizer), &ds, &dir) {
        Ok(art) => print!("{art}"),
        Err(e) => eprintln!("fig7b rendering failed: {e}"),
    }
}
