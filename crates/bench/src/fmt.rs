//! Fixed-width table rendering for the `repro` binary.

/// A simple fixed-width table printer.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with per-column widths.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:<w$} ", c, w = widths[i]));
                line.push_str("| ");
            }
            line.pop();
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 3 * cols + 1;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Format seconds in engineering notation like the paper ("7.3e-4").
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        return "0".into();
    }
    format!("{x:.1e}")
}

/// Format a large count with engineering suffixes (25K, 298M, 4.2B).
pub fn count(x: u64) -> String {
    let xf = x as f64;
    if xf >= 1e9 {
        format!("{:.1}B", xf / 1e9)
    } else if xf >= 1e6 {
        format!("{:.0}M", xf / 1e6)
    } else if xf >= 1e3 {
        format!("{:.0}K", xf / 1e3)
    } else {
        format!("{x}")
    }
}

/// Format FLOP/s with P/E suffixes.
pub fn flops(x: f64) -> String {
    if x >= 1e18 {
        format!("{:.1} EFLOPS", x / 1e18)
    } else if x >= 1e15 {
        format!("{:.0} PFLOPS", x / 1e15)
    } else {
        format!("{:.1} TFLOPS", x / 1e12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long_header"));
        // All rows same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(count(24_576), "25K");
        assert_eq!(count(298_000_000), "298M");
        assert_eq!(count(4_200_000_000), "4.2B");
        assert_eq!(sci(7.3e-4), "7.3e-4");
        assert!(flops(1.8e18).contains("EFLOPS"));
        assert!(flops(363e15).contains("PFLOPS"));
    }
}
