//! Table III: maximum sequence length scaling across architectures, model
//! sizes, compression, tiles and GPU count — fully simulated (these
//! configurations need up to 512 Frontier GPUs).

use crate::fmt::{count, Table};
use orbit2::planner::{max_sequence_row, Arch};
use orbit2_cluster::topology::ClusterSpec;
use orbit2_model::ModelConfig;

/// The nine configuration rows of the paper's Table III, plus the paper's
/// reported value for side-by-side comparison.
pub fn rows() -> Vec<(&'static str, Arch, ModelConfig, usize, usize, usize, &'static str)> {
    vec![
        ("ViT 9.5M", Arch::BaselineVit, ModelConfig::paper_9_5m(), 1, 1, 8, "25K"),
        ("ViT 10B", Arch::BaselineVit, ModelConfig::paper_10b(), 1, 1, 8, "OOM"),
        ("Reslim 9.5M", Arch::Reslim, ModelConfig::paper_9_5m(), 1, 1, 8, "298M"),
        ("Reslim 9.5M", Arch::Reslim, ModelConfig::paper_9_5m(), 1, 1, 32, "466M"),
        ("Reslim 9.5M", Arch::Reslim, ModelConfig::paper_9_5m(), 4, 16, 8, "1.1B"),
        ("Reslim 9.5M", Arch::Reslim, ModelConfig::paper_9_5m(), 4, 16, 128, "4.2B"),
        ("Reslim 10B", Arch::Reslim, ModelConfig::paper_10b(), 1, 1, 8, "18M"),
        ("Reslim 10B", Arch::Reslim, ModelConfig::paper_10b(), 4, 16, 8, "74M"),
        ("Reslim 10B", Arch::Reslim, ModelConfig::paper_10b(), 4, 16, 512, "671M"),
    ]
}

/// The sequence-scaling landscape of the paper's Sec. II/V-B: TILES vs the
/// two prior approaches it displaces (ring sequence parallelism, capped at
/// 188K tokens, and Swin-style hierarchies, capped at 147K).
pub fn render_landscape() -> String {
    use orbit2_parallel::{swin_max_tokens, SeqParallelConfig};
    let cluster = ClusterSpec::frontier();
    let mut t = Table::new(&["Approach", "Max tokens (sim)", "Literature", "Limiting mechanism"]);
    let seqp = SeqParallelConfig { ranks: 16, layers: 6, embed_dim: 256, heads: 4, params: 9_500_000 };
    t.row(vec![
        "ring sequence parallelism (16 GPUs)".into(),
        count(seqp.max_sequence(&cluster)),
        "188K [22]".into(),
        "global attention: gathered K/V + quadratic compute".into(),
    ]);
    t.row(vec![
        "Swin-style hierarchy (1 GPU)".into(),
        count(swin_max_tokens(8, 96, 2, cluster.gpu.mem_bytes)),
        "147K [27]".into(),
        "depth/params grow with resolution".into(),
    ]);
    let flagship = max_sequence_row(&ModelConfig::paper_9_5m(), Arch::Reslim, 4, 16, 128, &cluster);
    t.row(vec![
        "Reslim + TILES (128 GPUs)".into(),
        count(flagship.max_seq),
        "4.2B (paper)".into(),
        "local attention per tile: linear in tokens".into(),
    ]);
    format!("Sequence-scaling landscape (paper Sec. II / V-B):\n{}", t.render())
}

/// Render the simulated Table III.
pub fn render() -> String {
    let cluster = ClusterSpec::frontier();
    let mut t = Table::new(&[
        "Architecture", "Compression", "Tiles", "GPUs", "Max seq (sim)", "Output", "Res (km)", "Paper",
    ]);
    for (name, arch, cfg, compression, tiles, gpus, paper) in rows() {
        let row = max_sequence_row(&cfg, arch, compression, tiles, gpus, &cluster);
        t.row(vec![
            name.into(),
            format!("{compression}x"),
            tiles.to_string(),
            gpus.to_string(),
            if row.oom { "OOM".into() } else { count(row.max_seq) },
            if row.oom {
                "-".into()
            } else {
                format!("[{}, {}, {}]", row.out_shape[0], row.out_shape[1], row.out_shape[2])
            },
            if row.oom { "-".into() } else { format!("{:.1}", row.resolution_km) },
            paper.into(),
        ]);
    }
    format!("Table III [simulated memory model]:\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_covers_all_rows() {
        let s = render();
        assert!(s.contains("OOM"));
        assert!(s.contains("Reslim 10B"));
        assert_eq!(s.matches("Reslim 9.5M").count(), 4);
    }

    #[test]
    fn landscape_orders_tiles_far_ahead() {
        let s = render_landscape();
        assert!(s.contains("188K"));
        assert!(s.contains("147K"));
        assert!(s.contains("Reslim + TILES"));
        // TILES row must report billions while the others stay below ~10M.
        assert!(s.contains("B"), "expected a billions entry:\n{s}");
    }

    #[test]
    fn ordering_matches_paper_within_each_family() {
        // Within the 9.5M Reslim family, each successive configuration must
        // unlock a longer sequence, mirroring the paper's monotone column.
        let cluster = ClusterSpec::frontier();
        let mut prev = 0u64;
        for (_, arch, cfg, c, tl, g, _) in rows().into_iter().skip(2).take(4) {
            let row = max_sequence_row(&cfg, arch, c, tl, g, &cluster);
            assert!(row.max_seq > prev, "sequence must grow down the table");
            prev = row.max_seq;
        }
    }
}
