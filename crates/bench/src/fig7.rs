//! Fig. 7: (a) spatial power spectra of downscaled minimum temperature for
//! the two model capacities; (b) side-by-side precipitation maps (ground
//! truth vs prediction), written as PGM files and ASCII art.

use crate::fmt::Table;
use crate::table4::Table4Result;
use orbit2::inference::downscale;
use orbit2_climate::{DownscalingDataset, Normalizer, Split};
use orbit2_fft::radial_power_spectrum;
use orbit2_imaging::pgm::{ascii_art, write_pgm};
use orbit2_model::ReslimModel;
use std::path::Path;

/// Spectrum comparison for one variable: ground truth vs two models.
pub struct SpectrumComparison {
    /// Wavenumbers.
    pub wavenumber: Vec<f64>,
    /// log10 power of the ground truth.
    pub truth: Vec<f64>,
    /// log10 power of the tiny model's prediction.
    pub tiny: Vec<f64>,
    /// log10 power of the small model's prediction.
    pub small: Vec<f64>,
    /// High-frequency log distance to truth (tiny, small).
    pub tail_distance: (f64, f64),
}

/// Compute Fig. 7(a): power spectra of tmin predictions on a test sample.
pub fn spectra(
    tiny: (&ReslimModel, &Normalizer),
    small: (&ReslimModel, &Normalizer),
    ds: &DownscalingDataset,
) -> SpectrumComparison {
    let idx = *ds.indices(Split::Test).first().expect("test split empty");
    let s = ds.sample(idx);
    let (h, w) = (ds.fine_grid().h, ds.fine_grid().w);
    let chan = ds.variables().output_index("tmin").expect("tmin channel");
    let plane = h * w;
    let truth_field = &s.target.data()[chan * plane..(chan + 1) * plane];
    let pred_t = downscale(tiny.0, tiny.1, &s.input, None, 1.0).expect("valid sample");
    let pred_s = downscale(small.0, small.1, &s.input, None, 1.0).expect("valid sample");
    let ps_truth = radial_power_spectrum(truth_field, h, w);
    let ps_tiny = radial_power_spectrum(&pred_t.data()[chan * plane..(chan + 1) * plane], h, w);
    let ps_small = radial_power_spectrum(&pred_s.data()[chan * plane..(chan + 1) * plane], h, w);
    SpectrumComparison {
        wavenumber: ps_truth.wavenumber.clone(),
        truth: ps_truth.log_power(),
        tiny: ps_tiny.log_power(),
        small: ps_small.log_power(),
        tail_distance: (
            ps_tiny.high_freq_log_distance(&ps_truth, 0.3),
            ps_small.high_freq_log_distance(&ps_truth, 0.3),
        ),
    }
}

/// Render the spectra as a table of log-power samples.
pub fn render_7a(cmp: &SpectrumComparison) -> String {
    let mut t = Table::new(&["wavenumber", "log10 P truth", "log10 P tiny", "log10 P small"]);
    let n = cmp.wavenumber.len();
    // Sample ~10 wavenumbers across the range.
    let step = (n / 10).max(1);
    for k in (1..n).step_by(step) {
        t.row(vec![
            format!("{:.0}", cmp.wavenumber[k]),
            format!("{:.2}", cmp.truth[k]),
            format!("{:.2}", cmp.tiny[k]),
            format!("{:.2}", cmp.small[k]),
        ]);
    }
    format!(
        "Fig 7(a) [power spectrum of downscaled tmin]:\n{}\nhigh-frequency tail distance to truth: tiny {:.3}, small {:.3}\n\
         (paper: the larger model tracks the truth's high-frequency tail; the smaller deviates)\n",
        t.render(),
        cmp.tail_distance.0,
        cmp.tail_distance.1
    )
}

/// Fig. 7(b): write ground truth and prediction precipitation maps as PGM
/// files under `dir` and return ASCII previews.
pub fn render_7b(result_model: (&ReslimModel, &Normalizer), ds: &DownscalingDataset, dir: &Path) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let idx = *ds.indices(Split::Test).first().expect("test split empty");
    let s = ds.sample(idx);
    let (h, w) = (ds.fine_grid().h, ds.fine_grid().w);
    let chan = ds.variables().output_index("prcp").expect("prcp channel");
    let plane = h * w;
    let truth = &s.target.data()[chan * plane..(chan + 1) * plane];
    let pred = downscale(result_model.0, result_model.1, &s.input, None, 1.0).expect("valid sample");
    let pred_field = &pred.data()[chan * plane..(chan + 1) * plane];
    write_pgm(&dir.join("fig7b_truth.pgm"), truth, h, w)?;
    write_pgm(&dir.join("fig7b_prediction.pgm"), pred_field, h, w)?;
    let mut out = String::from("Fig 7(b) [daily total precipitation, ground truth (left) vs ORBIT-2 reproduction (right)]\n");
    let left = ascii_art(truth, h, w, 56);
    let right = ascii_art(pred_field, h, w, 56);
    for (l, r) in left.lines().zip(right.lines()) {
        out.push_str(&format!("{l}  |  {r}\n"));
    }
    out.push_str(&format!("PGM files written to {}\n", dir.display()));
    Ok(out)
}

/// Convenience: full Fig. 7 from a Table IV result (re-using its datasets
/// is not possible since trainers own the models, so this takes them
/// explicitly).
pub fn tail_improves_with_capacity(cmp: &SpectrumComparison) -> bool {
    cmp.tail_distance.1 <= cmp.tail_distance.0
}

/// Placeholder referencing the Table IV result type so callers see the
/// intended pairing in the docs.
pub type UpstreamResult = Table4Result;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{small_dataset, tiny_model, train_model};

    #[test]
    fn spectra_and_maps_run() {
        let ds = small_dataset(12, 5);
        let (tr_a, _) = train_model(tiny_model(1), &ds, 4, 1e-3);
        let (tr_b, _) = train_model(crate::setup::small_model(1), &ds, 4, 1e-3);
        let cmp = spectra((&tr_a.model, &tr_a.normalizer), (&tr_b.model, &tr_b.normalizer), &ds);
        assert_eq!(cmp.truth.len(), cmp.tiny.len());
        assert!(cmp.tail_distance.0.is_finite() && cmp.tail_distance.1.is_finite());
        let s = render_7a(&cmp);
        assert!(s.contains("wavenumber"));

        let dir = std::env::temp_dir().join("orbit2_fig7b_test");
        let art = render_7b((&tr_a.model, &tr_a.normalizer), &ds, &dir).unwrap();
        assert!(art.contains("|"));
        assert!(dir.join("fig7b_truth.pgm").exists());
        assert!(dir.join("fig7b_prediction.pgm").exists());
    }
}
