//! Fig. 6: (a) TILES sequence-scaling speedup across GPUs; (b) strong
//! scaling efficiency and sustained throughput for all four model sizes.
//!
//! Fig. 6(a) has both a simulated curve (up to 2048 GPUs) and a *measured*
//! curve: real tiled inference on this machine's cores via rayon, which is
//! exactly the TILES execution model with threads standing in for GPUs.

use crate::fmt::{flops, sci, Table};
use orbit2::planner::strong_scaling_series;
use orbit2_cluster::topology::ClusterSpec;
use orbit2_model::ModelConfig;
use orbit2_parallel::ReslimCostModel;
use std::time::Instant;

/// Simulated Fig. 6(a): speedup vs the 8-GPU untiled baseline, 16 tiles.
pub fn render_6a_simulated() -> String {
    let model = ReslimCostModel::new();
    let mut t = Table::new(&["GPUs", "Speedup (model)", "Speedup (paper)"]);
    let paper: &[(usize, &str)] = &[
        (8, "1.9"),
        (64, "~15"),
        (256, "~64"),
        (1024, "~258"),
        (2048, "515"),
    ];
    for &(gpus, p) in paper {
        t.row(vec![
            gpus.to_string(),
            format!("{:.1}", model.speedup(16, 1, gpus, 8)),
            p.into(),
        ]);
    }
    format!("Fig 6(a) [cost model, 16 tiles, vs 8-GPU untiled baseline]:\n{}", t.render())
}

/// Measured Fig. 6(a): real tiled inference over rayon thread pools of
/// increasing size. Returns `(threads, seconds)` pairs.
pub fn measure_6a_threads(max_threads: usize) -> Vec<(usize, f64)> {
    use orbit2::inference::downscale_with;
    use orbit2_imaging::tiles::TileSpec;
    let ds = crate::setup::us_dataset(4, 3);
    let model = crate::setup::tiny_model(3);
    let session = model.session();
    let norm = orbit2_climate::Normalizer::fit(&ds, 2);
    let sample = ds.sample(0);
    let spec = TileSpec::square(16, 1);
    let mut out = Vec::new();
    let mut threads = 1usize;
    while threads <= max_threads {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        let secs = pool.install(|| {
            let start = Instant::now();
            let _ = downscale_with(&model, &session, &norm, &sample.input, Some(spec), 1.0)
                .expect("valid sample");
            start.elapsed().as_secs_f64()
        });
        out.push((threads, secs));
        threads *= 2;
    }
    out
}

/// Render the measured thread-scaling curve.
pub fn render_6a_measured() -> String {
    let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let series = measure_6a_threads(available.min(16));
    let base = series[0].1;
    let mut t = Table::new(&["Threads (sim. GPUs)", "Time (s)", "Speedup vs 1 thread"]);
    for (threads, secs) in &series {
        t.row(vec![threads.to_string(), sci(*secs), format!("{:.2}", base / secs)]);
    }
    format!(
        "Fig 6(a) [measured: real 16-tile TILES inference on this CPU's threads]:\n{}",
        t.render()
    )
}

/// Fig. 6(b): strong scaling, all four paper model sizes.
pub fn render_6b() -> String {
    let cluster = ClusterSpec::frontier();
    let gpu_counts = [512usize, 2048, 8192, 32_768];
    let mut out = String::from("Fig 6(b) [simulated strong scaling, 64 -> 4096 nodes]:\n");
    let configs = [
        ("9.5M", ModelConfig::paper_9_5m(), "92-98% eff, 363 PFLOPS @4096 nodes"),
        ("126M", ModelConfig::paper_126m(), "92-98% eff, 1.3 EFLOPS"),
        ("1B", ModelConfig::paper_1b(), "92-98% eff, 1.5 EFLOPS"),
        ("10B", ModelConfig::paper_10b(), "92-98% eff, 1.8 EFLOPS"),
    ];
    for (name, cfg, paper) in configs {
        let series = strong_scaling_series(&cfg, &gpu_counts, &cluster);
        let mut t = Table::new(&["Nodes", "GPUs", "Time/sample (s)", "Efficiency", "Sustained"]);
        for p in &series {
            t.row(vec![
                p.nodes.to_string(),
                p.gpus.to_string(),
                sci(p.per_sample_s),
                format!("{:.1}%", p.efficiency * 100.0),
                flops(p.sustained_flops),
            ]);
        }
        out.push_str(&format!("\nModel {name} (paper: {paper}):\n{}", t.render()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_6a_near_paper_endpoints() {
        let s = render_6a_simulated();
        assert!(s.contains("2048"));
    }

    #[test]
    fn measured_6a_speeds_up_with_threads() {
        let series = measure_6a_threads(4);
        assert!(series.len() >= 2);
        let (t1, tn) = (series[0].1, series.last().unwrap().1);
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if cores >= 2 {
            assert!(tn < t1, "more threads must not be slower: {t1} -> {tn}");
        } else {
            // Single-core host: only assert that oversubscription does not
            // collapse throughput (scheduling overhead < 30%).
            assert!(tn < t1 * 1.3, "oversubscription overhead too high: {t1} -> {tn}");
        }
    }

    #[test]
    fn fig6b_renders_all_models() {
        let s = render_6b();
        for m in ["9.5M", "126M", "1B", "10B"] {
            assert!(s.contains(&format!("Model {m}")));
        }
        assert!(s.contains("EFLOPS") || s.contains("PFLOPS"));
    }
}
