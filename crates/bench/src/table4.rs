//! Table IV: downscaling accuracy for minimum/maximum temperature and total
//! precipitation with two model capacities — trained for real on the
//! synthetic US 4x task (the scaled-down analog of the paper's 28 -> 7 km
//! fine-tuning).

use crate::fmt::Table;
use crate::setup::{small_model, tiny_model, train_model, us_dataset};
use orbit2::eval::{evaluate_model, VariableReport};
use orbit2::trainer::Trainer;
use orbit2_climate::diagnostics::{climatology_errors, ClimatologyErrors};
use orbit2_climate::{DownscalingDataset, Split};

/// Outcome of the two training runs.
pub struct Table4Result {
    /// Per-variable reports for the tiny (9.5M-analog) model.
    pub tiny: Vec<VariableReport>,
    /// Per-variable reports for the small (126M-analog) model.
    pub small: Vec<VariableReport>,
    /// Final training losses (tiny, small).
    pub final_losses: (f32, f32),
    /// Precipitation climatology errors (tiny, small): wet fraction,
    /// intensity and tail quantiles of the prediction vs truth.
    pub climatology: (ClimatologyErrors, ClimatologyErrors),
}

/// Train both capacities and evaluate on the test split.
pub fn run(steps: usize, samples: usize) -> Table4Result {
    let ds = us_dataset(samples, 77);
    let test_idx = ds.indices(Split::Test);
    let (tiny_tr, tiny_rep) = train_model(tiny_model(7), &ds, steps, 2e-3);
    let tiny = evaluate_model(&tiny_tr.model, &tiny_tr.normalizer, &ds, &test_idx, None, 1.0)
        .expect("valid test split");
    let (small_tr, small_rep) = train_model(small_model(7), &ds, steps, 2e-3);
    let small = evaluate_model(&small_tr.model, &small_tr.normalizer, &ds, &test_idx, None, 1.0)
        .expect("valid test split");
    let climatology = (
        precip_climatology(&tiny_tr, &ds, &test_idx),
        precip_climatology(&small_tr, &ds, &test_idx),
    );
    Table4Result {
        tiny,
        small,
        final_losses: (
            tiny_rep.final_loss.expect("tiny run completed no steps"),
            small_rep.final_loss.expect("small run completed no steps"),
        ),
        climatology,
    }
}

/// Precipitation climatology errors of a trained model over test samples.
fn precip_climatology(trainer: &Trainer, ds: &DownscalingDataset, idx: &[usize]) -> ClimatologyErrors {
    let chan = ds.variables().output_index("prcp").expect("prcp");
    let plane = ds.fine_grid().h * ds.fine_grid().w;
    let mut preds = Vec::new();
    let mut truths = Vec::new();
    let session = trainer.model.session();
    for &i in idx {
        let s = ds.sample(i);
        let p = orbit2::inference::downscale_with(
            &trainer.model,
            &session,
            &trainer.normalizer,
            &s.input,
            None,
            1.0,
        )
        .expect("valid sample");
        preds.extend_from_slice(&p.data()[chan * plane..(chan + 1) * plane]);
        truths.extend_from_slice(&s.target.data()[chan * plane..(chan + 1) * plane]);
    }
    climatology_errors(&preds, &truths, 1.0)
}

/// Render the Table IV analog with the paper's reference values.
pub fn render(result: &Table4Result) -> String {
    let mut out = String::from(
        "Table IV [trained on synthetic US analog; paper values in brackets are the real-data results]\n",
    );
    for (var, paper_tiny, paper_small) in [
        ("tmin", "[R2 0.991, RMSE 3.812, SSIM 0.958, PSNR 29.0]", "[R2 0.999, RMSE 0.505, SSIM 0.987, PSNR 46.0]"),
        ("prcp", "[R2 0.975, RMSE 0.146, SSIM 0.931, PSNR 29.0]", "[R2 0.979, RMSE 0.135, SSIM 0.932, PSNR 30.2]"),
    ] {
        out.push_str(&format!("\n{var}:\n"));
        let mut t = Table::new(&[
            "Model", "R2", "RMSE", "RMSE s1>68%", "RMSE s2>95%", "RMSE s3>99.7%", "SSIM", "PSNR", "Paper",
        ]);
        for (label, reports, paper) in [
            ("tiny (9.5M analog)", &result.tiny, paper_tiny),
            ("small (126M analog)", &result.small, paper_small),
        ] {
            let r = reports
                .iter()
                .find(|r| r.name == var)
                .unwrap_or_else(|| panic!("missing report for {var}"));
            t.row(vec![
                label.into(),
                format!("{:.3}", r.report.r2),
                format!("{:.3}", r.report.rmse),
                format!("{:.3}", r.report.rmse_sigma1),
                format!("{:.3}", r.report.rmse_sigma2),
                format!("{:.3}", r.report.rmse_sigma3),
                format!("{:.3}", r.report.ssim),
                format!("{:.1}", r.report.psnr),
                paper.into(),
            ]);
        }
        out.push_str(&t.render());
    }
    // Science sanity: does the predicted precipitation *climatology* match
    // the truth (wet-day fraction, intensity, tail quantiles)?
    out.push_str("\nprcp climatology relative errors (pred vs truth):\n");
    for (label, c) in [("tiny", result.climatology.0), ("small", result.climatology.1)] {
        out.push_str(&format!(
            "  {label:<6} wet-fraction {:.3}  intensity {:.3}  p95 {:.3}  p99 {:.3}\n",
            c.wet_fraction_err, c.intensity_err, c.p95_err, c.p99_err
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_reports() {
        let r = run(6, 12);
        assert_eq!(r.tiny.len(), 3);
        assert_eq!(r.small.len(), 3);
        assert!(r.final_losses.0.is_finite());
        let s = render(&r);
        assert!(s.contains("tmin"));
        assert!(s.contains("prcp"));
        assert!(s.contains("126M analog"));
    }
}
