//! Real-kernel Hybrid-OP ablation (paper Sec. III-D).
//!
//! Hybrid-OP shards a matrix chain `X · A · B` in alternating column/row
//! dimensions: `A` column-sharded, `B` row-sharded, so the intermediate
//! `X·A` stays sharded and the only synchronization is one reduction of the
//! final partial products. Naive tensor parallelism shards both matrices
//! the same way and must all-gather the intermediate between the two
//! matmuls. On CPU the "all-gather" is a memcpy-merge across shard buffers;
//! the bench measures the saved merge.

use orbit2_tensor::matmul::matmul_block_seq;
use orbit2_tensor::random::randn;
use orbit2_tensor::Tensor;
use rayon::prelude::*;

/// Inputs of the chain benchmark.
pub struct ChainInputs {
    /// `X [n, d]`.
    pub x: Tensor,
    /// `A [d, d]`.
    pub a: Tensor,
    /// `B [d, d]`.
    pub b: Tensor,
}

/// Build deterministic inputs.
pub fn chain_inputs(n: usize, d: usize, seed: u64) -> ChainInputs {
    ChainInputs {
        x: randn(&[n, d], seed),
        a: randn(&[d, d], seed + 1),
        b: randn(&[d, d], seed + 2),
    }
}

/// Hybrid-OP chain: A column-sharded, B row-sharded; each shard computes
/// `(X · A_col_s) · B_row_s` independently and the partial outputs are
/// summed once.
pub fn chain_hybrid_op(inp: &ChainInputs, shards: usize) -> Tensor {
    let (n, d) = (inp.x.shape()[0], inp.x.shape()[1]);
    assert_eq!(d % shards, 0);
    let cols = d / shards;
    let partials: Vec<Vec<f32>> = (0..shards)
        .into_par_iter()
        .map(|s| {
            // A's column shard: [d, cols]; B's row shard: [cols, d].
            let a_shard = shard_columns(&inp.a, s, cols);
            let b_shard = inp.b.slice_axis(0, s * cols, cols);
            let mut mid = vec![0.0f32; n * cols];
            matmul_block_seq(inp.x.data(), a_shard.data(), &mut mid, n, d, cols);
            let mut out = vec![0.0f32; n * d];
            matmul_block_seq(&mid, b_shard.data(), &mut out, n, cols, d);
            out
        })
        .collect();
    // ONE reduction: sum the partial outputs.
    let mut out = vec![0.0f32; n * d];
    for p in partials {
        for (o, v) in out.iter_mut().zip(p) {
            *o += v;
        }
    }
    Tensor::from_vec(vec![n, d], out)
}

/// Naive tensor parallelism: both matmuls column-sharded, requiring an
/// all-gather (merge of the intermediate) between them, then a second
/// merge of the outputs.
pub fn chain_naive_tp(inp: &ChainInputs, shards: usize) -> Tensor {
    let (n, d) = (inp.x.shape()[0], inp.x.shape()[1]);
    assert_eq!(d % shards, 0);
    let cols = d / shards;
    // Stage 1: X · A, column sharded.
    let mids: Vec<Vec<f32>> = (0..shards)
        .into_par_iter()
        .map(|s| {
            let a_shard = shard_columns(&inp.a, s, cols);
            let mut mid = vec![0.0f32; n * cols];
            matmul_block_seq(inp.x.data(), a_shard.data(), &mut mid, n, d, cols);
            mid
        })
        .collect();
    // ALL-GATHER: merge the column shards into the full intermediate.
    let mut full_mid = vec![0.0f32; n * d];
    for (s, m) in mids.iter().enumerate() {
        for r in 0..n {
            full_mid[r * d + s * cols..r * d + (s + 1) * cols].copy_from_slice(&m[r * cols..(r + 1) * cols]);
        }
    }
    // Stage 2: mid · B, column sharded again.
    let outs: Vec<Vec<f32>> = (0..shards)
        .into_par_iter()
        .map(|s| {
            let b_shard = shard_columns(&inp.b, s, cols);
            let mut out = vec![0.0f32; n * cols];
            matmul_block_seq(&full_mid, b_shard.data(), &mut out, n, d, cols);
            out
        })
        .collect();
    // Second merge.
    let mut out = vec![0.0f32; n * d];
    for (s, m) in outs.iter().enumerate() {
        for r in 0..n {
            out[r * d + s * cols..r * d + (s + 1) * cols].copy_from_slice(&m[r * cols..(r + 1) * cols]);
        }
    }
    Tensor::from_vec(vec![n, d], out)
}

fn shard_columns(m: &Tensor, shard: usize, cols: usize) -> Tensor {
    m.slice_axis(1, shard * cols, cols)
}

/// Reference: unsharded chain.
pub fn chain_reference(inp: &ChainInputs) -> Tensor {
    inp.x.matmul(&inp.a).matmul(&inp.b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_schemes_match_reference() {
        let inp = chain_inputs(16, 32, 1);
        let reference = chain_reference(&inp);
        for shards in [1usize, 2, 4] {
            let h = chain_hybrid_op(&inp, shards);
            let n = chain_naive_tp(&inp, shards);
            assert!(h.max_abs_diff(&reference) < 1e-3, "hybrid {shards} shards");
            assert!(n.max_abs_diff(&reference) < 1e-3, "naive {shards} shards");
        }
    }

    #[test]
    fn hybrid_moves_less_intermediate_data() {
        // The structural win: naive TP materializes the full n x d
        // intermediate; hybrid never does. Verified by construction here;
        // the criterion bench measures the wall-clock consequence.
        let inp = chain_inputs(32, 64, 2);
        let h = chain_hybrid_op(&inp, 4);
        assert!(h.all_finite());
    }
}
