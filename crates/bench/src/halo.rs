//! Halo-width ablation (paper Sec. III-B: "the halo width is determined
//! empirically. Larger halos improve accuracy but increase computation,
//! while smaller halos reduce cost but risk accuracy loss").
//!
//! Measured with real kernels: tiled inference at several halo widths,
//! reporting (a) the deviation from the untiled reference — the accuracy
//! cost of missing context — and (b) the padded-area overhead — the
//! compute cost of the halo.

use crate::fmt::Table;
use crate::setup::{small_dataset, tiny_model, train_model};
use orbit2::eval::evaluate_model;
use orbit2_climate::Split;
use orbit2_imaging::tiles::{tile_grid, TileSpec};

/// One halo setting's outcome.
#[derive(Debug, Clone, Copy)]
pub struct HaloPoint {
    /// Halo width in input pixels.
    pub halo: usize,
    /// Held-out tmin RMSE of tiled inference at this halo width.
    pub rmse: f64,
    /// Mean padded-area / core-area compute overhead.
    pub overhead: f64,
}

/// Run the ablation: train once, evaluate tiled inference at increasing
/// halo widths against the ground truth.
pub fn run(steps: usize) -> Vec<HaloPoint> {
    let ds = small_dataset(24, 21);
    let (trainer, _) = train_model(tiny_model(4), &ds, steps, 2e-3);
    let test_idx = ds.indices(Split::Test);
    let (h, w) = (ds.coarse_grid().h, ds.coarse_grid().w);
    [0usize, 1, 2, 4]
        .iter()
        .map(|&halo| {
            let spec = TileSpec { tiles_y: 2, tiles_x: 2, halo };
            let reports = evaluate_model(
                &trainer.model,
                &trainer.normalizer,
                &ds,
                &test_idx,
                Some(spec),
                1.0,
            )
            .expect("valid test split");
            let rmse = reports[0].report.rmse; // tmin
            let grid = tile_grid(h, w, spec);
            let overhead =
                grid.iter().map(|g| g.halo_overhead()).sum::<f64>() / grid.len() as f64;
            HaloPoint { halo, rmse, overhead }
        })
        .collect()
}

/// Render the ablation table.
pub fn render(points: &[HaloPoint]) -> String {
    let mut t = Table::new(&["Halo (px)", "tmin RMSE (held out)", "Compute overhead"]);
    for p in points {
        t.row(vec![
            p.halo.to_string(),
            format!("{:.4}", p.rmse),
            format!("{:.2}x", p.overhead),
        ]);
    }
    format!(
        "Halo-width ablation [trained model, 2x2 tiles] (paper Sec. III-B: larger halos\n\
         improve accuracy but increase computation):\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_cost_tradeoff_holds() {
        let points = run(40);
        assert_eq!(points.len(), 4);
        // Some nonzero halo must beat (or at least match) the zero-halo
        // accuracy: border tokens need neighbour context.
        let zero = points[0].rmse;
        let best_with_halo = points[1..].iter().map(|p| p.rmse).fold(f64::INFINITY, f64::min);
        assert!(
            best_with_halo <= zero * 1.02,
            "a halo should not hurt accuracy: zero {zero}, best {best_with_halo}"
        );
        // Compute overhead grows strictly with halo width.
        for pair in points.windows(2) {
            assert!(pair[1].overhead > pair[0].overhead);
        }
        // Zero halo has zero overhead.
        assert!((points[0].overhead - 1.0).abs() < 1e-9);
        // All finite.
        assert!(points.iter().all(|p| p.rmse.is_finite()));
    }
}
