//! Fig. 8 / Sec. V-E "Global Model Inference": generalization from
//! regional training to global inference against an observation product
//! with different statistics (the IMERG analog).
//!
//! A model is trained on the ERA5-like global generator, then evaluated
//! against precipitation *observed through the simulated satellite sensor*
//! (multiplicative noise + recalibration + detection threshold) — the
//! data-source mismatch the paper highlights ("perfect alignment is not
//! expected").

use crate::fmt::Table;
use crate::setup::{global_dataset, train_model};
use orbit2::inference::downscale_with;
use orbit2_climate::imerg::{observe_precipitation, ImergLikeParams};
use orbit2_climate::Split;
use orbit2_metrics::precip::log_precip_slice;
use orbit2_metrics::regression::{r2_score, rmse};
use orbit2_metrics::ssim::{psnr, ssim};
use orbit2_model::{ModelConfig, ReslimModel};

/// Metrics of the global generalization experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Result {
    /// R² against the IMERG-like observation (log space).
    pub r2: f64,
    /// SSIM against the observation.
    pub ssim: f64,
    /// PSNR against the observation (dB).
    pub psnr: f64,
    /// RMSE in log(x+1) space (mm/day).
    pub rmse_log: f64,
    /// Same metrics against the *true* field, for reference.
    pub r2_truth: f64,
}

/// Run the experiment: train on the global ERA5-like task, evaluate the
/// precipitation channel against IMERG-like observations on test samples.
pub fn run(steps: usize, samples: usize) -> Fig8Result {
    let ds = global_dataset(samples, 99);
    let model = ReslimModel::new(ModelConfig::tiny().with_channels(23, 3), 21);
    let (trainer, _) = train_model(model, &ds, steps, 2e-3);
    let (h, w) = (ds.fine_grid().h, ds.fine_grid().w);
    let plane = h * w;
    let chan = ds.variables().output_index("prcp").expect("prcp");
    let test_idx = ds.indices(Split::Test);
    let mut preds = Vec::new();
    let mut obs = Vec::new();
    let mut truth = Vec::new();
    let session = trainer.model.session();
    for &i in &test_idx {
        let s = ds.sample(i);
        let pred =
            downscale_with(&trainer.model, &session, &trainer.normalizer, &s.input, None, 1.0)
                .expect("valid sample");
        preds.extend_from_slice(&pred.data()[chan * plane..(chan + 1) * plane]);
        truth.extend_from_slice(&s.target.data()[chan * plane..(chan + 1) * plane]);
        obs.extend(observe_precipitation(ds.world(), s.t, ImergLikeParams::default()));
    }
    let lp = log_precip_slice(&preds);
    let lo = log_precip_slice(&obs);
    let lt = log_precip_slice(&truth);
    // Frame-averaged image metrics.
    let frames = test_idx.len();
    let mut ssim_acc = 0.0;
    let mut psnr_acc = 0.0;
    for f in 0..frames {
        let p = &lp[f * plane..(f + 1) * plane];
        let o = &lo[f * plane..(f + 1) * plane];
        ssim_acc += ssim(p, o, h, w);
        psnr_acc += psnr(p, o);
    }
    Fig8Result {
        r2: r2_score(&lp, &lo),
        ssim: ssim_acc / frames as f64,
        psnr: psnr_acc / frames as f64,
        rmse_log: rmse(&lp, &lo),
        r2_truth: r2_score(&lp, &lt),
    }
}

/// Render next to the paper's reported metrics.
pub fn render(r: &Fig8Result) -> String {
    let mut t = Table::new(&["Metric", "Measured (vs IMERG-like)", "Paper (vs IMERG)"]);
    t.row(vec!["R2 (log space)".into(), format!("{:.3}", r.r2), "0.90".into()]);
    t.row(vec!["SSIM".into(), format!("{:.3}", r.ssim), "0.96".into()]);
    t.row(vec!["PSNR (dB)".into(), format!("{:.1}", r.psnr), "41.8".into()]);
    t.row(vec!["RMSE (log mm/day)".into(), format!("{:.3}", r.rmse_log), "0.34".into()]);
    format!(
        "Fig 8 / Sec V-E [global inference against shifted observations]:\n{}\
         R2 against the *true* field: {:.3} (observation mismatch costs the difference,\n\
         exactly the paper's ERA5-vs-IMERG source-inconsistency argument)\n",
        t.render(),
        r.r2_truth
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_finite_and_obs_mismatch_shows() {
        let r = run(6, 12);
        assert!(r.r2.is_finite() && r.ssim.is_finite() && r.psnr.is_finite());
        // Once the model is actually trained (full runs), scoring against
        // the distorted observation can't beat scoring against the truth;
        // at this smoke budget the model is untrained, so only check when
        // the truth fit is meaningful.
        if r.r2_truth > 0.5 {
            assert!(r.r2 <= r.r2_truth + 0.05, "obs R2 {} vs truth R2 {}", r.r2, r.r2_truth);
        }
        let s = render(&r);
        assert!(s.contains("0.90"));
    }
}
