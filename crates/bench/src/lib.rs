//! # orbit2-bench
//!
//! The benchmark harness: one driver per table/figure of the paper's
//! evaluation section, shared by the `repro` binary (which prints
//! paper-format rows next to the paper's reported values) and by the
//! criterion benches (which measure the real CPU kernels).
//!
//! Experiments that need training accept a step budget; the defaults keep
//! a full `repro all` run in the minutes range on a laptop-class CPU and
//! can be raised via the `ORBIT2_STEPS` environment variable for tighter
//! reproduction.

pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fmt;
pub mod halo;
pub mod hybrid;
pub mod setup;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

/// Step budget for training experiments: `ORBIT2_STEPS` or the default.
pub fn step_budget(default: usize) -> usize {
    std::env::var("ORBIT2_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}
