//! Substrate kernel benchmarks: blocked matmul, conv2d, Canny + quad-tree
//! construction (the CPU-side cost the compression model charges for), FFT
//! and the synthetic field generator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orbit2_imaging::quadtree::{QuadTree, QuadTreeParams};
use orbit2_tensor::bf16::bf16_round_slice;
use orbit2_tensor::bf16_act::{layer_norm_rows_bf16, softmax_rows_bf16, Bf16Tensor};
use orbit2_tensor::conv::{conv2d, ConvGeom};
use orbit2_tensor::fused::{
    layer_norm_rows, matmul_bias_act, matmul_bias_act_cached, softmax_rows, Activation,
    PackedWeight, WeightPrecision,
};
use orbit2_tensor::qgemm::{gemm_bf16_act_fused, PackedWeightBf16};
use orbit2_tensor::random::randn;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for &n in &[128usize, 256, 512] {
        let a = randn(&[n, n], 1);
        let b = randn(&[n, n], 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b))
        });
    }
    group.finish();
}

/// Fused linear+GELU epilogue vs the unfused GEMM → bias → GELU chain:
/// the BENCH_kernels.json pair `fused_linear_gelu/N` vs
/// `unfused_linear_gelu/N` records the epilogue-fusion win.
/// The reduced-precision packed GEMM at each storage format, via the same
/// session-resident cached path inference uses: weights packed once up
/// front (f32 / bf16 / int8 strips), activations f32, f32 accumulate.
/// `BENCH_kernels.json` rows `gemm_f32/N`, `gemm_bf16/N`, `gemm_i8/N`
/// record the per-precision throughput the serving `--precision` flag buys.
fn bench_packed_gemm(c: &mut Criterion) {
    for precision in [WeightPrecision::F32, WeightPrecision::Bf16, WeightPrecision::Int8] {
        let mut group = c.benchmark_group(format!("gemm_{}", precision.label()));
        group.sample_size(10);
        for &n in &[256usize, 512] {
            let x = randn(&[n, n], 31);
            let w = randn(&[n, n], 32);
            let b = randn(&[n], 33);
            let pack = PackedWeight::pack_at(&w, precision);
            // Mirror InferenceSession: the resident tensor is the pack's
            // dequantized snapshot so fallback paths agree with the kernel.
            let resident = pack
                .as_ref()
                .and_then(PackedWeight::dequantized)
                .unwrap_or_else(|| w.clone());
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
                bench.iter(|| {
                    matmul_bias_act_cached(
                        &x,
                        &resident,
                        pack.as_ref(),
                        Some(&b),
                        Activation::Identity,
                    )
                })
            });
        }
        group.finish();
    }
}

fn bench_fused_linear(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_linear_gelu");
    group.sample_size(10);
    for &n in &[256usize, 512] {
        let x = randn(&[n, n], 11);
        let w = randn(&[n, n], 12);
        let b = randn(&[n], 13);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| matmul_bias_act(&x, &w, Some(&b), Activation::Gelu))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("unfused_linear_gelu");
    group.sample_size(10);
    for &n in &[256usize, 512] {
        let x = randn(&[n, n], 11);
        let w = randn(&[n, n], 12);
        let b = randn(&[n], 13).into_reshape(vec![1, n]);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| x.matmul(&w.transpose2()).add(&b).gelu())
        });
    }
    group.finish();
}

/// The bf16-activation GEMM against its f32-activation twin over the SAME
/// bf16 weight pack, isolating the activation-bandwidth axis: the only
/// difference between the two rows is whether the A operand streams as u16
/// bf16 words (widened in-register) or as f32. Sized so the A operand
/// alone (2048x512 = 4 MB at f32) exceeds L2 on the bench box — below
/// cache, the halved activation traffic is invisible. `BENCH_kernels.json`
/// rows `gemm_bf16_act/{f32,bf16}` record the same-run pair.
fn bench_gemm_bf16_act(c: &mut Criterion) {
    let (m, k, n) = (2048usize, 512usize, 512usize);
    let x = randn(&[m, k], 41);
    let w = randn(&[n, k], 42);
    let b = randn(&[n], 43);
    let pack = PackedWeightBf16::pack(&w).expect("bf16 pack at bench size");
    let full = PackedWeight::pack_at(&w, WeightPrecision::Bf16);
    let resident =
        full.as_ref().and_then(PackedWeight::dequantized).unwrap_or_else(|| w.clone());
    let xa = Bf16Tensor::from_tensor(&x);

    let mut group = c.benchmark_group("gemm_bf16_act");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("f32"), |bench| {
        bench.iter(|| {
            matmul_bias_act_cached(&x, &resident, full.as_ref(), Some(&b), Activation::Gelu)
        })
    });
    group.bench_function(BenchmarkId::from_parameter("bf16"), |bench| {
        bench.iter(|| {
            let mut out = vec![0u16; m * n];
            gemm_bf16_act_fused(xa.words(), m, k, &pack, Some(b.data()), Activation::Gelu, &mut out);
            out
        })
    });
    group.finish();
}

fn bench_layer_norm(c: &mut Criterion) {
    let mut group = c.benchmark_group("layer_norm");
    group.sample_size(10);
    for &(rows, d) in &[(1024usize, 256usize), (4096, 512)] {
        let x = randn(&[rows, d], 21);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{d}")),
            &d,
            |bench, _| bench.iter(|| layer_norm_rows(x.data(), rows, d, 1e-5)),
        );
    }
    group.finish();
}

/// bf16-in/bf16-out layer norm (fused affine) against the f32 session's
/// equivalent (welford pass + gamma/beta application) at a size whose
/// activation working set (4096x512 = 8 MB at f32, 4 MB at bf16) exceeds
/// cache. Rows `layer_norm_bf16/{f32,bf16}`.
fn bench_layer_norm_bf16(c: &mut Criterion) {
    let (rows, d) = (4096usize, 512usize);
    let x = randn(&[rows, d], 24);
    let gamma = randn(&[d], 25);
    let beta = randn(&[d], 26);
    let xw = Bf16Tensor::from_tensor(&x);

    let mut group = c.benchmark_group("layer_norm_bf16");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("f32"), |bench| {
        bench.iter(|| {
            let (mut y, _inv_std) = layer_norm_rows(x.data(), rows, d, 1e-5);
            for row in y.chunks_mut(d) {
                for ((v, g), b) in row.iter_mut().zip(gamma.data()).zip(beta.data()) {
                    *v = *v * g + b;
                }
            }
            y
        })
    });
    group.bench_function(BenchmarkId::from_parameter("bf16"), |bench| {
        bench.iter(|| {
            layer_norm_rows_bf16(xw.words(), rows, d, 1e-5, gamma.data(), beta.data())
        })
    });
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("softmax");
    group.sample_size(10);
    for &(rows, d) in &[(1024usize, 256usize), (4096, 512)] {
        let x = randn(&[rows, d], 22);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{d}")),
            &d,
            |bench, _| {
                bench.iter(|| {
                    let mut buf = x.data().to_vec();
                    softmax_rows(&mut buf, d);
                    buf
                })
            },
        );
    }
    group.finish();
}

/// bf16-in/bf16-out row softmax against the f32 one at the same
/// beyond-cache size. Rows `softmax_bf16/{f32,bf16}`.
fn bench_softmax_bf16(c: &mut Criterion) {
    let (rows, d) = (4096usize, 512usize);
    let x = randn(&[rows, d], 27);
    let xw = Bf16Tensor::from_tensor(&x);

    let mut group = c.benchmark_group("softmax_bf16");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("f32"), |bench| {
        bench.iter(|| {
            let mut buf = x.data().to_vec();
            softmax_rows(&mut buf, d);
            buf
        })
    });
    group.bench_function(BenchmarkId::from_parameter("bf16"), |bench| {
        bench.iter(|| {
            let mut buf = xw.words().to_vec();
            softmax_rows_bf16(&mut buf, d);
            buf
        })
    });
    group.finish();
}

fn bench_bf16(c: &mut Criterion) {
    let mut group = c.benchmark_group("bf16_round");
    group.sample_size(10);
    for &n in &[1usize << 16, 1 << 20] {
        let x = randn(&[n], 23);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut buf = x.data().to_vec();
                bf16_round_slice(&mut buf);
                buf
            })
        });
    }
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d_3x3");
    group.sample_size(10);
    for &hw in &[32usize, 64] {
        let x = randn(&[1, 8, hw, hw], 3);
        let w = randn(&[8, 8, 3, 3], 4);
        group.bench_with_input(BenchmarkId::from_parameter(hw), &hw, |bench, _| {
            bench.iter(|| conv2d(&x, &w, None, ConvGeom::same(3)))
        });
    }
    group.finish();
}

fn bench_quadtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("quadtree_build");
    group.sample_size(10);
    for &hw in &[64usize, 128] {
        let field = randn(&[hw * hw], 5).into_vec();
        group.bench_with_input(BenchmarkId::from_parameter(hw), &hw, |bench, _| {
            bench.iter(|| QuadTree::build(&field, hw, hw, QuadTreeParams::default()))
        });
    }
    group.finish();
}

fn bench_fft(c: &mut Criterion) {
    use orbit2_fft::fft2::fft2_real;
    let mut group = c.benchmark_group("fft2");
    group.sample_size(10);
    for &hw in &[64usize, 256] {
        let field = randn(&[hw * hw], 6).into_vec();
        group.bench_with_input(BenchmarkId::from_parameter(hw), &hw, |bench, _| {
            bench.iter(|| fft2_real(&field, hw, hw))
        });
    }
    group.finish();
}

fn bench_synth(c: &mut Criterion) {
    use orbit2_climate::synth::{gaussian_random_field, GrfSpec};
    let mut group = c.benchmark_group("synthetic_field");
    group.sample_size(10);
    for &hw in &[64usize, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(hw), &hw, |bench, &hw| {
            bench.iter(|| gaussian_random_field(hw, hw, GrfSpec { slope: 3.0 }, 7))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_packed_gemm,
    bench_gemm_bf16_act,
    bench_fused_linear,
    bench_layer_norm,
    bench_layer_norm_bf16,
    bench_softmax,
    bench_softmax_bf16,
    bench_bf16,
    bench_conv,
    bench_quadtree,
    bench_fft,
    bench_synth
);
criterion_main!(benches);
