//! Substrate kernel benchmarks: blocked matmul, conv2d, Canny + quad-tree
//! construction (the CPU-side cost the compression model charges for), FFT
//! and the synthetic field generator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orbit2_imaging::quadtree::{QuadTree, QuadTreeParams};
use orbit2_tensor::conv::{conv2d, ConvGeom};
use orbit2_tensor::random::randn;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for &n in &[128usize, 256, 512] {
        let a = randn(&[n, n], 1);
        let b = randn(&[n, n], 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b))
        });
    }
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d_3x3");
    group.sample_size(10);
    for &hw in &[32usize, 64] {
        let x = randn(&[1, 8, hw, hw], 3);
        let w = randn(&[8, 8, 3, 3], 4);
        group.bench_with_input(BenchmarkId::from_parameter(hw), &hw, |bench, _| {
            bench.iter(|| conv2d(&x, &w, None, ConvGeom::same(3)))
        });
    }
    group.finish();
}

fn bench_quadtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("quadtree_build");
    group.sample_size(10);
    for &hw in &[64usize, 128] {
        let field = randn(&[hw * hw], 5).into_vec();
        group.bench_with_input(BenchmarkId::from_parameter(hw), &hw, |bench, _| {
            bench.iter(|| QuadTree::build(&field, hw, hw, QuadTreeParams::default()))
        });
    }
    group.finish();
}

fn bench_fft(c: &mut Criterion) {
    use orbit2_fft::fft2::fft2_real;
    let mut group = c.benchmark_group("fft2");
    group.sample_size(10);
    for &hw in &[64usize, 256] {
        let field = randn(&[hw * hw], 6).into_vec();
        group.bench_with_input(BenchmarkId::from_parameter(hw), &hw, |bench, _| {
            bench.iter(|| fft2_real(&field, hw, hw))
        });
    }
    group.finish();
}

fn bench_synth(c: &mut Criterion) {
    use orbit2_climate::synth::{gaussian_random_field, GrfSpec};
    let mut group = c.benchmark_group("synthetic_field");
    group.sample_size(10);
    for &hw in &[64usize, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(hw), &hw, |bench, &hw| {
            bench.iter(|| gaussian_random_field(hw, hw, GrfSpec { slope: 3.0 }, 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_conv, bench_quadtree, bench_fft, bench_synth);
criterion_main!(benches);
