//! Table II(b), real kernels: Reslim forward pass under adaptive
//! compression ratios and tile counts, tape-free via inference sessions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orbit2_model::{ModelConfig, ReslimModel};
use orbit2_tensor::random::randn;

fn bench_compression(c: &mut Criterion) {
    let cfg = ModelConfig::tiny().with_channels(7, 3);
    let model = ReslimModel::new(cfg, 1);
    let session = model.session();
    let input = randn(&[7, 32, 32], 9);
    let mut group = c.benchmark_group("table2b_compression");
    group.sample_size(10);
    for &ratio in &[1.0f32, 2.0, 4.0, 8.0] {
        group.bench_with_input(BenchmarkId::new("reslim_forward", format!("{ratio}x")), &ratio, |b, &ratio| {
            b.iter(|| model.forward(&session, &input, ratio).0.into_tensor())
        });
    }
    group.finish();
}

fn bench_tiling(c: &mut Criterion) {
    use orbit2::inference::downscale_with;
    use orbit2_climate::Normalizer;
    use orbit2_imaging::tiles::TileSpec;
    let ds = orbit2_climate::DownscalingDataset::new(
        orbit2_climate::LatLonGrid::conus(32, 64),
        orbit2_climate::VariableSet::daymet_like(),
        4,
        4,
        3,
    );
    let model = ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 2);
    let session = model.session();
    let norm = Normalizer::fit(&ds, 2);
    let sample = ds.sample(0);
    let mut group = c.benchmark_group("table2b_tiling");
    group.sample_size(10);
    for &tiles in &[1usize, 4, 16] {
        let spec = if tiles == 1 { None } else { Some(TileSpec::square(tiles, 1)) };
        group.bench_with_input(BenchmarkId::new("tiled_inference", tiles), &spec, |b, spec| {
            b.iter(|| downscale_with(&model, &session, &norm, &sample.input, *spec, 1.0).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compression, bench_tiling);
criterion_main!(benches);
