//! Fig. 6(a), real execution: TILES inference throughput as the thread pool
//! ("GPU count") grows. Threads stand in for GPUs exactly as in the
//! trainer; near-linear scaling is the claim under test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orbit2::inference::downscale_with;
use orbit2_climate::{DownscalingDataset, LatLonGrid, Normalizer, VariableSet};
use orbit2_imaging::tiles::TileSpec;
use orbit2_model::{ModelConfig, ReslimModel};

fn bench_tiles_scaling(c: &mut Criterion) {
    let ds = DownscalingDataset::new(LatLonGrid::conus(64, 128), VariableSet::daymet_like(), 4, 4, 3);
    let model = ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 3);
    let session = model.session();
    let norm = Normalizer::fit(&ds, 2);
    let sample = ds.sample(0);
    let spec = TileSpec::square(16, 1);
    let max = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut group = c.benchmark_group("fig6a_tiles_vs_threads");
    group.sample_size(10);
    let mut threads = 1usize;
    while threads <= max.min(16) {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        group.bench_with_input(BenchmarkId::new("16_tiles", threads), &threads, |b, _| {
            b.iter(|| {
                pool.install(|| {
                    downscale_with(&model, &session, &norm, &sample.input, Some(spec), 1.0).unwrap()
                })
            })
        });
        threads *= 2;
    }
    group.finish();
}

criterion_group!(benches, bench_tiles_scaling);
criterion_main!(benches);
