//! Flash vs naive attention kernels (paper Sec. III-D "Flash Attention").
//!
//! The cache-blocked streaming-softmax kernel avoids materializing the
//! `[S, S]` score matrix; past L2-sized sequences it wins on memory traffic
//! even on CPU, and it is numerically equivalent (property-tested in
//! `orbit2-tensor`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orbit2_tensor::attention::{flash_attention, naive_attention, AttentionConfig};
use orbit2_tensor::random::randn;

fn bench_attention(c: &mut Criterion) {
    let mut group = c.benchmark_group("attention");
    group.sample_size(10);
    for &s in &[256usize, 1024, 4096] {
        let d = 64usize;
        let q = randn(&[s, d], 1);
        let k = randn(&[s, d], 2);
        let v = randn(&[s, d], 3);
        group.bench_with_input(BenchmarkId::new("naive", s), &s, |b, _| {
            b.iter(|| naive_attention(&q, &k, &v))
        });
        group.bench_with_input(BenchmarkId::new("flash", s), &s, |b, _| {
            b.iter(|| flash_attention(&q, &k, &v, AttentionConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attention);
criterion_main!(benches);
