//! Hybrid-OP ablation (paper Sec. III-D): matrix-chain sharding with
//! alternating row/column dimensions (one final reduction) vs naive tensor
//! parallelism (all-gather between the matmuls).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orbit2_bench::hybrid::{chain_hybrid_op, chain_inputs, chain_naive_tp};

fn bench_hybrid_op(c: &mut Criterion) {
    let mut group = c.benchmark_group("hybrid_op");
    group.sample_size(10);
    for &d in &[256usize, 512] {
        let inp = chain_inputs(256, d, 1);
        for &shards in &[4usize, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("hybrid_d{d}"), shards),
                &shards,
                |b, &s| b.iter(|| chain_hybrid_op(&inp, s)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("naive_tp_d{d}"), shards),
                &shards,
                |b, &s| b.iter(|| chain_naive_tp(&inp, s)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_hybrid_op);
criterion_main!(benches);
