//! Tape vs tape-free forward latency at the Table II model sizes.
//!
//! Four variants per size: the full training-style forward (tape + binder
//! built per call, values unwrapped at the end), the tape-free session
//! forward (weights and GEMM packs prepared once, outside the timed
//! region), and both again through the 2x2 halo-2 tiled inference path.
//! The tape/session ratio is the cost of autograd bookkeeping that
//! inference no longer pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orbit2::inference::downscale_with;
use orbit2::tiling::{split_stack, stitch_predictions};
use orbit2_autograd::Tape;
use orbit2_climate::{DownscalingDataset, LatLonGrid, Normalizer, VariableSet};
use orbit2_imaging::tiles::{TileGeometry, TileSpec};
use orbit2_model::binder::Binder;
use orbit2_model::{ModelConfig, ReslimModel, SessionPrecision};
use orbit2_tensor::random::randn;
use orbit2_tensor::Tensor;
use rayon::prelude::*;

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_forward");
    group.sample_size(10);
    for (name, cfg) in [("tiny", ModelConfig::tiny()), ("small", ModelConfig::small())] {
        let model = ReslimModel::new(cfg.with_channels(7, 3), 1);
        let session = model.session();
        let input = randn(&[7, 16, 32], 42);
        group.bench_with_input(BenchmarkId::new("tape", name), &input, |b, input| {
            b.iter(|| {
                let tape = Tape::new();
                let binder = Binder::new(&tape, &model.params);
                model.forward(&binder, input, 1.0).0.value()
            })
        });
        group.bench_with_input(BenchmarkId::new("session", name), &input, |b, input| {
            b.iter(|| model.forward(&session, input, 1.0).0.into_tensor())
        });
        // Reduced-precision sessions: same tape-free forward, weights held
        // at bf16/int8 (f32 activations and accumulate) — the per-forward
        // win of halved/quartered weight-stream bytes.
        for precision in [SessionPrecision::Bf16, SessionPrecision::Int8] {
            let reduced = model.session_at(precision);
            let label = format!("session_{}", precision.label());
            group.bench_with_input(BenchmarkId::new(label, name), &input, |b, input| {
                b.iter(|| model.forward(&reduced, input, 1.0).0.into_tensor())
            });
        }
    }
    group.finish();
}

fn bench_tiled(c: &mut Criterion) {
    let ds = DownscalingDataset::new(LatLonGrid::conus(32, 64), VariableSet::daymet_like(), 4, 4, 3);
    let norm = Normalizer::fit(&ds, 2);
    let sample = ds.sample(0);
    let spec = TileSpec { tiles_y: 2, tiles_x: 2, halo: 2 };
    let mut group = c.benchmark_group("inference_tiled");
    group.sample_size(10);
    for (name, cfg) in [("tiny", ModelConfig::tiny()), ("small", ModelConfig::small())] {
        let model = ReslimModel::new(cfg.with_channels(7, 3), 2);
        let session = model.session();
        group.bench_with_input(BenchmarkId::new("tape", name), &sample.input, |b, input| {
            // The pre-refactor tiled path: every tile worker builds its own
            // tape and binder per call.
            b.iter(|| {
                let (h, w) = (input.shape()[1], input.shape()[2]);
                let norm_in = norm.normalize_input(input);
                let tiles = split_stack(&norm_in, spec);
                let preds: Vec<(TileGeometry, Tensor)> = tiles
                    .par_iter()
                    .map(|(geom, tile_input)| {
                        let tape = Tape::new();
                        let binder = Binder::new(&tape, &model.params);
                        let (pred, _) = model.forward(&binder, tile_input, 1.0);
                        (*geom, pred.value())
                    })
                    .collect();
                let stitched = stitch_predictions(&preds, h, w, model.cfg.scale_factor);
                norm.denormalize_target(&stitched)
            })
        });
        group.bench_with_input(BenchmarkId::new("session", name), &sample.input, |b, input| {
            b.iter(|| downscale_with(&model, &session, &norm, input, Some(spec), 1.0).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward, bench_tiled);
criterion_main!(benches);
