//! Table II(a), real kernels: Reslim vs the upsample-first baseline ViT on
//! identical inputs. The baseline pays `factor^2` more tokens plus the
//! quadratic attention on them; the measured ratio is the paper's speedup
//! mechanism at CPU scale.
//!
//! Forwards run tape-free through prepared inference sessions — the bench
//! measures the architectures, not the autograd bookkeeping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orbit2_model::{BaselineVit, ModelConfig, ReslimModel};
use orbit2_tensor::random::randn;

fn bench_arch(c: &mut Criterion) {
    let cfg = ModelConfig::tiny().with_channels(7, 3);
    let reslim = ReslimModel::new(cfg, 1);
    let vit = BaselineVit::new(cfg, 1);
    let reslim_sess = reslim.session();
    let vit_sess = vit.session();
    let mut group = c.benchmark_group("table2a_arch");
    group.sample_size(10);
    for &(h, w) in &[(8usize, 16usize), (16, 32)] {
        let input = randn(&[7, h, w], 5);
        group.bench_with_input(BenchmarkId::new("baseline_vit", format!("{h}x{w}")), &input, |b, input| {
            b.iter(|| vit.forward(&vit_sess, input).into_tensor())
        });
        group.bench_with_input(BenchmarkId::new("reslim", format!("{h}x{w}")), &input, |b, input| {
            b.iter(|| reslim.forward(&reslim_sess, input, 1.0).0.into_tensor())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_arch);
criterion_main!(benches);
