//! Open-loop serving load: offered bursts at several concurrency levels,
//! microbatched vs unbatched, measuring end-to-end request latency
//! (p50/p99) and sustained throughput.
//!
//! Custom harness (not criterion): serving throughput is a property of the
//! whole server — queue, batcher, worker registry — not of one closure, so
//! the driver spawns client threads that submit raw-source requests
//! without waiting (open loop within the burst) and then drains all
//! handles. One `BENCH_JSON` line per (mode, concurrency) cell keeps the
//! output compatible with `scripts/bench_smoke.sh`; `median_ns` carries
//! the p50 latency so `scripts/bench_check.sh` tracks it like any other
//! bench.

use orbit2::serving::ServeRequest;
use orbit2_climate::{DownscalingDataset, LatLonGrid, Normalizer, VariableSet};
use orbit2_model::{ModelConfig, ReslimModel, SessionActivation, SessionPrecision};
use orbit2_serve::{Handle, Region, Server, ServerConfig};
use orbit2_tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const REQUESTS_PER_CLIENT: usize = 6;
/// Trials per (mode, concurrency) cell; the best-throughput trial is
/// reported. Open-loop runs on a shared box are noisy — the best trial is
/// the least-perturbed view of what the server can sustain.
const TRIALS: usize = 3;

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run_level(server: &Arc<Server>, inputs: &Arc<Vec<Tensor>>, clients: usize) -> (Vec<u64>, f64) {
    run_load(server, inputs, clients, REQUESTS_PER_CLIENT)
}

fn run_load(
    server: &Arc<Server>,
    inputs: &Arc<Vec<Tensor>>,
    clients: usize,
    requests_per_client: usize,
) -> (Vec<u64>, f64) {
    let next_id = Arc::new(AtomicU64::new(1));
    let wall = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let server = Arc::clone(server);
            let inputs = Arc::clone(inputs);
            let next_id = Arc::clone(&next_id);
            std::thread::spawn(move || {
                // Open loop within the burst: submit everything, then drain.
                let handles: Vec<Handle> = (0..requests_per_client)
                    .map(|r| {
                        let input = &inputs[(c + r) % inputs.len()];
                        let id = next_id.fetch_add(1, Ordering::Relaxed);
                        server.submit(ServeRequest::raw(
                            id,
                            input.shape().to_vec(),
                            input.data().to_vec(),
                        ))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.wait().expect("bench request succeeds").micros)
                    .collect::<Vec<u64>>()
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::with_capacity(clients * requests_per_client);
    for t in threads {
        latencies.extend(t.join().expect("client thread panicked"));
    }
    let elapsed = wall.elapsed().as_secs_f64();
    latencies.sort_unstable();
    (latencies, (clients * requests_per_client) as f64 / elapsed)
}

fn main() {
    let ds =
        DownscalingDataset::new(LatLonGrid::conus(16, 32), VariableSet::daymet_like(), 4, 8, 3);
    let norm = Normalizer::fit(&ds, 4);
    let inputs = Arc::new((0..4).map(|i| ds.sample(i).input).collect::<Vec<_>>());

    for (mode, batching) in [("batched", true), ("unbatched", false)] {
        // A fresh server (and model twin) per mode so queues and counters
        // start cold; the seeded model is identical across modes.
        let model = ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 2);
        let cfg = ServerConfig {
            max_batch: 8,
            window_micros: 1_000,
            cache_capacity: 0,
            queue_capacity: 4096,
            batching,
            ..ServerConfig::default()
        };
        let server =
            Arc::new(Server::start(model, norm.clone(), Vec::<Region>::new(), cfg));
        // Warm up allocator pools and code paths outside the timed region.
        let _ = run_level(&server, &inputs, 2);

        for &clients in &[1usize, 4, 16] {
            measure_cell(&server, &inputs, clients, &format!("serving/{mode}/c{clients}"));
        }
    }

    // Per-precision serving: the same c=16 burst against servers whose
    // default weight precision differs, on the paper's 126M model
    // (embed 1024: ~0.5 GB of f32 weights, far past every cache level) —
    // reduced-precision weights pay exactly when the weight working set
    // exceeds cache and every forward streams it. The tiny/small bench
    // models' weights are cache-resident and show no delta (see
    // BENCH_inference.json `session_*` rows for the same split), which is
    // itself the honest result: `--precision` buys throughput in
    // proportion to how weight-stream-bound the deployment is. Batching
    // is off for these cells (stacking tiles into one forward amortizes
    // the weight stream across rows — the same cost reduced precision
    // attacks — so the batched path hides the delta) and the burst is one
    // request per client to keep the 126M cells affordable. The
    // `serving/f32|bf16|int8/c16` row triple records what the flag buys a
    // latency-sensitive deployment.
    for precision in [SessionPrecision::F32, SessionPrecision::Bf16, SessionPrecision::Int8] {
        let model = ReslimModel::new(ModelConfig::paper_126m().with_channels(7, 3), 2);
        let cfg = ServerConfig {
            max_batch: 8,
            window_micros: 1_000,
            cache_capacity: 0,
            queue_capacity: 4096,
            batching: false,
            precision,
            ..ServerConfig::default()
        };
        let server = Arc::new(Server::start(model, norm.clone(), Vec::<Region>::new(), cfg));
        let _ = run_load(&server, &inputs, 2, 1);
        let label = precision.label();
        measure_precision_cell(&server, &inputs, 16, &format!("serving/{label}/c16"));
    }

    // Activation-precision cell: the same 126M burst with f32 weights but
    // bf16 activations streaming through the session — the orthogonal axis
    // to the weight-precision triple above. Compare against
    // `serving/f32/c16` from the same run: the delta is what
    // `--activation-precision bf16` buys when the *activation* working set
    // (not the weights) is the bandwidth bound. On this model the weights
    // dominate (~0.5 GB vs MB-scale activations), so a small delta here is
    // the honest result; the kernel-level `gemm_bf16_act` /
    // `layer_norm_bf16` / `softmax_bf16` rows isolate the activation axis
    // where it is actually load-bearing.
    {
        let model = ReslimModel::new(ModelConfig::paper_126m().with_channels(7, 3), 2);
        let cfg = ServerConfig {
            max_batch: 8,
            window_micros: 1_000,
            cache_capacity: 0,
            queue_capacity: 4096,
            batching: false,
            precision: SessionPrecision::F32,
            activation: SessionActivation::Bf16,
            ..ServerConfig::default()
        };
        let server = Arc::new(Server::start(model, norm, Vec::<Region>::new(), cfg));
        let _ = run_load(&server, &inputs, 2, 1);
        measure_precision_cell(&server, &inputs, 16, "serving/bf16-act/c16");
    }
}

/// Like [`measure_cell`] but one request per client: the 126M model is
/// ~200x the bench models, so the precision cells trade sample count for
/// a model big enough to stream weights.
fn measure_precision_cell(
    server: &Arc<Server>,
    inputs: &Arc<Vec<Tensor>>,
    clients: usize,
    name: &str,
) {
    let mut best: Option<(Vec<u64>, f64)> = None;
    for _ in 0..2 {
        let trial = run_load(server, inputs, clients, 1);
        if best.as_ref().is_none_or(|(_, b)| trial.1 > *b) {
            best = Some(trial);
        }
    }
    let (latencies, rps) = best.expect("two trials ran");
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    println!(
        "BENCH_JSON {{\"bench\":\"{name}\",\"median_ns\":{},\
         \"p50_us\":{p50},\"p99_us\":{p99},\"rps\":{rps:.2},\
         \"batched_share\":0.0,\"avg_batch\":1.00}}",
        p50 * 1_000,
    );
    println!("{name}: p50 {p50} us, p99 {p99} us, {rps:.1} req/s");
}

/// Run TRIALS bursts at one concurrency level and print the best trial as
/// one `BENCH_JSON` row plus a human-readable summary line.
fn measure_cell(server: &Arc<Server>, inputs: &Arc<Vec<Tensor>>, clients: usize, name: &str) {
    let before = server.stats();
    let mut best: Option<(Vec<u64>, f64)> = None;
    for _ in 0..TRIALS {
        let trial = run_level(server, inputs, clients);
        if best.as_ref().is_none_or(|(_, b)| trial.1 > *b) {
            best = Some(trial);
        }
    }
    let (latencies, rps) = best.expect("TRIALS >= 1");
    let after = server.stats();
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let jobs = after.completed - before.completed;
    let forwards = after.batches - before.batches;
    let batched_share = if jobs == 0 {
        0.0
    } else {
        (after.batched_jobs - before.batched_jobs) as f64 / jobs as f64
    };
    let avg_batch = if forwards == 0 { 0.0 } else { jobs as f64 / forwards as f64 };
    println!(
        "BENCH_JSON {{\"bench\":\"{name}\",\"median_ns\":{},\
         \"p50_us\":{p50},\"p99_us\":{p99},\"rps\":{rps:.2},\
         \"batched_share\":{batched_share:.3},\"avg_batch\":{avg_batch:.2}}}",
        p50 * 1_000,
    );
    println!(
        "{name}: p50 {p50} us, p99 {p99} us, {rps:.1} req/s, \
         batched share {batched_share:.0}%, avg batch {avg_batch:.1}",
        batched_share = batched_share * 100.0,
    );
}
