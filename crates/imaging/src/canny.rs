//! Canny edge detection.
//!
//! The paper's adaptive spatial compression estimates per-quadrant "feature
//! density ... computed via Canny edge detection" (Sec. III-A). This is the
//! full classic pipeline: Gaussian blur → Sobel gradient → non-maximum
//! suppression → double-threshold hysteresis.

use crate::blur::gaussian_blur;
use crate::gradient::sobel;

/// Canny detector parameters.
#[derive(Debug, Clone, Copy)]
pub struct CannyParams {
    /// Gaussian pre-blur sigma.
    pub sigma: f32,
    /// Low hysteresis threshold as a fraction of the max gradient magnitude.
    pub low_frac: f32,
    /// High hysteresis threshold as a fraction of the max gradient magnitude.
    pub high_frac: f32,
}

impl Default for CannyParams {
    fn default() -> Self {
        Self { sigma: 1.0, low_frac: 0.1, high_frac: 0.3 }
    }
}

/// Run Canny edge detection; returns a binary edge map (`true` = edge pixel).
pub fn canny_edges(field: &[f32], h: usize, w: usize, params: CannyParams) -> Vec<bool> {
    assert_eq!(field.len(), h * w);
    assert!(params.low_frac <= params.high_frac, "low threshold above high");
    let blurred = gaussian_blur(field, h, w, params.sigma);
    let grad = sobel(&blurred, h, w);
    // A (near-)constant field has only float-noise gradients; relative
    // thresholds would promote that noise to edges, so floor against the
    // field's dynamic range.
    let range = field.iter().copied().fold(f32::NEG_INFINITY, f32::max)
        - field.iter().copied().fold(f32::INFINITY, f32::min);
    let mag_max = grad.magnitude.iter().copied().fold(0.0f32, f32::max);
    if range <= 0.0 || mag_max < 1e-4 * range {
        return vec![false; h * w];
    }
    let suppressed = non_maximum_suppression(&grad.magnitude, &grad.direction, h, w);
    hysteresis(&suppressed, h, w, params.low_frac, params.high_frac)
}

/// Fraction of edge pixels in the map — the feature-density score used by the
/// quad-tree splitting criterion.
pub fn edge_density(edges: &[bool]) -> f32 {
    if edges.is_empty() {
        return 0.0;
    }
    edges.iter().filter(|&&e| e).count() as f32 / edges.len() as f32
}

/// Thin edges to single-pixel width: keep a pixel only if its magnitude is a
/// local maximum along the gradient direction (quantized to 4 orientations).
fn non_maximum_suppression(mag: &[f32], dir: &[f32], h: usize, w: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; h * w];
    let get = |y: i64, x: i64| -> f32 {
        if y < 0 || y >= h as i64 || x < 0 || x >= w as i64 {
            0.0
        } else {
            mag[(y as usize) * w + x as usize]
        }
    };
    for y in 0..h as i64 {
        for x in 0..w as i64 {
            let i = (y as usize) * w + x as usize;
            let m = mag[i];
            if m == 0.0 {
                continue;
            }
            // Quantize direction to one of 4 axes (0, 45, 90, 135 degrees).
            let mut angle = dir[i].to_degrees();
            if angle < 0.0 {
                angle += 180.0;
            }
            let (dy, dx) = if !(22.5..157.5).contains(&angle) {
                (0i64, 1i64) // horizontal gradient -> compare left/right
            } else if angle < 67.5 {
                (1, 1)
            } else if angle < 112.5 {
                (1, 0)
            } else {
                (1, -1)
            };
            if m >= get(y + dy, x + dx) && m >= get(y - dy, x - dx) {
                out[i] = m;
            }
        }
    }
    out
}

/// Double threshold + connectivity: strong pixels seed a flood fill that
/// promotes connected weak pixels.
fn hysteresis(mag: &[f32], h: usize, w: usize, low_frac: f32, high_frac: f32) -> Vec<bool> {
    let max = mag.iter().copied().fold(0.0f32, f32::max);
    if max == 0.0 {
        return vec![false; h * w];
    }
    let low = low_frac * max;
    let high = high_frac * max;
    let mut edges = vec![false; h * w];
    let mut stack: Vec<usize> = Vec::new();
    for (i, &m) in mag.iter().enumerate() {
        if m >= high && !edges[i] {
            edges[i] = true;
            stack.push(i);
            while let Some(p) = stack.pop() {
                let (py, px) = (p / w, p % w);
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let (ny, nx) = (py as i64 + dy, px as i64 + dx);
                        if ny < 0 || ny >= h as i64 || nx < 0 || nx >= w as i64 {
                            continue;
                        }
                        let n = (ny as usize) * w + nx as usize;
                        if !edges[n] && mag[n] >= low {
                            edges[n] = true;
                            stack.push(n);
                        }
                    }
                }
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_field(h: usize, w: usize) -> Vec<f32> {
        (0..h * w).map(|i| if i % w >= w / 2 { 1.0 } else { 0.0 }).collect()
    }

    #[test]
    fn flat_field_has_no_edges() {
        let edges = canny_edges(&vec![0.5f32; 16 * 16], 16, 16, CannyParams::default());
        assert_eq!(edge_density(&edges), 0.0);
    }

    #[test]
    fn step_edge_is_found_near_the_step() {
        let (h, w) = (16, 16);
        let edges = canny_edges(&step_field(h, w), h, w, CannyParams::default());
        assert!(edge_density(&edges) > 0.0);
        // Edge pixels concentrate around the step column w/2.
        for y in 2..h - 2 {
            let row = &edges[y * w..(y + 1) * w];
            let hits: Vec<usize> = row.iter().enumerate().filter(|(_, &e)| e).map(|(x, _)| x).collect();
            assert!(!hits.is_empty(), "row {y} should contain edge pixels");
            for x in hits {
                assert!((x as i64 - (w / 2) as i64).unsigned_abs() <= 3, "edge at x={x} too far from step");
            }
        }
    }

    #[test]
    fn nms_thins_the_edge() {
        // After NMS the step edge should be at most ~2 pixels wide per row.
        let (h, w) = (16, 32);
        let edges = canny_edges(&step_field(h, w), h, w, CannyParams::default());
        for y in 3..h - 3 {
            let count = edges[y * w..(y + 1) * w].iter().filter(|&&e| e).count();
            assert!(count <= 3, "row {y} has {count} edge pixels; NMS should thin");
        }
    }

    #[test]
    fn density_increases_with_texture() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let (h, w) = (32, 32);
        let smooth: Vec<f32> = (0..h * w).map(|i| (i / w) as f32 / h as f32).collect();
        let noisy: Vec<f32> = (0..h * w).map(|_| rng.gen_range(0.0f32..1.0)).collect();
        let p = CannyParams::default();
        let d_smooth = edge_density(&canny_edges(&smooth, h, w, p));
        let d_noisy = edge_density(&canny_edges(&noisy, h, w, p));
        assert!(d_noisy > d_smooth, "noise {d_noisy} should out-edge ramp {d_smooth}");
    }

    #[test]
    fn hysteresis_promotes_connected_weak_pixels() {
        // A gradient magnitude map with a strong pixel adjacent to weak ones:
        // the weak chain should be kept, isolated weak pixels dropped.
        let w = 7;
        let mut mag = vec![0.0f32; 7 * w];
        mag[3 * w + 1] = 1.0; // strong
        mag[3 * w + 2] = 0.2; // weak, connected
        mag[3 * w + 3] = 0.2; // weak, connected
        mag[0] = 0.2; // weak, isolated
        let edges = hysteresis(&mag, 7, w, 0.15, 0.8);
        assert!(edges[3 * w + 1] && edges[3 * w + 2] && edges[3 * w + 3]);
        assert!(!edges[0]);
    }

    #[test]
    fn edge_density_bounds() {
        assert_eq!(edge_density(&[]), 0.0);
        assert_eq!(edge_density(&[true, true]), 1.0);
        assert_eq!(edge_density(&[true, false, false, false]), 0.25);
    }
}
