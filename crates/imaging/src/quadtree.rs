//! Quad-tree adaptive spatial compression (paper Sec. III-A, Fig. 3).
//!
//! The aggregated feature field is mapped back to image space and recursively
//! partitioned into quadrants. A quadrant splits while its Canny edge density
//! exceeds a threshold and it is larger than the minimum patch size;
//! otherwise it becomes a single *patch token*. Feature-rich regions thus get
//! many small patches and smooth regions get few large ones, shrinking the
//! ViT sequence length.

use crate::canny::{canny_edges, edge_density, CannyParams};
use serde::{Deserialize, Serialize};

/// One leaf patch of the quad-tree: a rectangle in pixel space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Patch {
    /// Top row (inclusive).
    pub y0: usize,
    /// Left column (inclusive).
    pub x0: usize,
    /// Height in pixels.
    pub h: usize,
    /// Width in pixels.
    pub w: usize,
}

impl Patch {
    /// Pixel area of the patch.
    pub fn area(&self) -> usize {
        self.h * self.w
    }

    /// Center coordinates (for positional encodings).
    pub fn center(&self) -> (f32, f32) {
        (self.y0 as f32 + self.h as f32 / 2.0, self.x0 as f32 + self.w as f32 / 2.0)
    }
}

/// Parameters of the adaptive partition.
#[derive(Debug, Clone, Copy)]
pub struct QuadTreeParams {
    /// Edge-density threshold above which a quadrant splits.
    pub density_threshold: f32,
    /// Minimum patch edge in pixels; quadrants at or below never split.
    pub min_patch: usize,
    /// Maximum patch edge in pixels; larger quadrants always split
    /// (bounds the receptive field of a single token).
    pub max_patch: usize,
    /// Canny parameters for the density estimate.
    pub canny: CannyParams,
}

impl Default for QuadTreeParams {
    fn default() -> Self {
        Self {
            density_threshold: 0.05,
            min_patch: 2,
            max_patch: 64,
            canny: CannyParams::default(),
        }
    }
}

/// The adaptive partition of one field.
#[derive(Debug, Clone)]
pub struct QuadTree {
    /// Leaf patches in deterministic (depth-first, NW-NE-SW-SE) order.
    pub patches: Vec<Patch>,
    /// Field height.
    pub h: usize,
    /// Field width.
    pub w: usize,
}

impl QuadTree {
    /// Build the adaptive partition of an `h x w` field.
    pub fn build(field: &[f32], h: usize, w: usize, params: QuadTreeParams) -> Self {
        assert_eq!(field.len(), h * w);
        let edges = canny_edges(field, h, w, params.canny);
        let mut patches = Vec::new();
        subdivide(&edges, w, Patch { y0: 0, x0: 0, h, w }, &params, &mut patches);
        QuadTree { patches, h, w }
    }

    /// Build a uniform partition with patch size `p` (the non-adaptive
    /// baseline of Fig. 3(a)). `h` and `w` must be multiples of `p`.
    pub fn uniform(h: usize, w: usize, p: usize) -> Self {
        assert!(p > 0 && h.is_multiple_of(p) && w.is_multiple_of(p), "{h}x{w} not divisible by {p}");
        let mut patches = Vec::with_capacity((h / p) * (w / p));
        for y in (0..h).step_by(p) {
            for x in (0..w).step_by(p) {
                patches.push(Patch { y0: y, x0: x, h: p, w: p });
            }
        }
        QuadTree { patches, h, w }
    }

    /// Number of patch tokens.
    pub fn token_count(&self) -> usize {
        self.patches.len()
    }

    /// Sequence-length compression relative to a uniform partition of patch
    /// size `p` (the "7x" of Fig. 3 / "4x–32x" of Tables II-III).
    pub fn compression_vs_uniform(&self, p: usize) -> f32 {
        let uniform = (self.h / p) * (self.w / p);
        uniform as f32 / self.patches.len() as f32
    }

    /// True iff the patches exactly tile the domain: every pixel covered once.
    pub fn is_exact_partition(&self) -> bool {
        let mut cover = vec![0u8; self.h * self.w];
        for p in &self.patches {
            if p.y0 + p.h > self.h || p.x0 + p.w > self.w {
                return false;
            }
            for y in p.y0..p.y0 + p.h {
                for x in p.x0..p.x0 + p.w {
                    let i = y * self.w + x;
                    if cover[i] != 0 {
                        return false;
                    }
                    cover[i] = 1;
                }
            }
        }
        cover.iter().all(|&c| c == 1)
    }

    /// Mean pixel value of the field inside each patch, in patch order —
    /// the pooled token content used by the compression module.
    pub fn pool_means(&self, field: &[f32]) -> Vec<f32> {
        assert_eq!(field.len(), self.h * self.w);
        self.patches
            .iter()
            .map(|p| {
                let mut s = 0.0f32;
                for y in p.y0..p.y0 + p.h {
                    for x in p.x0..p.x0 + p.w {
                        s += field[y * self.w + x];
                    }
                }
                s / p.area() as f32
            })
            .collect()
    }

    /// Scatter per-patch values back to the full field (constant per patch) —
    /// the decompression operator.
    pub fn unpool(&self, values: &[f32]) -> Vec<f32> {
        assert_eq!(values.len(), self.patches.len());
        let mut out = vec![0.0f32; self.h * self.w];
        for (p, &v) in self.patches.iter().zip(values) {
            for y in p.y0..p.y0 + p.h {
                for x in p.x0..p.x0 + p.w {
                    out[y * self.w + x] = v;
                }
            }
        }
        out
    }
}

fn subdivide(edges: &[bool], stride: usize, rect: Patch, params: &QuadTreeParams, out: &mut Vec<Patch>) {
    let too_small = rect.h.min(rect.w) <= params.min_patch;
    let must_split = rect.h.max(rect.w) > params.max_patch;
    let splittable = rect.h >= 2 && rect.w >= 2;
    let split = splittable
        && !too_small
        && (must_split || rect_density(edges, stride, &rect) > params.density_threshold);
    if !split {
        out.push(rect);
        return;
    }
    // Halve each axis (ceil first) so odd sizes still partition exactly.
    let h0 = rect.h.div_ceil(2);
    let w0 = rect.w.div_ceil(2);
    let quads = [
        Patch { y0: rect.y0, x0: rect.x0, h: h0, w: w0 },
        Patch { y0: rect.y0, x0: rect.x0 + w0, h: h0, w: rect.w - w0 },
        Patch { y0: rect.y0 + h0, x0: rect.x0, h: rect.h - h0, w: w0 },
        Patch { y0: rect.y0 + h0, x0: rect.x0 + w0, h: rect.h - h0, w: rect.w - w0 },
    ];
    for q in quads {
        if q.h > 0 && q.w > 0 {
            subdivide(edges, stride, q, params, out);
        }
    }
}

fn rect_density(edges: &[bool], stride: usize, rect: &Patch) -> f32 {
    let mut hits = 0usize;
    for y in rect.y0..rect.y0 + rect.h {
        for x in rect.x0..rect.x0 + rect.w {
            if edges[y * stride + x] {
                hits += 1;
            }
        }
    }
    hits as f32 / rect.area() as f32
}

// edge_density is re-exported for callers estimating density directly.
pub use crate::canny::edge_density as patch_edge_density;
const _: fn(&[bool]) -> f32 = edge_density;

#[cfg(test)]
mod tests {
    use super::*;

    fn step_field(h: usize, w: usize) -> Vec<f32> {
        (0..h * w).map(|i| if i % w >= w / 2 { 1.0 } else { 0.0 }).collect()
    }

    #[test]
    fn uniform_partition_counts() {
        let qt = QuadTree::uniform(8, 16, 2);
        assert_eq!(qt.token_count(), 32);
        assert!(qt.is_exact_partition());
    }

    #[test]
    fn flat_field_collapses_to_coarse_patches() {
        let (h, w) = (64, 64);
        let qt = QuadTree::build(&vec![0.0f32; h * w], h, w, QuadTreeParams::default());
        // No edges -> only the max_patch constraint forces splits: 64x64 exactly
        // hits max_patch so one leaf.
        assert_eq!(qt.token_count(), 1);
        assert!(qt.is_exact_partition());
    }

    #[test]
    fn edge_region_gets_finer_patches() {
        let (h, w) = (64, 64);
        let params = QuadTreeParams { density_threshold: 0.02, ..Default::default() };
        let qt = QuadTree::build(&step_field(h, w), h, w, params);
        assert!(qt.is_exact_partition());
        assert!(qt.token_count() > 4, "step edge should force subdivisions");
        // Patches touching the step column are smaller than the far field.
        let near: Vec<&Patch> = qt.patches.iter().filter(|p| p.x0 <= w / 2 && p.x0 + p.w > w / 2).collect();
        let far: Vec<&Patch> = qt.patches.iter().filter(|p| p.x0 + p.w <= w / 4).collect();
        assert!(!near.is_empty() && !far.is_empty(), "expected patches on both sides");
        let mean_area = |v: &[&Patch]| v.iter().map(|p| p.area()).sum::<usize>() as f32 / v.len() as f32;
        assert!(mean_area(&near) < mean_area(&far), "near-edge patches should be finer");
    }

    #[test]
    fn compression_ratio_relative_to_uniform() {
        let (h, w) = (64, 64);
        let qt = QuadTree::build(&step_field(h, w), h, w, QuadTreeParams::default());
        let ratio = qt.compression_vs_uniform(2);
        let uniform_tokens = (h / 2) * (w / 2);
        assert!(ratio > 1.0, "adaptive must beat uniform on a mostly-flat field");
        assert!((ratio - uniform_tokens as f32 / qt.token_count() as f32).abs() < 1e-6);
    }

    #[test]
    fn odd_sizes_still_partition_exactly() {
        let (h, w) = (33, 47);
        let f = step_field(h, w);
        let qt = QuadTree::build(&f, h, w, QuadTreeParams { max_patch: 16, ..Default::default() });
        assert!(qt.is_exact_partition());
    }

    #[test]
    fn pool_unpool_roundtrip_on_patch_constant_field() {
        let (h, w) = (16, 16);
        let qt = QuadTree::uniform(h, w, 4);
        // Build a field constant within each 4x4 patch.
        let vals: Vec<f32> = (0..qt.token_count()).map(|i| i as f32).collect();
        let field = qt.unpool(&vals);
        let pooled = qt.pool_means(&field);
        for (a, b) in pooled.iter().zip(&vals) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn min_patch_bounds_subdivision() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let (h, w) = (32, 32);
        let noisy: Vec<f32> = (0..h * w).map(|_| rng.gen_range(0.0f32..1.0)).collect();
        let params = QuadTreeParams { min_patch: 4, density_threshold: 0.0, ..Default::default() };
        let qt = QuadTree::build(&noisy, h, w, params);
        assert!(qt.is_exact_partition());
        for p in &qt.patches {
            assert!(p.h.min(p.w) >= 4 || p.h.min(p.w) >= params.min_patch.div_ceil(2), "patch too small: {p:?}");
        }
    }

    #[test]
    fn deterministic_for_same_input() {
        let (h, w) = (32, 32);
        let f = step_field(h, w);
        let a = QuadTree::build(&f, h, w, QuadTreeParams::default());
        let b = QuadTree::build(&f, h, w, QuadTreeParams::default());
        assert_eq!(a.patches, b.patches);
    }
}
