//! Tiny image writers for the visual figures: binary-free ASCII PGM files and
//! terminal ASCII art (used by `repro fig7b` to render precipitation maps).

use std::io::Write;
use std::path::Path;

/// Write an `h x w` field as an ASCII PGM (P2), normalizing to 0..255.
pub fn write_pgm(path: &Path, field: &[f32], h: usize, w: usize) -> std::io::Result<()> {
    assert_eq!(field.len(), h * w);
    let (lo, hi) = min_max(field);
    let span = if hi > lo { hi - lo } else { 1.0 };
    let mut out = String::with_capacity(h * w * 4 + 32);
    out.push_str(&format!("P2\n{w} {h}\n255\n"));
    for (i, &v) in field.iter().enumerate() {
        let g = (((v - lo) / span) * 255.0).round().clamp(0.0, 255.0) as u32;
        out.push_str(&g.to_string());
        out.push(if (i + 1) % w == 0 { '\n' } else { ' ' });
    }
    std::fs::File::create(path)?.write_all(out.as_bytes())
}

/// Render a field as coarse ASCII art (downsampled to at most `cols` wide).
pub fn ascii_art(field: &[f32], h: usize, w: usize, cols: usize) -> String {
    assert_eq!(field.len(), h * w);
    const RAMP: &[u8] = b" .:-=+*#%@";
    let cols = cols.min(w).max(1);
    // Terminal cells are ~2x taller than wide; halve the row density.
    let rows = ((h * cols) / (2 * w)).max(1);
    let (lo, hi) = min_max(field);
    let span = if hi > lo { hi - lo } else { 1.0 };
    let mut s = String::with_capacity(rows * (cols + 1));
    for r in 0..rows {
        for c in 0..cols {
            // Average the block this cell covers.
            let y0 = r * h / rows;
            let y1 = ((r + 1) * h / rows).max(y0 + 1);
            let x0 = c * w / cols;
            let x1 = ((c + 1) * w / cols).max(x0 + 1);
            let mut acc = 0.0f32;
            for y in y0..y1 {
                for x in x0..x1 {
                    acc += field[y * w + x];
                }
            }
            let v = acc / ((y1 - y0) * (x1 - x0)) as f32;
            let idx = (((v - lo) / span) * (RAMP.len() - 1) as f32).round() as usize;
            s.push(RAMP[idx.min(RAMP.len() - 1)] as char);
        }
        s.push('\n');
    }
    s
}

fn min_max(field: &[f32]) -> (f32, f32) {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in field {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_roundtrip_header() {
        let dir = std::env::temp_dir().join("orbit2_pgm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pgm");
        write_pgm(&path, &[0.0, 0.5, 1.0, 0.25], 2, 2).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("P2"));
        assert_eq!(lines.next(), Some("2 2"));
        assert_eq!(lines.next(), Some("255"));
        assert_eq!(lines.next(), Some("0 128"));
    }

    #[test]
    fn ascii_art_dimensions() {
        let art = ascii_art(&vec![0.5; 32 * 64], 32, 64, 32);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 8); // 32 cols * 32/64 / 2
        assert!(lines.iter().all(|l| l.len() == 32));
    }

    #[test]
    fn ascii_art_contrast() {
        // Bright half should map to denser glyphs than dark half.
        let (h, w) = (4, 8);
        let f: Vec<f32> = (0..h * w).map(|i| if i % w >= 4 { 1.0 } else { 0.0 }).collect();
        let art = ascii_art(&f, h, w, 8);
        let first = art.lines().next().unwrap().as_bytes();
        assert_eq!(first[0], b' ');
        assert_eq!(first[7], b'@');
    }
}
