//! # orbit2-imaging
//!
//! Image-processing substrate for the ORBIT-2 reproduction:
//!
//! * [`blur`] — separable Gaussian blur (stage 1 of Canny),
//! * [`gradient`] — Sobel gradients with magnitude/direction,
//! * [`canny`] — full Canny edge detector (blur → gradient → non-maximum
//!   suppression → hysteresis), used to estimate the *feature density* that
//!   drives Reslim's adaptive spatial compression (paper Sec. III-A),
//! * [`quadtree`] — recursive quadrant partitioning over edge density: the
//!   adaptive patching of Fig. 3,
//! * [`tiles`] — tile/halo geometry for TILES (paper Sec. III-B): splitting a
//!   field into overlapping tiles and stitching the cores back,
//! * [`pgm`] — tiny PGM/ASCII renderers for the visual figures (Fig. 7(b)).

pub mod blur;
pub mod canny;
pub mod gradient;
pub mod pgm;
pub mod quadtree;
pub mod tiles;

pub use canny::{canny_edges, edge_density, CannyParams};
pub use quadtree::{QuadTree, QuadTreeParams, Patch};
pub use tiles::{stitch_tiles, split_into_tiles, TileGeometry, TileSpec};
