//! Separable Gaussian blur with edge clamping.

use rayon::prelude::*;

/// Build a normalized 1-D Gaussian kernel with the given sigma.
///
/// Radius is `ceil(3 * sigma)`, covering >99.7% of the mass.
pub fn gaussian_kernel(sigma: f32) -> Vec<f32> {
    assert!(sigma > 0.0, "sigma must be positive");
    let radius = (3.0 * sigma).ceil() as i64;
    let mut k: Vec<f32> = (-radius..=radius)
        .map(|i| (-0.5 * (i as f32 / sigma).powi(2)).exp())
        .collect();
    let sum: f32 = k.iter().sum();
    for v in &mut k {
        *v /= sum;
    }
    k
}

/// Gaussian-blur an `h x w` field (row-major), clamping at borders.
pub fn gaussian_blur(field: &[f32], h: usize, w: usize, sigma: f32) -> Vec<f32> {
    assert_eq!(field.len(), h * w);
    let k = gaussian_kernel(sigma);
    let r = (k.len() / 2) as i64;
    // Horizontal pass.
    let mut tmp = vec![0.0f32; h * w];
    tmp.par_chunks_mut(w).enumerate().for_each(|(y, row)| {
        let src = &field[y * w..(y + 1) * w];
        for (x, out) in row.iter_mut().enumerate() {
            let mut s = 0.0;
            for (ki, &kv) in k.iter().enumerate() {
                let xx = (x as i64 + ki as i64 - r).clamp(0, w as i64 - 1) as usize;
                s += src[xx] * kv;
            }
            *out = s;
        }
    });
    // Vertical pass.
    let mut out = vec![0.0f32; h * w];
    out.par_chunks_mut(w).enumerate().for_each(|(y, row)| {
        for x in 0..w {
            let mut s = 0.0;
            for (ki, &kv) in k.iter().enumerate() {
                let yy = (y as i64 + ki as i64 - r).clamp(0, h as i64 - 1) as usize;
                s += tmp[yy * w + x] * kv;
            }
            row[x] = s;
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_normalized_and_symmetric() {
        let k = gaussian_kernel(1.5);
        let sum: f32 = k.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        let n = k.len();
        for i in 0..n / 2 {
            assert!((k[i] - k[n - 1 - i]).abs() < 1e-7);
        }
        // Peak at center.
        assert!(k[n / 2] >= *k.iter().last().unwrap());
    }

    #[test]
    fn constant_field_unchanged() {
        let f = vec![4.2f32; 6 * 9];
        let b = gaussian_blur(&f, 6, 9, 1.0);
        for &v in &b {
            assert!((v - 4.2).abs() < 1e-5);
        }
    }

    #[test]
    fn blur_reduces_variance() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let (h, w) = (32, 32);
        let f: Vec<f32> = (0..h * w).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let b = gaussian_blur(&f, h, w, 2.0);
        let var = |v: &[f32]| {
            let m: f32 = v.iter().sum::<f32>() / v.len() as f32;
            v.iter().map(|x| (x - m).powi(2)).sum::<f32>() / v.len() as f32
        };
        assert!(var(&b) < var(&f) * 0.3);
    }

    #[test]
    fn impulse_spreads_symmetrically() {
        let (h, w) = (9, 9);
        let mut f = vec![0.0f32; h * w];
        f[4 * w + 4] = 1.0;
        let b = gaussian_blur(&f, h, w, 1.0);
        // 4-fold symmetry around the center.
        assert!((b[3 * w + 4] - b[5 * w + 4]).abs() < 1e-7);
        assert!((b[4 * w + 3] - b[4 * w + 5]).abs() < 1e-7);
        assert!((b[3 * w + 4] - b[4 * w + 3]).abs() < 1e-7);
        // Mass conserved (away from borders).
        let total: f32 = b.iter().sum();
        assert!((total - 1.0).abs() < 1e-4);
    }
}
