//! Tile/halo geometry for TILES (paper Sec. III-B, Fig. 4).
//!
//! A field is partitioned into a `tiles_y x tiles_x` grid of *core* tiles.
//! Each core is padded with a fixed-width halo that overlaps its neighbours
//! (replicated at the domain border), each padded tile is processed
//! independently (on its own GPU in the paper; its own rayon task here), the
//! halos are discarded and the cores stitched back together.

use serde::{Deserialize, Serialize};

/// How a field is tiled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileSpec {
    /// Number of tiles along y.
    pub tiles_y: usize,
    /// Number of tiles along x.
    pub tiles_x: usize,
    /// Halo width in pixels, added on every side of each tile.
    pub halo: usize,
}

impl TileSpec {
    /// A square-ish grid of `n` tiles (n must be a perfect square) with halo.
    pub fn square(n: usize, halo: usize) -> Self {
        let s = (n as f64).sqrt().round() as usize;
        assert_eq!(s * s, n, "tile count {n} is not a perfect square");
        Self { tiles_y: s, tiles_x: s, halo }
    }

    /// Total number of tiles.
    pub fn count(&self) -> usize {
        self.tiles_y * self.tiles_x
    }
}

/// Placement of one tile inside the global field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileGeometry {
    /// Tile row index in the grid.
    pub ty: usize,
    /// Tile column index in the grid.
    pub tx: usize,
    /// Core top-left in global coordinates.
    pub core_y0: usize,
    /// Core top-left in global coordinates.
    pub core_x0: usize,
    /// Core height.
    pub core_h: usize,
    /// Core width.
    pub core_w: usize,
    /// Halo width actually applied (same on all sides, replicated at domain
    /// borders so the padded tile always has size `(core_h + 2*halo) x
    /// (core_w + 2*halo)`).
    pub halo: usize,
}

impl TileGeometry {
    /// Padded height of the tile.
    pub fn padded_h(&self) -> usize {
        self.core_h + 2 * self.halo
    }

    /// Padded width of the tile.
    pub fn padded_w(&self) -> usize {
        self.core_w + 2 * self.halo
    }

    /// Compute overhead of the halo: padded area / core area. This is the
    /// extra work a tile pays for border context (paper: "larger halos
    /// improve accuracy but increase computation").
    pub fn halo_overhead(&self) -> f64 {
        (self.padded_h() * self.padded_w()) as f64 / (self.core_h * self.core_w) as f64
    }

    /// The geometry scaled by an integer downscaling factor (output space).
    pub fn scaled(&self, factor: usize) -> TileGeometry {
        TileGeometry {
            ty: self.ty,
            tx: self.tx,
            core_y0: self.core_y0 * factor,
            core_x0: self.core_x0 * factor,
            core_h: self.core_h * factor,
            core_w: self.core_w * factor,
            halo: self.halo * factor,
        }
    }
}

/// Compute the tile grid for an `h x w` field. Tile cores differ by at most
/// one pixel in size when `h`/`w` do not divide evenly.
pub fn tile_grid(h: usize, w: usize, spec: TileSpec) -> Vec<TileGeometry> {
    assert!(spec.tiles_y >= 1 && spec.tiles_x >= 1);
    assert!(spec.tiles_y <= h && spec.tiles_x <= w, "more tiles than pixels");
    let mut out = Vec::with_capacity(spec.count());
    for ty in 0..spec.tiles_y {
        let y0 = ty * h / spec.tiles_y;
        let y1 = (ty + 1) * h / spec.tiles_y;
        for tx in 0..spec.tiles_x {
            let x0 = tx * w / spec.tiles_x;
            let x1 = (tx + 1) * w / spec.tiles_x;
            out.push(TileGeometry {
                ty,
                tx,
                core_y0: y0,
                core_x0: x0,
                core_h: y1 - y0,
                core_w: x1 - x0,
                halo: spec.halo,
            });
        }
    }
    out
}

/// Extract the padded tiles of a single-channel `h x w` field.
///
/// Halo pixels outside the domain replicate the border (clamp-to-edge), so
/// every padded tile has the full `(core + 2*halo)` size.
pub fn split_into_tiles(field: &[f32], h: usize, w: usize, spec: TileSpec) -> Vec<(TileGeometry, Vec<f32>)> {
    assert_eq!(field.len(), h * w);
    tile_grid(h, w, spec)
        .into_iter()
        .map(|g| {
            let ph = g.padded_h();
            let pw = g.padded_w();
            let mut tile = vec![0.0f32; ph * pw];
            for py in 0..ph {
                let gy = (g.core_y0 as i64 + py as i64 - g.halo as i64).clamp(0, h as i64 - 1) as usize;
                for px in 0..pw {
                    let gx = (g.core_x0 as i64 + px as i64 - g.halo as i64).clamp(0, w as i64 - 1) as usize;
                    tile[py * pw + px] = field[gy * w + gx];
                }
            }
            (g, tile)
        })
        .collect()
}

/// Stitch processed padded tiles back into a full `h x w` field, discarding
/// each tile's halo and writing only its core.
///
/// # Panics
/// Panics when tile sizes are inconsistent with their geometry or the cores
/// do not exactly cover the field.
pub fn stitch_tiles(tiles: &[(TileGeometry, Vec<f32>)], h: usize, w: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; h * w];
    let mut covered = vec![false; h * w];
    for (g, data) in tiles {
        let pw = g.padded_w();
        assert_eq!(data.len(), g.padded_h() * pw, "tile data does not match geometry");
        for cy in 0..g.core_h {
            let gy = g.core_y0 + cy;
            let src = (cy + g.halo) * pw + g.halo;
            for cx in 0..g.core_w {
                let gi = gy * w + g.core_x0 + cx;
                assert!(!covered[gi], "tile cores overlap at ({gy},{})", g.core_x0 + cx);
                out[gi] = data[src + cx];
                covered[gi] = true;
            }
        }
    }
    assert!(covered.iter().all(|&c| c), "tile cores do not cover the field");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_exactly() {
        for &(h, w, ty, tx) in &[(16usize, 16usize, 4usize, 4usize), (17, 23, 3, 5), (8, 8, 1, 1)] {
            let grid = tile_grid(h, w, TileSpec { tiles_y: ty, tiles_x: tx, halo: 0 });
            let area: usize = grid.iter().map(|g| g.core_h * g.core_w).sum();
            assert_eq!(area, h * w, "({h},{w},{ty},{tx})");
        }
    }

    #[test]
    fn split_stitch_identity() {
        let (h, w) = (16usize, 20usize);
        let field: Vec<f32> = (0..h * w).map(|i| i as f32 * 0.5).collect();
        for halo in [0usize, 1, 3] {
            let spec = TileSpec { tiles_y: 4, tiles_x: 2, halo };
            let tiles = split_into_tiles(&field, h, w, spec);
            let back = stitch_tiles(&tiles, h, w);
            assert_eq!(back, field, "halo={halo}");
        }
    }

    #[test]
    fn halo_contains_neighbor_pixels() {
        let (h, w) = (8usize, 8usize);
        let field: Vec<f32> = (0..h * w).map(|i| i as f32).collect();
        let spec = TileSpec { tiles_y: 2, tiles_x: 2, halo: 1 };
        let tiles = split_into_tiles(&field, h, w, spec);
        // Tile (0,1)'s left halo column equals field column 3 (the rightmost
        // column of tile (0,0)'s core).
        let (g, data) = &tiles[1];
        assert_eq!((g.ty, g.tx), (0, 1));
        let pw = g.padded_w();
        // padded row 1 = global row 0; padded col 0 = global col core_x0-1 = 3
        assert_eq!(data[pw], field[3]);
    }

    #[test]
    fn border_halo_replicates_edge() {
        let (h, w) = (4usize, 4usize);
        let field: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let spec = TileSpec { tiles_y: 1, tiles_x: 1, halo: 2 };
        let tiles = split_into_tiles(&field, h, w, spec);
        let (g, data) = &tiles[0];
        let pw = g.padded_w();
        // Top-left padded corner replicates field[0].
        assert_eq!(data[0], field[0]);
        assert_eq!(data[pw + 1], field[0]);
        // Bottom-right padded corner replicates field[15].
        assert_eq!(data[(g.padded_h() - 1) * pw + pw - 1], field[15]);
    }

    #[test]
    fn halo_overhead_grows_with_tiles() {
        // Same field, more tiles -> more relative halo work (paper: "further
        // tiling introduces excessive halo padding overhead").
        let overhead = |n: usize| {
            let grid = tile_grid(96, 96, TileSpec::square(n, 4));
            grid.iter().map(|g| g.halo_overhead()).sum::<f64>() / grid.len() as f64
        };
        assert!(overhead(4) < overhead(16));
        assert!(overhead(16) < overhead(36));
    }

    #[test]
    fn scaled_geometry() {
        let g = TileGeometry { ty: 1, tx: 2, core_y0: 8, core_x0: 16, core_h: 8, core_w: 8, halo: 2 };
        let s = g.scaled(4);
        assert_eq!(s.core_y0, 32);
        assert_eq!(s.core_h, 32);
        assert_eq!(s.halo, 8);
        assert_eq!(s.padded_h(), 48);
    }

    #[test]
    #[should_panic(expected = "not a perfect square")]
    fn square_spec_rejects_non_square() {
        TileSpec::square(12, 1);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn stitch_rejects_overlapping_cores() {
        let g0 = TileGeometry { ty: 0, tx: 0, core_y0: 0, core_x0: 0, core_h: 2, core_w: 2, halo: 0 };
        let g1 = TileGeometry { ty: 0, tx: 1, core_y0: 0, core_x0: 1, core_h: 2, core_w: 2, halo: 0 };
        let t = vec![(g0, vec![0.0; 4]), (g1, vec![0.0; 4])];
        let _ = stitch_tiles(&t, 2, 3);
    }
}
