//! Sobel image gradients.

/// Gradient field: per-pixel magnitude and direction.
#[derive(Debug, Clone)]
pub struct GradientField {
    /// Gradient magnitude, row-major `h x w`.
    pub magnitude: Vec<f32>,
    /// Gradient direction in radians, `atan2(gy, gx)`.
    pub direction: Vec<f32>,
    /// Field height.
    pub h: usize,
    /// Field width.
    pub w: usize,
}

/// Compute Sobel gradients of an `h x w` field with clamped borders.
pub fn sobel(field: &[f32], h: usize, w: usize) -> GradientField {
    assert_eq!(field.len(), h * w);
    let mut magnitude = vec![0.0f32; h * w];
    let mut direction = vec![0.0f32; h * w];
    let get = |y: i64, x: i64| -> f32 {
        let yy = y.clamp(0, h as i64 - 1) as usize;
        let xx = x.clamp(0, w as i64 - 1) as usize;
        field[yy * w + xx]
    };
    for y in 0..h as i64 {
        for x in 0..w as i64 {
            let gx = -get(y - 1, x - 1) - 2.0 * get(y, x - 1) - get(y + 1, x - 1)
                + get(y - 1, x + 1) + 2.0 * get(y, x + 1) + get(y + 1, x + 1);
            let gy = -get(y - 1, x - 1) - 2.0 * get(y - 1, x) - get(y - 1, x + 1)
                + get(y + 1, x - 1) + 2.0 * get(y + 1, x) + get(y + 1, x + 1);
            let i = (y as usize) * w + x as usize;
            magnitude[i] = (gx * gx + gy * gy).sqrt();
            direction[i] = gy.atan2(gx);
        }
    }
    GradientField { magnitude, direction, h, w }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_field_has_zero_gradient() {
        let g = sobel(&[1.0f32; 25], 5, 5);
        for &m in &g.magnitude {
            assert_eq!(m, 0.0);
        }
    }

    #[test]
    fn vertical_edge_detected_horizontally() {
        // Left half 0, right half 1: gradient points in +x.
        let (h, w) = (5, 6);
        let f: Vec<f32> = (0..h * w).map(|i| if i % w >= 3 { 1.0 } else { 0.0 }).collect();
        let g = sobel(&f, h, w);
        let center = 2 * w + 2; // on the edge column boundary
        assert!(g.magnitude[center] > 0.0);
        assert!(g.direction[center].abs() < 1e-5, "direction should be ~0 (pure +x)");
    }

    #[test]
    fn horizontal_edge_direction_is_vertical() {
        let (h, w) = (6, 5);
        let f: Vec<f32> = (0..h * w).map(|i| if i / w >= 3 { 1.0 } else { 0.0 }).collect();
        let g = sobel(&f, h, w);
        let center = 2 * w + 2;
        assert!(g.magnitude[center] > 0.0);
        assert!((g.direction[center] - std::f32::consts::FRAC_PI_2).abs() < 1e-5);
    }

    #[test]
    fn magnitude_scales_linearly() {
        let (h, w) = (5, 6);
        let f: Vec<f32> = (0..h * w).map(|i| if i % w >= 3 { 1.0 } else { 0.0 }).collect();
        let f2: Vec<f32> = f.iter().map(|&x| 2.0 * x).collect();
        let g1 = sobel(&f, h, w);
        let g2 = sobel(&f2, h, w);
        for (a, b) in g1.magnitude.iter().zip(&g2.magnitude) {
            assert!((2.0 * a - b).abs() < 1e-5);
        }
    }
}
