//! Evaluation of a trained model on a dataset split: the per-variable
//! metric rows of the paper's Table IV.

use crate::inference::{downscale_with, InferenceError};
use orbit2_climate::{DownscalingDataset, Normalizer};
use orbit2_imaging::tiles::TileSpec;
use orbit2_metrics::regression::EvalReport;
use orbit2_model::{ReslimModel, SessionActivation, SessionPrecision};

/// Metrics for one output variable.
#[derive(Debug, Clone)]
pub struct VariableReport {
    /// Variable name (e.g. `"tmin"`).
    pub name: String,
    /// Whether metrics were computed in `log(x+1)` space (precipitation).
    pub log_space: bool,
    /// The Table IV row.
    pub report: EvalReport,
}

/// Evaluate the model on the given sample indices, producing one report per
/// output variable. Precipitation variables are evaluated in `log(x+1)`
/// space per the paper's convention.
///
/// One tape-free session is prepared up front and reused for every sample,
/// so weight packing is paid once for the whole split.
pub fn evaluate_model(
    model: &ReslimModel,
    normalizer: &Normalizer,
    dataset: &DownscalingDataset,
    indices: &[usize],
    tile_spec: Option<TileSpec>,
    compression: f32,
) -> Result<Vec<VariableReport>, InferenceError> {
    evaluate_model_at(model, normalizer, dataset, indices, tile_spec, compression, SessionPrecision::F32)
}

/// [`evaluate_model`] with the inference session held at a reduced weight
/// precision — the measurement half of the precision quality gate: run once
/// at [`SessionPrecision::F32`] and once at the reduced precision, then
/// assert the per-variable [`EvalReport`] deltas stay within tolerance.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_model_at(
    model: &ReslimModel,
    normalizer: &Normalizer,
    dataset: &DownscalingDataset,
    indices: &[usize],
    tile_spec: Option<TileSpec>,
    compression: f32,
    precision: SessionPrecision,
) -> Result<Vec<VariableReport>, InferenceError> {
    evaluate_model_with(
        model,
        normalizer,
        dataset,
        indices,
        tile_spec,
        compression,
        precision,
        SessionActivation::F32,
    )
}

/// [`evaluate_model_at`] with the activation precision chosen as well — the
/// full (weight × activation) axis of the precision quality gate.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_model_with(
    model: &ReslimModel,
    normalizer: &Normalizer,
    dataset: &DownscalingDataset,
    indices: &[usize],
    tile_spec: Option<TileSpec>,
    compression: f32,
    precision: SessionPrecision,
    activation: SessionActivation,
) -> Result<Vec<VariableReport>, InferenceError> {
    assert!(!indices.is_empty(), "no samples to evaluate");
    let session = model.session_with(precision, activation);
    let vs = dataset.variables();
    let c_out = vs.num_outputs();
    let (fh, fw) = (dataset.fine_grid().h, dataset.fine_grid().w);
    let plane = fh * fw;
    let mut preds: Vec<Vec<f32>> = vec![Vec::with_capacity(indices.len() * plane); c_out];
    let mut truths: Vec<Vec<f32>> = vec![Vec::with_capacity(indices.len() * plane); c_out];
    for &i in indices {
        let s = dataset.sample(i);
        let pred =
            downscale_with(model, &session, normalizer, &s.input, tile_spec, compression)?;
        for c in 0..c_out {
            preds[c].extend_from_slice(&pred.data()[c * plane..(c + 1) * plane]);
            truths[c].extend_from_slice(&s.target.data()[c * plane..(c + 1) * plane]);
        }
    }
    Ok((0..c_out)
        .map(|c| {
            let name = vs.outputs[c].name.clone();
            let log_space = name.contains("prcp") || name.contains("precip");
            let report = orbit2_metrics::evaluate(&preds[c], &truths[c], fh, fw, log_space);
            VariableReport { name, log_space, report }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit2_climate::{LatLonGrid, Split, VariableSet};
    use orbit2_model::{ModelConfig, ReslimModel};

    #[test]
    fn reports_cover_all_output_variables() {
        let ds = DownscalingDataset::new(LatLonGrid::conus(16, 32), VariableSet::daymet_like(), 4, 12, 9);
        let model = ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 3);
        let norm = Normalizer::fit(&ds, 4);
        let test_idx = ds.indices(Split::Test);
        let reports = evaluate_model(&model, &norm, &ds, &test_idx, None, 1.0).unwrap();
        assert_eq!(reports.len(), 3);
        let names: Vec<&str> = reports.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["tmin", "tmax", "prcp"]);
        assert!(reports[2].log_space, "precipitation must use log space");
        assert!(!reports[0].log_space);
        for r in &reports {
            assert!(r.report.rmse.is_finite());
            assert!(r.report.ssim.is_finite());
        }
    }

    #[test]
    fn untrained_model_scores_poorly_but_finite() {
        let ds = DownscalingDataset::new(LatLonGrid::conus(16, 32), VariableSet::daymet_like(), 4, 12, 9);
        let model = ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 4);
        let norm = Normalizer::fit(&ds, 4);
        let reports = evaluate_model(&model, &norm, &ds, &[11], None, 1.0).unwrap();
        // An untrained model should not already achieve the paper's 0.99.
        assert!(reports[0].report.r2 < 0.99);
    }
}
