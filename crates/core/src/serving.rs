//! Wire types of the serving layer: requests, responses, and the typed
//! error vocabulary the `orbit2-serve` protocol speaks.
//!
//! These live in the core crate (not `orbit2-serve`) so that clients —
//! benches, tests, external tools — can build requests and parse responses
//! without depending on the server implementation. The wire format is
//! newline-delimited JSON; [`ServeRequest`] implements a hand-written
//! `Deserialize` so optional fields (`compression`, `variables`, `time`)
//! default instead of erroring, which the derive shim cannot express.

use crate::inference::InferenceError;
use orbit2_tensor::fused::{ActivationPrecision, WeightPrecision};
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Where the input field of a request comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestSource {
    /// A named region of the server's world at a time index; the server
    /// resolves it to a coarse input window. This is the cacheable form.
    Region {
        /// Region name, as configured on the server.
        name: String,
        /// Time (sample) index within the region's series.
        time: usize,
    },
    /// An explicit inline input tensor (escape hatch for ad-hoc fields;
    /// never cached, validated like any other model input).
    Raw {
        /// Tensor shape, expected `[C, h, w]`.
        shape: Vec<usize>,
        /// Row-major tensor data.
        data: Vec<f32>,
    },
}

/// One downscaling request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Client-chosen correlation id, echoed on the response line.
    pub id: u64,
    /// Input selector.
    pub source: RequestSource,
    /// Adaptive-compression target (1.0 = off).
    pub compression: f32,
    /// Output variables to return; `None` returns all model outputs.
    pub variables: Option<Vec<String>>,
    /// Weight precision to serve this request at; `None` defers to the
    /// server's configured default. The *effective* precision is part of
    /// the response-cache identity: a bf16 answer is never returned for an
    /// f32 request.
    pub precision: Option<WeightPrecision>,
    /// Activation precision to stream this request's forward pass at;
    /// `None` defers to the server's configured default. Like the weight
    /// precision, the *effective* activation precision is part of both the
    /// response-cache identity and the batch key — tiles only cobatch with
    /// tiles of the same (weight, activation) cell.
    pub activation: Option<ActivationPrecision>,
    /// Server-side deadline in milliseconds, measured from admission.
    /// `None` defers to the server's `--default-deadline-ms` (which may
    /// itself be unset, meaning no deadline). Expired work is shed at
    /// three checkpoints — admission, dispatch, and stitch — and the
    /// request completes with [`ServeError::DeadlineExceeded`]; the
    /// server never returns a result the client has stopped waiting for.
    pub deadline_ms: Option<u64>,
}

impl ServeRequest {
    /// A region-sourced request with default knobs.
    pub fn region(id: u64, name: impl Into<String>, time: usize) -> Self {
        Self {
            id,
            source: RequestSource::Region { name: name.into(), time },
            compression: 1.0,
            variables: None,
            precision: None,
            activation: None,
            deadline_ms: None,
        }
    }

    /// A raw-tensor request with default knobs.
    pub fn raw(id: u64, shape: Vec<usize>, data: Vec<f32>) -> Self {
        Self {
            id,
            source: RequestSource::Raw { shape, data },
            compression: 1.0,
            variables: None,
            precision: None,
            activation: None,
            deadline_ms: None,
        }
    }

    /// Builder-style explicit precision (overrides the server default).
    pub fn at_precision(mut self, precision: WeightPrecision) -> Self {
        self.precision = Some(precision);
        self
    }

    /// Builder-style explicit activation precision (overrides the server
    /// default).
    pub fn at_activation(mut self, activation: ActivationPrecision) -> Self {
        self.activation = Some(activation);
        self
    }

    /// Builder-style server-side deadline (overrides the server default).
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }
}

impl Serialize for ServeRequest {
    fn serialize_value(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("id".into(), self.id.serialize_value());
        match &self.source {
            RequestSource::Region { name, time } => {
                m.insert("region".into(), name.serialize_value());
                m.insert("time".into(), time.serialize_value());
            }
            RequestSource::Raw { shape, data } => {
                m.insert("shape".into(), shape.serialize_value());
                m.insert("data".into(), data.serialize_value());
            }
        }
        m.insert("compression".into(), self.compression.serialize_value());
        if let Some(vars) = &self.variables {
            m.insert("variables".into(), vars.serialize_value());
        }
        if let Some(p) = self.precision {
            m.insert("precision".into(), p.label().serialize_value());
        }
        if let Some(a) = self.activation {
            m.insert("activation".into(), a.label().serialize_value());
        }
        if let Some(d) = self.deadline_ms {
            m.insert("deadline_ms".into(), d.serialize_value());
        }
        Value::Object(m)
    }
}

impl Deserialize for ServeRequest {
    fn deserialize_value(value: &Value) -> Result<Self, SerdeError> {
        let obj = value.as_object().ok_or_else(|| SerdeError::new("request must be an object"))?;
        let id = match obj.get("id") {
            Some(v) => u64::deserialize_value(v)?,
            None => return Err(SerdeError::new("request is missing `id`")),
        };
        let source = match (obj.get("region"), obj.get("shape"), obj.get("data")) {
            (Some(r), None, None) => RequestSource::Region {
                name: String::deserialize_value(r)?,
                time: match obj.get("time") {
                    Some(t) => usize::deserialize_value(t)?,
                    None => 0,
                },
            },
            (None, Some(s), Some(d)) => RequestSource::Raw {
                shape: Vec::<usize>::deserialize_value(s)?,
                data: Vec::<f32>::deserialize_value(d)?,
            },
            _ => {
                return Err(SerdeError::new(
                    "request needs either `region` or both `shape` and `data`",
                ))
            }
        };
        let compression = match obj.get("compression") {
            Some(c) => f32::deserialize_value(c)?,
            None => 1.0,
        };
        let variables = match obj.get("variables") {
            Some(v) => Some(Vec::<String>::deserialize_value(v)?),
            None => None,
        };
        let precision = match obj.get("precision") {
            Some(p) => {
                let label = String::deserialize_value(p)?;
                Some(WeightPrecision::parse(&label).ok_or_else(|| {
                    SerdeError::new(format!(
                        "unknown precision {label:?} (expected f32, bf16 or int8)"
                    ))
                })?)
            }
            None => None,
        };
        let activation = match obj.get("activation") {
            Some(a) => {
                let label = String::deserialize_value(a)?;
                Some(ActivationPrecision::parse(&label).ok_or_else(|| {
                    SerdeError::new(format!(
                        "unknown activation precision {label:?} (expected f32 or bf16)"
                    ))
                })?)
            }
            None => None,
        };
        let deadline_ms = match obj.get("deadline_ms") {
            Some(d) => Some(u64::deserialize_value(d)?),
            None => None,
        };
        Ok(Self { id, source, compression, variables, precision, activation, deadline_ms })
    }
}

/// A successful downscaling response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeResponse {
    /// Echo of the request id.
    pub id: u64,
    /// Shape of the prediction, `[C_out, H, W]` (selected variables only).
    pub shape: Vec<usize>,
    /// Row-major prediction data in physical units.
    pub data: Vec<f32>,
    /// Whether the response came from the LRU cache.
    pub cached: bool,
    /// Largest cross-request batch any of this request's tile jobs ran in
    /// (1 = never batched with another request).
    pub batch: usize,
    /// Server-side latency in microseconds (admission to completion).
    pub micros: u64,
}

/// Reply to a `{"cmd": "stats"}` control line: response-cache counters,
/// per-precision request counts since server start, and the process-wide
/// buffer-pool telemetry (how often activation buffers were recycled vs
/// freshly allocated).
///
/// Flat named fields rather than a map keep the derive-shim serialization
/// stable and the reply greppable; counters are cumulative and only the
/// entry count can shrink (on eviction). The pool counters are process
/// globals (they also tick during model warmup and cache stitching), so
/// consumers should diff snapshots rather than read absolutes.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ServeStats {
    /// Responses answered from the LRU cache.
    pub cache_hits: u64,
    /// Cacheable responses that had to be computed.
    pub cache_misses: u64,
    /// Entries currently resident in the cache.
    pub cache_entries: u64,
    /// Completed requests served at f32 weights.
    pub requests_f32: u64,
    /// Completed requests served at bf16 weights.
    pub requests_bf16: u64,
    /// Completed requests served at int8 weights.
    pub requests_int8: u64,
    /// Completed requests whose forward pass streamed f32 activations.
    pub requests_act_f32: u64,
    /// Completed requests whose forward pass streamed bf16 activations.
    pub requests_act_bf16: u64,
    /// Buffer-pool fresh heap allocations (pool miss or oversized request).
    pub pool_fresh_allocs: u64,
    /// Buffer-pool buffers recycled from the free list.
    pub pool_reuses: u64,
    /// Copy-on-write copies of still-shared pooled buffers.
    pub pool_copies: u64,
    /// Tile jobs re-executed in isolation after a batched forward panicked,
    /// and which then completed cleanly (quarantine saved them).
    pub retried_jobs: u64,
    /// Tile jobs that panicked again in isolation — the actual culprits;
    /// each one fails exactly its own request with an `internal` error.
    pub quarantined_jobs: u64,
    /// Queued tile jobs shed at dispatch because their request's deadline
    /// had already expired (wasted-work the deadline checkpoints avoided).
    pub shed_jobs: u64,
    /// Requests that terminated with `deadline_exceeded` (at admission,
    /// dispatch, or stitch time).
    pub deadline_expired: u64,
}

impl ServeStats {
    /// Count one completed request at `precision` weights streaming
    /// `activation` activations.
    pub fn record(&mut self, precision: WeightPrecision, activation: ActivationPrecision) {
        match precision {
            WeightPrecision::F32 => self.requests_f32 += 1,
            WeightPrecision::Bf16 => self.requests_bf16 += 1,
            WeightPrecision::Int8 => self.requests_int8 += 1,
        }
        match activation {
            ActivationPrecision::F32 => self.requests_act_f32 += 1,
            ActivationPrecision::Bf16 => self.requests_act_bf16 += 1,
        }
    }

    /// The request counter for `precision`.
    pub fn requests_at(&self, precision: WeightPrecision) -> u64 {
        match precision {
            WeightPrecision::F32 => self.requests_f32,
            WeightPrecision::Bf16 => self.requests_bf16,
            WeightPrecision::Int8 => self.requests_int8,
        }
    }

    /// The request counter for `activation`.
    pub fn requests_at_activation(&self, activation: ActivationPrecision) -> u64 {
        match activation {
            ActivationPrecision::F32 => self.requests_act_f32,
            ActivationPrecision::Bf16 => self.requests_act_bf16,
        }
    }
}

/// Reply to a `{"cmd": "health"}` control line: the coarse liveness
/// signal a load balancer polls to decide whether to route new traffic
/// here. `status` is `"ok"` while admitting and `"draining"` once
/// [`drain`/`shutdown`] has stopped admission; `inflight` and
/// `queue_depth` give the balancer a load signal without a full stats
/// round-trip. FIFO-ordered with pipelined requests, like `stats`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeHealth {
    /// `"ok"` (admitting) or `"draining"` (shedding; route elsewhere).
    pub status: String,
    /// Requests admitted and not yet terminal.
    pub inflight: u64,
    /// Tile jobs queued and not yet dispatched.
    pub queue_depth: u64,
}

impl ServeHealth {
    /// Whether the server is still admitting new requests.
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }
}

/// The error half of a response line: `{"id": .., "error": {..}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireError {
    /// Stable machine-readable error kind (one of [`ServeError::kind`]).
    pub kind: String,
    /// Human-readable description.
    pub message: String,
}

/// Why the server rejected or failed a request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request line was not valid JSON or missed required fields.
    BadRequest {
        /// What was wrong with it.
        reason: String,
    },
    /// The named region is not configured on this server.
    UnknownRegion {
        /// The offending region name.
        region: String,
    },
    /// A requested output variable is not produced by the model.
    UnknownVariable {
        /// The offending variable name.
        variable: String,
    },
    /// The compression target is below 1.0 (meaningless).
    BadCompression {
        /// The offending target.
        got: f32,
    },
    /// The input failed model validation.
    Rejected(InferenceError),
    /// The server's admission queue is at capacity; retry later.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// The request's deadline expired before a result could be returned.
    /// The server sheds expired work at admission, at dispatch (before
    /// any forward runs), and at stitch time.
    DeadlineExceeded {
        /// The effective deadline that expired, in milliseconds.
        deadline_ms: u64,
    },
    /// Execution failed server-side (a panicked forward that also failed
    /// its isolated quarantine retry). Unlike `bad_request`, the client
    /// did nothing wrong; retrying against a healthy replica is sound.
    Internal {
        /// What went wrong, from the panic payload.
        reason: String,
    },
}

impl ServeError {
    /// Stable machine-readable kind string for the wire protocol.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::BadRequest { .. } => "bad_request",
            ServeError::UnknownRegion { .. } => "unknown_region",
            ServeError::UnknownVariable { .. } => "unknown_variable",
            ServeError::BadCompression { .. } => "bad_compression",
            ServeError::Rejected(InferenceError::BadRank { .. }) => "invalid_rank",
            ServeError::Rejected(InferenceError::ChannelMismatch { .. }) => "channel_mismatch",
            ServeError::Rejected(InferenceError::NotPatchAligned { .. }) => "not_patch_aligned",
            ServeError::QueueFull { .. } => "queue_full",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::DeadlineExceeded { .. } => "deadline_exceeded",
            ServeError::Internal { .. } => "internal",
        }
    }

    /// Whether a client should retry this error against the same (or
    /// another) server: load shedding and drains are transient by nature,
    /// and internal failures are server-side, so a retry may land on a
    /// healthy replica or a clean batch. Client-caused errors
    /// (`bad_request`, validation failures, expired deadlines) are not
    /// retryable — the same request will fail the same way.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServeError::QueueFull { .. } | ServeError::ShuttingDown | ServeError::Internal { .. }
        )
    }

    /// Convert to the wire representation.
    pub fn to_wire(&self) -> WireError {
        WireError { kind: self.kind().to_string(), message: self.to_string() }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            ServeError::UnknownRegion { region } => write!(f, "unknown region {region:?}"),
            ServeError::UnknownVariable { variable } => write!(f, "unknown variable {variable:?}"),
            ServeError::BadCompression { got } => {
                write!(f, "compression target must be >= 1.0, got {got}")
            }
            ServeError::Rejected(e) => write!(f, "input rejected: {e}"),
            ServeError::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} requests)")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::DeadlineExceeded { deadline_ms } => {
                write!(f, "deadline of {deadline_ms}ms exceeded")
            }
            ServeError::Internal { reason } => write!(f, "internal server error: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Rejected(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InferenceError> for ServeError {
    fn from(e: InferenceError) -> Self {
        ServeError::Rejected(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_region() {
        let req = ServeRequest::region(7, "conus-west", 3);
        let line = serde_json::to_string(&req).unwrap();
        let back: ServeRequest = serde_json::from_str(&line).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn request_roundtrip_raw_with_knobs() {
        let mut req = ServeRequest::raw(1, vec![1, 2, 2], vec![0.0, 1.0, 2.0, 3.0]);
        req.compression = 2.0;
        req.variables = Some(vec!["tmin".into()]);
        let line = serde_json::to_string(&req).unwrap();
        let back: ServeRequest = serde_json::from_str(&line).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn request_defaults_apply() {
        let back: ServeRequest =
            serde_json::from_str(r#"{"id": 4, "region": "conus"}"#).unwrap();
        assert_eq!(back, ServeRequest::region(4, "conus", 0));
    }

    #[test]
    fn request_without_source_is_an_error() {
        assert!(serde_json::from_str::<ServeRequest>(r#"{"id": 1}"#).is_err());
        assert!(serde_json::from_str::<ServeRequest>(r#"{"region": "x"}"#).is_err());
        // `shape` without `data` is also incomplete.
        assert!(serde_json::from_str::<ServeRequest>(r#"{"id": 1, "shape": [1]}"#).is_err());
    }

    #[test]
    fn request_precision_roundtrips_and_defaults() {
        let req = ServeRequest::region(2, "conus", 1).at_precision(WeightPrecision::Bf16);
        let line = serde_json::to_string(&req).unwrap();
        assert!(line.contains(r#""precision":"bf16""#), "{line}");
        let back: ServeRequest = serde_json::from_str(&line).unwrap();
        assert_eq!(back, req);
        // Absent field means "server default" and is not emitted on the
        // wire (pre-precision clients and servers interoperate unchanged).
        let default_req = ServeRequest::region(2, "conus", 1);
        assert!(!serde_json::to_string(&default_req).unwrap().contains("precision"));
        let old: ServeRequest = serde_json::from_str(r#"{"id": 2, "region": "conus"}"#).unwrap();
        assert_eq!(old.precision, None);
        // An explicit f32 *is* emitted (it must override a reduced default).
        let f32_req = ServeRequest::region(2, "conus", 1).at_precision(WeightPrecision::F32);
        assert!(serde_json::to_string(&f32_req).unwrap().contains(r#""precision":"f32""#));
        // "i8" is an accepted alias; garbage is a hard error.
        let alias: ServeRequest =
            serde_json::from_str(r#"{"id": 1, "region": "x", "precision": "i8"}"#).unwrap();
        assert_eq!(alias.precision, Some(WeightPrecision::Int8));
        assert!(serde_json::from_str::<ServeRequest>(
            r#"{"id": 1, "region": "x", "precision": "fp64"}"#
        )
        .is_err());
    }

    #[test]
    fn stats_roundtrip_and_counters() {
        let mut stats = ServeStats::default();
        stats.record(WeightPrecision::Bf16, ActivationPrecision::Bf16);
        stats.record(WeightPrecision::Bf16, ActivationPrecision::F32);
        stats.record(WeightPrecision::Int8, ActivationPrecision::F32);
        stats.cache_hits = 5;
        stats.cache_entries = 2;
        stats.pool_reuses = 7;
        stats.retried_jobs = 3;
        stats.quarantined_jobs = 1;
        stats.shed_jobs = 4;
        stats.deadline_expired = 2;
        assert_eq!(stats.requests_at(WeightPrecision::Bf16), 2);
        assert_eq!(stats.requests_at(WeightPrecision::F32), 0);
        assert_eq!(stats.requests_at_activation(ActivationPrecision::Bf16), 1);
        assert_eq!(stats.requests_at_activation(ActivationPrecision::F32), 2);
        let line = serde_json::to_string(&stats).unwrap();
        assert!(line.contains("pool_reuses"), "{line}");
        assert!(line.contains("quarantined_jobs"), "{line}");
        assert!(line.contains("deadline_expired"), "{line}");
        let back: ServeStats = serde_json::from_str(&line).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn request_activation_roundtrips_and_defaults() {
        let req = ServeRequest::region(3, "conus", 1).at_activation(ActivationPrecision::Bf16);
        let line = serde_json::to_string(&req).unwrap();
        assert!(line.contains(r#""activation":"bf16""#), "{line}");
        let back: ServeRequest = serde_json::from_str(&line).unwrap();
        assert_eq!(back, req);
        // Absent field means "server default" and is not emitted on the
        // wire (pre-activation clients and servers interoperate unchanged).
        let default_req = ServeRequest::region(3, "conus", 1);
        assert!(!serde_json::to_string(&default_req).unwrap().contains("activation"));
        let old: ServeRequest = serde_json::from_str(r#"{"id": 3, "region": "conus"}"#).unwrap();
        assert_eq!(old.activation, None);
        // An explicit f32 *is* emitted (it must override a reduced default);
        // garbage is a hard error.
        let f32_req = ServeRequest::region(3, "conus", 1).at_activation(ActivationPrecision::F32);
        assert!(serde_json::to_string(&f32_req).unwrap().contains(r#""activation":"f32""#));
        assert!(serde_json::from_str::<ServeRequest>(
            r#"{"id": 1, "region": "x", "activation": "int8"}"#
        )
        .is_err());
    }

    #[test]
    fn response_roundtrip() {
        let resp = ServeResponse {
            id: 9,
            shape: vec![1, 2, 2],
            data: vec![1.0, 2.0, 3.0, 4.0],
            cached: true,
            batch: 4,
            micros: 1234,
        };
        let line = serde_json::to_string(&resp).unwrap();
        let back: ServeResponse = serde_json::from_str(&line).unwrap();
        assert_eq!(back, resp);
    }

    /// Whose fault each error is. Client-caused and server-caused failures
    /// must never share a wire kind: a client retry loop keys off the kind
    /// to decide whether resending the same request can ever succeed.
    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Blame {
        /// The request itself is wrong; resending it is futile.
        Client,
        /// The server (or its load) failed; the request was fine.
        Server,
    }

    /// One row per `ServeError` variant: the wire kind is a stable
    /// protocol commitment, and the blame column pins the audit that
    /// server-side faults (panics, drains, shedding) are never
    /// misclassified as client errors.
    #[test]
    fn every_error_variant_has_a_stable_attributed_wire_kind() {
        use Blame::{Client, Server};
        let table: Vec<(ServeError, &str, Blame, bool)> = vec![
            // (variant, wire kind, blame, retryable)
            (ServeError::BadRequest { reason: "x".into() }, "bad_request", Client, false),
            (ServeError::UnknownRegion { region: "x".into() }, "unknown_region", Client, false),
            (
                ServeError::UnknownVariable { variable: "x".into() },
                "unknown_variable",
                Client,
                false,
            ),
            (ServeError::BadCompression { got: 0.5 }, "bad_compression", Client, false),
            (
                ServeError::Rejected(InferenceError::BadRank { ndim: 2 }),
                "invalid_rank",
                Client,
                false,
            ),
            (
                ServeError::Rejected(InferenceError::ChannelMismatch { got: 1, expected: 2 }),
                "channel_mismatch",
                Client,
                false,
            ),
            (
                ServeError::Rejected(InferenceError::NotPatchAligned { h: 3, w: 3, patch: 2 }),
                "not_patch_aligned",
                Client,
                false,
            ),
            (ServeError::QueueFull { capacity: 8 }, "queue_full", Server, true),
            (ServeError::ShuttingDown, "shutting_down", Server, true),
            // The client *chose* the deadline; a resend of the same
            // request would expire the same way under the same load.
            (
                ServeError::DeadlineExceeded { deadline_ms: 25 },
                "deadline_exceeded",
                Client,
                false,
            ),
            (ServeError::Internal { reason: "boom".into() }, "internal", Server, true),
        ];
        let kinds: std::collections::BTreeSet<&str> =
            table.iter().map(|(e, _, _, _)| e.kind()).collect();
        assert_eq!(kinds.len(), table.len(), "kinds must be unique");
        for (err, kind, blame, retryable) in &table {
            assert_eq!(err.kind(), *kind, "wire kind drifted for {err:?}");
            assert_eq!(err.to_wire().kind, *kind);
            assert!(!err.to_string().is_empty());
            assert_eq!(
                err.is_retryable(),
                *retryable,
                "retryability drifted for {err:?}"
            );
            // Server-caused failures must never reuse a client-blame kind.
            let client_kinds = ["bad_request", "unknown_region", "unknown_variable",
                "bad_compression", "invalid_rank", "channel_mismatch", "not_patch_aligned",
                "deadline_exceeded"];
            match blame {
                Blame::Client => assert!(client_kinds.contains(kind)),
                Blame::Server => assert!(
                    !client_kinds.contains(kind),
                    "server-caused {err:?} leaked a client-blame kind"
                ),
            }
        }
        // Exhaustiveness: a new variant must be added to the table above.
        for (err, _, _, _) in &table {
            match err {
                ServeError::BadRequest { .. }
                | ServeError::UnknownRegion { .. }
                | ServeError::UnknownVariable { .. }
                | ServeError::BadCompression { .. }
                | ServeError::Rejected(_)
                | ServeError::QueueFull { .. }
                | ServeError::ShuttingDown
                | ServeError::DeadlineExceeded { .. }
                | ServeError::Internal { .. } => {}
            }
        }
        let wire = table[4].0.to_wire();
        assert_eq!(wire.kind, "invalid_rank");
        assert!(wire.message.contains("rank-2"));
        let internal = ServeError::Internal { reason: "index out of bounds".into() }.to_wire();
        assert!(internal.message.contains("index out of bounds"));
    }

    #[test]
    fn request_deadline_roundtrips_and_defaults() {
        let req = ServeRequest::region(5, "conus", 2).with_deadline_ms(250);
        let line = serde_json::to_string(&req).unwrap();
        assert!(line.contains(r#""deadline_ms":250"#), "{line}");
        let back: ServeRequest = serde_json::from_str(&line).unwrap();
        assert_eq!(back, req);
        // Absent field means "server default" and is not emitted on the
        // wire (pre-deadline clients and servers interoperate unchanged).
        let default_req = ServeRequest::region(5, "conus", 2);
        assert!(!serde_json::to_string(&default_req).unwrap().contains("deadline"));
        let old: ServeRequest = serde_json::from_str(r#"{"id": 5, "region": "conus"}"#).unwrap();
        assert_eq!(old.deadline_ms, None);
    }

    #[test]
    fn health_roundtrip() {
        let health =
            ServeHealth { status: "draining".into(), inflight: 3, queue_depth: 7 };
        assert!(!health.is_ok());
        let line = serde_json::to_string(&health).unwrap();
        assert!(line.contains(r#""status":"draining""#), "{line}");
        let back: ServeHealth = serde_json::from_str(&line).unwrap();
        assert_eq!(back, health);
        assert!(ServeHealth { status: "ok".into(), inflight: 0, queue_depth: 0 }.is_ok());
    }
}
