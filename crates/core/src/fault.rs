//! Deterministic fault injection for chaos-testing the TILES × DDP trainer
//! and the `orbit2-serve` serving path.
//!
//! ORBIT-2 trains across thousands of Frontier GPUs, where node failure is
//! routine (the paper and its predecessor ORBIT lean on checkpoint/restart
//! to survive multi-day runs). This module provides the reproducible half
//! of that story: a [`FaultPlan`] is a seeded, deterministic schedule of
//! `(step, job) → fault` events the trainer consults before running each
//! (replica, tile) job, so a chaos test that kills rank 3 on step 7 kills
//! rank 3 on step 7 *every* run.
//!
//! Faults come in three kinds, mirroring the failure modes the paper's
//! infrastructure has to absorb:
//!
//! * [`FaultKind::Panic`] — the job's thread dies mid-step (a crashed rank);
//! * [`FaultKind::NaNGradient`] — the job completes but its gradients are
//!   poisoned (silent data corruption / numerical blow-up on one rank);
//! * [`FaultKind::Straggler`] — the job completes, late (a slow node; the
//!   all-reduce must wait, but nothing is lost).
//!
//! Recovery semantics live in `trainer::step_batch`; every observed fault
//! is logged as a [`FaultEvent`] and surfaced through `TrainReport`.
//!
//! ## The `ORBIT2_FAULT_PLAN` convention
//!
//! Setting the `ORBIT2_FAULT_PLAN` environment variable arms background
//! fault injection for any training run without code changes. The value is
//! a comma-separated key=value list:
//!
//! ```text
//! ORBIT2_FAULT_PLAN="seed=42,panic=0.02,nan=0.02,straggle=0.05,straggle_ms=10,persistent=0"
//! ```
//!
//! `seed` makes the schedule deterministic: whether job `j` of step `s`
//! faults is a pure function of `(seed, s, j)`, independent of thread
//! timing and of which other faults fired.
//!
//! ## Serving (`ORBIT2_SERVE_FAULT_PLAN`)
//!
//! The same plan chaos-tests `orbit2-serve`: the coordinates become
//! `(batch, job)` — the dispatch ordinal of an executed microbatch and a
//! tile job's position within it — and the schedule is armed through the
//! separate `ORBIT2_SERVE_FAULT_PLAN` variable (same value format) so a
//! process can chaos the trainer and the server independently.
//! `FaultKind::NaNGradient` has no serving meaning (no gradients flow)
//! and is ignored there; `panic` exercises the panic-quarantine path and
//! `straggle` the deadline checkpoints. As in training, `persistent=1`
//! means a faulty job fails its isolated retry too (the request gets a
//! typed `internal` error) while the transient default lets the
//! quarantine retry recover every injected panic.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// The kind of fault injected into (or observed on) a tile job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The job's thread panics mid-step (a crashed rank).
    Panic,
    /// The job completes but its gradients are NaN-poisoned.
    NaNGradient,
    /// The job stalls for this many milliseconds before completing intact.
    Straggler(u64),
}

/// What the recovery layer did about a job the fault plan (or real
/// numerics) interfered with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The job failed once and its retry succeeded; its gradient made the
    /// all-reduce after all.
    Retried,
    /// The job failed and so did its retry; it was dropped from the
    /// all-reduce and the average renormalized over the survivors.
    Dropped,
    /// The job completed on its own (stragglers: late but intact).
    Completed,
}

/// One entry of the per-run fault log surfaced in `TrainReport`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Micro-batch step on which the fault occurred.
    pub step: usize,
    /// Flat job index within the step (replica-major, then tile order).
    pub job: usize,
    /// What kind of fault it was.
    pub kind: FaultKind,
    /// How recovery resolved it.
    pub action: FaultAction,
    /// `true` when the fault came from the [`FaultPlan`]; `false` when the
    /// job failed on its own (genuine panic or non-finite gradients).
    pub injected: bool,
}

/// Seeded per-(step, job) fault probabilities for the random mode.
#[derive(Debug, Clone, Copy)]
struct RandomFaults {
    seed: u64,
    p_panic: f64,
    p_nan: f64,
    p_straggle: f64,
    straggle_ms: u64,
}

/// A deterministic schedule of injected faults.
///
/// Two layers compose: explicit `(step, job) → kind` events (exact chaos
/// scripts for tests) and an optional seeded random layer that draws a
/// fault for every `(step, job)` pair as a pure function of the seed. The
/// lookup is stateless, so concurrent jobs can consult the plan in any
/// order without perturbing each other's draws.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    explicit: BTreeMap<(usize, usize), FaultKind>,
    random: Option<RandomFaults>,
    persistent: bool,
}

impl FaultPlan {
    /// The empty plan: no faults, zero overhead.
    pub fn none() -> Self {
        Self::default()
    }

    /// Add one explicit fault event at `(step, job)`.
    pub fn with_event(mut self, step: usize, job: usize, kind: FaultKind) -> Self {
        self.explicit.insert((step, job), kind);
        self
    }

    /// Arm the seeded random layer: each `(step, job)` pair independently
    /// draws panic / NaN / straggler faults with the given probabilities
    /// (straggler delays default to 5 ms; see [`FaultPlan::with_straggle_ms`]).
    pub fn seeded(seed: u64, p_panic: f64, p_nan: f64, p_straggle: f64) -> Self {
        Self {
            explicit: BTreeMap::new(),
            random: Some(RandomFaults { seed, p_panic, p_nan, p_straggle, straggle_ms: 5 }),
            persistent: false,
        }
    }

    /// Override the straggler stall duration for the random layer.
    pub fn with_straggle_ms(mut self, ms: u64) -> Self {
        if let Some(r) = &mut self.random {
            r.straggle_ms = ms;
        }
        self
    }

    /// Mark faults as persistent: a faulty job fails its retry too (a dead
    /// rank rather than a transient glitch), so it is dropped from the
    /// all-reduce instead of recovered. Default is transient (retry clean).
    pub fn with_persistent(mut self) -> Self {
        self.persistent = true;
        self
    }

    /// Whether retries re-apply the plan (see [`FaultPlan::with_persistent`]).
    pub fn is_persistent(&self) -> bool {
        self.persistent
    }

    /// True when the plan can never produce a fault.
    pub fn is_empty(&self) -> bool {
        self.explicit.is_empty() && self.random.is_none()
    }

    /// The fault scheduled for `(step, job)`, if any. Pure and
    /// deterministic: the same plan always returns the same answer.
    pub fn lookup(&self, step: usize, job: usize) -> Option<FaultKind> {
        if let Some(kind) = self.explicit.get(&(step, job)) {
            return Some(*kind);
        }
        let r = self.random?;
        // One independent, order-free draw per (step, job): fold the
        // coordinates into the seed with distinct odd multipliers.
        let key = r
            .seed
            .wrapping_add((step as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((job as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
        let mut rng = ChaCha8Rng::seed_from_u64(key);
        let x: f64 = rng.gen_range(0.0..1.0);
        if x < r.p_panic {
            Some(FaultKind::Panic)
        } else if x < r.p_panic + r.p_nan {
            Some(FaultKind::NaNGradient)
        } else if x < r.p_panic + r.p_nan + r.p_straggle {
            Some(FaultKind::Straggler(1 + rng.gen_range(0..r.straggle_ms.max(1))))
        } else {
            None
        }
    }

    /// Parse the `ORBIT2_FAULT_PLAN` value format (see the module docs).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut seed = 0u64;
        let (mut p_panic, mut p_nan, mut p_straggle) = (0.0f64, 0.0f64, 0.0f64);
        let mut straggle_ms = 5u64;
        let mut persistent = false;
        for field in spec.split(',').map(str::trim).filter(|f| !f.is_empty()) {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("fault plan field `{field}` is not key=value"))?;
            let bad = |e| format!("fault plan `{key}` has invalid value `{value}`: {e}");
            match key.trim() {
                "seed" => seed = value.trim().parse().map_err(|e| bad(format!("{e}")))?,
                "panic" => p_panic = value.trim().parse().map_err(|e| bad(format!("{e}")))?,
                "nan" => p_nan = value.trim().parse().map_err(|e| bad(format!("{e}")))?,
                "straggle" => p_straggle = value.trim().parse().map_err(|e| bad(format!("{e}")))?,
                "straggle_ms" => straggle_ms = value.trim().parse().map_err(|e| bad(format!("{e}")))?,
                "persistent" => {
                    persistent = matches!(value.trim(), "1" | "true" | "yes");
                }
                other => return Err(format!("unknown fault plan key `{other}`")),
            }
        }
        for (name, p) in [("panic", p_panic), ("nan", p_nan), ("straggle", p_straggle)] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("fault plan `{name}` probability {p} outside [0, 1]"));
            }
        }
        let mut plan = Self::seeded(seed, p_panic, p_nan, p_straggle).with_straggle_ms(straggle_ms);
        if persistent {
            plan = plan.with_persistent();
        }
        Ok(plan)
    }

    /// Build a plan from the `ORBIT2_FAULT_PLAN` environment variable.
    /// Returns `None` when unset or empty; an invalid value is reported on
    /// stderr and ignored (training must not die to a typo in a chaos knob).
    pub fn from_env() -> Option<Self> {
        Self::from_env_named("ORBIT2_FAULT_PLAN")
    }

    /// Build a plan from the `ORBIT2_SERVE_FAULT_PLAN` environment
    /// variable — the serving-side arming knob, kept separate from the
    /// trainer's so one process can chaos either layer alone.
    pub fn from_serve_env() -> Option<Self> {
        Self::from_env_named("ORBIT2_SERVE_FAULT_PLAN")
    }

    /// Build a plan from an arbitrarily-named environment variable holding
    /// the `ORBIT2_FAULT_PLAN` value format. Returns `None` when unset or
    /// empty; an invalid value is reported on stderr and ignored (neither
    /// training nor serving must die to a typo in a chaos knob).
    pub fn from_env_named(var: &str) -> Option<Self> {
        let spec = std::env::var(var).ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        match Self::parse(&spec) {
            Ok(plan) => Some(plan),
            Err(e) => {
                eprintln!("ignoring invalid {var}: {e}");
                None
            }
        }
    }
}

/// Why an optimizer step was skipped (no parameter update happened).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// Every job of the micro-batch failed (even after retries), so there
    /// was nothing to all-reduce.
    AllJobsFailed,
    /// The dynamic gradient scaler found non-finite gradients after
    /// unscaling and backed off (BF16 mode).
    ScalerOverflow,
    /// The averaged gradient went non-finite outside the scaler path.
    NonFiniteAverage,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_events_fire_exactly_where_scheduled() {
        let plan = FaultPlan::none()
            .with_event(3, 1, FaultKind::Panic)
            .with_event(5, 0, FaultKind::NaNGradient);
        assert_eq!(plan.lookup(3, 1), Some(FaultKind::Panic));
        assert_eq!(plan.lookup(5, 0), Some(FaultKind::NaNGradient));
        assert_eq!(plan.lookup(3, 0), None);
        assert_eq!(plan.lookup(4, 1), None);
        assert!(!plan.is_empty());
    }

    #[test]
    fn seeded_lookup_is_deterministic_and_order_free() {
        let plan = FaultPlan::seeded(42, 0.1, 0.1, 0.1);
        // Same (step, job) → same answer, regardless of query order.
        let forward: Vec<_> = (0..50).flat_map(|s| (0..4).map(move |j| (s, j))).collect();
        let a: Vec<_> = forward.iter().map(|&(s, j)| plan.lookup(s, j)).collect();
        let b: Vec<_> = forward.iter().rev().map(|&(s, j)| plan.lookup(s, j)).collect();
        let b_reversed: Vec<_> = b.into_iter().rev().collect();
        assert_eq!(a, b_reversed);
        // With 30% total fault probability, 200 draws should hit some of
        // every kind (deterministic given the seed — this is a regression
        // lock, not a statistical test).
        assert!(a.iter().any(|f| matches!(f, Some(FaultKind::Panic))));
        assert!(a.iter().any(|f| matches!(f, Some(FaultKind::NaNGradient))));
        assert!(a.iter().any(|f| matches!(f, Some(FaultKind::Straggler(_)))));
        assert!(a.iter().any(Option::is_none));
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::seeded(1, 0.2, 0.2, 0.2);
        let b = FaultPlan::seeded(2, 0.2, 0.2, 0.2);
        let same = (0..100)
            .filter(|&s| a.lookup(s, 0) == b.lookup(s, 0))
            .count();
        assert!(same < 100, "seeds 1 and 2 produced identical schedules");
    }

    #[test]
    fn parse_round_trips_the_documented_convention() {
        let plan =
            FaultPlan::parse("seed=7, panic=0.5, nan=0.25, straggle=0.25, straggle_ms=3, persistent=1")
                .unwrap();
        assert!(plan.is_persistent());
        assert!(!plan.is_empty());
        // With total probability 1.0 every (step, job) faults.
        for s in 0..20 {
            assert!(plan.lookup(s, 0).is_some(), "step {s} drew no fault at p=1");
        }
        if let Some(FaultKind::Straggler(ms)) = (0..200).find_map(|s| {
            plan.lookup(s, 1)
                .filter(|k| matches!(k, FaultKind::Straggler(_)))
        }) {
            assert!((1..=3).contains(&ms));
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("panic=lots").is_err());
        assert!(FaultPlan::parse("panic=1.5").is_err());
        assert!(FaultPlan::parse("frobnicate=1").is_err());
    }

    #[test]
    fn empty_plan_never_faults() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        for s in 0..100 {
            assert_eq!(plan.lookup(s, s % 7), None);
        }
    }
}
