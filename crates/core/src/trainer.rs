//! The TILES-parallel trainer.
//!
//! One training step: the sample is split into halo-padded tiles; each tile
//! runs its forward/backward on its own thread with its own gradient tape
//! (the thread stands in for the tile's GPU); the per-tile gradient maps are
//! averaged — the paper's once-per-batch all-reduce — unscaled by the
//! dynamic gradient scaler, and applied by Adam with a cosine schedule.
//! Mixed precision is emulated by rounding parameters (and the averaged
//! gradients) to BF16 before use, with fp32 master weights inside Adam.

use crate::tiling::split_sample;
use orbit2_autograd::optim::cosine_schedule;
use orbit2_autograd::params::{average_grad_maps, GradMap};
use orbit2_autograd::{Adam, GradScaler, Optimizer, ParamStore, Tape};
use orbit2_climate::{DownscalingDataset, Normalizer, Split};
use orbit2_imaging::tiles::TileSpec;
use orbit2_model::binder::Binder;
use orbit2_model::loss::{bayesian_loss, BayesianLossCfg};
use orbit2_model::ReslimModel;
use orbit2_tensor::Tensor;
use rayon::prelude::*;

/// Training-run configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrainerConfig {
    /// Optimizer steps to run.
    pub steps: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// Linear warmup steps.
    pub warmup: u64,
    /// TILES tiling of each sample (`None` = single tile, no halo).
    pub tile_spec: Option<TileSpec>,
    /// Adaptive-compression target ratio (1.0 disables).
    pub compression: f32,
    /// Emulate BF16 mixed precision with dynamic gradient scaling.
    pub bf16: bool,
    /// Bayesian loss configuration.
    pub loss: BayesianLossCfg,
    /// Record the loss every `log_every` steps.
    pub log_every: usize,
    /// Data-parallel replicas per step: that many consecutive samples are
    /// processed concurrently (threads = simulated DDP ranks) and their
    /// gradients join the same once-per-batch average as the tiles.
    pub ddp_replicas: usize,
    /// Micro-batches accumulated before each optimizer step.
    pub grad_accumulation: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            steps: 200,
            lr: 2e-3,
            warmup: 20,
            tile_spec: None,
            compression: 1.0,
            bf16: false,
            loss: BayesianLossCfg::default(),
            log_every: 10,
            ddp_replicas: 1,
            grad_accumulation: 1,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// `(step, loss)` samples every `log_every` steps.
    pub losses: Vec<(usize, f32)>,
    /// Loss at the final step.
    pub final_loss: f32,
    /// Steps skipped by the gradient scaler (non-finite gradients).
    pub skipped_steps: u64,
}

/// A model plus its training state.
pub struct Trainer {
    /// The model being trained.
    pub model: ReslimModel,
    /// Channel normalizer fitted on the training split.
    pub normalizer: Normalizer,
    opt: Adam,
    scaler: GradScaler,
    cfg: TrainerConfig,
    /// Accumulated micro-batch gradients awaiting an optimizer step.
    pending: Vec<orbit2_autograd::params::GradMap>,
}

impl Trainer {
    /// Create a trainer, fitting the normalizer on the training split.
    pub fn new(model: ReslimModel, dataset: &DownscalingDataset, cfg: TrainerConfig) -> Self {
        let normalizer = Normalizer::fit(dataset, 8);
        let opt = Adam::new(cfg.lr).with_weight_decay(1e-5);
        // A short growth interval exercises the scaler during small runs.
        let scaler = GradScaler::new(1024.0).with_growth_interval(200);
        Self { model, normalizer, opt, scaler, cfg, pending: Vec::new() }
    }

    /// Access the trainer configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// Run the configured number of steps over the dataset's training split.
    pub fn train(&mut self, dataset: &DownscalingDataset) -> TrainReport {
        let train_idx = dataset.indices(Split::Train);
        assert!(!train_idx.is_empty(), "empty training split");
        let lat_field = Tensor::from_vec(
            vec![dataset.fine_grid().h, dataset.fine_grid().w],
            dataset.fine_grid().latitude_weight_field(),
        );
        let mut losses = Vec::new();
        let mut final_loss = f32::NAN;
        let replicas = self.cfg.ddp_replicas.max(1);
        let mut cursor = 0usize;
        for step in 0..self.cfg.steps {
            // DDP: each replica takes the next sample in time order.
            let batch: Vec<_> = (0..replicas)
                .map(|r| {
                    let s = dataset.sample(train_idx[(cursor + r) % train_idx.len()]);
                    (s.input, s.target)
                })
                .collect();
            cursor += replicas;
            let lr = cosine_schedule(step as u64, self.cfg.warmup, self.cfg.steps as u64, self.cfg.lr, self.cfg.lr * 0.05);
            self.opt.set_learning_rate(lr);
            let pairs: Vec<(&Tensor, &Tensor)> = batch.iter().map(|(i, t)| (i, t)).collect();
            if let Some(loss) = self.step_batch(&pairs, &lat_field, dataset.factor) {
                final_loss = loss;
                if step % self.cfg.log_every == 0 || step + 1 == self.cfg.steps {
                    losses.push((step, loss));
                }
            }
        }
        TrainReport { losses, final_loss, skipped_steps: self.scaler.skipped_steps }
    }

    /// One optimizer step on a single (input, target) pair. Returns the
    /// (unscaled) loss, or `None` when the scaler skipped the step.
    pub fn step(&mut self, input: &Tensor, target: &Tensor, lat_field: &Tensor, factor: usize) -> Option<f32> {
        self.step_batch(&[(input, target)], lat_field, factor)
    }

    /// One micro-batch: every (replica, tile) pair runs forward/backward on
    /// its own thread (its own simulated GPU), and all gradients join a
    /// single average — the combined DDP x TILES all-reduce. The optimizer
    /// applies once every `grad_accumulation` micro-batches.
    pub fn step_batch(&mut self, samples: &[(&Tensor, &Tensor)], lat_field: &Tensor, factor: usize) -> Option<f32> {
        assert!(!samples.is_empty(), "empty batch");
        // Emulated BF16: the forward/backward sees rounded parameters; Adam
        // keeps fp32 masters in `self.model.params`.
        let step_params: ParamStore = if self.cfg.bf16 {
            let mut p = self.model.params.clone();
            for (_, t) in p.iter_mut() {
                *t = t.to_bf16();
            }
            p
        } else {
            self.model.params.clone()
        };

        let spec = self
            .cfg
            .tile_spec
            .unwrap_or(TileSpec { tiles_y: 1, tiles_x: 1, halo: 0 });
        // Flatten (replica, tile) into one job list.
        let jobs: Vec<crate::tiling::SampleTile> = samples
            .iter()
            .flat_map(|(input, target)| {
                let norm_in = self.normalizer.normalize_input(input);
                let norm_tgt = self.normalizer.normalize_target(target);
                split_sample(&norm_in, Some(&norm_tgt), spec, factor)
            })
            .collect();
        let loss_scale = if self.cfg.bf16 { self.scaler.scale() } else { 1.0 };
        let model = &self.model;
        let loss_cfg = self.cfg.loss;
        let compression = self.cfg.compression;
        let bf16 = self.cfg.bf16;

        // Each job = one simulated GPU: private tape, parallel execution.
        let results: Vec<(f32, GradMap)> = jobs
            .par_iter()
            .map(|tile| {
                let tape = Tape::new();
                let binder = Binder::new(&tape, &step_params);
                let (pred, _) = model.forward(&binder, &tile.input, compression);
                let target_tile = tile.target.as_ref().expect("training tile needs target");
                let weights = crop_weights(lat_field, tile, factor);
                let loss = bayesian_loss(pred, target_tile, &weights, loss_cfg);
                let scaled = loss.scale(loss_scale);
                let grads = tape.backward(scaled);
                let mut gm = binder.grad_map(&grads);
                if bf16 {
                    for g in gm.values_mut() {
                        *g = g.to_bf16();
                    }
                }
                (loss.value().item(), gm)
            })
            .collect();

        let mean_loss = results.iter().map(|(l, _)| *l).sum::<f32>() / results.len() as f32;
        let maps: Vec<GradMap> = results.into_iter().map(|(_, g)| g).collect();
        // The DDP x TILES gradient all-reduce: one average per micro-batch.
        let avg = average_grad_maps(&maps);
        self.pending.push(avg);
        if self.pending.len() < self.cfg.grad_accumulation.max(1) {
            return Some(mean_loss);
        }
        let mut total = average_grad_maps(&self.pending);
        self.pending.clear();
        if self.cfg.bf16 {
            if !self.scaler.unscale_and_check(&mut total) {
                return None;
            }
        } else if total.values().any(|g| !g.all_finite()) {
            return None;
        }
        self.opt.step(&mut self.model.params, &total);
        Some(mean_loss)
    }
}

/// Latitude weights for a (padded) target tile: clamped crop of the full
/// fine-grid weight field at the tile's scaled geometry.
fn crop_weights(lat_field: &Tensor, tile: &crate::tiling::SampleTile, factor: usize) -> Tensor {
    let (fh, fw) = (lat_field.shape()[0], lat_field.shape()[1]);
    let g = tile.geom.scaled(factor);
    let (ph, pw) = (g.padded_h(), g.padded_w());
    let mut out = orbit2_tensor::pool::alloc_uninit(ph * pw);
    for y in 0..ph {
        let gy = (g.core_y0 as i64 + y as i64 - g.halo as i64).clamp(0, fh as i64 - 1) as usize;
        for x in 0..pw {
            let gx = (g.core_x0 as i64 + x as i64 - g.halo as i64).clamp(0, fw as i64 - 1) as usize;
            out[y * pw + x] = lat_field.data()[gy * fw + gx];
        }
    }
    Tensor::from_vec(vec![ph, pw], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit2_climate::{LatLonGrid, VariableSet};
    use orbit2_model::ModelConfig;

    fn dataset() -> DownscalingDataset {
        DownscalingDataset::new(LatLonGrid::conus(16, 32), VariableSet::daymet_like(), 4, 24, 5)
    }

    fn tiny_model() -> ReslimModel {
        ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 1)
    }

    fn quick_cfg() -> TrainerConfig {
        TrainerConfig { steps: 12, lr: 1e-3, warmup: 2, log_every: 4, ..Default::default() }
    }

    #[test]
    fn loss_decreases_over_training() {
        let ds = dataset();
        let mut t = Trainer::new(tiny_model(), &ds, TrainerConfig { steps: 30, ..quick_cfg() });
        let report = t.train(&ds);
        let first = report.losses.first().unwrap().1;
        assert!(
            report.final_loss < first * 0.9,
            "loss should drop: {first} -> {}",
            report.final_loss
        );
        assert!(report.final_loss.is_finite());
    }

    #[test]
    fn tiled_training_matches_untiled_loss_trend() {
        let ds = dataset();
        let spec = TileSpec { tiles_y: 2, tiles_x: 2, halo: 1 };
        let mut t = Trainer::new(
            tiny_model(),
            &ds,
            TrainerConfig { tile_spec: Some(spec), steps: 20, ..quick_cfg() },
        );
        let report = t.train(&ds);
        assert!(report.final_loss.is_finite());
        let first = report.losses.first().unwrap().1;
        assert!(report.final_loss < first, "tiled training must also learn");
    }

    #[test]
    fn bf16_training_learns_with_scaler() {
        let ds = dataset();
        let mut t = Trainer::new(
            tiny_model(),
            &ds,
            TrainerConfig { bf16: true, steps: 20, ..quick_cfg() },
        );
        let report = t.train(&ds);
        assert!(report.final_loss.is_finite());
        let first = report.losses.first().unwrap().1;
        assert!(report.final_loss < first, "bf16 training must learn: {first} -> {}", report.final_loss);
    }

    #[test]
    fn compression_training_runs() {
        let ds = dataset();
        let mut t = Trainer::new(
            tiny_model(),
            &ds,
            TrainerConfig { compression: 2.0, steps: 8, ..quick_cfg() },
        );
        let report = t.train(&ds);
        assert!(report.final_loss.is_finite());
    }

    #[test]
    fn ddp_replicas_training_learns() {
        let ds = dataset();
        let mut t = Trainer::new(
            tiny_model(),
            &ds,
            TrainerConfig { ddp_replicas: 2, steps: 15, ..quick_cfg() },
        );
        let report = t.train(&ds);
        let first = report.losses.first().unwrap().1;
        assert!(report.final_loss < first, "DDP training must learn: {first} -> {}", report.final_loss);
    }

    #[test]
    fn grad_accumulation_defers_optimizer_steps() {
        let ds = dataset();
        let model = tiny_model();
        let before = model.params.get("xattn.wq").clone();
        let mut t = Trainer::new(
            model,
            &ds,
            TrainerConfig { grad_accumulation: 3, steps: 2, ..quick_cfg() },
        );
        // Two micro-batches < accumulation window: parameters untouched.
        t.train(&ds);
        assert_eq!(before.data(), t.model.params.get("xattn.wq").data());
        // A third micro-batch triggers the optimizer.
        let s = ds.sample(0);
        let lat = Tensor::from_vec(
            vec![ds.fine_grid().h, ds.fine_grid().w],
            ds.fine_grid().latitude_weight_field(),
        );
        t.step(&s.input, &s.target, &lat, ds.factor);
        assert!(before.max_abs_diff(t.model.params.get("xattn.wq")) > 0.0);
    }

    #[test]
    fn ddp_batch_equals_manual_average_direction() {
        // A 2-replica step must use the average of the two per-sample
        // gradients: verify the resulting update differs from either
        // single-sample update but matches the two-sample average run.
        let ds = dataset();
        let lat = Tensor::from_vec(
            vec![ds.fine_grid().h, ds.fine_grid().w],
            ds.fine_grid().latitude_weight_field(),
        );
        let s0 = ds.sample(0);
        let s1 = ds.sample(1);
        let run = |pairs: Vec<(&Tensor, &Tensor)>| {
            let mut t = Trainer::new(tiny_model(), &ds, TrainerConfig { steps: 0, ..quick_cfg() });
            t.step_batch(&pairs, &lat, ds.factor);
            t.model.params.get("xattn.wq").clone()
        };
        let batched = run(vec![(&s0.input, &s0.target), (&s1.input, &s1.target)]);
        let only0 = run(vec![(&s0.input, &s0.target)]);
        let batched2 = run(vec![(&s0.input, &s0.target), (&s1.input, &s1.target)]);
        assert_eq!(batched.data(), batched2.data(), "batched step must be deterministic");
        assert!(batched.max_abs_diff(&only0) > 0.0, "second replica must influence the update");
    }

    #[test]
    fn training_reuses_pooled_buffers_across_steps() {
        // The steady-state claim of the buffer-pool layer: after the first
        // step warms the pool, later steps serve same-shape allocations
        // (normalization, gradient averaging, optimizer temporaries) from
        // recycled buffers instead of the system allocator.
        let ds = dataset();
        let spec = TileSpec { tiles_y: 2, tiles_x: 2, halo: 1 };
        let mut t = Trainer::new(
            tiny_model(),
            &ds,
            TrainerConfig { tile_spec: Some(spec), steps: 4, ..quick_cfg() },
        );
        orbit2_tensor::pool::clear();
        orbit2_tensor::pool::reset_stats();
        t.train(&ds);
        let stats = orbit2_tensor::pool::stats();
        assert!(
            stats.reuses > 0,
            "multi-step training must recycle buffers, stats: {stats:?}"
        );
    }

    #[test]
    fn gradient_averaging_equals_single_tile_for_uniform_split() {
        // With 1 tile, average_grad_maps over one map is the identity;
        // covered implicitly, but check a step mutates parameters.
        let ds = dataset();
        let model = tiny_model();
        let before = model.params.get("xattn.wq").clone();
        let mut t = Trainer::new(model, &ds, TrainerConfig { steps: 1, ..quick_cfg() });
        t.train(&ds);
        let after = t.model.params.get("xattn.wq");
        assert!(before.max_abs_diff(after) > 0.0, "parameters must move");
    }
}
