//! The fault-tolerant TILES-parallel trainer.
//!
//! One training step: the sample is split into halo-padded tiles; each tile
//! runs its forward/backward on its own thread with its own gradient tape
//! (the thread stands in for the tile's GPU); the per-tile gradient maps are
//! averaged — the paper's once-per-batch all-reduce — unscaled by the
//! dynamic gradient scaler, and applied by Adam with a cosine schedule.
//! Mixed precision is emulated by rounding parameters (and the averaged
//! gradients) to BF16 before use, with fp32 master weights inside Adam.
//!
//! ## Fault tolerance
//!
//! Every (replica, tile) job runs isolated behind `catch_unwind`: a
//! panicking or NaN-producing job cannot abort the step. A failed job is
//! retried once; if the retry fails too it is dropped from the gradient
//! all-reduce and the average is renormalized over the survivors (the
//! paper's once-per-batch all-reduce semantics, minus the dead rank). A
//! seeded [`FaultPlan`] can inject panics, NaN gradients and stragglers
//! deterministically for chaos testing; every observed fault lands in the
//! [`TrainReport`] fault log, and every skipped optimizer step is recorded
//! with its [`SkipReason`] instead of silently vanishing.
//!
//! ## Checkpointing
//!
//! With `checkpoint_every > 0` and a checkpoint path set, `train` saves a
//! crash-consistent [`TrainerCheckpoint`] (params, Adam moments, scaler
//! state, data cursor, pending accumulation) every N steps;
//! [`Trainer::resume`] restores it and the continued run is bit-identical
//! to an uninterrupted one.

use crate::checkpoint::{
    load_trainer_state, save_trainer_state, validate_layout, ProgressState, TrainerCheckpoint,
};
use crate::fault::{FaultAction, FaultEvent, FaultKind, FaultPlan, SkipReason};
use crate::tiling::split_sample;
use orbit2_autograd::optim::cosine_schedule;
use orbit2_autograd::params::{average_grad_maps, tensors_from_bits, tensors_to_bits, GradMap};
use orbit2_autograd::{Adam, GradScaler, Optimizer, ParamStore, Tape};
use orbit2_climate::{DownscalingDataset, Normalizer, Split};
use orbit2_imaging::tiles::TileSpec;
use orbit2_model::binder::Binder;
use orbit2_model::loss::{bayesian_loss, BayesianLossCfg};
use orbit2_model::ReslimModel;
use orbit2_tensor::Tensor;
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Training-run configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrainerConfig {
    /// Optimizer steps to run.
    pub steps: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// Linear warmup steps.
    pub warmup: u64,
    /// TILES tiling of each sample (`None` = single tile, no halo).
    pub tile_spec: Option<TileSpec>,
    /// Adaptive-compression target ratio (1.0 disables).
    pub compression: f32,
    /// Emulate BF16 mixed precision with dynamic gradient scaling.
    pub bf16: bool,
    /// Bayesian loss configuration.
    pub loss: BayesianLossCfg,
    /// Record the loss every `log_every` steps.
    pub log_every: usize,
    /// Data-parallel replicas per step: that many consecutive samples are
    /// processed concurrently (threads = simulated DDP ranks) and their
    /// gradients join the same once-per-batch average as the tiles.
    pub ddp_replicas: usize,
    /// Micro-batches accumulated before each optimizer step.
    pub grad_accumulation: usize,
    /// Auto-save a full-state checkpoint every N steps during `train`
    /// (0 disables; requires [`Trainer::set_checkpoint_path`]).
    pub checkpoint_every: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            steps: 200,
            lr: 2e-3,
            warmup: 20,
            tile_spec: None,
            compression: 1.0,
            bf16: false,
            loss: BayesianLossCfg::default(),
            log_every: 10,
            ddp_replicas: 1,
            grad_accumulation: 1,
            checkpoint_every: 0,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// `(step, loss)` samples every `log_every` steps.
    pub losses: Vec<(usize, f32)>,
    /// Loss at the last step that produced one; `None` when no step did
    /// (zero steps configured, or every step skipped).
    pub final_loss: Option<f32>,
    /// Steps that produced a loss (survived isolation and, for optimizer
    /// boundaries, were not skipped).
    pub completed_steps: usize,
    /// Steps skipped by the gradient scaler (non-finite gradients).
    pub skipped_steps: u64,
    /// Every skipped optimizer step with why it was skipped — a skipped
    /// batch is recorded, never silently lost.
    pub skipped: Vec<(usize, SkipReason)>,
    /// Every fault observed during the run (injected or genuine) and how
    /// recovery resolved it.
    pub faults: Vec<FaultEvent>,
}

/// Why an isolated job produced no usable gradient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobFailure {
    /// The job's thread panicked.
    Panicked,
    /// The job completed with NaN/non-finite loss or gradients.
    NonFinite,
}

impl JobFailure {
    /// The fault kind to log for a genuine (non-injected) failure.
    fn as_kind(self) -> FaultKind {
        match self {
            JobFailure::Panicked => FaultKind::Panic,
            JobFailure::NonFinite => FaultKind::NaNGradient,
        }
    }
}

/// A model plus its training state.
pub struct Trainer {
    /// The model being trained.
    pub model: ReslimModel,
    /// Channel normalizer fitted on the training split.
    pub normalizer: Normalizer,
    opt: Adam,
    scaler: GradScaler,
    cfg: TrainerConfig,
    /// Accumulated micro-batch gradients awaiting an optimizer step.
    pending: Vec<GradMap>,
    /// Deterministic fault-injection schedule (empty unless armed via
    /// [`Trainer::set_fault_plan`] or `ORBIT2_FAULT_PLAN`).
    fault_plan: FaultPlan,
    /// Faults observed since the last report, drained by `train`.
    fault_log: Vec<FaultEvent>,
    /// Skipped optimizer steps since the last report, drained by `train`.
    skip_log: Vec<(usize, SkipReason)>,
    /// Micro-batch steps taken over the trainer's lifetime (resumes count).
    global_step: usize,
    /// Position of the data cursor in the training split.
    cursor: usize,
    /// Where `train` auto-saves checkpoints (see `checkpoint_every`).
    checkpoint_path: Option<PathBuf>,
}

impl Trainer {
    /// Create a trainer, fitting the normalizer on the training split.
    pub fn new(model: ReslimModel, dataset: &DownscalingDataset, cfg: TrainerConfig) -> Self {
        let normalizer = Normalizer::fit(dataset, 8);
        let opt = Adam::new(cfg.lr).with_weight_decay(1e-5);
        // A short growth interval exercises the scaler during small runs.
        let scaler = GradScaler::new(1024.0).with_growth_interval(200);
        Self {
            model,
            normalizer,
            opt,
            scaler,
            cfg,
            pending: Vec::new(),
            fault_plan: FaultPlan::from_env().unwrap_or_default(),
            fault_log: Vec::new(),
            skip_log: Vec::new(),
            global_step: 0,
            cursor: 0,
            checkpoint_path: None,
        }
    }

    /// Access the trainer configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// The model in its current training state.
    pub fn model(&self) -> &ReslimModel {
        &self.model
    }

    /// The normalizer fitted at construction.
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// Arm (or disarm, with [`FaultPlan::none`]) deterministic fault
    /// injection for subsequent steps.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
    }

    /// Set where `train` auto-saves checkpoints (see
    /// `TrainerConfig::checkpoint_every`).
    pub fn set_checkpoint_path(&mut self, path: impl Into<PathBuf>) {
        self.checkpoint_path = Some(path.into());
    }

    /// Micro-batch steps taken so far (survives save/resume).
    pub fn global_step(&self) -> usize {
        self.global_step
    }

    /// Snapshot the complete training state, bit-exactly.
    pub fn checkpoint(&self) -> TrainerCheckpoint {
        TrainerCheckpoint {
            model_cfg: self.model.cfg,
            params: self.model.params.to_bits(),
            adam: self.opt.export_state(),
            scaler: self.scaler.export_state(),
            progress: ProgressState {
                global_step: self.global_step as u64,
                data_cursor: self.cursor as u64,
            },
            pending: self.pending.iter().map(|gm| tensors_to_bits(gm.iter())).collect(),
        }
    }

    /// Save the complete training state to `path`, atomically.
    pub fn save_checkpoint(&self, path: &Path) -> std::io::Result<()> {
        save_trainer_state(&self.checkpoint(), path)
    }

    /// Restore a trainer from a full-state checkpoint. The continued run is
    /// bit-identical to one that never stopped: parameters, Adam moments
    /// and step count, scaler state, data cursor and pending accumulation
    /// all resume exactly. The normalizer is refitted from `dataset`
    /// (deterministic), and optimizer/scaler hyper-parameters come from
    /// `cfg`, exactly as in [`Trainer::new`].
    pub fn resume(
        dataset: &DownscalingDataset,
        cfg: TrainerConfig,
        path: &Path,
    ) -> std::io::Result<Self> {
        let bad = |e: String| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
        let ckpt = load_trainer_state(path)?;
        let params = ParamStore::from_bits(&ckpt.params).map_err(bad)?;
        validate_layout(&params, ckpt.model_cfg)?;
        let model = ReslimModel { cfg: ckpt.model_cfg, params };
        let mut trainer = Self::new(model, dataset, cfg);
        trainer.opt.import_state(&ckpt.adam).map_err(bad)?;
        trainer.scaler.import_state(&ckpt.scaler);
        trainer.global_step = ckpt.progress.global_step as usize;
        trainer.cursor = ckpt.progress.data_cursor as usize;
        trainer.pending = ckpt
            .pending
            .iter()
            .map(tensors_from_bits)
            .collect::<Result<Vec<_>, String>>()
            .map_err(bad)?;
        Ok(trainer)
    }

    /// Run up to the configured number of steps over the dataset's training
    /// split, continuing from the current `global_step` (fresh trainers
    /// start at 0; resumed ones where the checkpoint left off).
    pub fn train(&mut self, dataset: &DownscalingDataset) -> TrainReport {
        self.train_for(dataset, usize::MAX)
    }

    /// Like [`Trainer::train`] but stop after at most `max_steps`
    /// micro-batches this call, leaving the run resumable. The learning-rate
    /// schedule still spans the full `cfg.steps` horizon, so driving
    /// training in slices is bit-identical to one uninterrupted call.
    pub fn train_for(&mut self, dataset: &DownscalingDataset, max_steps: usize) -> TrainReport {
        let train_idx = dataset.indices(Split::Train);
        assert!(!train_idx.is_empty(), "empty training split");
        let lat_field = Tensor::from_vec(
            vec![dataset.fine_grid().h, dataset.fine_grid().w],
            dataset.fine_grid().latitude_weight_field(),
        );
        let mut losses = Vec::new();
        let mut final_loss = None;
        let mut completed_steps = 0usize;
        let mut steps_this_call = 0usize;
        let replicas = self.cfg.ddp_replicas.max(1);
        while self.global_step < self.cfg.steps && steps_this_call < max_steps {
            steps_this_call += 1;
            let step = self.global_step;
            // DDP: each replica takes the next sample in time order.
            let cursor = self.cursor;
            let batch: Vec<_> = (0..replicas)
                .map(|r| {
                    let s = dataset.sample(train_idx[(cursor + r) % train_idx.len()]);
                    (s.input, s.target)
                })
                .collect();
            self.cursor += replicas;
            let lr = cosine_schedule(step as u64, self.cfg.warmup, self.cfg.steps as u64, self.cfg.lr, self.cfg.lr * 0.05);
            self.opt.set_learning_rate(lr);
            let pairs: Vec<(&Tensor, &Tensor)> = batch.iter().map(|(i, t)| (i, t)).collect();
            if let Some(loss) = self.step_batch(&pairs, &lat_field, dataset.factor) {
                final_loss = Some(loss);
                completed_steps += 1;
                if step.is_multiple_of(self.cfg.log_every) || step + 1 == self.cfg.steps {
                    losses.push((step, loss));
                }
            }
            if self.cfg.checkpoint_every > 0 && self.global_step.is_multiple_of(self.cfg.checkpoint_every) {
                if let Some(path) = self.checkpoint_path.clone() {
                    // A failed save must not kill a multi-day run: warn and
                    // keep training on the previous (intact) checkpoint.
                    if let Err(e) = self.save_checkpoint(&path) {
                        eprintln!("orbit2: checkpoint save to {} failed: {e}", path.display());
                    }
                }
            }
        }
        TrainReport {
            losses,
            final_loss,
            completed_steps,
            skipped_steps: self.scaler.skipped_steps,
            skipped: std::mem::take(&mut self.skip_log),
            faults: std::mem::take(&mut self.fault_log),
        }
    }

    /// One optimizer step on a single (input, target) pair. Returns the
    /// (unscaled) loss, or `None` when the step was skipped.
    pub fn step(&mut self, input: &Tensor, target: &Tensor, lat_field: &Tensor, factor: usize) -> Option<f32> {
        self.step_batch(&[(input, target)], lat_field, factor)
    }

    /// One micro-batch: every (replica, tile) pair runs forward/backward on
    /// its own thread (its own simulated GPU) behind `catch_unwind`
    /// isolation; surviving gradients join a single average — the combined
    /// DDP x TILES all-reduce, renormalized over survivors when jobs were
    /// dropped. The optimizer applies once every `grad_accumulation`
    /// micro-batches.
    pub fn step_batch(&mut self, samples: &[(&Tensor, &Tensor)], lat_field: &Tensor, factor: usize) -> Option<f32> {
        assert!(!samples.is_empty(), "empty batch");
        let step = self.global_step;
        self.global_step += 1;
        // Emulated BF16: the forward/backward sees rounded parameters; Adam
        // keeps fp32 masters in `self.model.params`.
        let step_params: ParamStore = if self.cfg.bf16 {
            let mut p = self.model.params.clone();
            for (_, t) in p.iter_mut() {
                *t = t.to_bf16();
            }
            p
        } else {
            self.model.params.clone()
        };

        let spec = self
            .cfg
            .tile_spec
            .unwrap_or(TileSpec { tiles_y: 1, tiles_x: 1, halo: 0 });
        // Flatten (replica, tile) into one job list.
        let jobs: Vec<crate::tiling::SampleTile> = samples
            .iter()
            .flat_map(|(input, target)| {
                let norm_in = self.normalizer.normalize_input(input);
                let norm_tgt = self.normalizer.normalize_target(target);
                split_sample(&norm_in, Some(&norm_tgt), spec, factor)
            })
            .collect();
        let loss_scale = if self.cfg.bf16 { self.scaler.scale() } else { 1.0 };
        let model = &self.model;
        let loss_cfg = self.cfg.loss;
        let compression = self.cfg.compression;
        let bf16 = self.cfg.bf16;

        // One isolated attempt at one job. Injected faults fire inside the
        // unwind boundary, exactly where a real rank would fail.
        let run_job = |tile: &crate::tiling::SampleTile,
                       fault: Option<FaultKind>|
         -> Result<(f32, GradMap), JobFailure> {
            let compute = || {
                if let Some(FaultKind::Straggler(ms)) = fault {
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
                if matches!(fault, Some(FaultKind::Panic)) {
                    panic!("injected rank failure");
                }
                let tape = Tape::new();
                let binder = Binder::new(&tape, &step_params);
                let (pred, _) = model.forward(&binder, &tile.input, compression);
                let target_tile = tile.target.as_ref().expect("training tile needs target");
                let weights = crop_weights(lat_field, tile, factor);
                let loss = bayesian_loss(pred, target_tile, &weights, loss_cfg);
                let scaled = loss.scale(loss_scale);
                let grads = tape.backward(scaled);
                let mut gm = binder.grad_map(&grads);
                if bf16 {
                    for g in gm.values_mut() {
                        *g = g.to_bf16();
                    }
                }
                if matches!(fault, Some(FaultKind::NaNGradient)) {
                    for g in gm.values_mut() {
                        g.data_mut()[0] = f32::NAN;
                    }
                }
                (loss.value().item(), gm)
            };
            match catch_unwind(AssertUnwindSafe(compute)) {
                Err(_) => Err(JobFailure::Panicked),
                Ok((loss, gm)) => {
                    // Per-job health check. In BF16 mode Inf/NaN gradients
                    // are the scaler's business (overflow backs the scale
                    // off globally), so only injected poison fails the job;
                    // in fp32 mode any non-finite output is a dead rank.
                    let injected_nan = matches!(fault, Some(FaultKind::NaNGradient));
                    let non_finite =
                        !loss.is_finite() || gm.values().any(|g| !g.all_finite());
                    if injected_nan || (!bf16 && non_finite) {
                        Err(JobFailure::NonFinite)
                    } else {
                        Ok((loss, gm))
                    }
                }
            }
        };

        // First pass: every job in parallel, each isolated.
        let plan = self.fault_plan.clone();
        let faults: Vec<Option<FaultKind>> =
            (0..jobs.len()).map(|j| plan.lookup(step, j)).collect();
        let mut outcomes: Vec<Result<(f32, GradMap), JobFailure>> = jobs
            .par_iter()
            .enumerate()
            .map(|(j, tile)| run_job(tile, faults[j]))
            .collect();

        // Elastic recovery: retry each failed job once. Transient faults
        // (the default) retry clean — the rescheduled rank is healthy;
        // persistent plans re-apply the fault, modelling a dead node.
        let mut events = Vec::new();
        for (j, outcome) in outcomes.iter_mut().enumerate() {
            let fault = faults[j];
            match outcome {
                Ok(_) => {
                    if let Some(kind) = fault {
                        events.push(FaultEvent {
                            step,
                            job: j,
                            kind,
                            action: FaultAction::Completed,
                            injected: true,
                        });
                    }
                }
                Err(failure) => {
                    let kind = fault.unwrap_or_else(|| failure.as_kind());
                    let retry_fault = if plan.is_persistent() { fault } else { None };
                    let retried = run_job(&jobs[j], retry_fault);
                    let action = if retried.is_ok() { FaultAction::Retried } else { FaultAction::Dropped };
                    events.push(FaultEvent { step, job: j, kind, action, injected: fault.is_some() });
                    *outcome = retried;
                }
            }
        }
        self.fault_log.extend(events);

        // The DDP x TILES gradient all-reduce over the survivors: dropping
        // a job renormalizes the average over those that remain.
        let survivors: Vec<(f32, GradMap)> = outcomes.into_iter().flatten().collect();
        if survivors.is_empty() {
            self.skip_log.push((step, SkipReason::AllJobsFailed));
            return None;
        }
        let mean_loss = survivors.iter().map(|(l, _)| *l).sum::<f32>() / survivors.len() as f32;
        let maps: Vec<GradMap> = survivors.into_iter().map(|(_, g)| g).collect();
        let avg = average_grad_maps(&maps);
        self.pending.push(avg);
        if self.pending.len() < self.cfg.grad_accumulation.max(1) {
            return Some(mean_loss);
        }
        let mut total = average_grad_maps(&self.pending);
        self.pending.clear();
        if self.cfg.bf16 {
            if !self.scaler.unscale_and_check(&mut total) {
                self.skip_log.push((step, SkipReason::ScalerOverflow));
                return None;
            }
        } else if total.values().any(|g| !g.all_finite()) {
            self.skip_log.push((step, SkipReason::NonFiniteAverage));
            return None;
        }
        self.opt.step(&mut self.model.params, &total);
        Some(mean_loss)
    }
}

/// Latitude weights for a (padded) target tile: clamped crop of the full
/// fine-grid weight field at the tile's scaled geometry.
fn crop_weights(lat_field: &Tensor, tile: &crate::tiling::SampleTile, factor: usize) -> Tensor {
    let (fh, fw) = (lat_field.shape()[0], lat_field.shape()[1]);
    let g = tile.geom.scaled(factor);
    let (ph, pw) = (g.padded_h(), g.padded_w());
    let mut out = orbit2_tensor::pool::alloc_uninit(ph * pw);
    for y in 0..ph {
        let gy = (g.core_y0 as i64 + y as i64 - g.halo as i64).clamp(0, fh as i64 - 1) as usize;
        for x in 0..pw {
            let gx = (g.core_x0 as i64 + x as i64 - g.halo as i64).clamp(0, fw as i64 - 1) as usize;
            out[y * pw + x] = lat_field.data()[gy * fw + gx];
        }
    }
    Tensor::from_vec(vec![ph, pw], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit2_climate::{LatLonGrid, VariableSet};
    use orbit2_model::ModelConfig;

    fn dataset() -> DownscalingDataset {
        DownscalingDataset::new(LatLonGrid::conus(16, 32), VariableSet::daymet_like(), 4, 24, 5)
    }

    fn tiny_model() -> ReslimModel {
        ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 1)
    }

    fn quick_cfg() -> TrainerConfig {
        TrainerConfig { steps: 12, lr: 1e-3, warmup: 2, log_every: 4, ..Default::default() }
    }

    #[test]
    fn loss_decreases_over_training() {
        let ds = dataset();
        let mut t = Trainer::new(tiny_model(), &ds, TrainerConfig { steps: 30, ..quick_cfg() });
        let report = t.train(&ds);
        let first = report.losses.first().unwrap().1;
        let last = report.final_loss.unwrap();
        assert!(last < first * 0.9, "loss should drop: {first} -> {last}");
        assert!(last.is_finite());
        assert_eq!(report.completed_steps, 30);
        assert!(report.faults.is_empty(), "no fault plan armed: {:?}", report.faults);
        assert!(report.skipped.is_empty());
    }

    #[test]
    fn tiled_training_matches_untiled_loss_trend() {
        let ds = dataset();
        let spec = TileSpec { tiles_y: 2, tiles_x: 2, halo: 1 };
        let mut t = Trainer::new(
            tiny_model(),
            &ds,
            TrainerConfig { tile_spec: Some(spec), steps: 20, ..quick_cfg() },
        );
        let report = t.train(&ds);
        let last = report.final_loss.unwrap();
        assert!(last.is_finite());
        let first = report.losses.first().unwrap().1;
        assert!(last < first, "tiled training must also learn");
    }

    #[test]
    fn bf16_training_learns_with_scaler() {
        let ds = dataset();
        let mut t = Trainer::new(
            tiny_model(),
            &ds,
            TrainerConfig { bf16: true, steps: 20, ..quick_cfg() },
        );
        let report = t.train(&ds);
        let last = report.final_loss.unwrap();
        assert!(last.is_finite());
        let first = report.losses.first().unwrap().1;
        assert!(last < first, "bf16 training must learn: {first} -> {last}");
    }

    #[test]
    fn compression_training_runs() {
        let ds = dataset();
        let mut t = Trainer::new(
            tiny_model(),
            &ds,
            TrainerConfig { compression: 2.0, steps: 8, ..quick_cfg() },
        );
        let report = t.train(&ds);
        assert!(report.final_loss.unwrap().is_finite());
    }

    #[test]
    fn ddp_replicas_training_learns() {
        let ds = dataset();
        let mut t = Trainer::new(
            tiny_model(),
            &ds,
            TrainerConfig { ddp_replicas: 2, steps: 15, ..quick_cfg() },
        );
        let report = t.train(&ds);
        let first = report.losses.first().unwrap().1;
        let last = report.final_loss.unwrap();
        assert!(last < first, "DDP training must learn: {first} -> {last}");
    }

    #[test]
    fn zero_step_run_reports_none_not_nan() {
        let ds = dataset();
        let mut t = Trainer::new(tiny_model(), &ds, TrainerConfig { steps: 0, ..quick_cfg() });
        let report = t.train(&ds);
        assert_eq!(report.final_loss, None);
        assert_eq!(report.completed_steps, 0);
        assert!(report.losses.is_empty());
    }

    #[test]
    fn grad_accumulation_defers_optimizer_steps() {
        let ds = dataset();
        let model = tiny_model();
        let before = model.params.get("xattn.wq").clone();
        let mut t = Trainer::new(
            model,
            &ds,
            TrainerConfig { grad_accumulation: 3, steps: 2, ..quick_cfg() },
        );
        // Two micro-batches < accumulation window: parameters untouched.
        t.train(&ds);
        assert_eq!(before.data(), t.model.params.get("xattn.wq").data());
        // A third micro-batch triggers the optimizer.
        let s = ds.sample(0);
        let lat = Tensor::from_vec(
            vec![ds.fine_grid().h, ds.fine_grid().w],
            ds.fine_grid().latitude_weight_field(),
        );
        t.step(&s.input, &s.target, &lat, ds.factor);
        assert!(before.max_abs_diff(t.model.params.get("xattn.wq")) > 0.0);
    }

    #[test]
    fn ddp_batch_equals_manual_average_direction() {
        // A 2-replica step must use the average of the two per-sample
        // gradients: verify the resulting update differs from either
        // single-sample update but matches the two-sample average run.
        let ds = dataset();
        let lat = Tensor::from_vec(
            vec![ds.fine_grid().h, ds.fine_grid().w],
            ds.fine_grid().latitude_weight_field(),
        );
        let s0 = ds.sample(0);
        let s1 = ds.sample(1);
        let run = |pairs: Vec<(&Tensor, &Tensor)>| {
            let mut t = Trainer::new(tiny_model(), &ds, TrainerConfig { steps: 0, ..quick_cfg() });
            t.step_batch(&pairs, &lat, ds.factor);
            t.model.params.get("xattn.wq").clone()
        };
        let batched = run(vec![(&s0.input, &s0.target), (&s1.input, &s1.target)]);
        let only0 = run(vec![(&s0.input, &s0.target)]);
        let batched2 = run(vec![(&s0.input, &s0.target), (&s1.input, &s1.target)]);
        assert_eq!(batched.data(), batched2.data(), "batched step must be deterministic");
        assert!(batched.max_abs_diff(&only0) > 0.0, "second replica must influence the update");
    }

    #[test]
    fn training_reuses_pooled_buffers_across_steps() {
        // The steady-state claim of the buffer-pool layer: after the first
        // step warms the pool, later steps serve same-shape allocations
        // (normalization, gradient averaging, optimizer temporaries) from
        // recycled buffers instead of the system allocator.
        let ds = dataset();
        let spec = TileSpec { tiles_y: 2, tiles_x: 2, halo: 1 };
        let mut t = Trainer::new(
            tiny_model(),
            &ds,
            TrainerConfig { tile_spec: Some(spec), steps: 4, ..quick_cfg() },
        );
        orbit2_tensor::pool::clear();
        orbit2_tensor::pool::reset_stats();
        t.train(&ds);
        let stats = orbit2_tensor::pool::stats();
        assert!(
            stats.reuses > 0,
            "multi-step training must recycle buffers, stats: {stats:?}"
        );
    }

    #[test]
    fn gradient_averaging_equals_single_tile_for_uniform_split() {
        // With 1 tile, average_grad_maps over one map is the identity;
        // covered implicitly, but check a step mutates parameters.
        let ds = dataset();
        let model = tiny_model();
        let before = model.params.get("xattn.wq").clone();
        let mut t = Trainer::new(model, &ds, TrainerConfig { steps: 1, ..quick_cfg() });
        t.train(&ds);
        let after = t.model.params.get("xattn.wq");
        assert!(before.max_abs_diff(after) > 0.0, "parameters must move");
    }

    #[test]
    fn retried_transient_panic_matches_clean_run_exactly() {
        // A transient injected panic is retried clean, so the step's update
        // must be bit-identical to a run with no fault at all.
        let ds = dataset();
        let lat = Tensor::from_vec(
            vec![ds.fine_grid().h, ds.fine_grid().w],
            ds.fine_grid().latitude_weight_field(),
        );
        let s0 = ds.sample(0);
        let s1 = ds.sample(1);
        let run = |plan: FaultPlan| {
            let mut t = Trainer::new(tiny_model(), &ds, TrainerConfig { steps: 0, ..quick_cfg() });
            t.set_fault_plan(plan);
            t.step_batch(&[(&s0.input, &s0.target), (&s1.input, &s1.target)], &lat, ds.factor);
            t.model.params.get("xattn.wq").clone()
        };
        let clean = run(FaultPlan::none());
        let faulted = run(FaultPlan::none().with_event(0, 1, FaultKind::Panic));
        assert_eq!(clean.data(), faulted.data(), "retried job must reproduce the clean gradient");
    }

    #[test]
    fn dropped_job_renormalizes_average_over_survivors() {
        // A persistent fault kills job 1 (replica 1) outright: the 2-sample
        // batch must then produce exactly the 1-sample update.
        let ds = dataset();
        let lat = Tensor::from_vec(
            vec![ds.fine_grid().h, ds.fine_grid().w],
            ds.fine_grid().latitude_weight_field(),
        );
        let s0 = ds.sample(0);
        let s1 = ds.sample(1);
        let run = |pairs: Vec<(&Tensor, &Tensor)>, plan: FaultPlan| {
            let mut t = Trainer::new(tiny_model(), &ds, TrainerConfig { steps: 0, ..quick_cfg() });
            t.set_fault_plan(plan);
            t.step_batch(&pairs, &lat, ds.factor);
            t.model.params.get("xattn.wq").clone()
        };
        let dead_rank = FaultPlan::none().with_event(0, 1, FaultKind::Panic).with_persistent();
        let dropped = run(vec![(&s0.input, &s0.target), (&s1.input, &s1.target)], dead_rank);
        let solo = run(vec![(&s0.input, &s0.target)], FaultPlan::none());
        assert_eq!(
            dropped.data(),
            solo.data(),
            "average must renormalize over the surviving job"
        );
    }
}
