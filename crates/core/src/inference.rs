//! Tiled inference: halo-padded tiles in parallel, cores stitched back —
//! exactly the TILES deployment path of paper Fig. 4.

use crate::tiling::{split_stack, stitch_predictions};
use orbit2_autograd::Tape;
use orbit2_climate::Normalizer;
use orbit2_imaging::tiles::{TileGeometry, TileSpec};
use orbit2_model::binder::Binder;
use orbit2_model::ReslimModel;
use orbit2_tensor::Tensor;
use rayon::prelude::*;

/// Downscale one `[C_in, h, w]` input to `[C_out, h*factor, w*factor]`
/// physical units.
///
/// `tile_spec = None` processes the sample whole; otherwise each tile runs
/// on its own thread with halo context and the halos are discarded when
/// stitching.
pub fn downscale(
    model: &ReslimModel,
    normalizer: &Normalizer,
    input: &Tensor,
    tile_spec: Option<TileSpec>,
    compression: f32,
) -> Tensor {
    assert_eq!(input.ndim(), 3, "input must be [C, h, w]");
    let (h, w) = (input.shape()[1], input.shape()[2]);
    let factor = model.cfg.scale_factor;
    let norm_in = normalizer.normalize_input(input);
    let spec = tile_spec.unwrap_or(TileSpec { tiles_y: 1, tiles_x: 1, halo: 0 });
    let tiles = split_stack(&norm_in, spec);
    let preds: Vec<(TileGeometry, Tensor)> = tiles
        .par_iter()
        .map(|(geom, tile_input)| {
            let tape = Tape::new();
            let binder = Binder::new(&tape, &model.params);
            let (pred, _) = model.forward(&binder, tile_input, compression);
            (*geom, pred.value())
        })
        .collect();
    let stitched = stitch_predictions(&preds, h, w, factor);
    normalizer.denormalize_target(&stitched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit2_climate::{DownscalingDataset, LatLonGrid, VariableSet};
    use orbit2_model::{ModelConfig, ReslimModel};

    fn setup() -> (ReslimModel, Normalizer, DownscalingDataset) {
        let ds = DownscalingDataset::new(LatLonGrid::conus(16, 32), VariableSet::daymet_like(), 4, 10, 3);
        let model = ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 2);
        let norm = Normalizer::fit(&ds, 4);
        (model, norm, ds)
    }

    #[test]
    fn output_shape_and_units() {
        let (model, norm, ds) = setup();
        let s = ds.sample(0);
        let pred = downscale(&model, &norm, &s.input, None, 1.0);
        assert_eq!(pred.shape(), s.target.shape());
        // Denormalized output should be in a physical range near the target
        // statistics (temperatures in the hundreds of Kelvin), not z-scores.
        let t_mean = pred.slice_axis(0, 0, 1).mean();
        assert!(t_mean > 150.0 && t_mean < 400.0, "tmin channel mean {t_mean} not physical");
    }

    #[test]
    fn tiled_inference_close_to_untiled() {
        // With an adequate halo, tiling is a faithful approximation of the
        // untiled prediction (TILES' locality argument). Border tokens see
        // slightly different context, so exact equality is not expected.
        let (model, norm, ds) = setup();
        let s = ds.sample(1);
        let whole = downscale(&model, &norm, &s.input, None, 1.0);
        let spec = TileSpec { tiles_y: 2, tiles_x: 2, halo: 2 };
        let tiled = downscale(&model, &norm, &s.input, Some(spec), 1.0);
        assert_eq!(whole.shape(), tiled.shape());
        let denom = whole.map(|x| x.abs()).mean().max(1e-3);
        let rel = whole.sub(&tiled).map(|x| x.abs()).mean() / denom;
        assert!(rel < 0.15, "tiled prediction deviates {rel} relative");
    }

    #[test]
    fn deterministic() {
        let (model, norm, ds) = setup();
        let s = ds.sample(2);
        let a = downscale(&model, &norm, &s.input, None, 1.0);
        let b = downscale(&model, &norm, &s.input, None, 1.0);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn compression_inference_runs() {
        let (model, norm, ds) = setup();
        let s = ds.sample(3);
        let pred = downscale(&model, &norm, &s.input, None, 2.0);
        assert_eq!(pred.shape(), s.target.shape());
        assert!(pred.all_finite());
    }
}
