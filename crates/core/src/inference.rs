//! Tiled inference: halo-padded tiles in parallel, cores stitched back —
//! exactly the TILES deployment path of paper Fig. 4.
//!
//! Inference never touches the autograd tape: the forward runs through a
//! tape-free [`InferenceSession`] whose weights (and packed GEMM operands)
//! are prepared once and shared read-only across the tile-worker threads.

use crate::tiling::{split_stack, stitch_predictions};
use orbit2_climate::Normalizer;
use orbit2_imaging::tiles::{TileGeometry, TileSpec};
use orbit2_model::{InferenceSession, ReslimModel};
use orbit2_tensor::Tensor;
use rayon::prelude::*;
use std::fmt;

/// Why an inference request was rejected before any compute ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferenceError {
    /// The input tensor is not rank 3 (`[C, h, w]`).
    BadRank {
        /// Rank of the offending input.
        ndim: usize,
    },
    /// The input variable (channel) count does not match the model.
    ChannelMismatch {
        /// Channels in the input.
        got: usize,
        /// Channels the model was configured for.
        expected: usize,
    },
    /// The spatial dimensions are not divisible by the model's patch size.
    NotPatchAligned {
        /// Input height.
        h: usize,
        /// Input width.
        w: usize,
        /// The model's patch size.
        patch: usize,
    },
}

impl fmt::Display for InferenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferenceError::BadRank { ndim } => {
                write!(f, "input must be [C, h, w]; got a rank-{ndim} tensor")
            }
            InferenceError::ChannelMismatch { got, expected } => {
                write!(f, "input has {got} variables but the model expects {expected}")
            }
            InferenceError::NotPatchAligned { h, w, patch } => {
                write!(f, "input {h}x{w} is not divisible by the patch size {patch}")
            }
        }
    }
}

impl std::error::Error for InferenceError {}

/// Check that `input` is a sample this model can downscale.
pub fn validate_input(model: &ReslimModel, input: &Tensor) -> Result<(), InferenceError> {
    if input.ndim() != 3 {
        return Err(InferenceError::BadRank { ndim: input.ndim() });
    }
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    if c != model.cfg.in_channels {
        return Err(InferenceError::ChannelMismatch { got: c, expected: model.cfg.in_channels });
    }
    if h % model.cfg.patch != 0 || w % model.cfg.patch != 0 {
        return Err(InferenceError::NotPatchAligned { h, w, patch: model.cfg.patch });
    }
    Ok(())
}

/// Downscale one `[C_in, h, w]` input to `[C_out, h*factor, w*factor]`
/// physical units.
///
/// `tile_spec = None` processes the sample whole; otherwise each tile runs
/// on its own thread with halo context and the halos are discarded when
/// stitching.
///
/// Prepares a fresh [`InferenceSession`] per call; when downscaling many
/// samples with the same model, build the session once with
/// [`ReslimModel::session`] and use [`downscale_with`].
pub fn downscale(
    model: &ReslimModel,
    normalizer: &Normalizer,
    input: &Tensor,
    tile_spec: Option<TileSpec>,
    compression: f32,
) -> Result<Tensor, InferenceError> {
    let session = model.session();
    downscale_with(model, &session, normalizer, input, tile_spec, compression)
}

/// [`downscale`] with a caller-prepared session, so the weight snapshot and
/// packed GEMM operands are reused across calls. The session is shared
/// read-only by the tile workers.
pub fn downscale_with(
    model: &ReslimModel,
    session: &InferenceSession,
    normalizer: &Normalizer,
    input: &Tensor,
    tile_spec: Option<TileSpec>,
    compression: f32,
) -> Result<Tensor, InferenceError> {
    validate_input(model, input)?;
    let (h, w) = (input.shape()[1], input.shape()[2]);
    let factor = model.cfg.scale_factor;
    let norm_in = normalizer.normalize_input(input);
    let spec = tile_spec.unwrap_or(TileSpec { tiles_y: 1, tiles_x: 1, halo: 0 });
    let tiles = split_stack(&norm_in, spec);
    let preds: Vec<(TileGeometry, Tensor)> = tiles
        .par_iter()
        .map(|(geom, tile_input)| {
            let (pred, _) = model.forward(session, tile_input, compression);
            (*geom, pred.into_tensor())
        })
        .collect();
    let stitched = stitch_predictions(&preds, h, w, factor);
    Ok(normalizer.denormalize_target(&stitched))
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit2_climate::{DownscalingDataset, LatLonGrid, VariableSet};
    use orbit2_model::{ModelConfig, ReslimModel};

    fn setup() -> (ReslimModel, Normalizer, DownscalingDataset) {
        let ds = DownscalingDataset::new(LatLonGrid::conus(16, 32), VariableSet::daymet_like(), 4, 10, 3);
        let model = ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 2);
        let norm = Normalizer::fit(&ds, 4);
        (model, norm, ds)
    }

    #[test]
    fn output_shape_and_units() {
        let (model, norm, ds) = setup();
        let s = ds.sample(0);
        let pred = downscale(&model, &norm, &s.input, None, 1.0).unwrap();
        assert_eq!(pred.shape(), s.target.shape());
        // Denormalized output should be in a physical range near the target
        // statistics (temperatures in the hundreds of Kelvin), not z-scores.
        let t_mean = pred.slice_axis(0, 0, 1).mean();
        assert!(t_mean > 150.0 && t_mean < 400.0, "tmin channel mean {t_mean} not physical");
    }

    #[test]
    fn tiled_inference_close_to_untiled() {
        // With an adequate halo, tiling is a faithful approximation of the
        // untiled prediction (TILES' locality argument). Border tokens see
        // slightly different context, so exact equality is not expected.
        let (model, norm, ds) = setup();
        let s = ds.sample(1);
        let whole = downscale(&model, &norm, &s.input, None, 1.0).unwrap();
        let spec = TileSpec { tiles_y: 2, tiles_x: 2, halo: 2 };
        let tiled = downscale(&model, &norm, &s.input, Some(spec), 1.0).unwrap();
        assert_eq!(whole.shape(), tiled.shape());
        let denom = whole.map(|x| x.abs()).mean().max(1e-3);
        let rel = whole.sub(&tiled).map(|x| x.abs()).mean() / denom;
        assert!(rel < 0.15, "tiled prediction deviates {rel} relative");
    }

    #[test]
    fn deterministic() {
        let (model, norm, ds) = setup();
        let s = ds.sample(2);
        let a = downscale(&model, &norm, &s.input, None, 1.0).unwrap();
        let b = downscale(&model, &norm, &s.input, None, 1.0).unwrap();
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn compression_inference_runs() {
        let (model, norm, ds) = setup();
        let s = ds.sample(3);
        let pred = downscale(&model, &norm, &s.input, None, 2.0).unwrap();
        assert_eq!(pred.shape(), s.target.shape());
        assert!(pred.all_finite());
    }

    #[test]
    fn session_reuse_matches_fresh_session() {
        let (model, norm, ds) = setup();
        let session = model.session();
        for i in 0..3 {
            let s = ds.sample(i);
            let fresh = downscale(&model, &norm, &s.input, None, 1.0).unwrap();
            let reused =
                downscale_with(&model, &session, &norm, &s.input, None, 1.0).unwrap();
            assert_eq!(fresh.data(), reused.data());
        }
    }

    #[test]
    fn bad_inputs_are_typed_errors_not_panics() {
        let (model, norm, _) = setup();
        let rank2 = Tensor::zeros(vec![7, 16]);
        assert_eq!(
            downscale(&model, &norm, &rank2, None, 1.0).unwrap_err(),
            InferenceError::BadRank { ndim: 2 }
        );
        let wrong_c = Tensor::zeros(vec![5, 16, 32]);
        assert_eq!(
            downscale(&model, &norm, &wrong_c, None, 1.0).unwrap_err(),
            InferenceError::ChannelMismatch { got: 5, expected: 7 }
        );
        let ragged = Tensor::zeros(vec![7, 15, 32]);
        assert_eq!(
            downscale(&model, &norm, &ragged, None, 1.0).unwrap_err(),
            InferenceError::NotPatchAligned { h: 15, w: 32, patch: 2 }
        );
        // The messages are human-readable.
        let msg = InferenceError::ChannelMismatch { got: 5, expected: 7 }.to_string();
        assert!(msg.contains('5') && msg.contains('7'));
    }
}
