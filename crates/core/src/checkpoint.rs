//! Checkpointing: model save/load plus crash-consistent full trainer state.
//!
//! Two layers live here:
//!
//! * [`save_model`] / [`load_model`] — the portable model-only checkpoint
//!   (`config.json` + `params.json`), validated against the reference
//!   parameter layout (names *and* shapes) so a corrupt or mismatched
//!   checkpoint is a recoverable [`std::io::Error`], never a panic;
//! * [`TrainerCheckpoint`] with [`save_trainer_state`] /
//!   [`load_trainer_state`] — the full-state checkpoint the fault-tolerant
//!   trainer auto-saves: model config + parameters, Adam moments and step
//!   count, GradScaler state, the data cursor, and pending accumulated
//!   gradients, every tensor stored as raw IEEE-754 bit patterns so a
//!   resumed run is bit-identical to an uninterrupted one.
//!
//! ## On-disk container format (version 1)
//!
//! ```text
//! ORBIT2CKPT v1\n
//! section <name> <payload-bytes> <crc32-hex>\n
//! <payload>\n
//! ...one header+payload pair per section...
//! ```
//!
//! Every payload is JSON and carries its own CRC-32 (IEEE), checked before
//! the payload is parsed — a single flipped bit anywhere in a section is a
//! descriptive error, not undefined behaviour three layers later. The file
//! is written to a `*.tmp-<pid>` sibling and atomically renamed into place,
//! so a crash mid-write leaves the previous checkpoint intact.

use orbit2_autograd::optim::AdamState;
use orbit2_autograd::params::BitsMap;
use orbit2_autograd::scaler::ScalerState;
use orbit2_autograd::ParamStore;
use orbit2_model::{ModelConfig, ReslimModel};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{Error, ErrorKind, Result};
use std::path::Path;

/// Build an [`ErrorKind::InvalidData`] error with a descriptive message.
fn invalid(msg: impl Into<String>) -> Error {
    Error::new(ErrorKind::InvalidData, msg.into())
}

// ---------------------------------------------------------------------------
// Model-only checkpoints
// ---------------------------------------------------------------------------

/// Save a model checkpoint to `dir` (creates `config.json` + `params.json`).
pub fn save_model(model: &ReslimModel, dir: &Path) -> Result<()> {
    std::fs::create_dir_all(dir)?;
    let cfg_json = serde_json::to_string_pretty(&model.cfg).map_err(Error::other)?;
    std::fs::write(dir.join("config.json"), cfg_json)?;
    model.params.save(&dir.join("params.json"))
}

/// Load a model checkpoint from `dir`, validating the parameter set (names
/// and shapes) against a freshly-initialized reference layout. Any mismatch
/// is an [`ErrorKind::InvalidData`] error, never a panic.
pub fn load_model(dir: &Path) -> Result<ReslimModel> {
    let cfg_json = std::fs::read_to_string(dir.join("config.json"))?;
    let cfg: ModelConfig = serde_json::from_str(&cfg_json).map_err(Error::other)?;
    let params = ParamStore::load(&dir.join("params.json"))?;
    validate_layout(&params, cfg)?;
    Ok(ReslimModel { cfg, params })
}

/// Check `params` against the reference layout for `cfg`: every expected
/// parameter present with the expected shape, and nothing extra.
pub(crate) fn validate_layout(params: &ParamStore, cfg: ModelConfig) -> Result<()> {
    let reference = ReslimModel::new(cfg, 0);
    for (name, expect) in reference.params.iter() {
        let Some(got) = params.try_get(name) else {
            return Err(invalid(format!("checkpoint missing parameter `{name}`")));
        };
        if got.shape() != expect.shape() {
            return Err(invalid(format!(
                "checkpoint parameter `{name}` has shape {:?}, expected {:?}",
                got.shape(),
                expect.shape()
            )));
        }
    }
    for name in params.names() {
        if !reference.params.contains(&name) {
            return Err(invalid(format!(
                "checkpoint has parameter `{name}` unknown to this architecture"
            )));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Full trainer state
// ---------------------------------------------------------------------------

/// Magic string opening every trainer checkpoint file.
pub const CHECKPOINT_MAGIC: &str = "ORBIT2CKPT";
/// Current trainer checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Training progress counters captured alongside the weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProgressState {
    /// Micro-batch steps completed so far (`Trainer::train` resumes here).
    pub global_step: u64,
    /// Position of the data cursor in the training split.
    pub data_cursor: u64,
}

/// The complete, bit-exact state of a `Trainer` at a step boundary.
#[derive(Debug, Clone)]
pub struct TrainerCheckpoint {
    /// Model architecture configuration.
    pub model_cfg: ModelConfig,
    /// Model parameters (fp32 masters), bit-exact.
    pub params: BitsMap,
    /// Adam step count and first/second moments, bit-exact.
    pub adam: AdamState,
    /// Dynamic gradient scaler state.
    pub scaler: ScalerState,
    /// Step and data-cursor counters.
    pub progress: ProgressState,
    /// Accumulated micro-batch gradients awaiting an optimizer step
    /// (non-empty only when saved mid accumulation window).
    pub pending: Vec<BitsMap>,
}

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial), bitwise.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Render a checkpoint into the sectioned container format.
fn render_trainer_state(ckpt: &TrainerCheckpoint) -> Result<Vec<u8>> {
    fn json<T: Serialize>(label: &str, v: &T) -> Result<String> {
        serde_json::to_string(v).map_err(|e| invalid(format!("serializing section `{label}`: {e}")))
    }
    let sections: Vec<(&str, String)> = vec![
        ("config", json("config", &ckpt.model_cfg)?),
        ("params", json("params", &ckpt.params)?),
        ("adam", json("adam", &ckpt.adam)?),
        ("scaler", json("scaler", &ckpt.scaler)?),
        ("progress", json("progress", &ckpt.progress)?),
        ("pending", json("pending", &ckpt.pending)?),
    ];
    let mut out = format!("{CHECKPOINT_MAGIC} v{CHECKPOINT_VERSION}\n").into_bytes();
    for (name, payload) in sections {
        let bytes = payload.as_bytes();
        out.extend_from_slice(
            format!("section {name} {} {:08x}\n", bytes.len(), crc32(bytes)).as_bytes(),
        );
        out.extend_from_slice(bytes);
        out.push(b'\n');
    }
    Ok(out)
}

/// Save the full trainer state to `path`, crash-consistently: the bytes are
/// written to a unique temp sibling and renamed into place, so `path` always
/// holds either the previous complete checkpoint or the new one.
pub fn save_trainer_state(ckpt: &TrainerCheckpoint, path: &Path) -> Result<()> {
    let bytes = render_trainer_state(ckpt)?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| invalid(format!("checkpoint path {} has no file name", path.display())))?
        .to_string_lossy()
        .into_owned();
    let tmp = path.with_file_name(format!("{file_name}.tmp-{}", std::process::id()));
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Read one `section <name> <len> <crc>` header + payload starting at
/// `pos`; returns `(name, payload, next_pos)`.
fn parse_section(bytes: &[u8], pos: usize) -> Result<(String, Vec<u8>, usize)> {
    let line_end = bytes[pos..]
        .iter()
        .position(|&b| b == b'\n')
        .map(|i| pos + i)
        .ok_or_else(|| invalid("truncated checkpoint: unterminated section header"))?;
    let header = std::str::from_utf8(&bytes[pos..line_end])
        .map_err(|_| invalid("corrupt checkpoint: section header is not UTF-8"))?;
    let parts: Vec<&str> = header.split_whitespace().collect();
    let [kw, name, len, crc] = parts.as_slice() else {
        return Err(invalid(format!("corrupt checkpoint: malformed section header `{header}`")));
    };
    if *kw != "section" {
        return Err(invalid(format!("corrupt checkpoint: expected `section`, found `{kw}`")));
    }
    let len: usize = len
        .parse()
        .map_err(|_| invalid(format!("corrupt checkpoint: bad length in header `{header}`")))?;
    let expect_crc = u32::from_str_radix(crc, 16)
        .map_err(|_| invalid(format!("corrupt checkpoint: bad checksum in header `{header}`")))?;
    let start = line_end + 1;
    let end = start + len;
    if end + 1 > bytes.len() {
        return Err(invalid(format!(
            "truncated checkpoint: section `{name}` claims {len} bytes but only {} remain",
            bytes.len().saturating_sub(start)
        )));
    }
    if bytes[end] != b'\n' {
        return Err(invalid(format!(
            "corrupt checkpoint: section `{name}` payload is not newline-terminated"
        )));
    }
    let payload = &bytes[start..end];
    let got_crc = crc32(payload);
    if got_crc != expect_crc {
        return Err(invalid(format!(
            "CRC mismatch in section `{name}`: stored {expect_crc:08x}, computed {got_crc:08x}"
        )));
    }
    Ok((name.to_string(), payload.to_vec(), end + 1))
}

/// Load a full trainer state saved by [`save_trainer_state`]. Truncation, a
/// flipped byte, a missing section, or an unknown version each produce a
/// descriptive [`ErrorKind::InvalidData`] error.
pub fn load_trainer_state(path: &Path) -> Result<TrainerCheckpoint> {
    let bytes = std::fs::read(path)?;
    let first_nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| invalid("truncated checkpoint: missing header line"))?;
    let magic_line = std::str::from_utf8(&bytes[..first_nl])
        .map_err(|_| invalid("not an ORBIT2 checkpoint: header is not UTF-8"))?;
    let Some(version_str) = magic_line
        .strip_prefix(CHECKPOINT_MAGIC)
        .and_then(|rest| rest.trim().strip_prefix('v'))
    else {
        return Err(invalid(format!("not an ORBIT2 checkpoint: header `{magic_line}`")));
    };
    let version: u32 = version_str
        .parse()
        .map_err(|_| invalid(format!("not an ORBIT2 checkpoint: bad version `{version_str}`")))?;
    if version != CHECKPOINT_VERSION {
        return Err(invalid(format!(
            "unsupported checkpoint version {version} (this build reads version {CHECKPOINT_VERSION})"
        )));
    }

    let mut sections: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    let mut pos = first_nl + 1;
    while pos < bytes.len() {
        let (name, payload, next) = parse_section(&bytes, pos)?;
        sections.insert(name, payload);
        pos = next;
    }

    fn section<'a>(sections: &'a BTreeMap<String, Vec<u8>>, name: &str) -> Result<&'a str> {
        let payload = sections
            .get(name)
            .ok_or_else(|| invalid(format!("checkpoint missing section `{name}`")))?;
        std::str::from_utf8(payload)
            .map_err(|_| invalid(format!("section `{name}` payload is not UTF-8")))
    }
    fn parse<T: serde::Deserialize>(sections: &BTreeMap<String, Vec<u8>>, name: &str) -> Result<T> {
        serde_json::from_str(section(sections, name)?)
            .map_err(|e| invalid(format!("section `{name}` failed to parse: {e}")))
    }

    Ok(TrainerCheckpoint {
        model_cfg: parse(&sections, "config")?,
        params: parse(&sections, "params")?,
        adam: parse(&sections, "adam")?,
        scaler: parse(&sections, "scaler")?,
        progress: parse(&sections, "progress")?,
        pending: parse(&sections, "pending")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit2_model::ModelConfig;
    use orbit2_tensor::Tensor;

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("orbit2_ckpt_test");
        let model = ReslimModel::new(ModelConfig::tiny().with_channels(4, 3), 7);
        save_model(&model, &dir).unwrap();
        let loaded = load_model(&dir).unwrap();
        assert_eq!(loaded.cfg, model.cfg);
        assert_eq!(loaded.num_params(), model.num_params());
        loaded
            .params
            .get("xattn.wq")
            .assert_close(model.params.get("xattn.wq"), 0.0);
    }

    #[test]
    fn loaded_model_predicts_identically() {
        use orbit2_autograd::Tape;
        use orbit2_model::binder::Binder;
        use orbit2_tensor::random::randn;
        let dir = std::env::temp_dir().join("orbit2_ckpt_test2");
        let model = ReslimModel::new(ModelConfig::tiny().with_channels(4, 3), 8);
        save_model(&model, &dir).unwrap();
        let loaded = load_model(&dir).unwrap();
        let input = randn(&[4, 8, 8], 1);
        let run = |m: &ReslimModel| {
            let tape = Tape::new();
            let binder = Binder::new(&tape, &m.params);
            m.forward(&binder, &input, 1.0).0.value()
        };
        run(&model).assert_close(&run(&loaded), 0.0);
    }

    #[test]
    fn missing_parameter_is_an_error_not_a_panic() {
        let dir = std::env::temp_dir().join("orbit2_ckpt_missing_param");
        let model = ReslimModel::new(ModelConfig::tiny().with_channels(4, 3), 9);
        save_model(&model, &dir).unwrap();
        // Rewrite params.json with one parameter removed.
        let mut store = ParamStore::load(&dir.join("params.json")).unwrap();
        let mut pruned = ParamStore::new();
        for (name, t) in store.iter() {
            if name != "xattn.wq" {
                pruned.insert(name.clone(), t.clone());
            }
        }
        store = pruned;
        store.save(&dir.join("params.json")).unwrap();
        let err = match load_model(&dir) {
            Ok(_) => panic!("load_model must fail"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        assert!(err.to_string().contains("xattn.wq"), "unhelpful error: {err}");
    }

    #[test]
    fn wrong_parameter_shape_is_an_error_not_a_panic() {
        let dir = std::env::temp_dir().join("orbit2_ckpt_bad_shape");
        let model = ReslimModel::new(ModelConfig::tiny().with_channels(4, 3), 10);
        save_model(&model, &dir).unwrap();
        let mut store = ParamStore::load(&dir.join("params.json")).unwrap();
        store.insert("xattn.wq", Tensor::zeros(vec![2, 2]));
        store.save(&dir.join("params.json")).unwrap();
        let err = match load_model(&dir) {
            Ok(_) => panic!("load_model must fail"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        assert!(err.to_string().contains("shape"), "unhelpful error: {err}");
    }

    #[test]
    fn unknown_extra_parameter_is_an_error() {
        let dir = std::env::temp_dir().join("orbit2_ckpt_extra_param");
        let model = ReslimModel::new(ModelConfig::tiny().with_channels(4, 3), 11);
        save_model(&model, &dir).unwrap();
        let mut store = ParamStore::load(&dir.join("params.json")).unwrap();
        store.insert("rogue.weight", Tensor::zeros(vec![3]));
        store.save(&dir.join("params.json")).unwrap();
        let err = match load_model(&dir) {
            Ok(_) => panic!("load_model must fail"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("rogue.weight"), "unhelpful error: {err}");
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
