//! Model checkpointing: parameters plus configuration in JSON.

use orbit2_autograd::ParamStore;
use orbit2_model::{ModelConfig, ReslimModel};
use std::path::Path;

/// Save a model checkpoint to `dir` (creates `config.json` + `params.json`).
pub fn save_model(model: &ReslimModel, dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let cfg_json = serde_json::to_string_pretty(&model.cfg).map_err(std::io::Error::other)?;
    std::fs::write(dir.join("config.json"), cfg_json)?;
    model.params.save(&dir.join("params.json"))
}

/// Load a model checkpoint from `dir`.
pub fn load_model(dir: &Path) -> std::io::Result<ReslimModel> {
    let cfg_json = std::fs::read_to_string(dir.join("config.json"))?;
    let cfg: ModelConfig = serde_json::from_str(&cfg_json).map_err(std::io::Error::other)?;
    let params = ParamStore::load(&dir.join("params.json"))?;
    // Sanity: the parameter set must match a freshly-initialized layout.
    let reference = ReslimModel::new(cfg, 0);
    for name in reference.params.names() {
        assert!(params.contains(&name), "checkpoint missing parameter {name}");
    }
    Ok(ReslimModel { cfg, params })
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit2_model::ModelConfig;

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("orbit2_ckpt_test");
        let model = ReslimModel::new(ModelConfig::tiny().with_channels(4, 3), 7);
        save_model(&model, &dir).unwrap();
        let loaded = load_model(&dir).unwrap();
        assert_eq!(loaded.cfg, model.cfg);
        assert_eq!(loaded.num_params(), model.num_params());
        loaded
            .params
            .get("xattn.wq")
            .assert_close(model.params.get("xattn.wq"), 0.0);
    }

    #[test]
    fn loaded_model_predicts_identically() {
        use orbit2_autograd::Tape;
        use orbit2_model::binder::Binder;
        use orbit2_tensor::random::randn;
        let dir = std::env::temp_dir().join("orbit2_ckpt_test2");
        let model = ReslimModel::new(ModelConfig::tiny().with_channels(4, 3), 8);
        save_model(&model, &dir).unwrap();
        let loaded = load_model(&dir).unwrap();
        let input = randn(&[4, 8, 8], 1);
        let run = |m: &ReslimModel| {
            let tape = Tape::new();
            let binder = Binder::new(&tape, &m.params);
            m.forward(&binder, &input, 1.0).0.value()
        };
        run(&model).assert_close(&run(&loaded), 0.0);
    }
}
