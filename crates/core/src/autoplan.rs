//! Automatic parallelism planning: search the `DDP × TILES × FSDP × TP`
//! space for the fastest configuration that fits in memory on a given GPU
//! budget — the decision the paper's authors made by hand (Fig. 5) turned
//! into a planner.

use orbit2_cluster::topology::ClusterSpec;
use orbit2_parallel::{estimate_step, ParallelismPlan, ReslimCostModel, StepEstimate, WorkloadProfile};
use serde::{Deserialize, Serialize};

/// A scored candidate plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoredPlan {
    /// The parallelism decomposition.
    pub plan: ParallelismPlan,
    /// Its step estimate.
    pub estimate: StepEstimate,
}

/// Search all power-of-two decompositions of `gpus` into
/// `ddp x tiles x fsdp x tp` (tp bounded by the node size, tiles bounded by
/// `max_tiles`) and return the fitting plans sorted by per-sample time.
pub fn search_plans(
    workload: &WorkloadProfile,
    gpus: usize,
    max_tiles: usize,
    cluster: &ClusterSpec,
) -> Vec<ScoredPlan> {
    assert!(gpus >= 1);
    let cost = ReslimCostModel::new();
    let mut out = Vec::new();
    let mut tp = 1usize;
    while tp <= cluster.gpus_per_node && tp <= gpus {
        let mut fsdp = 1usize;
        while tp * fsdp <= gpus {
            let mut tiles = 1usize;
            while tp * fsdp * tiles <= gpus && tiles <= max_tiles {
                let ddp = gpus / (tp * fsdp * tiles);
                if ddp * tp * fsdp * tiles == gpus {
                    let plan = ParallelismPlan { ddp, tiles, fsdp, tensor_parallel: tp };
                    if plan.validate(cluster).is_ok() {
                        let est = estimate_step(&plan, workload, cluster, cost.halo_overhead(tiles));
                        if est.fits {
                            out.push(ScoredPlan { plan, estimate: est });
                        }
                    }
                }
                tiles *= 2;
            }
            fsdp *= 2;
        }
        tp *= 2;
    }
    out.sort_by(|a, b| {
        a.estimate
            .per_sample_s
            .partial_cmp(&b.estimate.per_sample_s)
            .expect("finite estimates")
    });
    out
}

/// The fastest fitting plan, if any.
pub fn best_plan(
    workload: &WorkloadProfile,
    gpus: usize,
    max_tiles: usize,
    cluster: &ClusterSpec,
) -> Option<ScoredPlan> {
    search_plans(workload, gpus, max_tiles, cluster).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::fig6_workload;
    use orbit2_model::ModelConfig;

    fn cluster() -> ClusterSpec {
        ClusterSpec::frontier()
    }

    #[test]
    fn small_model_prefers_pure_data_parallelism() {
        // A 9.5M model has no memory pressure: sharding only adds
        // communication, so the best plan should use no tensor parallelism
        // and no FSDP.
        let w = fig6_workload(&ModelConfig::paper_9_5m());
        let best = best_plan(&w, 64, 16, &cluster()).expect("some plan fits");
        assert_eq!(best.plan.tensor_parallel, 1, "{:?}", best.plan);
        assert_eq!(best.plan.fsdp, 1, "{:?}", best.plan);
        assert!(best.plan.ddp >= 4);
    }

    #[test]
    fn large_model_is_forced_to_shard() {
        // 10B cannot fit unsharded: every returned plan must shard.
        let w = fig6_workload(&ModelConfig::paper_10b());
        let plans = search_plans(&w, 512, 16, &cluster());
        assert!(!plans.is_empty(), "512 GPUs must host a 10B model somehow");
        for p in &plans {
            assert!(
                p.plan.tensor_parallel * p.plan.fsdp >= 4,
                "unsharded 10B plan slipped through: {:?}",
                p.plan
            );
        }
    }

    #[test]
    fn best_plan_is_actually_fastest_and_fits() {
        let w = fig6_workload(&ModelConfig::paper_126m());
        let plans = search_plans(&w, 128, 16, &cluster());
        assert!(plans.len() > 3, "search space should be non-trivial");
        for pair in plans.windows(2) {
            assert!(pair[0].estimate.per_sample_s <= pair[1].estimate.per_sample_s);
        }
        assert!(plans[0].estimate.fits);
    }

    #[test]
    fn all_plans_use_exactly_the_gpu_budget() {
        let w = fig6_workload(&ModelConfig::paper_126m());
        for p in search_plans(&w, 256, 16, &cluster()) {
            assert_eq!(p.plan.world_size(), 256);
        }
    }

    #[test]
    fn impossible_budget_returns_none() {
        // A 10B model on 1 GPU cannot fit at all.
        let w = fig6_workload(&ModelConfig::paper_10b());
        assert!(best_plan(&w, 1, 1, &cluster()).is_none());
    }

    #[test]
    fn quadratic_heavy_workload_wants_tiles() {
        // Blow up the attention share: a non-flash workload with a long
        // effective sequence makes tiling attractive enough that the best
        // plan tiles the sample.
        let mut w = fig6_workload(&ModelConfig::paper_9_5m());
        w.eff_seq = 500_000;
        w.flash_attention = false;
        // FLOPs proportional to the quadratic term now.
        w.flops_per_sample = 3.0 * 6.0 * 4.0 * (w.eff_seq as f64).powi(2) * 256.0;
        let best = best_plan(&w, 64, 16, &cluster()).expect("plan");
        assert!(best.plan.tiles > 1, "quadratic workload should tile: {:?}", best.plan);
    }
}
