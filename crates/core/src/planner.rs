//! The exascale run planner: drives the cluster simulator and parallelism
//! cost models to regenerate the paper's scaling results for hardware
//! configurations far beyond this machine (up to 32,768 GPUs).
//!
//! * [`max_sequence_row`] reproduces Table III (maximum sequence length per
//!   architecture / model size / compression / tiles / GPU count),
//! * [`strong_scaling_series`] reproduces Fig. 6(b) (per-sample time,
//!   strong-scaling efficiency and sustained throughput),
//! * [`arch_comparison`] reproduces the performance half of Table II(a).

use orbit2_cluster::memory::TrainingMemoryModel;
use orbit2_cluster::roofline::GpuEfficiency;
use orbit2_cluster::topology::ClusterSpec;
use orbit2_model::profiler::{ModelProfile, SequenceAccounting};
use orbit2_model::ModelConfig;
use orbit2_parallel::{ParallelismPlan, ReslimCostModel, WorkloadProfile};
use serde::{Deserialize, Serialize};

/// Which architecture a row describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Arch {
    /// Upsample-first baseline ViT (quadratic attention at full output
    /// resolution, no flash benefit for the score matrices).
    BaselineVit,
    /// Reslim (channel aggregation, low-res operation, optional adaptive
    /// compression, flash attention).
    Reslim,
}

/// One row of Table III.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeqLenRow {
    /// Architecture.
    pub arch: Arch,
    /// Model parameter count (paper configuration).
    pub params: u64,
    /// Adaptive compression ratio.
    pub compression: usize,
    /// TILES tiles per sample.
    pub tiles: usize,
    /// GPU count.
    pub gpus: usize,
    /// Maximum nominal sequence length (output tokens, `H·W·C/4`).
    pub max_seq: u64,
    /// Output field shape `[H, W, C]` at that sequence length.
    pub out_shape: [usize; 3],
    /// Implied global resolution in km.
    pub resolution_km: f64,
    /// True when even the smallest workload OOMs.
    pub oom: bool,
}

/// Output channel count of the Table III experiments.
const TABLE3_CHANNELS: usize = 18;
/// Effective-sequence reduction from operating at input (not output)
/// resolution: `factor^2` with the universal 4x refinement.
const LOWRES_REDUCTION: usize = 16;
/// Earth's circumference (km) for resolution conversion.
const EARTH_CIRCUMFERENCE_KM: f64 = 40_075.0;
/// Sub-linear exponent for sequence capacity growth beyond the 8-GPU base.
///
/// Fitting the paper's Table III pairs (298M -> 466M over 8 -> 32 GPUs;
/// 1.1B -> 4.2B over 8 -> 128; 74M -> 671M over 8 -> 512) gives exponents
/// of 0.32-0.53; we use the midpoint. Sub-linearity reflects
/// sequence-parallel all-gather buffers eating part of each added GPU.
const SEQ_SHARD_ALPHA: f64 = 0.45;

/// Minimal sharding (tensor-parallel, FSDP) for a model's static memory to
/// fit; mirrors how the paper pairs TP within a node with FSDP across it.
pub fn minimal_sharding(params: u64, cluster: &ClusterSpec, gpus: usize) -> (usize, usize) {
    let cfg_layers = 11usize; // conservative (deepest paper config)
    for shard in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let tp = shard.min(cluster.gpus_per_node);
        let fsdp = shard / tp.min(shard).max(1);
        let fsdp = fsdp.max(1);
        if tp * fsdp > gpus {
            break;
        }
        let m = TrainingMemoryModel::new(params, cfg_layers, 8192, 32).with_sharding(tp, fsdp);
        if m.step_memory(1, 1, 1).fits(&cluster.gpu) {
            return (tp, fsdp);
        }
    }
    (cluster.gpus_per_node, (gpus / cluster.gpus_per_node).max(1))
}

/// Compute one Table III row: the largest output field (and nominal
/// sequence length) that fits on the given configuration.
pub fn max_sequence_row(
    cfg: &ModelConfig,
    arch: Arch,
    compression: usize,
    tiles: usize,
    gpus: usize,
    cluster: &ClusterSpec,
) -> SeqLenRow {
    let params = cfg.param_count();
    let (tp, fsdp) = match arch {
        Arch::BaselineVit => (1, 1),
        Arch::Reslim => minimal_sharding(params, cluster, gpus),
    };
    let mem = TrainingMemoryModel::new(params, cfg.layers, cfg.embed_dim, cfg.heads)
        .with_sharding(tp, fsdp)
        .with_flash(matches!(arch, Arch::Reslim));

    // Staging ratios per *effective* token.
    let c = TABLE3_CHANNELS as f64;
    let (out_per_token, in_per_token, token_expansion) = match arch {
        // Baseline: ViT sequence == nominal tokens; stages 4 output pixels
        // per token (patch area), input upsampled to output size.
        Arch::BaselineVit => (4.0, 4.0, 1.0),
        // Reslim: one effective token stands for channel-aggregation x
        // low-res x compression nominal tokens; staging scales accordingly.
        Arch::Reslim => {
            let expand = c * LOWRES_REDUCTION as f64 * compression as f64;
            (4.0 * expand, 4.0 * expand / 16.0, expand)
        }
    };
    let per_gpu = mem.max_seq_per_gpu(&cluster.gpu, out_per_token, in_per_token);
    if per_gpu == 0 {
        return SeqLenRow {
            arch,
            params,
            compression,
            tiles,
            gpus,
            max_seq: 0,
            out_shape: [0, 0, TABLE3_CHANNELS],
            resolution_km: f64::INFINITY,
            oom: true,
        };
    }

    // Capacity model calibrated on the paper's own Table III ratios: at the
    // 8-GPU base, total sequence capacity equals one GPU's budget (the
    // sequence-parallel group's gather buffers absorb the rest); beyond 8
    // GPUs capacity grows sub-linearly. Tiles partition the *compute*, not
    // the resident sequence — the paper's tiled rows gain only the
    // compression factor in capacity (1.1B / 298M ~ 4x with 4x compression).
    let shard_mult = if matches!(arch, Arch::Reslim) && gpus > 8 {
        (gpus as f64 / 8.0).powf(SEQ_SHARD_ALPHA)
    } else {
        1.0
    };
    let eff_total = per_gpu as f64 * shard_mult;
    let nominal = (eff_total * token_expansion) as u64;

    // Output geometry: nominal = H*W*C/4 with W = 2H (global 2:1 grid).
    let h = ((nominal as f64 * 4.0 / (2.0 * c)).sqrt()).floor() as usize;
    let h = (h / 8).max(1) * 8; // round to a tile-friendly multiple
    let w = 2 * h;
    let max_seq = (h * w) as u64 * TABLE3_CHANNELS as u64 / 4;
    SeqLenRow {
        arch,
        params,
        compression,
        tiles,
        gpus,
        max_seq,
        out_shape: [h, w, TABLE3_CHANNELS],
        resolution_km: EARTH_CIRCUMFERENCE_KM / w as f64,
        oom: false,
    }
}

/// One point of the Fig. 6(b) strong-scaling study.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Node count (8 GPUs per node).
    pub nodes: usize,
    /// GPU count.
    pub gpus: usize,
    /// Seconds per hourly sample.
    pub per_sample_s: f64,
    /// Strong-scaling efficiency vs the 512-GPU baseline.
    pub efficiency: f64,
    /// Sustained throughput in FLOP/s.
    pub sustained_flops: f64,
}

/// Workload of the Fig. 6 experiments: the ERA5 112 -> 28 km task.
pub fn fig6_workload(cfg: &ModelConfig) -> WorkloadProfile {
    let acc = SequenceAccounting { out_h: 720, out_w: 1440, out_c: 3, patch: 2, factor: 4 };
    let profile = ModelProfile::of(cfg);
    let eff_seq = acc.reslim_effective_seq(1.0);
    WorkloadProfile {
        params: profile.params,
        layers: cfg.layers,
        embed_dim: cfg.embed_dim,
        heads: cfg.heads,
        eff_seq,
        flops_per_sample: profile.train_flops(eff_seq),
        out_elems: 720 * 1440 * 3,
        in_elems: 180 * 360 * 23,
        flash_attention: true,
    }
}

/// Strong-scaling series for a model configuration over the given GPU
/// counts (paper: 512 / 2048 / 8192 / 32768 = 64..4096 nodes).
pub fn strong_scaling_series(cfg: &ModelConfig, gpu_counts: &[usize], cluster: &ClusterSpec) -> Vec<ScalingPoint> {
    let workload = fig6_workload(cfg);
    let (tp, fsdp) = minimal_sharding(workload.params, cluster, gpu_counts[0]);
    let tiles = 2usize;
    let base = ParallelismPlan { ddp: 1, tiles, fsdp, tensor_parallel: tp };
    let halo = ReslimCostModel::new().halo_overhead(tiles);
    // FLOPs actually executed per sample (constant across the sweep: only
    // the DDP degree changes).
    let executed = orbit2_parallel::estimate_step(&base, &workload, cluster, halo).executed_flops_per_sample;
    let series = orbit2_parallel::estimate::strong_scaling(&base, &workload, cluster, halo, gpu_counts);
    series
        .into_iter()
        .map(|(gpus, per_sample_s, efficiency)| ScalingPoint {
            nodes: gpus / cluster.gpus_per_node,
            gpus,
            per_sample_s,
            efficiency,
            sustained_flops: executed / per_sample_s,
        })
        .collect()
}

/// Performance half of Table II(a): per-sample time of the baseline ViT vs
/// Reslim on `gpus` GPUs for a given output geometry. Returns
/// `(vit_time, vit_oom, reslim_time, speedup)`.
pub fn arch_comparison(
    cfg: &ModelConfig,
    acc: &SequenceAccounting,
    gpus: usize,
    cluster: &ClusterSpec,
) -> (f64, bool, f64, f64) {
    let profile = ModelProfile::of(cfg);
    let eff = GpuEfficiency::for_model_size(profile.params);

    // Baseline ViT: full nominal sequence, quadratic attention memory.
    let vit_seq = acc.nominal_seq_len();
    let vit_mem = TrainingMemoryModel::new(profile.params, cfg.layers, cfg.embed_dim, cfg.heads)
        .with_flash(false);
    let vit_oom = !vit_mem
        .step_memory(vit_seq, vit_seq * 4, vit_seq * 4)
        .fits(&cluster.gpu);
    let vit_flops = profile.train_flops(vit_seq);
    let vit_time = vit_flops / (cluster.gpu.peak_bf16_flops * eff.mfu) / gpus as f64;

    // Reslim: effective sequence (aggregated + low-res).
    let reslim_seq = acc.reslim_effective_seq(1.0);
    let reslim_flops = profile.train_flops(reslim_seq);
    let reslim_time = (reslim_flops / (cluster.gpu.peak_bf16_flops * eff.mfu) + eff.step_overhead)
        / gpus as f64;
    (vit_time, vit_oom, reslim_time, vit_time / reslim_time)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> ClusterSpec {
        ClusterSpec::frontier()
    }

    #[test]
    fn table3_vit_rows() {
        let c = cluster();
        // 9.5M ViT caps at a modest sequence length.
        let vit = max_sequence_row(&ModelConfig::paper_9_5m(), Arch::BaselineVit, 1, 1, 8, &c);
        assert!(!vit.oom);
        assert!(vit.max_seq > 5_000 && vit.max_seq < 500_000, "ViT max seq {}", vit.max_seq);
        // 10B ViT OOMs outright (paper Table III row 2).
        let vit10b = max_sequence_row(&ModelConfig::paper_10b(), Arch::BaselineVit, 1, 1, 8, &c);
        assert!(vit10b.oom);
        assert_eq!(vit10b.max_seq, 0);
    }

    #[test]
    fn table3_reslim_beats_vit_by_orders_of_magnitude() {
        let c = cluster();
        let vit = max_sequence_row(&ModelConfig::paper_9_5m(), Arch::BaselineVit, 1, 1, 8, &c);
        let reslim = max_sequence_row(&ModelConfig::paper_9_5m(), Arch::Reslim, 1, 1, 8, &c);
        assert!(
            reslim.max_seq > vit.max_seq * 1000,
            "Reslim {} vs ViT {}",
            reslim.max_seq,
            vit.max_seq
        );
        // Hundreds of millions of tokens at 8 GPUs (paper: 298M).
        assert!(reslim.max_seq > 50_000_000, "{}", reslim.max_seq);
        // Kilometre-scale global resolution (paper: 3.5 km).
        assert!(reslim.resolution_km < 20.0, "{} km", reslim.resolution_km);
    }

    #[test]
    fn table3_growth_with_gpus_tiles_compression() {
        let c = cluster();
        let cfg = ModelConfig::paper_9_5m();
        let base = max_sequence_row(&cfg, Arch::Reslim, 1, 1, 8, &c);
        let more_gpus = max_sequence_row(&cfg, Arch::Reslim, 1, 1, 32, &c);
        assert!(more_gpus.max_seq > base.max_seq, "more GPUs must extend the sequence");
        // Sub-linear: 4x GPUs must not give 4x tokens (paper: 298M -> 466M).
        assert!((more_gpus.max_seq as f64) < base.max_seq as f64 * 2.5);
        let tiled = max_sequence_row(&cfg, Arch::Reslim, 4, 16, 8, &c);
        assert!(tiled.max_seq > base.max_seq, "tiles + compression must extend the sequence");
        let biggest = max_sequence_row(&cfg, Arch::Reslim, 4, 16, 128, &c);
        assert!(biggest.max_seq > tiled.max_seq);
        // Paper's flagship: 4.2B tokens / 0.9 km at 128 GPUs. Assert the
        // same order of magnitude and sub-2-km resolution.
        assert!(biggest.max_seq > 1_000_000_000, "{}", biggest.max_seq);
        assert!(biggest.resolution_km < 2.0, "{} km", biggest.resolution_km);
    }

    #[test]
    fn table3_10b_reslim_scales_too() {
        let c = cluster();
        let cfg = ModelConfig::paper_10b();
        let base = max_sequence_row(&cfg, Arch::Reslim, 1, 1, 8, &c);
        assert!(!base.oom, "sharded 10B Reslim must fit");
        let big = max_sequence_row(&cfg, Arch::Reslim, 4, 16, 512, &c);
        assert!(big.max_seq > base.max_seq * 10);
        // 10B capacity stays below the 9.5M model's (paper: 671M vs 4.2B).
        let small_model = max_sequence_row(&ModelConfig::paper_9_5m(), Arch::Reslim, 4, 16, 512, &c);
        assert!(big.max_seq < small_model.max_seq);
    }

    #[test]
    fn fig6b_efficiency_band() {
        let c = cluster();
        for cfg in [
            ModelConfig::paper_9_5m(),
            ModelConfig::paper_126m(),
            ModelConfig::paper_1b(),
            ModelConfig::paper_10b(),
        ] {
            let series = strong_scaling_series(&cfg, &[512, 2048, 8192, 32_768], &c);
            assert_eq!(series.len(), 4);
            assert_eq!(series[0].efficiency, 1.0);
            for p in &series[1..] {
                assert!(
                    p.efficiency > 0.80 && p.efficiency <= 1.001,
                    "{} params, {} GPUs: efficiency {}",
                    cfg.param_count(),
                    p.gpus,
                    p.efficiency
                );
            }
        }
    }

    #[test]
    fn fig6b_throughput_ordering_matches_paper() {
        // At 32,768 GPUs: 9.5M ~ 363 PF; 10B ~ 1.8 EF.
        let c = cluster();
        let small = strong_scaling_series(&ModelConfig::paper_9_5m(), &[512, 32_768], &c);
        let big = strong_scaling_series(&ModelConfig::paper_10b(), &[512, 32_768], &c);
        let sf = small.last().unwrap().sustained_flops * 32_768.0 / 1.0; // per-sample basis
        let bf = big.last().unwrap().sustained_flops * 32_768.0;
        assert!(bf > sf, "larger model must sustain more FLOP/s");
    }

    #[test]
    fn table2a_speedup_in_paper_regime() {
        // 622 -> 156 km: paper reports a 660x Reslim speedup.
        let c = cluster();
        let acc = SequenceAccounting { out_h: 128, out_w: 256, out_c: 3, patch: 2, factor: 4 };
        let (vit_t, vit_oom, reslim_t, speedup) =
            arch_comparison(&ModelConfig::paper_9_5m(), &acc, 128, &c);
        assert!(!vit_oom, "24K tokens fit");
        assert!(vit_t > reslim_t);
        assert!(speedup > 200.0 && speedup < 2000.0, "speedup {speedup} (paper: 660)");
        // 112 -> 28 km: ViT OOMs (paper row 3).
        let acc2 = SequenceAccounting { out_h: 720, out_w: 1440, out_c: 3, patch: 2, factor: 4 };
        let (_, oom2, reslim_t2, _) = arch_comparison(&ModelConfig::paper_9_5m(), &acc2, 128, &c);
        assert!(oom2, "777K-token ViT must OOM");
        assert!(reslim_t2.is_finite() && reslim_t2 > 0.0);
    }

    #[test]
    fn minimal_sharding_scales_with_model() {
        let c = cluster();
        let (tp_s, fsdp_s) = minimal_sharding(9_500_000, &c, 8);
        assert_eq!((tp_s, fsdp_s), (1, 1));
        let (tp_b, fsdp_b) = minimal_sharding(10_000_000_000, &c, 512);
        assert!(tp_b * fsdp_b >= 4, "10B needs real sharding, got {tp_b}x{fsdp_b}");
        assert!(tp_b <= c.gpus_per_node);
    }
}
