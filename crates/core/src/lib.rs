//! # orbit2
//!
//! The public API of the ORBIT-2 reproduction, tying the model, data,
//! imaging, parallelism and cluster crates together:
//!
//! * [`tiling`] — multi-channel TILES splitting/stitching (halo-padded
//!   tiles over `[C, H, W]` stacks);
//! * [`trainer`] — the TILES-parallel training loop: every tile builds its
//!   own gradient tape on its own thread (standing in for its own GPU),
//!   gradients are averaged once per batch (the paper's single all-reduce),
//!   with emulated-BF16 mixed precision and dynamic gradient scaling;
//! * [`inference`] — halo-padded tiled inference with core stitching;
//! * [`eval`] — evaluation of a trained model against a dataset split,
//!   producing the paper's Table IV metric rows per variable;
//! * [`fault`] — deterministic fault injection ([`FaultPlan`]) and the
//!   fault/skip vocabulary used by the trainer's elastic recovery;
//! * [`checkpoint`] — model save/load plus crash-consistent full-state
//!   trainer checkpoints (versioned, per-section CRC, atomic rename);
//! * [`serving`] — wire types of the serving layer: requests, responses
//!   and the typed [`ServeError`] vocabulary of the `orbit2-serve`
//!   newline-delimited JSON protocol;
//! * [`planner`] — the exascale run planner: drives the cluster simulator
//!   and parallelism cost models to regenerate the paper's scaling results
//!   (Tables II/III, Fig. 6) for configurations far beyond this machine.

pub mod autoplan;
pub mod checkpoint;
pub mod eval;
pub mod fault;
pub mod inference;
pub mod planner;
pub mod serving;
pub mod tiling;
pub mod trainer;

pub use autoplan::{best_plan, search_plans, ScoredPlan};
pub use checkpoint::{
    load_model, load_trainer_state, save_model, save_trainer_state, TrainerCheckpoint,
};
pub use eval::{evaluate_model, evaluate_model_at, evaluate_model_with, VariableReport};
pub use fault::{FaultAction, FaultEvent, FaultKind, FaultPlan, SkipReason};
pub use inference::{downscale, downscale_with, validate_input, InferenceError};
pub use planner::{max_sequence_row, strong_scaling_series, ScalingPoint, SeqLenRow};
pub use serving::{RequestSource, ServeError, ServeRequest, ServeResponse, ServeStats, WireError};
pub use trainer::{TrainReport, Trainer, TrainerConfig};
