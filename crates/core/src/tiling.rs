//! Multi-channel TILES geometry: split `[C, H, W]` stacks into halo-padded
//! tiles and stitch prediction tiles back, discarding halos.

use orbit2_imaging::tiles::{split_into_tiles, stitch_tiles, TileGeometry, TileSpec};
use orbit2_tensor::Tensor;

/// One tile of a multi-channel sample.
#[derive(Debug, Clone)]
pub struct SampleTile {
    /// Geometry in *input* (coarse) coordinates.
    pub geom: TileGeometry,
    /// Padded input tile `[C_in, ph, pw]`.
    pub input: Tensor,
    /// Padded target tile `[C_out, ph*factor, pw*factor]` (when a target
    /// stack was supplied).
    pub target: Option<Tensor>,
}

/// Split a `[C, H, W]` stack into halo-padded tiles, channel-consistently.
pub fn split_stack(stack: &Tensor, spec: TileSpec) -> Vec<(TileGeometry, Tensor)> {
    assert_eq!(stack.ndim(), 3, "expected [C, H, W]");
    let (c, h, w) = (stack.shape()[0], stack.shape()[1], stack.shape()[2]);
    let mut per_channel: Vec<Vec<(TileGeometry, Vec<f32>)>> = Vec::with_capacity(c);
    for ci in 0..c {
        let plane = &stack.data()[ci * h * w..(ci + 1) * h * w];
        per_channel.push(split_into_tiles(plane, h, w, spec));
    }
    let n_tiles = per_channel[0].len();
    (0..n_tiles)
        .map(|t| {
            let geom = per_channel[0][t].0;
            let (ph, pw) = (geom.padded_h(), geom.padded_w());
            let mut data = Vec::with_capacity(c * ph * pw);
            for chan in &per_channel {
                debug_assert_eq!(chan[t].0, geom);
                data.extend_from_slice(&chan[t].1);
            }
            (geom, Tensor::from_vec(vec![c, ph, pw], data))
        })
        .collect()
}

/// Build paired input/target tiles for training: the target tile covers the
/// same region scaled by `factor`.
pub fn split_sample(input: &Tensor, target: Option<&Tensor>, spec: TileSpec, factor: usize) -> Vec<SampleTile> {
    let input_tiles = split_stack(input, spec);
    let target_tiles = target.map(|t| split_stack(t, TileSpec { halo: spec.halo * factor, ..spec }));
    if let (Some(tt), Some(t)) = (&target_tiles, target) {
        assert_eq!(t.shape()[1], input.shape()[1] * factor, "target height must be input * factor");
        assert_eq!(tt.len(), input_tiles.len());
    }
    input_tiles
        .into_iter()
        .enumerate()
        .map(|(i, (geom, inp))| SampleTile {
            geom,
            input: inp,
            target: target_tiles.as_ref().map(|tt| tt[i].1.clone()),
        })
        .collect()
}

/// Stitch per-tile predictions `[C_out, (core+2*halo)*factor, ...]` back to
/// a `[C_out, H*factor, W*factor]` stack, discarding halos.
pub fn stitch_predictions(
    tiles: &[(TileGeometry, Tensor)],
    in_h: usize,
    in_w: usize,
    factor: usize,
) -> Tensor {
    assert!(!tiles.is_empty());
    let c = tiles[0].1.shape()[0];
    let (oh, ow) = (in_h * factor, in_w * factor);
    let mut channels: Vec<Tensor> = Vec::with_capacity(c);
    for ci in 0..c {
        let per_tile: Vec<(TileGeometry, Vec<f32>)> = tiles
            .iter()
            .map(|(geom, pred)| {
                let sg = geom.scaled(factor);
                let (ph, pw) = (sg.padded_h(), sg.padded_w());
                let plane = pred.slice_axis(0, ci, 1).into_vec();
                assert_eq!(plane.len(), ph * pw, "prediction tile does not match scaled geometry");
                (sg, plane)
            })
            .collect();
        let full = stitch_tiles(&per_tile, oh, ow);
        channels.push(Tensor::from_vec(vec![1, oh, ow], full));
    }
    let refs: Vec<&Tensor> = channels.iter().collect();
    Tensor::concat(&refs, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit2_tensor::random::randn;

    #[test]
    fn split_stack_channel_consistency() {
        let stack = randn(&[3, 8, 12], 1);
        let tiles = split_stack(&stack, TileSpec { tiles_y: 2, tiles_x: 2, halo: 1 });
        assert_eq!(tiles.len(), 4);
        for (geom, t) in &tiles {
            assert_eq!(t.shape(), &[3, geom.padded_h(), geom.padded_w()]);
        }
        // The core of tile 0, channel 2 equals the original region.
        let (g, t) = &tiles[0];
        let core_val = t.at(&[2, g.halo, g.halo]);
        assert_eq!(core_val, stack.at(&[2, 0, 0]));
    }

    #[test]
    fn split_stitch_identity_through_factor() {
        // Upscale each tile by replicating pixels (a fake 2x "model"), then
        // stitch; equals nearest-neighbour upscale of the whole field.
        let stack = randn(&[2, 6, 8], 2);
        let spec = TileSpec { tiles_y: 2, tiles_x: 2, halo: 1 };
        let factor = 2;
        let tiles = split_stack(&stack, spec);
        let preds: Vec<(TileGeometry, Tensor)> = tiles
            .iter()
            .map(|(g, t)| {
                let up = orbit2_tensor::resize::resize(
                    t,
                    t.shape()[1] * factor,
                    t.shape()[2] * factor,
                    orbit2_tensor::resize::ResizeMode::Nearest,
                );
                (*g, up)
            })
            .collect();
        let full = stitch_predictions(&preds, 6, 8, factor);
        let expect = orbit2_tensor::resize::resize(&stack, 12, 16, orbit2_tensor::resize::ResizeMode::Nearest);
        full.assert_close(&expect, 1e-6);
    }

    #[test]
    fn split_sample_pairs_input_and_target() {
        let input = randn(&[3, 8, 8], 3);
        let target = randn(&[2, 32, 32], 4);
        let tiles = split_sample(&input, Some(&target), TileSpec { tiles_y: 2, tiles_x: 2, halo: 1 }, 4);
        assert_eq!(tiles.len(), 4);
        for t in &tiles {
            let tgt = t.target.as_ref().unwrap();
            assert_eq!(tgt.shape()[1], t.input.shape()[1] * 4);
            assert_eq!(tgt.shape()[2], t.input.shape()[2] * 4);
        }
    }

    #[test]
    fn single_tile_roundtrip() {
        let input = randn(&[1, 4, 4], 5);
        let tiles = split_sample(&input, None, TileSpec { tiles_y: 1, tiles_x: 1, halo: 0 }, 4);
        assert_eq!(tiles.len(), 1);
        tiles[0].input.assert_close(&input, 0.0);
    }
}
