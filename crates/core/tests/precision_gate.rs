//! The reduced-precision quality gate: a model served at bf16 or int8
//! weights — or with bf16 *activations* streaming through the session —
//! must score the same Table IV metrics as the f32 session within tight
//! tolerances, on every output variable.
//!
//! The model is trained briefly first so the metrics sit in their sane
//! operating range (an untrained model's R² hovers around zero where a tiny
//! absolute delta would be meaningless next to the paper's 0.9+ regime).
//! `scripts/ci.sh` runs this test on every pipeline, in both SIMD modes.

use orbit2::eval::{evaluate_model, evaluate_model_at, evaluate_model_with};
use orbit2::trainer::{Trainer, TrainerConfig};
use orbit2_climate::{DownscalingDataset, LatLonGrid, Split, VariableSet};
use orbit2_model::{ModelConfig, ReslimModel, SessionActivation, SessionPrecision};

/// R² tolerance for both reduced precisions. bf16 carries 8 mantissa bits
/// (relative step ~2^-8 ≈ 4e-3); int8 per-channel quantization lands in the
/// same error band because each channel uses its full code range.
const R2_TOL: f64 = 0.02;
/// SSIM is a [0, 1] structural score; weight rounding perturbs it less than
/// pointwise errors perturb R².
const SSIM_TOL: f64 = 0.02;

#[test]
fn reduced_precision_sessions_stay_within_tolerance() {
    let ds = DownscalingDataset::new(
        LatLonGrid::conus(16, 32),
        VariableSet::daymet_like(),
        4,
        14,
        21,
    );
    let model = ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 5);
    let cfg = TrainerConfig { steps: 12, lr: 2e-3, log_every: 100, ..TrainerConfig::default() };
    let mut trainer = Trainer::new(model, &ds, cfg);
    trainer.train(&ds);

    let (model, norm) = (trainer.model(), trainer.normalizer());
    let test_idx = ds.indices(Split::Test);
    let base = evaluate_model(model, norm, &ds, &test_idx, None, 1.0).unwrap();
    // Weight-precision rows (activations stay f32) plus activation-precision
    // rows: bf16 activations over f32 weights, and the fully reduced
    // bf16-weights × bf16-activations cell the serving fast path uses.
    let cells = [
        (SessionPrecision::Bf16, SessionActivation::F32),
        (SessionPrecision::Int8, SessionActivation::F32),
        (SessionPrecision::F32, SessionActivation::Bf16),
        (SessionPrecision::Bf16, SessionActivation::Bf16),
    ];
    for (precision, activation) in cells {
        let reduced =
            evaluate_model_with(model, norm, &ds, &test_idx, None, 1.0, precision, activation)
                .unwrap();
        assert_eq!(reduced.len(), base.len());
        for (b, r) in base.iter().zip(&reduced) {
            assert_eq!(b.name, r.name);
            let delta = b.report.delta(&r.report);
            assert!(
                delta.within(R2_TOL, SSIM_TOL),
                "w={:?} a={:?} {}: f32 r2={:.4} ssim={:.4} vs {:.4}/{:.4} (delta r2={:.2e} ssim={:.2e})",
                precision,
                activation,
                b.name,
                b.report.r2,
                b.report.ssim,
                r.report.r2,
                r.report.ssim,
                delta.r2,
                delta.ssim,
            );
        }
    }
}

#[test]
fn f32_precision_variant_is_bit_identical_to_default() {
    let ds = DownscalingDataset::new(
        LatLonGrid::conus(16, 32),
        VariableSet::daymet_like(),
        4,
        6,
        3,
    );
    let model = ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 9);
    let norm = orbit2_climate::Normalizer::fit(&ds, 4);
    let idx = ds.indices(Split::Test);
    let a = evaluate_model(&model, &norm, &ds, &idx, None, 1.0).unwrap();
    let b = evaluate_model_at(&model, &norm, &ds, &idx, None, 1.0, SessionPrecision::F32).unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.report, y.report);
    }
}
