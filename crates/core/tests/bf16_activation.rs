//! End-to-end properties of the bf16 activation datapath: a session
//! streaming bf16 activations must predict close to the f32 session, for
//! whole-sample and tiled inference, on both model families. Runs in both
//! SIMD modes via `scripts/ci.sh` (the bf16 kernels are single-code-path,
//! so these tolerances hold identically under `ORBIT2_DISABLE_SIMD=1`).

use orbit2::inference::downscale_with;
use orbit2_climate::{DownscalingDataset, LatLonGrid, Normalizer, VariableSet};
use orbit2_imaging::tiles::TileSpec;
use orbit2_model::{
    BaselineVit, InferenceSession, ModelConfig, ReslimModel, SessionActivation, SessionPrecision,
};
use orbit2_tensor::Tensor;

fn setup() -> (ReslimModel, Normalizer, DownscalingDataset) {
    let ds = DownscalingDataset::new(
        LatLonGrid::conus(16, 32),
        VariableSet::daymet_like(),
        4,
        8,
        7,
    );
    let model = ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 13);
    let norm = Normalizer::fit(&ds, 4);
    (model, norm, ds)
}

fn rel_diff(a: &Tensor, b: &Tensor) -> f32 {
    let denom = a.map(|x| x.abs()).mean().max(1e-3);
    a.sub(b).map(|x| x.abs()).mean() / denom
}

/// Per-op bf16 rounding is ~2^-9 relative per op; through a tiny untrained
/// network the accumulated drift stays well under a percent of signal.
const REL_TOL: f32 = 0.02;

#[test]
fn reslim_bf16_activations_close_to_f32_whole_and_tiled() {
    let (model, norm, ds) = setup();
    let s = ds.sample(1);
    for weights in [SessionPrecision::F32, SessionPrecision::Bf16] {
        let f32_sess = model.session_at(weights);
        let bf16_sess = model.session_with(weights, SessionActivation::Bf16);
        for spec in [None, Some(TileSpec { tiles_y: 2, tiles_x: 2, halo: 2 })] {
            let base = downscale_with(&model, &f32_sess, &norm, &s.input, spec, 1.0).unwrap();
            let red = downscale_with(&model, &bf16_sess, &norm, &s.input, spec, 1.0).unwrap();
            assert_eq!(base.shape(), red.shape());
            let rel = rel_diff(&base, &red);
            assert!(
                rel < REL_TOL,
                "w={weights:?} tiled={}: bf16-act deviates {rel} relative",
                spec.is_some()
            );
        }
    }
}

#[test]
fn reslim_bf16_activations_deterministic() {
    // Same session, same input -> same bytes (the narrowed datapath must be
    // as deterministic as the f32 one).
    let (model, norm, ds) = setup();
    let s = ds.sample(2);
    let sess = model.session_with(SessionPrecision::Bf16, SessionActivation::Bf16);
    let a = downscale_with(&model, &sess, &norm, &s.input, None, 1.0).unwrap();
    let b = downscale_with(&model, &sess, &norm, &s.input, None, 1.0).unwrap();
    assert_eq!(a.data(), b.data());
}

#[test]
fn baseline_bf16_activations_close_to_f32() {
    let model = BaselineVit::new(ModelConfig::tiny().with_channels(5, 3), 23);
    let input = orbit2_tensor::random::randn(&[5, 8, 16], 3);
    let f32_sess = model.session();
    let bf16_sess = model.session_with(SessionPrecision::F32, SessionActivation::Bf16);
    let base = model.forward(&f32_sess, &input).into_tensor();
    let red = model.forward(&bf16_sess, &input).into_tensor();
    assert_eq!(base.shape(), red.shape());
    let rel = rel_diff(&base, &red);
    assert!(rel < REL_TOL, "baseline bf16-act deviates {rel} relative");
}

#[test]
fn f32_activation_session_is_bit_identical_to_default() {
    // The activation knob at F32 must be a no-op: same bytes as the session
    // prepared without it.
    let (model, norm, ds) = setup();
    let s = ds.sample(0);
    let plain = model.session();
    let explicit = InferenceSession::prepare_with(
        &model.params,
        SessionPrecision::F32,
        SessionActivation::F32,
    );
    let a = downscale_with(&model, &plain, &norm, &s.input, None, 1.0).unwrap();
    let b = downscale_with(&model, &explicit, &norm, &s.input, None, 1.0).unwrap();
    assert_eq!(a.data(), b.data());
}
