//! Concurrency stress: one prepared `InferenceSession` shared by many
//! threads running `downscale_with` over mixed input shapes must produce
//! outputs bit-identical to a serial run. This is the safety property the
//! serving layer leans on (one session, many concurrent batches), checked
//! here without any serving machinery in the way.

use orbit2::inference::downscale_with;
use orbit2_climate::{DownscalingDataset, LatLonGrid, Normalizer, VariableSet};
use orbit2_imaging::tiles::TileSpec;
use orbit2_model::{ModelConfig, ReslimModel};
use orbit2_tensor::Tensor;
use std::sync::Arc;

#[test]
fn concurrent_sessions_bitwise_match_serial() {
    let variables = VariableSet::daymet_like();
    let model = Arc::new(ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 11));
    let session = Arc::new(model.session());

    // Mixed workload: three coarse-grid shapes, with and without tiling,
    // at two compression targets.
    let grids = [LatLonGrid::conus(16, 32), LatLonGrid::conus(32, 32), LatLonGrid::global(16, 64)];
    let mut jobs: Vec<(Tensor, Option<TileSpec>, f32)> = Vec::new();
    let mut norm = None;
    for (gi, grid) in grids.into_iter().enumerate() {
        let ds = DownscalingDataset::new(grid, variables.clone(), 4, 4, 7 + gi as u64);
        if norm.is_none() {
            norm = Some(Normalizer::fit(&ds, 4));
        }
        for s in 0..3 {
            let input = ds.sample(s).input;
            let spec = if s % 2 == 0 { None } else { Some(TileSpec::square(4, 1)) };
            let compression = if s == 2 { 2.0 } else { 1.0 };
            jobs.push((input, spec, compression));
        }
    }
    let norm = Arc::new(norm.unwrap());
    let jobs = Arc::new(jobs);

    // Serial reference, one job at a time on this thread.
    let reference: Vec<Vec<f32>> = jobs
        .iter()
        .map(|(input, spec, compression)| {
            downscale_with(&model, &session, &norm, input, *spec, *compression)
                .expect("valid input")
                .data()
                .to_vec()
        })
        .collect();
    let reference = Arc::new(reference);

    // 6 threads hammer the one session, each sweeping all jobs from a
    // different starting offset so distinct shapes overlap in time.
    let threads: Vec<_> = (0..6)
        .map(|t| {
            let (model, session, norm) = (model.clone(), session.clone(), norm.clone());
            let (jobs, reference) = (jobs.clone(), reference.clone());
            std::thread::spawn(move || {
                for round in 0..2 {
                    for k in 0..jobs.len() {
                        let j = (t + round + k) % jobs.len();
                        let (input, spec, compression) = &jobs[j];
                        let out =
                            downscale_with(&model, &session, &norm, input, *spec, *compression)
                                .expect("valid input");
                        assert_eq!(
                            out.data(),
                            &reference[j][..],
                            "thread {t} round {round} job {j}: concurrent != serial"
                        );
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("stress thread panicked");
    }
}
