//! Two-dimensional FFT over row-major grids, parallelized over rows and
//! columns with rayon.

use crate::complex::Complex;
use crate::fft1::{fft, ifft};
use rayon::prelude::*;

/// Forward 2-D DFT of an `h x w` row-major grid.
pub fn fft2(grid: &mut [Complex], h: usize, w: usize) {
    assert_eq!(grid.len(), h * w);
    // Rows in parallel.
    grid.par_chunks_mut(w).for_each(|row| {
        let mut r = row.to_vec();
        fft(&mut r);
        row.copy_from_slice(&r);
    });
    // Columns: transpose, FFT rows, transpose back.
    let mut t = transpose(grid, h, w);
    t.par_chunks_mut(h).for_each(|col| {
        let mut c = col.to_vec();
        fft(&mut c);
        col.copy_from_slice(&c);
    });
    let back = transpose(&t, w, h);
    grid.copy_from_slice(&back);
}

/// Inverse 2-D DFT (normalized).
pub fn ifft2(grid: &mut [Complex], h: usize, w: usize) {
    assert_eq!(grid.len(), h * w);
    grid.par_chunks_mut(w).for_each(|row| {
        let mut r = row.to_vec();
        ifft(&mut r);
        row.copy_from_slice(&r);
    });
    let mut t = transpose(grid, h, w);
    t.par_chunks_mut(h).for_each(|col| {
        let mut c = col.to_vec();
        ifft(&mut c);
        col.copy_from_slice(&c);
    });
    let back = transpose(&t, w, h);
    grid.copy_from_slice(&back);
}

fn transpose(grid: &[Complex], h: usize, w: usize) -> Vec<Complex> {
    let mut out = vec![Complex::ZERO; h * w];
    for i in 0..h {
        for j in 0..w {
            out[j * h + i] = grid[i * w + j];
        }
    }
    out
}

/// Forward 2-D DFT of a real field, returning the complex spectrum.
pub fn fft2_real(field: &[f32], h: usize, w: usize) -> Vec<Complex> {
    let mut grid: Vec<Complex> = field.iter().map(|&v| Complex::new(v as f64, 0.0)).collect();
    fft2(&mut grid, h, w);
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_identity() {
        let (h, w) = (8usize, 12usize);
        let x: Vec<Complex> = (0..h * w).map(|i| Complex::new((i as f64 * 0.37).sin(), 0.0)).collect();
        let mut y = x.clone();
        fft2(&mut y, h, w);
        ifft2(&mut y, h, w);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn dc_component_is_sum() {
        let (h, w) = (4usize, 4usize);
        let field = vec![2.0f32; h * w];
        let spec = fft2_real(&field, h, w);
        assert!((spec[0].re - 32.0).abs() < 1e-9);
        // All non-DC bins vanish for a constant field.
        for v in &spec[1..] {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn separable_plane_wave_peaks_at_expected_bin() {
        let (h, w) = (16usize, 16usize);
        let (fy, fx) = (3usize, 5usize);
        let field: Vec<f32> = (0..h * w)
            .map(|i| {
                let (y, x) = (i / w, i % w);
                (2.0 * std::f32::consts::PI * (fy as f32 * y as f32 / h as f32 + fx as f32 * x as f32 / w as f32)).cos()
            })
            .collect();
        let spec = fft2_real(&field, h, w);
        let peak_bin = fy * w + fx;
        let mags: Vec<f64> = spec.iter().map(|c| c.abs()).collect();
        let max = mags.iter().cloned().fold(0.0, f64::max);
        assert!((mags[peak_bin] - max).abs() < 1e-6);
    }

    #[test]
    fn matches_1d_on_single_row() {
        let w = 10usize;
        let row: Vec<f32> = (0..w).map(|i| (i as f32).sin()).collect();
        let spec2 = fft2_real(&row, 1, w);
        let spec1 = crate::fft1::fft_real(&row);
        for (a, b) in spec2.iter().zip(&spec1) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }
}
