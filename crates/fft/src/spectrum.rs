//! Radially-binned spatial power spectra.
//!
//! The paper's Fig. 7(a) compares the spatial power spectrum of downscaled
//! minimum temperature against the observation ground truth: a faithful
//! downscaler must reproduce the high-wavenumber tail. This module computes
//! the isotropic (radially-averaged) power spectrum of a 2-D field.

use crate::complex::Complex;
use crate::fft2::fft2_real;

/// Radially-averaged power spectrum of a 2-D field.
#[derive(Debug, Clone)]
pub struct PowerSpectrum {
    /// Wavenumber of each bin (cycles per domain).
    pub wavenumber: Vec<f64>,
    /// Mean spectral power in the bin.
    pub power: Vec<f64>,
}

impl PowerSpectrum {
    /// Log-power values, floored to avoid `-inf` on empty bins.
    pub fn log_power(&self) -> Vec<f64> {
        self.power.iter().map(|&p| p.max(1e-30).log10()).collect()
    }

    /// Mean absolute log-power difference against another spectrum over the
    /// top `frac` of wavenumbers (the high-frequency tail).
    pub fn high_freq_log_distance(&self, other: &PowerSpectrum, frac: f64) -> f64 {
        let n = self.power.len().min(other.power.len());
        let start = ((1.0 - frac) * n as f64) as usize;
        let a = self.log_power();
        let b = other.log_power();
        let mut sum = 0.0;
        let mut cnt = 0usize;
        for i in start..n {
            sum += (a[i] - b[i]).abs();
            cnt += 1;
        }
        if cnt == 0 {
            0.0
        } else {
            sum / cnt as f64
        }
    }
}

/// Compute the radially-averaged power spectrum of an `h x w` field.
///
/// Power is `|F(k)|^2 / (h*w)`; bins are integer radial wavenumbers up to
/// the Nyquist limit `min(h, w) / 2`.
pub fn radial_power_spectrum(field: &[f32], h: usize, w: usize) -> PowerSpectrum {
    assert_eq!(field.len(), h * w);
    let spec = fft2_real(field, h, w);
    radial_bin(&spec, h, w)
}

fn radial_bin(spec: &[Complex], h: usize, w: usize) -> PowerSpectrum {
    let kmax = (h.min(w)) / 2;
    let mut power = vec![0.0f64; kmax + 1];
    let mut count = vec![0usize; kmax + 1];
    let norm = 1.0 / (h * w) as f64;
    for y in 0..h {
        // Signed frequency coordinate (wrap above Nyquist).
        let ky = if y <= h / 2 { y as f64 } else { y as f64 - h as f64 };
        for x in 0..w {
            let kx = if x <= w / 2 { x as f64 } else { x as f64 - w as f64 };
            let k = (ky * ky + kx * kx).sqrt().round() as usize;
            if k <= kmax {
                power[k] += spec[y * w + x].norm_sqr() * norm;
                count[k] += 1;
            }
        }
    }
    for (p, &c) in power.iter_mut().zip(&count) {
        if c > 0 {
            *p /= c as f64;
        }
    }
    PowerSpectrum {
        wavenumber: (0..=kmax).map(|k| k as f64).collect(),
        power,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_field_power_is_dc_only() {
        let ps = radial_power_spectrum(&vec![3.0f32; 64], 8, 8);
        assert!(ps.power[0] > 0.0);
        for &p in &ps.power[1..] {
            assert!(p < 1e-12);
        }
    }

    #[test]
    fn single_mode_lands_in_expected_bin() {
        let (h, w) = (32usize, 32usize);
        let k = 4usize;
        let field: Vec<f32> = (0..h * w)
            .map(|i| (2.0 * std::f32::consts::PI * k as f32 * (i % w) as f32 / w as f32).sin())
            .collect();
        let ps = radial_power_spectrum(&field, h, w);
        let peak = ps
            .power
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, k);
    }

    #[test]
    fn smoothing_suppresses_high_frequencies() {
        // A white-noise field loses high-wavenumber power after a box blur.
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let (h, w) = (64usize, 64usize);
        let noise: Vec<f32> = (0..h * w).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        // 3x3 box blur (periodic).
        let mut smooth = vec![0.0f32; h * w];
        for y in 0..h {
            for x in 0..w {
                let mut s = 0.0;
                for dy in 0..3 {
                    for dx in 0..3 {
                        let yy = (y + h + dy - 1) % h;
                        let xx = (x + w + dx - 1) % w;
                        s += noise[yy * w + xx];
                    }
                }
                smooth[y * w + x] = s / 9.0;
            }
        }
        let ps_n = radial_power_spectrum(&noise, h, w);
        let ps_s = radial_power_spectrum(&smooth, h, w);
        let tail = ps_n.power.len() - 5..ps_n.power.len();
        let tail_n: f64 = ps_n.power[tail.clone()].iter().sum();
        let tail_s: f64 = ps_s.power[tail].iter().sum();
        assert!(tail_s < tail_n * 0.3, "blur should kill the high-freq tail");
    }

    #[test]
    fn high_freq_distance_zero_for_identical() {
        let field: Vec<f32> = (0..256).map(|i| (i as f32 * 0.1).sin()).collect();
        let a = radial_power_spectrum(&field, 16, 16);
        let b = radial_power_spectrum(&field, 16, 16);
        assert_eq!(a.high_freq_log_distance(&b, 0.3), 0.0);
    }
}
