//! # orbit2-fft
//!
//! Fast Fourier transforms built from scratch for the reproduction:
//!
//! * iterative radix-2 Cooley–Tukey for power-of-two lengths,
//! * Bluestein's chirp-z algorithm for arbitrary lengths,
//! * row/column 2-D transforms,
//! * radially-binned power spectra (paper Fig. 7(a)).
//!
//! The synthetic climate generator (`orbit2-climate`) synthesizes Gaussian
//! random fields in spectral space with these transforms, and the metrics
//! crate compares the spectral content of downscaled predictions against
//! ground truth exactly as the paper's spectral analysis does.

pub mod complex;
pub mod fft1;
pub mod fft2;
pub mod spectrum;

pub use complex::Complex;
pub use fft1::{fft, ifft};
pub use fft2::{fft2, ifft2};
pub use spectrum::{radial_power_spectrum, PowerSpectrum};
