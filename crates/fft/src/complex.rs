//! Minimal complex number type (f64 for spectral accuracy).

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Zero.
    pub const ZERO: Complex = Complex::new(0.0, 0.0);

    /// One.
    pub const ONE: Complex = Complex::new(1.0, 0.0);

    /// The imaginary unit.
    pub const I: Complex = Complex::new(0.0, 1.0);

    /// `e^{i theta}`.
    pub fn cis(theta: f64) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(self.re * o.re - self.im * o.im, self.re * o.im + self.im * o.re)
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, o: Complex) -> Complex {
        let d = o.norm_sqr();
        Complex::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(3.0, -4.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a * Complex::ONE, a);
        assert_eq!(a + Complex::ZERO, a);
        assert_eq!((a * a.conj()).re, a.norm_sqr());
        assert!((a * a.conj()).im.abs() < 1e-12);
    }

    #[test]
    fn i_squared_is_minus_one() {
        let m = Complex::I * Complex::I;
        assert!((m.re + 1.0).abs() < 1e-15 && m.im.abs() < 1e-15);
    }

    #[test]
    fn cis_unit_circle() {
        let c = Complex::cis(std::f64::consts::FRAC_PI_2);
        assert!((c.re).abs() < 1e-15);
        assert!((c.im - 1.0).abs() < 1e-15);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(-0.5, 3.0);
        let c = (a * b) / b;
        assert!((c.re - a.re).abs() < 1e-12 && (c.im - a.im).abs() < 1e-12);
    }
}
