//! One-dimensional FFT: radix-2 Cooley–Tukey for power-of-two lengths and
//! Bluestein's chirp-z transform for everything else.

use crate::complex::Complex;

/// In-place forward DFT of `x` (any length).
pub fn fft(x: &mut [Complex]) {
    transform(x, false);
}

/// In-place inverse DFT of `x` (any length), normalized by `1/n`.
pub fn ifft(x: &mut [Complex]) {
    transform(x, true);
    let inv = 1.0 / x.len() as f64;
    for v in x.iter_mut() {
        *v = v.scale(inv);
    }
}

fn transform(x: &mut [Complex], inverse: bool) {
    let n = x.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        radix2(x, inverse);
    } else {
        bluestein(x, inverse);
    }
}

/// Iterative radix-2 with bit-reversal permutation. O(n log n), in place.
fn radix2(x: &mut [Complex], inverse: bool) {
    let n = x.len();
    debug_assert!(n.is_power_of_two());
    // Bit reversal.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            x.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2usize;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = x[start + k];
                let v = x[start + k + len / 2] * w;
                x[start + k] = u + v;
                x[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Bluestein's algorithm: express an arbitrary-length DFT as a convolution,
/// evaluated with a zero-padded power-of-two FFT.
fn bluestein(x: &mut [Complex], inverse: bool) {
    let n = x.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    // Chirp: w_k = exp(sign * i * pi * k^2 / n)
    let mut chirp = vec![Complex::ZERO; n];
    for (k, c) in chirp.iter_mut().enumerate() {
        // k^2 mod 2n avoids precision loss for large k.
        let k2 = (k * k) % (2 * n);
        *c = Complex::cis(sign * std::f64::consts::PI * k2 as f64 / n as f64);
    }
    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex::ZERO; m];
    let mut b = vec![Complex::ZERO; m];
    for k in 0..n {
        a[k] = x[k] * chirp[k];
    }
    b[0] = chirp[0].conj();
    for k in 1..n {
        let c = chirp[k].conj();
        b[k] = c;
        b[m - k] = c;
    }
    radix2(&mut a, false);
    radix2(&mut b, false);
    for (av, bv) in a.iter_mut().zip(&b) {
        *av = *av * *bv;
    }
    // Inverse FFT of the product.
    radix2(&mut a, true);
    let inv_m = 1.0 / m as f64;
    for k in 0..n {
        x[k] = a[k].scale(inv_m) * chirp[k];
    }
}

/// Forward DFT of a real signal; returns the full complex spectrum.
pub fn fft_real(signal: &[f32]) -> Vec<Complex> {
    let mut x: Vec<Complex> = signal.iter().map(|&v| Complex::new(v as f64, 0.0)).collect();
    fft(&mut x);
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dft_naive(x: &[Complex], inverse: bool) -> Vec<Complex> {
        let n = x.len();
        let sign = if inverse { 1.0 } else { -1.0 };
        let mut out = vec![Complex::ZERO; n];
        for (k, o) in out.iter_mut().enumerate() {
            for (t, &v) in x.iter().enumerate() {
                let ang = sign * 2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                *o += v * Complex::cis(ang);
            }
        }
        if inverse {
            for o in out.iter_mut() {
                *o = o.scale(1.0 / n as f64);
            }
        }
        out
    }

    fn close(a: &[Complex], b: &[Complex], tol: f64) -> bool {
        a.iter().zip(b).all(|(x, y)| (*x - *y).abs() < tol)
    }

    #[test]
    fn radix2_matches_naive() {
        let x: Vec<Complex> = (0..16).map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.3).cos())).collect();
        let mut y = x.clone();
        fft(&mut y);
        assert!(close(&y, &dft_naive(&x, false), 1e-9));
    }

    #[test]
    fn bluestein_matches_naive_odd_lengths() {
        for n in [3usize, 5, 7, 12, 15, 31] {
            let x: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64 * 0.7 - 1.0, (i * i) as f64 * 0.01)).collect();
            let mut y = x.clone();
            fft(&mut y);
            assert!(close(&y, &dft_naive(&x, false), 1e-8), "n={n}");
        }
    }

    #[test]
    fn roundtrip_identity() {
        for n in [8usize, 13, 64, 100] {
            let x: Vec<Complex> = (0..n).map(|i| Complex::new((i as f64 * 1.3).sin(), (i as f64).cos())).collect();
            let mut y = x.clone();
            fft(&mut y);
            ifft(&mut y);
            assert!(close(&y, &x, 1e-10), "n={n}");
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        fft(&mut x);
        for v in x {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_concentrates_energy() {
        let n = 32;
        let freq = 5;
        let x: Vec<f32> = (0..n)
            .map(|i| (2.0 * std::f32::consts::PI * freq as f32 * i as f32 / n as f32).cos())
            .collect();
        let spec = fft_real(&x);
        // Peak magnitude at bins `freq` and `n - freq`.
        let mags: Vec<f64> = spec.iter().map(|c| c.abs()).collect();
        let peak = mags.iter().cloned().fold(0.0, f64::max);
        assert!((mags[freq] - peak).abs() < 1e-6);
        assert!((mags[n - freq] - peak).abs() < 1e-6);
        assert!(mags[1] < peak * 1e-6);
    }

    #[test]
    fn parseval_energy_conserved() {
        let x: Vec<Complex> = (0..64).map(|i| Complex::new((i as f64 * 0.17).sin(), 0.0)).collect();
        let time_energy: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let mut y = x;
        fft(&mut y);
        let freq_energy: f64 = y.iter().map(|c| c.norm_sqr()).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    fn length_one_and_zero_are_noops() {
        let mut x = vec![Complex::new(2.0, 3.0)];
        fft(&mut x);
        assert_eq!(x[0], Complex::new(2.0, 3.0));
        let mut e: Vec<Complex> = vec![];
        fft(&mut e);
        assert!(e.is_empty());
    }
}
