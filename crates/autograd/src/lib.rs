//! # orbit2-autograd
//!
//! Reverse-mode automatic differentiation over [`orbit2_tensor::Tensor`],
//! replacing the role PyTorch autograd plays in the paper's stack.
//!
//! * [`tape`] — the per-graph gradient tape: [`Tape`], [`Var`] and the
//!   elementwise / linear-algebra ops with their adjoints,
//! * [`nn`] — fused neural-net ops (linear, layernorm, conv2d, bilinear
//!   resize) whose backward passes call the hand-written kernels in
//!   `orbit2-tensor`,
//! * [`optim`] — SGD / Adam / AdamW over a named [`ParamStore`],
//! * [`scaler`] — dynamic gradient scaling for emulated-BF16 training
//!   (paper Sec. III-D),
//! * [`params`] — named parameter storage with JSON checkpointing,
//! * [`gradcheck`] — finite-difference gradient verification used across the
//!   test suite.
//!
//! A [`Tape`] is deliberately `!Sync`: in the TILES trainer every tile
//! (thread) builds its own tape, mirroring the paper's one-GPU-per-tile
//! execution, and only gradients cross thread boundaries.

pub mod gradcheck;
pub mod nn;
pub mod optim;
pub mod params;
pub mod scaler;
pub mod tape;

pub use optim::{Adam, AdamState, AdamW, Optimizer, Sgd};
pub use params::{ParamStore, TensorBits};
pub use scaler::{GradScaler, ScalerState};
pub use tape::{tape_constructions, Gradients, Tape, Var};
