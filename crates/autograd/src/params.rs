//! Named parameter storage with JSON checkpointing.
//!
//! A model owns a [`ParamStore`]; the trainer registers each parameter on a
//! fresh [`crate::Tape`] per step, and optimizers update the store in place
//! from a name→gradient map. `BTreeMap` keeps iteration order deterministic
//! (gradient averaging across tiles must be order-stable).

use orbit2_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// A named collection of trainable tensors.
#[derive(Default, Clone)]
pub struct ParamStore {
    entries: BTreeMap<String, Tensor>,
}

/// Serializable snapshot of a parameter store.
#[derive(Serialize, Deserialize)]
struct Snapshot {
    params: BTreeMap<String, (Vec<usize>, Vec<f32>)>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a parameter.
    pub fn insert(&mut self, name: impl Into<String>, value: Tensor) {
        self.entries.insert(name.into(), value);
    }

    /// Get a parameter by name.
    pub fn get(&self, name: &str) -> &Tensor {
        self.entries
            .get(name)
            .unwrap_or_else(|| panic!("unknown parameter {name}"))
    }

    /// Get a parameter by name, returning `None` when absent (the
    /// non-panicking lookup checkpoint validation uses).
    pub fn try_get(&self, name: &str) -> Option<&Tensor> {
        self.entries.get(name)
    }

    /// Mutable access to a parameter by name.
    pub fn get_mut(&mut self, name: &str) -> &mut Tensor {
        self.entries
            .get_mut(name)
            .unwrap_or_else(|| panic!("unknown parameter {name}"))
    }

    /// Whether a parameter exists.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Iterate `(name, tensor)` in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Tensor)> {
        self.entries.iter()
    }

    /// Iterate mutably in deterministic order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&String, &mut Tensor)> {
        self.entries.iter_mut()
    }

    /// Names in sorted order.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Number of parameters (tensors).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total scalar element count across all parameters (the "model size").
    pub fn num_elements(&self) -> usize {
        self.entries.values().map(|t| t.len()).sum()
    }

    /// Save to a JSON checkpoint.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let snap = Snapshot {
            params: self
                .entries
                .iter()
                .map(|(k, v)| (k.clone(), (v.shape().to_vec(), v.data().to_vec())))
                .collect(),
        };
        let json = serde_json::to_string(&snap).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Bit-exact snapshot of every parameter for checkpointing.
    pub fn to_bits(&self) -> BitsMap {
        tensors_to_bits(self.entries.iter())
    }

    /// Rebuild a store from a bit-exact snapshot.
    pub fn from_bits(map: &BitsMap) -> Result<Self, String> {
        Ok(Self { entries: tensors_from_bits(map)? })
    }

    /// Load from a JSON checkpoint.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        let snap: Snapshot = serde_json::from_str(&json).map_err(std::io::Error::other)?;
        let mut store = Self::new();
        for (name, (shape, data)) in snap.params {
            store.insert(name, Tensor::from_vec(shape, data));
        }
        Ok(store)
    }
}

/// Bit-exact serializable snapshot of a tensor: shape plus the raw IEEE-754
/// bit pattern of every element. Unlike the JSON float path (which cannot
/// represent NaN/Inf), this round-trips *any* tensor exactly — the property
/// crash-consistent checkpoints need for bit-identical resume.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorBits {
    /// Tensor shape.
    pub shape: Vec<usize>,
    /// `f32::to_bits` of every element in row-major order.
    pub bits: Vec<u32>,
}

impl TensorBits {
    /// Snapshot a tensor.
    pub fn from_tensor(t: &Tensor) -> Self {
        Self {
            shape: t.shape().to_vec(),
            bits: t.data().iter().map(|x| x.to_bits()).collect(),
        }
    }

    /// Reconstruct the tensor, validating that the shape matches the data.
    pub fn to_tensor(&self) -> Result<Tensor, String> {
        let expect: usize = self.shape.iter().product();
        if expect != self.bits.len() {
            return Err(format!(
                "tensor snapshot shape {:?} needs {expect} elements, found {}",
                self.shape,
                self.bits.len()
            ));
        }
        let data: Vec<f32> = self.bits.iter().map(|b| f32::from_bits(*b)).collect();
        Ok(Tensor::from_vec(self.shape.clone(), data))
    }
}

/// Bit-exact snapshot of a name→tensor map (parameters, gradients, Adam
/// moments) for checkpointing.
pub type BitsMap = BTreeMap<String, TensorBits>;

/// Snapshot a name→tensor map bit-exactly.
pub fn tensors_to_bits<'a>(iter: impl Iterator<Item = (&'a String, &'a Tensor)>) -> BitsMap {
    iter.map(|(k, v)| (k.clone(), TensorBits::from_tensor(v))).collect()
}

/// Reconstruct a name→tensor map from a bit-exact snapshot.
pub fn tensors_from_bits(map: &BitsMap) -> Result<BTreeMap<String, Tensor>, String> {
    map.iter()
        .map(|(k, v)| {
            let t = v.to_tensor().map_err(|e| format!("tensor `{k}`: {e}"))?;
            Ok((k.clone(), t))
        })
        .collect()
}

/// A name→gradient map as produced by a backward pass over a model.
pub type GradMap = BTreeMap<String, Tensor>;

/// Average several gradient maps elementwise (the TILES once-per-batch
/// gradient all-reduce). All maps must share the same keys and shapes.
pub fn average_grad_maps(maps: &[GradMap]) -> GradMap {
    assert!(!maps.is_empty(), "no gradient maps to average");
    let inv = 1.0 / maps.len() as f32;
    let mut out = GradMap::new();
    for key in maps[0].keys() {
        // COW handle onto the first map's gradient; the first `add_` faults
        // it into a private buffer and every later tile accumulates in place.
        let mut acc = maps[0][key].clone();
        for m in &maps[1..] {
            let g = m
                .get(key)
                .unwrap_or_else(|| panic!("gradient map missing key {key}"));
            acc.add_(g);
        }
        acc.scale_(inv);
        out.insert(key.clone(), acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_counts() {
        let mut p = ParamStore::new();
        p.insert("w", Tensor::zeros(vec![2, 3]));
        p.insert("b", Tensor::zeros(vec![3]));
        assert_eq!(p.len(), 2);
        assert_eq!(p.num_elements(), 9);
        assert_eq!(p.get("w").shape(), &[2, 3]);
        assert!(p.contains("b"));
        assert!(!p.contains("x"));
    }

    #[test]
    fn iteration_order_is_sorted() {
        let mut p = ParamStore::new();
        p.insert("z", Tensor::zeros(vec![1]));
        p.insert("a", Tensor::zeros(vec![1]));
        p.insert("m", Tensor::zeros(vec![1]));
        let names: Vec<&String> = p.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a", "m", "z"]);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("orbit2_params_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let mut p = ParamStore::new();
        p.insert("w", Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]));
        p.save(&path).unwrap();
        let q = ParamStore::load(&path).unwrap();
        assert_eq!(q.get("w").data(), &[1., 2., 3., 4.]);
        assert_eq!(q.get("w").shape(), &[2, 2]);
    }

    #[test]
    fn grad_map_averaging() {
        let mut a = GradMap::new();
        a.insert("w".into(), Tensor::from_vec(vec![2], vec![1.0, 2.0]));
        let mut b = GradMap::new();
        b.insert("w".into(), Tensor::from_vec(vec![2], vec![3.0, 6.0]));
        let avg = average_grad_maps(&[a, b]);
        assert_eq!(avg["w"].data(), &[2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "unknown parameter")]
    fn missing_param_panics() {
        ParamStore::new().get("nope");
    }

    #[test]
    fn tensor_bits_round_trips_nan_and_negative_zero() {
        let t = Tensor::from_vec(vec![4], vec![f32::NAN, f32::INFINITY, -0.0, 1.5e-40]);
        let back = TensorBits::from_tensor(&t).to_tensor().unwrap();
        let (a, b) = (t.data(), back.data());
        for i in 0..a.len() {
            assert_eq!(a[i].to_bits(), b[i].to_bits(), "element {i} not bit-identical");
        }
    }

    #[test]
    fn tensor_bits_rejects_shape_data_mismatch() {
        let snap = TensorBits { shape: vec![2, 3], bits: vec![0; 5] };
        assert!(snap.to_tensor().is_err());
    }

    #[test]
    fn param_store_bits_round_trip() {
        let mut p = ParamStore::new();
        p.insert("w", Tensor::from_vec(vec![2, 2], vec![1.0, -2.5, f32::NAN, 0.1]));
        let q = ParamStore::from_bits(&p.to_bits()).unwrap();
        assert_eq!(q.get("w").shape(), &[2, 2]);
        assert_eq!(q.get("w").data()[1], -2.5);
        assert!(q.get("w").data()[2].is_nan());
    }
}
