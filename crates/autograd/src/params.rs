//! Named parameter storage with JSON checkpointing.
//!
//! A model owns a [`ParamStore`]; the trainer registers each parameter on a
//! fresh [`crate::Tape`] per step, and optimizers update the store in place
//! from a name→gradient map. `BTreeMap` keeps iteration order deterministic
//! (gradient averaging across tiles must be order-stable).

use orbit2_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// A named collection of trainable tensors.
#[derive(Default, Clone)]
pub struct ParamStore {
    entries: BTreeMap<String, Tensor>,
}

/// Serializable snapshot of a parameter store.
#[derive(Serialize, Deserialize)]
struct Snapshot {
    params: BTreeMap<String, (Vec<usize>, Vec<f32>)>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a parameter.
    pub fn insert(&mut self, name: impl Into<String>, value: Tensor) {
        self.entries.insert(name.into(), value);
    }

    /// Get a parameter by name.
    pub fn get(&self, name: &str) -> &Tensor {
        self.entries
            .get(name)
            .unwrap_or_else(|| panic!("unknown parameter {name}"))
    }

    /// Mutable access to a parameter by name.
    pub fn get_mut(&mut self, name: &str) -> &mut Tensor {
        self.entries
            .get_mut(name)
            .unwrap_or_else(|| panic!("unknown parameter {name}"))
    }

    /// Whether a parameter exists.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Iterate `(name, tensor)` in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Tensor)> {
        self.entries.iter()
    }

    /// Iterate mutably in deterministic order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&String, &mut Tensor)> {
        self.entries.iter_mut()
    }

    /// Names in sorted order.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Number of parameters (tensors).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total scalar element count across all parameters (the "model size").
    pub fn num_elements(&self) -> usize {
        self.entries.values().map(|t| t.len()).sum()
    }

    /// Save to a JSON checkpoint.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let snap = Snapshot {
            params: self
                .entries
                .iter()
                .map(|(k, v)| (k.clone(), (v.shape().to_vec(), v.data().to_vec())))
                .collect(),
        };
        let json = serde_json::to_string(&snap).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Load from a JSON checkpoint.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        let snap: Snapshot = serde_json::from_str(&json).map_err(std::io::Error::other)?;
        let mut store = Self::new();
        for (name, (shape, data)) in snap.params {
            store.insert(name, Tensor::from_vec(shape, data));
        }
        Ok(store)
    }
}

/// A name→gradient map as produced by a backward pass over a model.
pub type GradMap = BTreeMap<String, Tensor>;

/// Average several gradient maps elementwise (the TILES once-per-batch
/// gradient all-reduce). All maps must share the same keys and shapes.
pub fn average_grad_maps(maps: &[GradMap]) -> GradMap {
    assert!(!maps.is_empty(), "no gradient maps to average");
    let inv = 1.0 / maps.len() as f32;
    let mut out = GradMap::new();
    for key in maps[0].keys() {
        // COW handle onto the first map's gradient; the first `add_` faults
        // it into a private buffer and every later tile accumulates in place.
        let mut acc = maps[0][key].clone();
        for m in &maps[1..] {
            let g = m
                .get(key)
                .unwrap_or_else(|| panic!("gradient map missing key {key}"));
            acc.add_(g);
        }
        acc.scale_(inv);
        out.insert(key.clone(), acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_counts() {
        let mut p = ParamStore::new();
        p.insert("w", Tensor::zeros(vec![2, 3]));
        p.insert("b", Tensor::zeros(vec![3]));
        assert_eq!(p.len(), 2);
        assert_eq!(p.num_elements(), 9);
        assert_eq!(p.get("w").shape(), &[2, 3]);
        assert!(p.contains("b"));
        assert!(!p.contains("x"));
    }

    #[test]
    fn iteration_order_is_sorted() {
        let mut p = ParamStore::new();
        p.insert("z", Tensor::zeros(vec![1]));
        p.insert("a", Tensor::zeros(vec![1]));
        p.insert("m", Tensor::zeros(vec![1]));
        let names: Vec<&String> = p.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a", "m", "z"]);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("orbit2_params_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let mut p = ParamStore::new();
        p.insert("w", Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]));
        p.save(&path).unwrap();
        let q = ParamStore::load(&path).unwrap();
        assert_eq!(q.get("w").data(), &[1., 2., 3., 4.]);
        assert_eq!(q.get("w").shape(), &[2, 2]);
    }

    #[test]
    fn grad_map_averaging() {
        let mut a = GradMap::new();
        a.insert("w".into(), Tensor::from_vec(vec![2], vec![1.0, 2.0]));
        let mut b = GradMap::new();
        b.insert("w".into(), Tensor::from_vec(vec![2], vec![3.0, 6.0]));
        let avg = average_grad_maps(&[a, b]);
        assert_eq!(avg["w"].data(), &[2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "unknown parameter")]
    fn missing_param_panics() {
        ParamStore::new().get("nope");
    }
}
