//! Dynamic gradient scaling for emulated-BF16 mixed precision.
//!
//! The paper applies PyTorch's dynamic gradient scaling to keep BF16
//! gradients inside the representable range (Sec. III-D): the loss is
//! multiplied by a scale before backward; gradients are unscaled before the
//! optimizer step; if any gradient is non-finite the step is skipped and the
//! scale halves, otherwise the scale doubles every `growth_interval` good
//! steps.

use crate::params::GradMap;
use serde::{Deserialize, Serialize};

/// Dynamic loss/gradient scaler.
#[derive(Debug, Clone)]
pub struct GradScaler {
    scale: f32,
    growth_factor: f32,
    backoff_factor: f32,
    growth_interval: u32,
    good_steps: u32,
    /// Count of steps skipped due to non-finite gradients.
    pub skipped_steps: u64,
}

impl Default for GradScaler {
    fn default() -> Self {
        Self::new(65536.0)
    }
}

impl GradScaler {
    /// Create a scaler with the given initial scale.
    pub fn new(init_scale: f32) -> Self {
        Self {
            scale: init_scale,
            growth_factor: 2.0,
            backoff_factor: 0.5,
            growth_interval: 2000,
            good_steps: 0,
            skipped_steps: 0,
        }
    }

    /// Set how many consecutive good steps double the scale.
    pub fn with_growth_interval(mut self, interval: u32) -> Self {
        self.growth_interval = interval;
        self
    }

    /// Current loss scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Multiply a loss value by the current scale (before backward).
    pub fn scale_loss(&self, loss: f32) -> f32 {
        loss * self.scale
    }

    /// Bit-exact snapshot of the scaler state for checkpointing. Growth and
    /// backoff factors are configuration, reconstructed by the loader.
    pub fn export_state(&self) -> ScalerState {
        ScalerState {
            scale_bits: self.scale.to_bits(),
            good_steps: self.good_steps,
            skipped_steps: self.skipped_steps,
        }
    }

    /// Restore state captured by [`GradScaler::export_state`].
    pub fn import_state(&mut self, state: &ScalerState) {
        self.scale = f32::from_bits(state.scale_bits);
        self.good_steps = state.good_steps;
        self.skipped_steps = state.skipped_steps;
    }

    /// Unscale gradients in place and report whether they are all finite.
    ///
    /// When `false` is returned the step must be skipped (the scaler has
    /// already backed off its scale).
    pub fn unscale_and_check(&mut self, grads: &mut GradMap) -> bool {
        let inv = 1.0 / self.scale;
        let mut finite = true;
        for g in grads.values_mut() {
            for x in g.data_mut() {
                *x *= inv;
                if !x.is_finite() {
                    finite = false;
                }
            }
        }
        if finite {
            self.good_steps += 1;
            if self.good_steps >= self.growth_interval {
                self.scale *= self.growth_factor;
                self.good_steps = 0;
            }
        } else {
            self.scale = (self.scale * self.backoff_factor).max(1.0);
            self.good_steps = 0;
            self.skipped_steps += 1;
        }
        finite
    }
}

/// Bit-exact serializable [`GradScaler`] state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalerState {
    /// `f32::to_bits` of the current loss scale.
    pub scale_bits: u32,
    /// Consecutive good steps accumulated toward the next growth.
    pub good_steps: u32,
    /// Total steps skipped due to non-finite gradients.
    pub skipped_steps: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit2_tensor::Tensor;

    fn grads_with(values: Vec<f32>) -> GradMap {
        let mut g = GradMap::new();
        let n = values.len();
        g.insert("w".into(), Tensor::from_vec(vec![n], values));
        g
    }

    #[test]
    fn unscale_divides_by_scale() {
        let mut s = GradScaler::new(4.0);
        let mut g = grads_with(vec![8.0, -2.0]);
        assert!(s.unscale_and_check(&mut g));
        assert_eq!(g["w"].data(), &[2.0, -0.5]);
    }

    #[test]
    fn non_finite_backs_off_and_skips() {
        let mut s = GradScaler::new(1024.0);
        let mut g = grads_with(vec![f32::INFINITY, 1.0]);
        assert!(!s.unscale_and_check(&mut g));
        assert_eq!(s.scale(), 512.0);
        assert_eq!(s.skipped_steps, 1);
        let mut g = grads_with(vec![f32::NAN]);
        assert!(!s.unscale_and_check(&mut g));
        assert_eq!(s.scale(), 256.0);
    }

    #[test]
    fn growth_after_interval() {
        let mut s = GradScaler::new(2.0).with_growth_interval(3);
        for _ in 0..3 {
            let mut g = grads_with(vec![1.0]);
            assert!(s.unscale_and_check(&mut g));
        }
        assert_eq!(s.scale(), 4.0);
    }

    #[test]
    fn scale_floors_at_one() {
        let mut s = GradScaler::new(1.0);
        let mut g = grads_with(vec![f32::NAN]);
        s.unscale_and_check(&mut g);
        assert!(s.scale() >= 1.0);
    }

    #[test]
    fn scale_loss_multiplies() {
        let s = GradScaler::new(8.0);
        assert_eq!(s.scale_loss(0.5), 4.0);
    }

    #[test]
    fn state_round_trip_preserves_growth_progress() {
        let mut s = GradScaler::new(2.0).with_growth_interval(3);
        let mut g = grads_with(vec![1.0]);
        assert!(s.unscale_and_check(&mut g));
        let mut g = grads_with(vec![f32::NAN]);
        assert!(!s.unscale_and_check(&mut g));
        let saved = s.export_state();
        let mut restored = GradScaler::new(65536.0).with_growth_interval(3);
        restored.import_state(&saved);
        assert_eq!(restored.scale(), s.scale());
        assert_eq!(restored.skipped_steps, 1);
        // Growth progress continues exactly where it left off.
        for _ in 0..3 {
            let mut g = grads_with(vec![1.0]);
            assert!(restored.unscale_and_check(&mut g));
        }
        assert_eq!(restored.scale(), s.scale() * 2.0);
    }
}
