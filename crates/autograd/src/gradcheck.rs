//! Finite-difference gradient verification.
//!
//! Used throughout the test suite (and by the model crate's tests) to prove
//! every hand-written adjoint against a central difference.

use crate::tape::{Tape, Var};
use orbit2_tensor::random::randn;
use orbit2_tensor::Tensor;

/// Check the analytic gradients of `f` (a scalar-valued function of several
/// tensors) against central finite differences on random inputs.
///
/// `shapes` defines the input tensors; `tol` is the max allowed absolute
/// error per element (scaled by gradient magnitude).
///
/// # Panics
/// Panics with a diagnostic when any gradient element disagrees.
pub fn check_gradients<F>(shapes: &[Vec<usize>], f: F, tol: f32, seed: u64)
where
    F: for<'t> Fn(&'t Tape, &[Var<'t>]) -> Var<'t>,
{
    let inputs: Vec<Tensor> = shapes
        .iter()
        .enumerate()
        .map(|(i, s)| randn(s, seed.wrapping_add(i as u64)))
        .collect();

    // Analytic gradients.
    let tape = Tape::new();
    let vars: Vec<Var<'_>> = inputs.iter().map(|t| tape.leaf(t.clone())).collect();
    let loss = f(&tape, &vars);
    let grads = tape.backward(loss);
    let analytic: Vec<Tensor> = vars.iter().map(|&v| grads.get_or_zero(v)).collect();

    // Central differences, probing every element.
    let eps = 1e-2f32;
    for (vi, input) in inputs.iter().enumerate() {
        for e in 0..input.len() {
            let eval = |delta: f32| -> f32 {
                let tape = Tape::new();
                let vars: Vec<Var<'_>> = inputs
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        let mut t = t.clone();
                        if i == vi {
                            t.data_mut()[e] += delta;
                        }
                        tape.leaf(t)
                    })
                    .collect();
                f(&tape, &vars).value().item()
            };
            let fd = (eval(eps) - eval(-eps)) / (2.0 * eps);
            let an = analytic[vi].data()[e];
            let scale = 1.0f32.max(an.abs()).max(fd.abs());
            assert!(
                (an - fd).abs() <= tol * scale,
                "gradient mismatch input {vi} elem {e}: analytic {an}, fd {fd}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_correct_gradient() {
        check_gradients(&[vec![3]], |_t, v| v[0].square().sum(), 1e-2, 1);
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn rejects_wrong_gradient() {
        // scale(2.0) pretending to be identity: f = 2*sum(x) but we compare
        // against... actually build a deliberately wrong adjoint via a
        // constant detour: grad of constant is blocked, so f(x) uses x but
        // reports zero gradient.
        check_gradients(
            &[vec![3]],
            |t, v| {
                let frozen = t.constant(v[0].value());
                frozen.square().sum().add(v[0].sum().scale(0.0)) // analytic grad = 0, fd != 0
            },
            1e-3,
            2,
        );
    }
}
