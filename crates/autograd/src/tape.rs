//! The gradient tape: a growing list of nodes whose index order is already a
//! topological order (a node is always appended after its parents), so the
//! backward pass is a single reverse sweep.

use orbit2_tensor::ops::{gelu_grad_scalar, gelu_scalar};
use orbit2_tensor::Tensor;
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<(usize, Tensor)>>;

/// Process-wide count of [`Tape`] constructions, across all threads.
///
/// The tape-free inference path must never build a tape; the guard test in
/// `tests/no_tape_inference.rs` snapshots this counter around `downscale`
/// and asserts a zero delta, so a regression that sneaks a `Tape::new()`
/// back into a forward-only loop fails CI instead of silently re-paying the
/// tape overhead.
static TAPE_CONSTRUCTIONS: AtomicUsize = AtomicUsize::new(0);

/// Total number of tapes ever constructed by this process (all threads).
pub fn tape_constructions() -> usize {
    TAPE_CONSTRUCTIONS.load(Ordering::Relaxed)
}

struct Node {
    value: Tensor,
    /// Maps the gradient flowing into this node to (parent, contribution)
    /// pairs. `None` for leaves and constants.
    backward: Option<BackwardFn>,
    /// Whether gradients should flow *through* this node at all.
    tracked: bool,
}

/// A reverse-mode gradient tape. One tape per forward/backward graph.
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
}

impl Default for Tape {
    fn default() -> Self {
        TAPE_CONSTRUCTIONS.fetch_add(1, Ordering::Relaxed);
        Tape { nodes: RefCell::new(Vec::new()) }
    }
}

/// A value recorded on a [`Tape`]. Cheap to copy (an index + a reference).
#[derive(Clone, Copy)]
pub struct Var<'t> {
    tape: &'t Tape,
    id: usize,
}

/// Gradients produced by [`Tape::backward`], indexed by [`Var`].
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// The gradient of the loss w.r.t. `var`, if any flowed to it.
    pub fn get(&self, var: Var<'_>) -> Option<&Tensor> {
        self.grads.get(var.id).and_then(|g| g.as_ref())
    }

    /// The gradient, or a zero tensor of the var's shape when none flowed.
    ///
    /// When a gradient exists this is allocation-free: the clone is a COW
    /// handle onto the stored tensor, not a copy.
    pub fn get_or_zero(&self, var: Var<'_>) -> Tensor {
        match self.get(var) {
            Some(g) => g.clone(),
            None => Tensor::zeros(var.shape()),
        }
    }
}

impl Tape {
    /// Create an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True when no nodes are recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// Record a differentiable leaf (e.g. a model parameter).
    pub fn leaf(&self, value: Tensor) -> Var<'_> {
        self.push(Node { value, backward: None, tracked: true })
    }

    /// Record a constant input: gradients stop here.
    pub fn constant(&self, value: Tensor) -> Var<'_> {
        self.push(Node { value, backward: None, tracked: false })
    }

    fn push(&self, node: Node) -> Var<'_> {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(node);
        Var { tape: self, id: nodes.len() - 1 }
    }

    fn value_of(&self, id: usize) -> Tensor {
        self.nodes.borrow()[id].value.clone()
    }

    fn record(&self, value: Tensor, parents_tracked: bool, backward: BackwardFn) -> Var<'_> {
        if parents_tracked {
            self.push(Node { value, backward: Some(backward), tracked: true })
        } else {
            self.push(Node { value, backward: None, tracked: false })
        }
    }

    /// Reverse sweep from `loss` (which must be scalar-valued) computing
    /// gradients for every tracked node.
    pub fn backward(&self, loss: Var<'_>) -> Gradients {
        assert!(std::ptr::eq(loss.tape, self), "loss from a different tape");
        let nodes = self.nodes.borrow();
        assert_eq!(nodes[loss.id].value.len(), 1, "backward requires a scalar loss");
        let mut grads: Vec<Option<Tensor>> = vec![None; nodes.len()];
        grads[loss.id] = Some(Tensor::ones(nodes[loss.id].value.shape().to_vec()));
        for id in (0..=loss.id).rev() {
            let Some(grad) = grads[id].take() else { continue };
            if let Some(back) = &nodes[id].backward {
                for (pid, contrib) in back(&grad) {
                    if !nodes[pid].tracked {
                        continue;
                    }
                    match &mut grads[pid] {
                        // In-place accumulate: the only copy this can trigger
                        // is a COW fault when the accumulator still shares
                        // storage (e.g. a pass-through gradient); fan-in
                        // beyond that reuses the faulted buffer.
                        Some(acc) => acc.add_(&contrib),
                        slot @ None => *slot = Some(contrib),
                    }
                }
            }
            grads[id] = Some(grad);
        }
        Gradients { grads }
    }
}

/// Sum `grad` down to `target` shape, undoing broadcasting (the adjoint of a
/// broadcast): extra leading axes are summed away and size-1 axes are summed
/// with keep-dim.
pub fn reduce_to_shape(grad: &Tensor, target: &[usize]) -> Tensor {
    let mut g = grad.clone();
    while g.ndim() > target.len() {
        g = g.sum_axis(0);
    }
    for axis in 0..target.len() {
        if target[axis] == 1 && g.shape()[axis] != 1 {
            let mut shape = g.shape().to_vec();
            shape[axis] = 1;
            g = g.sum_axis(axis).into_reshape(shape);
        }
    }
    assert_eq!(g.shape(), target, "reduce_to_shape failed: {:?} -> {:?}", grad.shape(), target);
    g
}

/// Crate-internal access used by the fused ops in [`crate::nn`].
pub(crate) mod tape_internals {
    use super::{BackwardFn, Node, Tape, Var};
    use orbit2_tensor::Tensor;

    pub(crate) fn self_id(v: &Var<'_>) -> usize {
        v.id
    }

    pub(crate) fn self_tracked(v: &Var<'_>) -> bool {
        v.tracked()
    }

    pub(crate) fn record(tape: &Tape, value: Tensor, tracked: bool, backward: BackwardFn) -> Var<'_> {
        if tracked {
            tape.push(Node { value, backward: Some(backward), tracked: true })
        } else {
            tape.push(Node { value, backward: None, tracked: false })
        }
    }
}

impl<'t> Var<'t> {
    /// The tape this var lives on.
    pub fn tape(&self) -> &'t Tape {
        self.tape
    }

    /// Clone of the recorded value.
    pub fn value(&self) -> Tensor {
        self.tape.value_of(self.id)
    }

    /// Shape of the recorded value.
    pub fn shape(&self) -> Vec<usize> {
        self.tape.nodes.borrow()[self.id].value.shape().to_vec()
    }

    fn tracked(&self) -> bool {
        self.tape.nodes.borrow()[self.id].tracked
    }

    fn unary(
        &self,
        value: Tensor,
        back: impl Fn(&Tensor) -> Tensor + 'static,
    ) -> Var<'t> {
        let pid = self.id;
        self.tape
            .record(value, self.tracked(), Box::new(move |g| vec![(pid, back(g))]))
    }

    fn binary(
        &self,
        other: Var<'t>,
        value: Tensor,
        back: impl Fn(&Tensor) -> (Tensor, Tensor) + 'static,
    ) -> Var<'t> {
        assert!(std::ptr::eq(self.tape, other.tape), "vars from different tapes");
        let (a, b) = (self.id, other.id);
        let tracked = self.tracked() || other.tracked();
        self.tape.record(
            value,
            tracked,
            Box::new(move |g| {
                let (ga, gb) = back(g);
                vec![(a, ga), (b, gb)]
            }),
        )
    }

    /// Elementwise addition (with broadcasting).
    pub fn add(&self, other: Var<'t>) -> Var<'t> {
        let (av, bv) = (self.value(), other.value());
        let (ash, bsh) = (av.shape().to_vec(), bv.shape().to_vec());
        self.binary(other, av.add(&bv), move |g| {
            (reduce_to_shape(g, &ash), reduce_to_shape(g, &bsh))
        })
    }

    /// Elementwise subtraction (with broadcasting).
    pub fn sub(&self, other: Var<'t>) -> Var<'t> {
        let (av, bv) = (self.value(), other.value());
        let (ash, bsh) = (av.shape().to_vec(), bv.shape().to_vec());
        self.binary(other, av.sub(&bv), move |g| {
            (reduce_to_shape(g, &ash), reduce_to_shape(&g.neg(), &bsh))
        })
    }

    /// Elementwise multiplication (with broadcasting).
    pub fn mul(&self, other: Var<'t>) -> Var<'t> {
        let (av, bv) = (self.value(), other.value());
        let (ash, bsh) = (av.shape().to_vec(), bv.shape().to_vec());
        let (ac, bc) = (av.clone(), bv.clone());
        self.binary(other, av.mul(&bv), move |g| {
            (reduce_to_shape(&g.mul(&bc), &ash), reduce_to_shape(&g.mul(&ac), &bsh))
        })
    }

    /// Elementwise division (with broadcasting).
    pub fn div(&self, other: Var<'t>) -> Var<'t> {
        let (av, bv) = (self.value(), other.value());
        let (ash, bsh) = (av.shape().to_vec(), bv.shape().to_vec());
        let (ac, bc) = (av.clone(), bv.clone());
        self.binary(other, av.div(&bv), move |g| {
            let ga = reduce_to_shape(&g.div(&bc), &ash);
            // d/db (a/b) = -a / b^2
            let gb = reduce_to_shape(&g.mul(&ac).div(&bc.mul(&bc)).neg(), &bsh);
            (ga, gb)
        })
    }

    /// Multiply by a scalar constant.
    pub fn scale(&self, s: f32) -> Var<'t> {
        self.unary(self.value().mul_scalar(s), move |g| g.mul_scalar(s))
    }

    /// Add a scalar constant.
    pub fn shift(&self, s: f32) -> Var<'t> {
        self.unary(self.value().add_scalar(s), |g| g.clone())
    }

    /// Negation.
    pub fn neg(&self) -> Var<'t> {
        self.scale(-1.0)
    }

    /// Elementwise square.
    pub fn square(&self) -> Var<'t> {
        let v = self.value();
        let vc = v.clone();
        self.unary(v.mul(&vc), move |g| g.mul(&vc).mul_scalar(2.0))
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Var<'t> {
        let y = self.value().exp();
        let yc = y.clone();
        self.unary(y, move |g| g.mul(&yc))
    }

    /// Elementwise natural log.
    pub fn ln(&self) -> Var<'t> {
        let v = self.value();
        let vc = v.clone();
        self.unary(v.ln(), move |g| g.div(&vc))
    }

    /// Elementwise tanh.
    pub fn tanh(&self) -> Var<'t> {
        let y = self.value().tanh();
        let yc = y.clone();
        self.unary(y, move |g| g.mul(&yc.map(|t| 1.0 - t * t)))
    }

    /// ReLU.
    pub fn relu(&self) -> Var<'t> {
        let v = self.value();
        let mask = v.map(|x| if x > 0.0 { 1.0 } else { 0.0 });
        self.unary(v.relu(), move |g| g.mul(&mask))
    }

    /// GELU (tanh approximation).
    pub fn gelu(&self) -> Var<'t> {
        let v = self.value();
        let dv = v.map(gelu_grad_scalar);
        self.unary(v.map(gelu_scalar), move |g| g.mul(&dv))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var<'t> {
        let y = self.value().sigmoid();
        let yc = y.clone();
        self.unary(y, move |g| g.mul(&yc.map(|s| s * (1.0 - s))))
    }

    /// Numerically-stable softplus `ln(1 + e^x)` — useful as a nonnegative
    /// output head (e.g. precipitation).
    pub fn softplus(&self) -> Var<'t> {
        let v = self.value();
        let y = v.map(|x| {
            if x > 20.0 {
                x
            } else if x < -20.0 {
                0.0
            } else {
                (1.0 + x.exp()).ln()
            }
        });
        let d = v.sigmoid();
        self.unary(y, move |g| g.mul(&d))
    }

    /// Smooth (Charbonnier) absolute value `sqrt(x^2 + eps^2)`; the
    /// differentiable stand-in for the L1 norm in the total-variation prior.
    pub fn smooth_abs(&self, eps: f32) -> Var<'t> {
        let v = self.value();
        let y = v.map(move |x| (x * x + eps * eps).sqrt());
        let d = v.zip(&y, |x, s| x / s);
        self.unary(y, move |g| g.mul(&d))
    }

    /// Sum of all elements (scalar output).
    pub fn sum(&self) -> Var<'t> {
        let shape = self.shape();
        self.unary(Tensor::scalar(self.value().sum()), move |g| {
            Tensor::full(shape.clone(), g.item())
        })
    }

    /// Mean of all elements (scalar output).
    pub fn mean(&self) -> Var<'t> {
        let n = self.value().len() as f32;
        self.sum().scale(1.0 / n)
    }

    /// Reshape (gradient reshapes back).
    pub fn reshape(&self, shape: Vec<usize>) -> Var<'t> {
        let old = self.shape();
        self.unary(self.value().into_reshape(shape), move |g| {
            g.reshape(old.clone())
        })
    }

    /// 2-d transpose.
    pub fn transpose2(&self) -> Var<'t> {
        self.unary(self.value().transpose2(), |g| g.transpose2())
    }

    /// Matrix multiplication of 2-d vars.
    pub fn matmul(&self, other: Var<'t>) -> Var<'t> {
        let (av, bv) = (self.value(), other.value());
        let y = av.matmul(&bv);
        // Adjoints g B^T and A^T g go through the stride-aware kernels —
        // no transpose is ever materialized on the backward path.
        self.binary(other, y, move |g| (g.matmul_nt(&bv), av.matmul_tn(g)))
    }

    /// `self @ other^T` for 2-d vars (`self [m,k]`, `other [n,k]`) without
    /// materializing the transpose — the natural op for attention scores
    /// `Q K^T` and for linear layers with `[out, in]` weights.
    pub fn matmul_nt(&self, other: Var<'t>) -> Var<'t> {
        let (av, bv) = (self.value(), other.value());
        let y = av.matmul_nt(&bv);
        self.binary(other, y, move |g| (g.matmul(&bv), g.matmul_tn(&av)))
    }

    /// Row-softmax along the last axis.
    pub fn softmax_last(&self) -> Var<'t> {
        let y = self.value().softmax_last();
        let yc = y.clone();
        self.unary(y, move |g| {
            // ds = (g - sum(g * s, last, keepdim)) * s
            let gs = g.mul(&yc);
            let last = yc.ndim() - 1;
            let mut keep = yc.shape().to_vec();
            keep[last] = 1;
            let dot = gs.sum_axis(last).into_reshape(keep);
            g.sub(&dot).mul(&yc)
        })
    }

    /// Slice along an axis (gradient zero-pads back).
    pub fn slice_axis(&self, axis: usize, start: usize, len: usize) -> Var<'t> {
        let v = self.value();
        let full = v.shape().to_vec();
        let y = v.slice_axis(axis, start, len);
        self.unary(y, move |g| {
            // Scatter the slice gradient back into a zero tensor.
            let mut out = Tensor::zeros(full.clone());
            let outer: usize = full[..axis].iter().product();
            let mid = full[axis];
            let inner: usize = full[axis + 1..].iter().product();
            let gd = g.data();
            let od = out.data_mut();
            for o in 0..outer {
                for m in 0..len {
                    let src = (o * len + m) * inner;
                    let dst = (o * mid + start + m) * inner;
                    od[dst..dst + inner].copy_from_slice(&gd[src..src + inner]);
                }
            }
            out
        })
    }

    /// Concatenate vars along an axis.
    pub fn concat(vars: &[Var<'t>], axis: usize) -> Var<'t> {
        assert!(!vars.is_empty());
        let tape = vars[0].tape;
        let values: Vec<Tensor> = vars.iter().map(|v| v.value()).collect();
        let refs: Vec<&Tensor> = values.iter().collect();
        let y = Tensor::concat(&refs, axis);
        let ids: Vec<usize> = vars.iter().map(|v| v.id).collect();
        let sizes: Vec<usize> = values.iter().map(|v| v.shape()[axis]).collect();
        let tracked = vars.iter().any(|v| v.tracked());
        tape.record(
            y,
            tracked,
            Box::new(move |g| {
                let mut out = Vec::with_capacity(ids.len());
                let mut off = 0usize;
                for (&id, &sz) in ids.iter().zip(&sizes) {
                    out.push((id, g.slice_axis(axis, off, sz)));
                    off += sz;
                }
                out
            }),
        )
    }

    /// Gather rows of a 2-d var (gradient scatter-adds back).
    pub fn gather_rows(&self, indices: Vec<usize>) -> Var<'t> {
        let v = self.value();
        let rows = v.shape()[0];
        let y = v.gather_rows(&indices);
        self.unary(y, move |g| g.scatter_add_rows(&indices, rows))
    }

    /// Mean squared error against a constant target, optionally weighted.
    ///
    /// `weight` broadcasts against the value; the result is
    /// `mean(weight * (self - target)^2)`.
    pub fn weighted_mse(&self, target: &Tensor, weight: Option<&Tensor>) -> Var<'t> {
        let t = self.tape.constant(target.clone());
        let diff = self.sub(t);
        let sq = diff.square();
        match weight {
            Some(w) => {
                let wv = self.tape.constant(w.clone());
                sq.mul(wv).mean()
            }
            None => sq.mean(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use orbit2_tensor::random::randn;

    #[test]
    fn add_mul_chain_grad() {
        // f(a, b) = sum((a + b) * a); df/da = (2a + b), df/db = a
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![2], vec![1.0, 2.0]));
        let b = tape.leaf(Tensor::from_vec(vec![2], vec![3.0, 4.0]));
        let loss = a.add(b).mul(a).sum();
        let g = tape.backward(loss);
        assert_eq!(g.get(a).unwrap().data(), &[5.0, 8.0]);
        assert_eq!(g.get(b).unwrap().data(), &[1.0, 2.0]);
    }

    #[test]
    fn broadcasting_add_reduces_grad() {
        let tape = Tape::new();
        let a = tape.leaf(randn(&[2, 3], 1));
        let b = tape.leaf(randn(&[3], 2)); // broadcast row
        let loss = a.add(b).sum();
        let g = tape.backward(loss);
        assert_eq!(g.get(b).unwrap().shape(), &[3]);
        assert_eq!(g.get(b).unwrap().data(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn constant_blocks_gradient() {
        let tape = Tape::new();
        let a = tape.leaf(randn(&[4], 3));
        let c = tape.constant(randn(&[4], 4));
        let loss = a.mul(c).sum();
        let g = tape.backward(loss);
        assert!(g.get(c).is_none());
        assert!(g.get(a).is_some());
    }

    #[test]
    fn matmul_grad_matches_fd() {
        check_gradients(
            &[vec![3, 4], vec![4, 2]],
            |_tape, vars| vars[0].matmul(vars[1]).sum(),
            1e-2,
            42,
        );
    }

    #[test]
    fn softmax_grad_matches_fd() {
        check_gradients(&[vec![3, 5]], |_tape, vars| {
            // A non-trivial downstream function of the softmax.
            let s = vars[0].softmax_last();
            s.square().sum()
        }, 1e-2, 7);
    }

    #[test]
    fn elementwise_grads_match_fd() {
        check_gradients(&[vec![6]], |_t, v| v[0].tanh().sum(), 1e-2, 1);
        check_gradients(&[vec![6]], |_t, v| v[0].gelu().sum(), 1e-2, 2);
        check_gradients(&[vec![6]], |_t, v| v[0].square().sum(), 1e-2, 3);
        check_gradients(&[vec![6]], |_t, v| v[0].exp().mean(), 1e-2, 4);
        check_gradients(&[vec![6]], |_t, v| v[0].smooth_abs(0.1).sum(), 1e-2, 5);
        check_gradients(&[vec![6]], |_t, v| v[0].sigmoid().sum(), 1e-2, 6);
        check_gradients(&[vec![6]], |_t, v| v[0].softplus().sum(), 1e-2, 7);
    }

    #[test]
    fn softplus_is_nonnegative_and_asymptotic() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![3], vec![-30.0, 0.0, 30.0]));
        let y = x.softplus().value();
        assert!(y.min_value() >= 0.0);
        assert!((y.data()[1] - (2.0f32).ln()).abs() < 1e-6);
        assert!((y.data()[2] - 30.0).abs() < 1e-4, "softplus(x) -> x for large x");
    }

    #[test]
    fn div_grad_matches_fd() {
        check_gradients(
            &[vec![4], vec![4]],
            |_t, v| {
                // Shift denominator away from zero for stability.
                let denom = v[1].square().shift(1.0);
                v[0].div(denom).sum()
            },
            1e-2,
            9,
        );
    }

    #[test]
    fn slice_and_concat_grads() {
        check_gradients(
            &[vec![3, 4]],
            |_t, v| {
                let a = v[0].slice_axis(1, 0, 2);
                let b = v[0].slice_axis(1, 2, 2);
                Var::concat(&[b, a], 1).square().sum()
            },
            1e-2,
            11,
        );
    }

    #[test]
    fn gather_rows_grad() {
        check_gradients(
            &[vec![4, 3]],
            |_t, v| v[0].gather_rows(vec![1, 1, 3]).square().sum(),
            1e-2,
            13,
        );
    }

    #[test]
    fn weighted_mse_value_and_grad() {
        let tape = Tape::new();
        let pred = tape.leaf(Tensor::from_vec(vec![2], vec![1.0, 3.0]));
        let target = Tensor::from_vec(vec![2], vec![0.0, 0.0]);
        let w = Tensor::from_vec(vec![2], vec![1.0, 2.0]);
        let loss = pred.weighted_mse(&target, Some(&w));
        assert!((loss.value().item() - (1.0 + 18.0) / 2.0).abs() < 1e-6);
        let g = tape.backward(loss);
        // d/dp mean(w (p-t)^2) = 2 w (p - t) / n
        assert_eq!(g.get(pred).unwrap().data(), &[1.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_requires_scalar() {
        let tape = Tape::new();
        let a = tape.leaf(randn(&[3], 1));
        let _ = tape.backward(a);
    }

    #[test]
    fn backward_chain_does_no_deep_copies() {
        // Interior nodes hand their gradients along as COW handles; a pure
        // chain must finish backward without a single full-tensor copy.
        let tape = Tape::new();
        let a = tape.leaf(randn(&[64, 64], 17));
        let loss = a.scale(2.0).shift(1.0).tanh().mean();
        orbit2_tensor::pool::reset_stats();
        let g = tape.backward(loss);
        assert!(g.get(a).is_some());
        assert_eq!(
            orbit2_tensor::pool::stats().copies,
            0,
            "interior-node backward must not deep-copy tensors"
        );
    }

    #[test]
    fn diamond_graph_accumulates() {
        // loss = sum(a*a + a*a) -> grad 4a
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![2], vec![1.0, -2.0]));
        let x = a.mul(a);
        let y = a.mul(a);
        let loss = x.add(y).sum();
        let g = tape.backward(loss);
        assert_eq!(g.get(a).unwrap().data(), &[4.0, -8.0]);
    }
}
