//! First-order optimizers over a [`ParamStore`].

use crate::params::{tensors_from_bits, tensors_to_bits, BitsMap, GradMap, ParamStore};
use orbit2_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Common optimizer interface: apply one update step from a gradient map.
pub trait Optimizer {
    /// Update `params` in place using `grads` (missing keys are skipped).
    fn step(&mut self, params: &mut ParamStore, grads: &GradMap);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Override the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain SGD with optional momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: BTreeMap<String, Tensor>,
}

impl Sgd {
    /// SGD with learning rate `lr` and momentum coefficient `momentum`
    /// (0 disables momentum).
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self { lr, momentum, velocity: BTreeMap::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamStore, grads: &GradMap) {
        for (name, value) in params.iter_mut() {
            let Some(g) = grads.get(name) else { continue };
            assert_eq!(g.shape(), value.shape(), "gradient shape mismatch for {name}");
            if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(name.clone())
                    .or_insert_with(|| Tensor::zeros(value.shape().to_vec()));
                // v = momentum * v + g, updated in place across steps.
                v.scale_(self.momentum);
                v.add_(g);
                value.axpy(-self.lr, v);
            } else {
                value.axpy(-self.lr, g);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction. Moments are kept in full f32
/// precision even when the model trains in emulated BF16, mirroring
/// mixed-precision master weights.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    /// Decoupled weight decay (AdamW) coefficient; 0 for plain Adam.
    weight_decay: f32,
    t: u64,
    m: BTreeMap<String, Tensor>,
    v: BTreeMap<String, Tensor>,
}

impl Adam {
    /// Standard Adam with the usual defaults.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: BTreeMap::new(),
            v: BTreeMap::new(),
        }
    }

    /// Set the exponential-decay coefficients.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Enable decoupled weight decay (turning this into AdamW).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Bit-exact snapshot of the optimizer state for checkpointing.
    /// Hyper-parameters (lr, betas, weight decay) are configuration, not
    /// state: the loader reconstructs them and imports only `t`/`m`/`v`.
    pub fn export_state(&self) -> AdamState {
        AdamState {
            steps: self.t,
            m: tensors_to_bits(self.m.iter()),
            v: tensors_to_bits(self.v.iter()),
        }
    }

    /// Restore state captured by [`Adam::export_state`].
    pub fn import_state(&mut self, state: &AdamState) -> Result<(), String> {
        self.t = state.steps;
        self.m = tensors_from_bits(&state.m).map_err(|e| format!("adam first moment: {e}"))?;
        self.v = tensors_from_bits(&state.v).map_err(|e| format!("adam second moment: {e}"))?;
        Ok(())
    }
}

/// Bit-exact serializable Adam state: step count plus first/second moments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdamState {
    /// Optimizer steps taken (the `t` in bias correction).
    pub steps: u64,
    /// First-moment estimates per parameter.
    pub m: BitsMap,
    /// Second-moment estimates per parameter.
    pub v: BitsMap,
}

/// AdamW = Adam with decoupled weight decay.
pub type AdamW = Adam;

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamStore, grads: &GradMap) {
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for (name, value) in params.iter_mut() {
            let Some(g) = grads.get(name) else { continue };
            assert_eq!(g.shape(), value.shape(), "gradient shape mismatch for {name}");
            let m = self
                .m
                .entry(name.clone())
                .or_insert_with(|| Tensor::zeros(value.shape().to_vec()));
            let v = self
                .v
                .entry(name.clone())
                .or_insert_with(|| Tensor::zeros(value.shape().to_vec()));
            let gd = g.data();
            let md = m.data_mut();
            let vd = v.data_mut();
            let pd = value.data_mut();
            for i in 0..gd.len() {
                md[i] = self.beta1 * md[i] + (1.0 - self.beta1) * gd[i];
                vd[i] = self.beta2 * vd[i] + (1.0 - self.beta2) * gd[i] * gd[i];
                let mhat = md[i] / bc1;
                let vhat = vd[i] / bc2;
                let mut update = mhat / (vhat.sqrt() + self.eps);
                if self.weight_decay > 0.0 {
                    update += self.weight_decay * pd[i];
                }
                pd[i] -= self.lr * update;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Cosine learning-rate schedule with linear warmup, as used for the
/// pretraining runs.
pub fn cosine_schedule(step: u64, warmup: u64, total: u64, base_lr: f32, min_lr: f32) -> f32 {
    if warmup > 0 && step < warmup {
        return base_lr * (step + 1) as f32 / warmup as f32;
    }
    if step >= total {
        return min_lr;
    }
    let progress = (step - warmup) as f32 / (total - warmup).max(1) as f32;
    min_lr + 0.5 * (base_lr - min_lr) * (1.0 + (std::f32::consts::PI * progress).cos())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(p: &ParamStore) -> GradMap {
        // loss = 0.5 * ||x - 3||^2, grad = x - 3
        let mut g = GradMap::new();
        g.insert("x".into(), p.get("x").add_scalar(-3.0));
        g
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = ParamStore::new();
        p.insert("x", Tensor::from_vec(vec![2], vec![0.0, 10.0]));
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..200 {
            let g = quadratic_grad(&p);
            opt.step(&mut p, &g);
        }
        for &x in p.get("x").data() {
            assert!((x - 3.0).abs() < 1e-3);
        }
    }

    #[test]
    fn momentum_accelerates() {
        let run = |mom: f32| {
            let mut p = ParamStore::new();
            p.insert("x", Tensor::from_vec(vec![1], vec![10.0]));
            let mut opt = Sgd::new(0.01, mom);
            for _ in 0..50 {
                let g = quadratic_grad(&p);
                opt.step(&mut p, &g);
            }
            (p.get("x").data()[0] - 3.0).abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = ParamStore::new();
        p.insert("x", Tensor::from_vec(vec![3], vec![-5.0, 0.0, 20.0]));
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let g = quadratic_grad(&p);
            opt.step(&mut p, &g);
        }
        for &x in p.get("x").data() {
            assert!((x - 3.0).abs() < 5e-2, "{x}");
        }
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn adamw_decays_unused_weights() {
        // With zero gradient, AdamW still shrinks parameters; Adam does not.
        let mut p = ParamStore::new();
        p.insert("x", Tensor::from_vec(vec![1], vec![1.0]));
        let mut g = GradMap::new();
        g.insert("x".into(), Tensor::zeros(vec![1]));
        let mut opt = Adam::new(0.1).with_weight_decay(0.01);
        for _ in 0..10 {
            opt.step(&mut p, &g);
        }
        assert!(p.get("x").data()[0] < 1.0);
    }

    #[test]
    fn missing_grads_are_skipped() {
        let mut p = ParamStore::new();
        p.insert("frozen", Tensor::from_vec(vec![1], vec![7.0]));
        let mut opt = Adam::new(0.1);
        opt.step(&mut p, &GradMap::new());
        assert_eq!(p.get("frozen").data()[0], 7.0);
    }

    #[test]
    fn adam_state_round_trip_resumes_identically() {
        // Two optimizers: one runs 20 steps straight; the other runs 10,
        // exports/imports its state, and runs 10 more. Parameters must be
        // bit-identical — the checkpoint/resume invariant.
        let init = || {
            let mut p = ParamStore::new();
            p.insert("x", Tensor::from_vec(vec![3], vec![-5.0, 0.0, 20.0]));
            p
        };
        let mut p_straight = init();
        let mut opt_straight = Adam::new(0.1).with_weight_decay(0.01);
        for _ in 0..20 {
            let g = quadratic_grad(&p_straight);
            opt_straight.step(&mut p_straight, &g);
        }

        let mut p = init();
        let mut opt = Adam::new(0.1).with_weight_decay(0.01);
        for _ in 0..10 {
            let g = quadratic_grad(&p);
            opt.step(&mut p, &g);
        }
        let saved = opt.export_state();
        let mut resumed = Adam::new(0.1).with_weight_decay(0.01);
        resumed.import_state(&saved).unwrap();
        assert_eq!(resumed.steps(), 10);
        for _ in 0..10 {
            let g = quadratic_grad(&p);
            resumed.step(&mut p, &g);
        }
        assert_eq!(p.get("x").data(), p_straight.get("x").data());
    }

    #[test]
    fn cosine_schedule_shape() {
        let base = 1e-3;
        // Warmup ramps linearly.
        assert!(cosine_schedule(0, 10, 100, base, 0.0) < cosine_schedule(9, 10, 100, base, 0.0));
        // Peak at end of warmup.
        assert!((cosine_schedule(10, 10, 100, base, 0.0) - base).abs() < 1e-9);
        // Decays monotonically after warmup.
        assert!(cosine_schedule(50, 10, 100, base, 0.0) > cosine_schedule(90, 10, 100, base, 0.0));
        // Floors at min_lr.
        assert_eq!(cosine_schedule(1000, 10, 100, base, 1e-5), 1e-5);
    }
}
