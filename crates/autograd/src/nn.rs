//! Fused neural-network ops with hand-written adjoints: linear layers,
//! layer normalization, 2-d convolution, bilinear resize and token pooling.

use crate::tape::{Tape, Var};
use orbit2_tensor::conv::{conv2d, conv2d_grad_bias, conv2d_grad_input, conv2d_grad_weight, ConvGeom};
use orbit2_tensor::fused::{act_backward, layer_norm_rows, matmul_bias_act, Activation};
use orbit2_tensor::pool;
use orbit2_tensor::resize::{resize, ResizeMode};
use orbit2_tensor::simd;
use orbit2_tensor::Tensor;

impl<'t> Var<'t> {
    /// Affine map `self [N, I] @ weight^T [I, O] + bias [O]`.
    ///
    /// Weight layout is `[O, I]` (PyTorch convention). Routed through the
    /// fused GEMM epilogue with an identity activation.
    pub fn linear(&self, weight: Var<'t>, bias: Option<Var<'t>>) -> Var<'t> {
        self.linear_act(weight, bias, Activation::Identity)
    }

    /// Fused linear layer: `act(self @ weight^T + bias)` in one kernel.
    ///
    /// The bias add and activation run as a GEMM epilogue while each C
    /// block is cache-hot ([`matmul_bias_act`]); the pre-activation is kept
    /// on the tape so the backward pass evaluates `act'` without recomputing
    /// the GEMM. Backward products (`gz W`, `gz^T x`) use the stride-aware
    /// kernels — no transposes materialized anywhere on this path.
    pub fn linear_act(
        &self,
        weight: Var<'t>,
        bias: Option<Var<'t>>,
        act: Activation,
    ) -> Var<'t> {
        let x = self.value();
        let w = weight.value();
        let bt = bias.map(|b| b.value());
        let (y, pre) = matmul_bias_act(&x, &w, bt.as_ref(), act);
        let (xid, wid) = (self_id(self), self_id(&weight));
        let bid = bias.as_ref().map(self_id);
        let tracked = self_tracked(self)
            || self_tracked(&weight)
            || bias.map(|b| self_tracked(&b)).unwrap_or(false);
        self.tape().record_custom(
            y,
            tracked,
            Box::new(move |g| {
                // gz = g ⊙ act'(pre); identity has no stored pre.
                let gz = match &pre {
                    Some(p) => act_backward(g, p, act),
                    None => g.clone(),
                };
                let mut grads = vec![
                    (xid, gz.matmul(&w)),    // [m,n] @ [n,k] = x-grad
                    (wid, gz.matmul_tn(&x)), // gz^T x = w-grad [n,k]
                ];
                if let Some(bid) = bid {
                    grads.push((bid, gz.sum_axis(0)));
                }
                grads
            }),
        )
    }

    /// Layer normalization over the last axis with affine parameters.
    ///
    /// `gamma`/`beta` have the shape of the last axis. The forward pass is
    /// the one-pass Welford kernel ([`layer_norm_rows`]).
    pub fn layer_norm(&self, gamma: Var<'t>, beta: Var<'t>, eps: f32) -> Var<'t> {
        let v = self.value();
        let last = v.ndim() - 1;
        let d = v.shape()[last];
        let rows = v.len() / d;

        let (norm, inv_std) = layer_norm_rows(v.data(), rows, d, eps);
        let norm_t = Tensor::from_vec(v.shape().to_vec(), norm);
        let norm_c = norm_t.clone();

        // Record the normalization as a custom op, then the affine part with
        // ordinary tape ops (so gamma/beta grads come for free).
        let pid = self_id(self);
        let shape = v.shape().to_vec();
        let normalized = self.tape().record_custom(
            norm_t,
            self_tracked(self),
            Box::new(move |g| {
                // d/dx of x_hat: (g - mean(g) - x_hat * mean(g * x_hat)) * inv_std
                let gd = g.data();
                let nd = norm_c.data();
                let mut out = pool::alloc_uninit(gd.len());
                for r in 0..rows {
                    let gs = &gd[r * d..(r + 1) * d];
                    let ns = &nd[r * d..(r + 1) * d];
                    let mg = simd::sum(gs) / d as f32;
                    let mgx = simd::dot(gs, ns) / d as f32;
                    for ((o, &gv), &nv) in out[r * d..(r + 1) * d].iter_mut().zip(gs).zip(ns) {
                        *o = (gv - mg - nv * mgx) * inv_std[r];
                    }
                }
                vec![(pid, Tensor::from_vec(shape.clone(), out))]
            }),
        );
        normalized.mul(gamma).add(beta)
    }

    /// 2-d convolution: `self [N,C,H,W] * weight [O,C,KH,KW] (+ bias [O])`.
    pub fn conv2d(&self, weight: Var<'t>, bias: Option<Var<'t>>, geom: ConvGeom) -> Var<'t> {
        let x = self.value();
        let w = weight.value();
        let bt = bias.map(|b| b.value());
        let y = conv2d(&x, &w, bt.as_ref(), geom);
        let (xid, wid) = (self_id(self), self_id(&weight));
        let bid = bias.as_ref().map(self_id);
        let x_shape = x.shape().to_vec();
        let w_shape = w.shape().to_vec();
        let tracked = self_tracked(self) || self_tracked(&weight) || bias.map(|b| self_tracked(&b)).unwrap_or(false);
        self.tape().record_custom(
            y,
            tracked,
            Box::new(move |g| {
                let mut grads = vec![
                    (xid, conv2d_grad_input(g, &w, &x_shape, geom)),
                    (wid, conv2d_grad_weight(g, &x, &w_shape, geom)),
                ];
                if let Some(bid) = bid {
                    grads.push((bid, conv2d_grad_bias(g)));
                }
                grads
            }),
        )
    }

    /// Bilinear resize of the trailing two axes to `(out_h, out_w)`.
    pub fn resize_bilinear(&self, out_h: usize, out_w: usize) -> Var<'t> {
        let x = self.value();
        let nd = x.ndim();
        let (in_h, in_w) = (x.shape()[nd - 2], x.shape()[nd - 1]);
        let y = resize(&x, out_h, out_w, ResizeMode::Bilinear);
        let pid = self_id(self);
        self.tape().record_custom(
            y,
            self_tracked(self),
            Box::new(move |g| vec![(pid, bilinear_adjoint(g, in_h, in_w))]),
        )
    }

    /// Pool rows of a 2-d var into groups by averaging: `out[i] = mean of
    /// self[j] for j in groups[i]`. The decompression adjoint scatters the
    /// gradient back uniformly. This is the quad-tree token pooling of
    /// Reslim's adaptive spatial compression. The groups arrive `Arc`-shared
    /// (built once per compression plan) and the backward closure holds a
    /// pointer clone, not a deep copy.
    pub fn pool_rows(&self, groups: std::sync::Arc<[Vec<usize>]>) -> Var<'t> {
        let v = self.value();
        let (rows, cols) = (v.shape()[0], v.shape()[1]);
        let y = v.pool_rows(&groups);
        let pid = self_id(self);
        self.tape().record_custom(
            y,
            self_tracked(self),
            Box::new(move |g| {
                let gd = g.data();
                let mut out = pool::alloc_zeroed(rows * cols);
                for (gi, group) in groups.iter().enumerate() {
                    let inv = 1.0 / group.len() as f32;
                    let gs = &gd[gi * cols..(gi + 1) * cols];
                    for &r in group {
                        for (d, &x) in out[r * cols..(r + 1) * cols].iter_mut().zip(gs) {
                            *d += x * inv;
                        }
                    }
                }
                vec![(pid, Tensor::from_vec(vec![rows, cols], out))]
            }),
        )
    }

    /// Unpool grouped rows back to the original token set: `out[j] =
    /// self[i]` for every `j in groups[i]` (the inverse scatter of
    /// [`Var::pool_rows`], used by the decompression stage).
    pub fn unpool_rows(&self, groups: std::sync::Arc<[Vec<usize>]>, total_rows: usize) -> Var<'t> {
        let v = self.value();
        let cols = v.shape()[1];
        let y = v.unpool_rows(&groups, total_rows);
        let pid = self_id(self);
        let n_groups = groups.len();
        self.tape().record_custom(
            y,
            self_tracked(self),
            Box::new(move |g| {
                let gd = g.data();
                let mut out = pool::alloc_zeroed(n_groups * cols);
                for (gi, group) in groups.iter().enumerate() {
                    let dst = &mut out[gi * cols..(gi + 1) * cols];
                    for &r in group {
                        for (d, &x) in dst.iter_mut().zip(&gd[r * cols..(r + 1) * cols]) {
                            *d += x;
                        }
                    }
                }
                vec![(pid, Tensor::from_vec(vec![n_groups, cols], out))]
            }),
        )
    }
}

/// Adjoint of bilinear interpolation with half-pixel centers: distributes
/// each output gradient onto its four source pixels with the interpolation
/// weights.
pub fn bilinear_adjoint(grad_out: &Tensor, in_h: usize, in_w: usize) -> Tensor {
    let nd = grad_out.ndim();
    let (oh, ow) = (grad_out.shape()[nd - 2], grad_out.shape()[nd - 1]);
    let lead: usize = grad_out.shape()[..nd - 2].iter().product();
    let sy = in_h as f32 / oh as f32;
    let sx = in_w as f32 / ow as f32;
    let god = grad_out.data();
    let mut out = pool::alloc_zeroed(lead * in_h * in_w);
    for l in 0..lead {
        let gplane = &god[l * oh * ow..(l + 1) * oh * ow];
        let oplane = &mut out[l * in_h * in_w..(l + 1) * in_h * in_w];
        for oy in 0..oh {
            let fy = ((oy as f32 + 0.5) * sy - 0.5).clamp(0.0, (in_h - 1) as f32);
            let y0 = fy.floor() as usize;
            let y1 = (y0 + 1).min(in_h - 1);
            let wy = fy - y0 as f32;
            for ox in 0..ow {
                let fx = ((ox as f32 + 0.5) * sx - 0.5).clamp(0.0, (in_w - 1) as f32);
                let x0 = fx.floor() as usize;
                let x1 = (x0 + 1).min(in_w - 1);
                let wx = fx - x0 as f32;
                let g = gplane[oy * ow + ox];
                oplane[y0 * in_w + x0] += g * (1.0 - wy) * (1.0 - wx);
                oplane[y0 * in_w + x1] += g * (1.0 - wy) * wx;
                oplane[y1 * in_w + x0] += g * wy * (1.0 - wx);
                oplane[y1 * in_w + x1] += g * wy * wx;
            }
        }
    }
    let mut shape = grad_out.shape().to_vec();
    shape[nd - 2] = in_h;
    shape[nd - 1] = in_w;
    Tensor::from_vec(shape, out)
}

// Internal accessors used by the fused ops above. Kept crate-private via a
// sealed extension on Tape.
use crate::tape::tape_internals::{self, self_id, self_tracked};

/// Boxed adjoint of a custom op: maps the incoming gradient to
/// (parent id, contribution) pairs.
pub(crate) type CustomBackward = Box<dyn Fn(&Tensor) -> Vec<(usize, Tensor)>>;

impl Tape {
    pub(crate) fn record_custom(
        &self,
        value: Tensor,
        tracked: bool,
        backward: CustomBackward,
    ) -> Var<'_> {
        tape_internals::record(self, value, tracked, backward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use crate::tape::Tape;
    use orbit2_tensor::random::randn;

    #[test]
    fn linear_forward_matches_manual() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1, 2], vec![1.0, 2.0]));
        let w = tape.leaf(Tensor::from_vec(vec![3, 2], vec![1., 0., 0., 1., 1., 1.]));
        let b = tape.leaf(Tensor::from_vec(vec![3], vec![0.5, -0.5, 0.0]));
        let y = x.linear(w, Some(b));
        assert_eq!(y.value().data(), &[1.5, 1.5, 3.0]);
    }

    #[test]
    fn linear_grads_match_fd() {
        check_gradients(
            &[vec![4, 3], vec![2, 3], vec![2]],
            |_t, v| v[0].linear(v[1], Some(v[2])).square().sum(),
            1e-2,
            21,
        );
    }

    #[test]
    fn fused_linear_gelu_grads_match_fd() {
        check_gradients(
            &[vec![4, 3], vec![2, 3], vec![2]],
            |_t, v| v[0].linear_act(v[1], Some(v[2]), Activation::Gelu).square().sum(),
            2e-2,
            22,
        );
    }

    #[test]
    fn fused_linear_relu_grads_match_fd() {
        // ReLU kink: the seeded inputs keep pre-activations away from 0.
        check_gradients(
            &[vec![3, 4], vec![2, 4]],
            |_t, v| v[0].linear_act(v[1], None, Activation::Relu).square().sum(),
            2e-2,
            24,
        );
    }

    #[test]
    fn fused_linear_matches_unfused_graph() {
        let tape = Tape::new();
        let x = tape.leaf(randn(&[5, 7], 31));
        let w = tape.leaf(randn(&[4, 7], 32));
        let b = tape.leaf(randn(&[4], 33));
        let fused = x.linear_act(w, Some(b), Activation::Gelu);
        let unfused = x.matmul(w.transpose2()).add(b).gelu();
        fused.value().assert_close(&unfused.value(), 1e-4);
    }

    #[test]
    fn layer_norm_output_is_normalized() {
        let tape = Tape::new();
        let x = tape.leaf(randn(&[4, 8], 5).mul_scalar(3.0).add_scalar(7.0));
        let g = tape.leaf(Tensor::ones(vec![8]));
        let b = tape.leaf(Tensor::zeros(vec![8]));
        let y = x.layer_norm(g, b, 1e-5).value();
        for r in 0..4 {
            let row = &y.data()[r * 8..(r + 1) * 8];
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn layer_norm_grads_match_fd() {
        check_gradients(
            &[vec![3, 5], vec![5], vec![5]],
            |_t, v| v[0].layer_norm(v[1], v[2], 1e-5).square().sum(),
            2e-2,
            23,
        );
    }

    #[test]
    fn conv2d_grads_match_fd() {
        let geom = ConvGeom::same(3);
        check_gradients(
            &[vec![1, 2, 5, 5], vec![3, 2, 3, 3], vec![3]],
            move |_t, v| {
                let x = v[0];
                x.conv2d(v[1], Some(v[2]), geom).square().sum()
            },
            3e-2,
            25,
        );
    }

    #[test]
    fn resize_bilinear_grads_match_fd() {
        check_gradients(
            &[vec![1, 4, 4]],
            |_t, v| v[0].resize_bilinear(8, 8).square().sum(),
            2e-2,
            27,
        );
    }

    #[test]
    fn resize_adjoint_preserves_total_gradient() {
        // The adjoint of an interpolation whose weights sum to 1 per output
        // pixel conserves the total gradient mass.
        let g = Tensor::ones(vec![1, 8, 8]);
        let adj = bilinear_adjoint(&g, 4, 4);
        assert!((adj.sum() - 64.0).abs() < 1e-3);
    }

    #[test]
    fn pool_unpool_grads_match_fd() {
        let groups: std::sync::Arc<[Vec<usize>]> =
            vec![vec![0, 1], vec![2], vec![3, 4, 5]].into();
        check_gradients(
            &[vec![6, 3]],
            move |_t, v| {
                let pooled = v[0].pool_rows(groups.clone());
                pooled.unpool_rows(groups.clone(), 6).square().sum()
            },
            1e-2,
            29,
        );
    }

    #[test]
    fn pool_rows_averages() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![4, 1], vec![1.0, 3.0, 10.0, 20.0]));
        let y = x.pool_rows(vec![vec![0, 1], vec![2, 3]].into());
        assert_eq!(y.value().data(), &[2.0, 15.0]);
    }

    #[test]
    fn unpool_broadcasts_group_value() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![2, 1], vec![5.0, 9.0]));
        let y = x.unpool_rows(vec![vec![0, 2], vec![1]].into(), 3);
        assert_eq!(y.value().data(), &[5.0, 9.0, 5.0]);
    }
}
