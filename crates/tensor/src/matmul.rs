//! Packed, register-blocked matrix multiplication.
//!
//! The hot kernel follows the GotoBLAS recipe (the same GEMM core Flash
//! Attention builds on): B is packed into L1-resident `KC x NR` column
//! panels, A into `MC x KC` row panels of `MR`-wide strips, and an
//! `MR x NR` register-blocked microkernel runs fused multiply-adds over
//! [`F32x8`] lanes — 12 vector accumulators that never touch memory inside
//! the k-loop. Macro-tiles over rows of C are distributed across the rayon
//! pool; pack buffers come from the thread-local buffer pool so steady-state
//! calls allocate nothing.
//!
//! [`MatLayout`] gives every operand an arbitrary (row, col) stride, so
//! `A^T B` and `A B^T` products — the adjoints of `matmul` and the
//! `x W^T` convention of linear layers — are packed straight from the
//! original storage without materializing a transpose.
//!
//! [`matmul_slices`] keeps the scalar cache-blocked loop as the reference
//! oracle: property tests compare the packed kernel against it, and
//! `ORBIT2_DISABLE_SIMD=1` routes everything back to it.

use crate::pool::{self, Buffer};
use crate::simd::{self, F32x8, LANES};
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Microkernel tile rows (rows of C updated per inner call).
pub const MR: usize = 6;
/// Microkernel tile columns: two [`F32x8`] vectors wide.
pub const NR: usize = 2 * LANES;
/// Rows of A per macro block (one parallel task); a multiple of `MR`.
const MC: usize = 72;
/// Depth of one packed panel; sized so a `KC x NR` B-panel stays L1-resident.
const KC: usize = 256;

/// Element addressing for a GEMM operand: element `(i, j)` lives at
/// `i * rs + j * cs`. Row-major is `rs = cols, cs = 1`; the transpose of a
/// row-major matrix is `rs = 1, cs = cols`.
#[derive(Debug, Clone, Copy)]
pub struct MatLayout {
    /// Stride between consecutive rows.
    pub rs: usize,
    /// Stride between consecutive columns.
    pub cs: usize,
}

impl MatLayout {
    /// Row-major layout for a matrix with `cols` columns.
    pub fn row_major(cols: usize) -> Self {
        Self { rs: cols, cs: 1 }
    }

    /// The transpose view of a row-major matrix with `cols` columns.
    pub fn transposed(cols: usize) -> Self {
        Self { rs: 1, cs: cols }
    }
}

/// `C[m x n] += op(A) * op(B)` with arbitrary operand strides.
///
/// `c` is row-major and accumulated into (zero it for a plain product).
/// Dispatches to the packed SIMD kernel, or to the scalar reference when
/// `ORBIT2_DISABLE_SIMD=1` or the problem is too small to amortize packing.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    a: &[f32],
    la: MatLayout,
    b: &[f32],
    lb: MatLayout,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    parallel: bool,
) {
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // Mat-vec fast path: one SIMD dot per row when both a row of A and the
    // single column of B are contiguous.
    if n == 1 && la.cs == 1 && lb.rs == 1 {
        for (i, cv) in c.iter_mut().enumerate() {
            *cv += simd::dot(&a[i * la.rs..i * la.rs + k], &b[..k]);
        }
        return;
    }
    if simd::enabled() && n >= LANES && m * n * k >= 2048 {
        gemm_packed(a, la, b, lb, c, m, k, n, parallel);
    } else {
        gemm_ref(a, la, b, lb, c, m, k, n, parallel);
    }
}

// ---------------------------------------------------------------------------
// Packed SIMD path
// ---------------------------------------------------------------------------

/// Pack `rows` rows of `op(A)` (starting at `i0`) into `MR`-wide strips:
/// strip `p` holds rows `p*MR..`, laid out k-major (`out[kk*MR + r]`), with
/// ragged rows zero-padded so the microkernel never branches.
fn pack_a(a: &[f32], la: MatLayout, i0: usize, rows: usize, k: usize, out: &mut [f32]) {
    let npanels = rows.div_ceil(MR);
    for p in 0..npanels {
        let r0 = p * MR;
        let mr = MR.min(rows - r0);
        let dst = &mut out[p * k * MR..(p + 1) * k * MR];
        if la.cs == 1 {
            // Row-major source: walk each row once (contiguous reads).
            for r in 0..MR {
                if r < mr {
                    let base = (i0 + r0 + r) * la.rs;
                    for (kk, &v) in a[base..base + k].iter().enumerate() {
                        dst[kk * MR + r] = v;
                    }
                } else {
                    for kk in 0..k {
                        dst[kk * MR + r] = 0.0;
                    }
                }
            }
        } else {
            // Column-contiguous source (transpose view): walk k-major so
            // both read and write are contiguous.
            for kk in 0..k {
                let d = &mut dst[kk * MR..kk * MR + MR];
                for (r, dv) in d.iter_mut().enumerate() {
                    *dv = if r < mr { a[(i0 + r0 + r) * la.rs + kk * la.cs] } else { 0.0 };
                }
            }
        }
    }
}

/// Pack all of `op(B)` into `NR`-wide column strips, k-major within a strip
/// (`out[kk*NR + c]`), ragged columns zero-padded. A `KC`-deep slice of one
/// strip is the L1-resident panel the microkernel streams.
fn pack_b(b: &[f32], lb: MatLayout, k: usize, n: usize, out: &mut [f32]) {
    let nstrips = n.div_ceil(NR);
    for s in 0..nstrips {
        let j0 = s * NR;
        let cols = NR.min(n - j0);
        let dst = &mut out[s * k * NR..(s + 1) * k * NR];
        if lb.cs == 1 {
            for kk in 0..k {
                let src = &b[kk * lb.rs + j0..kk * lb.rs + j0 + cols];
                let d = &mut dst[kk * NR..(kk + 1) * NR];
                d[..cols].copy_from_slice(src);
                d[cols..].fill(0.0);
            }
        } else {
            for c0 in 0..NR {
                if c0 < cols {
                    let base = (j0 + c0) * lb.cs;
                    for kk in 0..k {
                        dst[kk * NR + c0] = b[base + kk * lb.rs];
                    }
                } else {
                    for kk in 0..k {
                        dst[kk * NR + c0] = 0.0;
                    }
                }
            }
        }
    }
}

/// The `MR x NR` register-blocked FMA microkernel: `acc += Ap * Bp` over a
/// `kc`-deep packed panel pair. All twelve accumulators live in registers
/// for the whole loop; each iteration is two vector loads, `MR` broadcasts
/// and `2*MR` fused multiply-adds.
#[inline(always)]
fn microkernel(ap: &[f32], bp: &[f32], kc: usize, acc: &mut [[F32x8; 2]; MR]) {
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    for (bchunk, achunk) in bp.chunks_exact(NR).zip(ap.chunks_exact(MR)) {
        let b0 = F32x8::load(bchunk);
        let b1 = F32x8::load(&bchunk[LANES..]);
        for (accr, &av) in acc.iter_mut().zip(achunk) {
            let a = F32x8::splat(av);
            accr[0] = a.mul_add(b0, accr[0]);
            accr[1] = a.mul_add(b1, accr[1]);
        }
    }
}

/// Accumulate a finished microkernel tile into C at `(r0, j0)`; ragged
/// edges spill through a small scratch tile.
#[inline]
fn store_tile(
    acc: &[[F32x8; 2]; MR],
    c: &mut [f32],
    r0: usize,
    j0: usize,
    mr: usize,
    nr: usize,
    ldc: usize,
) {
    if mr == MR && nr == NR {
        for (r, accr) in acc.iter().enumerate() {
            let row = &mut c[(r0 + r) * ldc + j0..(r0 + r) * ldc + j0 + NR];
            let lo = F32x8::load(row);
            accr[0].add(lo).store(row);
            let hi = F32x8::load(&row[LANES..]);
            accr[1].add(hi).store(&mut row[LANES..]);
        }
    } else {
        let mut scratch = [0.0f32; MR * NR];
        for (r, accr) in acc.iter().enumerate() {
            accr[0].store(&mut scratch[r * NR..]);
            accr[1].store(&mut scratch[r * NR + LANES..]);
        }
        for r in 0..mr {
            let row = &mut c[(r0 + r) * ldc + j0..(r0 + r) * ldc + j0 + nr];
            for (dst, &s) in row.iter_mut().zip(&scratch[r * NR..r * NR + nr]) {
                *dst += s;
            }
        }
    }
}

/// Pack all of `op(B)` into pooled strip storage, ready for
/// [`gemm_rows_packed_b`]. Lets callers that sweep many row blocks against
/// one B (fused epilogues, batched products) pay the pack cost once.
pub(crate) fn pack_b_full(b: &[f32], lb: MatLayout, k: usize, n: usize) -> Buffer {
    let nstrips = n.div_ceil(NR);
    let mut bpack = Buffer::uninit(nstrips * k * NR);
    pack_b(b, lb, k, n, &mut bpack);
    bpack
}

/// Multiply rows `i0..i0 + cblock.len()/n` of `op(A)` against a pre-packed
/// B ([`pack_b_full`]), accumulating into the row-major block `cblock`.
pub(crate) fn gemm_rows_packed_b(
    a: &[f32],
    la: MatLayout,
    i0: usize,
    bp: &[f32],
    cblock: &mut [f32],
    k: usize,
    n: usize,
) {
    let nstrips = n.div_ceil(NR);
    let rows = cblock.len() / n;
    let npanels = rows.div_ceil(MR);
    // Per-task A pack (thread-local pool buffer, recycled on drop).
    let mut apack = Buffer::uninit(npanels * k * MR);
    pack_a(a, la, i0, rows, k, &mut apack);
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        for s in 0..nstrips {
            let j0 = s * NR;
            let nr = NR.min(n - j0);
            let bstrip = &bp[(s * k + pc) * NR..(s * k + pc + kc) * NR];
            for p in 0..npanels {
                let r0 = p * MR;
                let mr = MR.min(rows - r0);
                let apanel = &apack[(p * k + pc) * MR..(p * k + pc + kc) * MR];
                let mut acc = [[F32x8::ZERO; 2]; MR];
                microkernel(apanel, bstrip, kc, &mut acc);
                store_tile(&acc, cblock, r0, j0, mr, nr, n);
            }
        }
    }
}

/// True when the packed kernel is profitable (and not disabled); otherwise
/// callers route to the scalar reference.
///
/// Public because batched execution must prove it takes the *same* kernel
/// branch as the per-sample calls it replaces: stacking requests along the
/// row axis grows `m`, and a batch that crosses this threshold while its
/// constituents did not (or vice versa) would mix packed-FMA and scalar
/// arithmetic — bit-different results. The serving batcher checks this
/// predicate per linear layer and falls back to per-sample dispatch on the
/// (degenerate, tiny-shape) mismatch case.
pub fn packed_eligible(m: usize, k: usize, n: usize) -> bool {
    simd::enabled() && n >= LANES && m * n * k >= 2048
}

#[allow(clippy::too_many_arguments)]
fn gemm_packed(
    a: &[f32],
    la: MatLayout,
    b: &[f32],
    lb: MatLayout,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    parallel: bool,
) {
    // B is packed once, up front, and shared read-only by every macro task.
    let bpack = pack_b_full(b, lb, k, n);
    let bp: &[f32] = &bpack;
    if parallel && m > MC {
        c.par_chunks_mut(MC * n)
            .enumerate()
            .for_each(|(bi, cb)| gemm_rows_packed_b(a, la, bi * MC, bp, cb, k, n));
    } else {
        for (bi, cb) in c.chunks_mut(MC * n).enumerate() {
            gemm_rows_packed_b(a, la, bi * MC, bp, cb, k, n);
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar reference path
// ---------------------------------------------------------------------------

/// Scalar cache-blocked kernel with arbitrary strides: the `i-k-j` loop
/// order keeps the inner loop an auto-vectorizable axpy when B is
/// row-major. Unconditional accumulation — a data-dependent zero-skip
/// branch in the hot loop costs more than the multiply it saves and blocks
/// vectorization, so sparsity exploitation belongs at block granularity,
/// not here.
#[allow(clippy::too_many_arguments)]
fn gemm_ref(
    a: &[f32],
    la: MatLayout,
    b: &[f32],
    lb: MatLayout,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    parallel: bool,
) {
    let body = |bi: usize, cblock: &mut [f32]| {
        let i0 = bi * MC;
        let rows = cblock.len() / n;
        for k0 in (0..k).step_by(KC) {
            let kmax = (k0 + KC).min(k);
            for di in 0..rows {
                let i = i0 + di;
                let c_row = &mut cblock[di * n..(di + 1) * n];
                for kk in k0..kmax {
                    let aik = a[i * la.rs + kk * la.cs];
                    if lb.cs == 1 {
                        let b_row = &b[kk * lb.rs..kk * lb.rs + n];
                        for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                            *cv += aik * bv;
                        }
                    } else {
                        for (j, cv) in c_row.iter_mut().enumerate() {
                            *cv += aik * b[kk * lb.rs + j * lb.cs];
                        }
                    }
                }
            }
        }
    };
    if parallel && m > MC {
        c.par_chunks_mut(MC * n).enumerate().for_each(|(bi, cb)| body(bi, cb));
    } else {
        for (bi, cb) in c.chunks_mut(MC * n).enumerate() {
            body(bi, cb);
        }
    }
}

/// `C[m x n] = A[m x k] * B[k x n]` on raw row-major slices, scalar blocked
/// reference. `c` must be zero-initialized (the kernel accumulates). This
/// is the oracle the packed kernel is property-tested against.
pub fn matmul_slices(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    gemm_ref(a, MatLayout::row_major(k), b, MatLayout::row_major(n), c, m, k, n, true);
}

/// Sequential matmul used inside already-parallel regions (dispatches to the
/// packed kernel, without taking rayon a second time).
pub fn matmul_block_seq(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm(a, MatLayout::row_major(k), b, MatLayout::row_major(n), c, m, k, n, false);
}

impl Tensor {
    /// Matrix product of two 2-d tensors.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul lhs must be 2-d, got {:?}", self.shape());
        assert_eq!(other.ndim(), 2, "matmul rhs must be 2-d, got {:?}", other.shape());
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "matmul inner dims differ: {:?} x {:?}", self.shape(), other.shape());
        let mut out = pool::alloc_zeroed(m * n);
        gemm(
            self.data(),
            MatLayout::row_major(k),
            other.data(),
            MatLayout::row_major(n),
            &mut out,
            m,
            k,
            n,
            true,
        );
        Tensor::from_vec(vec![m, n], out)
    }

    /// `self * other^T` without materializing the transpose: `self` is
    /// `[m, k]`, `other` is `[n, k]`, the result `[m, n]`. This is the
    /// layout of a linear layer (`x W^T` with PyTorch `[out, in]` weights)
    /// and of the `g B^T` matmul adjoint.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul_nt lhs must be 2-d");
        assert_eq!(other.ndim(), 2, "matmul_nt rhs must be 2-d");
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (n, k2) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "matmul_nt inner dims differ: {:?} x {:?}", self.shape(), other.shape());
        let mut out = pool::alloc_zeroed(m * n);
        gemm(
            self.data(),
            MatLayout::row_major(k),
            other.data(),
            MatLayout::transposed(k),
            &mut out,
            m,
            k,
            n,
            true,
        );
        Tensor::from_vec(vec![m, n], out)
    }

    /// `self^T * other` without materializing the transpose: `self` is
    /// `[k, m]`, `other` is `[k, n]`, the result `[m, n]` — the `A^T g`
    /// matmul adjoint and the weight gradient of a linear layer.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul_tn lhs must be 2-d");
        assert_eq!(other.ndim(), 2, "matmul_tn rhs must be 2-d");
        let (k, m) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "matmul_tn inner dims differ: {:?} x {:?}", self.shape(), other.shape());
        let mut out = pool::alloc_zeroed(m * n);
        gemm(
            self.data(),
            MatLayout::transposed(m),
            other.data(),
            MatLayout::row_major(n),
            &mut out,
            m,
            k,
            n,
            true,
        );
        Tensor::from_vec(vec![m, n], out)
    }

    /// Batched matrix product of 3-d tensors `[B, m, k] x [B, k, n]`.
    ///
    /// The batch axis of either side may be 1 (broadcast).
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 3, "bmm lhs must be 3-d");
        assert_eq!(other.ndim(), 3, "bmm rhs must be 3-d");
        let (ba, m, k) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        let (bb, k2, n) = (other.shape()[0], other.shape()[1], other.shape()[2]);
        assert_eq!(k, k2, "bmm inner dims differ");
        let batch = if ba == bb {
            ba
        } else if ba == 1 {
            bb
        } else if bb == 1 {
            ba
        } else {
            panic!("bmm batch dims incompatible: {ba} vs {bb}");
        };
        let mut out = pool::alloc_zeroed(batch * m * n);
        let ad = self.data();
        let bd = other.data();
        out.par_chunks_mut(m * n).enumerate().for_each(|(b, c)| {
            let a_off = if ba == 1 { 0 } else { b * m * k };
            let b_off = if bb == 1 { 0 } else { b * k * n };
            // Sequential inner matmul: parallelism is already taken at the
            // batch level; nested rayon would only add overhead.
            matmul_block_seq(&ad[a_off..a_off + m * k], &bd[b_off..b_off + k * n], c, m, k, n);
        });
        Tensor::from_vec(vec![batch, m, n], out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a.data()[i * k + kk] * b.data()[kk * n + j];
                }
                out[i * n + j] = s;
            }
        }
        Tensor::from_vec(vec![m, n], out)
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn identity_is_noop() {
        let a = Tensor::arange(16).reshape(vec![4, 4]);
        let mut eye = Tensor::zeros(vec![4, 4]);
        for i in 0..4 {
            eye.set(&[i, i], 1.0);
        }
        a.matmul(&eye).assert_close(&a, 0.0);
        eye.matmul(&a).assert_close(&a, 0.0);
    }

    #[test]
    fn blocked_matches_naive_odd_sizes() {
        use crate::random::randn;
        // Sizes straddling block, panel and strip boundaries.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (65, 257, 33),
            (128, 64, 70),
            (3, 300, 5),
            (73, 17, 16),
            (6, 8, 16),
            (MR + 1, KC + 1, NR + 1),
        ] {
            let a = randn(&[m, k], 1);
            let b = randn(&[k, n], 2);
            let fast = a.matmul(&b);
            let slow = naive(&a, &b);
            assert!(fast.max_abs_diff(&slow) < 1e-3 * (k as f32).sqrt(), "({m},{k},{n})");
        }
    }

    #[test]
    fn packed_matches_reference_oracle() {
        use crate::random::randn;
        for &(m, k, n) in &[(50usize, 40usize, 30usize), (100, 300, 20), (7, 5, 100)] {
            let a = randn(&[m, k], 11);
            let b = randn(&[k, n], 12);
            let mut reference = vec![0.0f32; m * n];
            matmul_slices(a.data(), b.data(), &mut reference, m, k, n);
            let fast = a.matmul(&b);
            let r = Tensor::from_vec(vec![m, n], reference);
            assert!(fast.max_abs_diff(&r) < 1e-3 * (k as f32).sqrt(), "({m},{k},{n})");
        }
    }

    #[test]
    fn nt_and_tn_match_explicit_transposes() {
        use crate::random::randn;
        for &(m, k, n) in &[(33usize, 47usize, 29usize), (6, 16, 16), (70, 3, 5)] {
            let a = randn(&[m, k], 21);
            let bt = randn(&[n, k], 22); // B^T stored row-major
            a.matmul_nt(&bt).assert_close(&a.matmul(&bt.transpose2()), 2e-4 * (k as f32).sqrt());
            let at = randn(&[k, m], 23); // A stored transposed
            let b = randn(&[k, n], 24);
            at.matmul_tn(&b).assert_close(&at.transpose2().matmul(&b), 2e-4 * (k as f32).sqrt());
        }
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        use crate::random::randn;
        let a = randn(&[3, 4, 5], 7);
        let b = randn(&[3, 5, 6], 8);
        let c = a.bmm(&b);
        assert_eq!(c.shape(), &[3, 4, 6]);
        for bi in 0..3 {
            let ai = a.slice_axis(0, bi, 1).reshape(vec![4, 5]);
            let bj = b.slice_axis(0, bi, 1).reshape(vec![5, 6]);
            let ci = c.slice_axis(0, bi, 1).reshape(vec![4, 6]);
            ci.assert_close(&ai.matmul(&bj), 1e-4);
        }
    }

    #[test]
    fn bmm_broadcast_lhs() {
        use crate::random::randn;
        let a = randn(&[1, 2, 3], 9);
        let b = randn(&[4, 3, 2], 10);
        let c = a.bmm(&b);
        assert_eq!(c.shape(), &[4, 2, 2]);
        let a0 = a.reshape(vec![2, 3]);
        for bi in 0..4 {
            let bj = b.slice_axis(0, bi, 1).reshape(vec![3, 2]);
            let ci = c.slice_axis(0, bi, 1).reshape(vec![2, 2]);
            ci.assert_close(&a0.matmul(&bj), 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![4, 2]);
        let _ = a.matmul(&b);
    }
}
