//! Blocked, rayon-parallel matrix multiplication.
//!
//! The kernel is a classic L1-blocked triple loop with the k-loop innermost
//! replaced by an i-k-j order so the inner loop is a fused multiply-add over
//! contiguous rows of B — auto-vectorizable and allocation-free, per the
//! perf-book guidance. Rows of the output are distributed over the rayon
//! pool in chunks.

use crate::pool;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Block edge for the cache-blocked kernel (elements).
const MC: usize = 64;
const KC: usize = 256;

/// `C[m x n] = A[m x k] * B[k x n]` on raw slices.
///
/// `c` must be zero-initialized (the kernel accumulates).
pub fn matmul_slices(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    // Parallelize over row blocks of C; each rayon task owns a disjoint
    // chunk of C so no synchronization is needed.
    let row_block = MC.max(1);
    c.par_chunks_mut(row_block * n).enumerate().for_each(|(bi, c_block)| {
        let i0 = bi * row_block;
        let rows = c_block.len() / n;
        for k0 in (0..k).step_by(KC) {
            let kmax = (k0 + KC).min(k);
            for di in 0..rows {
                let i = i0 + di;
                let a_row = &a[i * k..(i + 1) * k];
                let c_row = &mut c_block[di * n..(di + 1) * n];
                for kk in k0..kmax {
                    let aik = a_row[kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b[kk * n..(kk + 1) * n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aik * bv;
                    }
                }
            }
        }
    });
}

impl Tensor {
    /// Matrix product of two 2-d tensors.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul lhs must be 2-d, got {:?}", self.shape());
        assert_eq!(other.ndim(), 2, "matmul rhs must be 2-d, got {:?}", other.shape());
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "matmul inner dims differ: {:?} x {:?}", self.shape(), other.shape());
        let mut out = pool::alloc_zeroed(m * n);
        matmul_slices(self.data(), other.data(), &mut out, m, k, n);
        Tensor::from_vec(vec![m, n], out)
    }

    /// Batched matrix product of 3-d tensors `[B, m, k] x [B, k, n]`.
    ///
    /// The batch axis of either side may be 1 (broadcast).
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 3, "bmm lhs must be 3-d");
        assert_eq!(other.ndim(), 3, "bmm rhs must be 3-d");
        let (ba, m, k) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        let (bb, k2, n) = (other.shape()[0], other.shape()[1], other.shape()[2]);
        assert_eq!(k, k2, "bmm inner dims differ");
        let batch = if ba == bb {
            ba
        } else if ba == 1 {
            bb
        } else if bb == 1 {
            ba
        } else {
            panic!("bmm batch dims incompatible: {ba} vs {bb}");
        };
        let mut out = pool::alloc_zeroed(batch * m * n);
        let ad = self.data();
        let bd = other.data();
        out.par_chunks_mut(m * n).enumerate().for_each(|(b, c)| {
            let a_off = if ba == 1 { 0 } else { b * m * k };
            let b_off = if bb == 1 { 0 } else { b * k * n };
            // Sequential inner matmul: parallelism is already taken at the
            // batch level; nested rayon would only add overhead.
            matmul_block_seq(&ad[a_off..a_off + m * k], &bd[b_off..b_off + k * n], c, m, k, n);
        });
        Tensor::from_vec(vec![batch, m, n], out)
    }
}

/// Sequential blocked matmul used inside already-parallel regions.
pub fn matmul_block_seq(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for k0 in (0..k).step_by(KC) {
        let kmax = (k0 + KC).min(k);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n..(i + 1) * n];
            for kk in k0..kmax {
                let aik = a_row[kk];
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n..(kk + 1) * n];
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aik * bv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a.data()[i * k + kk] * b.data()[kk * n + j];
                }
                out[i * n + j] = s;
            }
        }
        Tensor::from_vec(vec![m, n], out)
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn identity_is_noop() {
        let a = Tensor::arange(16).reshape(vec![4, 4]);
        let mut eye = Tensor::zeros(vec![4, 4]);
        for i in 0..4 {
            eye.set(&[i, i], 1.0);
        }
        a.matmul(&eye).assert_close(&a, 0.0);
        eye.matmul(&a).assert_close(&a, 0.0);
    }

    #[test]
    fn blocked_matches_naive_odd_sizes() {
        use crate::random::randn;
        // Sizes straddling the block boundaries.
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (65, 257, 33), (128, 64, 70), (3, 300, 5)] {
            let a = randn(&[m, k], 1);
            let b = randn(&[k, n], 2);
            let fast = a.matmul(&b);
            let slow = naive(&a, &b);
            assert!(fast.max_abs_diff(&slow) < 1e-3 * (k as f32).sqrt(), "({m},{k},{n})");
        }
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        use crate::random::randn;
        let a = randn(&[3, 4, 5], 7);
        let b = randn(&[3, 5, 6], 8);
        let c = a.bmm(&b);
        assert_eq!(c.shape(), &[3, 4, 6]);
        for bi in 0..3 {
            let ai = a.slice_axis(0, bi, 1).reshape(vec![4, 5]);
            let bj = b.slice_axis(0, bi, 1).reshape(vec![5, 6]);
            let ci = c.slice_axis(0, bi, 1).reshape(vec![4, 6]);
            ci.assert_close(&ai.matmul(&bj), 1e-4);
        }
    }

    #[test]
    fn bmm_broadcast_lhs() {
        use crate::random::randn;
        let a = randn(&[1, 2, 3], 9);
        let b = randn(&[4, 3, 2], 10);
        let c = a.bmm(&b);
        assert_eq!(c.shape(), &[4, 2, 2]);
        let a0 = a.reshape(vec![2, 3]);
        for bi in 0..4 {
            let bj = b.slice_axis(0, bi, 1).reshape(vec![3, 2]);
            let ci = c.slice_axis(0, bi, 1).reshape(vec![2, 2]);
            ci.assert_close(&a0.matmul(&bj), 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![4, 2]);
        let _ = a.matmul(&b);
    }
}
