//! BF16 emulation and real `u16`-backed BF16 storage.
//!
//! The paper trains ORBIT-2 in BFLOAT16 with dynamic gradient scaling
//! (Sec. III-D). Two layers of support live here:
//!
//! * **Emulation** ([`bf16_round`], [`Bf16Mode`]): `f32` values rounded to
//!   the nearest 8-bit-mantissa value (round-to-nearest-even on the
//!   truncated bits) while staying 32-bit in memory — the same trick
//!   PyTorch uses for CPU BF16 emulation. Used by the mixed-precision
//!   trainer, where every value immediately re-enters f32 arithmetic.
//! * **Storage** ([`f32_to_bf16`], [`bf16_to_f32`]): real 16-bit words (the
//!   high half of the rounded f32 bit pattern), halving the bytes a weight
//!   stream moves. The reduced-precision GEMM ([`crate::qgemm`]) keeps
//!   resident weight packs in this form. Round-tripping storage is
//!   bit-identical to [`bf16_round`] for every finite and infinite value;
//!   NaNs keep their class but not their payload (a 16-bit word cannot hold
//!   payload bits that live in the low mantissa half, so the quiet bit is
//!   forced to keep the encoding a NaN rather than decaying to infinity).

use crate::pool;
use crate::tensor::Tensor;

/// Whether a computation runs in full or emulated-BF16 precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Bf16Mode {
    /// Plain f32; no rounding applied.
    #[default]
    Full,
    /// Values rounded to BF16 precision at layer boundaries.
    Emulated,
}

/// Round one `f32` to the nearest BF16-representable value.
pub fn bf16_round(x: f32) -> f32 {
    if !x.is_finite() {
        return x;
    }
    let bits = x.to_bits();
    // Round-to-nearest-even on the low 16 bits.
    let rounding_bias = 0x7FFF + ((bits >> 16) & 1);
    let rounded = bits.wrapping_add(rounding_bias) & 0xFFFF_0000;
    f32::from_bits(rounded)
}

/// Round every element of a slice to BF16 precision, in place.
///
/// One branchless integer body for both SIMD modes: round bias + mask, with
/// a select to pass non-finite values through unchanged. The whole loop is
/// straight-line `u32` arithmetic, so LLVM turns it into wide integer ops
/// where the scalar [`bf16_round`]'s early return blocks that — and because
/// it is bit-identical to mapping `bf16_round` (asserted by
/// `slice_round_matches_scalar_bitwise`), no separate scalar body is needed
/// under `ORBIT2_DISABLE_SIMD=1`; that escape hatch matters only where the
/// vector and scalar paths can round differently (the GEMM kernels).
pub fn bf16_round_slice(dst: &mut [f32]) {
    for v in dst.iter_mut() {
        let bits = v.to_bits();
        let rounding_bias = 0x7FFF + ((bits >> 16) & 1);
        let rounded = bits.wrapping_add(rounding_bias) & 0xFFFF_0000;
        // Exponent all-ones => inf/NaN: keep the original bits.
        let nonfinite = (bits & 0x7F80_0000) == 0x7F80_0000;
        *v = f32::from_bits(if nonfinite { bits } else { rounded });
    }
}

/// Convert one `f32` to a `u16` BF16 word (round-to-nearest-even).
///
/// The word is the high half of [`bf16_round`]'s bit pattern, so widening it
/// back with [`bf16_to_f32`] reproduces `bf16_round(x)` bit for bit — except
/// for NaNs whose payload lives entirely in the low mantissa bits, where
/// truncation would yield an infinity encoding; the quiet bit is forced so
/// the value stays a NaN.
#[inline]
pub fn f32_to_bf16(x: f32) -> u16 {
    let bits = x.to_bits();
    if (bits & 0x7F80_0000) == 0x7F80_0000 {
        // Inf or NaN: truncate, forcing the quiet bit for NaNs.
        let hi = (bits >> 16) as u16;
        return if bits & 0x007F_FFFF != 0 { hi | 0x0040 } else { hi };
    }
    let rounding_bias = 0x7FFF + ((bits >> 16) & 1);
    (bits.wrapping_add(rounding_bias) >> 16) as u16
}

/// Widen one `u16` BF16 word back to `f32` (exact; every BF16 value is
/// representable).
#[inline(always)]
pub fn bf16_to_f32(w: u16) -> f32 {
    f32::from_bits((w as u32) << 16)
}

/// Convert a slice of `f32` into freshly allocated BF16 words.
pub fn f32_slice_to_bf16(src: &[f32]) -> Vec<u16> {
    src.iter().map(|&x| f32_to_bf16(x)).collect()
}

/// Widen BF16 words into an `f32` destination of the same length.
///
/// The body is a zero-extend and a shift per element — LLVM vectorizes it —
/// and it is the inner widening step of the bf16 GEMM's strip scratch.
#[inline]
pub fn bf16_slice_to_f32(src: &[u16], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    for (d, &w) in dst.iter_mut().zip(src) {
        *d = bf16_to_f32(w);
    }
}

impl Tensor {
    /// Quantize every element to BF16 precision (returns a new tensor).
    pub fn to_bf16(&self) -> Tensor {
        let mut out = pool::alloc_uninit(self.len());
        for (o, &x) in out.iter_mut().zip(self.data()) {
            let bits = x.to_bits();
            let rounding_bias = 0x7FFF + ((bits >> 16) & 1);
            let rounded = bits.wrapping_add(rounding_bias) & 0xFFFF_0000;
            let nonfinite = (bits & 0x7F80_0000) == 0x7F80_0000;
            *o = f32::from_bits(if nonfinite { bits } else { rounded });
        }
        Tensor::from_vec(self.shape().to_vec(), out)
    }

    /// Quantize in place when `mode` is [`Bf16Mode::Emulated`].
    pub fn apply_precision(&mut self, mode: Bf16Mode) {
        if mode == Bf16Mode::Emulated {
            bf16_round_slice(self.data_mut());
        }
    }
}

/// Relative precision of BF16 (8 mantissa bits): ~2^-8.
pub const BF16_EPS: f32 = 1.0 / 256.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_pass_through() {
        for &x in &[0.0f32, 1.0, -2.0, 0.5, 256.0] {
            assert_eq!(bf16_round(x), x);
        }
    }

    #[test]
    fn rounding_error_is_bounded() {
        use crate::random::randn;
        let t = randn(&[1000], 99);
        let q = t.to_bf16();
        for (&a, &b) in t.data().iter().zip(q.data()) {
            if a != 0.0 {
                assert!(((a - b) / a).abs() <= BF16_EPS, "{a} -> {b}");
            }
        }
    }

    #[test]
    fn low_bits_are_cleared() {
        let q = bf16_round(1.000_001);
        assert_eq!(q.to_bits() & 0xFFFF, 0);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0 + 2^-9 is exactly halfway between 1.0 and 1.0 + 2^-8;
        // nearest-even rounds down to 1.0.
        let halfway = f32::from_bits(0x3F80_8000);
        assert_eq!(bf16_round(halfway), 1.0);
    }

    #[test]
    fn non_finite_preserved() {
        assert!(bf16_round(f32::NAN).is_nan());
        assert_eq!(bf16_round(f32::INFINITY), f32::INFINITY);
        assert_eq!(bf16_round(f32::NEG_INFINITY), f32::NEG_INFINITY);
    }

    #[test]
    fn slice_round_matches_scalar_bitwise() {
        use crate::random::randn;
        let t = randn(&[257], 42);
        let mut v = t.data().to_vec();
        v.extend([f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 0.0, -0.0, f32::MIN_POSITIVE]);
        let mut rounded = v.clone();
        bf16_round_slice(&mut rounded);
        for (&orig, &got) in v.iter().zip(&rounded) {
            assert_eq!(got.to_bits(), bf16_round(orig).to_bits(), "input {orig}");
        }
    }

    #[test]
    fn storage_roundtrip_matches_emulation_bitwise() {
        use crate::random::randn;
        let t = randn(&[513], 7);
        let mut v = t.data().to_vec();
        v.extend([
            0.0,
            -0.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            f32::MAX,
            f32::MIN,
            1e-42, // subnormal
            f32::from_bits(0x3F80_8000),
        ]);
        for &x in &v {
            let rt = bf16_to_f32(f32_to_bf16(x));
            assert_eq!(rt.to_bits(), bf16_round(x).to_bits(), "input {x}");
        }
    }

    #[test]
    fn storage_preserves_nan_class() {
        // A payload held entirely in the low mantissa bits would truncate to
        // an infinity encoding; the quiet bit keeps it NaN.
        for nan in [f32::NAN, f32::from_bits(0x7F80_0001), f32::from_bits(0xFF80_FFFF)] {
            let w = f32_to_bf16(nan);
            assert!(bf16_to_f32(w).is_nan(), "word {w:#06x}");
            assert_eq!(bf16_to_f32(w).is_sign_negative(), nan.is_sign_negative());
        }
    }

    #[test]
    fn slice_conversions_roundtrip() {
        use crate::random::randn;
        let t = randn(&[97], 13);
        let words = f32_slice_to_bf16(t.data());
        let mut wide = vec![0.0f32; words.len()];
        bf16_slice_to_f32(&words, &mut wide);
        let expect = t.to_bf16();
        for (a, b) in wide.iter().zip(expect.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn idempotent() {
        use crate::random::randn;
        let t = randn(&[64], 3).to_bf16();
        t.assert_close(&t.to_bf16(), 0.0);
    }
}
