//! BF16 emulation for the mixed-precision trainer.
//!
//! The paper trains in BFLOAT16 with dynamic gradient scaling (Sec. III-D).
//! We emulate BF16 on the CPU by rounding `f32` values to the nearest value
//! representable with an 8-bit mantissa (round-to-nearest-even on the
//! truncated bits), which reproduces BF16's precision loss while keeping all
//! arithmetic in `f32` — the same trick PyTorch uses for CPU BF16 emulation.

use crate::pool;
use crate::simd;
use crate::tensor::Tensor;

/// Whether a computation runs in full or emulated-BF16 precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Bf16Mode {
    /// Plain f32; no rounding applied.
    #[default]
    Full,
    /// Values rounded to BF16 precision at layer boundaries.
    Emulated,
}

/// Round one `f32` to the nearest BF16-representable value.
pub fn bf16_round(x: f32) -> f32 {
    if !x.is_finite() {
        return x;
    }
    let bits = x.to_bits();
    // Round-to-nearest-even on the low 16 bits.
    let rounding_bias = 0x7FFF + ((bits >> 16) & 1);
    let rounded = bits.wrapping_add(rounding_bias) & 0xFFFF_0000;
    f32::from_bits(rounded)
}

/// Round every element of a slice to BF16 precision, in place.
///
/// The branchless integer formulation (round bias + mask, with a select to
/// pass non-finite values through unchanged) vectorizes: the whole body is
/// straight-line `u32` arithmetic, so LLVM turns it into 8-wide integer ops
/// where the scalar [`bf16_round`]'s early return blocks that. Semantics
/// are bit-identical to mapping `bf16_round`.
pub fn bf16_round_slice(dst: &mut [f32]) {
    if !simd::enabled() {
        for v in dst.iter_mut() {
            *v = bf16_round(*v);
        }
        return;
    }
    for v in dst.iter_mut() {
        let bits = v.to_bits();
        let rounding_bias = 0x7FFF + ((bits >> 16) & 1);
        let rounded = bits.wrapping_add(rounding_bias) & 0xFFFF_0000;
        // Exponent all-ones => inf/NaN: keep the original bits.
        let nonfinite = (bits & 0x7F80_0000) == 0x7F80_0000;
        *v = f32::from_bits(if nonfinite { bits } else { rounded });
    }
}

impl Tensor {
    /// Quantize every element to BF16 precision (returns a new tensor).
    pub fn to_bf16(&self) -> Tensor {
        let mut out = pool::alloc_uninit(self.len());
        out.copy_from_slice(self.data());
        bf16_round_slice(&mut out);
        Tensor::from_vec(self.shape().to_vec(), out)
    }

    /// Quantize in place when `mode` is [`Bf16Mode::Emulated`].
    pub fn apply_precision(&mut self, mode: Bf16Mode) {
        if mode == Bf16Mode::Emulated {
            bf16_round_slice(self.data_mut());
        }
    }
}

/// Relative precision of BF16 (8 mantissa bits): ~2^-8.
pub const BF16_EPS: f32 = 1.0 / 256.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_pass_through() {
        for &x in &[0.0f32, 1.0, -2.0, 0.5, 256.0] {
            assert_eq!(bf16_round(x), x);
        }
    }

    #[test]
    fn rounding_error_is_bounded() {
        use crate::random::randn;
        let t = randn(&[1000], 99);
        let q = t.to_bf16();
        for (&a, &b) in t.data().iter().zip(q.data()) {
            if a != 0.0 {
                assert!(((a - b) / a).abs() <= BF16_EPS, "{a} -> {b}");
            }
        }
    }

    #[test]
    fn low_bits_are_cleared() {
        let q = bf16_round(1.000_001);
        assert_eq!(q.to_bits() & 0xFFFF, 0);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0 + 2^-9 is exactly halfway between 1.0 and 1.0 + 2^-8;
        // nearest-even rounds down to 1.0.
        let halfway = f32::from_bits(0x3F80_8000);
        assert_eq!(bf16_round(halfway), 1.0);
    }

    #[test]
    fn non_finite_preserved() {
        assert!(bf16_round(f32::NAN).is_nan());
        assert_eq!(bf16_round(f32::INFINITY), f32::INFINITY);
        assert_eq!(bf16_round(f32::NEG_INFINITY), f32::NEG_INFINITY);
    }

    #[test]
    fn slice_round_matches_scalar_bitwise() {
        use crate::random::randn;
        let t = randn(&[257], 42);
        let mut v = t.data().to_vec();
        v.extend([f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 0.0, -0.0, f32::MIN_POSITIVE]);
        let mut rounded = v.clone();
        bf16_round_slice(&mut rounded);
        for (&orig, &got) in v.iter().zip(&rounded) {
            assert_eq!(got.to_bits(), bf16_round(orig).to_bits(), "input {orig}");
        }
    }

    #[test]
    fn idempotent() {
        use crate::random::randn;
        let t = randn(&[64], 3).to_bf16();
        t.assert_close(&t.to_bf16(), 0.0);
    }
}
