//! BF16 emulation for the mixed-precision trainer.
//!
//! The paper trains in BFLOAT16 with dynamic gradient scaling (Sec. III-D).
//! We emulate BF16 on the CPU by rounding `f32` values to the nearest value
//! representable with an 8-bit mantissa (round-to-nearest-even on the
//! truncated bits), which reproduces BF16's precision loss while keeping all
//! arithmetic in `f32` — the same trick PyTorch uses for CPU BF16 emulation.

use crate::tensor::Tensor;

/// Whether a computation runs in full or emulated-BF16 precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Bf16Mode {
    /// Plain f32; no rounding applied.
    #[default]
    Full,
    /// Values rounded to BF16 precision at layer boundaries.
    Emulated,
}

/// Round one `f32` to the nearest BF16-representable value.
pub fn bf16_round(x: f32) -> f32 {
    if !x.is_finite() {
        return x;
    }
    let bits = x.to_bits();
    // Round-to-nearest-even on the low 16 bits.
    let rounding_bias = 0x7FFF + ((bits >> 16) & 1);
    let rounded = bits.wrapping_add(rounding_bias) & 0xFFFF_0000;
    f32::from_bits(rounded)
}

impl Tensor {
    /// Quantize every element to BF16 precision (returns a new tensor).
    pub fn to_bf16(&self) -> Tensor {
        self.map(bf16_round)
    }

    /// Quantize in place when `mode` is [`Bf16Mode::Emulated`].
    pub fn apply_precision(&mut self, mode: Bf16Mode) {
        if mode == Bf16Mode::Emulated {
            self.map_inplace(bf16_round);
        }
    }
}

/// Relative precision of BF16 (8 mantissa bits): ~2^-8.
pub const BF16_EPS: f32 = 1.0 / 256.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_pass_through() {
        for &x in &[0.0f32, 1.0, -2.0, 0.5, 256.0] {
            assert_eq!(bf16_round(x), x);
        }
    }

    #[test]
    fn rounding_error_is_bounded() {
        use crate::random::randn;
        let t = randn(&[1000], 99);
        let q = t.to_bf16();
        for (&a, &b) in t.data().iter().zip(q.data()) {
            if a != 0.0 {
                assert!(((a - b) / a).abs() <= BF16_EPS, "{a} -> {b}");
            }
        }
    }

    #[test]
    fn low_bits_are_cleared() {
        let q = bf16_round(1.000_001);
        assert_eq!(q.to_bits() & 0xFFFF, 0);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0 + 2^-9 is exactly halfway between 1.0 and 1.0 + 2^-8;
        // nearest-even rounds down to 1.0.
        let halfway = f32::from_bits(0x3F80_8000);
        assert_eq!(bf16_round(halfway), 1.0);
    }

    #[test]
    fn non_finite_preserved() {
        assert!(bf16_round(f32::NAN).is_nan());
        assert_eq!(bf16_round(f32::INFINITY), f32::INFINITY);
        assert_eq!(bf16_round(f32::NEG_INFINITY), f32::NEG_INFINITY);
    }

    #[test]
    fn idempotent() {
        use crate::random::randn;
        let t = randn(&[64], 3).to_bf16();
        t.assert_close(&t.to_bf16(), 0.0);
    }
}
