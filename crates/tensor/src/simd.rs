//! Explicit-width SIMD abstraction for the kernel layer.
//!
//! [`F32x8`] is a portable lane-array vector: a plain `[f32; 8]` with
//! alignment, whose per-lane arithmetic the compiler lowers to the widest
//! vector ISA the target supports (one AVX2 `ymm` op, or a pair of SSE
//! `xmm` ops on the baseline). No nightly features, no intrinsics, no
//! `unsafe` — the whole crate is `#![forbid(unsafe_code)]` and the explicit
//! fixed-width formulation is what lets LLVM vectorize loops the scalar
//! auto-vectorizer gives up on (data-dependent branches, reductions,
//! register-blocked accumulators).
//!
//! `ORBIT2_DISABLE_SIMD=1` routes every kernel built on this module back to
//! its scalar reference implementation (mirroring `ORBIT2_DISABLE_POOL`):
//! the escape hatch for debugging numerical drift and the baseline for the
//! fused-vs-unfused bench deltas.

use std::sync::OnceLock;

/// Lane count of [`F32x8`].
pub const LANES: usize = 8;

/// True unless `ORBIT2_DISABLE_SIMD=1` requests the scalar reference
/// kernels. Read once per process.
pub fn enabled() -> bool {
    static DISABLED: OnceLock<bool> = OnceLock::new();
    !*DISABLED.get_or_init(|| {
        std::env::var("ORBIT2_DISABLE_SIMD").map(|v| v == "1" || v == "true").unwrap_or(false)
    })
}

/// Eight `f32` lanes with elementwise arithmetic.
///
/// The 32-byte alignment matches an AVX2 register so spills and reloads in
/// register-blocked kernels stay on aligned slots.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C, align(32))]
pub struct F32x8([f32; LANES]);

// Named `add`/`sub`/`mul` methods (rather than operator impls) keep kernel
// code grep-able and match the `std::simd` naming the module emulates.
#[allow(clippy::should_implement_trait)]
impl F32x8 {
    /// All lanes zero.
    pub const ZERO: F32x8 = F32x8([0.0; LANES]);

    /// Broadcast one value into every lane.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        F32x8([v; LANES])
    }

    /// Load the first eight elements of `src`.
    ///
    /// # Panics
    /// Panics when `src` has fewer than eight elements.
    #[inline(always)]
    pub fn load(src: &[f32]) -> Self {
        let chunk: &[f32; LANES] = src[..LANES].try_into().expect("F32x8::load needs 8 elements");
        F32x8(*chunk)
    }

    /// Store the lanes into the first eight elements of `dst`.
    #[inline(always)]
    pub fn store(self, dst: &mut [f32]) {
        dst[..LANES].copy_from_slice(&self.0);
    }

    /// The lanes as an array.
    #[inline(always)]
    pub fn to_array(self) -> [f32; LANES] {
        self.0
    }

    /// Lanewise addition.
    #[inline(always)]
    pub fn add(self, o: Self) -> Self {
        let mut r = self.0;
        for (x, y) in r.iter_mut().zip(&o.0) {
            *x += y;
        }
        F32x8(r)
    }

    /// Lanewise subtraction.
    #[inline(always)]
    pub fn sub(self, o: Self) -> Self {
        let mut r = self.0;
        for (x, y) in r.iter_mut().zip(&o.0) {
            *x -= y;
        }
        F32x8(r)
    }

    /// Lanewise multiplication.
    #[inline(always)]
    pub fn mul(self, o: Self) -> Self {
        let mut r = self.0;
        for (x, y) in r.iter_mut().zip(&o.0) {
            *x *= y;
        }
        F32x8(r)
    }

    /// Lanewise maximum.
    #[inline(always)]
    pub fn max(self, o: Self) -> Self {
        let mut r = self.0;
        for (x, y) in r.iter_mut().zip(&o.0) {
            *x = x.max(*y);
        }
        F32x8(r)
    }

    /// Lanewise fused multiply-add: `self * m + a`.
    ///
    /// Uses a true FMA only when the target has the `fma` feature (a single
    /// rounding, one instruction); otherwise a separate multiply and add so
    /// the baseline build never falls into the slow `fmaf` libm call.
    #[inline(always)]
    pub fn mul_add(self, m: Self, a: Self) -> Self {
        if cfg!(target_feature = "fma") {
            let mut r = self.0;
            for ((x, y), z) in r.iter_mut().zip(&m.0).zip(&a.0) {
                *x = x.mul_add(*y, *z);
            }
            F32x8(r)
        } else {
            self.mul(m).add(a)
        }
    }

    /// Horizontal sum of all lanes (pairwise, one tree reduction).
    #[inline(always)]
    pub fn reduce_sum(self) -> f32 {
        let s = self.0;
        let q = [s[0] + s[4], s[1] + s[5], s[2] + s[6], s[3] + s[7]];
        (q[0] + q[2]) + (q[1] + q[3])
    }

    /// Horizontal maximum of all lanes.
    #[inline(always)]
    pub fn reduce_max(self) -> f32 {
        let s = self.0;
        let q = [s[0].max(s[4]), s[1].max(s[5]), s[2].max(s[6]), s[3].max(s[7])];
        q[0].max(q[2]).max(q[1].max(q[3]))
    }
}

/// Lane count of [`F32x16`].
pub const LANES16: usize = 16;

/// Sixteen `f32` lanes with elementwise arithmetic — one AVX-512 `zmm`
/// register on targets that have it, a pair of `ymm` ops elsewhere.
///
/// Used by the reduced-precision GEMM microkernel ([`crate::qgemm`]), whose
/// register blocking is sized around 512-bit accumulators. Note that LLVM's
/// `target-cpu=native` tuning on some server parts *prefers* splitting
/// 512-bit ops into 256-bit pairs; `.cargo/config.toml` disables that
/// preference so this type actually lowers to `zmm` arithmetic.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C, align(64))]
pub struct F32x16([f32; LANES16]);

#[allow(clippy::should_implement_trait)]
impl F32x16 {
    /// All lanes zero.
    pub const ZERO: F32x16 = F32x16([0.0; LANES16]);

    /// Broadcast one value into every lane.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        F32x16([v; LANES16])
    }

    /// Load the first sixteen elements of `src`.
    ///
    /// # Panics
    /// Panics when `src` has fewer than sixteen elements.
    #[inline(always)]
    pub fn load(src: &[f32]) -> Self {
        let chunk: &[f32; LANES16] =
            src[..LANES16].try_into().expect("F32x16::load needs 16 elements");
        F32x16(*chunk)
    }

    /// Store the lanes into the first sixteen elements of `dst`.
    #[inline(always)]
    pub fn store(self, dst: &mut [f32]) {
        dst[..LANES16].copy_from_slice(&self.0);
    }

    /// The lanes as an array.
    #[inline(always)]
    pub fn to_array(self) -> [f32; LANES16] {
        self.0
    }

    /// Lanewise addition.
    #[inline(always)]
    pub fn add(self, o: Self) -> Self {
        let mut r = self.0;
        for (x, y) in r.iter_mut().zip(&o.0) {
            *x += y;
        }
        F32x16(r)
    }

    /// Lanewise multiplication.
    #[inline(always)]
    pub fn mul(self, o: Self) -> Self {
        let mut r = self.0;
        for (x, y) in r.iter_mut().zip(&o.0) {
            *x *= y;
        }
        F32x16(r)
    }

    /// Lanewise fused multiply-add: `self * m + a` (same FMA gating rules as
    /// [`F32x8::mul_add`]).
    #[inline(always)]
    pub fn mul_add(self, m: Self, a: Self) -> Self {
        if cfg!(target_feature = "fma") {
            let mut r = self.0;
            for ((x, y), z) in r.iter_mut().zip(&m.0).zip(&a.0) {
                *x = x.mul_add(*y, *z);
            }
            F32x16(r)
        } else {
            self.mul(m).add(a)
        }
    }
}

/// `a * b + acc` with the same rounding behavior the vector kernels get:
/// a true fused multiply-add when the target has one, separate multiply and
/// add otherwise. Scalar oracles accumulate through this so their per-element
/// chains are bit-identical to the lane arithmetic of [`F32x8`]/[`F32x16`].
#[inline(always)]
pub fn fma(a: f32, b: f32, acc: f32) -> f32 {
    if cfg!(target_feature = "fma") {
        a.mul_add(b, acc)
    } else {
        a * b + acc
    }
}

/// Dot product of two equal-length slices.
///
/// Four independent 8-lane accumulators hide FMA latency; the tail is
/// scalar. Falls back to the plain sequential loop when SIMD is disabled.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    if !enabled() {
        let mut s = 0.0f32;
        for (x, y) in a.iter().zip(b) {
            s += x * y;
        }
        return s;
    }
    let mut acc = [F32x8::ZERO; 4];
    let mut ac = a.chunks_exact(4 * LANES);
    let mut bc = b.chunks_exact(4 * LANES);
    for (ca, cb) in ac.by_ref().zip(bc.by_ref()) {
        for (i, accu) in acc.iter_mut().enumerate() {
            let va = F32x8::load(&ca[i * LANES..]);
            let vb = F32x8::load(&cb[i * LANES..]);
            *accu = va.mul_add(vb, *accu);
        }
    }
    let (ra, rb) = (ac.remainder(), bc.remainder());
    let mut rem_a = ra.chunks_exact(LANES);
    let mut rem_b = rb.chunks_exact(LANES);
    for (ca, cb) in rem_a.by_ref().zip(rem_b.by_ref()) {
        acc[0] = F32x8::load(ca).mul_add(F32x8::load(cb), acc[0]);
    }
    let mut s = acc[0].add(acc[1]).add(acc[2].add(acc[3])).reduce_sum();
    for (x, y) in rem_a.remainder().iter().zip(rem_b.remainder()) {
        s += x * y;
    }
    s
}

/// Sum of a slice (vectorized, two accumulators).
#[inline]
pub fn sum(src: &[f32]) -> f32 {
    if !enabled() {
        return src.iter().sum();
    }
    let mut acc = [F32x8::ZERO; 2];
    let mut c = src.chunks_exact(2 * LANES);
    for ch in c.by_ref() {
        acc[0] = acc[0].add(F32x8::load(ch));
        acc[1] = acc[1].add(F32x8::load(&ch[LANES..]));
    }
    let mut s = acc[0].add(acc[1]).reduce_sum();
    for &x in c.remainder() {
        s += x;
    }
    s
}

/// `dst += s * src` over equal-length slices (vectorized axpy).
#[inline]
pub fn axpy(dst: &mut [f32], s: f32, src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    if !enabled() {
        for (d, &x) in dst.iter_mut().zip(src) {
            *d += s * x;
        }
        return;
    }
    let sv = F32x8::splat(s);
    let mut dc = dst.chunks_exact_mut(LANES);
    let mut sc = src.chunks_exact(LANES);
    for (d, x) in dc.by_ref().zip(sc.by_ref()) {
        F32x8::load(x).mul_add(sv, F32x8::load(d)).store(d);
    }
    for (d, &x) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
        *d += s * x;
    }
}

/// `dst *= s` (vectorized in-place scale).
#[inline]
pub fn scale(dst: &mut [f32], s: f32) {
    if !enabled() {
        for d in dst.iter_mut() {
            *d *= s;
        }
        return;
    }
    let sv = F32x8::splat(s);
    let mut dc = dst.chunks_exact_mut(LANES);
    for d in dc.by_ref() {
        F32x8::load(d).mul(sv).store(d);
    }
    for d in dc.into_remainder() {
        *d *= s;
    }
}

/// Maximum element of a slice (`-inf` when empty).
#[inline]
pub fn max_value(src: &[f32]) -> f32 {
    if !enabled() {
        return src.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    }
    let mut acc = F32x8::splat(f32::NEG_INFINITY);
    let mut c = src.chunks_exact(LANES);
    for ch in c.by_ref() {
        acc = acc.max(F32x8::load(ch));
    }
    let mut m = acc.reduce_max();
    for &x in c.remainder() {
        m = m.max(x);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32x16_lanes_roundtrip_and_arithmetic() {
        let src: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let a = F32x16::load(&src);
        let mut dst = [0.0f32; 16];
        a.store(&mut dst);
        assert_eq!(&dst[..], &src[..]);
        assert_eq!(a.to_array()[15], 15.0);
        let b = F32x16::splat(2.0);
        assert_eq!(a.add(b).to_array()[0], 2.0);
        assert_eq!(a.mul(b).to_array()[15], 30.0);
        assert_eq!(a.mul_add(b, b).to_array()[3], 8.0);
    }

    #[test]
    fn scalar_fma_matches_lane_mul_add() {
        for &(a, b, c) in &[(1.5f32, 2.25f32, 0.125f32), (-3.7, 0.3, 9.1), (1e-20, 1e-20, 1.0)] {
            let lane = F32x8::splat(a).mul_add(F32x8::splat(b), F32x8::splat(c)).to_array()[0];
            assert_eq!(fma(a, b, c).to_bits(), lane.to_bits());
        }
    }

    #[test]
    fn splat_load_store_roundtrip() {
        let v = F32x8::splat(3.5);
        assert_eq!(v.to_array(), [3.5; 8]);
        let src: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let mut dst = [0.0f32; 8];
        F32x8::load(&src).store(&mut dst);
        assert_eq!(&dst[..], &src[..]);
    }

    #[test]
    fn arithmetic_lanes() {
        let a = F32x8::load(&[1., 2., 3., 4., 5., 6., 7., 8.]);
        let b = F32x8::splat(2.0);
        assert_eq!(a.add(b).to_array()[0], 3.0);
        assert_eq!(a.mul(b).to_array()[7], 16.0);
        assert_eq!(a.sub(b).to_array()[1], 0.0);
        assert_eq!(a.mul_add(b, b).to_array()[2], 8.0);
        assert_eq!(a.reduce_sum(), 36.0);
        assert_eq!(a.reduce_max(), 8.0);
    }

    #[test]
    fn dot_matches_scalar_on_odd_lengths() {
        for n in [0usize, 1, 7, 8, 9, 31, 32, 33, 100] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).cos()).collect();
            let expect: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - expect).abs() < 1e-4 * (n.max(1) as f32), "n={n}");
        }
    }

    #[test]
    fn axpy_and_scale_match_scalar() {
        let src: Vec<f32> = (0..21).map(|i| i as f32).collect();
        let mut dst = vec![1.0f32; 21];
        axpy(&mut dst, 0.5, &src);
        for (i, &d) in dst.iter().enumerate() {
            assert!((d - (1.0 + 0.5 * i as f32)).abs() < 1e-6);
        }
        scale(&mut dst, 2.0);
        assert!((dst[20] - 22.0).abs() < 1e-6);
    }

    #[test]
    fn sum_matches_scalar() {
        for n in [0usize, 5, 16, 17, 40] {
            let v: Vec<f32> = (0..n).map(|i| i as f32 * 0.25).collect();
            let expect: f32 = v.iter().sum();
            assert!((sum(&v) - expect).abs() < 1e-4, "n={n}");
        }
    }

    #[test]
    fn max_value_handles_tail() {
        let mut v: Vec<f32> = (0..13).map(|i| -(i as f32)).collect();
        v[12] = 99.0;
        assert_eq!(max_value(&v), 99.0);
        assert_eq!(max_value(&[]), f32::NEG_INFINITY);
    }
}
