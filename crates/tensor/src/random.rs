//! Deterministic seeded random tensor constructors.
//!
//! Every stochastic component of the reproduction takes an explicit `u64`
//! seed; ChaCha8 gives platform-independent streams so tests can assert
//! bitwise reproducibility.

use crate::pool;
use crate::tensor::Tensor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rand_distr::{Distribution, StandardNormal};

/// Standard-normal tensor with the given seed.
pub fn randn(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n: usize = shape.iter().product();
    let mut data = pool::alloc_uninit(n);
    for x in data.iter_mut() {
        *x = StandardNormal.sample(&mut rng);
    }
    Tensor::from_vec(shape.to_vec(), data)
}

/// Uniform `[lo, hi)` tensor with the given seed.
pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, seed: u64) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n: usize = shape.iter().product();
    let mut data = pool::alloc_uninit(n);
    for x in data.iter_mut() {
        *x = rng.gen_range(lo..hi);
    }
    Tensor::from_vec(shape.to_vec(), data)
}

/// Kaiming/He-style initialization for a weight of shape `[fan_out, fan_in]`
/// (or conv `[out, in, kh, kw]`): normal with std `sqrt(2 / fan_in)`.
pub fn kaiming(shape: &[usize], seed: u64) -> Tensor {
    let fan_in: usize = shape[1..].iter().product::<usize>().max(1);
    let std = (2.0 / fan_in as f32).sqrt();
    randn(shape, seed).mul_scalar(std)
}

/// Xavier/Glorot uniform initialization for `[fan_out, fan_in]` weights.
pub fn xavier(shape: &[usize], seed: u64) -> Tensor {
    let fan_in: usize = shape[1..].iter().product::<usize>().max(1);
    let fan_out = shape[0];
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    rand_uniform(shape, -limit, limit, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = randn(&[4, 4], 42);
        let b = randn(&[4, 4], 42);
        assert_eq!(a.data(), b.data());
        let c = randn(&[4, 4], 43);
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn randn_moments_roughly_standard() {
        let t = randn(&[10_000], 1);
        let mean = t.mean();
        let var = t.map(|x| x * x).mean() - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_bounds_respected() {
        let t = rand_uniform(&[1000], -2.0, 3.0, 5);
        assert!(t.min_value() >= -2.0);
        assert!(t.max_value() < 3.0);
    }

    #[test]
    fn kaiming_scales_with_fan_in() {
        let small = kaiming(&[64, 16], 7);
        let big = kaiming(&[64, 1024], 7);
        let var_s = small.map(|x| x * x).mean();
        let var_b = big.map(|x| x * x).mean();
        assert!(var_s > var_b * 10.0, "kaiming variance should shrink with fan_in");
    }
}
