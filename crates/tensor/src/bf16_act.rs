//! BF16 *activation* storage and the row-wise kernels that stream it.
//!
//! [`crate::qgemm`] halved the bytes a resident **weight** stream moves; this
//! module does the same for the **activations** flowing between ops in an
//! inference session — the other half of the paper's mixed-precision
//! bandwidth win. A [`Bf16Tensor`] holds `u16` BF16 words behind an `Arc`
//! (cheap clones, `Send + Sync`, shareable across tile workers), and the
//! memory-bound row-wise ops — layer norm, softmax, residual add, GELU,
//! scale — read and write the words directly, widening to f32 only inside
//! registers. All statistics (Welford mean/variance, softmax sums) and all
//! accumulation stay f32 or wider.
//!
//! ## SIMD-mode invariance by construction
//!
//! Unlike the f32 kernels, every kernel here has a single code path built
//! from the portable lane structs ([`F32x8`]) whose methods are plain
//! per-lane arithmetic in both modes, from scalar folds, and from the two
//! mode-branching helpers whose results are provably mode-independent
//! (elementwise `simd::scale`; order-independent `simd::max_value`, see
//! [`softmax_rows_bf16`]). `ORBIT2_DISABLE_SIMD=1` therefore cannot change
//! a single output bit — there is no separate oracle to diverge from. (The
//! bf16 GEMM consuming these words has its own oracle pair in
//! [`crate::qgemm`], bit-identical by the shared-FMA-chain argument.)
//!
//! The elementwise kernels ([`add_bf16`], [`gelu_bf16`], [`scale_bf16`]) are
//! definitionally `bf16(f(widen(x)))` per element, so they produce exactly
//! the words a widen → f32-op → narrow round trip would — they just skip the
//! f32 materialization. Layer norm and softmax *define* the bf16-activation
//! value of those ops (their f32 counterparts are mode-dependent in how they
//! accumulate; these are not).

use crate::bf16::{bf16_slice_to_f32, bf16_to_f32, f32_slice_to_bf16, f32_to_bf16};
use crate::fused::chan_combine;
use crate::ops::gelu_scalar;
use crate::pool;
use crate::simd::{self, F32x8, LANES};
use crate::tensor::Tensor;
use rayon::prelude::*;
use std::sync::Arc;

/// An n-dimensional activation tensor stored as `u16` BF16 words.
///
/// The storage is `Arc`-shared (clones are O(1)) but **not** pooled: the
/// buffer pool holds `f32` buffers only, and bf16 activations are half-sized
/// and short-lived, so they allocate fresh. Widening back to a full
/// [`Tensor`] (for ops pinned to f32) does draw from the pool.
#[derive(Debug, Clone)]
pub struct Bf16Tensor {
    shape: Vec<usize>,
    data: Arc<Vec<u16>>,
}

impl Bf16Tensor {
    /// Narrow an f32 tensor to BF16 words (round-to-nearest-even per
    /// element). Lossless when the values are already BF16-representable.
    pub fn from_tensor(t: &Tensor) -> Self {
        Bf16Tensor {
            shape: t.shape().to_vec(),
            data: Arc::new(f32_slice_to_bf16(t.data())),
        }
    }

    /// Wrap raw BF16 words under a shape.
    pub fn from_words(shape: Vec<usize>, words: Vec<u16>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            words.len(),
            "shape {shape:?} does not cover {} words",
            words.len()
        );
        Bf16Tensor { shape, data: Arc::new(words) }
    }

    /// Widen every word back to an f32 [`Tensor`] (exact — every BF16 value
    /// is f32-representable).
    pub fn widen(&self) -> Tensor {
        let mut out = pool::alloc_uninit(self.data.len());
        bf16_slice_to_f32(&self.data, &mut out);
        Tensor::from_vec(self.shape.clone(), out)
    }

    /// The raw BF16 words, row-major.
    pub fn words(&self) -> &[u16] {
        &self.data
    }

    /// Dimension sizes.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reinterpret under a new shape of the same element count — metadata
    /// only, the words are shared.
    pub fn reshape(&self, shape: Vec<usize>) -> Bf16Tensor {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.data.len(),
            "reshape {:?} -> {shape:?} changes element count",
            self.shape
        );
        Bf16Tensor { shape, data: Arc::clone(&self.data) }
    }
}

/// Single-pass Welford mean/variance of one BF16 row, widening per element.
///
/// Always runs the 8-lane stream body (no [`simd::enabled`] branch — see the
/// module docs), merges lanes with Chan's combine, and folds the tail in
/// f64, mirroring the f32 kernel's vector path.
fn welford_bf16(row: &[u16]) -> (f32, f32) {
    let d = row.len();
    debug_assert!(d > 0, "welford of an empty row");
    let mut mean = F32x8::ZERO;
    let mut m2 = F32x8::ZERO;
    let mut chunks = row.chunks_exact(LANES);
    let mut t = 0.0f32;
    for ch in chunks.by_ref() {
        t += 1.0;
        let mut lanes = [0.0f32; LANES];
        for (l, &w) in lanes.iter_mut().zip(ch) {
            *l = bf16_to_f32(w);
        }
        let x = F32x8::load(&lanes);
        let delta = x.sub(mean);
        mean = mean.add(delta.mul(F32x8::splat(1.0 / t)));
        m2 = m2.add(delta.mul(x.sub(mean)));
    }
    let (mut cmean, mut cm2, mut cn) = (0.0f64, 0.0f64, 0.0f64);
    if t > 0.0 {
        // Rows shorter than one lane group skip the combine entirely (a
        // data-size branch, not a mode branch: both SIMD modes take it for
        // the same row).
        let means = mean.to_array();
        let m2s = m2.to_array();
        cmean = means[0] as f64;
        cm2 = m2s[0] as f64;
        cn = t as f64;
        for l in 1..LANES {
            (cmean, cm2, cn) =
                chan_combine(cmean, cm2, cn, means[l] as f64, m2s[l] as f64, t as f64);
        }
    }
    for &w in chunks.remainder() {
        let x = bf16_to_f32(w) as f64;
        cn += 1.0;
        let delta = x - cmean;
        cmean += delta / cn;
        cm2 += delta * (x - cmean);
    }
    (cmean as f32, (cm2 / d as f64) as f32)
}

/// One-pass layer norm with fused affine over BF16 rows:
/// `bf16(fma((x - mean) * inv_std, gamma, beta))` per element.
///
/// The f32 session path runs normalize, `* gamma`, and `+ beta` as three
/// buffer traversals; here all three collapse into the single narrow-write
/// pass, with the Welford statistics in f32/f64 throughout.
pub fn layer_norm_rows_bf16(
    src: &[u16],
    rows: usize,
    d: usize,
    eps: f32,
    gamma: &[f32],
    beta: &[f32],
) -> Vec<u16> {
    assert_eq!(src.len(), rows * d);
    assert_eq!(gamma.len(), d, "gamma length");
    assert_eq!(beta.len(), d, "beta length");
    let mut out = vec![0u16; rows * d];
    out.par_chunks_mut(d).enumerate().for_each(|(r, orow)| {
        let row = &src[r * d..(r + 1) * d];
        let (mean, var) = welford_bf16(row);
        let is = 1.0 / (var + eps).sqrt();
        for (((o, &w), &g), &b) in orow.iter_mut().zip(row).zip(gamma).zip(beta) {
            *o = f32_to_bf16(simd::fma((bf16_to_f32(w) - mean) * is, g, b));
        }
    });
    out
}

/// In-place softmax over contiguous BF16 rows of length `inner`: widen the
/// row once into a pooled f32 scratch, take the vectorized max, exponentiate
/// and sum (scalar — `exp` is a libm call in the f32 kernel too), scale by
/// the inverse sum with full lanes, and narrow on the write back.
///
/// The lane helpers used here ([`simd::max_value`], [`simd::scale`]) do
/// branch on the SIMD mode, but neither can change an output bit: `scale` is
/// elementwise, and a max fold is order-independent up to the sign of a
/// ±0.0 tie, which the subsequent `exp` maps to 1.0 either way. A scalar
/// max fold over the u16 words (the obvious formulation) serializes on the
/// fold's latency chain and was measured ~1.8x slower than this layout at
/// 4096x512.
pub fn softmax_rows_bf16(data: &mut [u16], inner: usize) {
    if inner == 0 {
        return;
    }
    debug_assert_eq!(data.len() % inner, 0);
    data.par_chunks_mut(inner).for_each(|row| {
        let mut scratch = pool::alloc_uninit(inner);
        bf16_slice_to_f32(row, &mut scratch);
        let mx = simd::max_value(&scratch);
        let mut sum = 0.0f32;
        for s in scratch.iter_mut() {
            *s = (*s - mx).exp();
            sum += *s;
        }
        simd::scale(&mut scratch, 1.0 / sum);
        for (o, &s) in row.iter_mut().zip(scratch.iter()) {
            *o = f32_to_bf16(s);
        }
    });
}

/// Elementwise residual add of two same-length word slices:
/// `bf16(widen(a) + widen(b))`.
pub fn add_bf16(a: &[u16], b: &[u16]) -> Vec<u16> {
    assert_eq!(a.len(), b.len(), "add_bf16 length mismatch");
    a.iter().zip(b).map(|(&x, &y)| f32_to_bf16(bf16_to_f32(x) + bf16_to_f32(y))).collect()
}

/// Elementwise tanh-approximated GELU: `bf16(gelu(widen(x)))` (the same
/// scalar [`Tensor::gelu`] maps).
pub fn gelu_bf16(a: &[u16]) -> Vec<u16> {
    a.iter().map(|&w| f32_to_bf16(gelu_scalar(bf16_to_f32(w)))).collect()
}

/// Elementwise scalar multiply: `bf16(widen(x) * s)`.
pub fn scale_bf16(a: &[u16], s: f32) -> Vec<u16> {
    a.iter().map(|&w| f32_to_bf16(bf16_to_f32(w) * s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fused::{layer_norm_rows, welford_mean_var};
    use crate::random::randn;

    #[test]
    fn widen_narrow_roundtrip_is_lossless() {
        let t = randn(&[5, 33], 3);
        let b = Bf16Tensor::from_tensor(&t);
        // Narrowing the widened tensor reproduces the words exactly: BF16 ->
        // f32 is exact, so the session can hop between storages freely on
        // already-narrowed data.
        let again = Bf16Tensor::from_tensor(&b.widen());
        assert_eq!(b.words(), again.words());
        assert_eq!(b.shape(), &[5, 33]);
        assert_eq!(b.reshape(vec![33, 5]).shape(), &[33, 5]);
    }

    #[test]
    fn elementwise_kernels_equal_widen_compute_narrow() {
        let a = Bf16Tensor::from_tensor(&randn(&[7, 40], 11));
        let b = Bf16Tensor::from_tensor(&randn(&[7, 40], 12));
        let (aw, bw) = (a.widen(), b.widen());
        assert_eq!(
            add_bf16(a.words(), b.words()),
            f32_slice_to_bf16(aw.add(&bw).data()),
            "add"
        );
        assert_eq!(gelu_bf16(a.words()), f32_slice_to_bf16(aw.gelu().data()), "gelu");
        assert_eq!(
            scale_bf16(a.words(), 0.125),
            f32_slice_to_bf16(aw.mul_scalar(0.125).data()),
            "scale"
        );
    }

    #[test]
    fn layer_norm_bf16_close_to_f32_kernel() {
        // Row lengths straddling the lane-group boundary, including one with
        // no full lane chunk at all (the t == 0 combine guard).
        for &(rows, d) in &[(4usize, 5usize), (3, 8), (6, 37), (2, 64)] {
            let x = randn(&[rows, d], 21);
            let gamma = randn(&[d], 22);
            let beta = randn(&[d], 23);
            let words = f32_slice_to_bf16(x.data());
            let got = layer_norm_rows_bf16(&words, rows, d, 1e-5, gamma.data(), beta.data());
            // f32 reference on the *widened* words, affine applied scalar.
            let mut wide = vec![0.0f32; words.len()];
            bf16_slice_to_f32(&words, &mut wide);
            let (norm, _) = layer_norm_rows(&wide, rows, d, 1e-5);
            for (i, &w) in got.iter().enumerate() {
                let expect = norm[i] * gamma.data()[i % d] + beta.data()[i % d];
                let err = (bf16_to_f32(w) - expect).abs();
                assert!(err <= 0.02 * expect.abs().max(1.0), "rows={rows} d={d} i={i}: {err}");
            }
        }
    }

    #[test]
    fn welford_bf16_matches_f32_welford_closely() {
        for d in [1usize, 7, 8, 9, 64, 257] {
            let x = randn(&[d], 31).to_bf16();
            let words = f32_slice_to_bf16(x.data());
            let (m_b, v_b) = welford_bf16(&words);
            let (m_f, v_f) = welford_mean_var(x.data());
            assert!((m_b - m_f).abs() < 1e-4, "d={d} mean {m_b} vs {m_f}");
            assert!((v_b - v_f).abs() < 1e-3, "d={d} var {v_b} vs {v_f}");
        }
    }

    #[test]
    fn softmax_bf16_rows_sum_to_one() {
        let x = randn(&[6, 29], 41);
        let mut words = f32_slice_to_bf16(x.data());
        softmax_rows_bf16(&mut words, 29);
        for row in words.chunks_exact(29) {
            let sum: f32 = row.iter().map(|&w| bf16_to_f32(w)).sum();
            // Each term carries one BF16 rounding; the sum stays within the
            // accumulated bound.
            assert!((sum - 1.0).abs() < 29.0 * crate::bf16::BF16_EPS, "sum {sum}");
            assert!(row.iter().all(|&w| bf16_to_f32(w) >= 0.0));
        }
    }

    #[test]
    fn softmax_bf16_close_to_f32_softmax() {
        let x = randn(&[5, 13], 51);
        let words_in = f32_slice_to_bf16(x.data());
        let mut words = words_in.clone();
        softmax_rows_bf16(&mut words, 13);
        let mut wide = vec![0.0f32; words_in.len()];
        bf16_slice_to_f32(&words_in, &mut wide);
        let expect = Tensor::from_vec(vec![5, 13], wide).softmax_last();
        for (&w, &e) in words.iter().zip(expect.data()) {
            assert!((bf16_to_f32(w) - e).abs() < 2.0 * crate::bf16::BF16_EPS, "{w:#06x} vs {e}");
        }
    }

    #[test]
    fn from_words_shape_is_checked() {
        let b = Bf16Tensor::from_words(vec![2, 3], vec![0u16; 6]);
        assert_eq!(b.len(), 6);
        assert!(!b.is_empty());
        assert_eq!(b.ndim(), 2);
        let r = std::panic::catch_unwind(|| Bf16Tensor::from_words(vec![2, 4], vec![0u16; 6]));
        assert!(r.is_err());
    }
}
