//! Fused transformer kernels: GEMM epilogues, one-pass layer norm, softmax.
//!
//! Each kernel here eliminates whole memory passes over activation buffers
//! relative to composing the primitive ops:
//!
//! * [`matmul_bias_act`] — a linear layer (`y = act(x W^T + b)`) whose bias
//!   add and activation run as a GEMM *epilogue*, per macro-block of rows,
//!   while the freshly computed C block is still cache-hot. The unfused
//!   composition writes `x W^T` to memory, re-reads it to add the bias,
//!   re-reads it again for the activation — three full traversals of an
//!   `[m, n]` buffer collapsed into one.
//! * [`layer_norm_rows`] — mean and variance in a single Welford pass
//!   (lane-wise, merged with Chan's parallel-combine formula) instead of the
//!   classic two-pass mean-then-variance sweep.
//! * [`softmax_rows`] — max, exp and normalize over the last axis with the
//!   max and scale passes vectorized.
//!
//! Epilogues that apply a non-linear activation also return the
//! *pre-activation* tensor: the tape needs `act'(pre)` for the backward
//! pass, and recomputing `x W^T + b` there would cost a second GEMM.
//! Everything falls back to the scalar reference path under
//! `ORBIT2_DISABLE_SIMD=1` (the GEMM dispatches internally; the epilogues
//! are shape-identical either way).

use crate::matmul::{gemm, gemm_rows_packed_b, pack_b_full, packed_eligible, MatLayout};
use crate::ops::{gelu_grad_scalar, gelu_scalar};
use crate::pool;
use crate::qgemm::{self, PackedWeightBf16, PackedWeightI8};
use crate::simd::{self, F32x8, LANES};
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Rows per fused macro-block: one GEMM + epilogue unit of work.
const ROW_BLOCK: usize = 72;

/// Activation applied by a fused GEMM epilogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// No activation (plain linear layer).
    #[default]
    Identity,
    /// `max(0, x)`.
    Relu,
    /// Tanh-approximated GELU (matches [`Tensor::gelu`]).
    Gelu,
}

impl Activation {
    /// `act(x)`.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::Gelu => gelu_scalar(x),
        }
    }

    /// `act'(pre)` evaluated at the stored pre-activation.
    #[inline]
    pub fn grad(self, pre: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if pre > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Gelu => gelu_grad_scalar(pre),
        }
    }
}

/// Storage precision of a resident weight pack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum WeightPrecision {
    /// Full f32 strips — bit-identical to the per-call pack path.
    #[default]
    F32,
    /// `u16` BF16 words, widened to f32 inside the kernel.
    Bf16,
    /// Symmetric per-output-channel `i8` codes with f32 scales.
    Int8,
}

impl WeightPrecision {
    /// Stable lowercase label used in wire formats and bench row names.
    pub fn label(self) -> &'static str {
        match self {
            WeightPrecision::F32 => "f32",
            WeightPrecision::Bf16 => "bf16",
            WeightPrecision::Int8 => "int8",
        }
    }

    /// Parse a [`label`](Self::label) back into a precision.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "f32" => Some(WeightPrecision::F32),
            "bf16" => Some(WeightPrecision::Bf16),
            "int8" | "i8" => Some(WeightPrecision::Int8),
            _ => None,
        }
    }
}

/// Storage precision of the *activations* flowing between ops in an
/// inference session. Orthogonal to [`WeightPrecision`]: weights can sit in
/// int8 packs while activations stream as bf16 words, and vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum ActivationPrecision {
    /// Full f32 activation tensors — bit-identical to the tape-free path
    /// before this knob existed.
    #[default]
    F32,
    /// `u16` BF16 words, widened to f32 at each op's register boundary
    /// (accumulation stays f32; see [`crate::bf16_act`]).
    Bf16,
}

impl ActivationPrecision {
    /// Stable lowercase label used in wire formats and bench row names.
    pub fn label(self) -> &'static str {
        match self {
            ActivationPrecision::F32 => "f32",
            ActivationPrecision::Bf16 => "bf16",
        }
    }

    /// Parse a [`label`](Self::label) back into a precision.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "f32" => Some(ActivationPrecision::F32),
            "bf16" => Some(ActivationPrecision::Bf16),
            _ => None,
        }
    }
}

/// A full-width linear weight packed once into f32 microkernel strips.
///
/// The pack bytes are identical to what [`matmul_bias_act`] would produce
/// internally, so routing through a resident f32 pack is bit-identical to
/// the per-call path. Storage is a plain `Vec` (copied out of the pooled
/// buffer) so the pack is `Send + Sync` and shareable across worker
/// threads without touching any thread-local pool.
#[derive(Debug, Clone)]
pub struct PackedWeightF32 {
    pack: Vec<f32>,
    n: usize,
    k: usize,
}

impl PackedWeightF32 {
    /// Pack a `[n, k]` weight for reuse. Returns `None` when packing can
    /// never help: SIMD disabled, not 2-d, or too few output features for
    /// the packed microkernel (`n < LANES`).
    pub fn pack(w: &Tensor) -> Option<Self> {
        if !simd::enabled() || w.ndim() != 2 {
            return None;
        }
        let (n, k) = (w.shape()[0], w.shape()[1]);
        if n < LANES {
            return None;
        }
        let pack = pack_b_full(w.data(), MatLayout::transposed(k), k, n).into_vec();
        Some(PackedWeightF32 { pack, n, k })
    }
}

/// A linear-layer weight packed once and kept resident across calls, at one
/// of three storage precisions.
///
/// [`matmul_bias_act`] re-packs `W^T` on every invocation (the pack is
/// shared across row blocks within one call, but not across calls). An
/// inference session that replays the same weights thousands of times pays
/// that pack cost exactly once by holding a `PackedWeight` per linear
/// weight and passing it to [`matmul_bias_act_cached`]. The
/// [`Bf16`](WeightPrecision::Bf16) and [`Int8`](WeightPrecision::Int8)
/// variants additionally shrink the resident bytes 2×/4× and run the wider
/// reduced-precision kernel ([`crate::qgemm`]).
#[derive(Debug, Clone)]
pub enum PackedWeight {
    /// Full-width strips (the PR-3 path, bit-identical to per-call packing).
    F32(PackedWeightF32),
    /// `u16` BF16 words.
    Bf16(PackedWeightBf16),
    /// Per-channel symmetric `i8` codes.
    I8(PackedWeightI8),
}

impl PackedWeight {
    /// Pack a `[n, k]` weight at full precision (see
    /// [`PackedWeightF32::pack`] for the eligibility gate).
    pub fn pack(w: &Tensor) -> Option<Self> {
        PackedWeightF32::pack(w).map(PackedWeight::F32)
    }

    /// Pack a `[n, k]` weight at the requested precision. The reduced
    /// precisions gate on shape only (2-d, `n >= 8`) — their packs must
    /// exist even under `ORBIT2_DISABLE_SIMD=1` so the scalar oracle sees
    /// the same quantized values the vector kernel does.
    pub fn pack_at(w: &Tensor, precision: WeightPrecision) -> Option<Self> {
        match precision {
            WeightPrecision::F32 => Self::pack(w),
            WeightPrecision::Bf16 => PackedWeightBf16::pack(w).map(PackedWeight::Bf16),
            WeightPrecision::Int8 => PackedWeightI8::pack(w).map(PackedWeight::I8),
        }
    }

    /// The storage precision of this pack.
    pub fn precision(&self) -> WeightPrecision {
        match self {
            PackedWeight::F32(_) => WeightPrecision::F32,
            PackedWeight::Bf16(_) => WeightPrecision::Bf16,
            PackedWeight::I8(_) => WeightPrecision::Int8,
        }
    }

    /// Output features.
    pub fn n(&self) -> usize {
        match self {
            PackedWeight::F32(p) => p.n,
            PackedWeight::Bf16(p) => p.n(),
            PackedWeight::I8(p) => p.n(),
        }
    }

    /// Input features.
    pub fn k(&self) -> usize {
        match self {
            PackedWeight::F32(p) => p.k,
            PackedWeight::Bf16(p) => p.k(),
            PackedWeight::I8(p) => p.k(),
        }
    }

    /// Pack size in stored elements (words/codes, whatever the precision).
    pub fn len(&self) -> usize {
        match self {
            PackedWeight::F32(p) => p.pack.len(),
            PackedWeight::Bf16(p) => p.len(),
            PackedWeight::I8(p) => p.len(),
        }
    }

    /// True when the pack holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The f32 weight tensor this pack computes with: `Some` for the
    /// reduced precisions (rounded / reconstructed values — fallback paths
    /// must use this tensor so every route sees the same weights), `None`
    /// for f32 (the original tensor is already exact).
    pub fn dequantized(&self) -> Option<Tensor> {
        match self {
            PackedWeight::F32(_) => None,
            PackedWeight::Bf16(p) => Some(p.dequantized()),
            PackedWeight::I8(p) => Some(p.dequantized()),
        }
    }
}

/// Fused linear layer: `y = act(x W^T + bias)`.
///
/// `x` is `[m, k]`, `w` is `[n, k]` (PyTorch `[out, in]` convention — packed
/// straight from its storage, no transpose materialized), `bias` is `[n]`.
/// Returns `(y, pre)` where `pre` is the pre-activation `x W^T + bias`,
/// stored only when a non-identity activation consumed it (the tape needs it
/// for `act'`; for identity `pre == y` and is elided).
pub fn matmul_bias_act(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    act: Activation,
) -> (Tensor, Option<Tensor>) {
    matmul_bias_act_impl(x, w, None, bias, act, true)
}

/// Tape-free fused linear layer reusing a resident weight pack.
///
/// Same kernel as [`matmul_bias_act`] with two inference-only differences:
/// the `W^T` pack is taken from `packed` instead of being rebuilt per call,
/// and no pre-activation is stored (there is no backward pass to feed).
/// `packed` must have been produced by [`PackedWeight::pack`] /
/// [`PackedWeight::pack_at`] on this same `w`; pass `None` to pack per call
/// (or run unpacked when ineligible).
///
/// **Reduced-precision contract:** when `packed` is a
/// [`Bf16`](PackedWeight::Bf16) or [`I8`](PackedWeight::I8) pack, `w` must
/// be the pack's [`dequantized`](PackedWeight::dequantized) tensor, so that
/// shapes too small for the packed kernel (which fall back to the plain
/// GEMM on `w`) compute with the same quantized values the kernel widens.
/// [`InferenceSession`-style callers](PackedWeight) snapshot weights that
/// way at prepare time.
pub fn matmul_bias_act_cached(
    x: &Tensor,
    w: &Tensor,
    packed: Option<&PackedWeight>,
    bias: Option<&Tensor>,
    act: Activation,
) -> Tensor {
    let (y, _) = matmul_bias_act_impl(x, w, packed, bias, act, false);
    y
}

fn matmul_bias_act_impl(
    x: &Tensor,
    w: &Tensor,
    resident: Option<&PackedWeight>,
    bias: Option<&Tensor>,
    act: Activation,
    want_pre: bool,
) -> (Tensor, Option<Tensor>) {
    assert_eq!(x.ndim(), 2, "matmul_bias_act input must be 2-d");
    assert_eq!(w.ndim(), 2, "matmul_bias_act weight must be 2-d");
    let (m, k) = (x.shape()[0], x.shape()[1]);
    let (n, k2) = (w.shape()[0], w.shape()[1]);
    assert_eq!(k, k2, "matmul_bias_act dims: x {:?} vs w {:?}", x.shape(), w.shape());
    if let Some(b) = bias {
        assert_eq!(b.len(), n, "bias length {} != out features {n}", b.len());
    }
    let xd = x.data();
    let wd = w.data();
    let bd = bias.map(|b| b.data());

    if let Some(pw) = resident {
        assert_eq!((pw.n(), pw.k()), (n, k), "resident pack shape mismatch for w {:?}", w.shape());
    }
    let pre_needed = want_pre && act != Activation::Identity;

    // Resident reduced-precision packs take the quantized kernel wholesale:
    // it applies scale/bias/activation at store time, so the generic
    // epilogue below never runs. Ineligible shapes (or a caller that needs
    // the pre-activation) fall through to the generic path, where `w` — the
    // dequantized weights by the caller contract of
    // [`matmul_bias_act_cached`] — keeps the values consistent.
    if !pre_needed && packed_eligible(m, k, n) {
        match resident {
            Some(PackedWeight::Bf16(pw)) => {
                let mut out = pool::alloc_uninit(m * n);
                qgemm::gemm_bf16_fused(xd, m, k, pw, bd, act, &mut out);
                return (Tensor::from_vec(vec![m, n], out), None);
            }
            Some(PackedWeight::I8(pw)) => {
                let mut out = pool::alloc_uninit(m * n);
                qgemm::gemm_i8_fused(xd, m, k, pw, bd, act, &mut out);
                return (Tensor::from_vec(vec![m, n], out), None);
            }
            _ => {}
        }
    }
    let resident_f32 = match resident {
        Some(PackedWeight::F32(pw)) => Some(pw),
        _ => None,
    };
    let mut out = pool::alloc_zeroed(m * n);
    let mut pre = pre_needed.then(|| pool::alloc_uninit(m * n));

    // W^T is packed into microkernel strips once and shared read-only by
    // every row block — without the hoist each block's GEMM call would
    // re-pack all of B (`m / ROW_BLOCK` redundant packs). A resident pack
    // from a `PackedWeight` skips even that single per-call pack; the
    // eligibility test is the same either way, so both routes take the
    // identical GEMM branch for any given shape.
    let packed = packed_eligible(m, k, n);
    let owned = (packed && resident_f32.is_none())
        .then(|| pack_b_full(wd, MatLayout::transposed(k), k, n));
    let bpack: Option<&[f32]> = if packed {
        match resident_f32 {
            Some(pw) => Some(&pw.pack),
            None => owned.as_deref(),
        }
    } else {
        None
    };

    // One macro-block = a row-block GEMM followed immediately by its
    // epilogue, so bias/pre/activation touch the C block while it is hot.
    let body = |bi: usize, oc: &mut [f32], preb: Option<&mut [f32]>| {
        let i0 = bi * ROW_BLOCK;
        let rows = oc.len() / n;
        match &bpack {
            Some(bp) => {
                gemm_rows_packed_b(xd, MatLayout::row_major(k), i0, bp, oc, k, n);
            }
            None => gemm(
                &xd[i0 * k..(i0 + rows) * k],
                MatLayout::row_major(k),
                wd,
                MatLayout::transposed(k),
                oc,
                rows,
                k,
                n,
                false,
            ),
        }
        if let Some(b) = bd {
            for row in oc.chunks_exact_mut(n) {
                add_assign(row, b);
            }
        }
        if let Some(p) = preb {
            p.copy_from_slice(oc);
        }
        match act {
            Activation::Identity => {}
            Activation::Relu => {
                for v in oc.iter_mut() {
                    *v = v.max(0.0);
                }
            }
            Activation::Gelu => {
                for v in oc.iter_mut() {
                    *v = gelu_scalar(*v);
                }
            }
        }
    };

    match pre.as_mut() {
        Some(p) => out
            .par_chunks_mut(ROW_BLOCK * n)
            .zip(p.par_chunks_mut(ROW_BLOCK * n))
            .enumerate()
            .for_each(|(bi, (oc, pc))| body(bi, oc, Some(pc))),
        None => out
            .par_chunks_mut(ROW_BLOCK * n)
            .enumerate()
            .for_each(|(bi, oc)| body(bi, oc, None)),
    }

    let y = Tensor::from_vec(vec![m, n], out);
    let pre = pre.map(|p| Tensor::from_vec(vec![m, n], p));
    (y, pre)
}

/// `g ⊙ act'(pre)` — the elementwise start of the fused-linear backward.
pub fn act_backward(g: &Tensor, pre: &Tensor, act: Activation) -> Tensor {
    assert_eq!(g.shape(), pre.shape());
    let gd = g.data();
    let pd = pre.data();
    let mut out = pool::alloc_uninit(gd.len());
    for ((o, &gv), &pv) in out.iter_mut().zip(gd).zip(pd) {
        *o = gv * act.grad(pv);
    }
    Tensor::from_vec(g.shape().to_vec(), out)
}

/// `dst += src` elementwise (vectorized bias add).
#[inline]
fn add_assign(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    if !simd::enabled() {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d += s;
        }
        return;
    }
    let mut dc = dst.chunks_exact_mut(LANES);
    let mut sc = src.chunks_exact(LANES);
    for (d, s) in dc.by_ref().zip(sc.by_ref()) {
        F32x8::load(d).add(F32x8::load(s)).store(d);
    }
    for (d, &s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
        *d += s;
    }
}

/// One-pass Welford layer norm over the last axis.
///
/// `src` is `rows` rows of length `d`. Returns `(norm, inv_std)` where
/// `norm[r]` is the normalized row `(x - mean) / sqrt(var + eps)` and
/// `inv_std[r] = 1 / sqrt(var + eps)` (kept for the backward pass).
///
/// Mean and variance come from a single traversal: eight lane-wise Welford
/// streams over the vector body, merged with Chan's combine formula, then
/// the scalar tail folded in the same way. The classic two-pass formulation
/// reads the row twice before the normalize write; this reads it once.
pub fn layer_norm_rows(src: &[f32], rows: usize, d: usize, eps: f32) -> (Vec<f32>, Vec<f32>) {
    assert_eq!(src.len(), rows * d);
    let mut norm = pool::alloc_uninit(rows * d);
    let mut inv_std = pool::alloc_uninit(rows);
    norm.par_chunks_mut(d).zip(inv_std.par_iter_mut()).enumerate().for_each(
        |(r, (nrow, istd))| {
            let row = &src[r * d..(r + 1) * d];
            let (mean, var) = welford_mean_var(row);
            let is = 1.0 / (var + eps).sqrt();
            *istd = is;
            if simd::enabled() {
                let mv = F32x8::splat(mean);
                let sv = F32x8::splat(is);
                let mut nc = nrow.chunks_exact_mut(LANES);
                let mut rc = row.chunks_exact(LANES);
                for (nd, rd) in nc.by_ref().zip(rc.by_ref()) {
                    F32x8::load(rd).sub(mv).mul(sv).store(nd);
                }
                for (nd, &rv) in nc.into_remainder().iter_mut().zip(rc.remainder()) {
                    *nd = (rv - mean) * is;
                }
            } else {
                for (nd, &rv) in nrow.iter_mut().zip(row) {
                    *nd = (rv - mean) * is;
                }
            }
        },
    );
    (norm, inv_std)
}

/// Single-pass mean and population variance of a slice (Welford).
pub fn welford_mean_var(row: &[f32]) -> (f32, f32) {
    let d = row.len();
    if d == 0 {
        return (0.0, 0.0);
    }
    if !simd::enabled() || d < 2 * LANES {
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        for (i, &x) in row.iter().enumerate() {
            let x = x as f64;
            let delta = x - mean;
            mean += delta / (i + 1) as f64;
            m2 += delta * (x - mean);
        }
        return (mean as f32, (m2 / d as f64) as f32);
    }
    // Eight parallel Welford streams: lane `l` accumulates elements
    // `l, l+8, l+16, ...` of the vector body.
    let mut mean = F32x8::ZERO;
    let mut m2 = F32x8::ZERO;
    let mut chunks = row.chunks_exact(LANES);
    let mut t = 0.0f32;
    for ch in chunks.by_ref() {
        t += 1.0;
        let x = F32x8::load(ch);
        let delta = x.sub(mean);
        mean = mean.add(delta.mul(F32x8::splat(1.0 / t)));
        m2 = m2.add(delta.mul(x.sub(mean)));
    }
    // Merge the eight lane statistics (Chan's pairwise combine).
    let means = mean.to_array();
    let m2s = m2.to_array();
    let mut cmean = means[0] as f64;
    let mut cm2 = m2s[0] as f64;
    let mut cn = t as f64;
    for l in 1..LANES {
        (cmean, cm2, cn) = chan_combine(cmean, cm2, cn, means[l] as f64, m2s[l] as f64, t as f64);
    }
    // Fold in the scalar tail with per-element Welford updates.
    for &x in chunks.remainder() {
        let x = x as f64;
        cn += 1.0;
        let delta = x - cmean;
        cmean += delta / cn;
        cm2 += delta * (x - cmean);
    }
    (cmean as f32, (cm2 / d as f64) as f32)
}

/// Chan's parallel combine for two Welford partials.
#[inline]
pub(crate) fn chan_combine(ma: f64, m2a: f64, na: f64, mb: f64, m2b: f64, nb: f64) -> (f64, f64, f64) {
    let n = na + nb;
    let delta = mb - ma;
    let mean = ma + delta * nb / n;
    let m2 = m2a + m2b + delta * delta * na * nb / n;
    (mean, m2, n)
}

/// In-place softmax over contiguous rows of length `inner`: for each row,
/// subtract the max, exponentiate, and scale by the inverse sum — the max
/// scan and the normalize pass run on [`F32x8`] lanes.
pub fn softmax_rows(dst: &mut [f32], inner: usize) {
    debug_assert_eq!(dst.len() % inner.max(1), 0);
    if inner == 0 {
        return;
    }
    dst.par_chunks_mut(inner).for_each(|row| {
        let mx = simd::max_value(row);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - mx).exp();
            sum += *v;
        }
        simd::scale(row, 1.0 / sum);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::randn;

    #[test]
    fn fused_linear_matches_unfused_composition() {
        for &(m, k, n) in &[(5usize, 7usize, 9usize), (72, 64, 48), (73, 33, 17)] {
            let x = randn(&[m, k], 1);
            let w = randn(&[n, k], 2);
            let b = randn(&[n], 3);
            let (y, pre) = matmul_bias_act(&x, &w, Some(&b), Activation::Gelu);
            let expect = x.matmul(&w.transpose2()).add(&b.reshape(vec![1, n])).gelu();
            y.assert_close(&expect, 1e-4 * (k as f32).sqrt());
            let pre = pre.expect("gelu epilogue stores pre-activation");
            let expect_pre = x.matmul(&w.transpose2()).add(&b.reshape(vec![1, n]));
            pre.assert_close(&expect_pre, 1e-4 * (k as f32).sqrt());
        }
    }

    #[test]
    fn cached_pack_bitwise_matches_per_call_pack() {
        // Shapes straddling the packed-eligibility boundary: tiny (unpacked
        // either way), medium and large (packed when SIMD is on).
        for &(m, k, n) in &[(2usize, 3usize, 4usize), (8, 16, 12), (72, 64, 48), (73, 33, 17)] {
            let x = randn(&[m, k], 41);
            let w = randn(&[n, k], 42);
            let b = randn(&[n], 43);
            let packed = PackedWeight::pack(&w);
            for act in [Activation::Identity, Activation::Gelu, Activation::Relu] {
                let (y_ref, _) = matmul_bias_act(&x, &w, Some(&b), act);
                let y_cached = matmul_bias_act_cached(&x, &w, packed.as_ref(), Some(&b), act);
                assert_eq!(y_ref.data(), y_cached.data(), "m={m} k={k} n={n} {act:?}");
                let y_uncached = matmul_bias_act_cached(&x, &w, None, Some(&b), act);
                assert_eq!(y_ref.data(), y_uncached.data());
            }
        }
    }

    #[test]
    fn row_stacking_is_bitwise_invariant() {
        // The microbatching contract: every kernel a batched forward runs
        // over row-stacked inputs must compute each output row from its
        // input row alone, so stacking two activations and running ONE
        // kernel call equals the two separate calls, bit for bit. Rows per
        // part deliberately straddle MR-panel and ROW_BLOCK boundaries.
        let (k, n) = (48usize, 32usize);
        let w = randn(&[n, k], 71);
        let b = randn(&[n], 72);
        let packed = PackedWeight::pack(&w);
        for &(ra, rb) in &[(2usize, 3usize), (5, 9), (7, 70), (64, 128), (73, 7)] {
            let xa = randn(&[ra, k], 73);
            let xb = randn(&[rb, k], 74);
            let stacked = Tensor::stack_rows(&[&xa, &xb]);
            // Fused linear (the batched GEMM itself) — only when every part
            // takes the same kernel branch as the stack, which is the
            // precondition the microbatcher enforces before stacking.
            let branch_stable = crate::matmul::packed_eligible(ra, k, n)
                == crate::matmul::packed_eligible(ra + rb, k, n)
                && crate::matmul::packed_eligible(rb, k, n)
                    == crate::matmul::packed_eligible(ra + rb, k, n);
            if branch_stable {
                for act in [Activation::Identity, Activation::Gelu] {
                    let ya = matmul_bias_act_cached(&xa, &w, packed.as_ref(), Some(&b), act);
                    let yb = matmul_bias_act_cached(&xb, &w, packed.as_ref(), Some(&b), act);
                    let ys = matmul_bias_act_cached(&stacked, &w, packed.as_ref(), Some(&b), act);
                    let parts = ys.split_rows(&[ra, rb]);
                    assert_eq!(parts[0].data(), ya.data(), "linear rows ({ra},{rb}) {act:?}");
                    assert_eq!(parts[1].data(), yb.data(), "linear rows ({ra},{rb}) {act:?}");
                }
            }
            // Layer norm.
            let (na, _) = layer_norm_rows(xa.data(), ra, k, 1e-5);
            let (nb, _) = layer_norm_rows(xb.data(), rb, k, 1e-5);
            let (ns, _) = layer_norm_rows(stacked.data(), ra + rb, k, 1e-5);
            assert_eq!(&ns[..ra * k], &na[..], "layer_norm rows ({ra},{rb})");
            assert_eq!(&ns[ra * k..], &nb[..], "layer_norm rows ({ra},{rb})");
            // Softmax.
            let mut sa = xa.data().to_vec();
            let mut sb = xb.data().to_vec();
            let mut ss = stacked.data().to_vec();
            softmax_rows(&mut sa, k);
            softmax_rows(&mut sb, k);
            softmax_rows(&mut ss, k);
            assert_eq!(&ss[..ra * k], &sa[..], "softmax rows ({ra},{rb})");
            assert_eq!(&ss[ra * k..], &sb[..], "softmax rows ({ra},{rb})");
        }
    }

    #[test]
    fn quantized_cached_path_matches_dequantized_reference() {
        // A reduced-precision pack plus its dequantized tensor must compute
        // the same function as the plain fused linear on that dequantized
        // tensor, within kernel reordering tolerance — and for shapes below
        // the packed-eligibility gate the fallback runs on `w` itself, so
        // the values agree exactly by construction.
        for &(m, k, n) in &[(2usize, 3usize, 16usize), (9, 40, 48), (72, 64, 64)] {
            let x = randn(&[m, k], 51);
            let w = randn(&[n, k], 52);
            let b = randn(&[n], 53);
            for prec in [WeightPrecision::Bf16, WeightPrecision::Int8] {
                let packed = PackedWeight::pack_at(&w, prec).unwrap();
                assert_eq!(packed.precision(), prec);
                let dq = packed.dequantized().unwrap();
                for act in [Activation::Identity, Activation::Gelu] {
                    let y = matmul_bias_act_cached(&x, &dq, Some(&packed), Some(&b), act);
                    let (y_ref, _) = matmul_bias_act(&x, &dq, Some(&b), act);
                    y.assert_close(&y_ref, 2e-4 * (k as f32).sqrt());
                }
            }
        }
    }

    #[test]
    fn quantized_row_stacking_is_bitwise_invariant() {
        // The microbatching contract must hold for reduced-precision packs
        // too: each output row depends on its input row alone.
        let (k, n) = (48usize, 64usize);
        let w = randn(&[n, k], 81);
        let b = randn(&[n], 82);
        for prec in [WeightPrecision::Bf16, WeightPrecision::Int8] {
            let packed = PackedWeight::pack_at(&w, prec).unwrap();
            let dq = packed.dequantized().unwrap();
            for &(ra, rb) in &[(5usize, 9usize), (7, 70), (64, 128)] {
                let xa = randn(&[ra, k], 83);
                let xb = randn(&[rb, k], 84);
                let stacked = Tensor::stack_rows(&[&xa, &xb]);
                let branch_stable = crate::matmul::packed_eligible(ra, k, n)
                    == crate::matmul::packed_eligible(ra + rb, k, n)
                    && crate::matmul::packed_eligible(rb, k, n)
                        == crate::matmul::packed_eligible(ra + rb, k, n);
                if !branch_stable {
                    continue;
                }
                let ya = matmul_bias_act_cached(&xa, &dq, Some(&packed), Some(&b), Activation::Gelu);
                let yb = matmul_bias_act_cached(&xb, &dq, Some(&packed), Some(&b), Activation::Gelu);
                let ys =
                    matmul_bias_act_cached(&stacked, &dq, Some(&packed), Some(&b), Activation::Gelu);
                let parts = ys.split_rows(&[ra, rb]);
                assert_eq!(parts[0].data(), ya.data(), "{prec:?} rows ({ra},{rb})");
                assert_eq!(parts[1].data(), yb.data(), "{prec:?} rows ({ra},{rb})");
            }
        }
    }

    #[test]
    fn packed_weight_skips_ineligible_shapes() {
        // n < LANES: the packed microkernel never runs for this weight.
        let w = randn(&[4, 16], 44);
        if crate::simd::enabled() {
            assert!(PackedWeight::pack(&w).is_none());
            assert!(PackedWeight::pack(&randn(&[16, 16], 45)).is_some());
        } else {
            assert!(PackedWeight::pack(&randn(&[16, 16], 45)).is_none());
        }
    }

    #[test]
    fn identity_no_bias_elides_pre() {
        let x = randn(&[4, 6], 4);
        let w = randn(&[5, 6], 5);
        let (y, pre) = matmul_bias_act(&x, &w, None, Activation::Identity);
        assert!(pre.is_none());
        y.assert_close(&x.matmul(&w.transpose2()), 1e-4);
    }

    #[test]
    fn relu_epilogue_clamps() {
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, -1.0]);
        let w = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let (y, pre) = matmul_bias_act(&x, &w, None, Activation::Relu);
        assert_eq!(y.data(), &[1.0, 0.0]);
        assert_eq!(pre.unwrap().data(), &[1.0, -1.0]);
    }

    #[test]
    fn welford_matches_two_pass() {
        for n in [1usize, 7, 8, 16, 100, 257] {
            let t = randn(&[n], 11);
            let row = t.data();
            let mean_ref: f32 = row.iter().sum::<f32>() / n as f32;
            let var_ref: f32 =
                row.iter().map(|&x| (x - mean_ref) * (x - mean_ref)).sum::<f32>() / n as f32;
            let (mean, var) = welford_mean_var(row);
            assert!((mean - mean_ref).abs() < 1e-4, "n={n}: {mean} vs {mean_ref}");
            assert!((var - var_ref).abs() < 1e-3, "n={n}: {var} vs {var_ref}");
        }
    }

    #[test]
    fn layer_norm_rows_normalizes() {
        let (rows, d) = (6, 37);
        let t = randn(&[rows, d], 21);
        let (norm, inv_std) = layer_norm_rows(t.data(), rows, d, 1e-5);
        assert_eq!(inv_std.len(), rows);
        for r in 0..rows {
            let row = &norm[r * d..(r + 1) * d];
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / d as f32;
            assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row {r} var {var}");
        }
    }

    #[test]
    fn softmax_rows_matches_reference() {
        let t = randn(&[5, 13], 31);
        let mut fused = t.data().to_vec();
        softmax_rows(&mut fused, 13);
        let expect = t.softmax_last();
        for (a, b) in fused.iter().zip(expect.data()) {
            assert!((a - b).abs() < 1e-5);
        }
        let sums: f32 = fused[..13].iter().sum();
        assert!((sums - 1.0).abs() < 1e-5);
    }

    #[test]
    fn activation_grads_match_finite_difference() {
        for act in [Activation::Relu, Activation::Gelu] {
            for &x in &[-1.5f32, -0.3, 0.2, 1.7] {
                let h = 1e-3;
                let fd = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                assert!((act.grad(x) - fd).abs() < 1e-2, "{act:?} at {x}");
            }
        }
    }
}
