//! The dense `f32` tensor type.

use crate::shape::{numel, strides_for, Shape};
use std::fmt;

/// A dense, row-major tensor of `f32`.
///
/// All kernels in this crate operate on contiguous storage; views are
/// materialized explicitly (e.g. [`Tensor::permute`]) which keeps every hot
/// loop a linear scan — the access pattern the perf-book guide favours.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Build a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics when `data.len()` does not match the product of `shape`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            numel(&shape),
            data.len(),
            "shape {:?} wants {} elements, got {}",
            shape,
            numel(&shape),
            data.len()
        );
        Self { shape, data }
    }

    /// All-zero tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = numel(&shape);
        Self { shape, data: vec![0.0; n] }
    }

    /// All-one tensor.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = numel(&shape);
        Self { shape, data: vec![value; n] }
    }

    /// 0-d scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Self { shape: vec![], data: vec![value] }
    }

    /// `[0, 1, ..., n-1]` as a 1-d tensor.
    pub fn arange(n: usize) -> Self {
        Self { shape: vec![n], data: (0..n).map(|i| i as f32).collect() }
    }

    /// The shape (axis extents, outermost first).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of axes.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Value of a 0-d or single-element tensor.
    ///
    /// # Panics
    /// Panics when the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() on tensor with {} elements", self.data.len());
        self.data[0]
    }

    /// Element at a multi-dimensional coordinate.
    pub fn at(&self, coord: &[usize]) -> f32 {
        self.data[crate::shape::ravel(coord, &self.shape)]
    }

    /// Set the element at a multi-dimensional coordinate.
    pub fn set(&mut self, coord: &[usize], value: f32) {
        let i = crate::shape::ravel(coord, &self.shape);
        self.data[i] = value;
    }

    /// Reinterpret with a new shape of identical element count.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            numel(&shape),
            self.data.len(),
            "reshape {:?} -> {:?} changes element count",
            self.shape,
            shape
        );
        Self { shape, data: self.data.clone() }
    }

    /// Like [`Tensor::reshape`] but consumes `self` (no copy).
    pub fn into_reshape(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(numel(&shape), self.data.len(), "reshape changes element count");
        self.shape = shape;
        self
    }

    /// Row-major strides of this tensor.
    pub fn strides(&self) -> Vec<usize> {
        strides_for(&self.shape)
    }

    /// Apply `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Self {
        let data = self.data.iter().map(|&x| f(x)).collect();
        Self { shape: self.shape.clone(), data }
    }

    /// Apply `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combine two same-shaped tensors elementwise.
    ///
    /// For broadcasting semantics use the arithmetic ops in [`crate::ops`].
    pub fn zip(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(self.shape, other.shape, "zip requires identical shapes");
        let data = self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect();
        Self { shape: self.shape.clone(), data }
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute elementwise difference against `other`.
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!(self.shape, other.shape);
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }

    /// Assert elementwise closeness with absolute tolerance; for tests.
    pub fn assert_close(&self, other: &Self, tol: f32) {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        let d = self.max_abs_diff(other);
        assert!(d <= tol, "tensors differ by {d} > tol {tol}");
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, .., {:.4}] ({} elems)",
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1],
                self.data.len()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_index() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.at(&[0, 2]), 3.0);
        assert_eq!(t.at(&[1, 0]), 4.0);
        assert_eq!(t.ndim(), 2);
        assert_eq!(t.len(), 6);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_bad_len_panics() {
        Tensor::from_vec(vec![2, 2], vec![1.0; 3]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6).reshape(vec![2, 3]);
        assert_eq!(t.at(&[1, 1]), 4.0);
        let back = t.into_reshape(vec![6]);
        assert_eq!(back.data(), &[0., 1., 2., 3., 4., 5.]);
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::from_vec(vec![3], vec![1., 2., 3.]);
        let b = a.map(|x| x * 2.0);
        assert_eq!(b.data(), &[2., 4., 6.]);
        let c = a.zip(&b, |x, y| y - x);
        assert_eq!(c.data(), &[1., 2., 3.]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(7.5).item(), 7.5);
    }

    #[test]
    fn set_then_at() {
        let mut t = Tensor::zeros(vec![2, 2]);
        t.set(&[1, 0], 9.0);
        assert_eq!(t.at(&[1, 0]), 9.0);
        assert_eq!(t.at(&[0, 1]), 0.0);
    }
}
