//! The dense `f32` tensor type.

use crate::pool::Buffer;
use crate::shape::{numel, strides_for, Shape, ShapeHandle};
use std::fmt;
use std::sync::Arc;

/// A dense, row-major tensor of `f32` with copy-on-write storage.
///
/// Both the shape and the element buffer live behind `Arc`s: cloning a
/// tensor, reshaping, or capturing one in an autograd closure costs two
/// reference-count bumps. The first mutation of shared storage
/// ([`Tensor::data_mut`] and the `*_` in-place ops) triggers exactly one
/// copy via `Arc::make_mut`; uniquely-owned tensors mutate in place for
/// free. Buffers are drawn from and recycled to a thread-local pool
/// ([`crate::pool`]).
///
/// All kernels in this crate operate on contiguous storage; views are
/// materialized explicitly (e.g. [`Tensor::permute`]) which keeps every hot
/// loop a linear scan — the access pattern the perf-book guide favours.
#[derive(Clone)]
pub struct Tensor {
    shape: ShapeHandle,
    data: Arc<Buffer>,
}

impl Tensor {
    /// Build a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics when `data.len()` does not match the product of `shape`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            numel(&shape),
            data.len(),
            "shape {:?} wants {} elements, got {}",
            shape,
            numel(&shape),
            data.len()
        );
        Self { shape: Arc::new(shape), data: Arc::new(Buffer::from_vec(data)) }
    }

    /// Like [`Tensor::from_vec`] but reusing an existing shape handle, so
    /// same-shaped results (elementwise ops, gradients) share one shape
    /// allocation.
    pub fn from_shape_handle(shape: ShapeHandle, data: Vec<f32>) -> Self {
        assert_eq!(numel(&shape), data.len(), "shape {:?} does not match data length", shape);
        Self { shape, data: Arc::new(Buffer::from_vec(data)) }
    }

    /// Build from a pooled [`Buffer`] and a shape handle.
    pub fn from_buffer(shape: ShapeHandle, buffer: Buffer) -> Self {
        assert_eq!(numel(&shape), buffer.len(), "shape {:?} does not match buffer length", shape);
        Self { shape, data: Arc::new(buffer) }
    }

    /// All-zero tensor (pool-allocated).
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = numel(&shape);
        Self { shape: Arc::new(shape), data: Arc::new(Buffer::zeroed(n)) }
    }

    /// All-zero tensor with the same shape as `like`, sharing its shape
    /// handle (no shape reallocation).
    pub fn zeros_like(like: &Tensor) -> Self {
        Self { shape: like.shape.clone(), data: Arc::new(Buffer::zeroed(like.len())) }
    }

    /// All-one tensor.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Constant-filled tensor (pool-allocated).
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = numel(&shape);
        Self { shape: Arc::new(shape), data: Arc::new(Buffer::filled(n, value)) }
    }

    /// 0-d scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Self { shape: Arc::new(vec![]), data: Arc::new(Buffer::from_vec(vec![value])) }
    }

    /// `[0, 1, ..., n-1]` as a 1-d tensor.
    pub fn arange(n: usize) -> Self {
        let mut data = crate::pool::alloc_uninit(n);
        for (i, x) in data.iter_mut().enumerate() {
            *x = i as f32;
        }
        Self { shape: Arc::new(vec![n]), data: Arc::new(Buffer::from_vec(data)) }
    }

    /// The shape (axis extents, outermost first).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Shared handle to the shape; pass to [`Tensor::from_shape_handle`] /
    /// [`Tensor::from_buffer`] to build same-shaped tensors without
    /// reallocating the extents.
    pub fn shape_handle(&self) -> ShapeHandle {
        Arc::clone(&self.shape)
    }

    /// True when `self` and `other` share the same underlying element
    /// buffer (i.e. a write to one would COW-fault). Diagnostic; used by
    /// aliasing tests.
    pub fn shares_storage(&self, other: &Tensor) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Number of axes.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major storage.
    ///
    /// Copy-on-write point: when the buffer is shared with other tensors
    /// this clones it (one pooled allocation + memcpy); when uniquely owned
    /// it is free.
    pub fn data_mut(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Consume the tensor, returning its storage. Copies only when the
    /// buffer is shared.
    pub fn into_vec(self) -> Vec<f32> {
        match Arc::try_unwrap(self.data) {
            Ok(buf) => buf.into_vec(),
            Err(shared) => shared.as_slice().to_vec(),
        }
    }

    /// Value of a 0-d or single-element tensor.
    ///
    /// # Panics
    /// Panics when the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() on tensor with {} elements", self.data.len());
        self.data[0]
    }

    /// Element at a multi-dimensional coordinate.
    pub fn at(&self, coord: &[usize]) -> f32 {
        self.data[crate::shape::ravel(coord, &self.shape)]
    }

    /// Set the element at a multi-dimensional coordinate.
    pub fn set(&mut self, coord: &[usize], value: f32) {
        let i = crate::shape::ravel(coord, &self.shape);
        self.data_mut()[i] = value;
    }

    /// Reinterpret with a new shape of identical element count. The storage
    /// is shared, not copied.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            numel(&shape),
            self.data.len(),
            "reshape {:?} -> {:?} changes element count",
            self.shape,
            shape
        );
        Self { shape: Arc::new(shape), data: Arc::clone(&self.data) }
    }

    /// Like [`Tensor::reshape`] but consumes `self`.
    pub fn into_reshape(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(numel(&shape), self.data.len(), "reshape changes element count");
        self.shape = Arc::new(shape);
        self
    }

    /// Row-major strides of this tensor.
    pub fn strides(&self) -> Vec<usize> {
        strides_for(&self.shape)
    }

    /// Apply `f` elementwise, producing a new (pool-allocated) tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Self {
        let mut out = Buffer::uninit(self.len());
        for (o, &x) in out.iter_mut().zip(self.data.iter()) {
            *o = f(x);
        }
        Self { shape: self.shape.clone(), data: Arc::new(out) }
    }

    /// Apply `f` elementwise in place (COW: copies first when shared).
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.data_mut() {
            *x = f(*x);
        }
    }

    /// Consuming elementwise map: reuses the storage when uniquely owned,
    /// so chains like `t.map_into(a).map_into(b)` allocate nothing.
    pub fn map_into(mut self, f: impl Fn(f32) -> f32) -> Self {
        self.map_inplace(f);
        self
    }

    /// In-place scalar multiply: `self *= s`.
    pub fn scale_(&mut self, s: f32) {
        for x in self.data_mut() {
            *x *= s;
        }
    }

    /// Combine two same-shaped tensors elementwise.
    ///
    /// For broadcasting semantics use the arithmetic ops in [`crate::ops`].
    pub fn zip(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(self.shape, other.shape, "zip requires identical shapes");
        let mut out = Buffer::uninit(self.len());
        for ((o, &a), &b) in out.iter_mut().zip(self.data.iter()).zip(other.data.iter()) {
            *o = f(a, b);
        }
        Self { shape: self.shape.clone(), data: Arc::new(out) }
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute elementwise difference against `other`.
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!(self.shape, other.shape);
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }

    /// Assert elementwise closeness with absolute tolerance; for tests.
    pub fn assert_close(&self, other: &Self, tol: f32) {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        let d = self.max_abs_diff(other);
        assert!(d <= tol, "tensors differ by {d} > tol {tol}");
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        (Arc::ptr_eq(&self.shape, &other.shape) || *self.shape == *other.shape)
            && (Arc::ptr_eq(&self.data, &other.data)
                || self.data.as_slice() == other.data.as_slice())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data.as_slice())
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, .., {:.4}] ({} elems)",
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1],
                self.data.len()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_index() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.at(&[0, 2]), 3.0);
        assert_eq!(t.at(&[1, 0]), 4.0);
        assert_eq!(t.ndim(), 2);
        assert_eq!(t.len(), 6);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_bad_len_panics() {
        Tensor::from_vec(vec![2, 2], vec![1.0; 3]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6).reshape(vec![2, 3]);
        assert_eq!(t.at(&[1, 1]), 4.0);
        let back = t.into_reshape(vec![6]);
        assert_eq!(back.data(), &[0., 1., 2., 3., 4., 5.]);
    }

    #[test]
    fn reshape_shares_storage() {
        let t = Tensor::arange(6);
        let r = t.reshape(vec![2, 3]);
        assert!(t.shares_storage(&r));
    }

    #[test]
    fn clone_is_cow() {
        let a = Tensor::from_vec(vec![3], vec![1., 2., 3.]);
        let mut b = a.clone();
        assert!(a.shares_storage(&b));
        b.data_mut()[0] = 99.0;
        assert!(!a.shares_storage(&b));
        assert_eq!(a.data(), &[1., 2., 3.], "original must be untouched by clone mutation");
        assert_eq!(b.data(), &[99., 2., 3.]);
    }

    #[test]
    fn map_into_reuses_unique_storage() {
        crate::pool::reset_stats();
        let t = Tensor::from_vec(vec![4], vec![1., 2., 3., 4.]);
        let before = crate::pool::stats();
        let t = t.map_into(|x| x * 2.0);
        let after = crate::pool::stats();
        assert_eq!(t.data(), &[2., 4., 6., 8.]);
        assert_eq!(after.copies, before.copies, "unique map_into must not copy");
        assert_eq!(after.fresh_allocs, before.fresh_allocs);
    }

    #[test]
    fn scale_in_place() {
        let mut t = Tensor::from_vec(vec![3], vec![1., -2., 4.]);
        t.scale_(0.5);
        assert_eq!(t.data(), &[0.5, -1., 2.]);
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::from_vec(vec![3], vec![1., 2., 3.]);
        let b = a.map(|x| x * 2.0);
        assert_eq!(b.data(), &[2., 4., 6.]);
        let c = a.zip(&b, |x, y| y - x);
        assert_eq!(c.data(), &[1., 2., 3.]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(7.5).item(), 7.5);
    }

    #[test]
    fn set_then_at() {
        let mut t = Tensor::zeros(vec![2, 2]);
        t.set(&[1, 0], 9.0);
        assert_eq!(t.at(&[1, 0]), 9.0);
        assert_eq!(t.at(&[0, 1]), 0.0);
    }

    #[test]
    fn set_on_shared_storage_faults_privately() {
        let a = Tensor::zeros(vec![2, 2]);
        let mut b = a.clone();
        b.set(&[0, 0], 5.0);
        assert_eq!(a.at(&[0, 0]), 0.0);
        assert_eq!(b.at(&[0, 0]), 5.0);
    }
}
