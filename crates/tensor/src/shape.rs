//! Shape and stride arithmetic shared by every kernel in the crate.
//!
//! Tensors are dense and row-major (C order). Broadcasting follows the NumPy
//! rules: trailing axes are aligned, and an axis broadcasts when either side
//! is 1.

/// A tensor shape: the extent of each axis, outermost first.
pub type Shape = Vec<usize>;

/// Shared, immutable handle to a shape. Tensors hand these out so derived
/// tensors of identical shape (elementwise results, gradients) share one
/// allocation instead of re-`to_vec`-ing the extents on every op.
pub type ShapeHandle = std::sync::Arc<Shape>;

/// Row-major strides (in elements) for a dense tensor of the given shape.
///
/// The stride of the last axis is 1; a zero-dim shape yields an empty vec.
pub fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![0; shape.len()];
    let mut acc = 1usize;
    for (i, &dim) in shape.iter().enumerate().rev() {
        strides[i] = acc;
        acc = acc.saturating_mul(dim);
    }
    strides
}

/// Total number of elements for a shape.
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Broadcast two shapes together per NumPy rules.
///
/// Returns `None` when the shapes are incompatible (some axis differs and
/// neither side is 1).
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Option<Shape> {
    let n = a.len().max(b.len());
    let mut out = vec![0usize; n];
    for i in 0..n {
        let da = if i < n - a.len() { 1 } else { a[i - (n - a.len())] };
        let db = if i < n - b.len() { 1 } else { b[i - (n - b.len())] };
        out[i] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return None;
        };
    }
    Some(out)
}

/// Map a flat row-major index in `out_shape` to the flat index in a tensor of
/// `src_shape` being broadcast to `out_shape`.
///
/// `src_shape` must be broadcast-compatible with (and no longer than)
/// `out_shape`.
pub fn broadcast_index(flat: usize, out_shape: &[usize], src_shape: &[usize], src_strides: &[usize]) -> usize {
    let offset = out_shape.len() - src_shape.len();
    let mut rem = flat;
    let mut idx = 0usize;
    // Walk axes outermost-first, peeling coordinates off `flat`.
    let mut axis_size = numel(out_shape);
    for (i, &dim) in out_shape.iter().enumerate() {
        axis_size /= dim;
        let coord = rem / axis_size;
        rem %= axis_size;
        if i >= offset {
            let s = i - offset;
            if src_shape[s] != 1 {
                idx += coord * src_strides[s];
            }
        }
    }
    idx
}

/// Convert a multi-dimensional coordinate to a flat row-major index.
pub fn ravel(coord: &[usize], shape: &[usize]) -> usize {
    debug_assert_eq!(coord.len(), shape.len());
    let mut idx = 0usize;
    for (c, d) in coord.iter().zip(shape.iter()) {
        debug_assert!(c < d, "coordinate {c} out of bounds for axis of size {d}");
        idx = idx * d + c;
    }
    idx
}

/// Convert a flat row-major index to a multi-dimensional coordinate.
pub fn unravel(flat: usize, shape: &[usize]) -> Vec<usize> {
    let mut coord = vec![0usize; shape.len()];
    let mut rem = flat;
    for i in (0..shape.len()).rev() {
        coord[i] = rem % shape[i];
        rem /= shape[i];
    }
    coord
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_for(&[5]), vec![1]);
        assert_eq!(strides_for(&[]), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_basic() {
        assert_eq!(broadcast_shapes(&[2, 3], &[3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shapes(&[2, 1, 4], &[3, 1]), Some(vec![2, 3, 4]));
        assert_eq!(broadcast_shapes(&[2, 3], &[4]), None);
        assert_eq!(broadcast_shapes(&[], &[2, 2]), Some(vec![2, 2]));
    }

    #[test]
    fn ravel_unravel_roundtrip() {
        let shape = [3usize, 4, 5];
        for flat in 0..numel(&shape) {
            let coord = unravel(flat, &shape);
            assert_eq!(ravel(&coord, &shape), flat);
        }
    }

    #[test]
    fn broadcast_index_row_vector() {
        // [2,3] broadcast of a [3] row vector: column index selects element.
        let src_shape = [3usize];
        let st = strides_for(&src_shape);
        let out_shape = [2usize, 3];
        let got: Vec<usize> = (0..6).map(|f| broadcast_index(f, &out_shape, &src_shape, &st)).collect();
        assert_eq!(got, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn broadcast_index_column_vector() {
        let src_shape = [2usize, 1];
        let st = strides_for(&src_shape);
        let out_shape = [2usize, 3];
        let got: Vec<usize> = (0..6).map(|f| broadcast_index(f, &out_shape, &src_shape, &st)).collect();
        assert_eq!(got, vec![0, 0, 0, 1, 1, 1]);
    }
}
