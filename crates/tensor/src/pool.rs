//! Copy-on-write tensor storage and the thread-local buffer pool.
//!
//! [`Buffer`] is the single storage type behind [`crate::Tensor`]. Tensors
//! hold it behind an `Arc`, so cloning a tensor is two reference-count bumps;
//! `Arc::make_mut` performs the one real copy at the first mutation of
//! shared storage (see `DESIGN.md`, "Memory model").
//!
//! Dropping the last handle to a `Buffer` does not free its allocation:
//! the `Vec` is recycled into a **thread-local** pool keyed by capacity, and
//! the next same-size allocation on that thread reuses it. Each TILES worker
//! thread in the trainer therefore converges to a steady state where op
//! outputs cycle through a fixed set of buffers and the allocator drops out
//! of the hot loop entirely.
//!
//! Set `ORBIT2_DISABLE_POOL=1` to bypass recycling (every request hits the
//! allocator); `scripts/bench_smoke.sh` uses this for before/after numbers.

use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Per-capacity cap on pooled buffers; bounds worst-case retention when one
/// size class churns.
const MAX_BUFS_PER_BUCKET: usize = 16;

/// Per-thread cap on total pooled bytes.
const MAX_POOLED_BYTES: usize = 256 << 20;

fn pool_disabled() -> bool {
    static DISABLED: OnceLock<bool> = OnceLock::new();
    *DISABLED.get_or_init(|| {
        std::env::var("ORBIT2_DISABLE_POOL").map(|v| v == "1" || v == "true").unwrap_or(false)
    })
}

/// Allocation counters for one thread's pool. Drives the allocation-reuse
/// assertions in tests and the bench summaries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocations that missed the pool and hit the system allocator.
    pub fresh_allocs: u64,
    /// Allocations served by recycling a pooled buffer.
    pub reuses: u64,
    /// Full-buffer copies (explicit `Buffer::clone` or a COW fault from
    /// `Arc::make_mut` on shared storage).
    pub copies: u64,
}

#[derive(Default)]
struct Pool {
    /// Free buffers keyed by exact `Vec` capacity.
    buckets: HashMap<usize, Vec<Vec<f32>>>,
    pooled_bytes: usize,
    stats: PoolStats,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

// Process-wide aggregates over every thread's pool, maintained alongside the
// thread-local counters (relaxed: they are monotone telemetry, not a sync
// primitive). The server's `{"cmd":"stats"}` reads these — its allocations
// happen on rayon workers whose thread-local counters it cannot reach.
static GLOBAL_FRESH_ALLOCS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_REUSES: AtomicU64 = AtomicU64::new(0);
static GLOBAL_COPIES: AtomicU64 = AtomicU64::new(0);

/// This thread's allocation counters since the last [`reset_stats`].
pub fn stats() -> PoolStats {
    POOL.try_with(|p| p.borrow().stats).unwrap_or_default()
}

/// Process-wide allocation counters summed over all threads since process
/// start (never reset — consumers diff snapshots).
pub fn global_stats() -> PoolStats {
    PoolStats {
        fresh_allocs: GLOBAL_FRESH_ALLOCS.load(Ordering::Relaxed),
        reuses: GLOBAL_REUSES.load(Ordering::Relaxed),
        copies: GLOBAL_COPIES.load(Ordering::Relaxed),
    }
}

/// Zero this thread's allocation counters.
pub fn reset_stats() {
    let _ = POOL.try_with(|p| p.borrow_mut().stats = PoolStats::default());
}

/// Drop every pooled buffer on this thread (counters are kept).
pub fn clear() {
    let _ = POOL.try_with(|p| {
        let mut p = p.borrow_mut();
        p.buckets.clear();
        p.pooled_bytes = 0;
    });
}

/// A `len`-element vector with unspecified contents: recycled when a pooled
/// buffer of exactly this capacity exists, freshly allocated otherwise.
/// Callers must overwrite every element before reading.
pub fn alloc_uninit(len: usize) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    POOL.try_with(|p| {
        let mut p = p.borrow_mut();
        if !pool_disabled() {
            if let Some(mut v) = p.buckets.get_mut(&len).and_then(Vec::pop) {
                p.pooled_bytes -= len * std::mem::size_of::<f32>();
                p.stats.reuses += 1;
                GLOBAL_REUSES.fetch_add(1, Ordering::Relaxed);
                // Capacity equals `len` (bucket key); only the tail beyond the
                // old length gets written here, the rest keeps stale values.
                v.resize(len, 0.0);
                return v;
            }
        }
        p.stats.fresh_allocs += 1;
        GLOBAL_FRESH_ALLOCS.fetch_add(1, Ordering::Relaxed);
        vec![0.0; len]
    })
    .unwrap_or_else(|_| {
        GLOBAL_FRESH_ALLOCS.fetch_add(1, Ordering::Relaxed);
        vec![0.0; len]
    })
}

/// Like [`alloc_uninit`] but every element is `value`.
pub fn alloc_filled(len: usize, value: f32) -> Vec<f32> {
    let mut v = alloc_uninit(len);
    v.fill(value);
    v
}

/// Like [`alloc_uninit`] but zero-filled.
pub fn alloc_zeroed(len: usize) -> Vec<f32> {
    alloc_filled(len, 0.0)
}

fn recycle(v: Vec<f32>) {
    let cap = v.capacity();
    if cap == 0 || pool_disabled() {
        return;
    }
    let _ = POOL.try_with(|p| {
        let mut p = p.borrow_mut();
        let bytes = cap * std::mem::size_of::<f32>();
        if p.pooled_bytes + bytes > MAX_POOLED_BYTES {
            return;
        }
        let bucket = p.buckets.entry(cap).or_default();
        if bucket.len() < MAX_BUFS_PER_BUCKET {
            bucket.push(v);
            p.pooled_bytes += bytes;
        }
    });
}

/// Tensor storage: a flat `f32` vector that returns to the thread-local pool
/// when dropped. Cloning (the copy-on-write fault path) also draws its
/// allocation from the pool.
pub struct Buffer(Vec<f32>);

impl Buffer {
    /// Wrap an existing vector without copying.
    pub fn from_vec(v: Vec<f32>) -> Self {
        Buffer(v)
    }

    /// A pooled buffer of `len` elements with unspecified contents.
    pub fn uninit(len: usize) -> Self {
        Buffer(alloc_uninit(len))
    }

    /// A pooled zero-filled buffer.
    pub fn zeroed(len: usize) -> Self {
        Buffer(alloc_zeroed(len))
    }

    /// A pooled constant-filled buffer.
    pub fn filled(len: usize, value: f32) -> Self {
        Buffer(alloc_filled(len, value))
    }

    /// Steal the underlying vector (it will not be recycled).
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.0)
    }

    /// Immutable element view.
    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }

    /// Mutable element view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.0
    }
}

impl Clone for Buffer {
    fn clone(&self) -> Self {
        let mut v = alloc_uninit(self.0.len());
        v.copy_from_slice(&self.0);
        let _ = POOL.try_with(|p| p.borrow_mut().stats.copies += 1);
        GLOBAL_COPIES.fetch_add(1, Ordering::Relaxed);
        Buffer(v)
    }
}

impl Drop for Buffer {
    fn drop(&mut self) {
        recycle(std::mem::take(&mut self.0));
    }
}

impl Deref for Buffer {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.0
    }
}

impl DerefMut for Buffer {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.0
    }
}

impl std::fmt::Debug for Buffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Buffer({} elems)", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_then_alloc_reuses() {
        clear();
        reset_stats();
        let b = Buffer::uninit(4096);
        drop(b);
        let before = stats();
        let b2 = Buffer::uninit(4096);
        let after = stats();
        assert_eq!(b2.len(), 4096);
        assert_eq!(after.reuses, before.reuses + 1, "second allocation should hit the pool");
        assert_eq!(after.fresh_allocs, before.fresh_allocs);
    }

    #[test]
    fn mismatched_size_is_fresh() {
        clear();
        reset_stats();
        drop(Buffer::uninit(100));
        let _b = Buffer::uninit(101);
        assert_eq!(stats().reuses, 0);
        assert_eq!(stats().fresh_allocs, 2);
    }

    #[test]
    fn clone_counts_as_copy() {
        clear();
        reset_stats();
        let a = Buffer::filled(32, 1.5);
        let b = a.clone();
        assert_eq!(b.as_slice(), a.as_slice());
        assert_eq!(stats().copies, 1);
    }

    #[test]
    fn global_stats_aggregate_across_events() {
        // Tests run concurrently, so the global counters can only be
        // asserted monotone: each local event must bump its global mirror by
        // at least as much.
        let g0 = global_stats();
        drop(Buffer::uninit(4099));
        let a = Buffer::uninit(4099); // reuse (or fresh if another test stole it)
        let b = a.clone(); // copy
        assert_eq!(b.len(), a.len());
        let g1 = global_stats();
        assert!(g1.fresh_allocs + g1.reuses >= g0.fresh_allocs + g0.reuses + 2);
        assert!(g1.copies > g0.copies);
    }

    #[test]
    fn zeroed_reuse_is_actually_zero() {
        clear();
        drop(Buffer::filled(64, 7.0));
        let z = Buffer::zeroed(64);
        assert!(z.iter().all(|&x| x == 0.0));
    }
}
