//! Attention kernels: a reference quadratic implementation and a
//! Flash-Attention-style cache-blocked kernel with online softmax.
//!
//! The paper uses Flash Attention to map the innermost level of its
//! parallelism hierarchy onto GPU streaming multiprocessors (Sec. III-C/D).
//! On CPU the same algorithm trades a materialized `[S, S]` score matrix for
//! a streaming pass over KV blocks, keeping the working set inside L1/L2 —
//! the `kernels` bench shows the memory-traffic win, and a property test
//! proves numerical equivalence to the naive kernel.

use crate::pool::{self, Buffer};
use crate::simd;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Block sizes for the cache-blocked kernel.
#[derive(Debug, Clone, Copy)]
pub struct AttentionConfig {
    /// Rows of Q processed per block (Br).
    pub block_q: usize,
    /// Rows of K/V streamed per block (Bc).
    pub block_kv: usize,
}

impl Default for AttentionConfig {
    fn default() -> Self {
        Self { block_q: 64, block_kv: 64 }
    }
}

/// Reference scaled-dot-product attention.
///
/// `q, k, v` are `[S, D]` (single head); returns `[S, D]`.
/// Materializes the full `[S, S]` score matrix — O(S^2) memory.
pub fn naive_attention(q: &Tensor, k: &Tensor, v: &Tensor) -> Tensor {
    assert_eq!(q.ndim(), 2);
    assert_eq!(k.ndim(), 2);
    let d = q.shape()[1];
    assert_eq!(k.shape()[1], d);
    assert_eq!(v.shape()[0], k.shape()[0]);
    let scale = 1.0 / (d as f32).sqrt();
    let scores = q.matmul(&k.transpose2()).mul_scalar(scale);
    scores.softmax_last().matmul(v)
}

/// Flash-Attention-style attention: streaming softmax over KV blocks.
///
/// Numerically equivalent to [`naive_attention`] (up to float reassociation)
/// but never materializes the score matrix: memory is O(S·D + Br·Bc).
pub fn flash_attention(q: &Tensor, k: &Tensor, v: &Tensor, cfg: AttentionConfig) -> Tensor {
    assert_eq!(q.ndim(), 2);
    let (sq, d) = (q.shape()[0], q.shape()[1]);
    let sk = k.shape()[0];
    assert_eq!(k.shape()[1], d);
    assert_eq!(v.shape(), &[sk, d]);
    let scale = 1.0 / (d as f32).sqrt();
    let qd = q.data();
    let kd = k.data();
    let vd = v.data();
    let br = cfg.block_q.max(1);
    let bc = cfg.block_kv.max(1);

    let mut out = pool::alloc_zeroed(sq * d);
    out.par_chunks_mut(br * d).enumerate().for_each(|(qb, o_block)| {
        let q0 = qb * br;
        let rows = o_block.len() / d;
        // Per-row running max and normalizer for the online softmax. These
        // `Buffer`s come from (and recycle into) the worker thread's pool, so
        // repeated calls on the persistent rayon workers allocate nothing.
        let mut m = Buffer::filled(rows, f32::NEG_INFINITY);
        let mut l = Buffer::zeroed(rows);
        // Scratch score block, reused across KV blocks.
        let mut s = Buffer::zeroed(rows * bc);
        for k0 in (0..sk).step_by(bc) {
            let kc = bc.min(sk - k0);
            // S = Q_block * K_block^T * scale — one SIMD dot per (q, k) pair.
            for i in 0..rows {
                let q_row = &qd[(q0 + i) * d..(q0 + i + 1) * d];
                for j in 0..kc {
                    let k_row = &kd[(k0 + j) * d..(k0 + j + 1) * d];
                    s[i * bc + j] = simd::dot(q_row, k_row) * scale;
                }
            }
            // Online softmax rescale + accumulate O += P * V_block.
            for i in 0..rows {
                let row_scores = &s[i * bc..i * bc + kc];
                let block_max = simd::max_value(row_scores);
                let new_m = m[i].max(block_max);
                let correction = (m[i] - new_m).exp();
                let o_row = &mut o_block[i * d..(i + 1) * d];
                if correction != 1.0 {
                    simd::scale(o_row, correction);
                }
                let mut block_l = 0.0f32;
                for j in 0..kc {
                    let p = (row_scores[j] - new_m).exp();
                    block_l += p;
                    let v_row = &vd[(k0 + j) * d..(k0 + j + 1) * d];
                    simd::axpy(o_row, p, v_row);
                }
                l[i] = l[i] * correction + block_l;
                m[i] = new_m;
            }
        }
        // Final normalization.
        for i in 0..rows {
            simd::scale(&mut o_block[i * d..(i + 1) * d], 1.0 / l[i]);
        }
    });
    Tensor::from_vec(vec![sq, d], out)
}

/// Multi-head convenience: `q, k, v` are `[H, S, D]`; heads run in parallel.
pub fn multi_head_flash(q: &Tensor, k: &Tensor, v: &Tensor, cfg: AttentionConfig) -> Tensor {
    assert_eq!(q.ndim(), 3);
    let (heads, s, d) = (q.shape()[0], q.shape()[1], q.shape()[2]);
    let outs: Vec<Tensor> = (0..heads)
        .into_par_iter()
        .map(|h| {
            let qh = q.slice_axis(0, h, 1).reshape(vec![s, d]);
            let kh = k.slice_axis(0, h, 1).reshape(vec![k.shape()[1], d]);
            let vh = v.slice_axis(0, h, 1).reshape(vec![v.shape()[1], d]);
            flash_attention(&qh, &kh, &vh, cfg)
        })
        .collect();
    let refs: Vec<&Tensor> = outs.iter().collect();
    Tensor::concat(&refs, 0).into_reshape(vec![heads, s, d])
}

/// FLOP count of one scaled-dot-product attention over `s` tokens of width
/// `d` (forward only): `2*s^2*d` for QK^T plus `2*s^2*d` for PV.
pub fn attention_flops(s: usize, d: usize) -> u64 {
    4 * (s as u64) * (s as u64) * (d as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::randn;

    #[test]
    fn flash_matches_naive() {
        let q = randn(&[37, 16], 1);
        let k = randn(&[37, 16], 2);
        let v = randn(&[37, 16], 3);
        let a = naive_attention(&q, &k, &v);
        let b = flash_attention(&q, &k, &v, AttentionConfig { block_q: 8, block_kv: 8 });
        assert!(a.max_abs_diff(&b) < 1e-4, "diff {}", a.max_abs_diff(&b));
    }

    #[test]
    fn flash_matches_naive_uneven_blocks() {
        // Sequence length not divisible by either block size.
        let q = randn(&[53, 8], 4);
        let k = randn(&[53, 8], 5);
        let v = randn(&[53, 8], 6);
        let a = naive_attention(&q, &k, &v);
        for &(bq, bk) in &[(7usize, 11usize), (64, 64), (1, 1), (53, 5)] {
            let b = flash_attention(&q, &k, &v, AttentionConfig { block_q: bq, block_kv: bk });
            assert!(a.max_abs_diff(&b) < 1e-4, "blocks ({bq},{bk})");
        }
    }

    #[test]
    fn cross_attention_different_kv_length() {
        // Q has 10 tokens, KV has 23 (variable-aggregation cross attention).
        let q = randn(&[10, 8], 7);
        let k = randn(&[23, 8], 8);
        let v = randn(&[23, 8], 9);
        let a = naive_attention(&q, &k, &v);
        let b = flash_attention(&q, &k, &v, AttentionConfig::default());
        assert_eq!(a.shape(), &[10, 8]);
        assert!(a.max_abs_diff(&b) < 1e-4);
    }

    #[test]
    fn attention_rows_are_convex_combinations() {
        // With V rows in [0,1], every output element stays in [0,1].
        let q = randn(&[12, 4], 10);
        let k = randn(&[12, 4], 11);
        let v = crate::random::rand_uniform(&[12, 4], 0.0, 1.0, 12);
        let o = naive_attention(&q, &k, &v);
        assert!(o.min_value() >= 0.0 && o.max_value() <= 1.0);
    }

    #[test]
    fn uniform_scores_average_values() {
        // Q = 0 makes all scores equal, so output = mean of V rows.
        let q = Tensor::zeros(vec![3, 4]);
        let k = randn(&[5, 4], 13);
        let v = randn(&[5, 4], 14);
        let o = naive_attention(&q, &k, &v);
        let vmean = v.mean_axis(0);
        for r in 0..3 {
            let row = o.slice_axis(0, r, 1).reshape(vec![4]);
            row.assert_close(&vmean, 1e-5);
        }
    }

    #[test]
    fn multi_head_matches_per_head() {
        let q = randn(&[2, 9, 8], 20);
        let k = randn(&[2, 9, 8], 21);
        let v = randn(&[2, 9, 8], 22);
        let mh = multi_head_flash(&q, &k, &v, AttentionConfig::default());
        for h in 0..2 {
            let qh = q.slice_axis(0, h, 1).reshape(vec![9, 8]);
            let kh = k.slice_axis(0, h, 1).reshape(vec![9, 8]);
            let vh = v.slice_axis(0, h, 1).reshape(vec![9, 8]);
            let expect = naive_attention(&qh, &kh, &vh);
            mh.slice_axis(0, h, 1).reshape(vec![9, 8]).assert_close(&expect, 1e-4);
        }
    }

    #[test]
    fn flop_count_is_quadratic() {
        assert_eq!(attention_flops(10, 4), 1600);
        assert_eq!(attention_flops(20, 4), 6400); // 2x tokens -> 4x flops
    }
}
