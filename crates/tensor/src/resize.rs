//! Spatial resampling: bilinear / nearest upsampling and area-average
//! downsampling.
//!
//! These are the "interpolation" upsampling used by the baseline
//! upsample-first foundation-model architecture (paper Fig. 1) and the
//! coarsening operator that builds the paired coarse→fine training samples
//! from a synthetic high-resolution field (paper Table I).
//!
//! Tensors are interpreted as `[..., H, W]`: any leading axes are treated as
//! independent channels.

use crate::pool;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Interpolation mode for [`resize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeMode {
    /// Nearest-neighbour sampling.
    Nearest,
    /// Bilinear with half-pixel centers (align_corners = false).
    Bilinear,
}

/// Resize the trailing two axes of `t` to `(out_h, out_w)`.
pub fn resize(t: &Tensor, out_h: usize, out_w: usize, mode: ResizeMode) -> Tensor {
    let nd = t.ndim();
    assert!(nd >= 2, "resize requires at least 2 axes");
    let h = t.shape()[nd - 2];
    let w = t.shape()[nd - 1];
    let lead: usize = t.shape()[..nd - 2].iter().product();
    let src = t.data();
    // Every output pixel is written below, so the buffer can be uninit.
    let mut out = pool::alloc_uninit(lead * out_h * out_w);
    let sy = h as f32 / out_h as f32;
    let sx = w as f32 / out_w as f32;
    out.par_chunks_mut(out_h * out_w).enumerate().for_each(|(l, dst)| {
        let plane = &src[l * h * w..(l + 1) * h * w];
        match mode {
            ResizeMode::Nearest => {
                for oy in 0..out_h {
                    let iy = (((oy as f32 + 0.5) * sy) as usize).min(h - 1);
                    for ox in 0..out_w {
                        let ix = (((ox as f32 + 0.5) * sx) as usize).min(w - 1);
                        dst[oy * out_w + ox] = plane[iy * w + ix];
                    }
                }
            }
            ResizeMode::Bilinear => {
                for oy in 0..out_h {
                    let fy = ((oy as f32 + 0.5) * sy - 0.5).clamp(0.0, (h - 1) as f32);
                    let y0 = fy.floor() as usize;
                    let y1 = (y0 + 1).min(h - 1);
                    let wy = fy - y0 as f32;
                    for ox in 0..out_w {
                        let fx = ((ox as f32 + 0.5) * sx - 0.5).clamp(0.0, (w - 1) as f32);
                        let x0 = fx.floor() as usize;
                        let x1 = (x0 + 1).min(w - 1);
                        let wx = fx - x0 as f32;
                        let v00 = plane[y0 * w + x0];
                        let v01 = plane[y0 * w + x1];
                        let v10 = plane[y1 * w + x0];
                        let v11 = plane[y1 * w + x1];
                        dst[oy * out_w + ox] = v00 * (1.0 - wy) * (1.0 - wx)
                            + v01 * (1.0 - wy) * wx
                            + v10 * wy * (1.0 - wx)
                            + v11 * wy * wx;
                    }
                }
            }
        }
    });
    let mut shape = t.shape().to_vec();
    shape[nd - 2] = out_h;
    shape[nd - 1] = out_w;
    Tensor::from_vec(shape, out)
}

/// Area-average downsample by integer `factor` along the trailing two axes.
///
/// This is the physically-correct coarsening operator for conservative
/// quantities (e.g. precipitation flux): the coarse cell is the mean of the
/// fine cells it covers.
pub fn downsample_area(t: &Tensor, factor: usize) -> Tensor {
    assert!(factor >= 1);
    let nd = t.ndim();
    assert!(nd >= 2);
    let h = t.shape()[nd - 2];
    let w = t.shape()[nd - 1];
    assert_eq!(h % factor, 0, "height {h} not divisible by {factor}");
    assert_eq!(w % factor, 0, "width {w} not divisible by {factor}");
    let (oh, ow) = (h / factor, w / factor);
    let lead: usize = t.shape()[..nd - 2].iter().product();
    let src = t.data();
    let inv = 1.0 / (factor * factor) as f32;
    let mut out = pool::alloc_uninit(lead * oh * ow);
    out.par_chunks_mut(oh * ow).enumerate().for_each(|(l, dst)| {
        let plane = &src[l * h * w..(l + 1) * h * w];
        for oy in 0..oh {
            for ox in 0..ow {
                let mut s = 0.0f32;
                for dy in 0..factor {
                    let row = (oy * factor + dy) * w + ox * factor;
                    for dx in 0..factor {
                        s += plane[row + dx];
                    }
                }
                dst[oy * ow + ox] = s * inv;
            }
        }
    });
    let mut shape = t.shape().to_vec();
    shape[nd - 2] = oh;
    shape[nd - 1] = ow;
    Tensor::from_vec(shape, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_upsample_2x_repeats() {
        let t = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]);
        let u = resize(&t, 4, 4, ResizeMode::Nearest);
        assert_eq!(u.at(&[0, 0]), 1.0);
        assert_eq!(u.at(&[0, 1]), 1.0);
        assert_eq!(u.at(&[3, 3]), 4.0);
        assert_eq!(u.at(&[2, 0]), 3.0);
    }

    #[test]
    fn bilinear_constant_field_is_preserved() {
        let t = Tensor::full(vec![3, 5], 2.5);
        let u = resize(&t, 9, 10, ResizeMode::Bilinear);
        for &x in u.data() {
            assert!((x - 2.5).abs() < 1e-6);
        }
    }

    #[test]
    fn bilinear_preserves_linear_ramp_interior() {
        // A linear ramp should be exactly reproduced away from the border.
        let w = 8usize;
        let t = Tensor::from_vec(vec![1, w], (0..w).map(|i| i as f32).collect());
        let u = resize(&t, 1, 2 * w, ResizeMode::Bilinear);
        // interior sample at output x=5 maps to input 2.25
        let expect = (5.0f32 + 0.5) * 0.5 - 0.5;
        assert!((u.at(&[0, 5]) - expect).abs() < 1e-5);
    }

    #[test]
    fn area_downsample_averages_blocks() {
        let t = Tensor::from_vec(vec![2, 4], vec![1., 3., 5., 7., 2., 4., 6., 8.]);
        let d = downsample_area(&t, 2);
        assert_eq!(d.shape(), &[1, 2]);
        assert_eq!(d.data(), &[2.5, 6.5]);
    }

    #[test]
    fn area_downsample_conserves_mean() {
        use crate::random::randn;
        let t = randn(&[3, 16, 16], 11);
        let d = downsample_area(&t, 4);
        assert!((t.mean() - d.mean()).abs() < 1e-5);
    }

    #[test]
    fn resize_handles_leading_axes() {
        let t = Tensor::arange(2 * 2 * 2).reshape(vec![2, 2, 2]);
        let u = resize(&t, 4, 4, ResizeMode::Nearest);
        assert_eq!(u.shape(), &[2, 4, 4]);
        // Channel 1 upper-left block equals channel 1 source (0,0) = 4.
        assert_eq!(u.at(&[1, 0, 0]), 4.0);
    }

    #[test]
    fn downsample_then_upsample_is_smooth_approximation() {
        use crate::random::randn;
        let t = randn(&[1, 8, 8], 3);
        let d = downsample_area(&t, 2);
        let u = resize(&d, 8, 8, ResizeMode::Bilinear);
        assert_eq!(u.shape(), t.shape());
        // Means should match closely (both operators are averaging).
        assert!((u.mean() - t.mean()).abs() < 0.2);
    }
}
