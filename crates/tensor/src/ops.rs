//! Elementwise arithmetic with broadcasting, reductions, axis manipulation,
//! padding and gather/scatter.
//!
//! Heavy elementwise work parallelizes over chunks with rayon once the tensor
//! is large enough to amortize the fork/join cost.

use crate::pool;
use crate::shape::{broadcast_index, broadcast_shapes, numel, strides_for, unravel};
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Below this element count, elementwise kernels stay sequential.
const PAR_THRESHOLD: usize = 1 << 15;

fn binary_broadcast(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync + Send) -> Tensor {
    if a.shape() == b.shape() {
        // Fast path: aligned linear scan into a pooled buffer, reusing the
        // left operand's shape handle (no shape reallocation).
        let n = a.len();
        let mut out = pool::alloc_uninit(n);
        if n >= PAR_THRESHOLD {
            out.par_iter_mut()
                .zip(a.data().par_iter().zip(b.data().par_iter()))
                .for_each(|(o, (&x, &y))| *o = f(x, y));
        } else {
            for ((o, &x), &y) in out.iter_mut().zip(a.data()).zip(b.data()) {
                *o = f(x, y);
            }
        }
        return Tensor::from_shape_handle(a.shape_handle(), out);
    }
    let out_shape = broadcast_shapes(a.shape(), b.shape())
        .unwrap_or_else(|| panic!("cannot broadcast {:?} with {:?}", a.shape(), b.shape()));
    let n = numel(&out_shape);
    let sa = strides_for(a.shape());
    let sb = strides_for(b.shape());
    let ad = a.data();
    let bd = b.data();
    let kernel = |flat: usize| {
        let ia = broadcast_index(flat, &out_shape, a.shape(), &sa);
        let ib = broadcast_index(flat, &out_shape, b.shape(), &sb);
        f(ad[ia], bd[ib])
    };
    let data: Vec<f32> = if n >= PAR_THRESHOLD {
        (0..n).into_par_iter().map(kernel).collect()
    } else {
        (0..n).map(kernel).collect()
    };
    Tensor::from_vec(out_shape, data)
}

/// In-place counterpart of [`binary_broadcast`]: `a = f(a, b)` where `b`
/// must broadcast to `a`'s shape (the output shape cannot grow in place).
///
/// Safe even when `a` and `b` share storage: `data_mut` COW-faults `a` onto
/// a private buffer first, leaving `b`'s view of the original intact.
fn binary_broadcast_assign(a: &mut Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync + Send) {
    if a.shape() == b.shape() {
        let n = a.len();
        let dst = a.data_mut();
        let bd = b.data();
        if n >= PAR_THRESHOLD {
            dst.par_iter_mut().zip(bd.par_iter()).for_each(|(x, &y)| *x = f(*x, y));
        } else {
            for (x, &y) in dst.iter_mut().zip(bd.iter()) {
                *x = f(*x, y);
            }
        }
        return;
    }
    let out_shape = broadcast_shapes(a.shape(), b.shape())
        .unwrap_or_else(|| panic!("cannot broadcast {:?} with {:?}", a.shape(), b.shape()));
    assert_eq!(
        out_shape,
        a.shape(),
        "in-place op cannot grow {:?} to broadcast result {:?}",
        a.shape(),
        out_shape
    );
    let a_shape = a.shape().to_vec();
    let b_shape = b.shape().to_vec();
    let sb = strides_for(&b_shape);
    let dst = a.data_mut();
    let bd = b.data();
    let kernel = |flat: usize, x: &mut f32| {
        let ib = broadcast_index(flat, &a_shape, &b_shape, &sb);
        *x = f(*x, bd[ib]);
    };
    if dst.len() >= PAR_THRESHOLD {
        dst.par_iter_mut().enumerate().for_each(|(i, x)| kernel(i, x));
    } else {
        for (i, x) in dst.iter_mut().enumerate() {
            kernel(i, x);
        }
    }
}

impl Tensor {
    /// Elementwise addition with broadcasting.
    pub fn add(&self, other: &Tensor) -> Tensor {
        binary_broadcast(self, other, |a, b| a + b)
    }

    /// Elementwise subtraction with broadcasting.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        binary_broadcast(self, other, |a, b| a - b)
    }

    /// Elementwise multiplication with broadcasting.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        binary_broadcast(self, other, |a, b| a * b)
    }

    /// Elementwise division with broadcasting.
    pub fn div(&self, other: &Tensor) -> Tensor {
        binary_broadcast(self, other, |a, b| a / b)
    }

    /// Elementwise maximum with broadcasting.
    pub fn maximum(&self, other: &Tensor) -> Tensor {
        binary_broadcast(self, other, f32::max)
    }

    /// Elementwise minimum with broadcasting.
    pub fn minimum(&self, other: &Tensor) -> Tensor {
        binary_broadcast(self, other, f32::min)
    }

    /// In-place addition: `self += other` (other broadcasts to `self`).
    /// COW: copies `self`'s storage first only when shared.
    pub fn add_(&mut self, other: &Tensor) {
        binary_broadcast_assign(self, other, |a, b| a + b);
    }

    /// In-place subtraction: `self -= other`.
    pub fn sub_(&mut self, other: &Tensor) {
        binary_broadcast_assign(self, other, |a, b| a - b);
    }

    /// In-place multiplication: `self *= other`.
    pub fn mul_(&mut self, other: &Tensor) {
        binary_broadcast_assign(self, other, |a, b| a * b);
    }

    /// Fused in-place multiply-add: `self += alpha * x`. The workhorse of
    /// gradient accumulation — one pass, no temporaries.
    pub fn axpy(&mut self, alpha: f32, x: &Tensor) {
        binary_broadcast_assign(self, x, move |a, b| alpha.mul_add(b, a));
    }

    /// Add a scalar.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// Multiply by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Negate.
    pub fn neg(&self) -> Tensor {
        self.map(|x| -x)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Elementwise natural log.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Elementwise power.
    pub fn powf(&self, p: f32) -> Tensor {
        self.map(move |x| x.powf(p))
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    /// Gaussian error linear unit (tanh approximation, as used by ViTs).
    pub fn gelu(&self) -> Tensor {
        self.map(gelu_scalar)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        self.map(|x| 1.0 / (1.0 + (-x).exp()))
    }

    /// Clamp every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(move |x| x.clamp(lo, hi))
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        if self.len() >= PAR_THRESHOLD {
            self.data().par_iter().map(|&x| x as f64).sum::<f64>() as f32
        } else {
            self.data().iter().map(|&x| x as f64).sum::<f64>() as f32
        }
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            return f32::NAN;
        }
        self.sum() / self.len() as f32
    }

    /// Maximum element.
    pub fn max_value(&self) -> f32 {
        self.data().iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min_value(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Sum along `axis`, removing it.
    pub fn sum_axis(&self, axis: usize) -> Tensor {
        self.reduce_axis(axis, 0.0, |acc, x| acc + x)
    }

    /// Mean along `axis`, removing it.
    pub fn mean_axis(&self, axis: usize) -> Tensor {
        let n = self.shape()[axis] as f32;
        self.sum_axis(axis).mul_scalar(1.0 / n)
    }

    /// Max along `axis`, removing it.
    pub fn max_axis(&self, axis: usize) -> Tensor {
        self.reduce_axis(axis, f32::NEG_INFINITY, f32::max)
    }

    fn reduce_axis(&self, axis: usize, init: f32, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        assert!(axis < self.ndim(), "axis {axis} out of range for {:?}", self.shape());
        let shape = self.shape();
        let outer: usize = shape[..axis].iter().product();
        let mid = shape[axis];
        let inner: usize = shape[axis + 1..].iter().product();
        let src = self.data();
        let mut out = pool::alloc_filled(outer * inner, init);
        for o in 0..outer {
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                let row = &src[base..base + inner];
                let dst = &mut out[o * inner..(o + 1) * inner];
                for (d, &x) in dst.iter_mut().zip(row) {
                    *d = f(*d, x);
                }
            }
        }
        let mut new_shape: Vec<usize> = shape.to_vec();
        new_shape.remove(axis);
        Tensor::from_vec(new_shape, out)
    }

    /// Softmax along the last axis, numerically stabilized.
    ///
    /// Delegates to the fused kernel ([`crate::fused::softmax_rows`]): max
    /// scan and normalize run on SIMD lanes, in place on the output buffer.
    pub fn softmax_last(&self) -> Tensor {
        let inner = *self.shape().last().expect("softmax on 0-d tensor");
        let mut out = pool::alloc_uninit(self.len());
        out.copy_from_slice(self.data());
        crate::fused::softmax_rows(&mut out, inner);
        Tensor::from_shape_handle(self.shape_handle(), out)
    }

    /// Transpose a 2-d tensor.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "transpose2 requires 2-d, got {:?}", self.shape());
        let (r, c) = (self.shape()[0], self.shape()[1]);
        let src = self.data();
        let mut out = pool::alloc_uninit(r * c);
        // Blocked transpose: each 32x32 tile stays in L1 while being
        // rotated, and the inner loop walks the *output* row so stores are
        // unit-stride (the strided access lands on the read side, which
        // caches better than scattered writes).
        const B: usize = 32;
        for i0 in (0..r).step_by(B) {
            let imax = (i0 + B).min(r);
            for j0 in (0..c).step_by(B) {
                for j in j0..(j0 + B).min(c) {
                    let dst = &mut out[j * r + i0..j * r + imax];
                    for (d, i) in dst.iter_mut().zip(i0..imax) {
                        *d = src[i * c + j];
                    }
                }
            }
        }
        Tensor::from_vec(vec![c, r], out)
    }

    /// Materialized axis permutation (generalized transpose).
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        assert_eq!(perm.len(), self.ndim(), "permute arity mismatch");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let old_shape = self.shape();
        let new_shape: Vec<usize> = perm.iter().map(|&p| old_shape[p]).collect();
        let old_strides = strides_for(old_shape);
        let n = self.len();
        let src = self.data();
        let mut out = pool::alloc_uninit(n);
        // For each output flat index, compute the source flat index.
        let new_strides_in_old: Vec<usize> = perm.iter().map(|&p| old_strides[p]).collect();
        let kernel = |flat: usize, out_elem: &mut f32| {
            let coord = unravel(flat, &new_shape);
            let mut si = 0usize;
            for (c, s) in coord.iter().zip(&new_strides_in_old) {
                si += c * s;
            }
            *out_elem = src[si];
        };
        if n >= PAR_THRESHOLD {
            out.par_iter_mut().enumerate().for_each(|(i, o)| kernel(i, o));
        } else {
            for (i, o) in out.iter_mut().enumerate() {
                kernel(i, o);
            }
        }
        Tensor::from_vec(new_shape, out)
    }

    /// Concatenate along `axis`. All other axes must match.
    pub fn concat(tensors: &[&Tensor], axis: usize) -> Tensor {
        assert!(!tensors.is_empty(), "concat of nothing");
        let first = tensors[0].shape();
        let ndim = first.len();
        assert!(axis < ndim);
        for t in tensors {
            assert_eq!(t.ndim(), ndim);
            for (i, (&a, &b)) in t.shape().iter().zip(first.iter()).enumerate() {
                assert!(i == axis || a == b, "concat shape mismatch on axis {i}");
            }
        }
        let mut out_shape = first.to_vec();
        out_shape[axis] = tensors.iter().map(|t| t.shape()[axis]).sum();
        let outer: usize = first[..axis].iter().product();
        let inner: usize = first[axis + 1..].iter().product();
        let mut out = Vec::with_capacity(numel(&out_shape));
        for o in 0..outer {
            for t in tensors {
                let mid = t.shape()[axis];
                let base = o * mid * inner;
                out.extend_from_slice(&t.data()[base..base + mid * inner]);
            }
        }
        Tensor::from_vec(out_shape, out)
    }

    /// Slice `axis` to `[start, start+len)`.
    pub fn slice_axis(&self, axis: usize, start: usize, len: usize) -> Tensor {
        let shape = self.shape();
        assert!(axis < shape.len());
        assert!(start + len <= shape[axis], "slice out of bounds");
        let outer: usize = shape[..axis].iter().product();
        let mid = shape[axis];
        let inner: usize = shape[axis + 1..].iter().product();
        let mut out = Vec::with_capacity(outer * len * inner);
        let src = self.data();
        for o in 0..outer {
            let base = (o * mid + start) * inner;
            out.extend_from_slice(&src[base..base + len * inner]);
        }
        let mut new_shape = shape.to_vec();
        new_shape[axis] = len;
        Tensor::from_vec(new_shape, out)
    }

    /// Gather rows of a 2-d tensor: `out[i] = self[indices[i]]`.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        assert_eq!(self.ndim(), 2, "gather_rows requires 2-d");
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        let src = self.data();
        let mut out = Vec::with_capacity(indices.len() * cols);
        for &i in indices {
            assert!(i < rows, "gather index {i} out of bounds ({rows} rows)");
            out.extend_from_slice(&src[i * cols..(i + 1) * cols]);
        }
        Tensor::from_vec(vec![indices.len(), cols], out)
    }

    /// Scatter-add rows into a 2-d tensor of `rows` rows:
    /// `out[indices[i]] += self[i]`.
    pub fn scatter_add_rows(&self, indices: &[usize], rows: usize) -> Tensor {
        assert_eq!(self.ndim(), 2, "scatter_add_rows requires 2-d");
        assert_eq!(self.shape()[0], indices.len());
        let cols = self.shape()[1];
        let mut out = pool::alloc_zeroed(rows * cols);
        let src = self.data();
        for (r, &i) in indices.iter().enumerate() {
            assert!(i < rows);
            let dst = &mut out[i * cols..(i + 1) * cols];
            let s = &src[r * cols..(r + 1) * cols];
            for (d, &x) in dst.iter_mut().zip(s) {
                *d += x;
            }
        }
        Tensor::from_vec(vec![rows, cols], out)
    }

    /// Pool rows of a 2-d tensor into groups by averaging: `out[i] = mean of
    /// self[j] for j in groups[i]`. This is the quad-tree token pooling of
    /// Reslim's adaptive spatial compression; the autograd layer wraps it
    /// with the uniform-scatter adjoint.
    pub fn pool_rows(&self, groups: &[Vec<usize>]) -> Tensor {
        assert_eq!(self.ndim(), 2, "pool_rows requires 2-d [tokens, dim]");
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        let mut out = pool::alloc_zeroed(groups.len() * cols);
        let src = self.data();
        for (gi, group) in groups.iter().enumerate() {
            assert!(!group.is_empty(), "empty pooling group {gi}");
            let inv = 1.0 / group.len() as f32;
            let dst = &mut out[gi * cols..(gi + 1) * cols];
            for &r in group {
                assert!(r < rows, "pool index {r} out of bounds");
                for (d, &x) in dst.iter_mut().zip(&src[r * cols..(r + 1) * cols]) {
                    *d += x * inv;
                }
            }
        }
        Tensor::from_vec(vec![groups.len(), cols], out)
    }

    /// Unpool grouped rows back to the original token set: `out[j] = self[i]`
    /// for every `j in groups[i]` (the inverse scatter of [`Tensor::pool_rows`]).
    pub fn unpool_rows(&self, groups: &[Vec<usize>], total_rows: usize) -> Tensor {
        assert_eq!(self.ndim(), 2);
        assert_eq!(self.shape()[0], groups.len());
        let cols = self.shape()[1];
        let mut out = pool::alloc_zeroed(total_rows * cols);
        let src = self.data();
        for (gi, group) in groups.iter().enumerate() {
            let s = &src[gi * cols..(gi + 1) * cols];
            for &r in group {
                assert!(r < total_rows);
                out[r * cols..(r + 1) * cols].copy_from_slice(s);
            }
        }
        Tensor::from_vec(vec![total_rows, cols], out)
    }

    /// Stack 2-d tensors along the row (batch) axis: `[n_i, D]` parts with a
    /// common column count become one `[sum(n_i), D]` matrix. This is the
    /// batch-stacking primitive of cross-request microbatching: row-wise
    /// kernels (GEMM against a shared weight, layer norm, softmax, GELU)
    /// compute each output row from its input row alone, so running them
    /// once over the stack is bit-identical to running them per part.
    pub fn stack_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "stack_rows of nothing");
        for p in parts {
            assert_eq!(p.ndim(), 2, "stack_rows requires 2-d parts");
        }
        Tensor::concat(parts, 0)
    }

    /// Inverse of [`Tensor::stack_rows`]: split a `[sum(rows), D]` matrix
    /// back into parts of `rows[i]` rows each.
    pub fn split_rows(&self, rows: &[usize]) -> Vec<Tensor> {
        assert_eq!(self.ndim(), 2, "split_rows requires 2-d");
        let total: usize = rows.iter().sum();
        assert_eq!(self.shape()[0], total, "split_rows row count mismatch");
        let mut out = Vec::with_capacity(rows.len());
        let mut start = 0;
        for &r in rows {
            out.push(self.slice_axis(0, start, r));
            start += r;
        }
        out
    }

    /// Zero-pad the last two axes (interpreted as H, W) by the given margins.
    pub fn pad2d(&self, top: usize, bottom: usize, left: usize, right: usize) -> Tensor {
        let nd = self.ndim();
        assert!(nd >= 2, "pad2d requires at least 2 axes");
        let h = self.shape()[nd - 2];
        let w = self.shape()[nd - 1];
        let lead: usize = self.shape()[..nd - 2].iter().product();
        let nh = h + top + bottom;
        let nw = w + left + right;
        let mut out = pool::alloc_zeroed(lead * nh * nw);
        let src = self.data();
        for l in 0..lead {
            for i in 0..h {
                let sbase = (l * h + i) * w;
                let dbase = (l * nh + i + top) * nw + left;
                out[dbase..dbase + w].copy_from_slice(&src[sbase..sbase + w]);
            }
        }
        let mut shape = self.shape().to_vec();
        shape[nd - 2] = nh;
        shape[nd - 1] = nw;
        Tensor::from_vec(shape, out)
    }

    /// Crop the last two axes to `[top, top+h) x [left, left+w)`.
    pub fn crop2d(&self, top: usize, left: usize, h: usize, w: usize) -> Tensor {
        let nd = self.ndim();
        assert!(nd >= 2);
        let sh = self.shape()[nd - 2];
        let sw = self.shape()[nd - 1];
        assert!(top + h <= sh && left + w <= sw, "crop out of bounds");
        let lead: usize = self.shape()[..nd - 2].iter().product();
        let mut out = Vec::with_capacity(lead * h * w);
        let src = self.data();
        for l in 0..lead {
            for i in 0..h {
                let base = (l * sh + top + i) * sw + left;
                out.extend_from_slice(&src[base..base + w]);
            }
        }
        let mut shape = self.shape().to_vec();
        shape[nd - 2] = h;
        shape[nd - 1] = w;
        Tensor::from_vec(shape, out)
    }
}

/// GELU activation, tanh approximation.
pub fn gelu_scalar(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044715 * x * x * x)).tanh())
}

/// Derivative of the tanh-approximated GELU, used by the autograd crate.
pub fn gelu_grad_scalar(x: f32) -> f32 {
    const S: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = S * (x + 0.044715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * S * (1.0 + 3.0 * 0.044715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_same_shape() {
        let a = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec(vec![2, 2], vec![10., 20., 30., 40.]);
        assert_eq!(a.add(&b).data(), &[11., 22., 33., 44.]);
    }

    #[test]
    fn broadcast_row_and_col() {
        let a = Tensor::from_vec(vec![2, 3], vec![0., 1., 2., 3., 4., 5.]);
        let row = Tensor::from_vec(vec![3], vec![10., 20., 30.]);
        assert_eq!(a.add(&row).data(), &[10., 21., 32., 13., 24., 35.]);
        let col = Tensor::from_vec(vec![2, 1], vec![100., 200.]);
        assert_eq!(a.add(&col).data(), &[100., 101., 102., 203., 204., 205.]);
    }

    #[test]
    #[should_panic(expected = "broadcast")]
    fn incompatible_broadcast_panics() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![4]);
        let _ = a.add(&b);
    }

    #[test]
    fn in_place_ops_match_allocating_ones() {
        let a = Tensor::from_vec(vec![2, 3], vec![0., 1., 2., 3., 4., 5.]);
        let row = Tensor::from_vec(vec![3], vec![10., 20., 30.]);

        let mut b = a.clone();
        b.add_(&row);
        b.assert_close(&a.add(&row), 0.0);

        let mut c = a.clone();
        c.sub_(&row);
        c.assert_close(&a.sub(&row), 0.0);

        let mut d = a.clone();
        d.mul_(&row);
        d.assert_close(&a.mul(&row), 0.0);

        let mut e = a.clone();
        e.axpy(2.5, &row);
        e.assert_close(&a.add(&row.mul_scalar(2.5)), 1e-5);

        // The original operand is never disturbed (COW).
        assert_eq!(a.data(), &[0., 1., 2., 3., 4., 5.]);
    }

    #[test]
    fn add_assign_self_aliasing_is_safe() {
        let a = Tensor::from_vec(vec![3], vec![1., 2., 3.]);
        let mut b = a.clone();
        assert!(a.shares_storage(&b));
        b.add_(&a);
        assert_eq!(b.data(), &[2., 4., 6.]);
        assert_eq!(a.data(), &[1., 2., 3.]);
    }

    #[test]
    #[should_panic(expected = "cannot grow")]
    fn in_place_broadcast_cannot_grow() {
        let mut row = Tensor::from_vec(vec![3], vec![1., 2., 3.]);
        let mat = Tensor::zeros(vec![2, 3]);
        row.add_(&mat);
    }

    #[test]
    fn elementwise_result_shares_shape_handle() {
        let a = Tensor::zeros(vec![4, 5]);
        let b = Tensor::ones(vec![4, 5]);
        let c = a.add(&b);
        assert!(std::sync::Arc::ptr_eq(&a.shape_handle(), &c.shape_handle()));
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.sum(), 21.0);
        assert!((a.mean() - 3.5).abs() < 1e-6);
        assert_eq!(a.sum_axis(0).data(), &[5., 7., 9.]);
        assert_eq!(a.sum_axis(1).data(), &[6., 15.]);
        assert_eq!(a.max_axis(1).data(), &[3., 6.]);
        assert_eq!(a.max_value(), 6.0);
        assert_eq!(a.min_value(), 1.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Tensor::from_vec(vec![2, 4], vec![1., 2., 3., 4., -1., 0., 1., 2.]);
        let s = a.softmax_last();
        for r in 0..2 {
            let sum: f32 = s.data()[r * 4..(r + 1) * 4].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Monotone within a row.
        assert!(s.at(&[0, 3]) > s.at(&[0, 0]));
    }

    #[test]
    fn softmax_handles_large_values() {
        let a = Tensor::from_vec(vec![1, 3], vec![1000., 1000., 1000.]);
        let s = a.softmax_last();
        for &x in s.data() {
            assert!((x - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::arange(12).reshape(vec![3, 4]);
        let t = a.transpose2();
        assert_eq!(t.shape(), &[4, 3]);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
        a.assert_close(&t.transpose2(), 0.0);
    }

    #[test]
    fn permute_matches_transpose() {
        let a = Tensor::arange(24).reshape(vec![2, 3, 4]);
        let p = a.permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        assert_eq!(p.at(&[1, 0, 2]), a.at(&[0, 2, 1]));
        // permute with identity is a no-op
        a.assert_close(&a.permute(&[0, 1, 2]), 0.0);
    }

    #[test]
    fn concat_and_slice_inverse() {
        let a = Tensor::arange(6).reshape(vec![2, 3]);
        let b = Tensor::arange(6).reshape(vec![2, 3]).mul_scalar(10.0);
        let c = Tensor::concat(&[&a, &b], 1);
        assert_eq!(c.shape(), &[2, 6]);
        c.slice_axis(1, 0, 3).assert_close(&a, 0.0);
        c.slice_axis(1, 3, 3).assert_close(&b, 0.0);
        let d = Tensor::concat(&[&a, &b], 0);
        assert_eq!(d.shape(), &[4, 3]);
        d.slice_axis(0, 2, 2).assert_close(&b, 0.0);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let a = Tensor::arange(12).reshape(vec![4, 3]);
        let g = a.gather_rows(&[2, 0]);
        assert_eq!(g.data(), &[6., 7., 8., 0., 1., 2.]);
        let s = g.scatter_add_rows(&[2, 0], 4);
        assert_eq!(s.at(&[2, 0]), 6.0);
        assert_eq!(s.at(&[0, 2]), 2.0);
        assert_eq!(s.at(&[1, 1]), 0.0);
    }

    #[test]
    fn pad_crop_roundtrip() {
        let a = Tensor::arange(6).reshape(vec![1, 2, 3]);
        let p = a.pad2d(1, 2, 3, 1);
        assert_eq!(p.shape(), &[1, 5, 7]);
        assert_eq!(p.at(&[0, 1, 3]), 0.0); // original (0,0)
        p.crop2d(1, 3, 2, 3).assert_close(&a, 0.0);
    }

    #[test]
    fn gelu_matches_reference_points() {
        // Reference values from the tanh-approximated GELU.
        assert!((gelu_scalar(0.0)).abs() < 1e-7);
        assert!((gelu_scalar(1.0) - 0.841192).abs() < 1e-4);
        assert!((gelu_scalar(-1.0) + 0.158808).abs() < 1e-4);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let h = 1e-3;
            let fd = (gelu_scalar(x + h) - gelu_scalar(x - h)) / (2.0 * h);
            assert!((gelu_grad_scalar(x) - fd).abs() < 1e-3, "x={x}");
        }
    }
}
