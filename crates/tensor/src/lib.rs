//! # orbit2-tensor
//!
//! A from-scratch, CPU-only tensor library used as the numerical substrate of
//! the ORBIT-2 reproduction. The paper's implementation sits on PyTorch/ROCm;
//! this crate provides the equivalent primitives in safe Rust:
//!
//! * dense row-major [`Tensor`]s of `f32` with NumPy-style broadcasting,
//! * rayon-parallel blocked [`matmul`](Tensor::matmul) and batched matmul,
//! * `conv2d` / transposed convolution via im2col (the residual path of
//!   Reslim is convolutional),
//! * bilinear / nearest resize and area-average downsampling (the
//!   upsample-first baseline ViT and the synthetic data pipeline),
//! * naive and Flash-Attention-style cache-blocked attention kernels
//!   ([`attention`]),
//! * BF16 emulation ([`bf16`]) used by the mixed-precision trainer.
//!
//! Design follows the HPC-parallel guides for this repo: flat, contiguous
//! row-major storage behind copy-on-write `Arc` handles ([`pool::Buffer`]),
//! a thread-local buffer pool so hot loops allocate nothing in steady
//! state, `rayon` parallel iterators over row blocks, and deterministic
//! seeded randomness. See `DESIGN.md` ("Memory model") for the ownership
//! rules and §"Compute model" for the packed GEMM / fused-kernel layer.
//!
//! The kernel layer ([`simd`], [`matmul`], [`fused`]) is written entirely in
//! safe Rust — explicit lane-array vectors instead of intrinsics — so the
//! crate forbids `unsafe` outright.

#![forbid(unsafe_code)]

pub mod attention;
pub mod bf16;
pub mod bf16_act;
pub mod conv;
pub mod fused;
pub mod matmul;
pub mod ops;
pub mod pool;
pub mod qgemm;
pub mod random;
pub mod resize;
pub mod shape;
pub mod simd;
pub mod tensor;

pub use attention::{flash_attention, naive_attention, AttentionConfig};
pub use bf16::{bf16_round, bf16_to_f32, f32_to_bf16, Bf16Mode};
pub use bf16_act::Bf16Tensor;
pub use fused::{matmul_bias_act, Activation, ActivationPrecision, PackedWeight, WeightPrecision};
pub use qgemm::{PackedWeightBf16, PackedWeightI8};
pub use matmul::MatLayout;
pub use pool::{Buffer, PoolStats};
pub use shape::{broadcast_shapes, strides_for, Shape, ShapeHandle};
pub use tensor::Tensor;

/// Convenience prelude for downstream crates.
pub mod prelude {
    pub use crate::attention::{flash_attention, naive_attention};
    pub use crate::tensor::Tensor;
}
