//! Reduced-precision resident-weight GEMM: bf16 and per-channel int8 packs.
//!
//! The f32 packed GEMM ([`crate::matmul`]) re-reads a full-width weight pack
//! on every forward. For inference sessions the weights never change, so
//! this module keeps them resident in *narrow* storage — [`PackedWeightBf16`]
//! as `u16` BF16 words (half the bytes), [`PackedWeightI8`] as symmetric
//! per-output-channel `i8` codes with one `f32` scale per column (a quarter
//! of the bytes) — and widens them to f32 on the fly. Accumulation is always
//! f32; the *activation* operands are generic over [`ActElem`], so the A
//! stream and C store can each be either f32 or BF16 words (`u16`), widened
//! and narrowed at the register boundary without ever materializing an f32
//! copy of the activation matrix (the `gemm_*_act_fused` entries).
//!
//! ## Kernel shape
//!
//! Unlike the 6×16 f32 microkernel (sized for AVX2 `ymm`), the quantized
//! kernel blocks 6 rows × `W`×16 columns with `W ∈ {1, 2, 4}` — up to 24
//! [`F32x16`] accumulators held in AVX-512 `zmm` registers. Each weight
//! strip (`nr = 16·W` columns, k-major) is widened **once** into a pooled
//! f32 scratch and then re-read by every row panel, so the widen cost is
//! amortized `m / 6` times while the resident pack itself streams at its
//! narrow width. The activation matrix is read in place (row-major, no
//! `pack_a` pass), and the store is an overwrite (no C pre-zeroing or
//! read-add) with the scale/bias/activation epilogue applied at store time.
//!
//! ## Determinism and the scalar oracle
//!
//! Per output element the accumulation is a single k-ordered FMA chain in
//! both the vector kernel and the scalar oracle ([`gemm_bf16_ref`],
//! [`gemm_i8_ref`]) — the same multiplies in the same order through
//! [`simd::fma`] — so the two paths are **bit-identical**, not merely close.
//! Under `ORBIT2_DISABLE_SIMD=1` the public entry points dispatch to the
//! oracle, which therefore serves as both the escape hatch and the property
//! -test reference.

use crate::bf16::{bf16_to_f32, f32_to_bf16};
use crate::fused::Activation;
use crate::pool;
use crate::simd::{self, F32x16, LANES, LANES16};
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Rows per register block (matches the f32 microkernel's MR).
const QMR: usize = 6;

/// A weight element storable in a narrow pack and widenable to f32.
pub trait QWeight: Copy + Send + Sync + Default {
    /// Exact widening of the stored code to f32.
    fn widen(self) -> f32;
}

impl QWeight for u16 {
    #[inline(always)]
    fn widen(self) -> f32 {
        bf16_to_f32(self)
    }
}

impl QWeight for i8 {
    #[inline(always)]
    fn widen(self) -> f32 {
        self as f32
    }
}

impl QWeight for f32 {
    #[inline(always)]
    fn widen(self) -> f32 {
        self
    }
}

/// An activation element the GEMM can stream on either side: read as the A
/// operand (widened in-register via [`QWeight`]) and written as the C output
/// (narrowed at store time). `f32` passes through untouched; `u16` holds
/// BF16 words.
pub trait ActElem: QWeight {
    /// Narrow a finished f32 output element to storage.
    fn narrow(v: f32) -> Self;

    /// Store one full vector of lanes (the identity-activation fast path).
    fn store_lanes(v: F32x16, dst: &mut [Self]);
}

impl ActElem for f32 {
    #[inline(always)]
    fn narrow(v: f32) -> f32 {
        v
    }

    #[inline(always)]
    fn store_lanes(v: F32x16, dst: &mut [f32]) {
        v.store(dst);
    }
}

impl ActElem for u16 {
    #[inline(always)]
    fn narrow(v: f32) -> u16 {
        f32_to_bf16(v)
    }

    #[inline(always)]
    fn store_lanes(v: F32x16, dst: &mut [u16]) {
        for (d, &x) in dst.iter_mut().zip(&v.to_array()) {
            *d = f32_to_bf16(x);
        }
    }
}

/// Pick the strip width (in columns) for `n` output features.
///
/// Wider strips mean more independent accumulator chains (better FMA-latency
/// hiding) but pad ragged edges with dead lanes. The weights below are the
/// measured relative throughputs of the W=1/2/4 kernels on the reference
/// box; the choice maximizes `throughput × useful-lane fraction`.
fn choose_nr(n: usize) -> usize {
    let mut best = (0.0f64, LANES16);
    for (w, thr) in [(1usize, 65.0f64), (2, 103.0), (4, 113.0)] {
        let nr = w * LANES16;
        let padded = n.div_ceil(nr) * nr;
        let eff = thr * n as f64 / padded as f64;
        if eff > best.0 {
            best = (eff, nr);
        }
    }
    best.1
}

/// Lay `w` (a `[n, k]` weight, PyTorch `[out, in]` convention) into k-major
/// strips of `nr` columns of `W^T`, quantizing each element through `f(row,
/// value)`. Ragged columns are zero-padded.
fn pack_strips<Q: QWeight>(
    wd: &[f32],
    n: usize,
    k: usize,
    nr: usize,
    mut f: impl FnMut(usize, f32) -> Q,
) -> Vec<Q> {
    let nstrips = n.div_ceil(nr);
    let mut pack = vec![Q::default(); nstrips * k * nr];
    for s in 0..nstrips {
        let j0 = s * nr;
        let cols = nr.min(n - j0);
        let dst = &mut pack[s * k * nr..(s + 1) * k * nr];
        for p in 0..k {
            for c in 0..cols {
                // W^T[p][j0 + c] == w[j0 + c][p].
                dst[p * nr + c] = f(j0 + c, wd[(j0 + c) * k + p]);
            }
        }
    }
    pack
}

/// Shape gate shared by both quantized packs: 2-d with at least one full
/// f32-kernel lane of output features. Unlike the f32 pack this does **not**
/// consult [`simd::enabled`] — the quantized *values* must not depend on the
/// SIMD mode (the scalar oracle consumes the same pack), only the kernel
/// choice does.
fn quant_packable(w: &Tensor) -> Option<(usize, usize)> {
    if w.ndim() != 2 {
        return None;
    }
    let (n, k) = (w.shape()[0], w.shape()[1]);
    (n >= LANES && k > 0).then_some((n, k))
}

/// A `[n, k]` linear weight resident as `u16` BF16 strip words.
#[derive(Debug, Clone)]
pub struct PackedWeightBf16 {
    pack: Vec<u16>,
    n: usize,
    k: usize,
    nr: usize,
}

impl PackedWeightBf16 {
    /// Pack a `[n, k]` weight, rounding every element to BF16
    /// (round-to-nearest-even). Returns `None` for shapes the packed
    /// kernels never run on.
    pub fn pack(w: &Tensor) -> Option<Self> {
        let (n, k) = quant_packable(w)?;
        let nr = choose_nr(n);
        let pack = pack_strips(w.data(), n, k, nr, |_, v| f32_to_bf16(v));
        Some(PackedWeightBf16 { pack, n, k, nr })
    }

    /// Output features.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Input features.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Pack size in stored words.
    pub fn len(&self) -> usize {
        self.pack.len()
    }

    /// True when the pack holds no elements.
    pub fn is_empty(&self) -> bool {
        self.pack.is_empty()
    }

    /// The widened `[n, k]` weight the pack represents — bit-identical to
    /// `w.to_bf16()` of the original. Fallback (unpacked) matmuls in a bf16
    /// session run on this tensor so every path sees the same values.
    pub fn dequantized(&self) -> Tensor {
        let mut out = pool::alloc_uninit(self.n * self.k);
        for j in 0..self.n {
            let (s, c) = (j / self.nr, j % self.nr);
            let strip = &self.pack[s * self.k * self.nr..];
            for p in 0..self.k {
                out[j * self.k + p] = strip[p * self.nr + c].widen();
            }
        }
        Tensor::from_vec(vec![self.n, self.k], out)
    }
}

/// A `[n, k]` linear weight resident as symmetric per-output-channel `i8`
/// codes plus one f32 scale per channel.
#[derive(Debug, Clone)]
pub struct PackedWeightI8 {
    pack: Vec<i8>,
    scales: Vec<f32>,
    n: usize,
    k: usize,
    nr: usize,
}

impl PackedWeightI8 {
    /// Quantize and pack a `[n, k]` weight. Each output channel (row of
    /// `w`) gets `scale = max|w|/127` and codes `round(w/scale)`, so the
    /// per-element reconstruction error is at most `scale/2`. Returns
    /// `None` for shapes the packed kernels never run on.
    pub fn pack(w: &Tensor) -> Option<Self> {
        let (n, k) = quant_packable(w)?;
        let wd = w.data();
        let scales: Vec<f32> = (0..n)
            .map(|j| {
                let maxabs =
                    wd[j * k..(j + 1) * k].iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                maxabs / 127.0
            })
            .collect();
        let nr = choose_nr(n);
        let pack = pack_strips(wd, n, k, nr, |j, v| {
            let s = scales[j];
            if s == 0.0 {
                0
            } else {
                (v / s).round().clamp(-127.0, 127.0) as i8
            }
        });
        Some(PackedWeightI8 { pack, scales, n, k, nr })
    }

    /// Output features.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Input features.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Pack size in stored codes (scales excluded).
    pub fn len(&self) -> usize {
        self.pack.len()
    }

    /// True when the pack holds no elements.
    pub fn is_empty(&self) -> bool {
        self.pack.is_empty()
    }

    /// Per-output-channel scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The reconstructed `[n, k]` weight (`code × scale`). Fallback
    /// (unpacked) matmuls in an int8 session run on this tensor so every
    /// path sees the same values.
    pub fn dequantized(&self) -> Tensor {
        let mut out = pool::alloc_uninit(self.n * self.k);
        for j in 0..self.n {
            let (s, c) = (j / self.nr, j % self.nr);
            let strip = &self.pack[s * self.k * self.nr..];
            for p in 0..self.k {
                out[j * self.k + p] = strip[p * self.nr + c].widen() * self.scales[j];
            }
        }
        Tensor::from_vec(vec![self.n, self.k], out)
    }
}

/// Store-time epilogue: per-channel scale, bias, activation — shared by the
/// vector store and the scalar oracle so both round identically.
#[inline(always)]
fn finish(mut v: f32, scale: Option<f32>, bias: Option<f32>, act: Activation) -> f32 {
    if let Some(s) = scale {
        v *= s;
    }
    if let Some(b) = bias {
        v += b;
    }
    act.apply(v)
}

/// The register-blocked inner kernel: 6 activation rows against one widened
/// `16·W`-column strip, k-ordered FMA chains in `6×W` accumulators.
///
/// The six row streams advance through a nested `zip` rather than `row[p]`
/// indexing: per-step bounds checks add panic edges on which LLVM keeps the
/// accumulator array memory-resident (a full spill/reload of every `zmm`
/// accumulator per k step, measured ~2× slower). The zip body has no side
/// exits, so the accumulators live in registers for the whole k loop.
#[inline(always)]
fn micro<A: QWeight, const W: usize>(
    rows: &[&[A]; QMR],
    bw: &[f32],
    kc: usize,
    acc: &mut [[F32x16; W]; QMR],
) {
    let nr = W * LANES16;
    let bw = &bw[..kc * nr];
    let [r0, r1, r2, r3, r4, r5] = *rows;
    let it = bw.chunks_exact(nr).zip(r0).zip(r1).zip(r2).zip(r3).zip(r4).zip(r5);
    for ((((((bchunk, &a0), &a1), &a2), &a3), &a4), &a5) in it {
        let mut bv = [F32x16::ZERO; W];
        for (w, b) in bv.iter_mut().enumerate() {
            *b = F32x16::load(&bchunk[w * LANES16..]);
        }
        let avs = [a0, a1, a2, a3, a4, a5];
        for (accr, &av) in acc.iter_mut().zip(&avs) {
            let a = F32x16::splat(av.widen());
            for (acw, &b) in accr.iter_mut().zip(&bv) {
                *acw = a.mul_add(b, *acw);
            }
        }
    }
}

/// Vectorized quantized GEMM: `c = act(scale ⊙ (a · widen(pack)^T) + bias)`.
///
/// `a` is `[m, k]` row-major (read in place), `pack` holds `n` output
/// columns in `nr`-wide k-major strips, `c` is `[m, n]` overwritten.
/// Parallel over row chunks; each worker widens each strip once into a
/// pooled f32 scratch.
#[allow(clippy::too_many_arguments)] // GEMM plumbing: dims + strips + epilogue
fn gemm_quant<A: ActElem, Q: QWeight, C: ActElem, const W: usize>(
    a: &[A],
    m: usize,
    k: usize,
    pack: &[Q],
    n: usize,
    scales: Option<&[f32]>,
    bias: Option<&[f32]>,
    act: Activation,
    c: &mut [C],
) {
    let nr = W * LANES16;
    let nstrips = n.div_ceil(nr);
    debug_assert_eq!(pack.len(), nstrips * k * nr);
    if m == 0 {
        return;
    }
    // Row chunks sized so each worker runs the whole strip loop once:
    // fewer chunks means fewer redundant strip widenings.
    let chunk_rows = m.div_ceil(rayon::current_num_threads()).div_ceil(QMR) * QMR;
    c.par_chunks_mut(chunk_rows * n).enumerate().for_each(|(ci, cchunk)| {
        let r0 = ci * chunk_rows;
        let rows = cchunk.len() / n;
        let achunk = &a[r0 * k..(r0 + rows) * k];
        let mut scratch = pool::alloc_uninit(k * nr);
        for s in 0..nstrips {
            let j0 = s * nr;
            let cols = nr.min(n - j0);
            let strip = &pack[s * k * nr..(s + 1) * k * nr];
            for (d, &q) in scratch.iter_mut().zip(strip) {
                *d = q.widen();
            }
            for p in 0..rows.div_ceil(QMR) {
                let rb = p * QMR;
                let mr = QMR.min(rows - rb);
                // Ragged panels replicate the last row into the dead lanes;
                // their results are computed and discarded.
                let rowrefs: [&[A]; QMR] = std::array::from_fn(|i| {
                    let r = rb + i.min(mr - 1);
                    &achunk[r * k..r * k + k]
                });
                let mut acc = [[F32x16::ZERO; W]; QMR];
                micro::<A, W>(&rowrefs, &scratch, k, &mut acc);
                for (r, accr) in acc.iter().enumerate().take(mr) {
                    let crow = &mut cchunk[(rb + r) * n + j0..(rb + r) * n + j0 + cols];
                    for (w, acw) in accr.iter().enumerate() {
                        let l0 = w * LANES16;
                        if l0 >= cols {
                            break;
                        }
                        let lanes = LANES16.min(cols - l0);
                        if lanes == LANES16 {
                            // Full lane group: vector scale then bias (mul
                            // then add, the same operation order as the
                            // scalar `finish`, so both round identically)
                            // and a straight vector store for the identity
                            // activation.
                            let mut v = *acw;
                            if let Some(sc) = scales {
                                v = v.mul(F32x16::load(&sc[j0 + l0..]));
                            }
                            if let Some(b) = bias {
                                v = v.add(F32x16::load(&b[j0 + l0..]));
                            }
                            let dst = &mut crow[l0..l0 + LANES16];
                            if act == Activation::Identity {
                                C::store_lanes(v, dst);
                            } else {
                                for (cv, &x) in dst.iter_mut().zip(&v.to_array()) {
                                    *cv = C::narrow(act.apply(x));
                                }
                            }
                        } else {
                            let vals = acw.to_array();
                            for (l, cv) in crow[l0..l0 + lanes].iter_mut().enumerate() {
                                let j = j0 + l0 + l;
                                *cv = C::narrow(finish(
                                    vals[l],
                                    scales.map(|sc| sc[j]),
                                    bias.map(|b| b[j]),
                                    act,
                                ));
                            }
                        }
                    }
                }
            }
        }
    });
}

/// Scalar oracle for the quantized GEMM — bit-identical to [`gemm_quant`]
/// by construction (same k-ordered [`simd::fma`] chain per element, same
/// [`finish`] epilogue). Runs for every call under `ORBIT2_DISABLE_SIMD=1`.
#[allow(clippy::too_many_arguments)] // GEMM plumbing: dims + strips + epilogue
fn gemm_quant_ref<A: ActElem, Q: QWeight, C: ActElem>(
    a: &[A],
    m: usize,
    k: usize,
    pack: &[Q],
    n: usize,
    nr: usize,
    scales: Option<&[f32]>,
    bias: Option<&[f32]>,
    act: Activation,
    c: &mut [C],
) {
    debug_assert_eq!(c.len(), m * n);
    c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
        let arow = &a[i * k..(i + 1) * k];
        for (j, cv) in crow.iter_mut().enumerate() {
            let strip = &pack[(j / nr) * k * nr..];
            let off = j % nr;
            let mut acc = 0.0f32;
            for (p, &av) in arow.iter().enumerate() {
                acc = simd::fma(av.widen(), strip[p * nr + off].widen(), acc);
            }
            *cv = C::narrow(finish(acc, scales.map(|sc| sc[j]), bias.map(|b| b[j]), act));
        }
    });
}

#[allow(clippy::too_many_arguments)] // GEMM plumbing: dims + strips + epilogue
fn dispatch<A: ActElem, Q: QWeight, C: ActElem>(
    a: &[A],
    m: usize,
    k: usize,
    pack: &[Q],
    n: usize,
    nr: usize,
    scales: Option<&[f32]>,
    bias: Option<&[f32]>,
    act: Activation,
    c: &mut [C],
) {
    assert_eq!(a.len(), m * k, "activation buffer shape");
    assert_eq!(c.len(), m * n, "output buffer shape");
    if let Some(b) = bias {
        assert_eq!(b.len(), n, "bias length");
    }
    if !simd::enabled() {
        return gemm_quant_ref(a, m, k, pack, n, nr, scales, bias, act, c);
    }
    match nr / LANES16 {
        1 => gemm_quant::<A, Q, C, 1>(a, m, k, pack, n, scales, bias, act, c),
        2 => gemm_quant::<A, Q, C, 2>(a, m, k, pack, n, scales, bias, act, c),
        4 => gemm_quant::<A, Q, C, 4>(a, m, k, pack, n, scales, bias, act, c),
        w => unreachable!("unsupported strip width {}", w * LANES16),
    }
}

/// Fused linear on a resident bf16 pack: `c = act(a · widen(pack)^T + bias)`.
pub fn gemm_bf16_fused(
    a: &[f32],
    m: usize,
    k: usize,
    pw: &PackedWeightBf16,
    bias: Option<&[f32]>,
    act: Activation,
    c: &mut [f32],
) {
    assert_eq!(k, pw.k, "bf16 pack k mismatch");
    dispatch(a, m, k, &pw.pack, pw.n, pw.nr, None, bias, act, c);
}

/// Fused linear on a resident int8 pack:
/// `c = act(scale ⊙ (a · codes^T) + bias)`.
pub fn gemm_i8_fused(
    a: &[f32],
    m: usize,
    k: usize,
    pw: &PackedWeightI8,
    bias: Option<&[f32]>,
    act: Activation,
    c: &mut [f32],
) {
    assert_eq!(k, pw.k, "i8 pack k mismatch");
    dispatch(a, m, k, &pw.pack, pw.n, pw.nr, Some(&pw.scales), bias, act, c);
}

/// Scalar-oracle entry for the bf16 pack (testing / reference).
pub fn gemm_bf16_ref(
    a: &[f32],
    m: usize,
    k: usize,
    pw: &PackedWeightBf16,
    bias: Option<&[f32]>,
    act: Activation,
    c: &mut [f32],
) {
    assert_eq!(k, pw.k, "bf16 pack k mismatch");
    gemm_quant_ref(a, m, k, &pw.pack, pw.n, pw.nr, None, bias, act, c);
}

/// Scalar-oracle entry for the int8 pack (testing / reference).
pub fn gemm_i8_ref(
    a: &[f32],
    m: usize,
    k: usize,
    pw: &PackedWeightI8,
    bias: Option<&[f32]>,
    act: Activation,
    c: &mut [f32],
) {
    assert_eq!(k, pw.k, "i8 pack k mismatch");
    gemm_quant_ref(a, m, k, &pw.pack, pw.n, pw.nr, Some(&pw.scales), bias, act, c);
}

/// Fused linear with **bf16 activations on both sides**: `a` and `c` are
/// BF16 words, widened/narrowed in-register against a resident bf16 pack.
/// Per element this is exactly `f32_to_bf16` of what [`gemm_bf16_fused`]
/// computes on the widened A operand (widening is lossless), at half the
/// activation traffic.
pub fn gemm_bf16_act_fused(
    a: &[u16],
    m: usize,
    k: usize,
    pw: &PackedWeightBf16,
    bias: Option<&[f32]>,
    act: Activation,
    c: &mut [u16],
) {
    assert_eq!(k, pw.k, "bf16 pack k mismatch");
    dispatch(a, m, k, &pw.pack, pw.n, pw.nr, None, bias, act, c);
}

/// Scalar-oracle entry for [`gemm_bf16_act_fused`].
pub fn gemm_bf16_act_ref(
    a: &[u16],
    m: usize,
    k: usize,
    pw: &PackedWeightBf16,
    bias: Option<&[f32]>,
    act: Activation,
    c: &mut [u16],
) {
    assert_eq!(k, pw.k, "bf16 pack k mismatch");
    gemm_quant_ref(a, m, k, &pw.pack, pw.n, pw.nr, None, bias, act, c);
}

/// Fused linear with bf16 activations against a resident **int8** pack:
/// `c = bf16(act(scale ⊙ (widen(a) · codes^T) + bias))`.
pub fn gemm_i8_act_fused(
    a: &[u16],
    m: usize,
    k: usize,
    pw: &PackedWeightI8,
    bias: Option<&[f32]>,
    act: Activation,
    c: &mut [u16],
) {
    assert_eq!(k, pw.k, "i8 pack k mismatch");
    dispatch(a, m, k, &pw.pack, pw.n, pw.nr, Some(&pw.scales), bias, act, c);
}

/// Scalar-oracle entry for [`gemm_i8_act_fused`].
pub fn gemm_i8_act_ref(
    a: &[u16],
    m: usize,
    k: usize,
    pw: &PackedWeightI8,
    bias: Option<&[f32]>,
    act: Activation,
    c: &mut [u16],
) {
    assert_eq!(k, pw.k, "i8 pack k mismatch");
    gemm_quant_ref(a, m, k, &pw.pack, pw.n, pw.nr, Some(&pw.scales), bias, act, c);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::randn;

    #[test]
    fn bf16_dequantized_matches_to_bf16_bitwise() {
        for &(n, k) in &[(16usize, 8usize), (48, 33), (64, 64)] {
            let w = randn(&[n, k], 5);
            let pw = PackedWeightBf16::pack(&w).unwrap();
            let dq = pw.dequantized();
            let expect = w.to_bf16();
            assert_eq!(dq.shape(), expect.shape());
            for (a, b) in dq.data().iter().zip(expect.data()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn i8_quantization_error_bounded_by_half_scale() {
        let w = randn(&[24, 57], 6);
        let pw = PackedWeightI8::pack(&w).unwrap();
        let dq = pw.dequantized();
        for j in 0..24 {
            let s = pw.scales()[j];
            for p in 0..57 {
                let err = (w.data()[j * 57 + p] - dq.data()[j * 57 + p]).abs();
                assert!(err <= s * 0.5 + f32::EPSILON, "err {err} vs scale {s}");
            }
        }
    }

    #[test]
    fn zero_channel_quantizes_exactly() {
        let mut w = randn(&[16, 9], 7).data().to_vec();
        for v in w[..9].iter_mut() {
            *v = 0.0;
        }
        let w = Tensor::from_vec(vec![16, 9], w);
        let pw = PackedWeightI8::pack(&w).unwrap();
        assert_eq!(pw.scales()[0], 0.0);
        assert!(pw.dequantized().data()[..9].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn packed_kernels_match_oracle_bitwise() {
        // The strongest form of the documented ulp bound: zero ulps. Shapes
        // cover every strip width and ragged row/column edges.
        for &(m, k, n) in &[
            (1usize, 16usize, 16usize),
            (6, 32, 32),
            (7, 40, 48),
            (13, 64, 64),
            (72, 30, 100),
            (5, 8, 8),
        ] {
            let a = randn(&[m, k], 11);
            let w = randn(&[n, k], 12);
            let bias = randn(&[n], 13);
            let bf = PackedWeightBf16::pack(&w).unwrap();
            let i8p = PackedWeightI8::pack(&w).unwrap();
            for act in [Activation::Identity, Activation::Relu, Activation::Gelu] {
                let mut c_vec = vec![0.0f32; m * n];
                let mut c_ref = vec![f32::NAN; m * n];
                gemm_bf16_fused(a.data(), m, k, &bf, Some(bias.data()), act, &mut c_vec);
                gemm_bf16_ref(a.data(), m, k, &bf, Some(bias.data()), act, &mut c_ref);
                for (x, y) in c_vec.iter().zip(&c_ref) {
                    assert_eq!(x.to_bits(), y.to_bits(), "bf16 m={m} k={k} n={n} {act:?}");
                }
                let mut c_vec = vec![0.0f32; m * n];
                let mut c_ref = vec![f32::NAN; m * n];
                gemm_i8_fused(a.data(), m, k, &i8p, Some(bias.data()), act, &mut c_vec);
                gemm_i8_ref(a.data(), m, k, &i8p, Some(bias.data()), act, &mut c_ref);
                for (x, y) in c_vec.iter().zip(&c_ref) {
                    assert_eq!(x.to_bits(), y.to_bits(), "i8 m={m} k={k} n={n} {act:?}");
                }
            }
        }
    }

    #[test]
    fn bf16_gemm_close_to_f32_reference() {
        let (m, k, n) = (9usize, 65usize, 33usize);
        let a = randn(&[m, k], 21);
        let w = randn(&[n, k], 22);
        let pw = PackedWeightBf16::pack(&w).unwrap();
        let mut c = vec![0.0f32; m * n];
        gemm_bf16_fused(a.data(), m, k, &pw, None, Activation::Identity, &mut c);
        let expect = a.matmul(&w.transpose2());
        for (got, want) in c.iter().zip(expect.data()) {
            // Weight rounding error ~2^-8 relative per product, amplified by
            // the k-term accumulation.
            let tol = crate::bf16::BF16_EPS * (k as f32).sqrt() * 4.0;
            assert!((got - want).abs() <= tol.max(1e-3), "{got} vs {want}");
        }
    }

    #[test]
    fn bf16_act_kernels_match_oracle_bitwise() {
        // Same zero-ulp contract as the f32-activation kernels, with both
        // the A stream and the C store held as BF16 words.
        for &(m, k, n) in &[
            (1usize, 16usize, 16usize),
            (6, 32, 32),
            (7, 40, 48),
            (13, 64, 64),
            (72, 30, 100),
            (5, 8, 8),
        ] {
            let a = crate::bf16::f32_slice_to_bf16(randn(&[m, k], 41).data());
            let w = randn(&[n, k], 42);
            let bias = randn(&[n], 43);
            let bf = PackedWeightBf16::pack(&w).unwrap();
            let i8p = PackedWeightI8::pack(&w).unwrap();
            for act in [Activation::Identity, Activation::Relu, Activation::Gelu] {
                let mut c_vec = vec![0u16; m * n];
                let mut c_ref = vec![u16::MAX; m * n];
                gemm_bf16_act_fused(&a, m, k, &bf, Some(bias.data()), act, &mut c_vec);
                gemm_bf16_act_ref(&a, m, k, &bf, Some(bias.data()), act, &mut c_ref);
                assert_eq!(c_vec, c_ref, "bf16-act m={m} k={k} n={n} {act:?}");
                let mut c_vec = vec![0u16; m * n];
                let mut c_ref = vec![u16::MAX; m * n];
                gemm_i8_act_fused(&a, m, k, &i8p, Some(bias.data()), act, &mut c_vec);
                gemm_i8_act_ref(&a, m, k, &i8p, Some(bias.data()), act, &mut c_ref);
                assert_eq!(c_vec, c_ref, "i8-act m={m} k={k} n={n} {act:?}");
            }
        }
    }

    #[test]
    fn bf16_act_gemm_is_narrowed_f32_act_gemm() {
        // Widening BF16 words is exact, so streaming the words directly must
        // give bit-identically the narrowed result of running the f32-A
        // kernel on the widened copy — the no-f32-materialization claim.
        for &(m, k, n) in &[(6usize, 32usize, 32usize), (7, 40, 48), (13, 64, 64)] {
            let a_words = crate::bf16::f32_slice_to_bf16(randn(&[m, k], 51).data());
            let mut a_wide = vec![0.0f32; m * k];
            crate::bf16::bf16_slice_to_f32(&a_words, &mut a_wide);
            let w = randn(&[n, k], 52);
            let bias = randn(&[n], 53);
            let bf = PackedWeightBf16::pack(&w).unwrap();
            for act in [Activation::Identity, Activation::Gelu] {
                let mut c_f32 = vec![0.0f32; m * n];
                gemm_bf16_fused(&a_wide, m, k, &bf, Some(bias.data()), act, &mut c_f32);
                let mut c_words = vec![0u16; m * n];
                gemm_bf16_act_fused(&a_words, m, k, &bf, Some(bias.data()), act, &mut c_words);
                for (got, &full) in c_words.iter().zip(&c_f32) {
                    assert_eq!(*got, f32_to_bf16(full), "m={m} k={k} n={n} {act:?}");
                }
            }
        }
    }

    #[test]
    fn pack_gates_on_shape_only() {
        assert!(PackedWeightBf16::pack(&randn(&[4, 16], 31)).is_none());
        assert!(PackedWeightI8::pack(&randn(&[16], 32)).is_none());
        // Unlike the f32 pack, SIMD mode does not change packability.
        assert!(PackedWeightBf16::pack(&randn(&[16, 4], 33)).is_some());
        assert!(PackedWeightI8::pack(&randn(&[16, 4], 34)).is_some());
    }

    #[test]
    fn strip_width_choice_prefers_useful_lanes() {
        assert_eq!(choose_nr(16), 16);
        assert_eq!(choose_nr(32), 32);
        assert_eq!(choose_nr(64), 64);
        assert_eq!(choose_nr(512), 64);
        // 48 columns: a 64-wide strip at 75% utilization still beats the
        // full-utilization 16-wide kernel.
        assert_eq!(choose_nr(48), 64);
    }
}
