//! 2-D convolution via im2col + blocked matmul, with the backward kernels
//! needed by the autograd crate.
//!
//! Layout is NCHW: `input [N, C, H, W]`, `weight [O, C, KH, KW]`. Reslim's
//! residual path, its decoder, and the baseline model's channel-aggregation
//! stage are all built from these kernels.

use crate::matmul::matmul_slices;
use crate::pool::{self, Buffer};
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Spatial geometry of a convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeom {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same both axes).
    pub stride: usize,
    /// Zero padding (same all sides).
    pub pad: usize,
}

impl ConvGeom {
    /// Output spatial size for an input of `(h, w)`.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.pad - self.kh) / self.stride + 1;
        let ow = (w + 2 * self.pad - self.kw) / self.stride + 1;
        (oh, ow)
    }

    /// "Same" geometry for an odd kernel with stride 1.
    pub fn same(k: usize) -> Self {
        assert!(k % 2 == 1, "same-padding requires odd kernel");
        Self { kh: k, kw: k, stride: 1, pad: k / 2 }
    }
}

/// Unfold one `[C, H, W]` plane into a `[C*KH*KW, OH*OW]` column matrix.
fn im2col_plane(plane: &[f32], c: usize, h: usize, w: usize, g: ConvGeom, cols: &mut [f32]) {
    let (oh, ow) = g.out_size(h, w);
    let ncols = oh * ow;
    debug_assert_eq!(cols.len(), c * g.kh * g.kw * ncols);
    for ci in 0..c {
        let src = &plane[ci * h * w..(ci + 1) * h * w];
        for ky in 0..g.kh {
            for kx in 0..g.kw {
                let row = ((ci * g.kh + ky) * g.kw + kx) * ncols;
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    let drow = row + oy * ow;
                    if iy < 0 || iy >= h as isize {
                        cols[drow..drow + ow].fill(0.0);
                        continue;
                    }
                    let srow = iy as usize * w;
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        cols[drow + ox] = if ix < 0 || ix >= w as isize { 0.0 } else { src[srow + ix as usize] };
                    }
                }
            }
        }
    }
}

/// Fold a `[C*KH*KW, OH*OW]` column-gradient matrix back onto a `[C, H, W]`
/// plane (the adjoint of [`im2col_plane`]): overlapping windows accumulate.
fn col2im_plane(cols: &[f32], c: usize, h: usize, w: usize, g: ConvGeom, plane: &mut [f32]) {
    let (oh, ow) = g.out_size(h, w);
    let ncols = oh * ow;
    for ci in 0..c {
        let dst = &mut plane[ci * h * w..(ci + 1) * h * w];
        for ky in 0..g.kh {
            for kx in 0..g.kw {
                let row = ((ci * g.kh + ky) * g.kw + kx) * ncols;
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let srow = iy as usize * w;
                    let crow = row + oy * ow;
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        if ix >= 0 && ix < w as isize {
                            dst[srow + ix as usize] += cols[crow + ox];
                        }
                    }
                }
            }
        }
    }
}

/// Forward convolution: `input [N,C,H,W] * weight [O,C,KH,KW] (+ bias [O])`.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>, g: ConvGeom) -> Tensor {
    assert_eq!(input.ndim(), 4, "conv2d input must be [N,C,H,W]");
    assert_eq!(weight.ndim(), 4, "conv2d weight must be [O,C,KH,KW]");
    let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
    let (o, wc, kh, kw) = (weight.shape()[0], weight.shape()[1], weight.shape()[2], weight.shape()[3]);
    assert_eq!(c, wc, "channel mismatch: input C={c}, weight C={wc}");
    assert_eq!((kh, kw), (g.kh, g.kw), "weight kernel does not match geometry");
    if let Some(b) = bias {
        assert_eq!(b.shape(), &[o], "bias must be [O]");
    }
    let (oh, ow) = g.out_size(h, w);
    let ncols = oh * ow;
    let krows = c * kh * kw;
    let mut out = pool::alloc_zeroed(n * o * ncols);
    let src = input.data();
    let wd = weight.data();
    out.par_chunks_mut(o * ncols).enumerate().for_each(|(ni, dst)| {
        // Per-sample im2col scratch, drawn from (and recycled into) the
        // persistent worker thread's pool; fully overwritten by im2col.
        let mut cols = Buffer::uninit(krows * ncols);
        im2col_plane(&src[ni * c * h * w..(ni + 1) * c * h * w], c, h, w, g, &mut cols);
        crate::matmul::matmul_block_seq(wd, &cols, dst, o, krows, ncols);
        if let Some(b) = bias {
            for (oc, chunk) in dst.chunks_mut(ncols).enumerate() {
                let bv = b.data()[oc];
                for x in chunk.iter_mut() {
                    *x += bv;
                }
            }
        }
    });
    Tensor::from_vec(vec![n, o, oh, ow], out)
}

/// Gradient of the convolution output w.r.t. the input.
pub fn conv2d_grad_input(grad_out: &Tensor, weight: &Tensor, input_shape: &[usize], g: ConvGeom) -> Tensor {
    let (n, c, h, w) = (input_shape[0], input_shape[1], input_shape[2], input_shape[3]);
    let o = weight.shape()[0];
    let (oh, ow) = g.out_size(h, w);
    assert_eq!(grad_out.shape(), &[n, o, oh, ow]);
    let ncols = oh * ow;
    let krows = c * g.kh * g.kw;
    // wT: [krows, O]
    let wt = weight.reshape(vec![o, krows]).transpose2();
    let god = grad_out.data();
    let wtd = wt.data();
    let mut out = pool::alloc_zeroed(n * c * h * w);
    out.par_chunks_mut(c * h * w).enumerate().for_each(|(ni, dst)| {
        // Zeroed: the sequential matmul accumulates into it.
        let mut cols = Buffer::zeroed(krows * ncols);
        matmul_slices_seq(wtd, &god[ni * o * ncols..(ni + 1) * o * ncols], &mut cols, krows, o, ncols);
        col2im_plane(&cols, c, h, w, g, dst);
    });
    Tensor::from_vec(input_shape.to_vec(), out)
}

/// Gradient of the convolution output w.r.t. the weight.
pub fn conv2d_grad_weight(grad_out: &Tensor, input: &Tensor, weight_shape: &[usize], g: ConvGeom) -> Tensor {
    let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
    let o = weight_shape[0];
    let (oh, ow) = g.out_size(h, w);
    let ncols = oh * ow;
    let krows = c * g.kh * g.kw;
    let src = input.data();
    let god = grad_out.data();
    // Accumulate per-sample weight gradients in parallel, then reduce.
    let partials: Vec<Vec<f32>> = (0..n)
        .into_par_iter()
        .map(|ni| {
            let mut cols = Buffer::uninit(krows * ncols);
            im2col_plane(&src[ni * c * h * w..(ni + 1) * c * h * w], c, h, w, g, &mut cols);
            // grad_w[o, krows] = grad_out[o, ncols] * cols^T[ncols, krows];
            // the stride-aware kernel packs cols^T straight from `cols`.
            let mut gw = vec![0.0f32; o * krows];
            crate::matmul::gemm(
                &god[ni * o * ncols..(ni + 1) * o * ncols],
                crate::matmul::MatLayout::row_major(ncols),
                &cols,
                crate::matmul::MatLayout::transposed(ncols),
                &mut gw,
                o,
                ncols,
                krows,
                false,
            );
            gw
        })
        .collect();
    let mut total = pool::alloc_zeroed(o * krows);
    for p in partials {
        for (t, x) in total.iter_mut().zip(p) {
            *t += x;
        }
    }
    Tensor::from_vec(weight_shape.to_vec(), total)
}

/// Gradient w.r.t. the bias: sum of `grad_out` over batch and space.
pub fn conv2d_grad_bias(grad_out: &Tensor) -> Tensor {
    let (n, o, oh, ow) = (
        grad_out.shape()[0],
        grad_out.shape()[1],
        grad_out.shape()[2],
        grad_out.shape()[3],
    );
    let mut out = vec![0.0f32; o];
    let god = grad_out.data();
    for ni in 0..n {
        for (oc, acc) in out.iter_mut().enumerate() {
            let base = (ni * o + oc) * oh * ow;
            *acc += god[base..base + oh * ow].iter().sum::<f32>();
        }
    }
    Tensor::from_vec(vec![o], out)
}

fn matmul_slices_seq(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    // Thin wrapper so call sites inside rayon tasks stay sequential.
    crate::matmul::matmul_block_seq(a, b, c, m, k, n);
}

/// Parallel (outer) convenience used by tests comparing against the blocked kernel.
#[allow(dead_code)]
fn matmul_par(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    matmul_slices(a, b, c, m, k, n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::randn;

    fn conv_naive(input: &Tensor, weight: &Tensor, g: ConvGeom) -> Tensor {
        let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let o = weight.shape()[0];
        let (oh, ow) = g.out_size(h, w);
        let mut out = Tensor::zeros(vec![n, o, oh, ow]);
        for ni in 0..n {
            for oc in 0..o {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut s = 0.0;
                        for ci in 0..c {
                            for ky in 0..g.kh {
                                for kx in 0..g.kw {
                                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                                    let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                                    if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                        s += input.at(&[ni, ci, iy as usize, ix as usize])
                                            * weight.at(&[oc, ci, ky, kx]);
                                    }
                                }
                            }
                        }
                        out.set(&[ni, oc, oy, ox], s);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn matches_naive_same_padding() {
        let g = ConvGeom::same(3);
        let x = randn(&[2, 3, 7, 9], 1);
        let w = randn(&[4, 3, 3, 3], 2);
        let fast = conv2d(&x, &w, None, g);
        let slow = conv_naive(&x, &w, g);
        fast.assert_close(&slow, 1e-4);
    }

    #[test]
    fn matches_naive_strided() {
        let g = ConvGeom { kh: 2, kw: 2, stride: 2, pad: 0 };
        let x = randn(&[1, 2, 8, 8], 3);
        let w = randn(&[5, 2, 2, 2], 4);
        conv2d(&x, &w, None, g).assert_close(&conv_naive(&x, &w, g), 1e-4);
    }

    #[test]
    fn bias_shifts_each_channel() {
        let g = ConvGeom::same(1);
        let x = Tensor::zeros(vec![1, 1, 2, 2]);
        let w = Tensor::ones(vec![2, 1, 1, 1]);
        let b = Tensor::from_vec(vec![2], vec![1.0, -2.0]);
        let y = conv2d(&x, &w, Some(&b), g);
        assert_eq!(y.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(y.at(&[0, 1, 1, 1]), -2.0);
    }

    #[test]
    fn grad_input_matches_finite_difference() {
        let g = ConvGeom::same(3);
        let x = randn(&[1, 2, 5, 5], 5);
        let w = randn(&[3, 2, 3, 3], 6);
        let y = conv2d(&x, &w, None, g);
        // Loss = sum(y); dL/dy = ones.
        let go = Tensor::ones(y.shape().to_vec());
        let gi = conv2d_grad_input(&go, &w, x.shape(), g);
        let eps = 1e-2;
        for &probe in &[0usize, 7, 24, 49] {
            let mut xp = x.clone();
            xp.data_mut()[probe] += eps;
            let mut xm = x.clone();
            xm.data_mut()[probe] -= eps;
            let fd = (conv2d(&xp, &w, None, g).sum() - conv2d(&xm, &w, None, g).sum()) / (2.0 * eps);
            assert!((gi.data()[probe] - fd).abs() < 1e-2, "probe {probe}: {} vs {}", gi.data()[probe], fd);
        }
    }

    #[test]
    fn grad_weight_matches_finite_difference() {
        let g = ConvGeom::same(3);
        let x = randn(&[2, 2, 4, 4], 7);
        let w = randn(&[2, 2, 3, 3], 8);
        let y = conv2d(&x, &w, None, g);
        let go = Tensor::ones(y.shape().to_vec());
        let gw = conv2d_grad_weight(&go, &x, w.shape(), g);
        let eps = 1e-2;
        for &probe in &[0usize, 5, 17, 35] {
            let mut wp = w.clone();
            wp.data_mut()[probe] += eps;
            let mut wm = w.clone();
            wm.data_mut()[probe] -= eps;
            let fd = (conv2d(&x, &wp, None, g).sum() - conv2d(&x, &wm, None, g).sum()) / (2.0 * eps);
            assert!((gw.data()[probe] - fd).abs() < 2e-2, "probe {probe}");
        }
    }

    #[test]
    fn grad_bias_sums_spatially() {
        let go = Tensor::ones(vec![2, 3, 4, 4]);
        let gb = conv2d_grad_bias(&go);
        assert_eq!(gb.data(), &[32.0, 32.0, 32.0]);
    }

    #[test]
    fn out_size_arithmetic() {
        let g = ConvGeom { kh: 3, kw: 3, stride: 1, pad: 1 };
        assert_eq!(g.out_size(10, 20), (10, 20));
        let g2 = ConvGeom { kh: 2, kw: 2, stride: 2, pad: 0 };
        assert_eq!(g2.out_size(10, 20), (5, 10));
    }
}
