//! Layer-wise FSDP pipelining on the discrete-event engine.
//!
//! The paper's layer-wise FSDP wrapping (Sec. III-D) gathers one layer's
//! parameters at a time, overlapping the gather of layer `l+1` with the
//! compute of layer `l` on separate streams. This module builds that
//! schedule as a task DAG on [`crate::des::Simulator`] and returns the
//! makespan, giving a mechanistic (rather than closed-form) estimate of the
//! exposed communication.

use crate::des::{Simulator, TaskId};

/// Per-layer timings of the pipelined schedule.
#[derive(Debug, Clone, Copy)]
pub struct PipelineTimings {
    /// Compute time of one layer (forward or backward leg), seconds.
    pub layer_compute: f64,
    /// All-gather time of one layer's parameter shard, seconds.
    pub layer_gather: f64,
    /// Reduce-scatter time of one layer's gradient shard, seconds.
    pub layer_reduce: f64,
}

/// Simulate a forward+backward pass with layer-wise FSDP overlap. Returns
/// the makespan in seconds.
///
/// Schedule: gathers run on the `comm` stream, compute on the `gpu` stream.
/// Forward: compute(l) needs gather(l); gather(l+1) is issued as soon as
/// the comm stream frees. Backward mirrors it, plus a reduce-scatter of
/// each layer's gradients that can also overlap the next layer's compute.
pub fn fsdp_pipelined_step(layers: usize, t: PipelineTimings) -> f64 {
    assert!(layers >= 1);
    let mut sim = Simulator::new();
    // Forward.
    let mut gathers: Vec<TaskId> = Vec::with_capacity(layers);
    for l in 0..layers {
        // Gathers serialize on the comm stream in issue order.
        let g = sim.add_task("comm", t.layer_gather, &[]);
        gathers.push(g);
        let _ = l;
    }
    let mut prev_compute: Option<TaskId> = None;
    let mut fwd_computes = Vec::with_capacity(layers);
    for (l, &g) in gathers.iter().enumerate() {
        let deps: Vec<TaskId> = match prev_compute {
            Some(c) => vec![g, c],
            None => vec![g],
        };
        let c = sim.add_task("gpu", t.layer_compute, &deps);
        fwd_computes.push(c);
        prev_compute = Some(c);
        let _ = l;
    }
    // Backward: layers in reverse; each needs its parameters again
    // (re-gather), compute, then reduce-scatter its gradient shard.
    let mut prev = *fwd_computes.last().expect("at least one layer");
    for _l in (0..layers).rev() {
        let g = sim.add_task("comm", t.layer_gather, &[]);
        let c = sim.add_task("gpu", 2.0 * t.layer_compute, &[g, prev]);
        let _rs = sim.add_task("comm", t.layer_reduce, &[c]);
        prev = c;
    }
    sim.run()
}

/// The non-overlapped (serial) reference: every gather and reduce exposed.
pub fn fsdp_serial_step(layers: usize, t: PipelineTimings) -> f64 {
    let fwd = layers as f64 * (t.layer_gather + t.layer_compute);
    let bwd = layers as f64 * (t.layer_gather + 2.0 * t.layer_compute + t.layer_reduce);
    fwd + bwd
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timings(compute: f64, gather: f64, reduce: f64) -> PipelineTimings {
        PipelineTimings { layer_compute: compute, layer_gather: gather, layer_reduce: reduce }
    }

    #[test]
    fn overlap_beats_serial() {
        let t = timings(1.0, 0.5, 0.5);
        let pipelined = fsdp_pipelined_step(8, t);
        let serial = fsdp_serial_step(8, t);
        assert!(pipelined < serial, "pipelined {pipelined} vs serial {serial}");
    }

    #[test]
    fn compute_bound_case_hides_almost_all_comm() {
        // Gathers much cheaper than compute: makespan ~ total compute plus
        // one exposed gather at each end.
        let t = timings(1.0, 0.05, 0.05);
        let layers = 10;
        let pipelined = fsdp_pipelined_step(layers, t);
        let pure_compute = layers as f64 * 3.0 * t.layer_compute;
        assert!(pipelined < pure_compute * 1.1, "{pipelined} vs compute floor {pure_compute}");
        assert!(pipelined >= pure_compute);
    }

    #[test]
    fn comm_bound_case_is_limited_by_comm_stream() {
        // Gathers dominate: makespan approaches the serialized comm time.
        let t = timings(0.05, 1.0, 1.0);
        let layers = 6;
        let pipelined = fsdp_pipelined_step(layers, t);
        let comm_floor = layers as f64 * (2.0 * t.layer_gather + t.layer_reduce);
        assert!(pipelined >= comm_floor * 0.9, "{pipelined} vs comm floor {comm_floor}");
        assert!(pipelined < fsdp_serial_step(layers, t));
    }

    #[test]
    fn single_layer_degenerates_sanely() {
        let t = timings(1.0, 0.5, 0.25);
        let p = fsdp_pipelined_step(1, t);
        // gather + fwd + re-gather(overlapped with fwd) + bwd: at least
        // gather + 3*compute.
        assert!(p >= 0.5 + 3.0);
        assert!(p <= fsdp_serial_step(1, t));
    }

    #[test]
    fn makespan_monotone_in_layers() {
        let t = timings(0.7, 0.3, 0.2);
        let mut prev = 0.0;
        for layers in [1usize, 2, 4, 8] {
            let m = fsdp_pipelined_step(layers, t);
            assert!(m > prev);
            prev = m;
        }
    }
}
