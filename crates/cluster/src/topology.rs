//! Hardware topology of the simulated cluster.
//!
//! Frontier numbers from the paper (Sec. IV) and public system docs: each
//! node has one 64-core EPYC and 4 MI250X cards; each card holds two GCDs
//! ("GPUs") with 64 GB HBM each; GCDs on a card talk over in-package
//! Infinity Fabric, cards over 50 GB/s Infinity Fabric links, nodes over
//! 100 GB/s Slingshot-11.

use serde::{Deserialize, Serialize};

/// One GPU (MI250X GCD).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// HBM capacity in bytes.
    pub mem_bytes: u64,
    /// Peak BF16 throughput in FLOP/s.
    pub peak_bf16_flops: f64,
    /// HBM bandwidth in bytes/s.
    pub hbm_bw: f64,
}

/// A communication link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Bandwidth in bytes/s.
    pub bandwidth: f64,
    /// Per-message latency in seconds.
    pub latency: f64,
}

/// Hierarchy level over which a group of ranks communicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CommLevel {
    /// Same MI250X card (two GCDs).
    IntraCard,
    /// Different cards, same node.
    InterCard,
    /// Different nodes.
    InterNode,
}

/// The whole cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// GPU (GCD) description.
    pub gpu: GpuSpec,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// GPUs per MI250X card.
    pub gpus_per_card: usize,
    /// Link between the two GCDs of a card.
    pub intra_card: LinkSpec,
    /// Link between cards of a node.
    pub inter_card: LinkSpec,
    /// Link between nodes (per-node NIC bandwidth).
    pub inter_node: LinkSpec,
    /// Total number of nodes available.
    pub num_nodes: usize,
}

impl ClusterSpec {
    /// The Frontier configuration used throughout the paper.
    pub fn frontier() -> Self {
        Self {
            gpu: GpuSpec {
                mem_bytes: 64 * (1 << 30),
                // MI250X: 383 TFLOP/s BF16 per card => 191.5 per GCD.
                peak_bf16_flops: 191.5e12,
                hbm_bw: 1.6e12,
            },
            gpus_per_node: 8,
            gpus_per_card: 2,
            intra_card: LinkSpec { bandwidth: 200e9, latency: 1e-6 },
            inter_card: LinkSpec { bandwidth: 50e9, latency: 2e-6 },
            inter_node: LinkSpec { bandwidth: 100e9, latency: 5e-6 },
            num_nodes: 9408,
        }
    }

    /// Total GPU count.
    pub fn total_gpus(&self) -> usize {
        self.num_nodes * self.gpus_per_node
    }

    /// Node index of a global rank.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.gpus_per_node
    }

    /// Card index (global) of a rank.
    pub fn card_of(&self, rank: usize) -> usize {
        rank / self.gpus_per_card
    }

    /// The widest hierarchy level spanned by a group of ranks — this is the
    /// bottleneck link for a collective over the group.
    pub fn group_level(&self, ranks: &[usize]) -> CommLevel {
        assert!(!ranks.is_empty());
        let node0 = self.node_of(ranks[0]);
        let card0 = self.card_of(ranks[0]);
        let mut level = CommLevel::IntraCard;
        for &r in &ranks[1..] {
            if self.node_of(r) != node0 {
                return CommLevel::InterNode;
            }
            if self.card_of(r) != card0 {
                level = CommLevel::InterCard;
            }
        }
        level
    }

    /// Link description for a hierarchy level.
    pub fn link(&self, level: CommLevel) -> LinkSpec {
        match level {
            CommLevel::IntraCard => self.intra_card,
            CommLevel::InterCard => self.inter_card,
            CommLevel::InterNode => self.inter_node,
        }
    }

    /// Effective per-GPU bandwidth for a collective over `ranks`: the
    /// bottleneck link's bandwidth, shared by the ranks of this group living
    /// on the same node when crossing node boundaries.
    pub fn effective_bandwidth(&self, ranks: &[usize]) -> f64 {
        let level = self.group_level(ranks);
        let link = self.link(level);
        if level == CommLevel::InterNode {
            // The node NIC is shared by every group member on that node.
            let mut per_node = std::collections::BTreeMap::new();
            for &r in ranks {
                *per_node.entry(self.node_of(r)).or_insert(0usize) += 1;
            }
            let max_sharers = per_node.values().copied().max().unwrap_or(1) as f64;
            link.bandwidth / max_sharers
        } else {
            link.bandwidth
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_scale_matches_paper() {
        let c = ClusterSpec::frontier();
        assert_eq!(c.total_gpus(), 75_264);
        // The paper's largest run: 4096 nodes = 32,768 GPUs fits.
        assert!(4096 * c.gpus_per_node <= c.total_gpus());
        assert_eq!(c.gpu.mem_bytes, 64 * (1 << 30));
    }

    #[test]
    fn rank_mapping() {
        let c = ClusterSpec::frontier();
        assert_eq!(c.node_of(7), 0);
        assert_eq!(c.node_of(8), 1);
        assert_eq!(c.card_of(1), 0);
        assert_eq!(c.card_of(2), 1);
    }

    #[test]
    fn group_levels() {
        let c = ClusterSpec::frontier();
        assert_eq!(c.group_level(&[0, 1]), CommLevel::IntraCard);
        assert_eq!(c.group_level(&[0, 2]), CommLevel::InterCard);
        assert_eq!(c.group_level(&[0, 5, 7]), CommLevel::InterCard);
        assert_eq!(c.group_level(&[0, 8]), CommLevel::InterNode);
        assert_eq!(c.group_level(&[3]), CommLevel::IntraCard);
    }

    #[test]
    fn bandwidth_hierarchy_ordering() {
        let c = ClusterSpec::frontier();
        assert!(c.intra_card.bandwidth > c.inter_card.bandwidth);
        // Paper: 50 GB/s between cards, 100 GB/s between nodes (NIC), but
        // the NIC is shared by 8 GPUs so per-GPU inter-node < inter-card.
        let inter_node_group: Vec<usize> = (0..16).collect(); // 2 full nodes
        assert!(c.effective_bandwidth(&inter_node_group) < c.inter_card.bandwidth);
    }

    #[test]
    fn effective_bandwidth_sharing() {
        let c = ClusterSpec::frontier();
        // One GPU per node across 4 nodes: full NIC each.
        let sparse: Vec<usize> = (0..4).map(|n| n * 8).collect();
        assert_eq!(c.effective_bandwidth(&sparse), 100e9);
        // 8 GPUs of one node + 1 remote: NIC shared by 8.
        let mut dense: Vec<usize> = (0..8).collect();
        dense.push(8);
        assert_eq!(c.effective_bandwidth(&dense), 100e9 / 8.0);
    }
}
