//! A small discrete-event simulator for overlapping compute and
//! communication streams.
//!
//! Tasks form a DAG; each task runs on a named *resource* (e.g. "gpu0.compute"
//! or "gpu0.comm") that serializes its tasks. A task starts when all of its
//! dependencies have finished and its resource is free; the makespan of the
//! DAG is the simulated step time. This is the standard abstraction for
//! modelling overlapped all-reduce / kernel execution.

use std::collections::BTreeMap;

/// Identifier of a scheduled task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(usize);

struct Task {
    duration: f64,
    resource: String,
    deps: Vec<TaskId>,
    finish: Option<f64>,
}

/// Discrete-event DAG simulator.
#[derive(Default)]
pub struct Simulator {
    tasks: Vec<Task>,
}

impl Simulator {
    /// Create an empty simulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a task with a duration (seconds), a serializing resource name and
    /// dependencies. Returns its id.
    pub fn add_task(&mut self, resource: impl Into<String>, duration: f64, deps: &[TaskId]) -> TaskId {
        assert!(duration >= 0.0, "negative duration");
        for d in deps {
            assert!(d.0 < self.tasks.len(), "dependency on unknown task");
        }
        self.tasks.push(Task {
            duration,
            resource: resource.into(),
            deps: deps.to_vec(),
            finish: None,
        });
        TaskId(self.tasks.len() - 1)
    }

    /// Run the simulation; returns the makespan (time when the last task
    /// finishes). Tasks on the same resource run in submission order.
    pub fn run(&mut self) -> f64 {
        // Submission order is a valid topological order because deps must
        // already exist when a task is added.
        let mut resource_free: BTreeMap<String, f64> = BTreeMap::new();
        let mut makespan = 0.0f64;
        for i in 0..self.tasks.len() {
            let ready = self.tasks[i]
                .deps
                .iter()
                .map(|d| self.tasks[d.0].finish.expect("dep not finished"))
                .fold(0.0f64, f64::max);
            let free = resource_free.get(&self.tasks[i].resource).copied().unwrap_or(0.0);
            let start = ready.max(free);
            let finish = start + self.tasks[i].duration;
            self.tasks[i].finish = Some(finish);
            resource_free.insert(self.tasks[i].resource.clone(), finish);
            makespan = makespan.max(finish);
        }
        makespan
    }

    /// Finish time of a task (after [`Simulator::run`]).
    pub fn finish_time(&self, id: TaskId) -> f64 {
        self.tasks[id.0].finish.expect("run() not called")
    }
}

/// Convenience: step time when `compute` and `comm` can fully overlap except
/// for a non-overlappable `exposed` fraction of the communication.
pub fn overlapped_time(compute: f64, comm: f64, exposed_fraction: f64) -> f64 {
    let exposed = comm * exposed_fraction.clamp(0.0, 1.0);
    let hidden = comm - exposed;
    compute.max(hidden) + exposed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_tasks_on_one_resource() {
        let mut sim = Simulator::new();
        let a = sim.add_task("gpu", 1.0, &[]);
        let b = sim.add_task("gpu", 2.0, &[]);
        assert_eq!(sim.run(), 3.0);
        assert_eq!(sim.finish_time(a), 1.0);
        assert_eq!(sim.finish_time(b), 3.0);
    }

    #[test]
    fn parallel_resources_overlap() {
        let mut sim = Simulator::new();
        sim.add_task("compute", 3.0, &[]);
        sim.add_task("comm", 2.0, &[]);
        assert_eq!(sim.run(), 3.0);
    }

    #[test]
    fn dependencies_serialize_across_resources() {
        let mut sim = Simulator::new();
        let a = sim.add_task("compute", 2.0, &[]);
        let b = sim.add_task("comm", 1.5, &[a]);
        let _ = sim.add_task("compute", 1.0, &[b]);
        assert_eq!(sim.run(), 4.5);
    }

    #[test]
    fn diamond_dag() {
        let mut sim = Simulator::new();
        let root = sim.add_task("r0", 1.0, &[]);
        let left = sim.add_task("r1", 2.0, &[root]);
        let right = sim.add_task("r2", 3.0, &[root]);
        let join = sim.add_task("r0", 1.0, &[left, right]);
        assert_eq!(sim.run(), 5.0);
        assert_eq!(sim.finish_time(join), 5.0);
    }

    #[test]
    fn pipelined_layers_overlap_comm() {
        // Classic layer-wise FSDP pattern: gather(l+1) overlaps compute(l).
        let mut sim = Simulator::new();
        let mut prev_gather = sim.add_task("comm", 0.5, &[]);
        let mut prev_compute = None;
        for _ in 0..4 {
            let deps: Vec<TaskId> = match prev_compute {
                Some(c) => vec![prev_gather, c],
                None => vec![prev_gather],
            };
            let compute = sim.add_task("compute", 1.0, &deps);
            prev_gather = sim.add_task("comm", 0.5, &[]);
            prev_compute = Some(compute);
        }
        // 4 layers x 1.0 compute, gathers hidden: makespan ~ 0.5 + 4.0.
        let t = sim.run();
        assert!((t - 4.5).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn overlapped_time_limits() {
        assert_eq!(overlapped_time(3.0, 2.0, 0.0), 3.0); // fully hidden
        assert_eq!(overlapped_time(3.0, 2.0, 1.0), 5.0); // fully exposed
        assert_eq!(overlapped_time(1.0, 4.0, 0.5), 2.0f64.max(1.0) + 2.0);
    }

    #[test]
    #[should_panic(expected = "unknown task")]
    fn bad_dependency_panics() {
        let mut sim = Simulator::new();
        sim.add_task("r", 1.0, &[TaskId(7)]);
    }
}
