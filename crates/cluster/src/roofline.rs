//! Compute-time model: FLOPs over calibrated sustained throughput.
//!
//! The simulator predicts kernel time as `flops / (peak * efficiency)`.
//! Efficiency is calibrated per model-size bucket against the sustained
//! throughput the paper reports (Sec. V-D): the 9.5M model underutilizes the
//! hardware (363 PFLOPS at 32,768 GPUs ≈ 5.8% of peak) while the 10B model
//! reaches 1.8 EFLOPS (≈ 29% of peak). Small kernels also pay a fixed launch
//! overhead, which is what bends the strong-scaling curves at tiny
//! per-GPU workloads.

use crate::topology::GpuSpec;
use serde::{Deserialize, Serialize};

/// Calibrated fraction of peak BF16 throughput a model sustains, plus the
/// fixed per-step kernel-launch overhead.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GpuEfficiency {
    /// Fraction of peak FLOP/s sustained by the main kernels.
    pub mfu: f64,
    /// Fixed overhead per training step (kernel launches, host sync), s.
    pub step_overhead: f64,
}

impl GpuEfficiency {
    /// Calibration by parameter count, anchored to the paper's sustained
    /// throughput numbers at 4096 nodes:
    /// 9.5M → 363 PFLOPS, 126M → 1.3 EF, 1B → 1.5 EF, 10B → 1.8 EF
    /// over 32,768 GPUs × 191.5 TF peak = 6.27 EF total peak.
    pub fn for_model_size(params: u64) -> Self {
        let mfu = if params < 50_000_000 {
            0.058
        } else if params < 500_000_000 {
            0.207
        } else if params < 5_000_000_000 {
            0.239
        } else {
            0.287
        };
        Self { mfu, step_overhead: 1.2e-4 }
    }
}

/// Time in seconds to execute `flops` on one GPU at the given efficiency.
pub fn compute_time(flops: f64, gpu: &GpuSpec, eff: GpuEfficiency) -> f64 {
    assert!(flops >= 0.0);
    flops / (gpu.peak_bf16_flops * eff.mfu) + eff.step_overhead
}

/// Sustained throughput implied by executing `flops` in `seconds` across
/// `gpus` devices (FLOP/s).
pub fn sustained_flops(flops_per_gpu: f64, seconds: f64, gpus: usize) -> f64 {
    flops_per_gpu * gpus as f64 / seconds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ClusterSpec;

    #[test]
    fn efficiency_buckets_are_monotone() {
        let e95 = GpuEfficiency::for_model_size(9_500_000).mfu;
        let e126 = GpuEfficiency::for_model_size(126_000_000).mfu;
        let e1b = GpuEfficiency::for_model_size(1_000_000_000).mfu;
        let e10b = GpuEfficiency::for_model_size(10_000_000_000).mfu;
        assert!(e95 < e126 && e126 < e1b && e1b < e10b);
    }

    #[test]
    fn calibration_reproduces_paper_throughput() {
        // 10B at 32,768 GPUs: sustained = mfu * peak * gpus ≈ 1.8 EF.
        let gpu = ClusterSpec::frontier().gpu;
        let eff = GpuEfficiency::for_model_size(10_000_000_000);
        let sustained = eff.mfu * gpu.peak_bf16_flops * 32_768.0;
        assert!((sustained / 1.8e18 - 1.0).abs() < 0.03, "sustained {sustained:.3e}");
        // 9.5M: ≈ 363 PFLOPS.
        let eff_s = GpuEfficiency::for_model_size(9_500_000);
        let sustained_s = eff_s.mfu * gpu.peak_bf16_flops * 32_768.0;
        assert!((sustained_s / 363e15 - 1.0).abs() < 0.05, "sustained {sustained_s:.3e}");
    }

    #[test]
    fn compute_time_scales_linearly_above_overhead() {
        let gpu = ClusterSpec::frontier().gpu;
        let eff = GpuEfficiency { mfu: 0.25, step_overhead: 0.0 };
        let t1 = compute_time(1e12, &gpu, eff);
        let t2 = compute_time(2e12, &gpu, eff);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_dominates_tiny_kernels() {
        let gpu = ClusterSpec::frontier().gpu;
        let eff = GpuEfficiency { mfu: 0.25, step_overhead: 1e-3 };
        let t = compute_time(1e6, &gpu, eff);
        assert!(t > 0.99e-3 && t < 1.01e-3);
    }

    #[test]
    fn sustained_throughput_arithmetic() {
        let s = sustained_flops(1e12, 0.5, 1000);
        assert!((s - 2e15).abs() < 1.0);
    }
}
