//! Per-GPU training memory accounting with OOM detection.
//!
//! This model reproduces the mechanism behind every OOM / max-sequence-length
//! entry in the paper's Tables II and III: BF16 weights and gradients sharded
//! by tensor-parallel × FSDP degree, full-precision Adam state, linear
//! activation memory in the effective per-GPU sequence length, the *quadratic*
//! score matrices of non-flash attention, and the input/output staging
//! buffers at image resolution.

use crate::topology::GpuSpec;
use serde::{Deserialize, Serialize};

/// Bytes of one BF16 element.
const BF16: f64 = 2.0;
/// Adam with fp32 master weights: master + m + v = 12 bytes per parameter.
const ADAM_BYTES_PER_PARAM: f64 = 12.0;

/// Static description of a training configuration's memory behaviour.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainingMemoryModel {
    /// Total model parameters.
    pub params_total: u64,
    /// Transformer depth.
    pub layers: usize,
    /// Embedding dimension.
    pub embed_dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Tensor-parallel degree (parameters stay sharded).
    pub tp_shard: usize,
    /// FSDP degree (parameters sharded, gathered one layer at a time).
    pub fsdp_shard: usize,
    /// Whether attention uses the flash (streaming) kernel.
    pub flash_attention: bool,
    /// Activation bytes per token per layer = `act_factor * embed_dim * 2`.
    /// Covers QKV, attention output, the 4x MLP intermediate and residuals.
    pub act_factor: f64,
}

impl TrainingMemoryModel {
    /// Reasonable defaults for a ViT trained with activation recomputation
    /// disabled (the paper does not mention checkpointing).
    pub fn new(params_total: u64, layers: usize, embed_dim: usize, heads: usize) -> Self {
        Self {
            params_total,
            layers,
            embed_dim,
            heads,
            tp_shard: 1,
            fsdp_shard: 1,
            flash_attention: true,
            act_factor: 14.0,
        }
    }

    /// Set sharding degrees.
    pub fn with_sharding(mut self, tp: usize, fsdp: usize) -> Self {
        assert!(tp >= 1 && fsdp >= 1);
        self.tp_shard = tp;
        self.fsdp_shard = fsdp;
        self
    }

    /// Select the attention kernel.
    pub fn with_flash(mut self, flash: bool) -> Self {
        self.flash_attention = flash;
        self
    }

    /// Memory required on one GPU for a training step.
    ///
    /// * `seq_per_gpu` — effective ViT sequence length on this GPU (after
    ///   channel aggregation / compression / tiling / low-res operation).
    /// * `out_pixels_per_gpu` / `in_pixels_per_gpu` — staging buffer sizes
    ///   (pixels × channels) this GPU touches for decode and tokenize.
    pub fn step_memory(
        &self,
        seq_per_gpu: u64,
        out_pixels_per_gpu: u64,
        in_pixels_per_gpu: u64,
    ) -> MemoryBreakdown {
        let shard = (self.tp_shard * self.fsdp_shard) as f64;
        let p = self.params_total as f64;
        let weights = p / shard * BF16;
        // Layer-wise FSDP gathers one layer at a time (paper Sec. III-D):
        // transient full-layer copy, divided only by tensor parallelism.
        let gathered_layer = p / self.layers.max(1) as f64 / self.tp_shard as f64 * BF16;
        let grads = p / shard * BF16;
        let optimizer = p / shard * ADAM_BYTES_PER_PARAM;
        let s = seq_per_gpu as f64;
        let activations =
            self.layers as f64 * s * self.embed_dim as f64 / self.tp_shard as f64 * self.act_factor * BF16;
        let attention = if self.flash_attention {
            // Streaming softmax: O(block^2) working set per SM — negligible.
            64.0 * 1024.0 * 1024.0
        } else {
            // Scores + softmax probabilities + their gradients, per head,
            // fp32 softmax for stability: ~10 bytes per score element,
            // divided across tensor-parallel heads.
            10.0 * s * s * self.heads as f64 / self.tp_shard as f64
        };
        let io_buffers = (out_pixels_per_gpu as f64 * 4.0 + in_pixels_per_gpu as f64 * 2.0) * BF16;
        MemoryBreakdown {
            weights_bytes: (weights + gathered_layer) as u64,
            grads_bytes: grads as u64,
            optimizer_bytes: optimizer as u64,
            activation_bytes: activations as u64,
            attention_bytes: attention as u64,
            io_bytes: io_buffers as u64,
            overhead_bytes: 2 * (1 << 30),
        }
    }

    /// Largest effective per-GPU sequence length that fits in `gpu` memory,
    /// holding the staging buffers proportional to the sequence via
    /// `pixels_per_token` factors. Binary search over the monotone
    /// [`TrainingMemoryModel::step_memory`].
    pub fn max_seq_per_gpu(&self, gpu: &GpuSpec, out_pixels_per_token: f64, in_pixels_per_token: f64) -> u64 {
        let fits = |s: u64| {
            self.step_memory(
                s,
                (s as f64 * out_pixels_per_token) as u64,
                (s as f64 * in_pixels_per_token) as u64,
            )
            .fits(gpu)
        };
        if !fits(1) {
            return 0;
        }
        let mut lo = 1u64;
        let mut hi = 1u64 << 40;
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if fits(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// Itemized per-GPU memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryBreakdown {
    /// Sharded BF16 weights plus the transiently gathered FSDP layer.
    pub weights_bytes: u64,
    /// Sharded BF16 gradients.
    pub grads_bytes: u64,
    /// Adam master weights and moments (fp32).
    pub optimizer_bytes: u64,
    /// Layer activations kept for backward.
    pub activation_bytes: u64,
    /// Attention working set (quadratic without flash).
    pub attention_bytes: u64,
    /// Input/output staging buffers.
    pub io_bytes: u64,
    /// Allocator and framework overhead.
    pub overhead_bytes: u64,
}

impl MemoryBreakdown {
    /// Total bytes (saturating: absurd configurations cap at `u64::MAX`
    /// instead of overflowing, so OOM checks stay correct).
    pub fn total(&self) -> u64 {
        self.weights_bytes
            .saturating_add(self.grads_bytes)
            .saturating_add(self.optimizer_bytes)
            .saturating_add(self.activation_bytes)
            .saturating_add(self.attention_bytes)
            .saturating_add(self.io_bytes)
            .saturating_add(self.overhead_bytes)
    }

    /// Does this fit on the GPU?
    pub fn fits(&self, gpu: &GpuSpec) -> bool {
        self.total() <= gpu.mem_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ClusterSpec;

    fn gpu() -> GpuSpec {
        ClusterSpec::frontier().gpu
    }

    /// Paper model configs (Sec. IV "Model Configuration").
    fn model_9_5m() -> TrainingMemoryModel {
        TrainingMemoryModel::new(9_500_000, 6, 256, 4)
    }

    fn model_10b() -> TrainingMemoryModel {
        TrainingMemoryModel::new(10_000_000_000, 11, 8192, 32)
    }

    #[test]
    fn non_flash_attention_is_quadratic() {
        let m = model_9_5m().with_flash(false);
        let a = m.step_memory(10_000, 0, 0).attention_bytes;
        let b = m.step_memory(20_000, 0, 0).attention_bytes;
        assert!((b as f64 / a as f64 - 4.0).abs() < 0.01);
    }

    #[test]
    fn vit_9_5m_ooms_near_paper_boundary() {
        // Paper Table III: standard ViT (no flash benefit assumed for the
        // attention matrix, upsample-first) caps at ~25K tokens on one GPU.
        let m = model_9_5m().with_flash(false);
        let ok = m.step_memory(25_000, 25_000 * 4, 25_000 * 4);
        assert!(ok.fits(&gpu()), "25K tokens should fit: {} GB", ok.total() >> 30);
        let bad = m.step_memory(90_000, 90_000 * 4, 90_000 * 4);
        assert!(!bad.fits(&gpu()), "90K tokens must OOM: {} GB", bad.total() >> 30);
    }

    #[test]
    fn vit_777k_tokens_oom() {
        // Table II(a): ViT at sequence length 777,660 OOMs even on 128 GPUs
        // (sequence not sharded by DDP).
        let m = model_9_5m().with_flash(false);
        let mem = m.step_memory(777_660, 777_660 * 4, 777_660 * 4);
        assert!(!mem.fits(&gpu()));
    }

    #[test]
    fn unsharded_10b_ooms_anywhere() {
        // Table III row 2: 10B ViT on 8 GPUs without model sharding OOMs
        // on weights+optimizer alone.
        let m = model_10b();
        let mem = m.step_memory(1, 1, 1);
        assert!(!mem.fits(&gpu()), "10B unsharded needs {} GB", mem.total() >> 30);
    }

    #[test]
    fn sharded_10b_fits() {
        // With TP=8 x FSDP=64 (512 GPUs) the 10B model's static memory fits.
        let m = model_10b().with_sharding(8, 64);
        let mem = m.step_memory(10_000, 40_000, 40_000);
        assert!(mem.fits(&gpu()), "sharded 10B needs {} GB", mem.total() >> 30);
    }

    #[test]
    fn flash_raises_max_seq_dramatically() {
        let naive = model_9_5m().with_flash(false).max_seq_per_gpu(&gpu(), 4.0, 4.0);
        let flash = model_9_5m().max_seq_per_gpu(&gpu(), 4.0, 4.0);
        assert!(flash > naive * 20, "flash {flash} vs naive {naive}");
    }

    #[test]
    fn sharding_frees_memory_for_sequence() {
        let solo = model_10b().with_sharding(1, 8).max_seq_per_gpu(&gpu(), 4.0, 4.0);
        let wide = model_10b().with_sharding(8, 64).max_seq_per_gpu(&gpu(), 4.0, 4.0);
        assert!(wide > solo);
    }

    #[test]
    fn max_seq_is_exact_boundary() {
        let m = model_9_5m();
        let s = m.max_seq_per_gpu(&gpu(), 4.0, 4.0);
        assert!(m.step_memory(s, s * 4, s * 4).fits(&gpu()));
        assert!(!m.step_memory(s + 1, (s + 1) * 4, (s + 1) * 4).fits(&gpu()));
    }

    #[test]
    fn breakdown_total_sums_components() {
        let b = model_9_5m().step_memory(1000, 4000, 4000);
        let manual = b.weights_bytes
            + b.grads_bytes
            + b.optimizer_bytes
            + b.activation_bytes
            + b.attention_bytes
            + b.io_bytes
            + b.overhead_bytes;
        assert_eq!(b.total(), manual);
    }
}
