//! # orbit2-cluster
//!
//! A performance simulator for a Frontier-like GPU cluster — the substitute
//! for the real machine the paper ran on (32,768 GPUs we do not have).
//!
//! The simulator models exactly the mechanisms the paper's scaling results
//! depend on:
//!
//! * [`topology`] — the hardware hierarchy of Sec. IV "System Details": 8
//!   GPUs (GCDs) per node in 4 MI250X cards, Infinity Fabric within a card,
//!   50 GB/s fabric between cards, 100 GB/s Slingshot-11 between nodes, 64
//!   GB HBM per GPU;
//! * [`memory`] — per-GPU training memory accounting (sharded weights,
//!   gradients, Adam moments, activations, attention working set) with OOM
//!   detection, reproducing every OOM / max-sequence-length cell of Tables
//!   II and III;
//! * [`collective`] — α-β cost models for ring all-reduce, all-gather,
//!   reduce-scatter and broadcast, parameterized by the *bottleneck link* of
//!   the participating group;
//! * [`roofline`] — compute-time model: FLOPs / (peak BF16 throughput ×
//!   an efficiency factor calibrated per model-size bucket against the
//!   paper's reported sustained throughput);
//! * [`des`] — a small discrete-event engine used to overlap compute and
//!   communication streams when estimating step times.

pub mod collective;
pub mod des;
pub mod memory;
pub mod pipeline;
pub mod roofline;
pub mod topology;

pub use collective::{collective_time, Collective};
pub use des::{Simulator, TaskId};
pub use memory::{MemoryBreakdown, TrainingMemoryModel};
pub use roofline::{compute_time, GpuEfficiency};
pub use topology::{ClusterSpec, CommLevel, GpuSpec, LinkSpec};
