//! α-β cost models for the collectives used by the orthogonal parallelisms.
//!
//! Ring algorithms: an all-reduce of `b` bytes over `n` ranks moves
//! `2(n-1)/n · b` per rank; all-gather/reduce-scatter move `(n-1)/n · b`.
//! Latency contributes one link-latency per ring step. The bandwidth used is
//! the *bottleneck* of the group's spanning level (see
//! [`ClusterSpec::effective_bandwidth`]).

use crate::topology::ClusterSpec;

/// The collective operations the parallelism layer issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Collective {
    /// Sum-reduce to all ranks (gradient averaging, tensor-parallel sync).
    AllReduce,
    /// Gather shards to all ranks (FSDP parameter gathering).
    AllGather,
    /// Reduce then scatter shards (FSDP gradient reduction).
    ReduceScatter,
    /// One-to-all broadcast.
    Broadcast,
    /// Point-to-point halo exchange with direct neighbours.
    HaloExchange,
}

/// Time in seconds for a collective of `bytes` over the ranks in `group`.
///
/// Returns 0 for single-rank groups (no communication needed).
pub fn collective_time(op: Collective, bytes: u64, group: &[usize], cluster: &ClusterSpec) -> f64 {
    let n = group.len();
    if n <= 1 {
        return 0.0;
    }
    let bw = cluster.effective_bandwidth(group);
    let lat = cluster.link(cluster.group_level(group)).latency;
    let b = bytes as f64;
    let nf = n as f64;
    // Latency steps: libraries switch from the bandwidth-optimal ring
    // (n-1 steps) to tree/recursive-doubling algorithms (~2 log2 n steps)
    // once groups get large; model the better of the two.
    let lat_steps = (nf - 1.0).min(2.0 * nf.log2().ceil().max(1.0));
    match op {
        Collective::AllReduce => 2.0 * (nf - 1.0) / nf * b / bw + 2.0 * lat_steps * lat,
        Collective::AllGather | Collective::ReduceScatter => (nf - 1.0) / nf * b / bw + lat_steps * lat,
        Collective::Broadcast => b / bw + (nf.log2().ceil()) * lat,
        // Halo exchange: each rank swaps with up to 4 neighbours in
        // parallel; time is one neighbour volume each way.
        Collective::HaloExchange => 2.0 * b / bw + 2.0 * lat,
    }
}

/// A convenience: time for a hierarchical all-reduce that reduces within
/// nodes first, then across nodes, then broadcasts back — the standard
/// optimization for gradient averaging over many nodes.
pub fn hierarchical_allreduce_time(bytes: u64, group: &[usize], cluster: &ClusterSpec) -> f64 {
    let n = group.len();
    if n <= 1 {
        return 0.0;
    }
    // Partition by node.
    let mut per_node: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for &r in group {
        per_node.entry(cluster.node_of(r)).or_default().push(r);
    }
    if per_node.len() == 1 {
        return collective_time(Collective::AllReduce, bytes, group, cluster);
    }
    // Intra-node reduce-scatter + inter-node all-reduce over node leaders +
    // intra-node all-gather.
    let widest_node = per_node.values().max_by_key(|v| v.len()).unwrap();
    let intra = collective_time(Collective::ReduceScatter, bytes, widest_node, cluster)
        + collective_time(Collective::AllGather, bytes, widest_node, cluster);
    let leaders: Vec<usize> = per_node.values().map(|v| v[0]).collect();
    let shard = bytes / widest_node.len().max(1) as u64;
    let inter = collective_time(Collective::AllReduce, shard, &leaders, cluster);
    intra + inter
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c() -> ClusterSpec {
        ClusterSpec::frontier()
    }

    #[test]
    fn single_rank_is_free() {
        assert_eq!(collective_time(Collective::AllReduce, 1 << 30, &[3], &c()), 0.0);
    }

    #[test]
    fn allreduce_costs_twice_allgather() {
        let g: Vec<usize> = (0..8).collect();
        let ar = collective_time(Collective::AllReduce, 1 << 30, &g, &c());
        let ag = collective_time(Collective::AllGather, 1 << 30, &g, &c());
        assert!((ar / ag - 2.0).abs() < 0.01);
    }

    #[test]
    fn more_bytes_more_time() {
        let g: Vec<usize> = (0..4).collect();
        let t1 = collective_time(Collective::AllReduce, 1 << 20, &g, &c());
        let t2 = collective_time(Collective::AllReduce, 1 << 24, &g, &c());
        assert!(t2 > t1 * 10.0);
    }

    #[test]
    fn intra_node_faster_than_inter_node() {
        // Same byte volume, same group size: staying inside a node wins when
        // the NIC is shared (two half-populated nodes -> 4 GPUs per NIC).
        let intra: Vec<usize> = (0..8).collect();
        let inter: Vec<usize> = vec![0, 1, 2, 3, 8, 9, 10, 11];
        let ti = collective_time(Collective::AllReduce, 1 << 28, &intra, &c());
        let tx = collective_time(Collective::AllReduce, 1 << 28, &inter, &c());
        assert!(ti < tx, "intra {ti} vs inter {tx}");
        // One GPU per node, by contrast, owns the full 100 GB/s NIC and can
        // beat the 50 GB/s inter-card fabric (the mapping logic of Fig. 5
        // exploits exactly this asymmetry).
        let sparse: Vec<usize> = (0..8).map(|i| i * 8).collect();
        let ts = collective_time(Collective::AllReduce, 1 << 28, &sparse, &c());
        assert!(ts < ti);
    }

    #[test]
    fn allreduce_bandwidth_term_saturates_with_ranks() {
        // The 2(n-1)/n factor approaches 2: going from 16 to 1024 ranks (one
        // per node) should not blow up the bandwidth term.
        let g16: Vec<usize> = (0..16).map(|i| i * 8).collect();
        let g1024: Vec<usize> = (0..1024).map(|i| i * 8).collect();
        let t16 = collective_time(Collective::AllReduce, 1 << 28, &g16, &c());
        let t1024 = collective_time(Collective::AllReduce, 1 << 28, &g1024, &c());
        // Bandwidth term saturates at 2x the volume; only the per-step ring
        // latency grows with rank count.
        assert!(t1024 < t16 * 4.0, "ring all-reduce must scale: {t16} -> {t1024}");
        assert!(hierarchical_allreduce_time(1 << 28, &g1024, &c()) <= t1024);
    }

    #[test]
    fn hierarchical_beats_flat_at_scale() {
        let cluster = c();
        // 64 nodes fully populated.
        let group: Vec<usize> = (0..512).collect();
        let flat = collective_time(Collective::AllReduce, 1 << 30, &group, &cluster);
        let hier = hierarchical_allreduce_time(1 << 30, &group, &cluster);
        assert!(hier < flat, "hierarchical {hier} vs flat {flat}");
    }

    #[test]
    fn halo_exchange_is_cheap() {
        let g: Vec<usize> = (0..16).collect();
        let halo = collective_time(Collective::HaloExchange, 1 << 20, &g, &c());
        let ar = collective_time(Collective::AllReduce, 1 << 20, &g, &c());
        assert!(halo < ar);
    }
}
