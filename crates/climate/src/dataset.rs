//! Paired coarse→fine downscaling samples and train/val/test splits.
//!
//! Each sample at timestep `t` consists of the fine-resolution truth for the
//! output variables and the coarse (area-averaged) multi-channel input — the
//! 4× refinement task of the paper's Table I. Splits follow the paper's
//! convention of splitting along time (38y train / 2y val / 1y test ≈
//! 92.5% / 5% / 2.5%).

use crate::grid::LatLonGrid;
use crate::synth::WorldGenerator;
use crate::variables::VariableSet;
use orbit2_tensor::resize::downsample_area;
use orbit2_tensor::Tensor;

/// Which split a sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Split {
    /// Training partition.
    Train,
    /// Validation partition.
    Val,
    /// Held-out test partition.
    Test,
}

/// One paired sample: coarse input stack and fine target stack.
#[derive(Debug, Clone)]
pub struct DownscalingSample {
    /// Input `[C_in, h, w]` at coarse resolution.
    pub input: Tensor,
    /// Target `[C_out, H, W]` at fine resolution (`H = h * factor`).
    pub target: Tensor,
    /// Timestep index the sample was generated from.
    pub t: u64,
}

/// A deterministic, procedurally-generated downscaling dataset.
pub struct DownscalingDataset {
    world: WorldGenerator,
    /// Spatial refinement factor between input and target.
    pub factor: usize,
    /// Total number of samples (timesteps).
    pub num_samples: usize,
    train_frac: f64,
    val_frac: f64,
}

impl DownscalingDataset {
    /// Build a dataset over `fine_grid` with the given channel layout.
    ///
    /// `factor` must divide the fine grid dimensions.
    pub fn new(fine_grid: LatLonGrid, variables: VariableSet, factor: usize, num_samples: usize, seed: u64) -> Self {
        assert!(factor >= 1);
        assert_eq!(fine_grid.h % factor, 0, "grid height not divisible by factor");
        assert_eq!(fine_grid.w % factor, 0, "grid width not divisible by factor");
        let world = WorldGenerator::new(fine_grid, variables, seed);
        Self { world, factor, num_samples, train_frac: 0.925, val_frac: 0.05 }
    }

    /// The fine-resolution grid.
    pub fn fine_grid(&self) -> &LatLonGrid {
        &self.world.grid
    }

    /// The coarse-resolution (input) grid geometry.
    pub fn coarse_grid(&self) -> LatLonGrid {
        LatLonGrid {
            h: self.world.grid.h / self.factor,
            w: self.world.grid.w / self.factor,
            ..self.world.grid
        }
    }

    /// Channel layout.
    pub fn variables(&self) -> &VariableSet {
        &self.world.variables
    }

    /// Underlying world generator (topography etc.).
    pub fn world(&self) -> &WorldGenerator {
        &self.world
    }

    /// Split membership of sample `i` (time-ordered, like the paper's
    /// by-year split). Every split is guaranteed non-empty once
    /// `num_samples >= 3`.
    pub fn split_of(&self, i: usize) -> Split {
        let n = self.num_samples;
        let mut val_end = ((n as f64 * (self.train_frac + self.val_frac)).round() as usize).min(n.saturating_sub(1));
        let mut train_end = ((n as f64 * self.train_frac).round() as usize).min(val_end.saturating_sub(1));
        if n >= 3 {
            train_end = train_end.max(1);
            val_end = val_end.max(train_end + 1);
        }
        if i < train_end {
            Split::Train
        } else if i < val_end {
            Split::Val
        } else {
            Split::Test
        }
    }

    /// Indices belonging to a split.
    pub fn indices(&self, split: Split) -> Vec<usize> {
        (0..self.num_samples).filter(|&i| self.split_of(i) == split).collect()
    }

    /// Generate sample `i` (deterministic).
    pub fn sample(&self, i: usize) -> DownscalingSample {
        assert!(i < self.num_samples, "sample {i} out of range ({})", self.num_samples);
        let t = i as u64;
        let (fh, fw) = (self.world.grid.h, self.world.grid.w);
        let vs = &self.world.variables;

        let mut input_data = Vec::with_capacity(vs.num_inputs() * (fh / self.factor) * (fw / self.factor));
        for var in &vs.inputs {
            let fine = Tensor::from_vec(vec![1, fh, fw], self.world.field(&var.name, t));
            let coarse = downsample_area(&fine, self.factor);
            input_data.extend_from_slice(coarse.data());
        }
        let input = Tensor::from_vec(
            vec![vs.num_inputs(), fh / self.factor, fw / self.factor],
            input_data,
        );

        let mut target_data = Vec::with_capacity(vs.num_outputs() * fh * fw);
        for var in &vs.outputs {
            target_data.extend(self.world.field(&var.name, t));
        }
        let target = Tensor::from_vec(vec![vs.num_outputs(), fh, fw], target_data);

        DownscalingSample { input, target, t }
    }

    /// Generate a batch of samples by index.
    pub fn batch(&self, indices: &[usize]) -> Vec<DownscalingSample> {
        indices.iter().map(|&i| self.sample(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DownscalingDataset {
        DownscalingDataset::new(LatLonGrid::conus(32, 64), VariableSet::daymet_like(), 4, 40, 7)
    }

    #[test]
    fn shapes_follow_factor() {
        let ds = tiny();
        let s = ds.sample(0);
        assert_eq!(s.input.shape(), &[7, 8, 16]);
        assert_eq!(s.target.shape(), &[3, 32, 64]);
    }

    #[test]
    fn deterministic_samples() {
        let a = tiny().sample(3);
        let b = tiny().sample(3);
        assert_eq!(a.input.data(), b.input.data());
        assert_eq!(a.target.data(), b.target.data());
    }

    #[test]
    fn coarse_input_is_area_average_of_truth() {
        let ds = tiny();
        let s = ds.sample(1);
        // Input channel "tmin_in" must equal the 4x area average of the
        // target channel "tmin".
        let ci = ds.variables().input_index("tmin_in").unwrap();
        let co = ds.variables().output_index("tmin").unwrap();
        let coarse = s.input.slice_axis(0, ci, 1);
        let fine = s.target.slice_axis(0, co, 1);
        let expect = downsample_area(&fine, 4);
        coarse.assert_close(&expect, 1e-4);
    }

    #[test]
    fn splits_are_time_ordered_and_cover() {
        let ds = tiny();
        let train = ds.indices(Split::Train);
        let val = ds.indices(Split::Val);
        let test = ds.indices(Split::Test);
        assert_eq!(train.len() + val.len() + test.len(), 40);
        assert!(train.iter().max().unwrap() < val.iter().min().unwrap());
        assert!(val.iter().max().unwrap() < test.iter().min().unwrap());
        assert!(train.len() > 30);
        assert!(!val.is_empty());
        assert!(!test.is_empty());
    }

    #[test]
    fn coarse_grid_geometry() {
        let ds = tiny();
        let cg = ds.coarse_grid();
        assert_eq!((cg.h, cg.w), (8, 16));
        assert!((cg.resolution_km() / ds.fine_grid().resolution_km() - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_sample_panics() {
        tiny().sample(40);
    }

    #[test]
    fn batch_matches_individual_samples() {
        let ds = tiny();
        let b = ds.batch(&[0, 5]);
        assert_eq!(b.len(), 2);
        assert_eq!(b[1].input.data(), ds.sample(5).input.data());
    }
}
