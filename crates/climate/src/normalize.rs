//! Channel normalization and quantile-mapping bias correction.
//!
//! The paper's pipeline feeds "normalized and bias corrected" inputs
//! (Sec. II). Normalization is per-channel z-scoring with statistics
//! estimated from training samples; bias correction is empirical quantile
//! mapping between a model distribution and an observation distribution.

use crate::dataset::DownscalingDataset;
use orbit2_tensor::Tensor;

/// Mean/std of one channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelStats {
    /// Channel mean.
    pub mean: f32,
    /// Channel standard deviation (floored to avoid division by ~0).
    pub std: f32,
}

/// Per-channel z-score normalizer for input and target stacks.
#[derive(Debug, Clone)]
pub struct Normalizer {
    /// Stats per input channel.
    pub input_stats: Vec<ChannelStats>,
    /// Stats per output channel.
    pub output_stats: Vec<ChannelStats>,
}

impl Normalizer {
    /// Estimate statistics from the first `n_fit` training samples.
    pub fn fit(dataset: &DownscalingDataset, n_fit: usize) -> Self {
        let train = dataset.indices(crate::dataset::Split::Train);
        let use_n = n_fit.min(train.len()).max(1);
        let c_in = dataset.variables().num_inputs();
        let c_out = dataset.variables().num_outputs();
        let mut in_acc = vec![(0.0f64, 0.0f64, 0u64); c_in];
        let mut out_acc = vec![(0.0f64, 0.0f64, 0u64); c_out];
        for &i in &train[..use_n] {
            let s = dataset.sample(i);
            accumulate(&s.input, &mut in_acc);
            accumulate(&s.target, &mut out_acc);
        }
        Self {
            input_stats: finalize(&in_acc),
            output_stats: finalize(&out_acc),
        }
    }

    /// Normalize an input stack `[C_in, h, w]` in place.
    pub fn normalize_input(&self, input: &Tensor) -> Tensor {
        apply(input, &self.input_stats, false)
    }

    /// Normalize a target stack `[C_out, H, W]`.
    pub fn normalize_target(&self, target: &Tensor) -> Tensor {
        apply(target, &self.output_stats, false)
    }

    /// Invert target normalization (bring predictions back to physical units).
    pub fn denormalize_target(&self, target: &Tensor) -> Tensor {
        apply(target, &self.output_stats, true)
    }
}

fn accumulate(stack: &Tensor, acc: &mut [(f64, f64, u64)]) {
    let c = stack.shape()[0];
    let plane = stack.len() / c;
    for (ci, entry) in acc.iter_mut().enumerate().take(c) {
        let slice = &stack.data()[ci * plane..(ci + 1) * plane];
        let (s, s2, n) = entry;
        for &v in slice {
            *s += v as f64;
            *s2 += (v as f64) * (v as f64);
        }
        *n += plane as u64;
    }
}

fn finalize(acc: &[(f64, f64, u64)]) -> Vec<ChannelStats> {
    acc.iter()
        .map(|&(s, s2, n)| {
            let mean = s / n as f64;
            let var = (s2 / n as f64 - mean * mean).max(0.0);
            ChannelStats { mean: mean as f32, std: (var.sqrt() as f32).max(1e-4) }
        })
        .collect()
}

fn apply(stack: &Tensor, stats: &[ChannelStats], invert: bool) -> Tensor {
    let c = stack.shape()[0];
    assert_eq!(c, stats.len(), "channel count mismatch");
    let plane = stack.len() / c;
    // COW handle: the first mutation faults into a pooled private buffer and
    // the shape handle is shared, so no shape vec or explicit copy here.
    let mut out = stack.clone();
    let data = out.data_mut();
    for (ci, st) in stats.iter().enumerate() {
        for v in &mut data[ci * plane..(ci + 1) * plane] {
            *v = if invert { *v * st.std + st.mean } else { (*v - st.mean) / st.std };
        }
    }
    out
}

/// Empirical quantile mapping: transform `source` values so their CDF
/// matches `reference`'s, using `n_quantiles` knots with linear
/// interpolation. The standard statistical bias-correction operator.
pub fn quantile_map(source: &[f32], reference: &[f32], values: &[f32], n_quantiles: usize) -> Vec<f32> {
    assert!(n_quantiles >= 2);
    assert!(!source.is_empty() && !reference.is_empty());
    let src_q = quantiles(source, n_quantiles);
    let ref_q = quantiles(reference, n_quantiles);
    values
        .iter()
        .map(|&v| {
            // Locate v in the source quantile knots.
            let pos = src_q.partition_point(|&q| q < v);
            if pos == 0 {
                ref_q[0]
            } else if pos >= src_q.len() {
                *ref_q.last().unwrap()
            } else {
                let (lo, hi) = (src_q[pos - 1], src_q[pos]);
                let t = if hi > lo { (v - lo) / (hi - lo) } else { 0.0 };
                ref_q[pos - 1] + t * (ref_q[pos] - ref_q[pos - 1])
            }
        })
        .collect()
}

fn quantiles(data: &[f32], n: usize) -> Vec<f32> {
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (0..n)
        .map(|i| {
            let f = i as f64 / (n - 1) as f64 * (sorted.len() - 1) as f64;
            let lo = f.floor() as usize;
            let hi = f.ceil() as usize;
            let t = (f - lo as f64) as f32;
            sorted[lo] * (1.0 - t) + sorted[hi] * t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::LatLonGrid;
    use crate::variables::VariableSet;

    fn ds() -> DownscalingDataset {
        DownscalingDataset::new(LatLonGrid::conus(16, 32), VariableSet::daymet_like(), 4, 20, 3)
    }

    #[test]
    fn normalized_channels_are_standardized() {
        let d = ds();
        let norm = Normalizer::fit(&d, 8);
        let s = d.sample(0);
        let ni = norm.normalize_input(&s.input);
        let c = ni.shape()[0];
        let plane = ni.len() / c;
        for ci in 0..c {
            let slice = &ni.data()[ci * plane..(ci + 1) * plane];
            let mean: f32 = slice.iter().sum::<f32>() / plane as f32;
            assert!(mean.abs() < 1.0, "channel {ci} mean {mean} too far from 0");
        }
    }

    #[test]
    fn denormalize_inverts_normalize() {
        let d = ds();
        let norm = Normalizer::fit(&d, 5);
        let s = d.sample(1);
        let round = norm.denormalize_target(&norm.normalize_target(&s.target));
        round.assert_close(&s.target, 1e-2);
    }

    #[test]
    fn quantile_map_matches_target_distribution() {
        // Source ~ N(0,1) values; reference ~ N(10, 2). Mapping source onto
        // reference should land near the reference stats.
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let source: Vec<f32> = (0..2000).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
        let reference: Vec<f32> = (0..2000).map(|_| 10.0 + 2.0 * rng.gen_range(-3.0f32..3.0)).collect();
        let mapped = quantile_map(&source, &reference, &source, 101);
        let mean: f32 = mapped.iter().sum::<f32>() / mapped.len() as f32;
        assert!((mean - 10.0).abs() < 0.5, "mapped mean {mean}");
    }

    #[test]
    fn quantile_map_clamps_out_of_range() {
        let source = vec![0.0f32, 1.0, 2.0, 3.0];
        let reference = vec![10.0f32, 11.0, 12.0, 13.0];
        let mapped = quantile_map(&source, &reference, &[-5.0, 8.0], 5);
        assert_eq!(mapped[0], 10.0);
        assert_eq!(mapped[1], 13.0);
    }

    #[test]
    fn quantile_map_is_monotone() {
        let source: Vec<f32> = (0..100).map(|i| (i as f32 * 0.37).sin() * 5.0).collect();
        let reference: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let values: Vec<f32> = (-10..10).map(|i| i as f32 * 0.5).collect();
        let mapped = quantile_map(&source, &reference, &values, 21);
        for pair in mapped.windows(2) {
            assert!(pair[0] <= pair[1] + 1e-5, "mapping must be monotone");
        }
    }
}
