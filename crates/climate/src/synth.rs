//! Spectral Gaussian-random-field synthesis and the coupled multi-variable
//! world generator.
//!
//! Real climate fields have power-law spatial spectra; we synthesize fields
//! with a prescribed slope by shaping white noise in Fourier space
//! (`|F(k)| ∝ k^{-slope/2}`), then couple variables through a shared
//! topography and a shared per-timestep "weather" field so that the
//! multi-channel inputs genuinely inform the downscaling targets.

use crate::grid::LatLonGrid;
use crate::variables::{Variable, VariableKind, VariableSet};
use orbit2_fft::complex::Complex;
use orbit2_fft::fft2::{fft2, ifft2};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Parameters of one Gaussian random field.
#[derive(Debug, Clone, Copy)]
pub struct GrfSpec {
    /// Power-spectrum slope: `P(k) ∝ k^{-slope}`. Larger = smoother field.
    pub slope: f64,
}

/// Generate a zero-mean, unit-variance random field with power-law spectrum.
pub fn gaussian_random_field(h: usize, w: usize, spec: GrfSpec, seed: u64) -> Vec<f32> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // White noise -> spectral shaping preserves Hermitian symmetry because
    // the filter depends only on |k|.
    let mut grid: Vec<Complex> = (0..h * w)
        .map(|_| Complex::new(rng.gen_range(-1.0..1.0), 0.0))
        .collect();
    fft2(&mut grid, h, w);
    for y in 0..h {
        let ky = if y <= h / 2 { y as f64 } else { y as f64 - h as f64 };
        for x in 0..w {
            let kx = if x <= w / 2 { x as f64 } else { x as f64 - w as f64 };
            let k = (ky * ky + kx * kx).sqrt();
            let amp = if k == 0.0 { 0.0 } else { k.powf(-spec.slope / 2.0) };
            grid[y * w + x] = grid[y * w + x].scale(amp);
        }
    }
    ifft2(&mut grid, h, w);
    let mut field: Vec<f32> = grid.iter().map(|c| c.re as f32).collect();
    normalize_unit(&mut field);
    field
}

fn normalize_unit(field: &mut [f32]) {
    let n = field.len() as f64;
    let mean: f64 = field.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var: f64 = field.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n;
    let inv_std = if var > 0.0 { 1.0 / var.sqrt() } else { 1.0 };
    for v in field.iter_mut() {
        *v = ((*v as f64 - mean) * inv_std) as f32;
    }
}

/// Numerically-stable softplus, used to keep precipitation nonnegative.
pub fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        0.0
    } else {
        (1.0 + x.exp()).ln()
    }
}

/// Deterministic per-name sub-seed.
fn name_seed(base: u64, name: &str, t: u64) -> u64 {
    // FNV-1a over the name, mixed with the timestep.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ base.rotate_left(17) ^ t.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// The synthetic world: fixed geography plus a stream of coupled weather
/// states, one per timestep ("hourly/daily sample" in the paper's terms).
pub struct WorldGenerator {
    /// Fine-resolution grid on which truth fields are generated.
    pub grid: LatLonGrid,
    /// Channel layout.
    pub variables: VariableSet,
    seed: u64,
    /// Topography in km, fixed for the world.
    topography_km: Vec<f32>,
    /// Land mask in [0,1].
    land_mask: Vec<f32>,
}

impl WorldGenerator {
    /// Create a world on `grid` with the given channel layout and seed.
    pub fn new(grid: LatLonGrid, variables: VariableSet, seed: u64) -> Self {
        let (h, w) = (grid.h, grid.w);
        // Ridged topography: |smooth GRF| gives mountain ranges; a second
        // smooth component adds continental-scale tilt.
        let ridges = gaussian_random_field(h, w, GrfSpec { slope: 3.4 }, name_seed(seed, "topo_ridges", 0));
        let broad = gaussian_random_field(h, w, GrfSpec { slope: 4.0 }, name_seed(seed, "topo_broad", 0));
        let topography_km: Vec<f32> = ridges
            .iter()
            .zip(&broad)
            .map(|(&r, &b)| (1.2 * r.abs() + 0.4 * b).max(0.0))
            .collect();
        let continents = gaussian_random_field(h, w, GrfSpec { slope: 4.2 }, name_seed(seed, "land", 0));
        let land_mask: Vec<f32> = continents.iter().map(|&c| if c > -0.2 { 1.0 } else { 0.0 }).collect();
        Self { grid, variables, seed, topography_km, land_mask }
    }

    /// The fixed topography field (km).
    pub fn topography(&self) -> &[f32] {
        &self.topography_km
    }

    /// The fixed land mask.
    pub fn land_mask(&self) -> &[f32] {
        &self.land_mask
    }

    /// Shared synoptic "weather" field for timestep `t` (unit variance).
    fn weather(&self, t: u64) -> Vec<f32> {
        gaussian_random_field(self.grid.h, self.grid.w, GrfSpec { slope: 3.0 }, name_seed(self.seed, "weather", t))
    }

    /// Shared moisture field for timestep `t` (rougher than temperature).
    fn moisture(&self, t: u64) -> Vec<f32> {
        gaussian_random_field(self.grid.h, self.grid.w, GrfSpec { slope: 2.3 }, name_seed(self.seed, "moisture", t))
    }

    /// Seasonal temperature anomaly for timestep `t` (days), in Kelvin.
    fn seasonal(&self, t: u64) -> f32 {
        10.0 * (2.0 * std::f32::consts::PI * (t % 365) as f32 / 365.0).sin()
    }

    /// Generate the fine-resolution truth field for a canonical variable
    /// name at timestep `t`. Input channels suffixed `_in` resolve to the
    /// same canonical field as their output counterpart, which is what makes
    /// the coarse input an honest (area-averaged) observation of the truth.
    pub fn field(&self, name: &str, t: u64) -> Vec<f32> {
        let canonical = name.strip_suffix("_in").unwrap_or(name);
        let (h, w) = (self.grid.h, self.grid.w);
        match canonical {
            "topography" => self.topography_km.clone(),
            "land_mask" => self.land_mask.clone(),
            "soil_type" => {
                gaussian_random_field(h, w, GrfSpec { slope: 2.8 }, name_seed(self.seed, "soil", 0))
            }
            "lat_coord" => {
                let mut out = Vec::with_capacity(h * w);
                for i in 0..h {
                    let v = (self.grid.lat(i) / 90.0) as f32;
                    out.extend(std::iter::repeat_n(v, w));
                }
                out
            }
            "lon_coord" => {
                let row: Vec<f32> = (0..w).map(|j| (self.grid.lon(j) / 180.0) as f32).collect();
                let mut out = Vec::with_capacity(h * w);
                for _ in 0..h {
                    out.extend_from_slice(&row);
                }
                out
            }
            "t2m" | "tmin" | "tmax" => self.temperature_family(canonical, t),
            "prcp" => self.precipitation(t),
            other => self.generic_variable(other, t),
        }
    }

    /// Temperature family: shared base (weather + lapse-rate + season) with
    /// per-member offsets and local detail.
    fn temperature_family(&self, which: &str, t: u64) -> Vec<f32> {
        let spec = self.lookup(which);
        let weather = self.weather(t);
        let local = gaussian_random_field(
            self.grid.h,
            self.grid.w,
            GrfSpec { slope: spec.spectral_slope },
            name_seed(self.seed, which, t),
        );
        let season = self.seasonal(t);
        let offset = match which {
            "tmin" => -5.0,
            "tmax" => 5.0,
            _ => 0.0,
        };
        // Weighting note: most fine-scale variance is tied to the *fixed*
        // geography (lapse-rate cooling over the topography), which a
        // downscaler can learn across samples; the residual `local` noise
        // is kept small because it is irreducible from coarse inputs.
        weather
            .iter()
            .zip(&local)
            .zip(&self.topography_km)
            .map(|((&wx, &lx), &topo)| {
                spec.mean + offset + season + spec.topo_coupling * topo + spec.sigma * (0.7 * wx + 0.18 * lx)
            })
            .collect()
    }

    /// Precipitation: softplus of moisture + orographic enhancement, giving
    /// a skewed, nonnegative field with sharp wet/dry boundaries.
    fn precipitation(&self, t: u64) -> Vec<f32> {
        let spec = self.lookup("prcp");
        let moisture = self.moisture(t);
        let local = gaussian_random_field(
            self.grid.h,
            self.grid.w,
            GrfSpec { slope: spec.spectral_slope },
            name_seed(self.seed, "prcp", t),
        );
        moisture
            .iter()
            .zip(&local)
            .zip(&self.topography_km)
            .map(|((&m, &l), &topo)| {
                3.0 * softplus(1.2 * m + 0.3 * l + spec.topo_coupling * topo - 1.0)
            })
            .collect()
    }

    /// Any other (atmospheric/surface) variable: mean + topo coupling +
    /// weather/moisture mixture by kind.
    fn generic_variable(&self, name: &str, t: u64) -> Vec<f32> {
        let spec = self.lookup(name);
        let shared = if name.starts_with('q') { self.moisture(t) } else { self.weather(t) };
        let local = gaussian_random_field(
            self.grid.h,
            self.grid.w,
            GrfSpec { slope: spec.spectral_slope },
            name_seed(self.seed, name, t),
        );
        let season = if spec.kind == VariableKind::Atmospheric && name.starts_with('t') {
            self.seasonal(t)
        } else {
            0.0
        };
        shared
            .iter()
            .zip(&local)
            .zip(&self.topography_km)
            .map(|((&s, &l), &topo)| {
                spec.mean + season + spec.topo_coupling * topo + spec.sigma * (0.5 * s + 0.6 * l)
            })
            .collect()
    }

    fn lookup(&self, canonical: &str) -> Variable {
        let hit = self
            .variables
            .inputs
            .iter()
            .chain(&self.variables.outputs)
            .find(|v| v.name.strip_suffix("_in").unwrap_or(&v.name) == canonical);
        match hit {
            Some(v) => v.clone(),
            // Fall back to a neutral spec so the generator is total.
            None => Variable {
                name: canonical.into(),
                kind: VariableKind::Surface,
                spectral_slope: 2.8,
                sigma: 1.0,
                mean: 0.0,
                topo_coupling: 0.0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> WorldGenerator {
        WorldGenerator::new(LatLonGrid::conus(32, 64), VariableSet::era5_like(), 42)
    }

    #[test]
    fn grf_is_normalized_and_deterministic() {
        let a = gaussian_random_field(32, 32, GrfSpec { slope: 3.0 }, 7);
        let b = gaussian_random_field(32, 32, GrfSpec { slope: 3.0 }, 7);
        assert_eq!(a, b);
        let mean: f32 = a.iter().sum::<f32>() / a.len() as f32;
        let var: f32 = a.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / a.len() as f32;
        assert!(mean.abs() < 1e-4);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn higher_slope_is_smoother() {
        // Smoothness proxy: mean squared difference of horizontal neighbours.
        let rough = gaussian_random_field(64, 64, GrfSpec { slope: 1.5 }, 3);
        let smooth = gaussian_random_field(64, 64, GrfSpec { slope: 4.0 }, 3);
        let roughness = |f: &[f32]| -> f32 {
            let mut s = 0.0;
            for y in 0..64 {
                for x in 0..63 {
                    s += (f[y * 64 + x + 1] - f[y * 64 + x]).powi(2);
                }
            }
            s
        };
        assert!(roughness(&smooth) < roughness(&rough) * 0.5);
    }

    #[test]
    fn grf_spectrum_follows_power_law() {
        let f = gaussian_random_field(128, 128, GrfSpec { slope: 3.0 }, 11);
        let ps = orbit2_fft::radial_power_spectrum(&f, 128, 128);
        // Fit log-log slope over mid-range wavenumbers.
        let (mut sx, mut sy, mut sxx, mut sxy, mut n) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for k in 4..40 {
            let x = (k as f64).ln();
            let y = ps.power[k].max(1e-30).ln();
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
            n += 1.0;
        }
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        assert!((slope + 3.0).abs() < 0.6, "measured spectral slope {slope}, want ~-3");
    }

    #[test]
    fn topography_nonnegative_and_deterministic() {
        let w1 = world();
        let w2 = world();
        assert_eq!(w1.topography(), w2.topography());
        assert!(w1.topography().iter().all(|&t| t >= 0.0));
        assert!(w1.topography().iter().any(|&t| t > 0.5), "should have mountains");
    }

    #[test]
    fn temperature_cools_on_mountains() {
        let wld = world();
        let t2m = wld.field("t2m", 10);
        let topo = wld.topography();
        // Correlation between topography and temperature must be negative.
        let n = t2m.len() as f64;
        let mt: f64 = t2m.iter().map(|&v| v as f64).sum::<f64>() / n;
        let mo: f64 = topo.iter().map(|&v| v as f64).sum::<f64>() / n;
        let mut cov = 0.0;
        let (mut vt, mut vo) = (0.0, 0.0);
        for (&a, &b) in t2m.iter().zip(topo) {
            cov += (a as f64 - mt) * (b as f64 - mo);
            vt += (a as f64 - mt).powi(2);
            vo += (b as f64 - mo).powi(2);
        }
        let corr = cov / (vt.sqrt() * vo.sqrt());
        assert!(corr < -0.3, "temperature-topography correlation {corr} should be negative");
    }

    #[test]
    fn tmin_below_tmax() {
        let wld = world();
        let tmin = wld.field("tmin", 5);
        let tmax = wld.field("tmax", 5);
        let mean_min: f32 = tmin.iter().sum::<f32>() / tmin.len() as f32;
        let mean_max: f32 = tmax.iter().sum::<f32>() / tmax.len() as f32;
        assert!(mean_min < mean_max);
    }

    #[test]
    fn precipitation_nonnegative_and_skewed() {
        let wld = world();
        let p = wld.field("prcp", 3);
        assert!(p.iter().all(|&v| v >= 0.0));
        let mean: f32 = p.iter().sum::<f32>() / p.len() as f32;
        let median = {
            let mut s = p;
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[s.len() / 2]
        };
        assert!(mean > median, "precip should be right-skewed (mean {mean} > median {median})");
    }

    #[test]
    fn input_channel_resolves_to_canonical_field() {
        let wld = world();
        assert_eq!(wld.field("tmin_in", 9), wld.field("tmin", 9));
    }

    #[test]
    fn different_timesteps_differ() {
        let wld = world();
        assert_ne!(wld.field("t2m", 1), wld.field("t2m", 2));
    }

    #[test]
    fn seasonal_cycle_moves_temperature() {
        let wld = world();
        let winter = wld.field("t2m", 0);
        let summer = wld.field("t2m", 91); // ~ quarter year later, peak of sin
        let mw: f32 = winter.iter().sum::<f32>() / winter.len() as f32;
        let ms: f32 = summer.iter().sum::<f32>() / summer.len() as f32;
        assert!((ms - mw).abs() > 3.0, "seasonal amplitude should show up");
    }

    #[test]
    fn coordinates_fields_are_ramps() {
        let wld = world();
        let lat = wld.field("lat_coord", 0);
        let lon = wld.field("lon_coord", 0);
        let w = wld.grid.w;
        assert!(lat[0] > lat[(wld.grid.h - 1) * w], "latitude decreases southward");
        assert!(lon[0] < lon[w - 1], "longitude increases eastward");
    }
}
