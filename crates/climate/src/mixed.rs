//! Mixed-resolution pretraining corpora.
//!
//! The paper pretrains one model on *several* datasets with different grid
//! sizes (Table I: ERA5 622→156 km on a 32x64 grid and 112→28 km on a
//! 180x360 grid, plus the US products) — "a single model to generalize
//! across diverse datasets with varying resolutions" is the stated
//! foundation-model requirement that rules out Swin-style hierarchies.
//! [`MixedDataset`] interleaves samples from multiple member datasets with
//! a shared channel layout, so one training loop sees all resolutions.

use crate::dataset::{DownscalingDataset, DownscalingSample, Split};

/// Several downscaling datasets (same channel layout, same refinement
/// factor, different grids) presented as one interleaved corpus.
pub struct MixedDataset {
    members: Vec<DownscalingDataset>,
}

impl MixedDataset {
    /// Combine member datasets. All members must share the channel layout
    /// and refinement factor (the architecture contract).
    pub fn new(members: Vec<DownscalingDataset>) -> Self {
        assert!(!members.is_empty(), "no member datasets");
        let first = &members[0];
        for m in &members[1..] {
            assert_eq!(
                m.variables().num_inputs(),
                first.variables().num_inputs(),
                "members must share the input channel layout"
            );
            assert_eq!(m.variables().num_outputs(), first.variables().num_outputs());
            assert_eq!(m.factor, first.factor, "members must share the refinement factor");
        }
        Self { members }
    }

    /// Member datasets.
    pub fn members(&self) -> &[DownscalingDataset] {
        &self.members
    }

    /// Total number of samples across members.
    pub fn num_samples(&self) -> usize {
        self.members.iter().map(|m| m.num_samples).sum()
    }

    /// Global sample `i`, interleaving members round-robin so a training
    /// pass alternates resolutions (member = i mod k).
    pub fn sample(&self, i: usize) -> (usize, DownscalingSample) {
        assert!(i < self.num_samples(), "sample {i} out of range");
        let k = self.members.len();
        let member = i % k;
        // Round-robin position within the member, wrapping over its length.
        let within = (i / k) % self.members[member].num_samples;
        (member, self.members[member].sample(within))
    }

    /// Training indices (global) whose member-local counterpart is in the
    /// training split.
    pub fn train_indices(&self) -> Vec<usize> {
        (0..self.num_samples())
            .filter(|&i| {
                let k = self.members.len();
                let member = i % k;
                let within = (i / k) % self.members[member].num_samples;
                self.members[member].split_of(within) == Split::Train
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::LatLonGrid;
    use crate::variables::VariableSet;

    fn mixed() -> MixedDataset {
        MixedDataset::new(vec![
            // Coarse global pair (622 -> 156 analog).
            DownscalingDataset::new(LatLonGrid::global(16, 32), VariableSet::era5_like(), 4, 10, 1),
            // Finer global pair (112 -> 28 analog).
            DownscalingDataset::new(LatLonGrid::global(32, 64), VariableSet::era5_like(), 4, 10, 2),
        ])
    }

    #[test]
    fn interleaves_members_round_robin() {
        let m = mixed();
        assert_eq!(m.num_samples(), 20);
        let (m0, s0) = m.sample(0);
        let (m1, s1) = m.sample(1);
        assert_eq!(m0, 0);
        assert_eq!(m1, 1);
        // Different (fine) grid sizes per member.
        assert_eq!(s0.target.shape()[1], 16);
        assert_eq!(s1.target.shape()[1], 32);
    }

    #[test]
    fn shared_channel_layout_enforced() {
        let a = DownscalingDataset::new(LatLonGrid::global(16, 32), VariableSet::era5_like(), 4, 4, 1);
        let b = DownscalingDataset::new(LatLonGrid::conus(16, 32), VariableSet::daymet_like(), 4, 4, 1);
        let result = std::panic::catch_unwind(|| MixedDataset::new(vec![a, b]));
        assert!(result.is_err(), "mismatched channel layouts must be rejected");
    }

    #[test]
    fn train_indices_alternate_resolutions() {
        let m = mixed();
        let idx = m.train_indices();
        assert!(!idx.is_empty());
        // Both members must be represented.
        let members: std::collections::BTreeSet<usize> = idx.iter().map(|&i| i % 2).collect();
        assert_eq!(members.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        mixed().sample(20);
    }
}
