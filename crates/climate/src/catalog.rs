//! The dataset catalog mirroring the paper's Table I, used by
//! `repro table1` to print the dataset inventory and by the experiment
//! harness to look up each task's geometry.

use serde::{Deserialize, Serialize};

/// Which training stage a dataset serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetRole {
    /// Pretraining corpus.
    Pretraining,
    /// Fine-tuning corpus.
    FineTuning,
    /// Inference-time evaluation corpus.
    InferenceEvaluation,
}

/// One row of Table I.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetCatalogEntry {
    /// Dataset pairing, e.g. `"ERA5 -> ERA5"`.
    pub name: &'static str,
    /// Geographic region.
    pub region: &'static str,
    /// Input resolution in km.
    pub res_in_km: f64,
    /// Output resolution in km.
    pub res_out_km: f64,
    /// Number of input variables.
    pub input_vars: usize,
    /// Number of output variables.
    pub output_vars: usize,
    /// Input sample dimensions `[H, W, C]`.
    pub in_dims: [usize; 3],
    /// Output sample dimensions `[H, W, C]`.
    pub out_dims: [usize; 3],
    /// Number of sample pairs.
    pub sample_pairs: usize,
    /// Role of the dataset.
    pub role: DatasetRole,
}

impl DatasetCatalogEntry {
    /// Spatial refinement factor.
    pub fn factor(&self) -> f64 {
        self.res_in_km / self.res_out_km
    }

    /// Storage footprint in GB for f32 samples (inputs + outputs).
    pub fn size_gb(&self) -> f64 {
        let per_sample = (self.in_dims.iter().product::<usize>()
            + self.out_dims.iter().product::<usize>()) as f64
            * 4.0;
        per_sample * self.sample_pairs as f64 / 1e9
    }
}

/// The six rows of Table I.
pub fn paper_catalog() -> Vec<DatasetCatalogEntry> {
    use DatasetRole::*;
    vec![
        DatasetCatalogEntry {
            name: "ERA5 -> ERA5",
            region: "Global",
            res_in_km: 622.0,
            res_out_km: 156.0,
            input_vars: 23,
            output_vars: 3,
            in_dims: [32, 64, 23],
            out_dims: [128, 256, 3],
            sample_pairs: 367_920,
            role: Pretraining,
        },
        DatasetCatalogEntry {
            name: "ERA5 -> ERA5",
            region: "Global",
            res_in_km: 112.0,
            res_out_km: 28.0,
            input_vars: 23,
            output_vars: 3,
            in_dims: [180, 360, 23],
            out_dims: [720, 1440, 3],
            sample_pairs: 367_920,
            role: Pretraining,
        },
        DatasetCatalogEntry {
            name: "PRISM -> PRISM",
            region: "US",
            res_in_km: 16.0,
            res_out_km: 4.0,
            input_vars: 7,
            output_vars: 3,
            in_dims: [180, 360, 7],
            out_dims: [720, 1440, 3],
            sample_pairs: 14_235,
            role: Pretraining,
        },
        DatasetCatalogEntry {
            name: "DAYMET -> DAYMET",
            region: "US",
            res_in_km: 16.0,
            res_out_km: 4.0,
            input_vars: 7,
            output_vars: 3,
            in_dims: [180, 360, 7],
            out_dims: [720, 1440, 3],
            sample_pairs: 14_946,
            role: Pretraining,
        },
        DatasetCatalogEntry {
            name: "[ERA5, DAYMET] -> DAYMET",
            region: "US",
            res_in_km: 28.0,
            res_out_km: 7.0,
            input_vars: 23,
            output_vars: 3,
            in_dims: [120, 240, 23],
            out_dims: [480, 960, 3],
            sample_pairs: 14_946,
            role: FineTuning,
        },
        DatasetCatalogEntry {
            name: "ERA5 -> IMERG",
            region: "Global",
            res_in_km: 28.0,
            res_out_km: 7.0,
            input_vars: 23,
            output_vars: 3,
            in_dims: [720, 1440, 23],
            out_dims: [2880, 5760, 3],
            sample_pairs: 1_488,
            role: InferenceEvaluation,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_six_rows() {
        assert_eq!(paper_catalog().len(), 6);
    }

    #[test]
    fn all_tasks_are_4x_refinement() {
        for e in paper_catalog() {
            // 622 -> 156 km is "4x" at grid level but 3.99x in km.
            assert!((e.factor() - 4.0).abs() < 0.05, "{}: factor {}", e.name, e.factor());
            assert_eq!(e.out_dims[0] / e.in_dims[0], 4);
            assert_eq!(e.out_dims[1] / e.in_dims[1], 4);
        }
    }

    #[test]
    fn size_estimates_near_paper_values() {
        let cat = paper_catalog();
        // Paper reports 6,328 GB for the big ERA5 pretraining set and 200 GB
        // for the small one; our f32 estimate must land in the same regime.
        let big = cat[1].size_gb();
        assert!(big > 4000.0 && big < 8000.0, "big ERA5 size {big} GB");
        let small = cat[0].size_gb();
        assert!(small > 50.0 && small < 300.0, "small ERA5 size {small} GB");
    }

    #[test]
    fn roles_partition_the_catalog() {
        let cat = paper_catalog();
        assert_eq!(cat.iter().filter(|e| e.role == DatasetRole::Pretraining).count(), 4);
        assert_eq!(cat.iter().filter(|e| e.role == DatasetRole::FineTuning).count(), 1);
        assert_eq!(cat.iter().filter(|e| e.role == DatasetRole::InferenceEvaluation).count(), 1);
    }

    #[test]
    fn variable_counts_match_table() {
        let cat = paper_catalog();
        assert!(cat.iter().all(|e| e.output_vars == 3));
        assert_eq!(cat[0].input_vars, 23);
        assert_eq!(cat[2].input_vars, 7);
    }
}
