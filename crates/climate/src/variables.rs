//! Physical variable inventory mirroring the paper's Table I channel
//! structure: 5 static fields, 12 atmospheric variables (humidity, wind and
//! temperature at 200/500/850 hPa), 6 surface variables, and 3 output
//! variables (minimum temperature, maximum temperature, total precipitation
//! — the DAYMET triple).

use serde::{Deserialize, Serialize};

/// The broad class a channel belongs to (drives generation and coupling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VariableKind {
    /// Time-invariant fields (topography, land mask, coordinates, soil).
    Static,
    /// Pressure-level atmospheric state.
    Atmospheric,
    /// Near-surface state.
    Surface,
}

/// A single named channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Variable {
    /// Short identifier, e.g. `"t850"`.
    pub name: String,
    /// Class of the variable.
    pub kind: VariableKind,
    /// Spectral slope of the underlying random field (higher = smoother).
    pub spectral_slope: f64,
    /// Standard deviation of the fluctuating part (physical units).
    pub sigma: f32,
    /// Climatological mean (physical units).
    pub mean: f32,
    /// Strength of coupling to topography (units per km of elevation).
    pub topo_coupling: f32,
}

impl Variable {
    fn new(name: &str, kind: VariableKind, slope: f64, sigma: f32, mean: f32, topo: f32) -> Self {
        Self { name: name.into(), kind, spectral_slope: slope, sigma, mean, topo_coupling: topo }
    }
}

/// The full channel layout of a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariableSet {
    /// Input channels, in order.
    pub inputs: Vec<Variable>,
    /// Output (target) channels, in order.
    pub outputs: Vec<Variable>,
}

impl VariableSet {
    /// The ERA5-style 23-input / 3-output layout of the paper's pretraining
    /// datasets (5 static + 12 atmospheric + 6 surface → tmin/tmax/prcp).
    pub fn era5_like() -> Self {
        use VariableKind::*;
        let mut inputs = Vec::with_capacity(23);
        // 5 static fields.
        inputs.push(Variable::new("topography", Static, 3.2, 1.0, 0.5, 0.0));
        inputs.push(Variable::new("land_mask", Static, 2.5, 0.5, 0.5, 0.0));
        inputs.push(Variable::new("soil_type", Static, 2.8, 1.0, 0.0, 0.2));
        inputs.push(Variable::new("lat_coord", Static, 10.0, 1.0, 0.0, 0.0));
        inputs.push(Variable::new("lon_coord", Static, 10.0, 1.0, 0.0, 0.0));
        // 12 atmospheric: q, u, v, t at 200/500/850 hPa.
        for level in ["200", "500", "850"] {
            inputs.push(Variable::new(&format!("q{level}"), Atmospheric, 2.6, 1.5, 5.0, -0.8));
            inputs.push(Variable::new(&format!("u{level}"), Atmospheric, 2.8, 8.0, 5.0, 0.0));
            inputs.push(Variable::new(&format!("v{level}"), Atmospheric, 2.8, 8.0, 0.0, 0.0));
            inputs.push(Variable::new(&format!("t{level}"), Atmospheric, 3.0, 6.0, 260.0, -6.5));
        }
        // 6 surface variables.
        let surface = [
            Variable::new("t2m", Surface, 3.0, 8.0, 288.0, -6.5),
            Variable::new("tmin_in", Surface, 3.0, 8.0, 283.0, -6.5),
            Variable::new("tmax_in", Surface, 3.0, 8.0, 293.0, -6.5),
            Variable::new("prcp_in", Surface, 2.2, 1.0, 0.0, 1.5),
            Variable::new("sp", Surface, 3.4, 10.0, 1013.0, -110.0),
            Variable::new("w10m", Surface, 2.6, 3.0, 4.0, 0.5),
        ];
        inputs.extend(surface);
        let outputs = vec![
            Variable::new("tmin", Surface, 3.0, 8.0, 283.0, -6.5),
            Variable::new("tmax", Surface, 3.0, 8.0, 293.0, -6.5),
            Variable::new("prcp", Surface, 2.2, 1.0, 0.0, 1.5),
        ];
        Self { inputs, outputs }
    }

    /// The PRISM/DAYMET-style 7-input / 3-output layout used for US-focused
    /// pretraining (Table I rows 3–4).
    pub fn daymet_like() -> Self {
        let era5 = Self::era5_like();
        // 7 inputs: topography, land mask + 5 surface observables.
        let pick = ["topography", "land_mask", "t2m", "tmin_in", "tmax_in", "prcp_in", "w10m"];
        let inputs = era5
            .inputs
            .iter()
            .filter(|v| pick.contains(&v.name.as_str()))
            .cloned()
            .collect();
        Self { inputs, outputs: era5.outputs }
    }

    /// Number of input channels.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output channels.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Index of an input channel by name.
    pub fn input_index(&self, name: &str) -> Option<usize> {
        self.inputs.iter().position(|v| v.name == name)
    }

    /// Index of an output channel by name.
    pub fn output_index(&self, name: &str) -> Option<usize> {
        self.outputs.iter().position(|v| v.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn era5_layout_matches_table1() {
        let vs = VariableSet::era5_like();
        assert_eq!(vs.num_inputs(), 23);
        assert_eq!(vs.num_outputs(), 3);
        let statics = vs.inputs.iter().filter(|v| v.kind == VariableKind::Static).count();
        let atmos = vs.inputs.iter().filter(|v| v.kind == VariableKind::Atmospheric).count();
        let surface = vs.inputs.iter().filter(|v| v.kind == VariableKind::Surface).count();
        assert_eq!((statics, atmos, surface), (5, 12, 6));
    }

    #[test]
    fn daymet_layout_matches_table1() {
        let vs = VariableSet::daymet_like();
        assert_eq!(vs.num_inputs(), 7);
        assert_eq!(vs.num_outputs(), 3);
    }

    #[test]
    fn channel_lookup() {
        let vs = VariableSet::era5_like();
        assert_eq!(vs.input_index("topography"), Some(0));
        assert!(vs.input_index("t850").is_some());
        assert_eq!(vs.output_index("prcp"), Some(2));
        assert_eq!(vs.input_index("nope"), None);
    }

    #[test]
    fn temperature_variables_cool_with_altitude() {
        let vs = VariableSet::era5_like();
        for v in vs.inputs.iter().chain(&vs.outputs) {
            if v.name.starts_with('t') && v.name != "topography" {
                assert!(v.topo_coupling < 0.0, "{} should have lapse-rate cooling", v.name);
            }
            if v.name.starts_with("prcp") {
                assert!(v.topo_coupling > 0.0, "{} should be orographically enhanced", v.name);
            }
        }
    }
}
