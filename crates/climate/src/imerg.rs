//! "IMERG-like" observation stream for the generalization experiment.
//!
//! The paper's Fig. 8 evaluates a model trained on reanalysis-style data
//! against the IMERG satellite product — two datasets with *different
//! statistical properties* ("Since ERA5 ... and IMERG contain uncertainties,
//! perfect alignment is not expected"). We reproduce that source mismatch by
//! observing the same underlying truth through a distorted sensor:
//! multiplicative log-normal retrieval noise, a power-law recalibration and
//! a detection threshold that censors drizzle.

use crate::synth::{gaussian_random_field, GrfSpec, WorldGenerator};

/// Parameters of the simulated satellite retrieval.
#[derive(Debug, Clone, Copy)]
pub struct ImergLikeParams {
    /// Std-dev of the multiplicative log-normal noise.
    pub noise_sigma: f32,
    /// Power-law recalibration exponent (`obs = a * truth^b`).
    pub gamma: f32,
    /// Gain of the recalibration.
    pub gain: f32,
    /// Minimum detectable precipitation (mm/day); below this reads 0.
    pub detection_threshold: f32,
    /// Seed for the retrieval noise (independent of the world seed).
    pub sensor_seed: u64,
}

impl Default for ImergLikeParams {
    fn default() -> Self {
        Self {
            noise_sigma: 0.25,
            gamma: 0.95,
            gain: 1.08,
            detection_threshold: 0.1,
            sensor_seed: 0xD00D,
        }
    }
}

/// Observe the world's precipitation at timestep `t` through the simulated
/// satellite sensor.
pub fn observe_precipitation(world: &WorldGenerator, t: u64, params: ImergLikeParams) -> Vec<f32> {
    let truth = world.field("prcp", t);
    let (h, w) = (world.grid.h, world.grid.w);
    // Spatially-correlated retrieval noise (smooth, not per-pixel white).
    let noise = gaussian_random_field(h, w, GrfSpec { slope: 2.5 }, params.sensor_seed.wrapping_add(t));
    truth
        .iter()
        .zip(&noise)
        .map(|(&p, &n)| {
            let recal = params.gain * p.max(0.0).powf(params.gamma);
            let observed = recal * (params.noise_sigma * n).exp();
            if observed < params.detection_threshold {
                0.0
            } else {
                observed
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::LatLonGrid;
    use crate::variables::VariableSet;

    fn world() -> WorldGenerator {
        WorldGenerator::new(LatLonGrid::global(32, 64), VariableSet::era5_like(), 5)
    }

    #[test]
    fn observation_is_nonnegative_and_censored() {
        let w = world();
        let obs = observe_precipitation(&w, 1, ImergLikeParams::default());
        for &v in &obs {
            assert!(v == 0.0 || v >= 0.1, "censoring must zero sub-threshold values, got {v}");
        }
    }

    #[test]
    fn observation_correlates_with_truth_but_differs() {
        let w = world();
        let truth = w.field("prcp", 2);
        let obs = observe_precipitation(&w, 2, ImergLikeParams::default());
        assert_ne!(truth, obs, "sensor must distort");
        // Correlation remains high: same weather, different calibration.
        let n = truth.len() as f64;
        let mt: f64 = truth.iter().map(|&v| v as f64).sum::<f64>() / n;
        let mo: f64 = obs.iter().map(|&v| v as f64).sum::<f64>() / n;
        let mut cov = 0.0;
        let (mut vt, mut vo) = (0.0, 0.0);
        for (&a, &b) in truth.iter().zip(&obs) {
            cov += (a as f64 - mt) * (b as f64 - mo);
            vt += (a as f64 - mt).powi(2);
            vo += (b as f64 - mo).powi(2);
        }
        let corr = cov / (vt.sqrt() * vo.sqrt());
        assert!(corr > 0.7, "obs-truth correlation {corr} should stay high");
        assert!(corr < 0.999, "but not perfect");
    }

    #[test]
    fn deterministic_given_seeds() {
        let w = world();
        let a = observe_precipitation(&w, 3, ImergLikeParams::default());
        let b = observe_precipitation(&w, 3, ImergLikeParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn different_sensor_seed_changes_noise() {
        let w = world();
        let a = observe_precipitation(&w, 3, ImergLikeParams::default());
        let b = observe_precipitation(
            &w,
            3,
            ImergLikeParams { sensor_seed: 99, ..Default::default() },
        );
        assert_ne!(a, b);
    }
}
