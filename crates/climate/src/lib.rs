//! # orbit2-climate
//!
//! Synthetic climate-data substrate standing in for the paper's ERA5 /
//! PRISM / DAYMET / IMERG datasets (Table I), which we cannot ship.
//!
//! The generator is built so that the *properties that matter for
//! downscaling evaluation* are preserved:
//!
//! * fields are spectral Gaussian random fields with per-variable power-law
//!   slopes (realistic spatial spectra, so Fig. 7(a)-style spectral analysis
//!   is meaningful),
//! * every variable is coupled to a shared topography and to the other
//!   variables through simple physical relations (lapse-rate cooling,
//!   orographic precipitation enhancement, humidity–temperature coupling),
//!   so multi-variable inputs genuinely inform the targets,
//! * coarse inputs are *area-averages* of the fine truth (plus the extra
//!   atmospheric/static channels of Table I), making the coarse→fine task a
//!   real ill-posed inverse problem,
//! * an "IMERG-like" observation variant applies a distribution shift
//!   (multiplicative noise + recalibration) to evaluate generalization the
//!   way the paper's Fig. 8 does (reanalysis-trained, satellite-evaluated).
//!
//! Everything is deterministic given a `u64` seed.

pub mod catalog;
pub mod dataset;
pub mod diagnostics;
pub mod grid;
pub mod imerg;
pub mod mixed;
pub mod normalize;
pub mod synth;
pub mod variables;

pub use catalog::{paper_catalog, DatasetCatalogEntry, DatasetRole};
pub use dataset::{DownscalingDataset, DownscalingSample, Split};
pub use grid::LatLonGrid;
pub use mixed::MixedDataset;
pub use normalize::{ChannelStats, Normalizer};
pub use synth::{GrfSpec, WorldGenerator};
pub use variables::{VariableKind, VariableSet};
