//! Latitude/longitude grid geometry and latitude weighting.
//!
//! The Bayesian data-likelihood term of the Reslim loss is a
//! *latitude-weighted* MSE: cells shrink toward the poles, so errors there
//! must count less (paper Sec. III-A, matrix `D`).

use serde::{Deserialize, Serialize};

/// Circumference-derived km per degree at the equator.
pub const KM_PER_DEGREE: f64 = 111.195;

/// A regular global (or regional) latitude/longitude grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatLonGrid {
    /// Rows (latitude bands), north to south.
    pub h: usize,
    /// Columns (longitude), west to east.
    pub w: usize,
    /// Northernmost latitude (degrees).
    pub lat_north: f64,
    /// Southernmost latitude (degrees).
    pub lat_south: f64,
    /// Westernmost longitude (degrees).
    pub lon_west: f64,
    /// Easternmost longitude (degrees).
    pub lon_east: f64,
}

impl LatLonGrid {
    /// A global grid of `h x w` cells.
    pub fn global(h: usize, w: usize) -> Self {
        Self { h, w, lat_north: 90.0, lat_south: -90.0, lon_west: -180.0, lon_east: 180.0 }
    }

    /// A continental-US-like regional grid.
    pub fn conus(h: usize, w: usize) -> Self {
        Self { h, w, lat_north: 50.0, lat_south: 24.0, lon_west: -125.0, lon_east: -66.0 }
    }

    /// Latitude at the center of row `i` (degrees, decreasing with `i`).
    pub fn lat(&self, i: usize) -> f64 {
        let step = (self.lat_north - self.lat_south) / self.h as f64;
        self.lat_north - (i as f64 + 0.5) * step
    }

    /// Longitude at the center of column `j` (degrees).
    pub fn lon(&self, j: usize) -> f64 {
        let step = (self.lon_east - self.lon_west) / self.w as f64;
        self.lon_west + (j as f64 + 0.5) * step
    }

    /// Approximate north-south grid spacing in km.
    pub fn resolution_km(&self) -> f64 {
        (self.lat_north - self.lat_south) / self.h as f64 * KM_PER_DEGREE
    }

    /// Per-row latitude weights `cos(lat)`, normalized to mean 1 over the
    /// grid — the diagonal of the paper's weighting matrix `D`.
    pub fn latitude_weights(&self) -> Vec<f32> {
        let raw: Vec<f64> = (0..self.h).map(|i| self.lat(i).to_radians().cos().max(0.0)).collect();
        let mean: f64 = raw.iter().sum::<f64>() / self.h as f64;
        raw.iter().map(|&v| (v / mean) as f32).collect()
    }

    /// Full `h x w` weight field (each row constant), normalized to mean 1.
    pub fn latitude_weight_field(&self) -> Vec<f32> {
        let rows = self.latitude_weights();
        let mut out = Vec::with_capacity(self.h * self.w);
        for &r in &rows {
            for _ in 0..self.w {
                out.push(r);
            }
        }
        out
    }

    /// The grid refined by an integer factor (downscaling target geometry).
    pub fn refine(&self, factor: usize) -> LatLonGrid {
        LatLonGrid { h: self.h * factor, w: self.w * factor, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_grid_latitudes_span_poles() {
        let g = LatLonGrid::global(4, 8);
        assert!(g.lat(0) > 60.0);
        assert!(g.lat(3) < -60.0);
        assert!((g.lat(1) + g.lat(2)).abs() < 1e-9, "symmetric about equator");
    }

    #[test]
    fn weights_peak_at_equator_and_mean_one() {
        let g = LatLonGrid::global(8, 4);
        let w = g.latitude_weights();
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        assert!((mean - 1.0).abs() < 1e-5);
        // Equator rows (3,4) should outweigh pole rows (0,7).
        assert!(w[3] > w[0]);
        assert!(w[4] > w[7]);
        assert!((w[3] - w[4]).abs() < 1e-6);
    }

    #[test]
    fn weight_field_shape_and_rows() {
        let g = LatLonGrid::global(4, 3);
        let f = g.latitude_weight_field();
        assert_eq!(f.len(), 12);
        assert_eq!(f[0], f[2]);
        assert_ne!(f[0], f[4]);
    }

    #[test]
    fn refine_multiplies_resolution() {
        let g = LatLonGrid::global(180, 360);
        let r = g.refine(4);
        assert_eq!(r.h, 720);
        assert_eq!(r.w, 1440);
        assert!((g.resolution_km() / r.resolution_km() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn conus_region_bounds() {
        let g = LatLonGrid::conus(26, 59);
        assert!(g.lat(0) < 50.0 && g.lat(25) > 24.0);
        assert!(g.lon(0) > -125.0 && g.lon(58) < -66.0);
        // ~1 degree cells -> ~111 km
        assert!((g.resolution_km() - 111.2).abs() < 5.0);
    }
}
