//! Climate-science diagnostics on precipitation and temperature fields:
//! wet-day statistics, field quantiles and simple spell analysis. Used to
//! check that the synthetic substrate behaves like the real products it
//! stands in for, and to compare model output climatology against truth.

/// Fraction of pixels above the wet threshold (default 1 mm/day in the
/// literature).
pub fn wet_fraction(precip: &[f32], threshold: f32) -> f64 {
    if precip.is_empty() {
        return 0.0;
    }
    precip.iter().filter(|&&p| p >= threshold).count() as f64 / precip.len() as f64
}

/// Mean intensity over wet pixels only (the "SDII" index).
pub fn wet_intensity(precip: &[f32], threshold: f32) -> f64 {
    let wet: Vec<f32> = precip.iter().copied().filter(|&p| p >= threshold).collect();
    if wet.is_empty() {
        return 0.0;
    }
    wet.iter().map(|&p| p as f64).sum::<f64>() / wet.len() as f64
}

/// Empirical quantile of a field (q in [0, 1]).
pub fn quantile(field: &[f32], q: f64) -> f32 {
    assert!(!field.is_empty());
    assert!((0.0..=1.0).contains(&q));
    let mut sorted = field.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Compare the climatology (wet fraction, intensity, p95/p99) of a
/// prediction against the truth; returns relative errors.
#[derive(Debug, Clone, Copy)]
pub struct ClimatologyErrors {
    /// Relative error of the wet-day fraction.
    pub wet_fraction_err: f64,
    /// Relative error of the wet intensity.
    pub intensity_err: f64,
    /// Relative error of the 95th percentile.
    pub p95_err: f64,
    /// Relative error of the 99th percentile.
    pub p99_err: f64,
}

/// Compute climatology errors of `pred` against `truth` precipitation.
pub fn climatology_errors(pred: &[f32], truth: &[f32], wet_threshold: f32) -> ClimatologyErrors {
    let rel = |a: f64, b: f64| {
        if b.abs() < 1e-9 {
            a.abs()
        } else {
            ((a - b) / b).abs()
        }
    };
    ClimatologyErrors {
        wet_fraction_err: rel(wet_fraction(pred, wet_threshold), wet_fraction(truth, wet_threshold)),
        intensity_err: rel(wet_intensity(pred, wet_threshold), wet_intensity(truth, wet_threshold)),
        p95_err: rel(quantile(pred, 0.95) as f64, quantile(truth, 0.95) as f64),
        p99_err: rel(quantile(pred, 0.99) as f64, quantile(truth, 0.99) as f64),
    }
}

/// Longest run of consecutive values meeting `pred` along a 1-d series
/// (dry/wet spell length along time or a transect).
pub fn longest_spell(series: &[f32], pred: impl Fn(f32) -> bool) -> usize {
    let mut best = 0usize;
    let mut run = 0usize;
    for &v in series {
        if pred(v) {
            run += 1;
            best = best.max(run);
        } else {
            run = 0;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::LatLonGrid;
    use crate::synth::WorldGenerator;
    use crate::variables::VariableSet;

    #[test]
    fn wet_fraction_bounds_and_known_values() {
        assert_eq!(wet_fraction(&[], 1.0), 0.0);
        assert_eq!(wet_fraction(&[0.0, 2.0, 3.0, 0.5], 1.0), 0.5);
        assert_eq!(wet_fraction(&[5.0; 4], 1.0), 1.0);
    }

    #[test]
    fn wet_intensity_ignores_dry_pixels() {
        assert_eq!(wet_intensity(&[0.0, 2.0, 4.0], 1.0), 3.0);
        assert_eq!(wet_intensity(&[0.0, 0.1], 1.0), 0.0);
    }

    #[test]
    fn quantiles_are_ordered() {
        let f: Vec<f32> = (0..100).map(|i| i as f32).collect();
        assert!(quantile(&f, 0.5) < quantile(&f, 0.95));
        assert!(quantile(&f, 0.95) < quantile(&f, 0.99));
        assert_eq!(quantile(&f, 0.0), 0.0);
        assert_eq!(quantile(&f, 1.0), 99.0);
    }

    #[test]
    fn synthetic_precip_has_plausible_climatology() {
        // The generator should produce intermittent precipitation: neither
        // all-dry nor all-wet, with a heavy tail (p99 >> median).
        let w = WorldGenerator::new(LatLonGrid::conus(32, 64), VariableSet::era5_like(), 3);
        let p = w.field("prcp", 5);
        let wf = wet_fraction(&p, 1.0);
        assert!(wf > 0.05 && wf < 0.95, "wet fraction {wf} implausible");
        let p99 = quantile(&p, 0.99);
        let p50 = quantile(&p, 0.5);
        assert!(p99 > 2.0 * p50.max(0.1), "tail p99 {p99} vs median {p50} not heavy");
    }

    #[test]
    fn climatology_errors_zero_for_identity() {
        let w = WorldGenerator::new(LatLonGrid::conus(16, 32), VariableSet::era5_like(), 4);
        let p = w.field("prcp", 1);
        let e = climatology_errors(&p, &p, 1.0);
        assert_eq!(e.wet_fraction_err, 0.0);
        assert_eq!(e.p95_err, 0.0);
    }

    #[test]
    fn climatology_detects_scaling_bias() {
        let w = WorldGenerator::new(LatLonGrid::conus(16, 32), VariableSet::era5_like(), 5);
        let truth = w.field("prcp", 2);
        let biased: Vec<f32> = truth.iter().map(|&x| 1.5 * x).collect();
        let e = climatology_errors(&biased, &truth, 1.0);
        assert!(e.intensity_err > 0.3, "50% scaling must show up: {e:?}");
    }

    #[test]
    fn spells() {
        let s = [0.0f32, 0.0, 2.0, 2.0, 2.0, 0.0, 2.0];
        assert_eq!(longest_spell(&s, |v| v >= 1.0), 3);
        assert_eq!(longest_spell(&s, |v| v < 1.0), 2);
        assert_eq!(longest_spell(&[], |v| v > 0.0), 0);
    }
}
