//! # orbit2-metrics
//!
//! The evaluation metrics of the paper's Sec. IV ("Performance Metrics"):
//! coefficient of determination (R²), RMSE, RMSE over quantile exceedances
//! (σ1/σ2/σ3 = 68/95/99.7%), SSIM, PSNR, and the log-precipitation transform
//! (`log(x+1)`) used for all precipitation RMSE values, plus radial power
//! spectrum comparison (Fig. 7(a)).

pub mod precip;
pub mod regression;
pub mod ssim;

pub use precip::{log_precip, log_precip_slice};
pub use regression::{latitude_weighted_rmse, quantile_rmse, r2_score, rmse, EvalReport, ReportDelta};
pub use ssim::{psnr, ssim};

/// Compute the full Table IV metric row for a prediction/observation pair.
///
/// `pred`/`truth` are same-length slices (one variable, all pixels of all
/// evaluated samples). When `log_space` is set, both are transformed with
/// `log(x+1)` before RMSE-family metrics, as the paper does for
/// precipitation; R², SSIM and PSNR require the caller to pass 2-D geometry.
pub fn evaluate(
    pred: &[f32],
    truth: &[f32],
    h: usize,
    w: usize,
    log_space: bool,
) -> regression::EvalReport {
    assert_eq!(pred.len(), truth.len());
    assert_eq!(pred.len() % (h * w), 0, "data not a whole number of {h}x{w} frames");
    let (p, t): (Vec<f32>, Vec<f32>) = if log_space {
        (log_precip_slice(pred), log_precip_slice(truth))
    } else {
        (pred.to_vec(), truth.to_vec())
    };
    let r2 = r2_score(&p, &t);
    let rm = rmse(&p, &t);
    let q1 = quantile_rmse(&p, &t, 0.68);
    let q2 = quantile_rmse(&p, &t, 0.95);
    let q3 = quantile_rmse(&p, &t, 0.997);
    // SSIM/PSNR averaged over frames.
    let frames = p.len() / (h * w);
    let mut ssim_acc = 0.0;
    let mut psnr_acc = 0.0;
    for f in 0..frames {
        let pf = &p[f * h * w..(f + 1) * h * w];
        let tf = &t[f * h * w..(f + 1) * h * w];
        ssim_acc += ssim(pf, tf, h, w);
        psnr_acc += psnr(pf, tf);
    }
    regression::EvalReport {
        r2,
        rmse: rm,
        rmse_sigma1: q1,
        rmse_sigma2: q2,
        rmse_sigma3: q3,
        ssim: ssim_acc / frames as f64,
        psnr: psnr_acc / frames as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_perfect_prediction() {
        let truth: Vec<f32> = (0..64).map(|i| (i as f32 * 0.3).sin() + 2.0).collect();
        let rep = evaluate(&truth, &truth, 8, 8, false);
        assert!((rep.r2 - 1.0).abs() < 1e-9);
        assert_eq!(rep.rmse, 0.0);
        assert!((rep.ssim - 1.0).abs() < 1e-9);
        assert!(rep.psnr > 80.0);
    }

    #[test]
    fn log_space_changes_rmse() {
        let truth: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let pred: Vec<f32> = truth.iter().map(|&x| x * 1.1).collect();
        let lin = evaluate(&pred, &truth, 8, 8, false);
        let log = evaluate(&pred, &truth, 8, 8, true);
        assert!(log.rmse < lin.rmse, "log transform compresses large errors");
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn evaluate_rejects_ragged_frames() {
        evaluate(&[0.0; 10], &[0.0; 10], 3, 3, false);
    }
}
