//! Scalar regression metrics: R², RMSE, quantile-exceedance RMSE and the
//! latitude-weighted RMSE used by the Bayesian data-likelihood term.

/// A full metric row in the style of the paper's Table IV.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalReport {
    /// Coefficient of determination.
    pub r2: f64,
    /// Root mean square error.
    pub rmse: f64,
    /// RMSE over pixels above the 68th percentile of the truth.
    pub rmse_sigma1: f64,
    /// RMSE over pixels above the 95th percentile of the truth.
    pub rmse_sigma2: f64,
    /// RMSE over pixels above the 99.7th percentile of the truth.
    pub rmse_sigma3: f64,
    /// Structural similarity index (frame-averaged).
    pub ssim: f64,
    /// Peak signal-to-noise ratio in dB (frame-averaged).
    pub psnr: f64,
}

/// Absolute per-metric difference between two [`EvalReport`]s, used by the
/// reduced-precision quality gate (f32 vs bf16/int8 sessions must agree
/// within tolerance on every Table IV task).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReportDelta {
    /// `|r2_a - r2_b|`.
    pub r2: f64,
    /// `|ssim_a - ssim_b|`.
    pub ssim: f64,
    /// `|rmse_a - rmse_b|`.
    pub rmse: f64,
}

impl EvalReport {
    /// Absolute deltas of the gated metrics against `other`.
    pub fn delta(&self, other: &EvalReport) -> ReportDelta {
        ReportDelta {
            r2: (self.r2 - other.r2).abs(),
            ssim: (self.ssim - other.ssim).abs(),
            rmse: (self.rmse - other.rmse).abs(),
        }
    }
}

impl ReportDelta {
    /// Whether both gated metrics sit within their tolerances (RMSE is
    /// reported for diagnostics but not gated — it is scale-dependent,
    /// while R² and SSIM are normalized).
    pub fn within(&self, r2_tol: f64, ssim_tol: f64) -> bool {
        self.r2.is_finite()
            && self.ssim.is_finite()
            && self.r2 <= r2_tol
            && self.ssim <= ssim_tol
    }
}

/// Coefficient of determination `1 - SS_res / SS_tot`.
///
/// Equals 1 for a perfect prediction, 0 for predicting the mean, and can go
/// negative for predictions worse than the mean.
pub fn r2_score(pred: &[f32], truth: &[f32]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!truth.is_empty());
    let n = truth.len() as f64;
    let mean: f64 = truth.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for (&p, &t) in pred.iter().zip(truth) {
        ss_res += (p as f64 - t as f64).powi(2);
        ss_tot += (t as f64 - mean).powi(2);
    }
    if ss_tot == 0.0 {
        return if ss_res == 0.0 { 1.0 } else { f64::NEG_INFINITY };
    }
    1.0 - ss_res / ss_tot
}

/// Root mean square error.
pub fn rmse(pred: &[f32], truth: &[f32]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!truth.is_empty());
    let mse: f64 = pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| (p as f64 - t as f64).powi(2))
        .sum::<f64>()
        / truth.len() as f64;
    mse.sqrt()
}

/// RMSE restricted to pixels where the *truth* exceeds its own `q`-quantile
/// — the paper's "RMSE σ1 > 68%", "σ2 > 95%", "σ3 > 99.7%" extreme-event
/// columns.
pub fn quantile_rmse(pred: &[f32], truth: &[f32], q: f64) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!((0.0..1.0).contains(&q), "quantile must be in [0,1)");
    let mut sorted: Vec<f32> = truth.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((sorted.len() as f64 - 1.0) * q).floor() as usize;
    let threshold = sorted[idx];
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for (&p, &t) in pred.iter().zip(truth) {
        if t > threshold {
            sum += (p as f64 - t as f64).powi(2);
            count += 1;
        }
    }
    if count == 0 {
        // Degenerate distribution (e.g. all-zero precipitation): fall back
        // to the pixels equal to the maximum.
        let max = *sorted.last().unwrap();
        for (&p, &t) in pred.iter().zip(truth) {
            if t >= max {
                sum += (p as f64 - t as f64).powi(2);
                count += 1;
            }
        }
    }
    (sum / count as f64).sqrt()
}

/// Latitude-weighted RMSE: `sqrt(mean(weight * err^2))` with `weight` a
/// per-pixel field (normalized to mean 1), matching the `D` matrix of the
/// Bayesian loss.
pub fn latitude_weighted_rmse(pred: &[f32], truth: &[f32], weights: &[f32]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert_eq!(pred.len() % weights.len(), 0, "weights must tile the data");
    let mut sum = 0.0f64;
    for (i, (&p, &t)) in pred.iter().zip(truth).enumerate() {
        let w = weights[i % weights.len()] as f64;
        sum += w * (p as f64 - t as f64).powi(2);
    }
    (sum / pred.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_delta_gates_r2_and_ssim() {
        let base = EvalReport {
            r2: 0.95,
            rmse: 1.0,
            rmse_sigma1: 1.0,
            rmse_sigma2: 1.0,
            rmse_sigma3: 1.0,
            ssim: 0.90,
            psnr: 30.0,
        };
        let near = EvalReport { r2: 0.949, ssim: 0.902, rmse: 1.3, ..base };
        let d = base.delta(&near);
        assert!((d.r2 - 0.001).abs() < 1e-12);
        assert!(d.within(0.01, 0.01));
        // RMSE is diagnostic only: a large RMSE delta alone does not fail.
        assert!(d.rmse > 0.2 && d.within(0.01, 0.01));
        let far = EvalReport { r2: 0.80, ..base };
        assert!(!base.delta(&far).within(0.01, 0.01));
        let nan = EvalReport { ssim: f64::NAN, ..base };
        assert!(!base.delta(&nan).within(1.0, 1.0), "NaN deltas must fail the gate");
    }

    #[test]
    fn r2_perfect_and_mean_baselines() {
        let t: Vec<f32> = (0..10).map(|i| i as f32).collect();
        assert!((r2_score(&t, &t) - 1.0).abs() < 1e-12);
        let mean_pred = vec![4.5f32; 10];
        assert!(r2_score(&mean_pred, &t).abs() < 1e-9);
        // Anti-correlated prediction is negative.
        let anti: Vec<f32> = t.iter().rev().cloned().collect();
        assert!(r2_score(&anti, &t) < 0.0);
    }

    #[test]
    fn rmse_known_value() {
        assert!((rmse(&[1.0, 2.0], &[0.0, 0.0]) - (2.5f64).sqrt()).abs() < 1e-9);
        assert_eq!(rmse(&[3.0], &[3.0]), 0.0);
    }

    #[test]
    fn quantile_rmse_targets_extremes() {
        // Error only on the largest truth values: overall RMSE is small but
        // sigma3 RMSE is large.
        let n = 1000;
        let truth: Vec<f32> = (0..n).map(|i| i as f32 / n as f32).collect();
        let mut pred = truth.clone();
        for p in pred.iter_mut().skip(n - 3) {
            *p += 10.0;
        }
        let overall = rmse(&pred, &truth);
        let extreme = quantile_rmse(&pred, &truth, 0.997);
        assert!(extreme > overall * 5.0, "extreme {extreme} vs overall {overall}");
    }

    #[test]
    fn quantile_rmse_monotone_in_quantile_for_tail_errors() {
        let n = 1000;
        let truth: Vec<f32> = (0..n).map(|i| i as f32 / n as f32).collect();
        // Error grows with the truth value.
        let pred: Vec<f32> = truth.iter().map(|&t| t + t * t).collect();
        let q68 = quantile_rmse(&pred, &truth, 0.68);
        let q95 = quantile_rmse(&pred, &truth, 0.95);
        let q997 = quantile_rmse(&pred, &truth, 0.997);
        assert!(q68 < q95 && q95 < q997);
    }

    #[test]
    fn quantile_rmse_degenerate_distribution() {
        let truth = vec![0.0f32; 100];
        let pred = vec![0.5f32; 100];
        let v = quantile_rmse(&pred, &truth, 0.95);
        assert!((v - 0.5).abs() < 1e-9);
    }

    #[test]
    fn latitude_weighting_discounts_poles() {
        // Two-row field: row 0 at pole (weight ~0), row 1 at equator
        // (weight ~2 after mean normalization). Error only at pole.
        let weights = vec![0.0, 0.0, 2.0, 2.0];
        let truth = vec![0.0f32; 4];
        let pole_err = latitude_weighted_rmse(&[1.0, 1.0, 0.0, 0.0], &truth, &weights);
        let eq_err = latitude_weighted_rmse(&[0.0, 0.0, 1.0, 1.0], &truth, &weights);
        assert_eq!(pole_err, 0.0);
        assert!(eq_err > 0.9);
    }

    #[test]
    fn weights_tile_across_frames() {
        let weights = vec![1.0f32, 1.0];
        let truth = vec![0.0f32; 6];
        let pred = vec![2.0f32; 6];
        assert!((latitude_weighted_rmse(&pred, &truth, &weights) - 2.0).abs() < 1e-9);
    }
}
