//! The `log(x+1)` precipitation transform.
//!
//! "All RMSE values for precipitation are computed in log-transformed space
//! using log(x+1), where x denotes daily precipitation in millimeters"
//! (paper Sec. V-E). Negative inputs (possible for raw network outputs) are
//! clamped to zero first.

/// `log(max(x, 0) + 1)` for one value.
pub fn log_precip(x: f32) -> f32 {
    (x.max(0.0) + 1.0).ln()
}

/// Apply [`log_precip`] to a slice.
pub fn log_precip_slice(x: &[f32]) -> Vec<f32> {
    x.iter().map(|&v| log_precip(v)).collect()
}

/// Inverse transform `exp(y) - 1`.
pub fn inv_log_precip(y: f32) -> f32 {
    y.exp() - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_maps_to_zero() {
        assert_eq!(log_precip(0.0), 0.0);
    }

    #[test]
    fn negative_clamped() {
        assert_eq!(log_precip(-3.0), 0.0);
    }

    #[test]
    fn roundtrip() {
        for &x in &[0.0f32, 0.5, 5.0, 123.0] {
            assert!((inv_log_precip(log_precip(x)) - x).abs() < 1e-3 * (1.0 + x));
        }
    }

    #[test]
    fn compresses_large_values() {
        let a = log_precip(10.0);
        let b = log_precip(100.0);
        assert!(b - a < 90.0 * (a / 10.0), "log must compress the tail");
        assert!(b > a);
    }

    #[test]
    fn slice_matches_scalar() {
        let xs = [0.0f32, 1.0, 2.0];
        let ys = log_precip_slice(&xs);
        for (x, y) in xs.iter().zip(&ys) {
            assert_eq!(log_precip(*x), *y);
        }
    }
}
