//! Structural similarity (SSIM) and peak signal-to-noise ratio (PSNR).
//!
//! SSIM follows Wang et al. 2004 with an 8x8 sliding window (stride 4) and
//! the usual stabilizing constants, using the dynamic range of the ground
//! truth. PSNR also uses the truth's dynamic range, matching how image
//! metrics are applied to continuous geophysical fields.

/// Structural similarity between two `h x w` fields in `[-1, 1]`.
pub fn ssim(pred: &[f32], truth: &[f32], h: usize, w: usize) -> f64 {
    assert_eq!(pred.len(), h * w);
    assert_eq!(truth.len(), h * w);
    let range = dynamic_range(truth);
    let c1 = (0.01 * range).powi(2).max(1e-12);
    let c2 = (0.03 * range).powi(2).max(1e-12);
    let win = 8usize.min(h).min(w);
    let stride = (win / 2).max(1);
    let mut total = 0.0f64;
    let mut count = 0usize;
    let mut y = 0;
    while y + win <= h {
        let mut x = 0;
        while x + win <= w {
            total += window_ssim(pred, truth, w, y, x, win, c1, c2);
            count += 1;
            x += stride;
        }
        y += stride;
    }
    if count == 0 {
        // Field smaller than a window: single global window.
        return window_ssim(pred, truth, w, 0, 0, h.min(w), c1, c2);
    }
    total / count as f64
}

#[allow(clippy::too_many_arguments)]
fn window_ssim(pred: &[f32], truth: &[f32], stride: usize, y0: usize, x0: usize, win: usize, c1: f64, c2: f64) -> f64 {
    let n = (win * win) as f64;
    let (mut mp, mut mt) = (0.0f64, 0.0f64);
    for y in y0..y0 + win {
        for x in x0..x0 + win {
            mp += pred[y * stride + x] as f64;
            mt += truth[y * stride + x] as f64;
        }
    }
    mp /= n;
    mt /= n;
    let (mut vp, mut vt, mut cov) = (0.0f64, 0.0f64, 0.0f64);
    for y in y0..y0 + win {
        for x in x0..x0 + win {
            let dp = pred[y * stride + x] as f64 - mp;
            let dt = truth[y * stride + x] as f64 - mt;
            vp += dp * dp;
            vt += dt * dt;
            cov += dp * dt;
        }
    }
    vp /= n - 1.0;
    vt /= n - 1.0;
    cov /= n - 1.0;
    ((2.0 * mp * mt + c1) * (2.0 * cov + c2)) / ((mp * mp + mt * mt + c1) * (vp + vt + c2))
}

/// Peak signal-to-noise ratio in dB, using the truth's dynamic range as the
/// peak. Returns a large finite value (120 dB) for an exact match.
pub fn psnr(pred: &[f32], truth: &[f32]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    let mse: f64 = pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| (p as f64 - t as f64).powi(2))
        .sum::<f64>()
        / truth.len() as f64;
    if mse == 0.0 {
        return 120.0;
    }
    let range = dynamic_range(truth).max(1e-12);
    (10.0 * (range * range / mse).log10()).min(120.0)
}

fn dynamic_range(x: &[f32]) -> f64 {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in x {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (hi - lo).max(0.0) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy(truth: &[f32], amp: f32, seed: u64) -> Vec<f32> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        truth.iter().map(|&t| t + amp * rng.gen_range(-1.0f32..1.0)).collect()
    }

    fn field(h: usize, w: usize) -> Vec<f32> {
        (0..h * w)
            .map(|i| {
                let (y, x) = (i / w, i % w);
                (y as f32 * 0.3).sin() + (x as f32 * 0.2).cos()
            })
            .collect()
    }

    #[test]
    fn ssim_identity_is_one() {
        let f = field(32, 32);
        assert!((ssim(&f, &f, 32, 32) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ssim_decreases_with_noise() {
        let t = field(32, 32);
        let s_small = ssim(&noisy(&t, 0.1, 1), &t, 32, 32);
        let s_big = ssim(&noisy(&t, 1.0, 1), &t, 32, 32);
        assert!(s_small > s_big);
        assert!(s_small > 0.8);
        assert!((-1.0..=1.0).contains(&s_big));
    }

    #[test]
    fn ssim_bounded() {
        let t = field(16, 16);
        let anti: Vec<f32> = t.iter().map(|&v| -v).collect();
        let s = ssim(&anti, &t, 16, 16);
        assert!((-1.0..=1.0).contains(&s));
        assert!(s < 0.99, "a distorted field cannot reach identity SSIM, got {s}");
        // A structure-destroying distortion (shuffled rows) scores lower
        // than mild noise.
        let mut shuffled = t.clone();
        shuffled.rotate_left(16 * 7 + 3);
        let s_shuf = ssim(&shuffled, &t, 16, 16);
        assert!(s_shuf < ssim(&noisy(&t, 0.05, 9), &t, 16, 16));
    }

    #[test]
    fn ssim_small_field_fallback() {
        let t = vec![1.0f32, 2.0, 3.0, 4.0];
        assert!((ssim(&t, &t, 2, 2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn psnr_identity_and_monotonicity() {
        let t = field(16, 16);
        assert_eq!(psnr(&t, &t), 120.0);
        let p_small = psnr(&noisy(&t, 0.01, 2), &t);
        let p_big = psnr(&noisy(&t, 0.5, 2), &t);
        assert!(p_small > p_big);
        assert!(p_small > 30.0);
    }

    #[test]
    fn psnr_known_value() {
        // Range 1, constant error 0.1 -> PSNR = 20 dB.
        let truth = vec![0.0f32, 1.0];
        let pred = vec![0.1f32, 1.1];
        assert!((psnr(&pred, &truth) - 20.0).abs() < 1e-4);
    }
}
