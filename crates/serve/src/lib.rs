//! orbit2-serve: a persistent inference server for the ORBIT-2
//! reproduction.
//!
//! Training amortizes weight preparation across an epoch; ad-hoc
//! inference pays it per call. This crate closes the gap for serving:
//! a [`Server`] owns one model and one prepared
//! [`InferenceSession`](orbit2_model::InferenceSession) for its whole
//! lifetime, and turns a stream of independent requests into batched
//! work on the shared session:
//!
//! - **Async submission** — [`Server::submit`] validates and enqueues,
//!   returning a [`Handle`] the caller blocks on (or polls) at its
//!   leisure; execution happens on the vendored rayon shim's persistent
//!   worker registry via detached `rayon::spawn` jobs.
//! - **Cross-request microbatching** — same-shaped tile jobs from
//!   different in-flight requests are stacked along the row axis and run
//!   as one forward (`orbit2_model::forward_batch`), which is
//!   **bit-identical** to running them separately. A bounded microbatch
//!   window trades a little latency for the stacking opportunity.
//! - **Fair tile scheduling** — batches are filled round-robin across
//!   requests, so a many-tile request cannot starve a small one.
//! - **LRU response cache** — region-sourced requests are deterministic,
//!   so finished responses are cached by
//!   `(region, time, variables, compression, scale)` with hit/miss
//!   counters exposed through [`Server::cache_stats`].
//!
//! The [`tcp`] module adds a newline-delimited-JSON front end over
//! localhost TCP (see the `orbit2-serve` binary), with typed error
//! replies carrying the stable `ServeError::kind` strings.
//!
//! ```no_run
//! use orbit2_serve::{Server, ServerConfig, Region};
//! use orbit2::serving::ServeRequest;
//! # fn demo(model: orbit2_model::ReslimModel,
//! #         normalizer: orbit2_climate::Normalizer,
//! #         regions: Vec<Region>) {
//! let server = Server::start(model, normalizer, regions, ServerConfig::default());
//! let handle = server.submit(ServeRequest::region(1, "conus", 0));
//! let response = handle.wait().unwrap();
//! assert_eq!(response.shape.len(), 3);
//! # }
//! ```

mod cache;
mod oneshot;
mod server;
pub mod tcp;

pub use cache::CacheStats;
pub use oneshot::Handle;
pub use server::{Region, Server, ServerConfig, ServerStats};
pub use tcp::{serve, Client, ServerReply};
