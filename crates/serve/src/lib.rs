//! orbit2-serve: a persistent inference server for the ORBIT-2
//! reproduction.
//!
//! Training amortizes weight preparation across an epoch; ad-hoc
//! inference pays it per call. This crate closes the gap for serving:
//! a [`Server`] owns one model and one prepared
//! [`InferenceSession`](orbit2_model::InferenceSession) for its whole
//! lifetime, and turns a stream of independent requests into batched
//! work on the shared session:
//!
//! - **Async submission** — [`Server::submit`] validates and enqueues,
//!   returning a [`Handle`] the caller blocks on (or polls) at its
//!   leisure; execution happens on the vendored rayon shim's persistent
//!   worker registry via detached `rayon::spawn` jobs.
//! - **Cross-request microbatching** — same-shaped tile jobs from
//!   different in-flight requests are stacked along the row axis and run
//!   as one forward (`orbit2_model::forward_batch`), which is
//!   **bit-identical** to running them separately. A bounded microbatch
//!   window trades a little latency for the stacking opportunity.
//! - **Fair tile scheduling** — batches are filled round-robin across
//!   requests, so a many-tile request cannot starve a small one.
//! - **LRU response cache** — region-sourced requests are deterministic,
//!   so finished responses are cached by
//!   `(region, time, variables, compression, scale)` with hit/miss
//!   counters exposed through [`Server::cache_stats`].
//!
//! - **Resilience** — requests carry optional deadlines checked at
//!   admission, dispatch (expired queued tiles are shed before any
//!   forward runs), and stitch time; a panicking tile is quarantined by
//!   re-running its cobatched neighbors in isolation so only the culprit
//!   request fails (typed `internal`, never `bad_request`); and
//!   [`Server::drain`] stops admission, lets queued work finish, then
//!   completes stragglers with `shutting_down`. A [`orbit2::fault::FaultPlan`]
//!   armed via `ORBIT2_SERVE_FAULT_PLAN` injects panics and stragglers
//!   per (batch, job) to prove all of it under test. See DESIGN.md §10
//!   "Failure semantics".
//!
//! The [`tcp`] module adds a newline-delimited-JSON front end over
//! localhost TCP (see the `orbit2-serve` binary), with typed error
//! replies carrying the stable `ServeError::kind` strings, a
//! `{"cmd":"health"}` probe for load balancers, and a
//! [`Client::submit_with_retry`] helper implementing the recommended
//! jittered-backoff client loop.
//!
//! ```no_run
//! use orbit2_serve::{Server, ServerConfig, Region};
//! use orbit2::serving::ServeRequest;
//! # fn demo(model: orbit2_model::ReslimModel,
//! #         normalizer: orbit2_climate::Normalizer,
//! #         regions: Vec<Region>) {
//! let server = Server::start(model, normalizer, regions, ServerConfig::default());
//! let handle = server.submit(ServeRequest::region(1, "conus", 0));
//! let response = handle.wait().unwrap();
//! assert_eq!(response.shape.len(), 3);
//! # }
//! ```

mod cache;
mod oneshot;
mod server;
pub mod tcp;

pub use cache::CacheStats;
pub use oneshot::Handle;
pub use server::{Region, Server, ServerConfig, ServerStats};
pub use tcp::{serve, Client, RetryPolicy, ServerReply};
