//! Newline-delimited JSON over localhost TCP.
//!
//! One request per line, one response per line. Each connection gets a
//! reader thread (parses lines, submits to the server, forwards the
//! resulting [`Handle`] to the writer) and a writer thread (waits on
//! handles in submission order and writes the response lines). Splitting
//! the two means a client can pipeline requests without waiting for
//! earlier responses — and because every response echoes the request
//! `id`, clients are free to correlate out of order.
//!
//! Success lines are a serialized [`ServeResponse`]; failures are
//! `{"id": N, "error": {"kind": "...", "message": "..."}}` with `kind`
//! one of the stable [`ServeError::kind`] strings.
//!
//! Besides requests, a connection may send control lines of the form
//! `{"cmd": "..."}`. Commands today: `stats` (a serialized
//! [`ServeStats`] object) and `health` (a serialized [`ServeHealth`]
//! for load balancers: `{"status": "ok"|"draining", inflight,
//! queue_depth}`). Control replies ride the same FIFO as pipelined
//! request replies, so they arrive in line order.
//!
//! During a [`Server::drain`] the accept loop refuses new connections
//! while existing connections keep their writer threads, so every
//! already-submitted request flushes its FIFO reply (a response or a
//! typed `shutting_down` error) before the stream closes.

use crate::oneshot::Handle;
use crate::server::Server;
use orbit2::serving::{ServeError, ServeHealth, ServeRequest, ServeResponse, ServeStats, WireError};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Render one finished request as a wire line (no trailing newline).
pub fn response_line(id: u64, result: &Result<ServeResponse, ServeError>) -> String {
    match result {
        Ok(resp) => serde_json::to_string(resp).expect("response serializes"),
        Err(err) => {
            let mut obj = BTreeMap::new();
            obj.insert("id".to_string(), Value::Number(id as f64));
            obj.insert("error".to_string(), err.to_wire().serialize_value());
            serde_json::to_string(&Value::Object(obj)).expect("error serializes")
        }
    }
}

/// A parsed server reply line.
#[derive(Debug, Clone)]
pub enum ServerReply {
    /// A completed prediction.
    Response(ServeResponse),
    /// A typed failure for request `id`.
    Error {
        /// The request the failure belongs to (0 when unattributable).
        id: u64,
        /// The typed error payload.
        error: WireError,
    },
}

impl ServerReply {
    /// Parse one wire line into a reply.
    pub fn parse(line: &str) -> Result<Self, serde_json::Error> {
        let value: Value = serde_json::from_str(line)?;
        let obj = value.as_object().ok_or_else(|| serde::Error::new("reply is not an object"))?;
        if let Some(err) = obj.get("error") {
            let id = obj.get("id").and_then(Value::as_f64).unwrap_or(0.0) as u64;
            return Ok(ServerReply::Error { id, error: WireError::deserialize_value(err)? });
        }
        Ok(ServerReply::Response(ServeResponse::deserialize_value(&value)?))
    }
}

/// Extract the request id from a line that may not parse as a full
/// request, so even malformed-input errors can be attributed.
fn best_effort_id(line: &str) -> u64 {
    serde_json::from_str::<Value>(line)
        .ok()
        .and_then(|v| v.as_object().and_then(|o| o.get("id").and_then(Value::as_f64)))
        .unwrap_or(0.0) as u64
}

/// One unit of the writer thread's FIFO: either a pending request handle
/// (wait, then render) or an already-rendered line (control replies). The
/// single queue keeps replies in line order even when control lines are
/// interleaved with pipelined requests.
enum Outgoing {
    Pending(Handle),
    Line(String),
}

/// Handle a `{"cmd": ...}` control line, returning the reply line.
fn control_line(server: &Server, cmd: &str) -> String {
    match cmd {
        "stats" => serde_json::to_string(&server.serve_stats()).expect("stats serialize"),
        "health" => serde_json::to_string(&server.health()).expect("health serializes"),
        other => response_line(
            0,
            &Err(ServeError::BadRequest { reason: format!("unknown cmd {other:?}") }),
        ),
    }
}

fn handle_conn(server: &Arc<Server>, stream: TcpStream) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let (tx, rx) = mpsc::channel::<Outgoing>();
    let writer_stream = stream;
    let writer = std::thread::spawn(move || -> std::io::Result<()> {
        let mut out = writer_stream;
        for item in rx {
            let line = match item {
                Outgoing::Pending(handle) => {
                    let result = handle.wait();
                    response_line(handle.id(), &result)
                }
                Outgoing::Line(line) => line,
            };
            out.write_all(line.as_bytes())?;
            out.write_all(b"\n")?;
            out.flush()?;
        }
        Ok(())
    });
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let cmd = serde_json::from_str::<Value>(&line).ok().and_then(|v| {
            v.as_object()
                .and_then(|o| o.get("cmd"))
                .and_then(Value::as_str)
                .map(str::to_string)
        });
        let item = match cmd {
            Some(cmd) => Outgoing::Line(control_line(server, &cmd)),
            None => Outgoing::Pending(match serde_json::from_str::<ServeRequest>(&line) {
                Ok(req) => server.submit(req),
                Err(e) => Handle::failed(
                    best_effort_id(&line),
                    ServeError::BadRequest { reason: e.to_string() },
                ),
            }),
        };
        if tx.send(item).is_err() {
            break;
        }
    }
    drop(tx);
    writer.join().map_err(|_| std::io::Error::other("writer thread panicked"))?
}

/// Serve connections from `listener` until the process exits. Each
/// connection runs on its own thread; the call itself never returns
/// unless the listener errors. Once the server starts draining, new
/// connections are closed without a handler — existing connections keep
/// flushing their FIFO replies until their clients hang up.
pub fn serve(server: Arc<Server>, listener: TcpListener) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        if server.is_shutting_down() {
            drop(stream);
            continue;
        }
        stream.set_nodelay(true).ok();
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let _ = handle_conn(&server, stream);
        });
    }
    Ok(())
}

/// Backoff schedule for [`Client::submit_with_retry`]: full-jitter
/// exponential backoff over `queue_full` / `shutting_down` replies.
/// The sleep before attempt `k` (k ≥ 1) is uniform in
/// `[0, min(max_delay, base_delay · 2^(k-1))]`, drawn from a ChaCha8
/// stream seeded with `seed ^ request id` — deterministic for tests,
/// decorrelated across requests in a retry storm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (0 behaves like 1).
    pub max_attempts: u32,
    /// Backoff cap before jitter for the first retry.
    pub base_delay: Duration,
    /// Upper bound on the pre-jitter backoff window.
    pub max_delay: Duration,
    /// Jitter seed; mixed with the request id.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            seed: 0x0b17_2e72,
        }
    }
}

impl RetryPolicy {
    /// The jittered sleep before retry attempt `attempt` (1-based count
    /// of retries already earned). Exposed for tests: the schedule is a
    /// pure function of (policy, request id, attempt).
    pub fn backoff(&self, request_id: u64, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(32);
        let window = self
            .base_delay
            .saturating_mul(1u32 << exp.min(31))
            .min(self.max_delay)
            .as_nanos() as u64;
        if window == 0 {
            return Duration::ZERO;
        }
        let mut rng =
            ChaCha8Rng::seed_from_u64(self.seed ^ request_id ^ (u64::from(attempt) << 48));
        Duration::from_nanos(rng.gen_range(0..window))
    }
}

/// A blocking line-protocol client for tests, the bench, and scripting.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self { reader: BufReader::new(stream.try_clone()?), writer: stream })
    }

    /// Send one request line (does not wait for the reply).
    pub fn send(&mut self, req: &ServeRequest) -> std::io::Result<()> {
        self.send_line(&serde_json::to_string(req).expect("request serializes"))
    }

    /// Send a raw line verbatim (for protocol-error tests).
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Read and parse the next reply line.
    pub fn recv(&mut self) -> std::io::Result<ServerReply> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        ServerReply::parse(line.trim_end()).map_err(std::io::Error::other)
    }

    /// Send one request and wait for its reply.
    pub fn roundtrip(&mut self, req: &ServeRequest) -> std::io::Result<ServerReply> {
        self.send(req)?;
        self.recv()
    }

    /// Query the server's cache/precision/resilience counters.
    pub fn stats(&mut self) -> std::io::Result<ServeStats> {
        self.send_line(r#"{"cmd":"stats"}"#)?;
        serde_json::from_str(self.recv_line()?.trim_end()).map_err(std::io::Error::other)
    }

    /// Query the server's health: `"ok"` or `"draining"` plus inflight
    /// and queue-depth gauges, for load balancers deciding where to send
    /// traffic.
    pub fn health(&mut self) -> std::io::Result<ServeHealth> {
        self.send_line(r#"{"cmd":"health"}"#)?;
        serde_json::from_str(self.recv_line()?.trim_end()).map_err(std::io::Error::other)
    }

    /// Send `req`, retrying on the transient rejections `queue_full` and
    /// `shutting_down` with the policy's jittered exponential backoff.
    /// This is the recommended client loop: overload and drains are
    /// normal operating states, and a bounded backoff rides them out
    /// without hammering the server. Non-retryable errors and successful
    /// responses return immediately; when attempts run out the last
    /// retryable error is returned as a normal [`ServerReply::Error`].
    pub fn submit_with_retry(
        &mut self,
        req: &ServeRequest,
        policy: &RetryPolicy,
    ) -> std::io::Result<ServerReply> {
        let attempts = policy.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let reply = self.roundtrip(req)?;
            let retryable = matches!(
                &reply,
                ServerReply::Error { error, .. }
                    if error.kind == "queue_full" || error.kind == "shutting_down"
            );
            if !retryable || attempt >= attempts {
                return Ok(reply);
            }
            std::thread::sleep(policy.backoff(req.id, attempt));
        }
    }

    /// Read the next raw reply line verbatim — for pipelined control
    /// replies ([`Client::recv`] only parses request replies).
    pub fn recv_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_lines_round_trip() {
        let resp = ServeResponse {
            id: 9,
            shape: vec![3, 2, 2],
            data: vec![0.5; 12],
            cached: true,
            batch: 4,
            micros: 1234,
        };
        let line = response_line(9, &Ok(resp.clone()));
        match ServerReply::parse(&line).unwrap() {
            ServerReply::Response(got) => assert_eq!(got, resp),
            other => panic!("expected a response, got {other:?}"),
        }
    }

    /// The retry schedule is a pure function of (policy, id, attempt):
    /// deterministic for tests, capped by the policy, decorrelated
    /// across request ids.
    #[test]
    fn retry_backoff_is_deterministic_bounded_and_id_decorrelated() {
        let policy = RetryPolicy::default();
        for attempt in 1..=6u32 {
            let a = policy.backoff(42, attempt);
            assert_eq!(a, policy.backoff(42, attempt), "same inputs, same jitter");
            let cap = policy
                .base_delay
                .saturating_mul(1u32 << (attempt - 1))
                .min(policy.max_delay);
            assert!(a <= cap, "attempt {attempt}: {a:?} exceeds cap {cap:?}");
        }
        assert_ne!(
            policy.backoff(1, 3),
            policy.backoff(2, 3),
            "different requests draw different jitter"
        );
        let zero = RetryPolicy { base_delay: Duration::ZERO, ..RetryPolicy::default() };
        assert_eq!(zero.backoff(7, 1), Duration::ZERO);
    }

    #[test]
    fn error_lines_round_trip_with_kind() {
        let err = ServeError::UnknownRegion { region: "mars".into() };
        let line = response_line(7, &Err(err));
        match ServerReply::parse(&line).unwrap() {
            ServerReply::Error { id, error } => {
                assert_eq!(id, 7);
                assert_eq!(error.kind, "unknown_region");
                assert!(error.message.contains("mars"));
            }
            other => panic!("expected an error, got {other:?}"),
        }
    }
}
