//! Newline-delimited JSON over localhost TCP.
//!
//! One request per line, one response per line. Each connection gets a
//! reader thread (parses lines, submits to the server, forwards the
//! resulting [`Handle`] to the writer) and a writer thread (waits on
//! handles in submission order and writes the response lines). Splitting
//! the two means a client can pipeline requests without waiting for
//! earlier responses — and because every response echoes the request
//! `id`, clients are free to correlate out of order.
//!
//! Success lines are a serialized [`ServeResponse`]; failures are
//! `{"id": N, "error": {"kind": "...", "message": "..."}}` with `kind`
//! one of the stable [`ServeError::kind`] strings.
//!
//! Besides requests, a connection may send control lines of the form
//! `{"cmd": "..."}`. The only command today is `stats`, answered
//! immediately (in line order with any pipelined requests) with a
//! serialized [`ServeStats`] object.

use crate::oneshot::Handle;
use crate::server::Server;
use orbit2::serving::{ServeError, ServeRequest, ServeResponse, ServeStats, WireError};
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::sync::Arc;

/// Render one finished request as a wire line (no trailing newline).
pub fn response_line(id: u64, result: &Result<ServeResponse, ServeError>) -> String {
    match result {
        Ok(resp) => serde_json::to_string(resp).expect("response serializes"),
        Err(err) => {
            let mut obj = BTreeMap::new();
            obj.insert("id".to_string(), Value::Number(id as f64));
            obj.insert("error".to_string(), err.to_wire().serialize_value());
            serde_json::to_string(&Value::Object(obj)).expect("error serializes")
        }
    }
}

/// A parsed server reply line.
#[derive(Debug, Clone)]
pub enum ServerReply {
    /// A completed prediction.
    Response(ServeResponse),
    /// A typed failure for request `id`.
    Error {
        /// The request the failure belongs to (0 when unattributable).
        id: u64,
        /// The typed error payload.
        error: WireError,
    },
}

impl ServerReply {
    /// Parse one wire line into a reply.
    pub fn parse(line: &str) -> Result<Self, serde_json::Error> {
        let value: Value = serde_json::from_str(line)?;
        let obj = value.as_object().ok_or_else(|| serde::Error::new("reply is not an object"))?;
        if let Some(err) = obj.get("error") {
            let id = obj.get("id").and_then(Value::as_f64).unwrap_or(0.0) as u64;
            return Ok(ServerReply::Error { id, error: WireError::deserialize_value(err)? });
        }
        Ok(ServerReply::Response(ServeResponse::deserialize_value(&value)?))
    }
}

/// Extract the request id from a line that may not parse as a full
/// request, so even malformed-input errors can be attributed.
fn best_effort_id(line: &str) -> u64 {
    serde_json::from_str::<Value>(line)
        .ok()
        .and_then(|v| v.as_object().and_then(|o| o.get("id").and_then(Value::as_f64)))
        .unwrap_or(0.0) as u64
}

/// One unit of the writer thread's FIFO: either a pending request handle
/// (wait, then render) or an already-rendered line (control replies). The
/// single queue keeps replies in line order even when control lines are
/// interleaved with pipelined requests.
enum Outgoing {
    Pending(Handle),
    Line(String),
}

/// Handle a `{"cmd": ...}` control line, returning the reply line.
fn control_line(server: &Server, cmd: &str) -> String {
    match cmd {
        "stats" => serde_json::to_string(&server.serve_stats()).expect("stats serialize"),
        other => response_line(
            0,
            &Err(ServeError::BadRequest { reason: format!("unknown cmd {other:?}") }),
        ),
    }
}

fn handle_conn(server: &Arc<Server>, stream: TcpStream) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let (tx, rx) = mpsc::channel::<Outgoing>();
    let writer_stream = stream;
    let writer = std::thread::spawn(move || -> std::io::Result<()> {
        let mut out = writer_stream;
        for item in rx {
            let line = match item {
                Outgoing::Pending(handle) => {
                    let result = handle.wait();
                    response_line(handle.id(), &result)
                }
                Outgoing::Line(line) => line,
            };
            out.write_all(line.as_bytes())?;
            out.write_all(b"\n")?;
            out.flush()?;
        }
        Ok(())
    });
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let cmd = serde_json::from_str::<Value>(&line).ok().and_then(|v| {
            v.as_object()
                .and_then(|o| o.get("cmd"))
                .and_then(Value::as_str)
                .map(str::to_string)
        });
        let item = match cmd {
            Some(cmd) => Outgoing::Line(control_line(server, &cmd)),
            None => Outgoing::Pending(match serde_json::from_str::<ServeRequest>(&line) {
                Ok(req) => server.submit(req),
                Err(e) => Handle::failed(
                    best_effort_id(&line),
                    ServeError::BadRequest { reason: e.to_string() },
                ),
            }),
        };
        if tx.send(item).is_err() {
            break;
        }
    }
    drop(tx);
    writer.join().map_err(|_| std::io::Error::other("writer thread panicked"))?
}

/// Serve connections from `listener` until the process exits. Each
/// connection runs on its own thread; the call itself never returns
/// unless the listener errors.
pub fn serve(server: Arc<Server>, listener: TcpListener) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        stream.set_nodelay(true).ok();
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let _ = handle_conn(&server, stream);
        });
    }
    Ok(())
}

/// A blocking line-protocol client for tests, the bench, and scripting.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self { reader: BufReader::new(stream.try_clone()?), writer: stream })
    }

    /// Send one request line (does not wait for the reply).
    pub fn send(&mut self, req: &ServeRequest) -> std::io::Result<()> {
        self.send_line(&serde_json::to_string(req).expect("request serializes"))
    }

    /// Send a raw line verbatim (for protocol-error tests).
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Read and parse the next reply line.
    pub fn recv(&mut self) -> std::io::Result<ServerReply> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        ServerReply::parse(line.trim_end()).map_err(std::io::Error::other)
    }

    /// Send one request and wait for its reply.
    pub fn roundtrip(&mut self, req: &ServeRequest) -> std::io::Result<ServerReply> {
        self.send(req)?;
        self.recv()
    }

    /// Query the server's cache/precision counters.
    pub fn stats(&mut self) -> std::io::Result<ServeStats> {
        self.send_line(r#"{"cmd":"stats"}"#)?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        serde_json::from_str(line.trim_end()).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_lines_round_trip() {
        let resp = ServeResponse {
            id: 9,
            shape: vec![3, 2, 2],
            data: vec![0.5; 12],
            cached: true,
            batch: 4,
            micros: 1234,
        };
        let line = response_line(9, &Ok(resp.clone()));
        match ServerReply::parse(&line).unwrap() {
            ServerReply::Response(got) => assert_eq!(got, resp),
            other => panic!("expected a response, got {other:?}"),
        }
    }

    #[test]
    fn error_lines_round_trip_with_kind() {
        let err = ServeError::UnknownRegion { region: "mars".into() };
        let line = response_line(7, &Err(err));
        match ServerReply::parse(&line).unwrap() {
            ServerReply::Error { id, error } => {
                assert_eq!(id, 7);
                assert_eq!(error.kind, "unknown_region");
                assert!(error.message.contains("mars"));
            }
            other => panic!("expected an error, got {other:?}"),
        }
    }
}
