//! The LRU response cache.
//!
//! Region-sourced requests are deterministic given
//! `(region, time, variable selection, compression, scale)`, so their
//! finished responses are cacheable verbatim. The cache is a `BTreeMap`
//! keyed by that tuple with a logical-clock recency stamp per entry —
//! capacity is tens to hundreds of entries, where a scan-to-evict is
//! cheaper than maintaining an intrusive list. Hit/miss counters are
//! atomics so the hot read path never takes the map lock twice.

use orbit2_tensor::fused::{ActivationPrecision, WeightPrecision};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Identity of a cacheable response.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct CacheKey {
    /// Region name.
    pub region: String,
    /// Time (sample) index.
    pub time: usize,
    /// Resolved output-variable selection (empty = all outputs).
    pub variables: Vec<String>,
    /// Bit pattern of the compression target (f32 keys can't be `Ord`).
    pub compression_bits: u32,
    /// Refinement factor of the serving model.
    pub scale: usize,
    /// Effective weight precision the response was computed at — a bf16
    /// prediction must never answer an f32 request.
    pub precision: WeightPrecision,
    /// Effective activation precision the response was streamed at — the
    /// same cross-precision isolation, on the activation axis.
    pub activation: ActivationPrecision,
}

/// A cached response body.
#[derive(Debug, Clone)]
pub(crate) struct CachedPayload {
    /// Prediction shape.
    pub shape: Vec<usize>,
    /// Prediction data (physical units, selected variables).
    pub data: Vec<f32>,
}

/// Cache observability counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (including lookups while the cache is disabled).
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Configured capacity (0 = disabled).
    pub capacity: usize,
}

struct CacheInner {
    map: BTreeMap<CacheKey, (u64, CachedPayload)>,
    tick: u64,
}

/// Least-recently-used response cache with hit/miss accounting.
pub(crate) struct ResponseCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResponseCache {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(CacheInner { map: BTreeMap::new(), tick: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub(crate) fn get(&self, key: &CacheKey) -> Option<CachedPayload> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some((stamp, payload)) => {
                *stamp = tick;
                let hit = payload.clone();
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(hit)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert `key`, evicting the least-recently-used entry when full.
    pub(crate) fn put(&self, key: CacheKey, payload: CachedPayload) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(key, (tick, payload));
        while inner.map.len() > self.capacity {
            let oldest = inner
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
                .expect("nonempty map has an oldest entry");
            inner.map.remove(&oldest);
        }
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.inner.lock().unwrap().map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(region: &str, time: usize) -> CacheKey {
        CacheKey {
            region: region.into(),
            time,
            variables: vec![],
            compression_bits: 1.0f32.to_bits(),
            scale: 4,
            precision: WeightPrecision::F32,
            activation: ActivationPrecision::F32,
        }
    }

    fn payload(v: f32) -> CachedPayload {
        CachedPayload { shape: vec![1], data: vec![v] }
    }

    #[test]
    fn hit_and_miss_counters() {
        let cache = ResponseCache::new(4);
        assert!(cache.get(&key("a", 0)).is_none());
        cache.put(key("a", 0), payload(1.0));
        assert_eq!(cache.get(&key("a", 0)).unwrap().data, vec![1.0]);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = ResponseCache::new(2);
        cache.put(key("a", 0), payload(1.0));
        cache.put(key("b", 0), payload(2.0));
        // Touch `a` so `b` is the LRU entry.
        assert!(cache.get(&key("a", 0)).is_some());
        cache.put(key("c", 0), payload(3.0));
        assert!(cache.get(&key("a", 0)).is_some(), "recently used entry survived");
        assert!(cache.get(&key("b", 0)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key("c", 0)).is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn distinct_knobs_are_distinct_keys() {
        let cache = ResponseCache::new(8);
        cache.put(key("a", 0), payload(1.0));
        let mut compressed = key("a", 0);
        compressed.compression_bits = 2.0f32.to_bits();
        assert!(cache.get(&compressed).is_none());
        let mut vars = key("a", 0);
        vars.variables = vec!["tmin".into()];
        assert!(cache.get(&vars).is_none());
        let mut time = key("a", 1);
        time.time = 1;
        assert!(cache.get(&time).is_none());
        let mut prec = key("a", 0);
        prec.precision = WeightPrecision::Bf16;
        assert!(cache.get(&prec).is_none(), "cross-precision hits must be impossible");
        let mut act = key("a", 0);
        act.activation = ActivationPrecision::Bf16;
        assert!(cache.get(&act).is_none(), "cross-activation hits must be impossible");
    }

    #[test]
    fn zero_capacity_disables_without_panicking() {
        let cache = ResponseCache::new(0);
        cache.put(key("a", 0), payload(1.0));
        assert!(cache.get(&key("a", 0)).is_none());
        assert!(cache.get(&key("a", 0)).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 2, 0));
    }
}
