//! The `orbit2-serve` binary: a newline-delimited-JSON downscaling server
//! over localhost TCP.
//!
//! ```text
//! orbit2-serve [--addr 127.0.0.1:7878] [--grid 32x64] [--samples 32]
//!              [--tiles N] [--halo H] [--max-batch N] [--window-us N]
//!              [--cache N] [--queue N] [--no-batching] [--seed N]
//!              [--precision f32|bf16|int8] [--activation-precision f32|bf16]
//!              [--default-deadline-ms N]
//! ```
//!
//! `--default-deadline-ms` applies a server-side deadline to every
//! request that does not carry its own `deadline_ms` field; expired work
//! is shed before it runs and the request fails with the typed
//! `deadline_exceeded` error. Setting `ORBIT2_SERVE_FAULT_PLAN` arms
//! deterministic fault injection on the serve path (see DESIGN.md §10).
//!
//! The server hosts two synthetic regions, `conus` and `global`, over a
//! Daymet-like variable set (7 inputs, 3 outputs) with a 4x refinement
//! model. Try it:
//!
//! ```text
//! printf '{"id":1,"region":"conus","time":0}\n' | nc 127.0.0.1 7878
//! ```

use orbit2_climate::{DownscalingDataset, LatLonGrid, Normalizer, VariableSet};
use orbit2_imaging::tiles::TileSpec;
use orbit2_model::{ModelConfig, ReslimModel, SessionActivation, SessionPrecision};
use orbit2_serve::{Region, Server, ServerConfig};
use std::net::TcpListener;
use std::sync::Arc;

struct Args {
    addr: String,
    grid: (usize, usize),
    samples: usize,
    tiles: usize,
    halo: usize,
    max_batch: usize,
    window_micros: u64,
    cache: usize,
    queue: usize,
    batching: bool,
    seed: u64,
    precision: SessionPrecision,
    activation: SessionActivation,
    default_deadline_ms: Option<u64>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            grid: (32, 64),
            samples: 32,
            tiles: 1,
            halo: 2,
            max_batch: 8,
            window_micros: 2_000,
            cache: 64,
            queue: 256,
            batching: true,
            seed: 17,
            precision: SessionPrecision::F32,
            activation: SessionActivation::F32,
            default_deadline_ms: None,
        }
    }
}

const USAGE: &str = "usage: orbit2-serve [--addr HOST:PORT] [--grid HxW] [--samples N] \
[--tiles N] [--halo H] [--max-batch N] [--window-us N] [--cache N] [--queue N] \
[--no-batching] [--seed N] [--precision f32|bf16|int8] [--activation-precision f32|bf16] \
[--default-deadline-ms N]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--grid" => {
                let v = value("--grid")?;
                let (h, w) = v
                    .split_once('x')
                    .ok_or_else(|| format!("--grid wants HxW, got {v}"))?;
                args.grid = (
                    h.parse().map_err(|e| format!("--grid height: {e}"))?,
                    w.parse().map_err(|e| format!("--grid width: {e}"))?,
                );
            }
            "--samples" => args.samples = parse_num(&value("--samples")?, "--samples")?,
            "--tiles" => args.tiles = parse_num(&value("--tiles")?, "--tiles")?,
            "--halo" => args.halo = parse_num(&value("--halo")?, "--halo")?,
            "--max-batch" => args.max_batch = parse_num(&value("--max-batch")?, "--max-batch")?,
            "--window-us" => {
                args.window_micros = parse_num(&value("--window-us")?, "--window-us")? as u64
            }
            "--cache" => args.cache = parse_num(&value("--cache")?, "--cache")?,
            "--queue" => args.queue = parse_num(&value("--queue")?, "--queue")?,
            "--no-batching" => args.batching = false,
            "--precision" => {
                let v = value("--precision")?;
                args.precision = SessionPrecision::parse(&v)
                    .ok_or_else(|| format!("--precision wants f32, bf16 or int8, got {v}"))?;
            }
            "--activation-precision" => {
                let v = value("--activation-precision")?;
                args.activation = SessionActivation::parse(&v).ok_or_else(|| {
                    format!("--activation-precision wants f32 or bf16, got {v}")
                })?;
            }
            "--seed" => args.seed = parse_num(&value("--seed")?, "--seed")? as u64,
            "--default-deadline-ms" => {
                args.default_deadline_ms =
                    Some(parse_num(&value("--default-deadline-ms")?, "--default-deadline-ms")?
                        as u64)
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn parse_num(v: &str, name: &str) -> Result<usize, String> {
    v.parse().map_err(|e| format!("{name}: {e}"))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    let variables = VariableSet::daymet_like();
    let factor = 4;
    let cfg = ModelConfig::tiny().with_channels(variables.inputs.len(), variables.outputs.len());
    let (h, w) = args.grid;
    let conus = DownscalingDataset::new(
        LatLonGrid::conus(h, w),
        variables.clone(),
        factor,
        args.samples,
        args.seed,
    );
    let global = DownscalingDataset::new(
        LatLonGrid::global(h, w),
        variables,
        factor,
        args.samples,
        args.seed + 1,
    );
    let normalizer = Normalizer::fit(&conus, args.samples.clamp(1, 8));
    let model = ReslimModel::new(cfg, args.seed + 2);

    let server_cfg = ServerConfig {
        tile: if args.tiles > 1 { Some(TileSpec::square(args.tiles, args.halo)) } else { None },
        max_batch: args.max_batch,
        window_micros: args.window_micros,
        cache_capacity: args.cache,
        queue_capacity: args.queue,
        batching: args.batching,
        precision: args.precision,
        activation: args.activation,
        default_deadline_ms: args.default_deadline_ms,
        // None arms injection from ORBIT2_SERVE_FAULT_PLAN when set.
        fault_plan: None,
    };
    let server = Arc::new(Server::start(
        model,
        normalizer,
        vec![
            Region { name: "conus".into(), dataset: conus },
            Region { name: "global".into(), dataset: global },
        ],
        server_cfg,
    ));

    let listener = match TcpListener::bind(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    let bound = listener.local_addr().map(|a| a.to_string()).unwrap_or(args.addr);
    println!(
        "orbit2-serve listening on {bound} (regions: conus, global; coarse grid {}x{}; \
         batching {}; max_batch {}; window {}us; cache {}; precision {}; activations {}; \
         default deadline {})",
        h / factor,
        w / factor,
        if args.batching { "on" } else { "off" },
        args.max_batch,
        args.window_micros,
        args.cache,
        args.precision.label(),
        args.activation.label(),
        match args.default_deadline_ms {
            Some(ms) => format!("{ms}ms"),
            None => "none".into(),
        },
    );
    if let Err(e) = orbit2_serve::serve(server, listener) {
        eprintln!("listener error: {e}");
        std::process::exit(1);
    }
}
