//! The server core: admission, the tile-job queue, the microbatcher, and
//! response assembly.
//!
//! One [`Server`] owns one model and one tape-free
//! [`InferenceSession`](orbit2_model::InferenceSession) — weights and
//! packed GEMM operands are prepared once and shared read-only by every
//! worker that executes on its behalf. A submitted request is validated,
//! resolved to a `[C, h, w]` input, normalized, and split into halo-padded
//! tile jobs that land on a single submission queue. A dedicated batcher
//! thread groups **same-shaped tile jobs across requests** into one
//! stacked forward (`orbit2_model::forward_batch` — bit-identical to
//! per-request execution), waiting at most a configurable microbatch
//! window for the batch to fill. Batches are handed to the rayon shim's
//! persistent worker registry via detached `rayon::spawn`, so grouping,
//! execution, and request intake all overlap.
//!
//! Fairness: when more same-shaped jobs are queued than fit one batch, the
//! batcher picks tiles **round-robin across requests** instead of FIFO —
//! a 64-tile request cannot starve a 1-tile request that arrived just
//! after it; the small request's tile rides the very next batch.
//!
//! Resilience (see DESIGN.md §10 "Failure semantics"): requests may carry
//! a **deadline** checked at admission, at dispatch (expired queued tiles
//! are shed before any forward runs), and at stitch time; a panicking
//! batched forward triggers **panic quarantine** — every tile job of the
//! poisoned batch re-executes in isolation so only the culprit request
//! fails (with a typed `internal` error) while cobatched innocents
//! complete normally; a [`FaultPlan`] (config field or
//! `ORBIT2_SERVE_FAULT_PLAN`) injects deterministic panics/stragglers per
//! `(batch, job)` to prove all of it under test; and [`Server::drain`]
//! stops admission, lets in-flight work finish, and completes stragglers
//! with `shutting_down`.

use crate::cache::{CacheKey, CacheStats, CachedPayload, ResponseCache};
use crate::oneshot::{Handle, Oneshot};
use orbit2::fault::{FaultKind, FaultPlan};
use orbit2::inference::validate_input;
use orbit2::serving::{RequestSource, ServeError, ServeRequest, ServeResponse};
use orbit2::tiling::{split_stack, stitch_predictions};
use orbit2_climate::{DownscalingDataset, Normalizer};
use orbit2_imaging::tiles::{TileGeometry, TileSpec};
use orbit2::serving::{ServeHealth, ServeStats};
use orbit2_model::{InferenceSession, ReslimModel};
use orbit2_tensor::fused::{ActivationPrecision, WeightPrecision};
use orbit2_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Serving knobs. The defaults suit the CPU-scale models in this repo;
/// every knob is exercised by tests or the serving bench.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// How request inputs are split into tile jobs (`None` = whole-sample
    /// jobs). Smaller tiles mean more cross-request batching opportunity.
    pub tile: Option<TileSpec>,
    /// Most tile jobs stacked into one forward.
    pub max_batch: usize,
    /// Longest the batcher waits for a batch to fill before dispatching a
    /// partial one (the microbatch window).
    pub window_micros: u64,
    /// LRU response-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Most requests in flight before admission returns `QueueFull`.
    pub queue_capacity: usize,
    /// Cross-request batching on/off (off = every job runs alone; the
    /// serving bench compares the two).
    pub batching: bool,
    /// Weight precision for requests that don't ask for one explicitly.
    /// The session at this precision is prepared eagerly at startup;
    /// sessions for other requested precisions are built on first use.
    pub precision: WeightPrecision,
    /// Activation precision for requests that don't ask for one
    /// explicitly. Together with `precision` this names the session cell
    /// warmed at startup.
    pub activation: ActivationPrecision,
    /// Deadline applied to requests that don't carry a wire `deadline_ms`
    /// of their own (`None` = no deadline). Measured from admission;
    /// expired work is shed at admission, dispatch, and stitch time.
    pub default_deadline_ms: Option<u64>,
    /// Fault-injection schedule for chaos testing the serve path. `None`
    /// arms from the `ORBIT2_SERVE_FAULT_PLAN` environment variable (the
    /// serving twin of the trainer's `ORBIT2_FAULT_PLAN`); pass
    /// `Some(FaultPlan::none())` to pin a server fault-free regardless of
    /// the environment. Coordinates are `(batch, job)`: the dispatch
    /// ordinal of the executed batch and the job's position within it.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            tile: None,
            max_batch: 8,
            window_micros: 2_000,
            cache_capacity: 64,
            queue_capacity: 256,
            batching: true,
            precision: WeightPrecision::F32,
            activation: ActivationPrecision::F32,
            default_deadline_ms: None,
            fault_plan: None,
        }
    }
}

/// A named data region the server can resolve requests against.
pub struct Region {
    /// Region name used in requests.
    pub name: String,
    /// The region's (synthetic) data series.
    pub dataset: DownscalingDataset,
}

/// Everything a tile job needs to find its way home.
pub(crate) struct RequestState {
    id: u64,
    /// Admission order; the batcher round-robins over this.
    pub(crate) seq: u64,
    compression: f32,
    /// Effective weight precision (request override or server default).
    precision: WeightPrecision,
    /// Effective activation precision (request override or server default).
    activation: ActivationPrecision,
    in_h: usize,
    in_w: usize,
    remaining: AtomicUsize,
    parts: Mutex<Vec<Option<(TileGeometry, Tensor)>>>,
    max_batch_seen: AtomicUsize,
    started: Instant,
    /// Absolute deadline (admission time + effective `deadline_ms`), if
    /// the request or the server default set one.
    deadline: Option<Instant>,
    /// The effective deadline in milliseconds (for the error payload;
    /// meaningful only when `deadline` is `Some`).
    deadline_ms: u64,
    pub(crate) done: Arc<Oneshot>,
    cache_key: Option<CacheKey>,
    var_sel: Option<Vec<usize>>,
    /// In-flight accounting: decremented when the state drops, which is
    /// exactly once per request no matter how it ends (success, shutdown,
    /// or an execution failure with tiles still queued elsewhere).
    inflight: Arc<AtomicUsize>,
}

impl Drop for RequestState {
    fn drop(&mut self) {
        self.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// What makes two tile jobs stackable: same spatial shape and the same
/// compression target (a batched forward runs one plan search per sample
/// but a single target). Channel count is fixed by the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct JobKey {
    h: usize,
    w: usize,
    compression_bits: u32,
    /// A batched forward runs through one session, so only jobs at the
    /// same precision may stack.
    precision: WeightPrecision,
    /// ... and the session is also fixed to one activation precision, so
    /// only same-activation tiles may stack.
    activation: ActivationPrecision,
}

/// One tile of one request, queued for execution.
pub(crate) struct TileJob {
    pub(crate) req: Arc<RequestState>,
    tile_index: usize,
    geom: TileGeometry,
    input: Tensor,
    pub(crate) key: JobKey,
    enqueued: Instant,
}

/// Server throughput counters (monotonic since start).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests admitted past validation and the cache.
    pub admitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Forward passes executed (batched or not).
    pub batches: u64,
    /// Tile jobs that ran in a batch of size >= 2.
    pub batched_jobs: u64,
    /// Tile jobs recovered by an isolated quarantine retry.
    pub retried_jobs: u64,
    /// Tile jobs that panicked again in isolation (culprits).
    pub quarantined_jobs: u64,
    /// Queued tile jobs shed at dispatch because their deadline expired.
    pub shed_jobs: u64,
    /// Requests that terminated with `deadline_exceeded`.
    pub deadline_expired: u64,
}

/// Lifecycle states: admission is open only while `RUNNING`; `DRAINING`
/// sheds new requests while queued/in-flight work completes; `STOPPED`
/// makes the batcher fail everything still queued with `shutting_down`
/// and exit.
const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;

struct Inner {
    model: ReslimModel,
    /// One session slot per (weight precision × activation precision)
    /// cell, built on first use (the configured default cell is warmed at
    /// startup). Indexed by `session_slot`.
    sessions: [OnceLock<InferenceSession>; 6],
    normalizer: Normalizer,
    regions: Vec<Region>,
    cfg: ServerConfig,
    queue: Mutex<VecDeque<TileJob>>,
    work_ready: Condvar,
    cache: ResponseCache,
    inflight: Arc<AtomicUsize>,
    next_seq: AtomicU64,
    /// One of `RUNNING` / `DRAINING` / `STOPPED`; only moves forward.
    state: AtomicU8,
    /// The resolved fault-injection schedule (empty when unarmed).
    fault_plan: FaultPlan,
    admitted: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    batched_jobs: AtomicU64,
    retried_jobs: AtomicU64,
    quarantined_jobs: AtomicU64,
    shed_jobs: AtomicU64,
    deadline_expired: AtomicU64,
    /// Completed requests (cache hits included) per weight-precision slot.
    requests_by_precision: [AtomicU64; 3],
    /// Completed requests (cache hits included) per activation-precision
    /// slot.
    requests_by_activation: [AtomicU64; 2],
}

/// Index of a weight precision's counter slot.
fn precision_slot(p: WeightPrecision) -> usize {
    match p {
        WeightPrecision::F32 => 0,
        WeightPrecision::Bf16 => 1,
        WeightPrecision::Int8 => 2,
    }
}

/// Index of an activation precision's counter slot.
fn act_slot(a: ActivationPrecision) -> usize {
    match a {
        ActivationPrecision::F32 => 0,
        ActivationPrecision::Bf16 => 1,
    }
}

/// Index of a (weight × activation) cell's session slot.
fn session_slot(p: WeightPrecision, a: ActivationPrecision) -> usize {
    precision_slot(p) * 2 + act_slot(a)
}

/// A persistent inference server. See the module docs for the lifecycle;
/// see [`crate::tcp`] for the wire front end.
pub struct Server {
    inner: Arc<Inner>,
    batcher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Start a server over `model` with `regions` as its request-resolvable
    /// data. Spawns the batcher thread; the returned server is `Send + Sync`
    /// and is usually wrapped in an `Arc` to share with connection threads.
    pub fn start(
        model: ReslimModel,
        normalizer: Normalizer,
        regions: Vec<Region>,
        cfg: ServerConfig,
    ) -> Self {
        let (precision, activation) = (cfg.precision, cfg.activation);
        let cache = ResponseCache::new(cfg.cache_capacity);
        // An explicit plan (even `FaultPlan::none()`) beats the env knob.
        let fault_plan = cfg
            .fault_plan
            .clone()
            .or_else(FaultPlan::from_serve_env)
            .unwrap_or_default();
        let inner = Arc::new(Inner {
            model,
            sessions: std::array::from_fn(|_| OnceLock::new()),
            normalizer,
            regions,
            cfg,
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            cache,
            inflight: Arc::new(AtomicUsize::new(0)),
            next_seq: AtomicU64::new(0),
            state: AtomicU8::new(RUNNING),
            fault_plan,
            admitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_jobs: AtomicU64::new(0),
            retried_jobs: AtomicU64::new(0),
            quarantined_jobs: AtomicU64::new(0),
            shed_jobs: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            requests_by_precision: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            requests_by_activation: [AtomicU64::new(0), AtomicU64::new(0)],
        });
        // Warm the default-cell session so the first request doesn't pay
        // weight packing.
        inner.session_for(precision, activation);
        let worker = Arc::clone(&inner);
        let batcher = std::thread::Builder::new()
            .name("orbit2-serve-batcher".into())
            .spawn(move || batcher_loop(worker))
            .expect("failed to spawn batcher thread");
        Self { inner, batcher: Mutex::new(Some(batcher)) }
    }

    /// Submit a request. Always returns a handle; admission-time rejections
    /// (unknown region, invalid input, full queue, ...) come back as an
    /// already-completed handle carrying the typed error.
    pub fn submit(&self, req: ServeRequest) -> Handle {
        self.inner.submit(req)
    }

    /// Response-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    /// The combined wire-stats snapshot for `{"cmd": "stats"}` replies:
    /// response-cache counters, per-precision request counts (weight and
    /// activation axes), and the buffer-pool telemetry — observability for
    /// how well activation buffers are being recycled under load. The pool
    /// counters are process-wide and monotonic; diff snapshots to attribute
    /// traffic.
    pub fn serve_stats(&self) -> ServeStats {
        let cache = self.inner.cache.stats();
        let pool = orbit2_tensor::pool::global_stats();
        ServeStats {
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_entries: cache.entries as u64,
            requests_f32: self.inner.requests_by_precision[0].load(Ordering::Relaxed),
            requests_bf16: self.inner.requests_by_precision[1].load(Ordering::Relaxed),
            requests_int8: self.inner.requests_by_precision[2].load(Ordering::Relaxed),
            requests_act_f32: self.inner.requests_by_activation[0].load(Ordering::Relaxed),
            requests_act_bf16: self.inner.requests_by_activation[1].load(Ordering::Relaxed),
            pool_fresh_allocs: pool.fresh_allocs,
            pool_reuses: pool.reuses,
            pool_copies: pool.copies,
            retried_jobs: self.inner.retried_jobs.load(Ordering::Relaxed),
            quarantined_jobs: self.inner.quarantined_jobs.load(Ordering::Relaxed),
            shed_jobs: self.inner.shed_jobs.load(Ordering::Relaxed),
            deadline_expired: self.inner.deadline_expired.load(Ordering::Relaxed),
        }
    }

    /// Server throughput counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            admitted: self.inner.admitted.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            batches: self.inner.batches.load(Ordering::Relaxed),
            batched_jobs: self.inner.batched_jobs.load(Ordering::Relaxed),
            retried_jobs: self.inner.retried_jobs.load(Ordering::Relaxed),
            quarantined_jobs: self.inner.quarantined_jobs.load(Ordering::Relaxed),
            shed_jobs: self.inner.shed_jobs.load(Ordering::Relaxed),
            deadline_expired: self.inner.deadline_expired.load(Ordering::Relaxed),
        }
    }

    /// The model's refinement factor (output pixels per input pixel).
    pub fn scale_factor(&self) -> usize {
        self.inner.model.cfg.scale_factor
    }

    /// Requests admitted and not yet terminal. Returns to zero once every
    /// submitted request has reached exactly one terminal state and its
    /// bookkeeping has left the system — the chaos harness's invariant.
    pub fn inflight(&self) -> usize {
        self.inner.inflight.load(Ordering::SeqCst)
    }

    /// Tile jobs queued and not yet dispatched.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.lock().unwrap().len()
    }

    /// The load balancer's health snapshot (`{"cmd": "health"}` payload).
    pub fn health(&self) -> ServeHealth {
        ServeHealth {
            status: if self.is_shutting_down() { "draining" } else { "ok" }.into(),
            inflight: self.inflight() as u64,
            queue_depth: self.queue_depth() as u64,
        }
    }

    /// Graceful drain: stop admitting new requests immediately (they get
    /// [`ServeError::ShuttingDown`]), let queued and in-flight work keep
    /// completing, and once the server is idle — or `timeout` elapses —
    /// stop the batcher, which completes every straggler still queued with
    /// `ShuttingDown`. Returns `true` when the drain finished cleanly
    /// (inflight reached zero before the timeout). Idempotent; safe to
    /// race with `shutdown`.
    pub fn drain(&self, timeout: Duration) -> bool {
        // Close admission without downgrading an already-stopped server.
        let _ = self.inner.state.compare_exchange(
            RUNNING,
            DRAINING,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        let deadline = Instant::now() + timeout;
        let drained = loop {
            if self.inner.inflight.load(Ordering::SeqCst) == 0 {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        self.shutdown();
        drained
    }

    /// Stop admitting work and fail everything still queued with
    /// [`ServeError::ShuttingDown`]. Idempotent.
    pub fn shutdown(&self) {
        self.inner.state.store(STOPPED, Ordering::SeqCst);
        self.inner.work_ready.notify_all();
        if let Some(handle) = self.batcher.lock().unwrap().take() {
            let _ = handle.join();
        }
    }

    /// Whether admission is closed ([`Server::shutdown`] or
    /// [`Server::drain`] has been called).
    pub fn is_shutting_down(&self) -> bool {
        self.inner.state.load(Ordering::SeqCst) != RUNNING
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Inner {
    /// The session serving the `(precision, activation)` cell, built on
    /// first use.
    fn session_for(
        &self,
        precision: WeightPrecision,
        activation: ActivationPrecision,
    ) -> &InferenceSession {
        self.sessions[session_slot(precision, activation)]
            .get_or_init(|| self.model.session_with(precision, activation))
    }

    pub(crate) fn submit(&self, req: ServeRequest) -> Handle {
        let started = Instant::now();
        let slot = Oneshot::new();
        let handle = Handle::new(req.id, Arc::clone(&slot));
        if let Err(e) = self.admit(req, started, &slot) {
            slot.complete(Err(e));
        }
        handle
    }

    fn admit(
        &self,
        req: ServeRequest,
        started: Instant,
        slot: &Arc<Oneshot>,
    ) -> Result<(), ServeError> {
        if self.state.load(Ordering::SeqCst) != RUNNING {
            return Err(ServeError::ShuttingDown);
        }
        if req.compression < 1.0 || !req.compression.is_finite() {
            return Err(ServeError::BadCompression { got: req.compression });
        }
        // Admission deadline checkpoint: a request whose deadline has
        // already passed (deadline_ms of 0, or a stalled accept queue)
        // never costs a tensor resolve, let alone a forward.
        let deadline_ms = req.deadline_ms.or(self.cfg.default_deadline_ms);
        let deadline = deadline_ms.map(|ms| started + Duration::from_millis(ms));
        if let Some(d) = deadline {
            if Instant::now() >= d {
                self.deadline_expired.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::DeadlineExceeded {
                    deadline_ms: deadline_ms.unwrap_or(0),
                });
            }
        }
        let precision = req.precision.unwrap_or(self.cfg.precision);
        let activation = req.activation.unwrap_or(self.cfg.activation);
        let var_sel = match &req.variables {
            None => None,
            Some(names) => {
                let vs = self.regions.first().map(|r| r.dataset.variables());
                let mut sel = Vec::with_capacity(names.len());
                for name in names {
                    let idx = vs.and_then(|v| v.output_index(name)).ok_or_else(|| {
                        ServeError::UnknownVariable { variable: name.clone() }
                    })?;
                    sel.push(idx);
                }
                Some(sel)
            }
        };
        let (input, cache_key) = match &req.source {
            RequestSource::Region { name, time } => {
                let region = self
                    .regions
                    .iter()
                    .find(|r| r.name == *name)
                    .ok_or_else(|| ServeError::UnknownRegion { region: name.clone() })?;
                let len = region.dataset.num_samples;
                if *time >= len {
                    return Err(ServeError::BadRequest {
                        reason: format!("time {time} out of range (region {name} has {len} samples)"),
                    });
                }
                let key = CacheKey {
                    region: name.clone(),
                    time: *time,
                    variables: req.variables.clone().unwrap_or_default(),
                    compression_bits: req.compression.to_bits(),
                    scale: self.model.cfg.scale_factor,
                    precision,
                    activation,
                };
                (region.dataset.sample(*time).input, Some(key))
            }
            RequestSource::Raw { shape, data } => {
                let elems: usize = shape.iter().product();
                if elems != data.len() {
                    return Err(ServeError::BadRequest {
                        reason: format!(
                            "shape {:?} holds {} elements but {} data values were sent",
                            shape,
                            elems,
                            data.len()
                        ),
                    });
                }
                (Tensor::from_vec(shape.clone(), data.clone()), None)
            }
        };
        validate_input(&self.model, &input)?;

        if let Some(key) = &cache_key {
            if let Some(hit) = self.cache.get(key) {
                self.requests_by_precision[precision_slot(precision)]
                    .fetch_add(1, Ordering::Relaxed);
                self.requests_by_activation[act_slot(activation)]
                    .fetch_add(1, Ordering::Relaxed);
                slot.complete(Ok(ServeResponse {
                    id: req.id,
                    shape: hit.shape,
                    data: hit.data,
                    cached: true,
                    batch: 0,
                    micros: started.elapsed().as_micros() as u64,
                }));
                return Ok(());
            }
        }

        // Admission control: `inflight` is released by RequestState::drop.
        if self.inflight.fetch_add(1, Ordering::SeqCst) >= self.cfg.queue_capacity {
            self.inflight.fetch_sub(1, Ordering::SeqCst);
            return Err(ServeError::QueueFull { capacity: self.cfg.queue_capacity });
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);

        let (h, w) = (input.shape()[1], input.shape()[2]);
        let normalized = self.normalizer.normalize_input(&input);
        let spec = self.cfg.tile.unwrap_or(TileSpec { tiles_y: 1, tiles_x: 1, halo: 0 });
        let tiles = split_stack(&normalized, spec);
        let state = Arc::new(RequestState {
            id: req.id,
            seq: self.next_seq.fetch_add(1, Ordering::SeqCst),
            compression: req.compression,
            precision,
            activation,
            in_h: h,
            in_w: w,
            remaining: AtomicUsize::new(tiles.len()),
            parts: Mutex::new(vec![None; tiles.len()]),
            max_batch_seen: AtomicUsize::new(0),
            started,
            deadline,
            deadline_ms: deadline_ms.unwrap_or(0),
            done: Arc::clone(slot),
            cache_key,
            var_sel,
            inflight: Arc::clone(&self.inflight),
        });
        {
            let mut queue = self.queue.lock().unwrap();
            // Shutdown race: the RUNNING check at the top of admission can
            // pass just before `drain` observes inflight == 0 (ours is not
            // counted yet) and stops the batcher. Re-checking under the
            // queue lock closes the hole: the batcher's final
            // fail-the-leftovers sweep also runs under this lock, so either
            // we see STOPPED here and reject, or the sweep sees our jobs
            // and completes them with `ShuttingDown`. Without this, tiles
            // enqueued after the batcher exits would strand their request
            // in a never-terminal state.
            if self.state.load(Ordering::SeqCst) == STOPPED {
                return Err(ServeError::ShuttingDown);
            }
            for (tile_index, (geom, tile_input)) in tiles.into_iter().enumerate() {
                let key = JobKey {
                    h: tile_input.shape()[1],
                    w: tile_input.shape()[2],
                    compression_bits: req.compression.to_bits(),
                    precision,
                    activation,
                };
                queue.push_back(TileJob {
                    req: Arc::clone(&state),
                    tile_index,
                    geom,
                    input: tile_input,
                    key,
                    enqueued: Instant::now(),
                });
            }
        }
        self.work_ready.notify_all();
        Ok(())
    }
}

/// Dispatch deadline checkpoint: drop every queued tile whose request
/// deadline has already passed, completing the request with
/// `DeadlineExceeded`, *before* any forward is picked — the client gave
/// up, so the server spends nothing more on it. Runs under the queue
/// lock on every batcher wakeup.
fn shed_expired(shed_jobs: &AtomicU64, deadline_expired: &AtomicU64, queue: &mut VecDeque<TileJob>) {
    if queue.iter().all(|j| j.req.deadline.is_none()) {
        return;
    }
    let now = Instant::now();
    let mut i = 0;
    while i < queue.len() {
        let expired = queue[i].req.deadline.is_some_and(|d| now >= d);
        if !expired {
            i += 1;
            continue;
        }
        let job = queue.remove(i).expect("index checked in range");
        shed_jobs.fetch_add(1, Ordering::Relaxed);
        let err = ServeError::DeadlineExceeded { deadline_ms: job.req.deadline_ms };
        deadline_expired.fetch_add(1, Ordering::Relaxed);
        if !job.req.done.complete(Err(err)) {
            deadline_expired.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// The dispatcher/batcher loop: wait for work, shed expired tiles, give
/// same-shaped jobs a microbatch window to accumulate, pick a fair batch,
/// hand it to the worker registry, repeat.
fn batcher_loop(inner: Arc<Inner>) {
    loop {
        let batch = {
            let mut queue = inner.queue.lock().unwrap();
            loop {
                // DRAINING keeps dispatching (queued work must finish);
                // only STOPPED fails the leftovers and exits.
                if inner.state.load(Ordering::SeqCst) == STOPPED {
                    for job in queue.drain(..) {
                        job.req.done.complete(Err(ServeError::ShuttingDown));
                    }
                    return;
                }
                shed_expired(&inner.shed_jobs, &inner.deadline_expired, &mut queue);
                let Some(front) = queue.front() else {
                    let (guard, _) = inner
                        .work_ready
                        .wait_timeout(queue, Duration::from_millis(50))
                        .unwrap();
                    queue = guard;
                    continue;
                };
                let key = front.key.clone();
                let age = front.enqueued.elapsed();
                let window = Duration::from_micros(inner.cfg.window_micros);
                let stackable = queue.iter().filter(|j| j.key == key).count();
                if inner.cfg.batching && stackable < inner.cfg.max_batch && age < window {
                    // Keep the window open: more same-shaped jobs may land.
                    let (guard, _) = inner.work_ready.wait_timeout(queue, window - age).unwrap();
                    queue = guard;
                    continue;
                }
                let max = if inner.cfg.batching { inner.cfg.max_batch } else { 1 };
                break collect_batch(&mut queue, max);
            }
        };
        let worker = Arc::clone(&inner);
        rayon::spawn(move || execute_batch(&worker, batch));
    }
}

/// Pick up to `max_batch` jobs stackable with the front job, round-robin
/// across requests (admission order) so no request monopolizes a batch.
pub(crate) fn collect_batch(queue: &mut VecDeque<TileJob>, max_batch: usize) -> Vec<TileJob> {
    let key = queue.front().expect("collect_batch on an empty queue").key.clone();
    if max_batch <= 1 {
        return vec![queue.pop_front().expect("checked nonempty")];
    }
    // Queue indices of stackable jobs, grouped per request in FIFO order.
    let mut by_req: Vec<(u64, VecDeque<usize>)> = Vec::new();
    for (i, job) in queue.iter().enumerate() {
        if job.key == key {
            match by_req.iter_mut().find(|(seq, _)| *seq == job.req.seq) {
                Some((_, slots)) => slots.push_back(i),
                None => by_req.push((job.req.seq, VecDeque::from([i]))),
            }
        }
    }
    by_req.sort_by_key(|(seq, _)| *seq);
    let mut picked: Vec<usize> = Vec::new();
    'fill: loop {
        let mut progressed = false;
        for (_, slots) in by_req.iter_mut() {
            if picked.len() >= max_batch {
                break 'fill;
            }
            if let Some(i) = slots.pop_front() {
                picked.push(i);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    picked.sort_unstable();
    let mut out = Vec::with_capacity(picked.len());
    for &i in picked.iter().rev() {
        out.push(queue.remove(i).expect("picked index in range"));
    }
    out.reverse();
    out
}

/// Render a panic payload into a human-readable reason string.
fn panic_reason(panic: Box<dyn std::any::Any + Send>) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic".into())
}

/// Run the (possibly batched) forward for `jobs`, returning one prediction
/// per job. Stackable jobs share a `JobKey`, hence a single session cell.
fn run_forward(inner: &Inner, jobs: &[TileJob]) -> Vec<Tensor> {
    if jobs.len() > 1 {
        let session = inner.session_for(jobs[0].req.precision, jobs[0].req.activation);
        let refs: Vec<&Tensor> = jobs.iter().map(|j| &j.input).collect();
        orbit2_model::forward_batch(&inner.model, session, &refs, jobs[0].req.compression)
            .into_iter()
            .map(|(pred, _)| pred)
            .collect()
    } else {
        jobs.iter()
            .map(|j| {
                let session = inner.session_for(j.req.precision, j.req.activation);
                inner.model.forward(session, &j.input, j.req.compression).0.into_tensor()
            })
            .collect()
    }
}

fn execute_batch(inner: &Inner, jobs: Vec<TileJob>) {
    // Requests already terminal (deadline hit, drain, an earlier tile's
    // quarantine verdict) get no further compute; dropping their jobs here
    // also releases their inflight bookkeeping promptly.
    let jobs: Vec<TileJob> = jobs.into_iter().filter(|j| !j.req.done.is_complete()).collect();
    let n = jobs.len();
    if n == 0 {
        return;
    }
    // The batch ordinal is the fault plan's first coordinate: assigned
    // once per executed batch, never by retries, so an armed plan draws
    // the same fault for the same (batch, job) on every run.
    let batch_index = inner.batches.fetch_add(1, Ordering::Relaxed) as usize;
    if n > 1 {
        inner.batched_jobs.fetch_add(n as u64, Ordering::Relaxed);
    }
    let faults: Vec<Option<FaultKind>> =
        (0..n).map(|j| inner.fault_plan.lookup(batch_index, j)).collect();
    let forward = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> Vec<Tensor> {
        inject_faults(batch_index, &faults);
        run_forward(inner, &jobs)
    }));
    match forward {
        Ok(preds) => {
            for (job, pred) in jobs.into_iter().zip(preds) {
                finish_tile(inner, job, pred, n);
            }
        }
        Err(panic) => quarantine(inner, jobs, batch_index, panic_reason(panic)),
    }
}

/// Apply the injected faults drawn for one batch: stragglers stall the
/// executing worker (the batch completes late, exercising the deadline
/// checkpoints), a panic poisons the whole batch (exercising quarantine).
/// `NaNGradient` has no serving meaning — no gradients flow — and is
/// ignored. Runs inside the `catch_unwind` boundary.
fn inject_faults(batch_index: usize, faults: &[Option<FaultKind>]) {
    for (j, fault) in faults.iter().enumerate() {
        match fault {
            Some(FaultKind::Straggler(ms)) => {
                std::thread::sleep(Duration::from_millis(*ms));
            }
            Some(FaultKind::Panic) => {
                panic!("injected fault: panic (batch {batch_index}, job {j})");
            }
            Some(FaultKind::NaNGradient) | None => {}
        }
    }
}

/// Panic quarantine. A batched forward panicked — one tile poisoned the
/// batch, but the cobatched requests are innocent, and before this layer
/// existed every one of them died with a misclassified `BadRequest`.
/// Re-execute each tile job in isolation under its own `catch_unwind`:
/// jobs that now complete rejoin their requests as if nothing happened
/// (`retried_jobs`); jobs that panic again are the culprits, and each one
/// fails exactly its own request with a typed `internal` error
/// (`quarantined_jobs`). Injected faults are transient by default (the
/// isolated retry runs clean, mirroring the trainer's retry-then-drop);
/// a `persistent=1` plan re-applies the injection so the culprit stays
/// dead and the isolation guarantee itself is testable.
fn quarantine(inner: &Inner, jobs: Vec<TileJob>, batch_index: usize, first_reason: String) {
    for (j, job) in jobs.into_iter().enumerate() {
        if job.req.done.is_complete() {
            continue;
        }
        let injected = if inner.fault_plan.is_persistent() {
            inner.fault_plan.lookup(batch_index, j)
        } else {
            None
        };
        let retry = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> Tensor {
            match injected {
                Some(FaultKind::Straggler(ms)) => std::thread::sleep(Duration::from_millis(ms)),
                Some(FaultKind::Panic) => {
                    panic!("injected fault: persistent panic (batch {batch_index}, job {j})")
                }
                Some(FaultKind::NaNGradient) | None => {}
            }
            run_forward(inner, std::slice::from_ref(&job))
                .pop()
                .expect("single-job forward yields one prediction")
        }));
        match retry {
            Ok(pred) => {
                inner.retried_jobs.fetch_add(1, Ordering::Relaxed);
                // The isolated rerun executed alone: batch size 1.
                finish_tile(inner, job, pred, 1);
            }
            Err(panic) => {
                inner.quarantined_jobs.fetch_add(1, Ordering::Relaxed);
                let reason = format!(
                    "tile job panicked and failed its isolated retry: {} \
                     (batch failure: {first_reason})",
                    panic_reason(panic)
                );
                job.req.done.complete(Err(ServeError::Internal { reason }));
            }
        }
    }
}

fn finish_tile(inner: &Inner, job: TileJob, pred: Tensor, batch_size: usize) {
    let req = Arc::clone(&job.req);
    req.max_batch_seen.fetch_max(batch_size, Ordering::SeqCst);
    {
        let mut parts = req.parts.lock().unwrap();
        parts[job.tile_index] = Some((job.geom, pred));
    }
    if req.remaining.fetch_sub(1, Ordering::SeqCst) != 1 {
        return;
    }
    // Stitch-time deadline checkpoint: a result the client stopped
    // waiting for is not stitched, denormalized, or cached — the compute
    // already spent is sunk, but no more is added.
    if let Some(d) = req.deadline {
        if Instant::now() >= d {
            let err = ServeError::DeadlineExceeded { deadline_ms: req.deadline_ms };
            inner.deadline_expired.fetch_add(1, Ordering::Relaxed);
            if !req.done.complete(Err(err)) {
                inner.deadline_expired.fetch_sub(1, Ordering::Relaxed);
            }
            return;
        }
    }
    if req.done.is_complete() {
        // A drain or an earlier tile's quarantine verdict beat us here.
        return;
    }
    // Last tile home: stitch, denormalize, select, cache, complete.
    let tiles: Vec<(TileGeometry, Tensor)> = {
        let parts = req.parts.lock().unwrap();
        parts.iter().map(|p| p.clone().expect("all tiles recorded")).collect()
    };
    let factor = inner.model.cfg.scale_factor;
    let stitched = stitch_predictions(&tiles, req.in_h, req.in_w, factor);
    let physical = inner.normalizer.denormalize_target(&stitched);
    let output = match &req.var_sel {
        None => physical,
        Some(sel) => {
            let slices: Vec<Tensor> =
                sel.iter().map(|&ci| physical.slice_axis(0, ci, 1)).collect();
            let refs: Vec<&Tensor> = slices.iter().collect();
            Tensor::concat(&refs, 0)
        }
    };
    if let Some(key) = &req.cache_key {
        inner.cache.put(
            key.clone(),
            CachedPayload { shape: output.shape().to_vec(), data: output.data().to_vec() },
        );
    }
    // Counters tick *before* the completion wakes the waiter, so a client
    // reading stats right after `wait()` returns sees them; if a drain
    // won the race instead, roll the speculative ticks back.
    inner.completed.fetch_add(1, Ordering::Relaxed);
    inner.requests_by_precision[precision_slot(req.precision)].fetch_add(1, Ordering::Relaxed);
    inner.requests_by_activation[act_slot(req.activation)].fetch_add(1, Ordering::Relaxed);
    let won = req.done.complete(Ok(ServeResponse {
        id: req.id,
        shape: output.shape().to_vec(),
        data: output.data().to_vec(),
        cached: false,
        batch: req.max_batch_seen.load(Ordering::SeqCst),
        micros: req.started.elapsed().as_micros() as u64,
    }));
    if !won {
        inner.completed.fetch_sub(1, Ordering::Relaxed);
        inner.requests_by_precision[precision_slot(req.precision)].fetch_sub(1, Ordering::Relaxed);
        inner.requests_by_activation[act_slot(req.activation)].fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_state(seq: u64, tiles: usize, inflight: &Arc<AtomicUsize>) -> Arc<RequestState> {
        fake_state_deadline(seq, tiles, inflight, None)
    }

    fn fake_state_deadline(
        seq: u64,
        tiles: usize,
        inflight: &Arc<AtomicUsize>,
        deadline: Option<Instant>,
    ) -> Arc<RequestState> {
        inflight.fetch_add(1, Ordering::SeqCst);
        Arc::new(RequestState {
            id: seq,
            seq,
            compression: 1.0,
            precision: WeightPrecision::F32,
            activation: ActivationPrecision::F32,
            in_h: 4,
            in_w: 4,
            remaining: AtomicUsize::new(tiles),
            parts: Mutex::new(vec![None; tiles]),
            max_batch_seen: AtomicUsize::new(0),
            started: Instant::now(),
            deadline,
            deadline_ms: if deadline.is_some() { 1 } else { 0 },
            done: Oneshot::new(),
            cache_key: None,
            var_sel: None,
            inflight: Arc::clone(inflight),
        })
    }

    fn job(req: &Arc<RequestState>, tile_index: usize, h: usize) -> TileJob {
        TileJob {
            req: Arc::clone(req),
            tile_index,
            geom: TileGeometry { ty: 0, tx: 0, core_y0: 0, core_x0: 0, core_h: h, core_w: h, halo: 0 },
            input: Tensor::zeros(vec![1, h, h]),
            key: JobKey {
                h,
                w: h,
                compression_bits: 1.0f32.to_bits(),
                precision: WeightPrecision::F32,
                activation: ActivationPrecision::F32,
            },
            enqueued: Instant::now(),
        }
    }

    #[test]
    fn collect_batch_is_fair_across_requests() {
        let inflight = Arc::new(AtomicUsize::new(0));
        let big = fake_state(0, 6, &inflight);
        let small = fake_state(1, 1, &inflight);
        let mut queue: VecDeque<TileJob> = VecDeque::new();
        for i in 0..6 {
            queue.push_back(job(&big, i, 4));
        }
        queue.push_back(job(&small, 0, 4));
        let batch = collect_batch(&mut queue, 4);
        assert_eq!(batch.len(), 4);
        assert!(
            batch.iter().any(|j| j.req.seq == 1),
            "the late 1-tile request must ride the first batch, not wait behind 6 tiles"
        );
        // Round-robin: the big request still gets most slots.
        assert_eq!(batch.iter().filter(|j| j.req.seq == 0).count(), 3);
        assert_eq!(queue.len(), 3);
    }

    #[test]
    fn collect_batch_only_stacks_matching_shapes() {
        let inflight = Arc::new(AtomicUsize::new(0));
        let a = fake_state(0, 2, &inflight);
        let b = fake_state(1, 1, &inflight);
        let mut queue: VecDeque<TileJob> = VecDeque::new();
        queue.push_back(job(&a, 0, 4));
        queue.push_back(job(&b, 0, 8)); // different shape: not stackable
        queue.push_back(job(&a, 1, 4));
        let batch = collect_batch(&mut queue, 8);
        assert_eq!(batch.len(), 2);
        assert!(batch.iter().all(|j| j.key.h == 4));
        assert_eq!(queue.len(), 1);
        assert_eq!(queue.front().unwrap().key.h, 8);
    }

    #[test]
    fn collect_batch_without_batching_takes_one_fifo() {
        let inflight = Arc::new(AtomicUsize::new(0));
        let a = fake_state(0, 2, &inflight);
        let mut queue: VecDeque<TileJob> = VecDeque::new();
        queue.push_back(job(&a, 0, 4));
        queue.push_back(job(&a, 1, 4));
        let batch = collect_batch(&mut queue, 1);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].tile_index, 0);
    }

    /// The dispatch checkpoint: expired queued tiles are removed before
    /// any forward runs, the request completes with `DeadlineExceeded`
    /// exactly once, and unexpired work is untouched.
    #[test]
    fn shed_expired_drops_only_expired_tiles_and_completes_once() {
        let inflight = Arc::new(AtomicUsize::new(0));
        let expired = fake_state_deadline(
            0,
            2,
            &inflight,
            Some(Instant::now() - Duration::from_millis(5)),
        );
        let fresh = fake_state_deadline(
            1,
            1,
            &inflight,
            Some(Instant::now() + Duration::from_secs(60)),
        );
        let no_deadline = fake_state(2, 1, &inflight);
        let mut queue: VecDeque<TileJob> = VecDeque::new();
        queue.push_back(job(&expired, 0, 4));
        queue.push_back(job(&fresh, 0, 4));
        queue.push_back(job(&expired, 1, 4));
        queue.push_back(job(&no_deadline, 0, 4));
        let shed_jobs = AtomicU64::new(0);
        let deadline_expired = AtomicU64::new(0);
        shed_expired(&shed_jobs, &deadline_expired, &mut queue);
        assert_eq!(queue.len(), 2, "only the two expired tiles are shed");
        assert!(queue.iter().all(|j| j.req.seq != 0));
        assert_eq!(shed_jobs.load(Ordering::Relaxed), 2, "shed_jobs counts tiles");
        assert_eq!(
            deadline_expired.load(Ordering::Relaxed),
            1,
            "deadline_expired counts requests, not tiles"
        );
        let verdict = crate::oneshot::Handle::new(0, Arc::clone(&expired.done));
        assert_eq!(
            verdict.try_get().unwrap().unwrap_err(),
            ServeError::DeadlineExceeded { deadline_ms: 1 }
        );
        assert!(!fresh.done.is_complete());
        assert!(!no_deadline.done.is_complete());
        // Idempotent on the survivors: a second sweep sheds nothing.
        shed_expired(&shed_jobs, &deadline_expired, &mut queue);
        assert_eq!(queue.len(), 2);
        assert_eq!(shed_jobs.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn request_state_drop_releases_inflight_slot() {
        let inflight = Arc::new(AtomicUsize::new(0));
        let state = fake_state(0, 1, &inflight);
        assert_eq!(inflight.load(Ordering::SeqCst), 1);
        drop(state);
        assert_eq!(inflight.load(Ordering::SeqCst), 0);
    }
}
