//! Per-request completion: a write-once slot the submitting side can block
//! on, built from `Mutex` + `Condvar` (the vendored runtime has no async
//! channels, and none are needed — one value crosses one thread boundary
//! exactly once per request).

use orbit2::serving::{ServeError, ServeResponse};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A write-once result slot. The first [`Oneshot::complete`] wins; later
/// calls are ignored, which is what makes shutdown racing a normal
/// completion safe.
pub(crate) struct Oneshot {
    slot: Mutex<Option<Result<ServeResponse, ServeError>>>,
    ready: Condvar,
}

impl Oneshot {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self { slot: Mutex::new(None), ready: Condvar::new() })
    }

    /// Fill the slot (first writer wins) and wake every waiter. Returns
    /// `true` when this call was the one that completed the request —
    /// callers use it to count terminal outcomes exactly once even when a
    /// drain races normal completion or a deadline check.
    pub(crate) fn complete(&self, result: Result<ServeResponse, ServeError>) -> bool {
        let mut slot = self.slot.lock().unwrap();
        if slot.is_none() {
            *slot = Some(result);
            self.ready.notify_all();
            true
        } else {
            false
        }
    }

    /// Whether the request already reached a terminal state (used to skip
    /// compute for requests a deadline or drain has already failed).
    pub(crate) fn is_complete(&self) -> bool {
        self.slot.lock().unwrap().is_some()
    }
}

/// The caller's side of a submitted request: block on [`Handle::wait`] or
/// poll with [`Handle::try_get`]. Cloneable so a response writer and a
/// latency recorder can both observe the same completion.
#[derive(Clone)]
pub struct Handle {
    id: u64,
    slot: Arc<Oneshot>,
}

impl Handle {
    pub(crate) fn new(id: u64, slot: Arc<Oneshot>) -> Self {
        Self { id, slot }
    }

    /// A handle born completed with `err` (admission-time rejections).
    pub(crate) fn failed(id: u64, err: ServeError) -> Self {
        let slot = Oneshot::new();
        slot.complete(Err(err));
        Self { id, slot }
    }

    /// The request id this handle tracks.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the request completes.
    pub fn wait(&self) -> Result<ServeResponse, ServeError> {
        let mut slot = self.slot.slot.lock().unwrap();
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.slot.ready.wait(slot).unwrap();
        }
    }

    /// Block up to `timeout`; `None` if the request is still in flight.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<ServeResponse, ServeError>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slot = self.slot.slot.lock().unwrap();
        loop {
            if let Some(result) = slot.as_ref() {
                return Some(result.clone());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.slot.ready.wait_timeout(slot, deadline - now).unwrap();
            slot = guard;
        }
    }

    /// Non-blocking poll.
    pub fn try_get(&self) -> Option<Result<ServeResponse, ServeError>> {
        self.slot.slot.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(id: u64) -> ServeResponse {
        ServeResponse { id, shape: vec![1], data: vec![0.0], cached: false, batch: 1, micros: 0 }
    }

    #[test]
    fn wait_sees_completion_from_another_thread() {
        let slot = Oneshot::new();
        let handle = Handle::new(3, Arc::clone(&slot));
        assert!(handle.try_get().is_none());
        let t = std::thread::spawn(move || slot.complete(Ok(resp(3))));
        let got = handle.wait().unwrap();
        assert_eq!(got.id, 3);
        t.join().unwrap();
    }

    #[test]
    fn first_completion_wins() {
        let slot = Oneshot::new();
        let handle = Handle::new(1, Arc::clone(&slot));
        slot.complete(Err(ServeError::ShuttingDown));
        slot.complete(Ok(resp(1)));
        assert_eq!(handle.wait().unwrap_err(), ServeError::ShuttingDown);
    }

    #[test]
    fn wait_timeout_expires_then_delivers() {
        let slot = Oneshot::new();
        let handle = Handle::new(2, Arc::clone(&slot));
        assert!(handle.wait_timeout(Duration::from_millis(10)).is_none());
        slot.complete(Ok(resp(2)));
        assert!(handle.wait_timeout(Duration::from_millis(10)).is_some());
    }

    /// The drain race: a client blocked in `wait_timeout` while `drain`
    /// completes the request with `ShuttingDown` must observe exactly one
    /// terminal result, and later polls must agree with it.
    #[test]
    fn drain_completion_during_wait_timeout_delivers_exactly_one_result() {
        let slot = Oneshot::new();
        let handle = Handle::new(4, Arc::clone(&slot));
        let waiter = {
            let handle = handle.clone();
            std::thread::spawn(move || handle.wait_timeout(Duration::from_secs(10)))
        };
        // Give the waiter time to actually block inside wait_timeout.
        std::thread::sleep(Duration::from_millis(20));
        // Drain completes the request...
        assert!(slot.complete(Err(ServeError::ShuttingDown)), "drain must win the empty slot");
        // ...and a straggling worker finishing the same request afterwards
        // must lose the race without disturbing the delivered result.
        assert!(!slot.complete(Ok(resp(4))), "late completion must not win");
        let seen = waiter.join().unwrap().expect("waiter must wake with a result");
        assert_eq!(seen.unwrap_err(), ServeError::ShuttingDown);
        assert_eq!(handle.wait().unwrap_err(), ServeError::ShuttingDown);
        assert_eq!(handle.try_get().unwrap().unwrap_err(), ServeError::ShuttingDown);
    }

    /// Many completers racing one slot: exactly one `complete` call wins,
    /// and every waiter sees that single winner.
    #[test]
    fn concurrent_completers_produce_exactly_one_winner() {
        for round in 0..20u64 {
            let slot = Oneshot::new();
            let handle = Handle::new(round, Arc::clone(&slot));
            let waiters: Vec<_> = (0..3)
                .map(|_| {
                    let handle = handle.clone();
                    std::thread::spawn(move || handle.wait())
                })
                .collect();
            let completers: Vec<_> = (0..4u64)
                .map(|i| {
                    let slot = Arc::clone(&slot);
                    std::thread::spawn(move || {
                        let result = if i % 2 == 0 {
                            Ok(resp(i))
                        } else {
                            Err(ServeError::ShuttingDown)
                        };
                        slot.complete(result)
                    })
                })
                .collect();
            let wins =
                completers.into_iter().map(|c| c.join().unwrap()).filter(|won| *won).count();
            assert_eq!(wins, 1, "exactly one completion must win (round {round})");
            assert!(slot.is_complete());
            let winner = handle.try_get().unwrap();
            for waiter in waiters {
                let seen = waiter.join().unwrap();
                assert_eq!(
                    seen.as_ref().map(|r| r.id).map_err(|e| e.kind()),
                    winner.as_ref().map(|r| r.id).map_err(|e| e.kind()),
                    "every waiter must observe the single winning result"
                );
            }
        }
    }
}
