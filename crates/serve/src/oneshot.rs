//! Per-request completion: a write-once slot the submitting side can block
//! on, built from `Mutex` + `Condvar` (the vendored runtime has no async
//! channels, and none are needed — one value crosses one thread boundary
//! exactly once per request).

use orbit2::serving::{ServeError, ServeResponse};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A write-once result slot. The first [`Oneshot::complete`] wins; later
/// calls are ignored, which is what makes shutdown racing a normal
/// completion safe.
pub(crate) struct Oneshot {
    slot: Mutex<Option<Result<ServeResponse, ServeError>>>,
    ready: Condvar,
}

impl Oneshot {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self { slot: Mutex::new(None), ready: Condvar::new() })
    }

    /// Fill the slot (first writer wins) and wake every waiter.
    pub(crate) fn complete(&self, result: Result<ServeResponse, ServeError>) {
        let mut slot = self.slot.lock().unwrap();
        if slot.is_none() {
            *slot = Some(result);
            self.ready.notify_all();
        }
    }
}

/// The caller's side of a submitted request: block on [`Handle::wait`] or
/// poll with [`Handle::try_get`]. Cloneable so a response writer and a
/// latency recorder can both observe the same completion.
#[derive(Clone)]
pub struct Handle {
    id: u64,
    slot: Arc<Oneshot>,
}

impl Handle {
    pub(crate) fn new(id: u64, slot: Arc<Oneshot>) -> Self {
        Self { id, slot }
    }

    /// A handle born completed with `err` (admission-time rejections).
    pub(crate) fn failed(id: u64, err: ServeError) -> Self {
        let slot = Oneshot::new();
        slot.complete(Err(err));
        Self { id, slot }
    }

    /// The request id this handle tracks.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the request completes.
    pub fn wait(&self) -> Result<ServeResponse, ServeError> {
        let mut slot = self.slot.slot.lock().unwrap();
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.slot.ready.wait(slot).unwrap();
        }
    }

    /// Block up to `timeout`; `None` if the request is still in flight.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<ServeResponse, ServeError>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slot = self.slot.slot.lock().unwrap();
        loop {
            if let Some(result) = slot.as_ref() {
                return Some(result.clone());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.slot.ready.wait_timeout(slot, deadline - now).unwrap();
            slot = guard;
        }
    }

    /// Non-blocking poll.
    pub fn try_get(&self) -> Option<Result<ServeResponse, ServeError>> {
        self.slot.slot.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(id: u64) -> ServeResponse {
        ServeResponse { id, shape: vec![1], data: vec![0.0], cached: false, batch: 1, micros: 0 }
    }

    #[test]
    fn wait_sees_completion_from_another_thread() {
        let slot = Oneshot::new();
        let handle = Handle::new(3, Arc::clone(&slot));
        assert!(handle.try_get().is_none());
        let t = std::thread::spawn(move || slot.complete(Ok(resp(3))));
        let got = handle.wait().unwrap();
        assert_eq!(got.id, 3);
        t.join().unwrap();
    }

    #[test]
    fn first_completion_wins() {
        let slot = Oneshot::new();
        let handle = Handle::new(1, Arc::clone(&slot));
        slot.complete(Err(ServeError::ShuttingDown));
        slot.complete(Ok(resp(1)));
        assert_eq!(handle.wait().unwrap_err(), ServeError::ShuttingDown);
    }

    #[test]
    fn wait_timeout_expires_then_delivers() {
        let slot = Oneshot::new();
        let handle = Handle::new(2, Arc::clone(&slot));
        assert!(handle.wait_timeout(Duration::from_millis(10)).is_none());
        slot.complete(Ok(resp(2)));
        assert!(handle.wait_timeout(Duration::from_millis(10)).is_some());
    }
}
