//! Deterministic resilience tests: deadline checkpoints (admission,
//! dispatch, stitch), panic quarantine with isolated retry, graceful
//! drain, and the health snapshot. Every fault here is an explicit
//! `FaultPlan` event, so each test exercises exactly one checkpoint.

use orbit2::fault::{FaultKind, FaultPlan};
use orbit2::inference::downscale_with;
use orbit2::serving::{ServeError, ServeRequest};
use orbit2_climate::{DownscalingDataset, LatLonGrid, Normalizer, VariableSet};
use orbit2_model::{ModelConfig, ReslimModel};
use orbit2_serve::{Region, Server, ServerConfig};
use orbit2_tensor::Tensor;
use std::time::{Duration, Instant};

fn setup() -> (ReslimModel, Normalizer, DownscalingDataset) {
    let ds =
        DownscalingDataset::new(LatLonGrid::conus(16, 32), VariableSet::daymet_like(), 4, 10, 3);
    let model = ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 2);
    let norm = Normalizer::fit(&ds, 4);
    (model, norm, ds)
}

fn start(cfg: ServerConfig) -> (Server, ReslimModel, Normalizer, DownscalingDataset) {
    let (model, norm, ds) = setup();
    let (ref_model, ref_norm, ref_ds) = setup();
    let server =
        Server::start(model, norm, vec![Region { name: "conus".into(), dataset: ds }], cfg);
    (server, ref_model, ref_norm, ref_ds)
}

/// Tests pin an explicit plan (here: no faults) so a canned
/// `ORBIT2_SERVE_FAULT_PLAN` in the environment cannot perturb them.
fn quiet(cfg: ServerConfig) -> ServerConfig {
    ServerConfig { fault_plan: Some(FaultPlan::none()), ..cfg }
}

/// Wait for the server's inflight gauge to hit zero — the "no leaked
/// permits" half of every resilience guarantee.
fn await_idle(server: &Server) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.inflight() != 0 {
        assert!(Instant::now() < deadline, "inflight never returned to zero");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Admission checkpoint: a deadline that has already passed (deadline_ms
/// of 0) is rejected before any tensor is resolved, with the typed error
/// and the `deadline_expired` counter.
#[test]
fn admission_rejects_already_expired_deadlines() {
    let (server, _, _, _) = start(quiet(ServerConfig::default()));
    let req = ServeRequest::region(1, "conus", 0).with_deadline_ms(0);
    let err = server.submit(req).wait().unwrap_err();
    assert_eq!(err, ServeError::DeadlineExceeded { deadline_ms: 0 });
    assert_eq!(err.kind(), "deadline_exceeded");
    let stats = server.stats();
    assert_eq!(stats.deadline_expired, 1);
    assert_eq!(stats.admitted, 0, "expired requests never count as admitted");
    assert_eq!(server.inflight(), 0);
}

/// `default_deadline_ms` applies to requests that carry no deadline of
/// their own, and a per-request deadline overrides it in both directions.
#[test]
fn server_default_deadline_applies_unless_overridden() {
    let cfg = quiet(ServerConfig { default_deadline_ms: Some(0), ..ServerConfig::default() });
    let (server, _, _, _) = start(cfg);
    // Unlabelled request inherits the expired default.
    let err = server.submit(ServeRequest::region(1, "conus", 0)).wait().unwrap_err();
    assert_eq!(err, ServeError::DeadlineExceeded { deadline_ms: 0 });
    // An explicit generous deadline overrides the default and completes.
    let resp = server
        .submit(ServeRequest::region(2, "conus", 0).with_deadline_ms(60_000))
        .wait()
        .expect("explicit deadline overrides the expired default");
    assert_eq!(resp.id, 2);
    await_idle(&server);
}

/// Dispatch checkpoint: a queued tile whose deadline expires while the
/// microbatch window is still open is shed before any forward runs — the
/// request fails with `deadline_exceeded` and no batch executes.
#[test]
fn dispatch_sheds_expired_queued_tiles_before_any_forward() {
    let cfg = quiet(ServerConfig {
        // A window much longer than the deadline keeps the tile queued
        // until the deadline passes, forcing the shed path.
        window_micros: 100_000,
        cache_capacity: 0,
        ..ServerConfig::default()
    });
    let (server, _, _, _) = start(cfg);
    let handle = server.submit(ServeRequest::region(1, "conus", 0).with_deadline_ms(20));
    let err = handle.wait().unwrap_err();
    assert_eq!(err, ServeError::DeadlineExceeded { deadline_ms: 20 });
    let stats = server.stats();
    assert_eq!(stats.shed_jobs, 1, "the queued tile must be shed, not executed");
    assert_eq!(stats.deadline_expired, 1);
    assert_eq!(stats.batches, 0, "no forward may run for a shed request");
    assert_eq!(stats.completed, 0);
    await_idle(&server);
}

/// Stitch checkpoint: a straggling forward that finishes after the
/// deadline is not stitched or cached — the request still terminates with
/// `deadline_exceeded`, and the counter attributes it.
#[test]
fn stitch_checkpoint_fails_results_the_client_stopped_waiting_for() {
    let cfg = ServerConfig {
        // The tile dispatches promptly, then the injected straggler makes
        // the forward outlive the 30 ms deadline.
        fault_plan: Some(FaultPlan::none().with_event(0, 0, FaultKind::Straggler(120))),
        cache_capacity: 8,
        ..ServerConfig::default()
    };
    let (server, _, _, _) = start(cfg);
    let handle = server.submit(ServeRequest::region(1, "conus", 0).with_deadline_ms(30));
    let err = handle.wait().unwrap_err();
    assert_eq!(err, ServeError::DeadlineExceeded { deadline_ms: 30 });
    let stats = server.stats();
    assert_eq!(stats.deadline_expired, 1);
    assert_eq!(stats.shed_jobs, 0, "the tile dispatched before expiring");
    assert_eq!(stats.batches, 1, "the forward ran; only the stitch was refused");
    assert_eq!(stats.completed, 0);
    // The refused result must not have been cached: the same request
    // (without a deadline) recomputes.
    let resp = server.submit(ServeRequest::region(2, "conus", 0)).wait().unwrap();
    assert!(!resp.cached, "a deadline-refused result must never enter the cache");
    await_idle(&server);
}

/// Panic quarantine with a persistent fault: the culprit tile fails its
/// isolated retry and only its request dies (typed `internal`), while the
/// cobatched innocent requests recover bitwise-identical results.
#[test]
fn quarantine_isolates_the_culprit_from_cobatched_innocents() {
    let cfg = ServerConfig {
        // Job 1 of the first executed batch panics, and stays dead on
        // retry (persistent): requests 0 and 2 are innocent bystanders.
        fault_plan: Some(
            FaultPlan::none().with_event(0, 1, FaultKind::Panic).with_persistent(),
        ),
        max_batch: 3,
        window_micros: 300_000,
        cache_capacity: 0,
        ..ServerConfig::default()
    };
    let (server, model, norm, ds) = start(cfg);
    let session = model.session();
    let inputs: Vec<Tensor> = (0..3).map(|i| ds.sample(i).input).collect();
    let handles: Vec<_> = inputs
        .iter()
        .enumerate()
        .map(|(i, input)| {
            server.submit(ServeRequest::raw(i as u64, input.shape().to_vec(), input.data().to_vec()))
        })
        .collect();
    let results: Vec<_> = handles.iter().map(|h| h.wait()).collect();

    // The culprit (job 1) fails alone, with a server-attributed error.
    let err = results[1].clone().unwrap_err();
    match &err {
        ServeError::Internal { reason } => {
            assert!(reason.contains("injected fault"), "reason must carry the panic: {reason}");
        }
        other => panic!("culprit must fail with internal, got {other:?}"),
    }
    assert_eq!(err.kind(), "internal");

    // The innocents complete with exactly the payload a clean run gives.
    for (i, result) in results.iter().enumerate() {
        if i == 1 {
            continue;
        }
        let resp = result.as_ref().expect("innocent cobatched request must succeed");
        let reference = downscale_with(&model, &session, &norm, &inputs[i], None, 1.0).unwrap();
        assert_eq!(resp.data, reference.data(), "request {i} must be bitwise-correct");
    }

    let stats = server.stats();
    assert_eq!(stats.retried_jobs, 2, "both innocents recovered via isolated retry");
    assert_eq!(stats.quarantined_jobs, 1, "exactly the culprit was quarantined");
    assert_eq!(stats.completed, 2);
    await_idle(&server);
}

/// The same injected panic with the transient default: the isolated retry
/// runs clean, so every request in the poisoned batch recovers.
#[test]
fn transient_faults_recover_every_request_via_retry() {
    let cfg = ServerConfig {
        fault_plan: Some(FaultPlan::none().with_event(0, 1, FaultKind::Panic)),
        max_batch: 3,
        window_micros: 300_000,
        cache_capacity: 0,
        ..ServerConfig::default()
    };
    let (server, model, norm, ds) = start(cfg);
    let session = model.session();
    let inputs: Vec<Tensor> = (0..3).map(|i| ds.sample(i).input).collect();
    let handles: Vec<_> = inputs
        .iter()
        .enumerate()
        .map(|(i, input)| {
            server.submit(ServeRequest::raw(i as u64, input.shape().to_vec(), input.data().to_vec()))
        })
        .collect();
    for (i, handle) in handles.iter().enumerate() {
        let resp = handle.wait().expect("transient fault must recover every request");
        let reference = downscale_with(&model, &session, &norm, &inputs[i], None, 1.0).unwrap();
        assert_eq!(resp.data, reference.data(), "request {i} must be bitwise-correct");
    }
    let stats = server.stats();
    assert_eq!(stats.retried_jobs, 3, "every job of the poisoned batch retried clean");
    assert_eq!(stats.quarantined_jobs, 0);
    assert_eq!(stats.completed, 3);
    await_idle(&server);
}

/// A clean drain: in-flight work finishes, admission is closed, and the
/// drain reports success.
#[test]
fn drain_finishes_inflight_work_then_refuses_new_requests() {
    let (server, _, _, _) = start(quiet(ServerConfig { cache_capacity: 0, ..ServerConfig::default() }));
    let handles: Vec<_> =
        (0..3).map(|i| server.submit(ServeRequest::region(i, "conus", i as usize))).collect();
    assert!(server.drain(Duration::from_secs(30)), "idle-bound drain must finish cleanly");
    for handle in &handles {
        handle.wait().expect("work admitted before the drain must complete");
    }
    assert!(server.is_shutting_down());
    let err = server.submit(ServeRequest::region(9, "conus", 0)).wait().unwrap_err();
    assert_eq!(err, ServeError::ShuttingDown);
    assert_eq!(server.inflight(), 0);
}

/// A drain that times out: work still queued when the timeout lapses is
/// completed with `shutting_down` rather than left hanging.
#[test]
fn timed_out_drain_completes_stragglers_with_shutting_down() {
    let cfg = quiet(ServerConfig {
        // A long microbatch window keeps the tile queued past the drain
        // timeout, so it must be failed, not executed.
        window_micros: 500_000,
        cache_capacity: 0,
        ..ServerConfig::default()
    });
    let (server, _, _, _) = start(cfg);
    let handle = server.submit(ServeRequest::region(1, "conus", 0));
    assert!(!server.drain(Duration::from_millis(5)), "drain must report the timeout");
    assert_eq!(handle.wait().unwrap_err(), ServeError::ShuttingDown);
    await_idle(&server);
}

/// Regression: a submit racing a drain/shutdown must never strand its
/// request. The admission RUNNING check can pass just before `drain`
/// observes inflight == 0 and stops the batcher; without the re-check
/// under the queue lock, the tiles enqueued after the batcher exits
/// would never reach a terminal state and the handle would hang forever.
/// Run the race repeatedly with a tiny stagger sweep so the interleaving
/// actually lands in the window on at least some iterations.
#[test]
fn submit_racing_a_drain_never_strands_a_request() {
    for round in 0..8u64 {
        let cfg = quiet(ServerConfig {
            window_micros: 50,
            cache_capacity: 0,
            ..ServerConfig::default()
        });
        let (server, _, _, _) = start(cfg);
        let server = std::sync::Arc::new(server);
        let submitter = {
            let server = std::sync::Arc::clone(&server);
            std::thread::spawn(move || {
                (0..6)
                    .map(|i| server.submit(ServeRequest::region(i, "conus", i as usize)))
                    .collect::<Vec<_>>()
            })
        };
        // Sweep the stagger so different rounds hit different points of
        // the admission path (before the state check, between check and
        // enqueue, after enqueue).
        std::thread::sleep(Duration::from_micros(round * 300));
        server.drain(Duration::from_secs(10));
        let handles = submitter.join().expect("submitter thread must not die");
        for handle in handles {
            let outcome = handle
                .wait_timeout(Duration::from_secs(10))
                .expect("request submitted across a drain must still terminate");
            match outcome {
                Ok(_) | Err(ServeError::ShuttingDown) => {}
                Err(other) => panic!("unexpected terminal error racing a drain: {other:?}"),
            }
        }
        await_idle(&server);
    }
}

/// The health snapshot load balancers poll: `ok` while running, gauges
/// live, `draining` once admission closes.
#[test]
fn health_reports_status_and_gauges() {
    let (server, _, _, _) = start(quiet(ServerConfig::default()));
    let healthy = server.health();
    assert!(healthy.is_ok());
    assert_eq!(healthy.status, "ok");
    assert_eq!(healthy.inflight, 0);
    assert_eq!(healthy.queue_depth, 0);
    server.drain(Duration::from_secs(5));
    let draining = server.health();
    assert!(!draining.is_ok());
    assert_eq!(draining.status, "draining");
    assert_eq!(draining.inflight, 0);
}
