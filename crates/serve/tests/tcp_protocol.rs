//! Wire-protocol tests: every `ServeError` kind must surface as a typed
//! error line over TCP, and well-formed requests must round-trip,
//! pipeline, and hit the cache exactly as through the library API.

use orbit2::fault::{FaultKind, FaultPlan};
use orbit2::serving::ServeRequest;
use orbit2_model::{SessionActivation, SessionPrecision};
use orbit2_climate::{DownscalingDataset, LatLonGrid, Normalizer, VariableSet};
use orbit2_model::{ModelConfig, ReslimModel};
use orbit2_serve::{Client, Region, RetryPolicy, Server, ServerConfig, ServerReply};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

fn spawn_server(cfg: ServerConfig) -> (Arc<Server>, std::net::SocketAddr) {
    let ds =
        DownscalingDataset::new(LatLonGrid::conus(16, 32), VariableSet::daymet_like(), 4, 10, 3);
    let model = ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 2);
    let norm = Normalizer::fit(&ds, 4);
    let server = Arc::new(Server::start(
        model,
        norm,
        vec![Region { name: "conus".into(), dataset: ds }],
        cfg,
    ));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let accept = Arc::clone(&server);
    std::thread::spawn(move || {
        let _ = orbit2_serve::serve(accept, listener);
    });
    (server, addr)
}

fn expect_error(reply: ServerReply, want_id: u64, want_kind: &str) {
    match reply {
        ServerReply::Error { id, error } => {
            assert_eq!(id, want_id, "error attributed to the wrong request");
            assert_eq!(error.kind, want_kind, "unexpected kind: {}", error.message);
            assert!(!error.message.is_empty());
        }
        ServerReply::Response(resp) => panic!("expected {want_kind}, got response {resp:?}"),
    }
}

#[test]
fn round_trip_and_pipelining() {
    let (_server, addr) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();
    // Pipeline three requests before reading any reply.
    for id in 1..=3u64 {
        client.send(&ServeRequest::region(id, "conus", id as usize)).unwrap();
    }
    for id in 1..=3u64 {
        match client.recv().unwrap() {
            ServerReply::Response(resp) => {
                assert_eq!(resp.id, id, "replies come back in submission order");
                assert_eq!(resp.shape, vec![3, 16, 32]);
                assert_eq!(resp.data.len(), 3 * 16 * 32);
                assert!(resp.data.iter().all(|v| v.is_finite()));
            }
            other => panic!("expected response, got {other:?}"),
        }
    }
}

#[test]
fn cache_visible_over_the_wire() {
    let (server, addr) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();
    let first = client.roundtrip(&ServeRequest::region(1, "conus", 5)).unwrap();
    let second = client.roundtrip(&ServeRequest::region(2, "conus", 5)).unwrap();
    match (first, second) {
        (ServerReply::Response(a), ServerReply::Response(b)) => {
            assert!(!a.cached);
            assert!(b.cached);
            assert_eq!(a.data, b.data);
        }
        other => panic!("expected two responses, got {other:?}"),
    }
    assert_eq!(server.cache_stats().hits, 1);
}

#[test]
fn every_error_kind_surfaces_over_tcp() {
    let (_server, addr) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();

    // Malformed JSON (id recoverable) -> bad_request.
    client.send_line("{\"id\": 41, \"nonsense\": true}").unwrap();
    expect_error(client.recv().unwrap(), 41, "bad_request");

    // Unparseable line -> bad_request attributed to id 0.
    client.send_line("this is not json").unwrap();
    expect_error(client.recv().unwrap(), 0, "bad_request");

    client.send(&ServeRequest::region(42, "atlantis", 0)).unwrap();
    expect_error(client.recv().unwrap(), 42, "unknown_region");

    let mut req = ServeRequest::region(43, "conus", 0);
    req.variables = Some(vec!["vorticity".into()]);
    client.send(&req).unwrap();
    expect_error(client.recv().unwrap(), 43, "unknown_variable");

    let mut req = ServeRequest::region(44, "conus", 0);
    req.compression = 0.25;
    client.send(&req).unwrap();
    expect_error(client.recv().unwrap(), 44, "bad_compression");

    client.send(&ServeRequest::raw(45, vec![4, 4], vec![0.0; 16])).unwrap();
    expect_error(client.recv().unwrap(), 45, "invalid_rank");

    client.send(&ServeRequest::raw(46, vec![2, 4, 8], vec![0.0; 64])).unwrap();
    expect_error(client.recv().unwrap(), 46, "channel_mismatch");

    client.send(&ServeRequest::raw(47, vec![7, 5, 8], vec![0.0; 280])).unwrap();
    expect_error(client.recv().unwrap(), 47, "not_patch_aligned");

    client.send(&ServeRequest::region(48, "conus", 10_000)).unwrap();
    expect_error(client.recv().unwrap(), 48, "bad_request");
}

#[test]
fn queue_full_and_shutdown_surface_over_tcp() {
    let (server, addr) = spawn_server(ServerConfig {
        queue_capacity: 0,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).unwrap();
    client.send(&ServeRequest::region(50, "conus", 0)).unwrap();
    expect_error(client.recv().unwrap(), 50, "queue_full");

    server.shutdown();
    client.send(&ServeRequest::region(51, "conus", 0)).unwrap();
    expect_error(client.recv().unwrap(), 51, "shutting_down");
}

/// The `{"cmd":"stats"}` control line answers in order with the server's
/// cache and per-precision counters, interleaved with pipelined requests.
#[test]
fn stats_command_reports_counters_over_the_wire() {
    let (_server, addr) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();

    let zero = client.stats().unwrap();
    assert_eq!(zero.requests_f32 + zero.requests_bf16 + zero.requests_int8, 0);

    let _ = client.roundtrip(&ServeRequest::region(1, "conus", 4)).unwrap();
    let _ = client.roundtrip(&ServeRequest::region(2, "conus", 4)).unwrap();
    let _ = client
        .roundtrip(&ServeRequest::region(3, "conus", 4).at_precision(SessionPrecision::Bf16))
        .unwrap();
    let _ = client
        .roundtrip(&ServeRequest::region(4, "conus", 4).at_activation(SessionActivation::Bf16))
        .unwrap();

    let stats = client.stats().unwrap();
    assert_eq!(stats.cache_misses, 3, "f32, bf16-weight and bf16-act each computed once");
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_entries, 3);
    assert_eq!(stats.requests_f32, 3, "bf16 activations still ran f32 weights");
    assert_eq!(stats.requests_bf16, 1);
    assert_eq!(stats.requests_int8, 0);
    assert_eq!(stats.requests_act_f32, 3);
    assert_eq!(stats.requests_act_bf16, 1);
    // Pool telemetry rides the same reply; four forwards ran, so buffers
    // must have been allocated or recycled.
    assert!(
        stats.pool_fresh_allocs + stats.pool_reuses > 0,
        "pool counters must be live over the wire: {stats:?}"
    );
}

/// Unknown commands get a typed bad_request line instead of hanging the
/// connection, and the connection stays usable afterwards.
#[test]
fn unknown_command_is_bad_request_and_connection_survives() {
    let (_server, addr) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();
    client.send_line(r#"{"cmd":"selfdestruct"}"#).unwrap();
    expect_error(client.recv().unwrap(), 0, "bad_request");
    match client.roundtrip(&ServeRequest::region(9, "conus", 0)).unwrap() {
        ServerReply::Response(resp) => assert_eq!(resp.id, 9),
        other => panic!("connection should survive an unknown cmd, got {other:?}"),
    }
}

/// `{"cmd":"health"}` answers in FIFO order with the status and gauges a
/// load balancer needs; the status flips to `draining` once admission
/// closes, observable over an already-open connection.
#[test]
fn health_command_reports_ok_then_draining() {
    let (server, addr) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();
    let healthy = client.health().unwrap();
    assert!(healthy.is_ok());
    assert_eq!(healthy.status, "ok");
    assert_eq!(healthy.inflight, 0);
    assert_eq!(healthy.queue_depth, 0);
    // Health rides the FIFO: pipeline a request, then the probe; the
    // probe's reply comes second.
    client.send(&ServeRequest::region(1, "conus", 0)).unwrap();
    client.send_line(r#"{"cmd":"health"}"#).unwrap();
    match client.recv().unwrap() {
        ServerReply::Response(resp) => assert_eq!(resp.id, 1),
        other => panic!("expected the pipelined response first, got {other:?}"),
    }
    let pipelined: orbit2::serving::ServeHealth =
        serde_json::from_str(client.recv_line().unwrap().trim_end()).unwrap();
    assert!(pipelined.is_ok());
    server.drain(Duration::from_secs(10));
    let draining = client.health().unwrap();
    assert_eq!(draining.status, "draining");
    assert!(!draining.is_ok());
}

/// Graceful drain over TCP: replies for requests submitted before the
/// drain flush on the open connection (each a response or a typed
/// `shutting_down` error), and connections arriving after the drain are
/// closed instead of served.
#[test]
fn drain_flushes_open_connections_and_refuses_new_ones() {
    let (server, addr) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();
    // A health roundtrip first: proves the accept loop picked this
    // connection up *before* the drain (otherwise the pipelined lines
    // race the accept loop's drain check).
    assert!(client.health().unwrap().is_ok());
    for id in 1..=3u64 {
        client.send(&ServeRequest::region(id, "conus", id as usize)).unwrap();
    }
    let drained = server.drain(Duration::from_secs(30));
    assert!(drained, "drain with no stuck work must finish cleanly");
    // Every pipelined request gets exactly one reply, in order: either it
    // made it in before admission closed (a response) or it did not (a
    // typed shutting_down error). Nothing hangs, nothing is dropped.
    for want_id in 1..=3u64 {
        match client.recv().expect("drain must flush every pending reply") {
            ServerReply::Response(resp) => assert_eq!(resp.id, want_id),
            ServerReply::Error { id, error } => {
                assert_eq!(id, want_id);
                assert_eq!(error.kind, "shutting_down");
            }
        }
    }
    // A fresh connection after the drain is closed, not served.
    let mut late = Client::connect(addr).expect("TCP connect itself may still succeed");
    assert!(
        late.health().is_err(),
        "a drained server must close new connections instead of answering"
    );
}

/// `submit_with_retry` rides out transient rejections: against a
/// zero-capacity queue it retries `queue_full` the configured number of
/// times and surfaces the final typed error; against a healthy server it
/// returns the response on the first attempt.
#[test]
fn submit_with_retry_bounds_attempts_and_passes_successes_through() {
    let (_server, addr) = spawn_server(ServerConfig {
        queue_capacity: 0,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).unwrap();
    let policy = RetryPolicy {
        max_attempts: 3,
        base_delay: Duration::from_micros(200),
        max_delay: Duration::from_millis(2),
        seed: 9,
    };
    let reply = client
        .submit_with_retry(&ServeRequest::region(1, "conus", 0), &policy)
        .expect("retry loop returns the last reply, not an IO error");
    match reply {
        ServerReply::Error { id, error } => {
            assert_eq!(id, 1);
            assert_eq!(error.kind, "queue_full", "exhausted retries surface the typed error");
        }
        other => panic!("expected queue_full after bounded retries, got {other:?}"),
    }

    let (_healthy, addr2) = spawn_server(ServerConfig::default());
    let mut client2 = Client::connect(addr2).unwrap();
    match client2.submit_with_retry(&ServeRequest::region(2, "conus", 0), &policy).unwrap() {
        ServerReply::Response(resp) => assert_eq!(resp.id, 2),
        other => panic!("healthy server must answer on the first attempt, got {other:?}"),
    }
    // Non-retryable errors return immediately, not after backoff.
    match client2.submit_with_retry(&ServeRequest::region(3, "atlantis", 0), &policy).unwrap() {
        ServerReply::Error { error, .. } => assert_eq!(error.kind, "unknown_region"),
        other => panic!("expected unknown_region, got {other:?}"),
    }
}

/// A server-side panic surfaces over TCP as the `internal` kind — never
/// as `bad_request`, which is reserved for client mistakes.
#[test]
fn server_side_panic_is_internal_over_the_wire() {
    let (_server, addr) = spawn_server(ServerConfig {
        fault_plan: Some(
            FaultPlan::none().with_event(0, 0, FaultKind::Panic).with_persistent(),
        ),
        cache_capacity: 0,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).unwrap();
    match client.roundtrip(&ServeRequest::region(70, "conus", 0)).unwrap() {
        ServerReply::Error { id, error } => {
            assert_eq!(id, 70);
            assert_eq!(error.kind, "internal", "server faults must be blamed on the server");
            assert!(error.message.contains("internal server error"));
        }
        other => panic!("expected internal, got {other:?}"),
    }
    // The connection survives a quarantined request, and the next batch
    // (ordinal 1) is clean.
    match client.roundtrip(&ServeRequest::region(71, "conus", 1)).unwrap() {
        ServerReply::Response(resp) => assert_eq!(resp.id, 71),
        other => panic!("server must keep serving after a quarantine, got {other:?}"),
    }
}

/// A wire request with an unparseable precision label fails as bad_request.
#[test]
fn bad_precision_label_is_bad_request() {
    let (_server, addr) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();
    client
        .send_line(r#"{"id": 60, "region": "conus", "time": 0, "precision": "fp64"}"#)
        .unwrap();
    expect_error(client.recv().unwrap(), 60, "bad_request");
    // Same on the activation axis; int8 activations don't exist.
    client
        .send_line(r#"{"id": 61, "region": "conus", "time": 0, "activation": "int8"}"#)
        .unwrap();
    expect_error(client.recv().unwrap(), 61, "bad_request");
}
